package repro

// One testing.B benchmark per paper table/figure. These run at reduced scale
// (benchmarks preload tens of thousands of keys); cmd/benchfig regenerates
// the full tables with configurable scale. Run:
//
//	go test -bench=. -benchmem
//
// Figure 7's thread axis maps to -cpu (e.g. -cpu 1,2,4). The store shard
// axis (BenchmarkStoreShards) is its own sub-benchmark dimension; see also
// cmd/storebench.

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/index"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/tpcc"
	"repro/store"
)

const preloadN = 50_000

func preloaded(b *testing.B, k index.Kind, mem pmem.Config, nodeSize int) (index.Index, *pmem.Thread, []uint64) {
	b.Helper()
	ix, th, err := index.New(k, mem, index.Options{NodeSize: nodeSize, InlineValues: true})
	if err != nil {
		b.Fatal(err)
	}
	keys := bench.Keys(preloadN, 1)
	if _, err := bench.Load(ix, th, keys); err != nil {
		b.Fatal(err)
	}
	return ix, th, keys
}

// BenchmarkFig3 measures insert and search per node size for linear and
// binary in-node search (DRAM latency).
func BenchmarkFig3(b *testing.B) {
	for _, ns := range []int{256, 512, 1024, 4096} {
		for _, mode := range []string{"linear", "binary"} {
			b.Run(mode+"/insert/node="+itoa(ns), func(b *testing.B) {
				p := pmem.New(pmem.Config{Size: 1 << 30})
				th := p.NewThread()
				tr, err := core.New(p, th, core.Options{
					NodeSize: ns, BinarySearch: mode == "binary", InlineValues: true})
				if err != nil {
					b.Fatal(err)
				}
				keys := bench.Keys(b.N, 2)
				b.ResetTimer()
				for _, k := range keys {
					if err := tr.Insert(th, k, k); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig4 measures range scans (selection ratio 1%) per index at
// 300ns read latency.
func BenchmarkFig4(b *testing.B) {
	for _, k := range bench.AllSingleThreaded {
		b.Run(string(k), func(b *testing.B) {
			ix, th, keys := preloaded(b, k,
				pmem.Config{ReadLatency: 300 * time.Nanosecond}, 1024)
			span := uint64(1) << 57 // ~1% of a uniform uint64 keyspace
			rng := rand.New(rand.NewSource(3))
			b.ResetTimer()
			var sink uint64
			for i := 0; i < b.N; i++ {
				lo := keys[rng.Intn(len(keys))]
				ix.Scan(th, lo, lo+span, func(k, v uint64) bool {
					sink += v
					return true
				})
			}
			atomic.AddUint64(&benchSink, sink)
		})
	}
}

// BenchmarkFig5b measures point search at 300ns read latency.
func BenchmarkFig5b(b *testing.B) {
	for _, k := range bench.AllSingleThreaded {
		b.Run(string(k), func(b *testing.B) {
			ix, th, keys := preloaded(b, k,
				pmem.Config{ReadLatency: 300 * time.Nanosecond}, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := keys[i%len(keys)]
				if _, ok := ix.Get(th, k); !ok {
					b.Fatalf("missing key %d", k)
				}
			}
		})
	}
}

// BenchmarkFig5c measures inserts at 300ns write latency (TSO).
func BenchmarkFig5c(b *testing.B) {
	kinds := []index.Kind{index.FastFair, index.FastFairLogging, index.FPTree,
		index.WBTree, index.WORT, index.SkipList}
	for _, k := range kinds {
		b.Run(string(k), func(b *testing.B) {
			ix, th, err := index.New(k,
				pmem.Config{WriteLatency: 300 * time.Nanosecond},
				index.Options{InlineValues: true})
			if err != nil {
				b.Fatal(err)
			}
			keys := bench.Keys(b.N, 4)
			b.ResetTimer()
			for _, key := range keys {
				if err := ix.Insert(th, key, key); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5d measures inserts on the non-TSO model (store fences cost
// 30ns, write latency 1000ns).
func BenchmarkFig5d(b *testing.B) {
	for _, k := range bench.AllSingleThreaded {
		b.Run(string(k), func(b *testing.B) {
			ns := 0
			if k == index.WBTree || k == index.FPTree {
				ns = 256
			}
			ix, th, err := index.New(k,
				pmem.Config{WriteLatency: 1000 * time.Nanosecond,
					Model: pmem.NonTSO, BarrierLatency: 30 * time.Nanosecond},
				index.Options{NodeSize: ns, InlineValues: true})
			if err != nil {
				b.Fatal(err)
			}
			keys := bench.Keys(b.N, 5)
			b.ResetTimer()
			for _, key := range keys {
				if err := ix.Insert(th, key, key); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6 runs TPC-C transactions (mix W1) per index kind at 300ns
// R/W latency, plus all four mixes for FAST+FAIR.
func BenchmarkFig6(b *testing.B) {
	mem := pmem.Config{ReadLatency: 300 * time.Nanosecond, WriteLatency: 300 * time.Nanosecond}
	for _, k := range bench.AllSingleThreaded {
		b.Run("W1/"+string(k), func(b *testing.B) {
			bm, err := tpcc.NewBound(k, 1, mem)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(6))
			b.ResetTimer()
			if _, err := bm.Run(tpcc.Mixes[0], b.N, rng); err != nil {
				b.Fatal(err)
			}
		})
	}
	for _, mix := range tpcc.Mixes[1:] {
		b.Run(mix.Name+"/"+string(index.FastFair), func(b *testing.B) {
			bm, err := tpcc.NewBound(index.FastFair, 1, mem)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(6))
			b.ResetTimer()
			if _, err := bm.Run(mix, b.N, rng); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkFig7Search / Insert / Mixed: parallel throughput per index.
// Use -cpu 1,2,4,8 to sweep the thread axis.
func BenchmarkFig7Search(b *testing.B) {
	for _, k := range bench.AllConcurrent {
		b.Run(string(k), func(b *testing.B) {
			ix, _, keys := preloaded(b, k,
				pmem.Config{WriteLatency: 300 * time.Nanosecond}, 0)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				th := ix.Pool().NewThread()
				i := 0
				for pb.Next() {
					k := keys[(i*2654435761)%len(keys)]
					if _, ok := ix.Get(th, k); !ok {
						b.Errorf("missing key %d", k)
						return
					}
					i++
				}
			})
		})
	}
}

func BenchmarkFig7Insert(b *testing.B) {
	for _, k := range []index.Kind{index.FastFair, index.FPTree, index.BLink, index.SkipList} {
		b.Run(string(k), func(b *testing.B) {
			ix, _, _ := preloaded(b, k,
				pmem.Config{WriteLatency: 300 * time.Nanosecond}, 0)
			var ctr atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				th := ix.Pool().NewThread()
				for pb.Next() {
					k := ctr.Add(1) | 1<<63
					if err := ix.Insert(th, k, k); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

func BenchmarkFig7Mixed(b *testing.B) {
	for _, k := range bench.AllConcurrent {
		b.Run(string(k), func(b *testing.B) {
			ix, _, keys := preloaded(b, k,
				pmem.Config{WriteLatency: 300 * time.Nanosecond}, 0)
			var ctr atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				th := ix.Pool().NewThread()
				i := 0
				for pb.Next() {
					switch i % 21 {
					case 0, 1, 2, 3: // 4 inserts
						k := ctr.Add(1) | 1<<63
						if err := ix.Insert(th, k, k); err != nil {
							b.Error(err)
							return
						}
					case 20: // 1 delete
						k := ctr.Load()/2 | 1<<63
						ix.Delete(th, k)
					default: // 16 searches
						ix.Get(th, keys[(i*2654435761)%len(keys)])
					}
					i++
				}
			})
		})
	}
}

// BenchmarkStoreShards measures the sharded store's concurrent insert+get
// throughput per shard count at 300ns write latency. Run with -cpu 8 (or
// the host's core count) to see the shard axis separate; cmd/storebench
// prints the same sweep as a table with speedup columns.
func BenchmarkStoreShards(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run("shards="+itoa(shards), func(b *testing.B) {
			st, err := store.Open(store.Options{
				Shards:    shards,
				ShardSize: 256 << 20,
				Mem:       pmem.Config{WriteLatency: 300 * time.Nanosecond},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			var ctr atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				ss := st.NewSession()
				defer ss.Close()
				i := 0
				for pb.Next() {
					if i%2 == 0 {
						k := ctr.Add(1)
						if err := ss.Put(k, k^0xdead); err != nil {
							b.Error(err)
							return
						}
					} else {
						k := ctr.Load()
						ss.Get(k)
					}
					i++
				}
			})
		})
	}
}

var benchSink uint64

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
