// kvstore: a durable sharded key-value store demonstrating the paper's core
// claim — endurable transient inconsistency — through the public store API.
// Keys are hash-partitioned across four FAST+FAIR shards; a Session hides
// the per-goroutine pmem.Thread plumbing. The demo runs a write workload on
// crash-tracked shard pools, simulates a power failure at a random instant
// (including mid-operation on one shard), and shows that
//
//  1. readers on the un-recovered image already see every committed write,
//  2. the in-flight operation is atomic (fully applied or fully absent), and
//  3. store.Reopen restores pristine invariants on every shard without any
//     log replay.
//
// Run with:
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/index"
	"repro/internal/pmem"
	"repro/store"
)

func main() {
	opts := store.Options{
		Shards:    4,
		ShardSize: 128 << 20,
		Mem:       pmem.Config{TrackCrashes: true},
	}
	st, err := store.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	ss := st.NewSession()

	// Phase 1: committed history, batched across shards.
	committed := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(42))
	var batch []store.KV
	for i := 0; i < 5000; i++ {
		k := rng.Uint64() % 10000
		v := rng.Uint64()
		batch = append(batch, store.KV{Key: k, Val: v})
		committed[k] = v
	}
	if err := ss.PutBatch(batch); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed %d distinct keys across %d shards\n", len(committed), st.NumShards())

	// Phase 2: start logging on every shard, run more writes, then "pull
	// the plug". The victim shard crashes at a random point inside its
	// logged tape — possibly mid-insert — and per cache line a random
	// legal prefix of unflushed stores survives (CrashRandom, the
	// adversarial version of a real power failure). The other shards
	// crash at their final log positions.
	for i := 0; i < st.NumShards(); i++ {
		st.Pool(i).StartCrashLog()
	}
	var tail []uint64
	for i := 0; i < 200; i++ {
		k := 20000 + uint64(i)
		tail = append(tail, k)
		if err := ss.Put(k, k*3); err != nil {
			log.Fatal(err)
		}
	}
	victim := st.ShardFor(tail[len(tail)-1])
	images := make([]*pmem.Pool, st.NumShards())
	for i := 0; i < st.NumShards(); i++ {
		pool := st.Pool(i)
		point := pool.LogLen()
		if i == victim {
			point = rng.Intn(pool.LogLen())
		}
		images[i] = pool.CrashImage(point, pmem.CrashRandom, rng)
	}
	fmt.Printf("simulated power failure; shard %d crashed mid-tape\n", victim)
	ss.Close()
	st.Close()

	// Phase 3a: read the victim's un-recovered image directly through the
	// index layer. No recovery has run: any half-shifted node is still in
	// its transient state, and readers tolerate it via the
	// duplicate-pointer check.
	ith := images[victim].NewThread()
	vix, err := index.OpenExisting(index.FastFair, images[victim], ith, index.Options{})
	if err != nil {
		log.Fatal(err)
	}
	onVictim := 0
	for k, v := range committed {
		if st.ShardFor(k) != victim {
			continue
		}
		onVictim++
		got, ok := vix.Get(ith, k)
		if !ok || got != v {
			log.Fatalf("LOST committed key %d on un-recovered shard: got (%d,%v)", k, got, ok)
		}
	}
	fmt.Printf("pre-recovery: all %d committed keys on crashed shard %d intact\n", onVictim, victim)

	// Phase 3b: reopen the whole store from the crash images. Reopen
	// verifies every shard stamp and runs FAST+FAIR eager recovery.
	crashed, err := store.Reopen(images, store.Options{Shards: st.NumShards()})
	if err != nil {
		log.Fatal(err)
	}
	css := crashed.NewSession()
	for k, v := range committed {
		got, ok, err := css.Get(k)
		if err != nil || !ok || got != v {
			log.Fatalf("LOST committed key %d: got (%d,%v,%v)", k, got, ok, err)
		}
	}
	fmt.Printf("post-reopen: all %d committed keys intact on all shards\n", len(committed))

	survived := 0
	for _, k := range tail {
		if v, ok, _ := css.Get(k); ok {
			if v != k*3 {
				log.Fatalf("TORN write at key %d: %d", k, v)
			}
			survived++
		}
	}
	fmt.Printf("post-reopen: %d/%d in-flight-era writes survived, none torn\n", survived, len(tail))

	// Phase 4: Reopen already ran FAST+FAIR recovery on every shard;
	// verify invariants and keep writing.
	if err := crashed.CheckInvariants(); err != nil {
		log.Fatalf("post-recovery invariants: %v", err)
	}
	for i := uint64(0); i < 1000; i++ {
		if err := css.Put(50000+i, i); err != nil {
			log.Fatal(err)
		}
	}
	total, _ := css.Len()
	fmt.Printf("post-recovery: invariants hold, %d keys total, store fully writable\n", total)
	css.Close()
	crashed.Close()
}
