// kvstore: a durable key-value store demonstrating the paper's core claim —
// endurable transient inconsistency. It runs a write workload on a
// crash-tracked pool, simulates a power failure at a random instant
// (including mid-operation), and shows that
//
//  1. readers on the un-recovered image already see every committed write,
//  2. the in-flight operation is atomic (fully applied or fully absent), and
//  3. eager recovery restores pristine invariants without any log replay.
//
// Run with:
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/pmem"
)

func main() {
	pool := pmem.New(pmem.Config{Size: 256 << 20, TrackCrashes: true})
	th := pool.NewThread()
	store, err := core.New(pool, th, core.Options{NodeSize: 512})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: committed history.
	committed := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		k := rng.Uint64() % 10000
		v := rng.Uint64()
		if err := store.Insert(th, k, v); err != nil {
			log.Fatal(err)
		}
		committed[k] = v
	}
	fmt.Printf("committed %d distinct keys\n", len(committed))

	// Phase 2: start logging, run more writes, then "pull the plug" at a
	// random point inside the logged tape. CrashRandom persists, per
	// cache line, a random legal prefix of unflushed stores — the
	// adversarial version of a real power failure.
	pool.StartCrashLog()
	var tail []uint64
	for i := 0; i < 200; i++ {
		k := 20000 + uint64(i)
		tail = append(tail, k)
		if err := store.Insert(th, k, k*3); err != nil {
			log.Fatal(err)
		}
	}
	point := rng.Intn(pool.LogLen())
	img := pool.CrashImage(point, pmem.CrashRandom, rng)
	fmt.Printf("simulated power failure at log event %d/%d\n", point, pool.LogLen())

	// Phase 3: read the un-recovered image. No recovery has run: any
	// half-shifted node is still in its transient state, and readers
	// tolerate it via the duplicate-pointer check.
	ith := img.NewThread()
	crashed, err := core.Open(img, ith, core.Options{NodeSize: 512})
	if err != nil {
		log.Fatal(err)
	}
	for k, v := range committed {
		got, ok := crashed.Get(ith, k)
		if !ok || got != v {
			log.Fatalf("LOST committed key %d: got (%d,%v)", k, got, ok)
		}
	}
	fmt.Printf("pre-recovery: all %d committed keys intact\n", len(committed))

	survived := 0
	for _, k := range tail {
		if v, ok := crashed.Get(ith, k); ok {
			if v != k*3 {
				log.Fatalf("TORN write at key %d: %d", k, v)
			}
			survived++
		}
	}
	fmt.Printf("pre-recovery: %d/%d in-flight-era writes survived, none torn\n", survived, len(tail))

	// Phase 4: eager recovery (writers would also fix lazily) and
	// continued operation.
	if err := crashed.Recover(ith); err != nil {
		log.Fatal(err)
	}
	if err := crashed.CheckInvariants(ith); err != nil {
		log.Fatalf("post-recovery invariants: %v", err)
	}
	for i := uint64(0); i < 1000; i++ {
		if err := crashed.Insert(ith, 50000+i, i); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("post-recovery: invariants hold, %d keys total, store fully writable\n",
		crashed.Len(ith))
}
