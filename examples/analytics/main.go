// analytics: the introduction's motivating workload — ORDER BY-style range
// queries and MIN/MAX aggregation over an event table on emulated persistent
// memory. Hash indexes cannot serve these queries; among ordered structures
// the paper argues clustered B+-tree leaves beat pointer-chasing structures,
// and this example shows the same comparison FAST+FAIR vs the persistent
// skip list at 300ns PM read latency.
//
// Run with:
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/skiplist"
)

const (
	events  = 200_000
	queries = 30
	window  = 5_000 // events per range query
)

func main() {
	mem := pmem.Config{Size: 1 << 30, ReadLatency: 300 * time.Nanosecond}

	// Event timestamps (the index key) arrive slightly out of order.
	rng := rand.New(rand.NewSource(7))
	keys := make([]uint64, events)
	for i := range keys {
		keys[i] = uint64(i)*1000 + uint64(rng.Intn(900)) + 1
	}
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })

	type ixops struct {
		name   string
		insert func(k, v uint64) error
		scan   func(lo, hi uint64, fn func(k, v uint64) bool)
	}

	poolB := pmem.New(mem)
	thB := poolB.NewThread()
	btree, err := core.New(poolB, thB, core.Options{NodeSize: 1024, InlineValues: true})
	if err != nil {
		log.Fatal(err)
	}
	poolS := pmem.New(mem)
	thS := poolS.NewThread()
	slist, err := skiplist.New(poolS, thS, skiplist.Options{})
	if err != nil {
		log.Fatal(err)
	}

	for _, ix := range []ixops{
		{"FAST+FAIR", func(k, v uint64) error { return btree.Insert(thB, k, v) },
			func(lo, hi uint64, fn func(k, v uint64) bool) { btree.Scan(thB, lo, hi, fn) }},
		{"SkipList ", func(k, v uint64) error { return slist.Insert(thS, k, v) },
			func(lo, hi uint64, fn func(k, v uint64) bool) { slist.Scan(thS, lo, hi, fn) }},
	} {
		t0 := time.Now()
		for _, k := range keys {
			if err := ix.insert(k, k); err != nil {
				log.Fatal(err)
			}
		}
		loadTime := time.Since(t0)

		// ORDER BY ts LIMIT window  +  MIN/MAX/SUM aggregation.
		t0 = time.Now()
		var checksum uint64
		for q := 0; q < queries; q++ {
			lo := uint64(q*(events/queries)) * 1000
			hi := lo + window*1000
			minV, maxV, sum, n := ^uint64(0), uint64(0), uint64(0), 0
			ix.scan(lo, hi, func(k, v uint64) bool {
				if v < minV {
					minV = v
				}
				if v > maxV {
					maxV = v
				}
				sum += v
				n++
				return true
			})
			checksum += sum + uint64(n) + minV + maxV
		}
		qTime := time.Since(t0)
		fmt.Printf("%s  load %8.2f ms   %d range aggregations %8.2f ms  (checksum %x)\n",
			ix.name, float64(loadTime.Microseconds())/1000, queries,
			float64(qTime.Microseconds())/1000, checksum&0xffff)
	}
	fmt.Println("\nexpected shape (paper Fig. 4): FAST+FAIR's clustered, sorted leaves make")
	fmt.Println("its range queries many times faster than the skip list's pointer chase.")
}
