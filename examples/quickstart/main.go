// Quickstart: create a simulated persistent-memory pool, build a FAST+FAIR
// B+-tree in it, and run the basic operation set. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pmem"
)

func main() {
	// A Pool is a simulated byte-addressable PM device. Latencies are
	// zero here (DRAM speed); see examples/analytics for emulated PM.
	pool := pmem.New(pmem.Config{Size: 64 << 20})
	th := pool.NewThread() // one Thread per goroutine

	tree, err := core.New(pool, th, core.Options{NodeSize: 512})
	if err != nil {
		log.Fatal(err)
	}

	// Inserts are failure-atomic without logging: FAST shifts entries so
	// that every 8-byte store leaves the node readable.
	for i := uint64(1); i <= 100; i++ {
		if err := tree.Insert(th, i*7%101, i); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("inserted 100 keys, tree height %d\n", tree.Height(th))

	// Point lookups are lock-free.
	if v, ok := tree.Get(th, 7); ok {
		fmt.Printf("Get(7) = %d\n", v)
	}

	// Range scans stream sorted keys across the leaf sibling chain.
	fmt.Print("keys in [10, 20]: ")
	tree.Scan(th, 10, 20, func(k, v uint64) bool {
		fmt.Printf("%d ", k)
		return true
	})
	fmt.Println()

	// Updates are in-place and atomic; deletes left-shift with the same
	// transient-inconsistency tolerance as inserts.
	if err := tree.Insert(th, 7, 999); err != nil {
		log.Fatal(err)
	}
	tree.Delete(th, 14)
	v, _ := tree.Get(th, 7)
	_, gone := tree.Get(th, 14)
	fmt.Printf("after update/delete: Get(7)=%d, Get(14) present=%v\n", v, gone)

	// The persistent image is self-contained: reattach to it as a
	// restart would.
	reopened, err := core.Open(pool, th, core.Options{NodeSize: 512})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reopened tree holds %d keys\n", reopened.Len(th))

	// The emulator counts the events the paper reasons about.
	th.Release()
	st := pool.TotalStats()
	fmt.Printf("memory events: %d stores, %d line flushes, %d fences\n",
		st.Stores, st.FlushedLines, st.Fences)
}
