// Package wire defines the pmkv network protocol: a compact length-prefixed
// binary framing shared by package server and package client.
//
// The normative protocol specification — frame layout, the full opcode and
// status tables (including the varlen-value ops GetV/PutV/ScanV), size
// limits, pipelining rules, and versioning/compatibility notes — lives in
// PROTOCOL.md next to this file. This package is its reference
// implementation; where prose and code disagree, PROTOCOL.md wins and the
// code has a bug.
//
// In one breath: every message is a frame of `len u32 | body`, request
// bodies are `id u64 | op u8 | payload`, response bodies are
// `id u64 | op u8 | status u8 | payload`, all integers big-endian. The
// client-chosen id, echoed verbatim by the server, is what lets one
// connection carry many in-flight requests with responses matched back out
// of order.
//
// Decoders are hardened against arbitrary bytes: they never panic, never
// allocate more than the frame they were handed, and reject frames with
// trailing garbage (see FuzzDecodeRequest/FuzzDecodeResponse). Encoders
// append into caller-supplied buffers and allocate nothing when the buffer
// has capacity (see the alloc_test.go contracts).
package wire
