package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

func requestCases() []Request {
	return []Request{
		{ID: 1, Op: OpGet, Key: 42},
		{ID: 2, Op: OpPut, Key: 42, Val: ^uint64(0)},
		{ID: 3, Op: OpDelete, Key: 0},
		{ID: 4, Op: OpPutBatch, Pairs: []KV{{1, 2}, {3, 4}, {^uint64(0), 0}}},
		{ID: 5, Op: OpPutBatch, Pairs: []KV{}},
		{ID: 6, Op: OpScan, Lo: 10, Hi: 20, Max: 7},
		{ID: 7, Op: OpScan, Lo: 0, Hi: ^uint64(0), Max: 0},
		{ID: ^uint64(0), Op: OpStats},
		{ID: 8, Op: OpGetV, Key: 42},
		{ID: 9, Op: OpPutV, Key: 42, VVal: []byte("hello, varlen world")},
		{ID: 10, Op: OpPutV, Key: 0},
		{ID: 11, Op: OpScanV, Lo: 5, Hi: 500, Max: 32},
		// Byte-key ops (revision 3); the keys deliberately share 8-byte
		// prefixes, seeding the fuzz corpora with the collision shapes the
		// store's bucket path must resolve.
		{ID: 20, Op: OpGetK, KKey: []byte("collide-a")},
		{ID: 21, Op: OpPutK, KKey: []byte("collide-b"), VVal: []byte("bucket value")},
		{ID: 22, Op: OpPutK, KKey: []byte("collide-")},
		{ID: 23, Op: OpDeleteK, KKey: bytes.Repeat([]byte{0xff}, MaxKey)},
		{ID: 24, Op: OpDeleteK, KKey: []byte{0x00}},
		{ID: 25, Op: OpScanK, KLo: []byte("collide-"), KHi: []byte("collide-\xff"), Max: 100},
		{ID: 26, Op: OpScanK, Max: 0},
		{ID: 27, Op: OpScanK, KLo: append(bytes.Repeat([]byte{0xff}, MaxKey), 0x00), Max: 1},
		// Txn commits (revision 4): mixed write-sets, including an empty
		// byte-key value and a max-sized key.
		{ID: 30, Op: OpTxn, TxnOps: []TxnOp{
			{Kind: TxnPut, Key: 42, Val: ^uint64(0)},
			{Kind: TxnDelete, Key: 7},
			{Kind: TxnPutK, KKey: []byte("collide-a"), VVal: []byte("txn value")},
			{Kind: TxnPutK, KKey: []byte("collide-b")},
			{Kind: TxnDeleteK, KKey: bytes.Repeat([]byte{0xfe}, MaxKey)},
		}},
		{ID: 31, Op: OpTxn, TxnOps: []TxnOp{{Kind: TxnPut, Key: 1, Val: 2}}},
	}
}

// normTxnOps makes nil and empty op slices compare equal.
func normTxnOps(p []TxnOp) []TxnOp {
	if len(p) == 0 {
		return nil
	}
	return p
}

func responseCases() []Response {
	return []Response{
		{ID: 1, Op: OpGet, Status: StatusOK, Val: 99},
		{ID: 2, Op: OpGet, Status: StatusNotFound},
		{ID: 3, Op: OpPut, Status: StatusOK},
		{ID: 4, Op: OpDelete, Status: StatusNotFound},
		{ID: 5, Op: OpPutBatch, Status: StatusOK},
		{ID: 6, Op: OpScan, Status: StatusOK, Pairs: []KV{{5, 6}, {7, 8}}},
		{ID: 7, Op: OpScan, Status: StatusOK, Pairs: []KV{}},
		{ID: 8, Op: OpStats, Status: StatusOK, Stats: Stats{
			Ops: 1, Errors: 2, BytesIn: 3, BytesOut: 4, ConnsLive: 5, ConnsTotal: 6,
			VlogLive: 7, VlogGarbage: 8, VlogReclaimed: 9,
			ReadP50: 10, ReadP99: 11, WriteP50: 12, WriteP99: 13, ScanP50: 14, ScanP99: 15,
			Shed: 16, IdleCloses: 17, Resets: 18,
		}},
		{ID: 9, Op: OpPut, Status: StatusErr, Msg: "shard 3: arena exhausted"},
		{ID: 10, Op: OpGet, Status: StatusClosed, Msg: "store: closed"},
		{ID: 11, Op: OpPut, Status: StatusErr, Msg: ""},
		{ID: 18, Op: OpPut, Status: StatusBusy, Msg: "server overloaded"},
		{ID: 19, Op: OpPutV, Status: StatusNoSpace, Msg: "store: value log out of space"},
		{ID: 12, Op: OpGetV, Status: StatusOK, VVal: []byte("byte-string value")},
		{ID: 13, Op: OpGetV, Status: StatusNotFound},
		{ID: 14, Op: OpPutV, Status: StatusOK},
		{ID: 15, Op: OpScanV, Status: StatusOK, VPairs: []VKV{
			{Key: 1, Val: []byte("a")},
			{Key: 2, Val: []byte("")},
			{Key: ^uint64(0), Val: bytes.Repeat([]byte{0xab}, 300)},
		}},
		{ID: 16, Op: OpScanV, Status: StatusOK, VPairs: []VKV{}},
		{ID: 17, Op: OpGetV, Status: StatusErr, Msg: "store: key does not hold a varlen value"},
		// Byte-key ops (revision 3), with prefix-colliding scan pairs.
		{ID: 20, Op: OpGetK, Status: StatusOK, VVal: []byte("byte-keyed value")},
		{ID: 21, Op: OpGetK, Status: StatusNotFound},
		{ID: 22, Op: OpPutK, Status: StatusOK},
		{ID: 23, Op: OpDeleteK, Status: StatusNotFound},
		{ID: 24, Op: OpScanK, Status: StatusOK, KPairs: []KKV{
			{Key: []byte("collide-"), Val: []byte("a")},
			{Key: []byte("collide-1")},
			{Key: bytes.Repeat([]byte{0xff}, MaxKey), Val: bytes.Repeat([]byte{0xab}, 300)},
		}},
		{ID: 25, Op: OpScanK, Status: StatusOK, KPairs: []KKV{}},
		{ID: 26, Op: OpGetK, Status: StatusErr, Msg: "store: prefix does not hold a byte-key bucket"},
		// Txn commits (revision 4).
		{ID: 30, Op: OpTxn, Status: StatusOK},
		{ID: 31, Op: OpTxn, Status: StatusErr, Msg: "store: transaction exceeds redo-log capacity"},
		{ID: 32, Op: OpTxn, Status: StatusNoSpace, Msg: "store: value log out of space"},
		{ID: 33, Op: OpTxn, Status: StatusTxnIncomplete, Msg: "store: committed transaction applied incompletely"},
		{ID: 34, Op: OpTxn, Status: StatusTxnIncomplete, Msg: ""},
	}
}

// normKPairs is normPairs for byte-key scan results.
func normKPairs(p []KKV) []KKV {
	if len(p) == 0 {
		return nil
	}
	return p
}

// normPairs makes nil and empty pair slices compare equal: the decoder is
// free to return either for a zero count.
func normPairs(p []KV) []KV {
	if len(p) == 0 {
		return nil
	}
	return p
}

func TestRequestRoundTrip(t *testing.T) {
	for _, want := range requestCases() {
		frame, err := AppendRequest(nil, &want)
		if err != nil {
			t.Fatalf("%v: encode: %v", want.Op, err)
		}
		body, err := ReadFrame(bytes.NewReader(frame), MaxFrame, nil)
		if err != nil {
			t.Fatalf("%v: ReadFrame: %v", want.Op, err)
		}
		got, err := DecodeRequest(body)
		if err != nil {
			t.Fatalf("%v: decode: %v", want.Op, err)
		}
		got.Pairs, want.Pairs = normPairs(got.Pairs), normPairs(want.Pairs)
		got.TxnOps, want.TxnOps = normTxnOps(got.TxnOps), normTxnOps(want.TxnOps)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, want := range responseCases() {
		frame, err := AppendResponse(nil, &want)
		if err != nil {
			t.Fatalf("%v/%v: encode: %v", want.Op, want.Status, err)
		}
		body, err := ReadFrame(bytes.NewReader(frame), MaxFrame, nil)
		if err != nil {
			t.Fatalf("%v/%v: ReadFrame: %v", want.Op, want.Status, err)
		}
		got, err := DecodeResponse(body)
		if err != nil {
			t.Fatalf("%v/%v: decode: %v", want.Op, want.Status, err)
		}
		got.Pairs, want.Pairs = normPairs(got.Pairs), normPairs(want.Pairs)
		got.KPairs, want.KPairs = normKPairs(got.KPairs), normKPairs(want.KPairs)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

// TestStreamedFrames decodes several frames back to back from one reader,
// recycling the scratch buffer the way the transports do.
func TestStreamedFrames(t *testing.T) {
	var stream []byte
	var err error
	reqs := requestCases()
	for i := range reqs {
		stream, err = AppendRequest(stream, &reqs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(stream)
	var scratch []byte
	for i := range reqs {
		body, err := ReadFrame(r, MaxFrame, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := DecodeRequest(body)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.ID != reqs[i].ID || got.Op != reqs[i].Op {
			t.Fatalf("frame %d: got id=%d op=%v, want id=%d op=%v",
				i, got.ID, got.Op, reqs[i].ID, reqs[i].Op)
		}
		scratch = body[:0]
	}
	if _, err := ReadFrame(r, MaxFrame, scratch); err != io.EOF {
		t.Fatalf("trailing read: %v, want io.EOF", err)
	}
}

func TestReadFrameLimits(t *testing.T) {
	// Oversized frame: rejected from the header alone.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	if _, err := ReadFrame(bytes.NewReader(huge), MaxFrame, nil); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized: %v, want ErrFrameTooBig", err)
	}
	// Undersized body length (rejected before the CRC is consulted).
	tiny := []byte{0, 0, 0, 4, 0, 0, 0, 0, 1, 2, 3, 4}
	if _, err := ReadFrame(bytes.NewReader(tiny), MaxFrame, nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("undersized: %v, want ErrMalformed", err)
	}
	// Truncated body.
	frame, err := AppendRequest(nil, &Request{ID: 1, Op: OpPut, Key: 1, Val: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-3]), MaxFrame, nil); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated: %v, want ErrUnexpectedEOF", err)
	}
}

// TestReadFrameCatchesCorruption pins the revision-2 integrity guarantee:
// flipping any single byte of a frame — header length, header CRC, or any
// body byte — makes ReadFrame fail rather than hand back damaged bytes.
func TestReadFrameCatchesCorruption(t *testing.T) {
	frame, err := AppendRequest(nil, &Request{ID: 7, Op: OpPut, Key: 3, Val: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x20
		// Feed the stream with trailing padding so a corrupted length that
		// claims a larger body still finds bytes to read (as it would on a
		// live connection carrying more frames) instead of hitting EOF.
		stream := append(bad, make([]byte, 64)...)
		if _, err := ReadFrame(bytes.NewReader(stream), MaxFrame, nil); err == nil {
			t.Fatalf("flipping byte %d of %d went undetected", i, len(frame))
		}
	}
	// Body corruption specifically is ErrFrameCorrupt (and ErrMalformed).
	bad := append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0x01
	if _, err := ReadFrame(bytes.NewReader(bad), MaxFrame, nil); !errors.Is(err, ErrFrameCorrupt) || !errors.Is(err, ErrMalformed) {
		t.Fatalf("body flip: %v, want ErrFrameCorrupt wrapping ErrMalformed", err)
	}
}

func TestDecodeRequestRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		body []byte
	}{
		{"empty", nil},
		{"short header", make([]byte, 8)},
		{"zero opcode", make([]byte, 9)},
		{"unknown opcode", append(make([]byte, 8), 0xee)},
		{"get without key", append(make([]byte, 8), byte(OpGet))},
		{"get trailing bytes", append(make([]byte, 8), byte(OpGet), 0, 0, 0, 0, 0, 0, 0, 0, 99)},
		{"batch short count", append(make([]byte, 8), byte(OpPutBatch), 1)},
		{"batch count lies", append(append(make([]byte, 8), byte(OpPutBatch)), 0xff, 0xff, 0xff, 0xff)},
		{"stats with payload", append(make([]byte, 8), byte(OpStats), 1)},
		{"getv without key", append(make([]byte, 8), byte(OpGetV), 1, 2)},
		{"getv trailing bytes", append(make([]byte, 8), byte(OpGetV), 0, 0, 0, 0, 0, 0, 0, 0, 99)},
		{"putv short key", append(make([]byte, 8), byte(OpPutV), 1, 2, 3)},
		{"scanv short payload", append(make([]byte, 8), byte(OpScanV), 1, 2, 3, 4)},
		{"getk no length", append(make([]byte, 8), byte(OpGetK))},
		{"getk zero-length key", append(make([]byte, 8), byte(OpGetK), 0, 0)},
		{"getk key lies", append(make([]byte, 8), byte(OpGetK), 0, 5, 'a', 'b')},
		{"getk trailing bytes", append(make([]byte, 8), byte(OpGetK), 0, 1, 'a', 'b')},
		{"putk zero-length key", append(make([]byte, 8), byte(OpPutK), 0, 0, 'v')},
		{"putk truncated key", append(make([]byte, 8), byte(OpPutK), 0, 9, 'a')},
		{"deletek oversized klen", append(make([]byte, 8), byte(OpDeleteK), 0xff, 0xff)},
		{"scank no bounds", append(make([]byte, 8), byte(OpScanK), 0)},
		{"scank lo lies", append(make([]byte, 8), byte(OpScanK), 0, 9, 'a')},
		{"scank missing hi", append(make([]byte, 8), byte(OpScanK), 0, 1, 'a')},
		{"scank missing max", append(make([]byte, 8), byte(OpScanK), 0, 0, 0, 0)},
		{"scank trailing bytes", append(make([]byte, 8), byte(OpScanK), 0, 0, 0, 0, 0, 0, 0, 1, 9)},
		{"txn short count", append(make([]byte, 8), byte(OpTxn), 0, 0)},
		{"txn count lies", append(make([]byte, 8), byte(OpTxn), 0, 0, 0, 3)},
		{"txn unknown kind", append(make([]byte, 8), byte(OpTxn), 0, 0, 0, 1, 9)},
		{"txn put truncated", append(make([]byte, 8), byte(OpTxn), 0, 0, 0, 1, TxnPut, 1, 2)},
		{"txn putk zero-length key", append(make([]byte, 8), byte(OpTxn), 0, 0, 0, 1, TxnPutK, 0, 0, 0, 0, 0, 0)},
		{"txn putk key lies", append(make([]byte, 8), byte(OpTxn), 0, 0, 0, 1, TxnPutK, 0, 5, 0, 0, 0, 0, 'a')},
		{"txn deletek oversized klen", append(make([]byte, 8), byte(OpTxn), 0, 0, 0, 1, TxnDeleteK, 0xff, 0xff)},
		{"txn trailing bytes", append(make([]byte, 8), byte(OpTxn), 0, 0, 0, 1, TxnDelete, 0, 0, 0, 0, 0, 0, 0, 1, 9)},
	}
	for _, tc := range cases {
		if _, err := DecodeRequest(tc.body); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", tc.name, err)
		}
	}
}

func TestBatchTooLarge(t *testing.T) {
	req := Request{Op: OpPutBatch, Pairs: make([]KV, MaxPairs+1)}
	if _, err := AppendRequest(nil, &req); !errors.Is(err, ErrTooManyKV) {
		t.Fatalf("err = %v, want ErrTooManyKV", err)
	}
	resp := Response{Op: OpScan, Status: StatusOK, Pairs: make([]KV, MaxPairs+1)}
	if _, err := AppendResponse(nil, &resp); !errors.Is(err, ErrTooManyKV) {
		t.Fatalf("err = %v, want ErrTooManyKV", err)
	}
	// A max-size batch still fits under MaxFrame.
	req.Pairs = make([]KV, MaxPairs)
	frame, err := AppendRequest(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) > MaxFrame+FrameHdrSize {
		t.Fatalf("max batch frame is %d bytes, exceeds MaxFrame %d", len(frame), MaxFrame)
	}
	// The decoders enforce the same cap, so a hand-rolled peer cannot
	// push frames the encoders would refuse to produce.
	over := be.AppendUint32(append(make([]byte, 8), byte(OpPutBatch)), MaxPairs+1)
	for i := 0; i < (MaxPairs+1)*2; i++ {
		over = be.AppendUint64(over, 0)
	}
	if _, err := DecodeRequest(over); !errors.Is(err, ErrMalformed) {
		t.Fatalf("decode of %d-pair batch: %v, want ErrMalformed", MaxPairs+1, err)
	}
}

// TestTxnLimits pins the revision-4 transaction caps on both sides: the
// op-count cap, the per-op key/value caps, and the whole-frame byte
// budget (many mid-sized values can overflow MaxFrame without any single
// op being oversized).
func TestTxnLimits(t *testing.T) {
	over := Request{Op: OpTxn, TxnOps: make([]TxnOp, MaxTxnOps+1)}
	for i := range over.TxnOps {
		over.TxnOps[i] = TxnOp{Kind: TxnPut, Key: uint64(i)}
	}
	if _, err := AppendRequest(nil, &over); !errors.Is(err, ErrTooManyKV) {
		t.Fatalf("encode %d ops: %v, want ErrTooManyKV", MaxTxnOps+1, err)
	}
	badKey := Request{Op: OpTxn, TxnOps: []TxnOp{{Kind: TxnPutK}}}
	if _, err := AppendRequest(nil, &badKey); !errors.Is(err, ErrMalformed) {
		t.Fatalf("encode empty txn key: %v, want ErrMalformed", err)
	}
	badVal := Request{Op: OpTxn, TxnOps: []TxnOp{
		{Kind: TxnPutK, KKey: []byte("k"), VVal: make([]byte, MaxKValue+1)}}}
	if _, err := AppendRequest(nil, &badVal); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("encode oversized txn value: %v, want ErrFrameTooBig", err)
	}
	badKind := Request{Op: OpTxn, TxnOps: []TxnOp{{Kind: 77}}}
	if _, err := AppendRequest(nil, &badKind); !errors.Is(err, ErrMalformed) {
		t.Fatalf("encode unknown txn kind: %v, want ErrMalformed", err)
	}
	// 64 ops of 64KiB values: each individually legal, 4MiB in total.
	fat := Request{Op: OpTxn}
	for i := 0; i < 64; i++ {
		fat.TxnOps = append(fat.TxnOps, TxnOp{
			Kind: TxnPutK,
			KKey: []byte{byte(i), 1},
			VVal: make([]byte, 64<<10),
		})
	}
	if _, err := AppendRequest(nil, &fat); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("encode over-budget txn: %v, want ErrFrameTooBig", err)
	}
	// A max-count txn of fixed-width ops fits comfortably.
	full := Request{ID: 9, Op: OpTxn, TxnOps: make([]TxnOp, MaxTxnOps)}
	for i := range full.TxnOps {
		full.TxnOps[i] = TxnOp{Kind: TxnPut, Key: uint64(i), Val: uint64(i) * 3}
	}
	frame, err := AppendRequest(nil, &full)
	if err != nil {
		t.Fatal(err)
	}
	body, err := ReadFrame(bytes.NewReader(frame), MaxFrame, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.TxnOps) != MaxTxnOps || got.TxnOps[500].Val != 1500 {
		t.Fatalf("max-count txn mangled: %d ops", len(got.TxnOps))
	}
}

// TestVarlenLimits pins the size caps of the varlen ops on both the encode
// and decode side, so a conforming peer can never be handed a frame it
// cannot re-emit (the fuzz round-trip property depends on this symmetry).
func TestVarlenLimits(t *testing.T) {
	big := make([]byte, MaxValue+1)
	if _, err := AppendRequest(nil, &Request{Op: OpPutV, Key: 1, VVal: big}); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("encode oversized PutV: %v, want ErrFrameTooBig", err)
	}
	if _, err := AppendResponse(nil, &Response{Op: OpGetV, Status: StatusOK, VVal: big}); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("encode oversized GetV: %v, want ErrFrameTooBig", err)
	}
	if _, err := AppendResponse(nil, &Response{Op: OpScanV, Status: StatusOK,
		VPairs: []VKV{{Key: 1, Val: big}}}); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("encode oversized ScanV element: %v, want ErrFrameTooBig", err)
	}
	if _, err := AppendResponse(nil, &Response{Op: OpScanV, Status: StatusOK,
		VPairs: make([]VKV, MaxPairs+1)}); !errors.Is(err, ErrTooManyKV) {
		t.Fatalf("encode over-long ScanV: %v, want ErrTooManyKV", err)
	}

	// Decoder side: a hand-rolled peer pushing the same violations is
	// rejected as malformed.
	overReq := append(be.AppendUint64(append(make([]byte, 8), byte(OpPutV)), 1), big...)
	if _, err := DecodeRequest(overReq); !errors.Is(err, ErrMalformed) {
		t.Fatalf("decode oversized PutV: %v, want ErrMalformed", err)
	}
	overResp := append(make([]byte, 8), byte(OpGetV), byte(StatusOK))
	overResp = append(overResp, big...)
	if _, err := DecodeResponse(overResp); !errors.Is(err, ErrMalformed) {
		t.Fatalf("decode oversized GetV: %v, want ErrMalformed", err)
	}
	// ScanV with a lying element length.
	lie := append(make([]byte, 8), byte(OpScanV), byte(StatusOK))
	lie = be.AppendUint32(lie, 1)
	lie = be.AppendUint64(lie, 7)
	lie = be.AppendUint32(lie, 100) // claims 100 bytes, provides 2
	lie = append(lie, 0xaa, 0xbb)
	if _, err := DecodeResponse(lie); !errors.Is(err, ErrMalformed) {
		t.Fatalf("decode lying ScanV: %v, want ErrMalformed", err)
	}
	// The largest legal PutV still fits one frame.
	okReq := Request{Op: OpPutV, Key: 1, VVal: make([]byte, MaxValue)}
	frame, err := AppendRequest(nil, &okReq)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) > MaxFrame+FrameHdrSize {
		t.Fatalf("max PutV frame is %d bytes, exceeds MaxFrame %d", len(frame), MaxFrame)
	}
}

// TestByteKeyLimits pins the revision-3 size caps symmetrically on encode
// and decode, like TestVarlenLimits does for revision 2: keys are 1..MaxKey
// bytes, scan bounds at most MaxScanBound, values at most MaxKValue.
func TestByteKeyLimits(t *testing.T) {
	bigKey := make([]byte, MaxKey+1)
	if _, err := AppendRequest(nil, &Request{Op: OpGetK, KKey: bigKey}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("encode oversized GetK key: %v, want ErrMalformed", err)
	}
	if _, err := AppendRequest(nil, &Request{Op: OpPutK}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("encode empty PutK key: %v, want ErrMalformed", err)
	}
	if _, err := AppendRequest(nil, &Request{Op: OpPutK, KKey: []byte("k"),
		VVal: make([]byte, MaxKValue+1)}); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("encode oversized PutK value: %v, want ErrFrameTooBig", err)
	}
	if _, err := AppendRequest(nil, &Request{Op: OpScanK,
		KLo: make([]byte, MaxScanBound+1)}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("encode oversized ScanK bound: %v, want ErrMalformed", err)
	}
	if _, err := AppendResponse(nil, &Response{Op: OpGetK, Status: StatusOK,
		VVal: make([]byte, MaxKValue+1)}); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("encode oversized GetK value: %v, want ErrFrameTooBig", err)
	}
	if _, err := AppendResponse(nil, &Response{Op: OpScanK, Status: StatusOK,
		KPairs: []KKV{{Key: nil, Val: []byte("v")}}}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("encode empty ScanK key: %v, want ErrMalformed", err)
	}
	if _, err := AppendResponse(nil, &Response{Op: OpScanK, Status: StatusOK,
		KPairs: make([]KKV, MaxPairs+1)}); !errors.Is(err, ErrTooManyKV) {
		t.Fatalf("encode over-long ScanK: %v, want ErrTooManyKV", err)
	}

	// Decoder side: the same violations from a hand-rolled peer.
	overVal := append(make([]byte, 8), byte(OpPutK), 0, 1, 'k')
	overVal = append(overVal, make([]byte, MaxKValue+1)...)
	if _, err := DecodeRequest(overVal); !errors.Is(err, ErrMalformed) {
		t.Fatalf("decode oversized PutK value: %v, want ErrMalformed", err)
	}
	overResp := append(make([]byte, 8), byte(OpGetK), byte(StatusOK))
	overResp = append(overResp, make([]byte, MaxKValue+1)...)
	if _, err := DecodeResponse(overResp); !errors.Is(err, ErrMalformed) {
		t.Fatalf("decode oversized GetK value: %v, want ErrMalformed", err)
	}
	// ScanK with a lying entry length.
	lie := append(make([]byte, 8), byte(OpScanK), byte(StatusOK))
	lie = be.AppendUint32(lie, 1)
	lie = be.AppendUint16(lie, 3)
	lie = be.AppendUint32(lie, 100) // claims 3+100 bytes, provides 4
	lie = append(lie, 'a', 'b', 'c', 'd')
	if _, err := DecodeResponse(lie); !errors.Is(err, ErrMalformed) {
		t.Fatalf("decode lying ScanK: %v, want ErrMalformed", err)
	}
	// The largest legal PutK (max key + max value) still fits one frame.
	frame, err := AppendRequest(nil, &Request{Op: OpPutK,
		KKey: make([]byte, MaxKey), VVal: make([]byte, MaxKValue)})
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) > MaxFrame+FrameHdrSize {
		t.Fatalf("max PutK frame is %d bytes, exceeds MaxFrame %d", len(frame), MaxFrame)
	}
	// So does the largest legal single-entry ScanK response — the bound
	// MaxKValue exists exactly for this: one max key, max value, entry
	// header, and response framing inside MaxFrame.
	rframe, err := AppendResponse(nil, &Response{Op: OpScanK, Status: StatusOK,
		KPairs: []KKV{{Key: make([]byte, MaxKey), Val: make([]byte, MaxKValue)}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rframe) > MaxFrame+FrameHdrSize {
		t.Fatalf("max ScanK entry frame is %d bytes, exceeds MaxFrame %d", len(rframe), MaxFrame)
	}
}

func TestErrorMessageRoundTrip(t *testing.T) {
	long := strings.Repeat("x", 1000)
	r := Response{ID: 1, Op: OpPut, Status: StatusErr, Msg: long}
	frame, err := AppendResponse(nil, &r)
	if err != nil {
		t.Fatal(err)
	}
	body, err := ReadFrame(bytes.NewReader(frame), MaxFrame, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Msg != long {
		t.Fatalf("message corrupted: %d bytes, want %d", len(got.Msg), len(long))
	}
}
