package wire

import "testing"

// The codec's allocation contract, pinned with testing.AllocsPerRun:
// encoding into a reused buffer never allocates, fixed-size decodes never
// allocate, and variable-size decodes allocate exactly their payload slice.
// The server's zero-allocation read path is built on these guarantees.

func TestAppendRequestAllocFree(t *testing.T) {
	pairs := []KV{{1, 2}, {3, 4}}
	reqs := []Request{
		{ID: 1, Op: OpGet, Key: 7},
		{ID: 2, Op: OpPut, Key: 7, Val: 9},
		{ID: 3, Op: OpDelete, Key: 7},
		{ID: 4, Op: OpPutBatch, Pairs: pairs},
		{ID: 5, Op: OpScan, Lo: 1, Hi: 100, Max: 10},
		{ID: 6, Op: OpStats},
		{ID: 7, Op: OpGetV, Key: 7},
		{ID: 8, Op: OpPutV, Key: 7, VVal: []byte("varlen value bytes")},
		{ID: 9, Op: OpScanV, Lo: 1, Hi: 100, Max: 10},
		{ID: 10, Op: OpGetK, KKey: []byte("byte key")},
		{ID: 11, Op: OpPutK, KKey: []byte("byte key"), VVal: []byte("value bytes")},
		{ID: 12, Op: OpDeleteK, KKey: []byte("byte key")},
		{ID: 13, Op: OpScanK, KLo: []byte("a"), KHi: []byte("z"), Max: 10},
	}
	buf := make([]byte, 0, 1024)
	for i := range reqs {
		r := &reqs[i]
		if allocs := testing.AllocsPerRun(100, func() {
			var err error
			buf, err = AppendRequest(buf[:0], r)
			if err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("AppendRequest(%s) allocs/op = %v, want 0", r.Op, allocs)
		}
	}
}

func TestAppendResponseAllocFree(t *testing.T) {
	pairs := []KV{{1, 2}, {3, 4}, {5, 6}}
	resps := []Response{
		{ID: 1, Op: OpGet, Status: StatusOK, Val: 9},
		{ID: 2, Op: OpPut, Status: StatusOK},
		{ID: 3, Op: OpGet, Status: StatusNotFound},
		{ID: 4, Op: OpScan, Status: StatusOK, Pairs: pairs},
		{ID: 5, Op: OpStats, Status: StatusOK, Stats: Stats{Ops: 1}},
		{ID: 6, Op: OpGetV, Status: StatusOK, VVal: []byte("varlen value bytes")},
		{ID: 7, Op: OpScanV, Status: StatusOK, VPairs: []VKV{{Key: 1, Val: []byte("a")}, {Key: 2, Val: []byte("bb")}}},
		{ID: 8, Op: OpGetK, Status: StatusOK, VVal: []byte("byte-keyed value")},
		{ID: 9, Op: OpPutK, Status: StatusOK},
		{ID: 10, Op: OpScanK, Status: StatusOK, KPairs: []KKV{{Key: []byte("k1"), Val: []byte("a")}, {Key: []byte("k2"), Val: []byte("bb")}}},
	}
	buf := make([]byte, 0, 1024)
	for i := range resps {
		r := &resps[i]
		if allocs := testing.AllocsPerRun(100, func() {
			var err error
			buf, err = AppendResponse(buf[:0], r)
			if err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("AppendResponse(%s/%s) allocs/op = %v, want 0", r.Op, r.Status, allocs)
		}
	}
}

func TestDecodeRoundTripAllocs(t *testing.T) {
	encodeReq := func(r *Request) []byte {
		b, err := AppendRequest(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		return b[8:] // strip the frame header: decoders take the body
	}
	encodeResp := func(r *Response) []byte {
		b, err := AppendResponse(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		return b[8:]
	}

	// Fixed-size request decodes are allocation-free.
	for _, r := range []Request{
		{ID: 1, Op: OpGet, Key: 7},
		{ID: 2, Op: OpPut, Key: 7, Val: 9},
		{ID: 3, Op: OpDelete, Key: 7},
		{ID: 5, Op: OpScan, Lo: 1, Hi: 100, Max: 10},
		{ID: 6, Op: OpStats},
	} {
		body := encodeReq(&r)
		if allocs := testing.AllocsPerRun(100, func() {
			if _, err := DecodeRequest(body); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("DecodeRequest(%s) allocs/op = %v, want 0", r.Op, allocs)
		}
	}

	// PutBatch allocates exactly the pairs slice.
	batch := encodeReq(&Request{ID: 4, Op: OpPutBatch, Pairs: []KV{{1, 2}, {3, 4}}})
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeRequest(batch); err != nil {
			t.Fatal(err)
		}
	}); allocs != 1 {
		t.Errorf("DecodeRequest(PutBatch) allocs/op = %v, want 1 (the pairs slice)", allocs)
	}

	// Fixed-size response decodes are allocation-free.
	for _, r := range []Response{
		{ID: 1, Op: OpGet, Status: StatusOK, Val: 9},
		{ID: 2, Op: OpPut, Status: StatusOK},
		{ID: 3, Op: OpGet, Status: StatusNotFound},
		{ID: 5, Op: OpStats, Status: StatusOK, Stats: Stats{Ops: 1}},
	} {
		body := encodeResp(&r)
		if allocs := testing.AllocsPerRun(100, func() {
			if _, err := DecodeResponse(body); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("DecodeResponse(%s/%s) allocs/op = %v, want 0", r.Op, r.Status, allocs)
		}
	}

	// Scan responses allocate exactly the pairs slice.
	scan := encodeResp(&Response{ID: 4, Op: OpScan, Status: StatusOK, Pairs: []KV{{1, 2}, {3, 4}}})
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeResponse(scan); err != nil {
			t.Fatal(err)
		}
	}); allocs != 1 {
		t.Errorf("DecodeResponse(Scan) allocs/op = %v, want 1 (the pairs slice)", allocs)
	}

	// Varlen decodes allocate exactly their payload: PutV requests and
	// GetV responses copy the value out of the frame (one alloc), ScanV
	// responses slice every value out of one shared arena (two).
	putv := encodeReq(&Request{ID: 7, Op: OpPutV, Key: 7, VVal: []byte("some value bytes")})
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeRequest(putv); err != nil {
			t.Fatal(err)
		}
	}); allocs != 1 {
		t.Errorf("DecodeRequest(PutV) allocs/op = %v, want 1 (the value copy)", allocs)
	}
	getv := encodeResp(&Response{ID: 8, Op: OpGetV, Status: StatusOK, VVal: []byte("some value bytes")})
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeResponse(getv); err != nil {
			t.Fatal(err)
		}
	}); allocs != 1 {
		t.Errorf("DecodeResponse(GetV) allocs/op = %v, want 1 (the value copy)", allocs)
	}
	scanv := encodeResp(&Response{ID: 9, Op: OpScanV, Status: StatusOK,
		VPairs: []VKV{{Key: 1, Val: []byte("aaa")}, {Key: 2, Val: []byte("bbbb")}}})
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeResponse(scanv); err != nil {
			t.Fatal(err)
		}
	}); allocs != 2 {
		t.Errorf("DecodeResponse(ScanV) allocs/op = %v, want 2 (pairs slice + value arena)", allocs)
	}

	// Byte-key decodes allocate exactly their payload: GetK/DeleteK
	// requests copy the key (one alloc), PutK slices key and value out of
	// one arena (one), ScanK requests copy both bounds into one arena
	// (one), GetK responses copy the value (one), and ScanK responses
	// slice keys and values out of one shared arena (two).
	for _, r := range []Request{
		{ID: 10, Op: OpGetK, KKey: []byte("byte key")},
		{ID: 11, Op: OpPutK, KKey: []byte("byte key"), VVal: []byte("value bytes")},
		{ID: 12, Op: OpDeleteK, KKey: []byte("byte key")},
		{ID: 13, Op: OpScanK, KLo: []byte("a"), KHi: []byte("z"), Max: 10},
	} {
		body := encodeReq(&r)
		if allocs := testing.AllocsPerRun(100, func() {
			if _, err := DecodeRequest(body); err != nil {
				t.Fatal(err)
			}
		}); allocs != 1 {
			t.Errorf("DecodeRequest(%s) allocs/op = %v, want 1", r.Op, allocs)
		}
	}
	getk := encodeResp(&Response{ID: 14, Op: OpGetK, Status: StatusOK, VVal: []byte("value bytes")})
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeResponse(getk); err != nil {
			t.Fatal(err)
		}
	}); allocs != 1 {
		t.Errorf("DecodeResponse(GetK) allocs/op = %v, want 1 (the value copy)", allocs)
	}
	scank := encodeResp(&Response{ID: 15, Op: OpScanK, Status: StatusOK,
		KPairs: []KKV{{Key: []byte("k1"), Val: []byte("aaa")}, {Key: []byte("k2"), Val: []byte("bbbb")}}})
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeResponse(scank); err != nil {
			t.Fatal(err)
		}
	}); allocs != 2 {
		t.Errorf("DecodeResponse(ScanK) allocs/op = %v, want 2 (pairs slice + arena)", allocs)
	}
}
