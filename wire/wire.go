package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// MaxFrame is the default cap on a frame body. It bounds both the decoder's
// allocations and a PutBatch/Scan payload (65536 pairs fit with room for the
// header).
const MaxFrame = 1 << 20

// MaxPairs is the largest pair count a single PutBatch or Scan frame may
// carry under MaxFrame. Clients chunk larger batches across frames.
const MaxPairs = 32768

// MaxValue is the largest byte-string value one PutV request or GetV/ScanV
// response element may carry: a whole value plus headers must fit a frame.
// Both encoders and decoders enforce it, so a conforming peer can never be
// handed a value it cannot re-emit.
const MaxValue = MaxFrame - 64

// The byte-string key limits (protocol revision 3). MaxKey bounds a GetK/
// PutK/DeleteK key; MaxScanBound allows one extra byte so a ScanK cursor can
// name the immediate successor of a max-sized key (lo = lastKey + "\x00").
// MaxKValue bounds a PutK request or GetK/ScanK response value: tighter than
// MaxValue because a ScanK response entry carries its key and per-entry
// header alongside the value inside one MaxFrame body. Encoders and decoders
// enforce all three symmetrically.
const (
	MaxKey       = 1024
	MaxScanBound = MaxKey + 1
	MaxKValue    = MaxFrame - 2048
)

// Op identifies a request operation.
type Op uint8

// The protocol opcodes. Zero is deliberately invalid so an all-zero frame
// cannot decode as a request.
const (
	OpGet Op = iota + 1
	OpPut
	OpDelete
	OpPutBatch
	OpScan
	OpStats
	// The varlen-value opcodes: values are byte strings, not u64s.
	OpGetV
	OpPutV
	OpScanV
	// The byte-string key opcodes (protocol revision 3): keys are byte
	// strings of 1..MaxKey bytes, length-prefixed before the value run.
	OpGetK
	OpPutK
	OpDeleteK
	OpScanK
	// OpTxn (protocol revision 4) commits a multi-key transaction: the
	// request carries the whole buffered write-set — fixed-width and
	// byte-string keyed puts and deletes — and the server applies it
	// atomically (all-or-nothing across crashes) or not at all. A
	// StatusOK response carries no payload.
	OpTxn
)

// The TxnOp kinds. They mirror the four write-set operations a
// transaction can buffer.
const (
	TxnPut     uint8 = 1 // fixed-width put: Key, Val
	TxnDelete  uint8 = 2 // fixed-width delete: Key
	TxnPutK    uint8 = 3 // byte-key put: KKey (1..MaxKey), VVal (<= MaxKValue)
	TxnDeleteK uint8 = 4 // byte-key delete: KKey (1..MaxKey)
)

// MaxTxnOps caps the operations one OpTxn frame may carry. Alongside the
// per-op size caps it keeps worst-case server-side work per frame
// bounded; the byte-size budget is enforced separately against MaxFrame.
const MaxTxnOps = 1024

// TxnOp is one operation of an OpTxn write-set.
type TxnOp struct {
	Kind uint8
	Key  uint64 // TxnPut, TxnDelete
	Val  uint64 // TxnPut
	KKey []byte // TxnPutK, TxnDeleteK
	VVal []byte // TxnPutK
}

func (op Op) String() string {
	switch op {
	case OpGet:
		return "Get"
	case OpPut:
		return "Put"
	case OpDelete:
		return "Delete"
	case OpPutBatch:
		return "PutBatch"
	case OpScan:
		return "Scan"
	case OpStats:
		return "Stats"
	case OpGetV:
		return "GetV"
	case OpPutV:
		return "PutV"
	case OpScanV:
		return "ScanV"
	case OpGetK:
		return "GetK"
	case OpPutK:
		return "PutK"
	case OpDeleteK:
		return "DeleteK"
	case OpScanK:
		return "ScanK"
	case OpTxn:
		return "Txn"
	default:
		return fmt.Sprintf("Op(%d)", uint8(op))
	}
}

// Status is a response status code.
type Status uint8

const (
	// StatusOK reports success; the payload is op-specific.
	StatusOK Status = iota
	// StatusNotFound reports a Get miss or a Delete of an absent key.
	StatusNotFound
	// StatusErr reports a server-side failure; the payload is a message.
	StatusErr
	// StatusClosed reports that the store behind the server is closed
	// (the server is draining); the payload is a message.
	StatusClosed
	// StatusBusy reports that the server shed the request at admission
	// (its global in-flight cap was reached); the request never executed
	// and a retry after backoff is expected to succeed. The payload is a
	// message.
	StatusBusy
	// StatusNoSpace reports that a write was refused because the store can
	// no longer guarantee value-log space (including GC headroom). Reads
	// and deletes still work; the condition clears once compaction frees
	// space. The payload is a message.
	StatusNoSpace
	// StatusTxnIncomplete reports a Txn commit that reached its durable
	// commit point but failed while applying: the transaction IS
	// committed — its redo records survive and the server's next store
	// reopen replays it to completion — but its writes may not be
	// visible yet, and the store serves reads only until then. Distinct
	// from StatusErr (refused, nothing applied) so clients never
	// misclassify a committed write-set as absent or safe to reissue.
	// Sent only in response to OpTxn (both are revision 4), so peers
	// that never send OpTxn never see it. The payload is a message.
	StatusTxnIncomplete
)

func (st Status) String() string {
	switch st {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NotFound"
	case StatusErr:
		return "Err"
	case StatusClosed:
		return "Closed"
	case StatusBusy:
		return "Busy"
	case StatusNoSpace:
		return "NoSpace"
	case StatusTxnIncomplete:
		return "TxnIncomplete"
	default:
		return fmt.Sprintf("Status(%d)", uint8(st))
	}
}

// KV is one key-value pair as carried by PutBatch and Scan frames.
type KV struct {
	Key, Val uint64
}

// VKV is one key / byte-string value pair as carried by ScanV responses.
type VKV struct {
	Key uint64
	Val []byte
}

// KKV is one byte-string key/value pair as carried by ScanK responses.
type KKV struct {
	Key, Val []byte
}

// Stats is the counter snapshot a StatusOK Stats response carries. The
// Vlog* fields surface the store's value-log space accounting (varlen
// values live behind a log the server compacts; see the store package).
type Stats struct {
	Ops           uint64 // requests served
	Errors        uint64 // requests answered with StatusErr, StatusClosed, or StatusNoSpace
	BytesIn       uint64 // request bytes read, including frame headers
	BytesOut      uint64 // response bytes written, including frame headers
	ConnsLive     uint64 // currently open connections
	ConnsTotal    uint64 // connections accepted since start
	VlogLive      uint64 // value-log payload bytes the store still references
	VlogGarbage   uint64 // value-log payload bytes awaiting GC
	VlogReclaimed uint64 // arena bytes value-log GC has returned to the pools

	// Per-op-class server-side latency summaries, in nanoseconds, measured
	// over the whole request lifetime (queue wait + execute). Classes:
	// read = Get/GetV/Stats, write = Put/PutV/Delete/PutBatch,
	// scan = Scan/ScanV. Zero when the class has served no requests.
	ReadP50  uint64
	ReadP99  uint64
	WriteP50 uint64
	WriteP99 uint64
	ScanP50  uint64
	ScanP99  uint64

	// Overload and failure counters (protocol revision 2).
	Shed       uint64 // requests answered StatusBusy by the admission cap
	IdleCloses uint64 // connections closed by the server's read idle timeout
	Resets     uint64 // connections torn down on transport or protocol errors
}

// Request is a decoded request frame. Fields beyond ID and Op are meaningful
// per opcode only (see the package comment).
type Request struct {
	ID     uint64
	Op     Op
	Key    uint64 // Get, Put, Delete, GetV, PutV
	Val    uint64 // Put
	Lo, Hi uint64 // Scan, ScanV
	Max    uint32 // Scan/ScanV/ScanK result cap; 0 = server default
	Pairs  []KV   // PutBatch
	VVal   []byte // PutV/PutK value (decoded into its own allocation)
	KKey   []byte // GetK, PutK, DeleteK byte-string key (1..MaxKey bytes)
	// ScanK bounds: nil or empty means unbounded on that side. Up to
	// MaxScanBound bytes each, so a cursor can name a max-sized key's
	// immediate successor.
	KLo, KHi []byte
	// TxnOps is an OpTxn write-set: at most MaxTxnOps operations whose
	// encoding fits one frame.
	TxnOps []TxnOp
}

// Response is a decoded response frame. Fields beyond ID, Op and Status are
// meaningful per op/status only.
type Response struct {
	ID     uint64
	Op     Op
	Status Status
	Val    uint64 // Get hit
	Pairs  []KV   // Scan
	VVal   []byte // GetV/GetK hit
	VPairs []VKV  // ScanV (decoded Vals subslice one shared allocation)
	KPairs []KKV  // ScanK (decoded keys and values subslice one shared allocation)
	Stats  Stats  // Stats
	Msg    string // StatusErr/StatusClosed/StatusBusy/StatusNoSpace detail
}

// Protocol errors. Decoder errors wrap ErrMalformed so transports can treat
// any of them as fatal for the connection.
var (
	ErrMalformed   = errors.New("wire: malformed frame")
	ErrFrameTooBig = errors.New("wire: frame exceeds size limit")
	ErrTooManyKV   = errors.New("wire: too many pairs for one frame")
	// ErrFrameCorrupt reports a frame whose body failed its header CRC:
	// the bytes on the wire are damaged, framing cannot be trusted, and
	// the connection must be closed. It wraps ErrMalformed.
	ErrFrameCorrupt = fmt.Errorf("%w: frame checksum mismatch", ErrMalformed)
)

func malformed(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
}

var be = binary.BigEndian

// reqHeader is id + op; respHeader adds the status byte.
const (
	reqHeader  = 8 + 1
	respHeader = 8 + 1 + 1
	statsWords = 18
)

// FrameHdrSize is the frame header: a 4-byte body length followed by the
// 4-byte CRC-32C of the body (protocol revision 2; revision 1 had only the
// length). The checksum makes byte corruption on the wire a deterministic
// decode failure instead of a silently wrong payload.
const FrameHdrSize = 8

// castagnoli is the frame CRC table; CRC-32C is hardware-accelerated on
// amd64 and arm64, so the per-frame cost is a few ns.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ReadFrame reads one frame body from r, validating its length bounds and
// header CRC. scratch, if large enough, backs the returned slice (callers
// recycle it across reads); the returned body is valid until the next
// ReadFrame with the same scratch. Frames longer than max are rejected
// before any body allocation; a body failing its CRC fails with
// ErrFrameCorrupt (the connection is unusable — a corrupt length would
// misalign every later frame).
func ReadFrame(r io.Reader, max uint32, scratch []byte) ([]byte, error) {
	var hdr [FrameHdrSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := be.Uint32(hdr[:4])
	if n > max {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooBig, n, max)
	}
	if n < reqHeader {
		return nil, malformed("body of %d bytes is below the %d-byte header", n, reqHeader)
	}
	buf := scratch
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		// A partial body is a connection-level failure, not a decode
		// failure: surface the transport error.
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if crc32.Checksum(buf, castagnoli) != be.Uint32(hdr[4:]) {
		return nil, ErrFrameCorrupt
	}
	return buf, nil
}

// FrameBuffered reports whether br already holds one complete frame, so a
// batching reader can keep decoding without risking a blocking Read. It
// never reads from the underlying connection: with fewer than FrameHdrSize
// buffered bytes it answers false outright rather than letting Peek block.
// An oversized length prefix answers true — ReadFrame will reject it from
// the buffered bytes alone, also without blocking.
func FrameBuffered(br *bufio.Reader, max uint32) bool {
	if br.Buffered() < FrameHdrSize {
		return false
	}
	hdr, err := br.Peek(FrameHdrSize)
	if err != nil {
		return false
	}
	n := be.Uint32(hdr[:4])
	if n > max {
		return true
	}
	return br.Buffered() >= FrameHdrSize+int(n)
}

// appendFrame completes a frame started by reserving FrameHdrSize header
// bytes at lenAt: it back-patches the length and CRC over everything
// appended since.
func appendFrame(dst []byte, lenAt int) []byte {
	body := dst[lenAt+FrameHdrSize:]
	be.PutUint32(dst[lenAt:], uint32(len(body)))
	be.PutUint32(dst[lenAt+4:], crc32.Checksum(body, castagnoli))
	return dst
}

// AppendRequest appends r as one length-prefixed frame to dst and returns
// the extended slice. The encode-time failures are a PutBatch exceeding
// MaxPairs (chunk those across frames) and a PutV value above MaxValue.
func AppendRequest(dst []byte, r *Request) ([]byte, error) {
	if r.Op == OpPutBatch && len(r.Pairs) > MaxPairs {
		return dst, fmt.Errorf("%w: %d > %d", ErrTooManyKV, len(r.Pairs), MaxPairs)
	}
	if r.Op == OpPutV && len(r.VVal) > MaxValue {
		return dst, fmt.Errorf("%w: PutV value %d > %d bytes", ErrFrameTooBig, len(r.VVal), MaxValue)
	}
	switch r.Op {
	case OpGetK, OpPutK, OpDeleteK:
		if len(r.KKey) < 1 || len(r.KKey) > MaxKey {
			return dst, fmt.Errorf("%w: %s key %d bytes, want 1..%d", ErrMalformed, r.Op, len(r.KKey), MaxKey)
		}
		if r.Op == OpPutK && len(r.VVal) > MaxKValue {
			return dst, fmt.Errorf("%w: PutK value %d > %d bytes", ErrFrameTooBig, len(r.VVal), MaxKValue)
		}
	case OpScanK:
		if len(r.KLo) > MaxScanBound || len(r.KHi) > MaxScanBound {
			return dst, fmt.Errorf("%w: ScanK bound exceeds %d bytes", ErrMalformed, MaxScanBound)
		}
	case OpTxn:
		if len(r.TxnOps) > MaxTxnOps {
			return dst, fmt.Errorf("%w: %d txn ops > %d", ErrTooManyKV, len(r.TxnOps), MaxTxnOps)
		}
		body := reqHeader + 4
		for i := range r.TxnOps {
			op := &r.TxnOps[i]
			switch op.Kind {
			case TxnPut:
				body += 1 + 16
			case TxnDelete:
				body += 1 + 8
			case TxnPutK:
				if len(op.KKey) < 1 || len(op.KKey) > MaxKey {
					return dst, fmt.Errorf("%w: txn op %d key %d bytes, want 1..%d", ErrMalformed, i, len(op.KKey), MaxKey)
				}
				if len(op.VVal) > MaxKValue {
					return dst, fmt.Errorf("%w: txn op %d value %d > %d bytes", ErrFrameTooBig, i, len(op.VVal), MaxKValue)
				}
				body += 1 + 6 + len(op.KKey) + len(op.VVal)
			case TxnDeleteK:
				if len(op.KKey) < 1 || len(op.KKey) > MaxKey {
					return dst, fmt.Errorf("%w: txn op %d key %d bytes, want 1..%d", ErrMalformed, i, len(op.KKey), MaxKey)
				}
				body += 1 + 2 + len(op.KKey)
			default:
				return dst, fmt.Errorf("%w: txn op %d has unknown kind %d", ErrMalformed, i, op.Kind)
			}
		}
		if body > MaxFrame {
			return dst, fmt.Errorf("%w: txn frame %d > %d bytes", ErrFrameTooBig, body, MaxFrame)
		}
	}
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = be.AppendUint64(dst, r.ID)
	dst = append(dst, byte(r.Op))
	switch r.Op {
	case OpGet, OpDelete:
		dst = be.AppendUint64(dst, r.Key)
	case OpPut:
		dst = be.AppendUint64(dst, r.Key)
		dst = be.AppendUint64(dst, r.Val)
	case OpPutBatch:
		dst = be.AppendUint32(dst, uint32(len(r.Pairs)))
		for _, kv := range r.Pairs {
			dst = be.AppendUint64(dst, kv.Key)
			dst = be.AppendUint64(dst, kv.Val)
		}
	case OpScan, OpScanV:
		dst = be.AppendUint64(dst, r.Lo)
		dst = be.AppendUint64(dst, r.Hi)
		dst = be.AppendUint32(dst, r.Max)
	case OpStats:
	case OpGetV:
		dst = be.AppendUint64(dst, r.Key)
	case OpPutV:
		// The value runs to the end of the frame: its length is implied
		// by the frame length, like an error message's.
		dst = be.AppendUint64(dst, r.Key)
		dst = append(dst, r.VVal...)
	case OpGetK, OpDeleteK:
		dst = be.AppendUint16(dst, uint16(len(r.KKey)))
		dst = append(dst, r.KKey...)
	case OpPutK:
		// Length-prefixed key, then the value to the end of the frame.
		dst = be.AppendUint16(dst, uint16(len(r.KKey)))
		dst = append(dst, r.KKey...)
		dst = append(dst, r.VVal...)
	case OpScanK:
		dst = be.AppendUint16(dst, uint16(len(r.KLo)))
		dst = append(dst, r.KLo...)
		dst = be.AppendUint16(dst, uint16(len(r.KHi)))
		dst = append(dst, r.KHi...)
		dst = be.AppendUint32(dst, r.Max)
	case OpTxn:
		dst = be.AppendUint32(dst, uint32(len(r.TxnOps)))
		for i := range r.TxnOps {
			op := &r.TxnOps[i]
			dst = append(dst, op.Kind)
			switch op.Kind {
			case TxnPut:
				dst = be.AppendUint64(dst, op.Key)
				dst = be.AppendUint64(dst, op.Val)
			case TxnDelete:
				dst = be.AppendUint64(dst, op.Key)
			case TxnPutK:
				dst = be.AppendUint16(dst, uint16(len(op.KKey)))
				dst = be.AppendUint32(dst, uint32(len(op.VVal)))
				dst = append(dst, op.KKey...)
				dst = append(dst, op.VVal...)
			case TxnDeleteK:
				dst = be.AppendUint16(dst, uint16(len(op.KKey)))
				dst = append(dst, op.KKey...)
			}
		}
	default:
		return dst[:lenAt], fmt.Errorf("wire: cannot encode unknown opcode %d", r.Op)
	}
	return appendFrame(dst, lenAt), nil
}

// DecodeRequest parses one request frame body (the bytes after the length
// prefix). It never panics on arbitrary input and rejects trailing bytes.
func DecodeRequest(body []byte) (Request, error) {
	var r Request
	if len(body) < reqHeader {
		return r, malformed("request body %d bytes, want >= %d", len(body), reqHeader)
	}
	r.ID = be.Uint64(body)
	r.Op = Op(body[8])
	p := body[reqHeader:]
	switch r.Op {
	case OpGet, OpDelete:
		if len(p) != 8 {
			return r, malformed("%s payload %d bytes, want 8", r.Op, len(p))
		}
		r.Key = be.Uint64(p)
	case OpPut:
		if len(p) != 16 {
			return r, malformed("Put payload %d bytes, want 16", len(p))
		}
		r.Key = be.Uint64(p)
		r.Val = be.Uint64(p[8:])
	case OpPutBatch:
		if len(p) < 4 {
			return r, malformed("PutBatch payload %d bytes, want >= 4", len(p))
		}
		n := be.Uint32(p)
		p = p[4:]
		// Length check before allocation: n is attacker-controlled, the
		// actual bytes present are not.
		if uint64(len(p)) != uint64(n)*16 {
			return r, malformed("PutBatch count %d disagrees with %d payload bytes", n, len(p))
		}
		if n > MaxPairs {
			return r, malformed("PutBatch count %d exceeds MaxPairs %d", n, MaxPairs)
		}
		pairs := make([]KV, n)
		for i := range pairs {
			pairs[i].Key = be.Uint64(p[i*16:])
			pairs[i].Val = be.Uint64(p[i*16+8:])
		}
		r.Pairs = pairs
	case OpScan, OpScanV:
		if len(p) != 20 {
			return r, malformed("%s payload %d bytes, want 20", r.Op, len(p))
		}
		r.Lo = be.Uint64(p)
		r.Hi = be.Uint64(p[8:])
		r.Max = be.Uint32(p[16:])
	case OpStats:
		if len(p) != 0 {
			return r, malformed("Stats payload %d bytes, want 0", len(p))
		}
	case OpGetV:
		if len(p) != 8 {
			return r, malformed("GetV payload %d bytes, want 8", len(p))
		}
		r.Key = be.Uint64(p)
	case OpPutV:
		if len(p) < 8 {
			return r, malformed("PutV payload %d bytes, want >= 8", len(p))
		}
		if len(p)-8 > MaxValue {
			return r, malformed("PutV value %d bytes exceeds MaxValue %d", len(p)-8, MaxValue)
		}
		r.Key = be.Uint64(p)
		// Copied, not aliased: frame buffers are recycled by transports,
		// but requests outlive the read loop's scratch.
		r.VVal = append([]byte(nil), p[8:]...)
	case OpGetK, OpDeleteK:
		if len(p) < 2 {
			return r, malformed("%s payload %d bytes, want >= 2", r.Op, len(p))
		}
		kl := int(be.Uint16(p))
		if kl < 1 || kl > MaxKey {
			return r, malformed("%s key %d bytes, want 1..%d", r.Op, kl, MaxKey)
		}
		if len(p)-2 != kl {
			return r, malformed("%s key claims %d bytes, %d present", r.Op, kl, len(p)-2)
		}
		r.KKey = append([]byte(nil), p[2:]...)
	case OpPutK:
		if len(p) < 2 {
			return r, malformed("PutK payload %d bytes, want >= 2", len(p))
		}
		kl := int(be.Uint16(p))
		if kl < 1 || kl > MaxKey {
			return r, malformed("PutK key %d bytes, want 1..%d", kl, MaxKey)
		}
		if len(p)-2 < kl {
			return r, malformed("PutK key claims %d bytes, %d present", kl, len(p)-2)
		}
		if len(p)-2-kl > MaxKValue {
			return r, malformed("PutK value %d bytes exceeds MaxKValue %d", len(p)-2-kl, MaxKValue)
		}
		// One arena for key and value; both outlive the frame scratch.
		arena := append([]byte(nil), p[2:]...)
		r.KKey = arena[:kl:kl]
		if len(arena) > kl {
			r.VVal = arena[kl:]
		}
	case OpScanK:
		if len(p) < 2 {
			return r, malformed("ScanK payload %d bytes, want >= 2", len(p))
		}
		lol := int(be.Uint16(p))
		if lol > MaxScanBound || len(p)-2 < lol {
			return r, malformed("ScanK lo bound %d bytes invalid (%d left)", lol, len(p)-2)
		}
		q := p[2+lol:]
		if len(q) < 2 {
			return r, malformed("ScanK hi bound truncated")
		}
		hil := int(be.Uint16(q))
		if hil > MaxScanBound || len(q)-2 != hil+4 {
			return r, malformed("ScanK hi bound %d bytes disagrees with %d payload bytes", hil, len(q)-2)
		}
		if lol+hil > 0 {
			arena := make([]byte, 0, lol+hil)
			arena = append(arena, p[2:2+lol]...)
			arena = append(arena, q[2:2+hil]...)
			if lol > 0 {
				r.KLo = arena[:lol:lol]
			}
			if hil > 0 {
				r.KHi = arena[lol:]
			}
		}
		r.Max = be.Uint32(q[2+hil:])
	case OpTxn:
		if len(p) < 4 {
			return r, malformed("Txn payload %d bytes, want >= 4", len(p))
		}
		// Mirror the encoder's frame budget so the accepted language stays
		// exactly the encodable one even when bodies bypass ReadFrame.
		if len(body) > MaxFrame {
			return r, malformed("Txn body %d bytes exceeds MaxFrame %d", len(body), MaxFrame)
		}
		n := be.Uint32(p)
		p = p[4:]
		if n > MaxTxnOps {
			return r, malformed("Txn count %d exceeds MaxTxnOps %d", n, MaxTxnOps)
		}
		// Two passes, like ScanK: validate every op against the bytes
		// actually present before allocating, then slice one shared arena
		// for all byte keys and values.
		total, q := 0, p
		for i := uint32(0); i < n; i++ {
			if len(q) < 1 {
				return r, malformed("Txn op %d truncated", i)
			}
			kind := q[0]
			q = q[1:]
			switch kind {
			case TxnPut:
				if len(q) < 16 {
					return r, malformed("Txn put op %d truncated", i)
				}
				q = q[16:]
			case TxnDelete:
				if len(q) < 8 {
					return r, malformed("Txn delete op %d truncated", i)
				}
				q = q[8:]
			case TxnPutK:
				if len(q) < 6 {
					return r, malformed("Txn put-k op %d truncated", i)
				}
				kl := int(be.Uint16(q))
				vl := int(be.Uint32(q[2:]))
				if kl < 1 || kl > MaxKey {
					return r, malformed("Txn op %d key %d bytes, want 1..%d", i, kl, MaxKey)
				}
				if vl > MaxKValue {
					return r, malformed("Txn op %d value %d bytes exceeds MaxKValue %d", i, vl, MaxKValue)
				}
				if len(q)-6 < kl+vl {
					return r, malformed("Txn op %d claims %d bytes, %d left", i, kl+vl, len(q)-6)
				}
				total += kl + vl
				q = q[6+kl+vl:]
			case TxnDeleteK:
				if len(q) < 2 {
					return r, malformed("Txn delete-k op %d truncated", i)
				}
				kl := int(be.Uint16(q))
				if kl < 1 || kl > MaxKey {
					return r, malformed("Txn op %d key %d bytes, want 1..%d", i, kl, MaxKey)
				}
				if len(q)-2 < kl {
					return r, malformed("Txn op %d claims %d key bytes, %d left", i, kl, len(q)-2)
				}
				total += kl
				q = q[2+kl:]
			default:
				return r, malformed("Txn op %d has unknown kind %d", i, kind)
			}
		}
		if len(q) != 0 {
			return r, malformed("Txn payload has %d trailing bytes", len(q))
		}
		arena := make([]byte, 0, total)
		ops := make([]TxnOp, n)
		for i := range ops {
			kind := p[0]
			p = p[1:]
			ops[i].Kind = kind
			switch kind {
			case TxnPut:
				ops[i].Key = be.Uint64(p)
				ops[i].Val = be.Uint64(p[8:])
				p = p[16:]
			case TxnDelete:
				ops[i].Key = be.Uint64(p)
				p = p[8:]
			case TxnPutK:
				kl := int(be.Uint16(p))
				vl := int(be.Uint32(p[2:]))
				start := len(arena)
				arena = append(arena, p[6:6+kl+vl]...)
				ops[i].KKey = arena[start : start+kl : start+kl]
				if vl > 0 {
					ops[i].VVal = arena[start+kl : len(arena) : len(arena)]
				}
				p = p[6+kl+vl:]
			case TxnDeleteK:
				kl := int(be.Uint16(p))
				start := len(arena)
				arena = append(arena, p[2:2+kl]...)
				ops[i].KKey = arena[start:len(arena):len(arena)]
				p = p[2+kl:]
			}
		}
		r.TxnOps = ops
	default:
		return r, malformed("unknown opcode %d", uint8(r.Op))
	}
	return r, nil
}

// AppendResponse appends r as one length-prefixed frame to dst and returns
// the extended slice. Scan/ScanV responses exceeding MaxPairs and GetV/ScanV
// values above MaxValue fail at encode time; servers cap result sets below
// both.
func AppendResponse(dst []byte, r *Response) ([]byte, error) {
	if (r.Op == OpScan || r.Op == OpScanV || r.Op == OpScanK) && r.Status == StatusOK &&
		max(len(r.Pairs), max(len(r.VPairs), len(r.KPairs))) > MaxPairs {
		return dst, fmt.Errorf("%w: %d > %d", ErrTooManyKV,
			max(len(r.Pairs), max(len(r.VPairs), len(r.KPairs))), MaxPairs)
	}
	if r.Op == OpGetV && r.Status == StatusOK && len(r.VVal) > MaxValue {
		return dst, fmt.Errorf("%w: GetV value %d > %d bytes", ErrFrameTooBig, len(r.VVal), MaxValue)
	}
	if r.Op == OpGetK && r.Status == StatusOK && len(r.VVal) > MaxKValue {
		return dst, fmt.Errorf("%w: GetK value %d > %d bytes", ErrFrameTooBig, len(r.VVal), MaxKValue)
	}
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = be.AppendUint64(dst, r.ID)
	dst = append(dst, byte(r.Op), byte(r.Status))
	switch {
	case r.Status == StatusErr || r.Status == StatusClosed ||
		r.Status == StatusBusy || r.Status == StatusNoSpace ||
		r.Status == StatusTxnIncomplete:
		dst = append(dst, r.Msg...)
	case r.Status != StatusOK:
		// NotFound and any forward-compatible status carry no payload.
	default:
		switch r.Op {
		case OpGet:
			dst = be.AppendUint64(dst, r.Val)
		case OpScan:
			dst = be.AppendUint32(dst, uint32(len(r.Pairs)))
			for _, kv := range r.Pairs {
				dst = be.AppendUint64(dst, kv.Key)
				dst = be.AppendUint64(dst, kv.Val)
			}
		case OpStats:
			for _, v := range [statsWords]uint64{
				r.Stats.Ops, r.Stats.Errors, r.Stats.BytesIn,
				r.Stats.BytesOut, r.Stats.ConnsLive, r.Stats.ConnsTotal,
				r.Stats.VlogLive, r.Stats.VlogGarbage, r.Stats.VlogReclaimed,
				r.Stats.ReadP50, r.Stats.ReadP99, r.Stats.WriteP50,
				r.Stats.WriteP99, r.Stats.ScanP50, r.Stats.ScanP99,
				r.Stats.Shed, r.Stats.IdleCloses, r.Stats.Resets,
			} {
				dst = be.AppendUint64(dst, v)
			}
		case OpGetV:
			dst = append(dst, r.VVal...)
		case OpScanV:
			dst = be.AppendUint32(dst, uint32(len(r.VPairs)))
			for i := range r.VPairs {
				if len(r.VPairs[i].Val) > MaxValue {
					return dst[:lenAt], fmt.Errorf("%w: ScanV value %d > %d bytes",
						ErrFrameTooBig, len(r.VPairs[i].Val), MaxValue)
				}
				dst = be.AppendUint64(dst, r.VPairs[i].Key)
				dst = be.AppendUint32(dst, uint32(len(r.VPairs[i].Val)))
				dst = append(dst, r.VPairs[i].Val...)
			}
		case OpGetK:
			dst = append(dst, r.VVal...)
		case OpScanK:
			dst = be.AppendUint32(dst, uint32(len(r.KPairs)))
			for i := range r.KPairs {
				kl, vl := len(r.KPairs[i].Key), len(r.KPairs[i].Val)
				if kl < 1 || kl > MaxKey {
					return dst[:lenAt], fmt.Errorf("%w: ScanK key %d bytes, want 1..%d",
						ErrMalformed, kl, MaxKey)
				}
				if vl > MaxKValue {
					return dst[:lenAt], fmt.Errorf("%w: ScanK value %d > %d bytes",
						ErrFrameTooBig, vl, MaxKValue)
				}
				dst = be.AppendUint16(dst, uint16(kl))
				dst = be.AppendUint32(dst, uint32(vl))
				dst = append(dst, r.KPairs[i].Key...)
				dst = append(dst, r.KPairs[i].Val...)
			}
		case OpPut, OpDelete, OpPutBatch, OpPutV, OpPutK, OpDeleteK, OpTxn:
		default:
			return dst[:lenAt], fmt.Errorf("wire: cannot encode unknown opcode %d", r.Op)
		}
	}
	return appendFrame(dst, lenAt), nil
}

// MustAppendResponse appends r to dst like AppendResponse, but converts an
// encode failure (a server bug: an over-long scan, an oversized value) into
// a StatusErr frame carrying the failure message, so a response-coalescing
// writer always gets a frame for every request it owes. It panics only if
// even the error frame cannot be encoded, which would mean the codec itself
// is broken.
func MustAppendResponse(dst []byte, r *Response) []byte {
	out, err := AppendResponse(dst, r)
	if err == nil {
		return out
	}
	out, err2 := AppendResponse(dst, &Response{
		ID: r.ID, Op: r.Op, Status: StatusErr, Msg: err.Error(),
	})
	if err2 != nil {
		panic(fmt.Sprintf("wire: error frame unencodable: %v (after %v)", err2, err))
	}
	return out
}

// DecodeResponse parses one response frame body. Like DecodeRequest it never
// panics and rejects trailing bytes.
func DecodeResponse(body []byte) (Response, error) {
	var r Response
	if len(body) < respHeader {
		return r, malformed("response body %d bytes, want >= %d", len(body), respHeader)
	}
	r.ID = be.Uint64(body)
	r.Op = Op(body[8])
	r.Status = Status(body[9])
	p := body[respHeader:]
	switch r.Status {
	case StatusErr, StatusClosed, StatusBusy, StatusNoSpace, StatusTxnIncomplete:
		r.Msg = string(p)
		return r, nil
	case StatusNotFound:
		if len(p) != 0 {
			return r, malformed("NotFound payload %d bytes, want 0", len(p))
		}
		return r, nil
	case StatusOK:
	default:
		return r, malformed("unknown status %d", uint8(r.Status))
	}
	switch r.Op {
	case OpGet:
		if len(p) != 8 {
			return r, malformed("Get response payload %d bytes, want 8", len(p))
		}
		r.Val = be.Uint64(p)
	case OpPut, OpDelete, OpPutBatch:
		if len(p) != 0 {
			return r, malformed("%s response payload %d bytes, want 0", r.Op, len(p))
		}
	case OpScan:
		if len(p) < 4 {
			return r, malformed("Scan response payload %d bytes, want >= 4", len(p))
		}
		n := be.Uint32(p)
		p = p[4:]
		if uint64(len(p)) != uint64(n)*16 {
			return r, malformed("Scan count %d disagrees with %d payload bytes", n, len(p))
		}
		if n > MaxPairs {
			return r, malformed("Scan count %d exceeds MaxPairs %d", n, MaxPairs)
		}
		pairs := make([]KV, n)
		for i := range pairs {
			pairs[i].Key = be.Uint64(p[i*16:])
			pairs[i].Val = be.Uint64(p[i*16+8:])
		}
		r.Pairs = pairs
	case OpGetV:
		if len(p) > MaxValue {
			return r, malformed("GetV value %d bytes exceeds MaxValue %d", len(p), MaxValue)
		}
		r.VVal = append([]byte(nil), p...)
	case OpPutV, OpPutK, OpDeleteK, OpTxn:
		if len(p) != 0 {
			return r, malformed("%s response payload %d bytes, want 0", r.Op, len(p))
		}
	case OpScanV:
		if len(p) < 4 {
			return r, malformed("ScanV response payload %d bytes, want >= 4", len(p))
		}
		n := be.Uint32(p)
		p = p[4:]
		if n > MaxPairs {
			return r, malformed("ScanV count %d exceeds MaxPairs %d", n, MaxPairs)
		}
		// Two passes: validate the pair lengths against the actual bytes
		// present before allocating anything, then slice one shared arena
		// so a count-n response costs exactly two allocations.
		total, q := 0, p
		for i := uint32(0); i < n; i++ {
			if len(q) < 12 {
				return r, malformed("ScanV pair %d truncated", i)
			}
			vlen := int(be.Uint32(q[8:]))
			if vlen > MaxValue {
				return r, malformed("ScanV value %d bytes exceeds MaxValue %d", vlen, MaxValue)
			}
			if len(q)-12 < vlen {
				return r, malformed("ScanV pair %d claims %d value bytes, %d left", i, vlen, len(q)-12)
			}
			total += vlen
			q = q[12+vlen:]
		}
		if len(q) != 0 {
			return r, malformed("ScanV response has %d trailing bytes", len(q))
		}
		arena := make([]byte, 0, total)
		pairs := make([]VKV, n)
		for i := range pairs {
			vlen := int(be.Uint32(p[8:]))
			pairs[i].Key = be.Uint64(p)
			start := len(arena)
			arena = append(arena, p[12:12+vlen]...)
			pairs[i].Val = arena[start:len(arena):len(arena)]
			p = p[12+vlen:]
		}
		r.VPairs = pairs
	case OpGetK:
		if len(p) > MaxKValue {
			return r, malformed("GetK value %d bytes exceeds MaxKValue %d", len(p), MaxKValue)
		}
		r.VVal = append([]byte(nil), p...)
	case OpScanK:
		if len(p) < 4 {
			return r, malformed("ScanK response payload %d bytes, want >= 4", len(p))
		}
		n := be.Uint32(p)
		p = p[4:]
		if n > MaxPairs {
			return r, malformed("ScanK count %d exceeds MaxPairs %d", n, MaxPairs)
		}
		// Same two-pass discipline as ScanV: validate every entry against
		// the bytes actually present, then slice one shared arena holding
		// keys and values — two allocations for a count-n response.
		total, q := 0, p
		for i := uint32(0); i < n; i++ {
			if len(q) < 6 {
				return r, malformed("ScanK pair %d truncated", i)
			}
			kl := int(be.Uint16(q))
			vl := int(be.Uint32(q[2:]))
			if kl < 1 || kl > MaxKey {
				return r, malformed("ScanK key %d bytes, want 1..%d", kl, MaxKey)
			}
			if vl > MaxKValue {
				return r, malformed("ScanK value %d bytes exceeds MaxKValue %d", vl, MaxKValue)
			}
			if len(q)-6 < kl+vl {
				return r, malformed("ScanK pair %d claims %d bytes, %d left", i, kl+vl, len(q)-6)
			}
			total += kl + vl
			q = q[6+kl+vl:]
		}
		if len(q) != 0 {
			return r, malformed("ScanK response has %d trailing bytes", len(q))
		}
		arena := make([]byte, 0, total)
		pairs := make([]KKV, n)
		for i := range pairs {
			kl := int(be.Uint16(p))
			vl := int(be.Uint32(p[2:]))
			start := len(arena)
			arena = append(arena, p[6:6+kl+vl]...)
			pairs[i].Key = arena[start : start+kl : start+kl]
			if vl > 0 {
				pairs[i].Val = arena[start+kl : len(arena) : len(arena)]
			}
			p = p[6+kl+vl:]
		}
		r.KPairs = pairs
	case OpStats:
		if len(p) != statsWords*8 {
			return r, malformed("Stats response payload %d bytes, want %d", len(p), statsWords*8)
		}
		r.Stats = Stats{
			Ops:           be.Uint64(p),
			Errors:        be.Uint64(p[8:]),
			BytesIn:       be.Uint64(p[16:]),
			BytesOut:      be.Uint64(p[24:]),
			ConnsLive:     be.Uint64(p[32:]),
			ConnsTotal:    be.Uint64(p[40:]),
			VlogLive:      be.Uint64(p[48:]),
			VlogGarbage:   be.Uint64(p[56:]),
			VlogReclaimed: be.Uint64(p[64:]),
			ReadP50:       be.Uint64(p[72:]),
			ReadP99:       be.Uint64(p[80:]),
			WriteP50:      be.Uint64(p[88:]),
			WriteP99:      be.Uint64(p[96:]),
			ScanP50:       be.Uint64(p[104:]),
			ScanP99:       be.Uint64(p[112:]),
			Shed:          be.Uint64(p[120:]),
			IdleCloses:    be.Uint64(p[128:]),
			Resets:        be.Uint64(p[136:]),
		}
	default:
		return r, malformed("unknown opcode %d", uint8(r.Op))
	}
	return r, nil
}
