// Package wire defines the pmkv network protocol: a compact length-prefixed
// binary framing shared by package server and package client.
//
// Every message is one frame:
//
//	+----------+-----------------------------+
//	| len u32  | body (len bytes)            |
//	+----------+-----------------------------+
//
// with len counting only the body, big-endian like every other integer on
// the wire. Request and response bodies share a fixed header so frames are
// self-describing:
//
//	request body:  id u64 | op u8     | payload
//	response body: id u64 | op u8 | status u8 | payload
//
// The id is chosen by the client and echoed verbatim by the server; it is
// what lets a connection carry many in-flight requests (pipelining) with
// responses matched back out of order. The op byte in the response echoes
// the request's opcode so the payload can be decoded statelessly.
//
// Request payloads by opcode:
//
//	Get      key u64
//	Put      key u64 | val u64
//	Delete   key u64
//	PutBatch count u32 | count x (key u64 | val u64)
//	Scan     lo u64 | hi u64 | max u32   (max 0 = server default cap)
//	Stats    (empty)
//
// Response payloads by status:
//
//	StatusOK        op-specific: Get → val u64; Scan → count u32 + pairs;
//	                Stats → 6 x u64 (ops, errors, bytes in, bytes out,
//	                live conns, total conns); others empty.
//	StatusNotFound  empty (Get miss, Delete of an absent key)
//	StatusErr       UTF-8 error message
//	StatusClosed    UTF-8 error message (server draining / store closed)
//
// Decoders are hardened against arbitrary bytes: they never panic, never
// allocate more than the frame they were handed, and reject frames with
// trailing garbage (see FuzzDecodeRequest).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrame is the default cap on a frame body. It bounds both the decoder's
// allocations and a PutBatch/Scan payload (65536 pairs fit with room for the
// header).
const MaxFrame = 1 << 20

// MaxPairs is the largest pair count a single PutBatch or Scan frame may
// carry under MaxFrame. Clients chunk larger batches across frames.
const MaxPairs = 32768

// Op identifies a request operation.
type Op uint8

// The protocol opcodes. Zero is deliberately invalid so an all-zero frame
// cannot decode as a request.
const (
	OpGet Op = iota + 1
	OpPut
	OpDelete
	OpPutBatch
	OpScan
	OpStats
)

func (op Op) String() string {
	switch op {
	case OpGet:
		return "Get"
	case OpPut:
		return "Put"
	case OpDelete:
		return "Delete"
	case OpPutBatch:
		return "PutBatch"
	case OpScan:
		return "Scan"
	case OpStats:
		return "Stats"
	default:
		return fmt.Sprintf("Op(%d)", uint8(op))
	}
}

// Status is a response status code.
type Status uint8

const (
	// StatusOK reports success; the payload is op-specific.
	StatusOK Status = iota
	// StatusNotFound reports a Get miss or a Delete of an absent key.
	StatusNotFound
	// StatusErr reports a server-side failure; the payload is a message.
	StatusErr
	// StatusClosed reports that the store behind the server is closed
	// (the server is draining); the payload is a message.
	StatusClosed
)

func (st Status) String() string {
	switch st {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NotFound"
	case StatusErr:
		return "Err"
	case StatusClosed:
		return "Closed"
	default:
		return fmt.Sprintf("Status(%d)", uint8(st))
	}
}

// KV is one key-value pair as carried by PutBatch and Scan frames.
type KV struct {
	Key, Val uint64
}

// Stats is the counter snapshot a StatusOK Stats response carries.
type Stats struct {
	Ops        uint64 // requests served
	Errors     uint64 // requests answered with StatusErr or StatusClosed
	BytesIn    uint64 // request bytes read, including frame headers
	BytesOut   uint64 // response bytes written, including frame headers
	ConnsLive  uint64 // currently open connections
	ConnsTotal uint64 // connections accepted since start
}

// Request is a decoded request frame. Fields beyond ID and Op are meaningful
// per opcode only (see the package comment).
type Request struct {
	ID     uint64
	Op     Op
	Key    uint64 // Get, Put, Delete
	Val    uint64 // Put
	Lo, Hi uint64 // Scan
	Max    uint32 // Scan result cap; 0 = server default
	Pairs  []KV   // PutBatch
}

// Response is a decoded response frame. Fields beyond ID, Op and Status are
// meaningful per op/status only.
type Response struct {
	ID     uint64
	Op     Op
	Status Status
	Val    uint64 // Get hit
	Pairs  []KV   // Scan
	Stats  Stats  // Stats
	Msg    string // StatusErr / StatusClosed detail
}

// Protocol errors. Decoder errors wrap ErrMalformed so transports can treat
// any of them as fatal for the connection.
var (
	ErrMalformed   = errors.New("wire: malformed frame")
	ErrFrameTooBig = errors.New("wire: frame exceeds size limit")
	ErrTooManyKV   = errors.New("wire: too many pairs for one frame")
)

func malformed(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
}

var be = binary.BigEndian

// reqHeader is id + op; respHeader adds the status byte.
const (
	reqHeader  = 8 + 1
	respHeader = 8 + 1 + 1
	statsWords = 6
)

// ReadFrame reads one length-prefixed frame body from r. scratch, if large
// enough, backs the returned slice (callers recycle it across reads); the
// returned body is valid until the next ReadFrame with the same scratch.
// Frames longer than max are rejected before any body allocation.
func ReadFrame(r io.Reader, max uint32, scratch []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := be.Uint32(hdr[:])
	if n > max {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooBig, n, max)
	}
	if n < reqHeader {
		return nil, malformed("body of %d bytes is below the %d-byte header", n, reqHeader)
	}
	buf := scratch
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		// A partial body is a connection-level failure, not a decode
		// failure: surface the transport error.
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// appendFrame completes a frame started by reserving 4 length bytes at
// lenAt: it back-patches the length with everything appended since.
func appendFrame(dst []byte, lenAt int) []byte {
	be.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst
}

// AppendRequest appends r as one length-prefixed frame to dst and returns
// the extended slice. The only encode-time failure is a PutBatch exceeding
// MaxPairs; chunk those across frames.
func AppendRequest(dst []byte, r *Request) ([]byte, error) {
	if r.Op == OpPutBatch && len(r.Pairs) > MaxPairs {
		return dst, fmt.Errorf("%w: %d > %d", ErrTooManyKV, len(r.Pairs), MaxPairs)
	}
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = be.AppendUint64(dst, r.ID)
	dst = append(dst, byte(r.Op))
	switch r.Op {
	case OpGet, OpDelete:
		dst = be.AppendUint64(dst, r.Key)
	case OpPut:
		dst = be.AppendUint64(dst, r.Key)
		dst = be.AppendUint64(dst, r.Val)
	case OpPutBatch:
		dst = be.AppendUint32(dst, uint32(len(r.Pairs)))
		for _, kv := range r.Pairs {
			dst = be.AppendUint64(dst, kv.Key)
			dst = be.AppendUint64(dst, kv.Val)
		}
	case OpScan:
		dst = be.AppendUint64(dst, r.Lo)
		dst = be.AppendUint64(dst, r.Hi)
		dst = be.AppendUint32(dst, r.Max)
	case OpStats:
	default:
		return dst[:lenAt], fmt.Errorf("wire: cannot encode unknown opcode %d", r.Op)
	}
	return appendFrame(dst, lenAt), nil
}

// DecodeRequest parses one request frame body (the bytes after the length
// prefix). It never panics on arbitrary input and rejects trailing bytes.
func DecodeRequest(body []byte) (Request, error) {
	var r Request
	if len(body) < reqHeader {
		return r, malformed("request body %d bytes, want >= %d", len(body), reqHeader)
	}
	r.ID = be.Uint64(body)
	r.Op = Op(body[8])
	p := body[reqHeader:]
	switch r.Op {
	case OpGet, OpDelete:
		if len(p) != 8 {
			return r, malformed("%s payload %d bytes, want 8", r.Op, len(p))
		}
		r.Key = be.Uint64(p)
	case OpPut:
		if len(p) != 16 {
			return r, malformed("Put payload %d bytes, want 16", len(p))
		}
		r.Key = be.Uint64(p)
		r.Val = be.Uint64(p[8:])
	case OpPutBatch:
		if len(p) < 4 {
			return r, malformed("PutBatch payload %d bytes, want >= 4", len(p))
		}
		n := be.Uint32(p)
		p = p[4:]
		// Length check before allocation: n is attacker-controlled, the
		// actual bytes present are not.
		if uint64(len(p)) != uint64(n)*16 {
			return r, malformed("PutBatch count %d disagrees with %d payload bytes", n, len(p))
		}
		if n > MaxPairs {
			return r, malformed("PutBatch count %d exceeds MaxPairs %d", n, MaxPairs)
		}
		pairs := make([]KV, n)
		for i := range pairs {
			pairs[i].Key = be.Uint64(p[i*16:])
			pairs[i].Val = be.Uint64(p[i*16+8:])
		}
		r.Pairs = pairs
	case OpScan:
		if len(p) != 20 {
			return r, malformed("Scan payload %d bytes, want 20", len(p))
		}
		r.Lo = be.Uint64(p)
		r.Hi = be.Uint64(p[8:])
		r.Max = be.Uint32(p[16:])
	case OpStats:
		if len(p) != 0 {
			return r, malformed("Stats payload %d bytes, want 0", len(p))
		}
	default:
		return r, malformed("unknown opcode %d", uint8(r.Op))
	}
	return r, nil
}

// AppendResponse appends r as one length-prefixed frame to dst and returns
// the extended slice. Scan responses exceeding MaxPairs fail at encode time;
// servers cap result sets below that.
func AppendResponse(dst []byte, r *Response) ([]byte, error) {
	if r.Op == OpScan && r.Status == StatusOK && len(r.Pairs) > MaxPairs {
		return dst, fmt.Errorf("%w: %d > %d", ErrTooManyKV, len(r.Pairs), MaxPairs)
	}
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = be.AppendUint64(dst, r.ID)
	dst = append(dst, byte(r.Op), byte(r.Status))
	switch {
	case r.Status == StatusErr || r.Status == StatusClosed:
		dst = append(dst, r.Msg...)
	case r.Status != StatusOK:
		// NotFound and any forward-compatible status carry no payload.
	default:
		switch r.Op {
		case OpGet:
			dst = be.AppendUint64(dst, r.Val)
		case OpScan:
			dst = be.AppendUint32(dst, uint32(len(r.Pairs)))
			for _, kv := range r.Pairs {
				dst = be.AppendUint64(dst, kv.Key)
				dst = be.AppendUint64(dst, kv.Val)
			}
		case OpStats:
			for _, v := range [statsWords]uint64{
				r.Stats.Ops, r.Stats.Errors, r.Stats.BytesIn,
				r.Stats.BytesOut, r.Stats.ConnsLive, r.Stats.ConnsTotal,
			} {
				dst = be.AppendUint64(dst, v)
			}
		case OpPut, OpDelete, OpPutBatch:
		default:
			return dst[:lenAt], fmt.Errorf("wire: cannot encode unknown opcode %d", r.Op)
		}
	}
	return appendFrame(dst, lenAt), nil
}

// DecodeResponse parses one response frame body. Like DecodeRequest it never
// panics and rejects trailing bytes.
func DecodeResponse(body []byte) (Response, error) {
	var r Response
	if len(body) < respHeader {
		return r, malformed("response body %d bytes, want >= %d", len(body), respHeader)
	}
	r.ID = be.Uint64(body)
	r.Op = Op(body[8])
	r.Status = Status(body[9])
	p := body[respHeader:]
	switch r.Status {
	case StatusErr, StatusClosed:
		r.Msg = string(p)
		return r, nil
	case StatusNotFound:
		if len(p) != 0 {
			return r, malformed("NotFound payload %d bytes, want 0", len(p))
		}
		return r, nil
	case StatusOK:
	default:
		return r, malformed("unknown status %d", uint8(r.Status))
	}
	switch r.Op {
	case OpGet:
		if len(p) != 8 {
			return r, malformed("Get response payload %d bytes, want 8", len(p))
		}
		r.Val = be.Uint64(p)
	case OpPut, OpDelete, OpPutBatch:
		if len(p) != 0 {
			return r, malformed("%s response payload %d bytes, want 0", r.Op, len(p))
		}
	case OpScan:
		if len(p) < 4 {
			return r, malformed("Scan response payload %d bytes, want >= 4", len(p))
		}
		n := be.Uint32(p)
		p = p[4:]
		if uint64(len(p)) != uint64(n)*16 {
			return r, malformed("Scan count %d disagrees with %d payload bytes", n, len(p))
		}
		if n > MaxPairs {
			return r, malformed("Scan count %d exceeds MaxPairs %d", n, MaxPairs)
		}
		pairs := make([]KV, n)
		for i := range pairs {
			pairs[i].Key = be.Uint64(p[i*16:])
			pairs[i].Val = be.Uint64(p[i*16+8:])
		}
		r.Pairs = pairs
	case OpStats:
		if len(p) != statsWords*8 {
			return r, malformed("Stats response payload %d bytes, want %d", len(p), statsWords*8)
		}
		r.Stats = Stats{
			Ops:        be.Uint64(p),
			Errors:     be.Uint64(p[8:]),
			BytesIn:    be.Uint64(p[16:]),
			BytesOut:   be.Uint64(p[24:]),
			ConnsLive:  be.Uint64(p[32:]),
			ConnsTotal: be.Uint64(p[40:]),
		}
	default:
		return r, malformed("unknown opcode %d", uint8(r.Op))
	}
	return r, nil
}
