package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest feeds arbitrary bytes to the request decoder. The
// decoder must never panic, and anything it accepts must survive an
// encode → decode round trip unchanged (so the accepted language is exactly
// the encodable one).
func FuzzDecodeRequest(f *testing.F) {
	for _, r := range requestCases() {
		frame, err := AppendRequest(nil, &r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[8:]) // seed with valid bodies (frame header stripped)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeRequest(body)
		if err != nil {
			return
		}
		frame, err := AppendRequest(nil, &req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %v (%+v)", err, req)
		}
		if !bytes.Equal(frame[8:], body) {
			t.Fatalf("re-encoded body differs:\n got %x\nwant %x", frame[8:], body)
		}
		if got, err := DecodeRequest(frame[8:]); err != nil {
			t.Fatalf("re-decode failed: %v (%+v)", err, got)
		}
	})
}

// FuzzDecodeResponse is the same hardening for the response decoder.
func FuzzDecodeResponse(f *testing.F) {
	for _, r := range responseCases() {
		frame, err := AppendResponse(nil, &r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[8:])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		resp, err := DecodeResponse(body)
		if err != nil {
			return
		}
		frame, err := AppendResponse(nil, &resp)
		if err != nil {
			t.Fatalf("decoded response does not re-encode: %v (%+v)", err, resp)
		}
		if !bytes.Equal(frame[8:], body) {
			t.Fatalf("re-encoded body differs:\n got %x\nwant %x", frame[8:], body)
		}
	})
}
