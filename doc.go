// Package repro is a Go reproduction of "Endurable Transient Inconsistency
// in Byte-Addressable Persistent B+-Tree" (FAST 2018) grown into a small
// persistent-memory storage stack. It contains the FAST and FAIR algorithms,
// a simulated persistent-memory substrate with crash injection, the paper's
// baseline index structures, a benchmark harness regenerating every figure,
// and the public layers on top:
//
//   - package index — the canonical Index interface, the Kind registry, and
//     the Open/OpenExisting/New factories over every structure under test;
//   - package store — a sharded concurrent KV store that hash-partitions
//     keys across FAST+FAIR trees (one pool per shard), hides per-goroutine
//     pmem.Thread handling behind Sessions, stores fixed-width uint64
//     values in-tree and variable-length byte values through a per-shard
//     persistent value log (internal/vlog), reopens crash images with
//     per-shard recovery, and drains in-flight operations on Close
//     (operations on a closed store fail with store.ErrClosed);
//   - package wire — the pmkv network protocol: length-prefixed binary
//     frames with request ids for pipelining, fixed-width and varlen
//     opcodes, fuzz-hardened decoders (normative spec in wire/PROTOCOL.md);
//   - package server — a TCP server over a store.Store with per-connection
//     worker Sessions, graceful drain on Shutdown, and serve-side counters
//     (run it with cmd/pmkv-server, load it with cmd/pmkv-loadgen);
//   - package client — the pipelined Go client: async Calls matched by id,
//     synchronous wrappers, and a round-robin connection Pool.
//
// See README.md for the package layout and how to run the benchmarks,
// ARCHITECTURE.md for the layer map and the per-layer crash-consistency
// argument, and wire/PROTOCOL.md for the network protocol. The root
// package holds only the figure benchmarks (bench_test.go).
package repro
