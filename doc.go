// Package repro is a Go reproduction of "Endurable Transient Inconsistency
// in Byte-Addressable Persistent B+-Tree" (FAST 2018): the FAST and FAIR
// algorithms, a simulated persistent-memory substrate, the paper's baseline
// index structures, and a benchmark harness regenerating every figure.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The root package holds only the figure benchmarks (bench_test.go).
package repro
