package index

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/pmem"
)

// Driver builds and re-attaches one index kind. Third-party structures can
// join the registry (and thereby every harness in the repository) by calling
// Register.
type Driver struct {
	// New creates a fresh, empty index in the pool and persists it.
	New func(p *pmem.Pool, th *pmem.Thread, o Options) (Impl, error)
	// Open attaches to an index image already present in the pool (e.g. a
	// crash image). Nil when the kind cannot re-attach.
	Open func(p *pmem.Pool, th *pmem.Thread, o Options) (Impl, error)
}

var (
	regMu   sync.RWMutex
	drivers = map[Kind]Driver{}
)

// Register adds a driver for kind. Registering a nil New or a duplicate kind
// panics, as with database/sql drivers.
func Register(kind Kind, d Driver) {
	regMu.Lock()
	defer regMu.Unlock()
	if d.New == nil {
		panic("index: Register with nil New for " + string(kind))
	}
	if _, dup := drivers[kind]; dup {
		panic("index: Register called twice for " + string(kind))
	}
	drivers[kind] = d
}

// Kinds returns the registered kinds in sorted order.
func Kinds() []Kind {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Kind, 0, len(drivers))
	for k := range drivers {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func driverFor(kind Kind) (Driver, error) {
	regMu.RLock()
	d, ok := drivers[kind]
	regMu.RUnlock()
	if !ok {
		return Driver{}, fmt.Errorf("%w %q", ErrUnknownKind, kind)
	}
	return d, nil
}

// Open creates a fresh index of the given kind inside pool, using th for the
// initialising stores.
func Open(kind Kind, pool *pmem.Pool, th *pmem.Thread, opts Options) (Index, error) {
	d, err := driverFor(kind)
	if err != nil {
		return nil, err
	}
	impl, err := d.New(pool, th, opts)
	if err != nil {
		return nil, fmt.Errorf("index: open %s: %w", kind, err)
	}
	return &handle{Impl: impl, kind: kind}, nil
}

// OpenExisting attaches to an index image already present in pool — a
// reopened device or a crash image. It performs no recovery; call Recover to
// repair transient inconsistency eagerly.
func OpenExisting(kind Kind, pool *pmem.Pool, th *pmem.Thread, opts Options) (Index, error) {
	d, err := driverFor(kind)
	if err != nil {
		return nil, err
	}
	if d.Open == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotReopenable, kind)
	}
	impl, err := d.Open(pool, th, opts)
	if err != nil {
		return nil, fmt.Errorf("index: reopen %s: %w", kind, err)
	}
	return &handle{Impl: impl, kind: kind}, nil
}

// New is the harness convenience factory: it builds a pool from mem
// (defaulting Size to 1 GiB), opens a fresh index of the given kind in it,
// and returns a first thread for the calling goroutine.
func New(kind Kind, mem pmem.Config, opts Options) (Index, *pmem.Thread, error) {
	if mem.Size == 0 {
		mem.Size = 1 << 30
	}
	p := pmem.New(mem)
	th := p.NewThread()
	ix, err := Open(kind, p, th, opts)
	if err != nil {
		return nil, nil, err
	}
	return ix, th, nil
}

// handle wraps a registered implementation with its registry identity.
type handle struct {
	Impl
	kind Kind
}

func (h *handle) Kind() Kind { return h.kind }

// Close releases the handle. It is idempotent and keeps the persistent
// image intact; it exists so layered owners (package store) have a uniform
// lifecycle to drive, and so future drivers with volatile resources (e.g.
// FP-tree's rebuilt inner nodes) have a hook to drop them.
func (h *handle) Close() error { return nil }
