package index

import (
	"repro/internal/blink"
	"repro/internal/core"
	"repro/internal/fptree"
	"repro/internal/pmem"
	"repro/internal/skiplist"
	"repro/internal/wbtree"
	"repro/internal/wort"
)

// Built-in driver registrations. Each closure maps the generic Options onto
// the implementation's own option struct; the FAST+FAIR variants differ only
// in the core.Options flags they set.

func coreOptions(o Options, leafLocks, loggedSplit bool) core.Options {
	return core.Options{
		NodeSize:     o.NodeSize,
		RootSlot:     o.RootSlot,
		LeafLocks:    leafLocks,
		LoggedSplit:  loggedSplit,
		InlineValues: o.InlineValues,
	}
}

func registerCore(kind Kind, leafLocks, loggedSplit bool) {
	Register(kind, Driver{
		New: func(p *pmem.Pool, th *pmem.Thread, o Options) (Impl, error) {
			return core.New(p, th, coreOptions(o, leafLocks, loggedSplit))
		},
		Open: func(p *pmem.Pool, th *pmem.Thread, o Options) (Impl, error) {
			return core.Open(p, th, coreOptions(o, leafLocks, loggedSplit))
		},
	})
}

func init() {
	registerCore(FastFair, false, false)
	registerCore(FastFairLeafLock, true, false)
	registerCore(FastFairLogging, false, true)

	Register(FPTree, Driver{
		New: func(p *pmem.Pool, th *pmem.Thread, o Options) (Impl, error) {
			return fptree.New(p, th, fptree.Options{LeafSize: o.NodeSize, RootSlot: o.RootSlot})
		},
		Open: func(p *pmem.Pool, th *pmem.Thread, o Options) (Impl, error) {
			return fptree.Open(p, th, fptree.Options{LeafSize: o.NodeSize, RootSlot: o.RootSlot})
		},
	})
	Register(WBTree, Driver{
		New: func(p *pmem.Pool, th *pmem.Thread, o Options) (Impl, error) {
			return wbtree.New(p, th, wbtree.Options{NodeSize: o.NodeSize, RootSlot: o.RootSlot})
		},
		Open: func(p *pmem.Pool, th *pmem.Thread, o Options) (Impl, error) {
			return wbtree.Open(p, th, wbtree.Options{NodeSize: o.NodeSize, RootSlot: o.RootSlot})
		},
	})
	Register(WORT, Driver{
		New: func(p *pmem.Pool, th *pmem.Thread, o Options) (Impl, error) {
			return wort.New(p, th, wort.Options{RootSlot: o.RootSlot})
		},
		Open: func(p *pmem.Pool, th *pmem.Thread, o Options) (Impl, error) {
			return wort.Open(p, th, wort.Options{RootSlot: o.RootSlot})
		},
	})
	Register(SkipList, Driver{
		New: func(p *pmem.Pool, th *pmem.Thread, o Options) (Impl, error) {
			return skiplist.New(p, th, skiplist.Options{RootSlot: o.RootSlot})
		},
		Open: func(p *pmem.Pool, th *pmem.Thread, o Options) (Impl, error) {
			return skiplist.Open(p, th, skiplist.Options{RootSlot: o.RootSlot})
		},
	})
	// B-link keeps its root only in the pool header it was created with and
	// has no Open path; it exists as the Figure 7 DRAM reference.
	Register(BLink, Driver{
		New: func(p *pmem.Pool, th *pmem.Thread, o Options) (Impl, error) {
			return blink.New(p, th, blink.Options{NodeSize: o.NodeSize, RootSlot: o.RootSlot})
		},
	})
}
