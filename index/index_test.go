package index

import (
	"errors"
	"testing"

	"repro/internal/pmem"
)

func allKinds() []Kind {
	return []Kind{FastFair, FastFairLeafLock, FastFairLogging, FPTree, WBTree, WORT, SkipList, BLink}
}

func TestKindsRegistered(t *testing.T) {
	reg := map[Kind]bool{}
	for _, k := range Kinds() {
		reg[k] = true
	}
	for _, k := range allKinds() {
		if !reg[k] {
			t.Errorf("kind %q not registered", k)
		}
	}
}

// TestOpenAllKinds drives the full operation set of every registered kind
// through the public interface.
func TestOpenAllKinds(t *testing.T) {
	keys := []uint64{}
	for i := uint64(1); i <= 500; i++ {
		keys = append(keys, i*2654435761%100000+1)
	}
	for _, k := range allKinds() {
		k := k
		t.Run(string(k), func(t *testing.T) {
			ix, th, err := New(k, pmem.Config{Size: 64 << 20}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if ix.Kind() != k {
				t.Fatalf("Kind() = %q, want %q", ix.Kind(), k)
			}
			want := map[uint64]uint64{}
			for _, key := range keys {
				if err := ix.Insert(th, key, key+1); err != nil {
					t.Fatal(err)
				}
				want[key] = key + 1
			}
			for key, val := range want {
				got, ok := ix.Get(th, key)
				if !ok || got != val {
					t.Fatalf("Get(%d) = (%d,%v), want %d", key, got, ok, val)
				}
			}
			if n := ix.Len(th); n != len(want) {
				t.Fatalf("Len = %d, want %d", n, len(want))
			}
			// Ascending scan over the whole range.
			last := uint64(0)
			seen := 0
			ix.Scan(th, 0, ^uint64(0), func(key, val uint64) bool {
				if key <= last && seen > 0 {
					t.Fatalf("scan out of order: %d after %d", key, last)
				}
				if want[key] != val {
					t.Fatalf("scan value %d for key %d, want %d", val, key, want[key])
				}
				last = key
				seen++
				return true
			})
			if seen != len(want) {
				t.Fatalf("scan saw %d, want %d", seen, len(want))
			}
			if !ix.Delete(th, keys[0]) {
				t.Fatal("delete failed")
			}
			if _, ok := ix.Get(th, keys[0]); ok {
				t.Fatal("deleted key still present")
			}
			if err := ix.Close(); err != nil {
				t.Fatal(err)
			}
			if err := ix.Close(); err != nil {
				t.Fatal("Close is not idempotent:", err)
			}
		})
	}
}

func TestUnknownKind(t *testing.T) {
	if _, _, err := New("nope", pmem.Config{}, Options{}); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("err = %v, want ErrUnknownKind", err)
	}
	p := pmem.New(pmem.Config{Size: 1 << 20})
	if _, err := OpenExisting("nope", p, p.NewThread(), Options{}); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("err = %v, want ErrUnknownKind", err)
	}
}

// TestOpenExisting checks that every reopenable kind re-attaches to its pool
// image with the data intact, and that B-link reports ErrNotReopenable.
func TestOpenExisting(t *testing.T) {
	for _, k := range allKinds() {
		k := k
		t.Run(string(k), func(t *testing.T) {
			ix, th, err := New(k, pmem.Config{Size: 64 << 20}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := uint64(1); i <= 100; i++ {
				if err := ix.Insert(th, i, i*7); err != nil {
					t.Fatal(err)
				}
			}
			pool := ix.Pool()
			if err := ix.Close(); err != nil {
				t.Fatal(err)
			}

			th2 := pool.NewThread()
			re, err := OpenExisting(k, pool, th2, Options{})
			if k == BLink {
				if !errors.Is(err, ErrNotReopenable) {
					t.Fatalf("B-link reopen err = %v, want ErrNotReopenable", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := Recover(re, th2); err != nil {
				t.Fatal(err)
			}
			if err := CheckInvariants(re, th2); err != nil {
				t.Fatal(err)
			}
			for i := uint64(1); i <= 100; i++ {
				got, ok := re.Get(th2, i)
				if !ok || got != i*7 {
					t.Fatalf("after reopen Get(%d) = (%d,%v), want %d", i, got, ok, i*7)
				}
			}
		})
	}
}

func TestRegisterForeignDriver(t *testing.T) {
	Register("test-foreign", Driver{
		New: func(p *pmem.Pool, th *pmem.Thread, o Options) (Impl, error) {
			return nil, errors.New("stub")
		},
	})
	found := false
	for _, k := range Kinds() {
		if k == "test-foreign" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered kind not listed")
	}
	if _, _, err := New("test-foreign", pmem.Config{Size: 1 << 20}, Options{}); err == nil {
		t.Fatal("stub driver error not surfaced")
	}
	if _, err := OpenExisting("test-foreign", pmem.New(pmem.Config{Size: 1 << 20}), nil, Options{}); !errors.Is(err, ErrNotReopenable) {
		t.Fatalf("driver without Open: err = %v, want ErrNotReopenable", err)
	}
}
