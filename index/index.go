// Package index is the public index-structure API of this repository: one
// canonical Index interface over every persistent structure under test, a
// Kind registry naming the implementations, and factories that create or
// re-attach an index inside a pmem.Pool.
//
// The figure harness (internal/bench), the TPC-C workload (internal/tpcc),
// and the sharded KV layer (package store) all consume this interface; the
// per-kind constructor dispatch lives here and nowhere else.
package index

import (
	"errors"

	"repro/internal/pmem"
)

// Impl is the operation set an index implementation must provide to be
// registered. Every method takes the caller's per-goroutine pmem.Thread;
// implementations are safe for concurrent use only when the underlying
// structure is (FAST+FAIR, B-link and the skip list are; the single-threaded
// baselines are not).
type Impl interface {
	// Insert stores val under key, replacing any existing value.
	Insert(th *pmem.Thread, key, val uint64) error
	// Get returns the value stored under key.
	Get(th *pmem.Thread, key uint64) (uint64, bool)
	// Delete removes key, reporting whether it was present.
	Delete(th *pmem.Thread, key uint64) bool
	// Scan visits pairs with lo <= key <= hi in ascending key order until
	// fn returns false.
	Scan(th *pmem.Thread, lo, hi uint64, fn func(key, val uint64) bool)
	// Len counts the keys (a full scan; not a hot path).
	Len(th *pmem.Thread) int
	// Pool returns the backing pool.
	Pool() *pmem.Pool
}

// Index is the canonical index handle: the implementation's operation set
// plus handle identity and lifecycle.
type Index interface {
	Impl
	// Kind reports which registered implementation backs the handle.
	Kind() Kind
	// Close releases the handle. It is idempotent; the persistent image
	// stays in the pool and can be re-attached with OpenExisting.
	Close() error
}

// Kind names an index implementation, using the paper's series letters.
type Kind string

// The built-in kinds (registered by this package).
const (
	FastFair         Kind = "FAST+FAIR"          // F
	FastFairLeafLock Kind = "FAST+FAIR+LeafLock" // Fig 7 variant
	FastFairLogging  Kind = "FAST+Logging"       // L
	FPTree           Kind = "FP-tree"            // P
	WBTree           Kind = "wB+-tree"           // W
	WORT             Kind = "WORT"               // O
	SkipList         Kind = "SkipList"           // S
	BLink            Kind = "B-link"             // Fig 7 reference
)

// Options shapes an index instantiation. The zero value selects each kind's
// defaults.
type Options struct {
	// NodeSize overrides the B+-tree node / FP-tree leaf size in bytes.
	NodeSize int
	// RootSlot selects which pool root-pointer slot anchors the index,
	// letting several indexes share one pool. Default 0.
	RootSlot int
	// InlineValues stores values directly in leaf records on the
	// FAST+FAIR variants (the paper's setup, where leaf pointers are the
	// values). It requires values to be unique and non-zero; the figure
	// workloads guarantee this by using the key as the value.
	InlineValues bool
}

// Errors returned by the factories.
var (
	// ErrUnknownKind reports a Kind with no registered driver.
	ErrUnknownKind = errors.New("index: unknown kind")
	// ErrNotReopenable reports a kind whose driver cannot re-attach to an
	// existing pool image.
	ErrNotReopenable = errors.New("index: kind cannot reopen existing images")
)

// Recoverer is implemented by kinds with an eager crash-recovery pass
// (FAST+FAIR repairs transient inconsistency left by a crash).
type Recoverer interface {
	Recover(th *pmem.Thread) error
}

// Exchanger is implemented by kinds whose Insert can atomically return the
// displaced value. The store's value-log garbage accounting needs the old
// word of every overwrite.
type Exchanger interface {
	Exchange(th *pmem.Thread, key, val uint64) (old uint64, existed bool, err error)
}

// ConditionalReplacer is implemented by kinds that can atomically replace a
// key's value only while it still holds an expected word — the commit
// primitive of value-log record relocation.
type ConditionalReplacer interface {
	ReplaceIf(th *pmem.Thread, key, old, new uint64) bool
}

// Remover is implemented by kinds whose Delete can atomically return the
// displaced value.
type Remover interface {
	Remove(th *pmem.Thread, key uint64) (old uint64, existed bool)
}

// Exchange stores val under key and returns the value it displaced. Kinds
// without a native Exchange fall back to Get+Insert, which is atomic only
// for single-writer use — exactly the concurrency story of the kinds that
// lack it (the FAST+FAIR variants implement it natively under the leaf
// latch).
func Exchange(ix Index, th *pmem.Thread, key, val uint64) (old uint64, existed bool, err error) {
	if e, ok := Unwrap(ix).(Exchanger); ok {
		return e.Exchange(th, key, val)
	}
	old, existed = ix.Get(th, key)
	if err := ix.Insert(th, key, val); err != nil {
		return 0, false, err
	}
	return old, existed, nil
}

// ReplaceIf replaces key's value old→new only while it still holds old,
// reporting whether it did. The fallback (Get, compare, Insert) is atomic
// only for single-writer kinds; the FAST+FAIR variants implement the
// latched compare-and-swap natively.
func ReplaceIf(ix Index, th *pmem.Thread, key, old, new uint64) bool {
	if r, ok := Unwrap(ix).(ConditionalReplacer); ok {
		return r.ReplaceIf(th, key, old, new)
	}
	cur, found := ix.Get(th, key)
	if !found || cur != old {
		return false
	}
	return ix.Insert(th, key, new) == nil
}

// Remove deletes key and returns the value it held. The fallback
// (Get+Delete) is atomic only for single-writer kinds.
func Remove(ix Index, th *pmem.Thread, key uint64) (old uint64, existed bool) {
	if r, ok := Unwrap(ix).(Remover); ok {
		return r.Remove(th, key)
	}
	old, existed = ix.Get(th, key)
	if !existed {
		return 0, false
	}
	return old, ix.Delete(th, key)
}

// Checker is implemented by kinds that can verify structural invariants.
type Checker interface {
	CheckInvariants(th *pmem.Thread) error
}

// Recover runs the implementation's eager crash-recovery pass if it has
// one. Kinds without a recovery pass (their readers and writers tolerate or
// repair crashed state lazily, or the kind is single-threaded volatile
// rebuild) return nil.
func Recover(ix Index, th *pmem.Thread) error {
	if r, ok := Unwrap(ix).(Recoverer); ok {
		return r.Recover(th)
	}
	return nil
}

// CheckInvariants verifies structural invariants when the implementation
// supports it, returning nil otherwise.
func CheckInvariants(ix Index, th *pmem.Thread) error {
	if c, ok := Unwrap(ix).(Checker); ok {
		return c.CheckInvariants(th)
	}
	return nil
}

// Unwrap returns the concrete implementation behind a handle produced by
// Open/OpenExisting/New, or ix itself for foreign Index implementations.
func Unwrap(ix Index) any {
	if h, ok := ix.(*handle); ok {
		return h.Impl
	}
	return ix
}
