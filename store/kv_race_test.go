package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestKVGCRaceChurn races byte-key writers against value-log GC and
// concurrent readers; it earns its keep under -race (CI runs the store
// package with the detector on). Writers churn overwrite-heavy,
// prefix-colliding keys — every overwrite garbages the old bucket record,
// and the bucket install's ReplaceIf must detect GC relocating the word
// under it and retry — while a dedicated goroutine forces compaction
// passes and readers Get/Scan through the reclamation read-locks the
// whole time. The test asserts the end state exactly; the race detector
// asserts everything else.
func TestKVGCRaceChurn(t *testing.T) {
	st, err := Open(Options{Shards: 2, ShardSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const writers = 3
	const perW = 60 // keys per writer: 20 collision families of 3
	rounds := 12
	if testing.Short() {
		rounds = 5
	}
	key := func(w, i int) []byte {
		return []byte(fmt.Sprintf("race-w%d-%04d-%c", w, i/3, 'a'+i%3))
	}
	val := func(w, i, round int) []byte {
		return bytes.Repeat([]byte{byte(w*31 + i + round)}, 300+(w*perW+i)%200)
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+2)
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ss := st.NewSession()
			defer ss.Close()
			for r := 0; r < rounds; r++ {
				for i := 0; i < perW; i++ {
					if err := ss.PutKV(key(w, i), val(w, i, r)); err != nil {
						errs <- fmt.Errorf("writer %d round %d: %v", w, r, err)
						return
					}
					// Periodic delete+reinsert exercises the remove path
					// and bucket-drop/recreate against GC's Live checks.
					if i%17 == 0 {
						if _, err := ss.DeleteKV(key(w, i)); err != nil {
							errs <- fmt.Errorf("writer %d delete: %v", w, err)
							return
						}
						if err := ss.PutKV(key(w, i), val(w, i, r)); err != nil {
							errs <- fmt.Errorf("writer %d reinsert: %v", w, err)
							return
						}
					}
				}
			}
			errs <- nil
		}(w)
	}
	// Compactor: force GC passes for the whole churn window.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ss := st.NewSession()
		defer ss.Close()
		for {
			select {
			case <-stop:
				errs <- nil
				return
			default:
			}
			if _, err := ss.CompactValues(); err != nil {
				errs <- fmt.Errorf("compactor: %v", err)
				return
			}
		}
	}()
	// Reader: point reads and scans must never see an error or a torn
	// value (values are single-byte-repeated, so tearing is detectable).
	wg.Add(1)
	go func() {
		defer wg.Done()
		ss := st.NewSession()
		defer ss.Close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				errs <- nil
				return
			default:
			}
			k := key(i%writers, i%perW)
			v, ok, err := ss.GetKV(k, nil)
			if err != nil {
				errs <- fmt.Errorf("reader get %q: %v", k, err)
				return
			}
			if ok {
				for _, b := range v[1:] {
					if b != v[0] {
						errs <- fmt.Errorf("reader: torn value under %q", k)
						return
					}
				}
			}
			if i%64 == 0 {
				if err := ss.ScanKV(nil, nil, 100, func(k, v []byte) bool { return true }); err != nil {
					errs <- fmt.Errorf("reader scan: %v", err)
					return
				}
			}
		}
	}()

	for w := 0; w < writers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if st.ValueStats().GCPasses == 0 {
		t.Fatal("no GC pass ran during the churn; the race window never opened")
	}
	// Exact end state: the last round's values, for every writer's keys.
	ss := st.NewSession()
	defer ss.Close()
	for w := 0; w < writers; w++ {
		for i := 0; i < perW; i++ {
			want := val(w, i, rounds-1)
			got, ok, err := ss.GetKV(key(w, i), nil)
			if err != nil || !ok || !bytes.Equal(got, want) {
				t.Fatalf("end state %q: ok=%v err=%v", key(w, i), ok, err)
			}
		}
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
