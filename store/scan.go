package store

import (
	"container/heap"
	"sync"
)

// Scan visits pairs with lo <= key <= hi in ascending global key order,
// calling fn until it returns false. Shards hold disjoint hash partitions
// whose individual scans are ordered, so the global order is a k-way merge:
// each shard streams its range on its own goroutine (using that shard's
// session thread) and the caller's goroutine merges the streams with a heap.
// Per shard the scan has the paper's read-uncommitted semantics under
// concurrent writers; there is no cross-shard snapshot. On a closed store it
// returns ErrClosed without visiting anything; the store cannot close mid-
// scan (the whole merge holds one in-flight reference).
func (ss *Session) Scan(lo, hi uint64, fn func(key, val uint64) bool) error {
	if hi < lo {
		return nil
	}
	if !ss.s.acquire() {
		return ErrClosed
	}
	defer ss.s.release()
	n := len(ss.ths)
	done := make(chan struct{})
	var wg sync.WaitGroup
	cursors := make([]*cursor, n)
	for i := 0; i < n; i++ {
		c := &cursor{ch: make(chan KV, scanBuf)}
		cursors[i] = c
		wg.Add(1)
		go func(i int, c *cursor) {
			defer wg.Done()
			defer close(c.ch)
			ix, th := ss.s.shards[i].ix, ss.ths[i]
			ix.Scan(th, lo, hi, func(k, v uint64) bool {
				select {
				case c.ch <- KV{k, v}:
					return true
				case <-done:
					return false
				}
			})
		}(i, c)
	}
	// Always release the producers, even when fn stops the merge early.
	defer wg.Wait()
	defer close(done)

	h := make(mergeHeap, 0, n)
	for _, c := range cursors {
		if c.advance() {
			h = append(h, c)
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		c := h[0]
		if !fn(c.cur.Key, c.cur.Val) {
			return nil
		}
		if c.advance() {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return nil
}

// scanBuf is the per-shard stream buffer; deep enough to keep producers
// running ahead of the merge, shallow enough that an early stop wastes
// little work.
const scanBuf = 64

type cursor struct {
	ch  chan KV
	cur KV
}

// advance pulls the cursor's next pair, reporting whether one exists.
func (c *cursor) advance() bool {
	kv, ok := <-c.ch
	c.cur = kv
	return ok
}

type mergeHeap []*cursor

func (h mergeHeap) Len() int           { return len(h) }
func (h mergeHeap) Less(i, j int) bool { return h[i].cur.Key < h[j].cur.Key }
func (h mergeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)        { *h = append(*h, x.(*cursor)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
