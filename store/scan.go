package store

import (
	"container/heap"
	"sync"
	"time"
)

// Scan visits pairs with lo <= key <= hi in ascending global key order,
// calling fn until it returns false. Shards hold disjoint hash partitions
// whose individual scans are ordered, so the global order is a k-way merge:
// each shard streams its range on its own goroutine (using that shard's
// session thread) and the caller's goroutine merges the streams with a heap.
// Per shard the scan has the paper's read-uncommitted semantics under
// concurrent writers; there is no cross-shard snapshot. On a closed store it
// returns ErrClosed without visiting anything; the store cannot close mid-
// scan (the whole merge holds one in-flight reference).
func (ss *Session) Scan(lo, hi uint64, fn func(key, val uint64) bool) error {
	if hi < lo {
		return nil
	}
	if !ss.s.acquire() {
		return ErrClosed
	}
	defer ss.s.release()
	n := len(ss.ths)
	done := make(chan struct{})
	var wg sync.WaitGroup
	cursors := make([]*cursor, n)
	for i := 0; i < n; i++ {
		c := &cursor{ch: make(chan KV, scanBuf)}
		cursors[i] = c
		wg.Add(1)
		go func(i int, c *cursor) {
			defer wg.Done()
			defer close(c.ch)
			ix, th := ss.s.shards[i].ix, ss.ths[i]
			ix.Scan(th, lo, hi, func(k, v uint64) bool {
				select {
				case c.ch <- KV{k, v}:
					return true
				case <-done:
					return false
				}
			})
		}(i, c)
	}
	// Always release the producers, even when fn stops the merge early.
	defer wg.Wait()
	defer close(done)

	h := make(mergeHeap, 0, n)
	for _, c := range cursors {
		if c.advance() {
			h = append(h, c)
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		c := h[0]
		if !fn(c.cur.Key, c.cur.Val) {
			return nil
		}
		if c.advance() {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	return nil
}

// ScanLimit collects at most max pairs with lo <= key <= hi in ascending
// global key order and returns them in a session-owned slice, valid until
// the next ScanLimit on the same session. It is the bounded, allocation-free
// counterpart to Scan, built for the server's paged Scan requests: each
// shard's range is collected sequentially (capped at max pairs per shard)
// into buffers the session reuses, then the sorted per-shard runs are merged
// with cursors — no goroutines, no channels, and in steady state no heap
// allocations. The trade against the streaming Scan is over-collection:
// because any shard alone could hold the max globally-smallest keys, up to
// shards x max pairs are read to return max, so ScanLimit suits the
// page-sized limits the server issues, while unbounded iteration belongs on
// Scan. Buffers beyond scanRetainCap are released after the merge, so one
// huge request does not pin its high-water memory on the session. Per shard
// the collection has the paper's read-uncommitted semantics, like Scan. On
// a closed store it returns ErrClosed.
func (ss *Session) ScanLimit(lo, hi uint64, max int) ([]KV, error) {
	if hi < lo || max <= 0 {
		return nil, nil
	}
	if !ss.s.acquire() {
		return nil, ErrClosed
	}
	defer ss.s.release()
	if ss.sampleOp() {
		defer ss.s.met.scan.RecordSince(time.Now())
	}
	n := len(ss.ths)
	if ss.scanBufs == nil {
		// First use: build the per-shard collector closures once, so
		// later calls create no func values.
		ss.scanBufs = make([][]KV, n)
		ss.scanCur = make([]int, n)
		ss.collect = make([]func(uint64, uint64) bool, n)
		for i := range ss.collect {
			i := i
			ss.collect[i] = func(k, v uint64) bool {
				ss.scanBufs[i] = append(ss.scanBufs[i], KV{k, v})
				return len(ss.scanBufs[i]) < ss.scanMax
			}
		}
	}
	ss.scanMax = max
	for i := 0; i < n; i++ {
		ss.scanBufs[i] = ss.scanBufs[i][:0]
		ss.s.shards[i].ix.Scan(ss.ths[i], lo, hi, ss.collect[i])
	}
	// Merge the sorted per-shard runs by repeated minimum selection; shard
	// counts are small enough that a heap would cost more than it saves.
	out := ss.scanOut[:0]
	cur := ss.scanCur
	for i := range cur {
		cur[i] = 0
	}
	for len(out) < max {
		best := -1
		for i := 0; i < n; i++ {
			if cur[i] < len(ss.scanBufs[i]) &&
				(best < 0 || ss.scanBufs[i][cur[i]].Key < ss.scanBufs[best][cur[best]].Key) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, ss.scanBufs[best][cur[best]])
		cur[best]++
	}
	ss.scanOut = out
	for i := range ss.scanBufs {
		if cap(ss.scanBufs[i]) > scanRetainCap {
			ss.scanBufs[i] = nil
		}
	}
	if cap(ss.scanOut) > scanRetainCap {
		ss.scanOut = nil // out itself stays alive with the caller
	}
	return out, nil
}

// scanRetainCap bounds the pairs a session keeps cached per ScanLimit
// buffer between calls (64 KiB each at 16 B/pair). Typical server pages
// stay allocation-free; a one-off huge scan gives its memory back.
const scanRetainCap = 4096

// scanBuf is the per-shard stream buffer; deep enough to keep producers
// running ahead of the merge, shallow enough that an early stop wastes
// little work.
const scanBuf = 64

type cursor struct {
	ch  chan KV
	cur KV
}

// advance pulls the cursor's next pair, reporting whether one exists.
func (c *cursor) advance() bool {
	kv, ok := <-c.ch
	c.cur = kv
	return ok
}

type mergeHeap []*cursor

func (h mergeHeap) Len() int           { return len(h) }
func (h mergeHeap) Less(i, j int) bool { return h[i].cur.Key < h[j].cur.Key }
func (h mergeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)        { *h = append(*h, x.(*cursor)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
