package store

import (
	"errors"
	"fmt"

	"repro/internal/vlog"
)

// The varlen value API. Each shard pairs its FAST+FAIR tree with a
// persistent append-only value log (internal/vlog); PutBytes appends the
// value to the shard's log and stores the returned Ref — one uint64 — in
// the tree, so the tree's 8-byte failure-atomic store discipline is
// untouched. GetBytes resolves the Ref back to bytes, validating the log
// record's header and checksum on the way.
//
// Crash atomicity composes from the two layers' own guarantees: the log
// record is fully durable before its Ref exists anywhere (the log tail
// publish is ordered after the record flush, and the tree Insert starts
// only after Append returns), and the tree insert of the Ref is the
// paper's single atomic 8-byte store. A crash mid-PutBytes therefore
// leaves either no trace (record unreachable, truncated by Reopen) or a
// leaked-but-intact record (tail published, tree insert lost) — never a
// torn value behind a live key.
//
// Fixed-width (Put/Get) and varlen (PutBytes/GetBytes) values share one
// tree per shard, so a single key must be used through one API
// consistently. The store cannot tell a fixed value from a Ref by looking
// at the word; it tells them apart at read time, when a fixed value fails
// the log's Ref validation (GetBytes on it returns ErrNotVarlen) — while
// Get on a varlen key returns the raw Ref, which is meaningless but
// harmless. Overwriting or deleting a varlen key strands the old record
// as garbage in the log until a future compaction pass.

// MaxValue is the largest value PutBytes accepts: 1 MiB less the wire
// protocol's frame headroom, equal to wire.MaxValue (asserted by a server
// test) so every stored value can be served over the network.
const MaxValue = 1<<20 - 64

// Errors of the varlen API.
var (
	// ErrValueTooLarge reports a PutBytes value above MaxValue.
	ErrValueTooLarge = errors.New("store: value exceeds MaxValue")
	// ErrNotVarlen reports a GetBytes/ScanBytes of a key whose stored
	// word is not a valid value-log reference — a key written through
	// the fixed-width Put API.
	ErrNotVarlen = errors.New("store: key does not hold a varlen value")
	// ErrValueCorrupt reports a value-log record that failed its
	// checksum: the key's reference was valid but the image is damaged.
	// Unlike ErrNotVarlen this is data loss, not API misuse.
	ErrValueCorrupt = errors.New("store: varlen value failed its checksum")
)

// wrapReadErr classifies a vlog read failure: checksum failures are
// corruption, everything else (bad offset, header/ref disagreement) is a
// fixed-width key read through the varlen API.
func wrapReadErr(key uint64, err error) error {
	if errors.Is(err, vlog.ErrCorrupt) {
		return fmt.Errorf("%w (key %d): %v", ErrValueCorrupt, key, err)
	}
	return fmt.Errorf("%w (key %d): %v", ErrNotVarlen, key, err)
}

// PutBytes stores val as a byte-string value under key, replacing any
// existing value (fixed or varlen). The value is durable when PutBytes
// returns; a crash mid-call can only lose the whole update, never expose
// a torn or partial value. On a closed store it returns ErrClosed.
func (ss *Session) PutBytes(key uint64, val []byte) error {
	if len(val) > MaxValue {
		return fmt.Errorf("%w: %d > %d bytes", ErrValueTooLarge, len(val), MaxValue)
	}
	if !ss.s.acquire() {
		return ErrClosed
	}
	defer ss.s.release()
	i := ss.s.ShardFor(key)
	sh := &ss.s.shards[i]
	ref, err := sh.vl.Append(ss.ths[i], val)
	if err != nil {
		return fmt.Errorf("store: shard %d value log: %w", i, err)
	}
	return sh.ix.Insert(ss.ths[i], key, uint64(ref))
}

// GetBytes returns the byte-string value stored under key, appended to dst
// (pass nil, or a recycled buffer, to control allocation). The middle
// return reports presence. A key written through the fixed-width Put API
// fails with ErrNotVarlen. On a closed store it returns ErrClosed.
func (ss *Session) GetBytes(key uint64, dst []byte) ([]byte, bool, error) {
	if !ss.s.acquire() {
		return dst, false, ErrClosed
	}
	defer ss.s.release()
	i := ss.s.ShardFor(key)
	sh := &ss.s.shards[i]
	ref, ok := sh.ix.Get(ss.ths[i], key)
	if !ok {
		return dst, false, nil
	}
	out, err := sh.vl.Read(ss.ths[i], vlog.Ref(ref), dst)
	if err != nil {
		return dst, false, wrapReadErr(key, err)
	}
	return out, true, nil
}

// DeleteBytes removes a varlen key, reporting whether it was present. The
// tree entry disappears atomically; the value's log record becomes
// garbage until compaction. It is Delete with a name that documents the
// varlen discipline — the two are interchangeable for removal.
func (ss *Session) DeleteBytes(key uint64) (bool, error) {
	return ss.Delete(key)
}

// ScanBytes visits varlen pairs with lo <= key <= hi in ascending global
// key order, resolving each tree Ref to its value bytes and calling fn
// until it returns false or max pairs (max <= 0 means no bound beyond the
// ScanLimit page cap) have been visited. The val slice is owned by the
// session and valid only during the callback — copy it to keep it.
//
// Like ScanLimit, which it pages on, the per-shard collection is
// read-uncommitted and bounded: at most max pairs are returned per call,
// so callers paginate with lo = lastKey+1. A fixed-width key inside the
// range aborts the scan with ErrNotVarlen: keep fixed and varlen keys in
// disjoint ranges if both share a store. On a closed store it returns
// ErrClosed.
func (ss *Session) ScanBytes(lo, hi uint64, max int, fn func(key uint64, val []byte) bool) error {
	if max <= 0 || max > maxScanPage {
		max = maxScanPage
	}
	if !ss.s.acquire() {
		return ErrClosed
	}
	defer ss.s.release()
	kvs, err := ss.ScanLimit(lo, hi, max)
	if err != nil {
		return err
	}
	for _, kv := range kvs {
		i := ss.s.ShardFor(kv.Key)
		buf, err := ss.s.shards[i].vl.Read(ss.ths[i], vlog.Ref(kv.Val), ss.valBuf[:0])
		if err != nil {
			return wrapReadErr(kv.Key, err)
		}
		ss.valBuf = buf
		if !fn(kv.Key, buf) {
			return nil
		}
	}
	return nil
}

// maxScanPage bounds one ScanBytes page when the caller passes no max.
const maxScanPage = 65536
