package store

import (
	"errors"
	"fmt"
	"time"

	"repro/index"
	"repro/internal/vlog"
)

// The varlen value API. Each shard pairs its FAST+FAIR tree with a
// persistent append-only value log (internal/vlog); PutBytes appends the
// value to the shard's log and stores the returned Ref — one uint64 — in
// the tree, so the tree's 8-byte failure-atomic store discipline is
// untouched. GetBytes resolves the Ref back to bytes, validating the log
// record's owner key, header and checksum on the way.
//
// Crash atomicity composes from the two layers' own guarantees: the log
// record is fully durable before its Ref exists anywhere (the log tail
// publish is ordered after the record flush, and the tree insert of the
// Ref starts only after Append returns), and the tree insert is the
// paper's single atomic 8-byte store. A crash mid-PutBytes therefore
// leaves either no trace (record unreachable, truncated by Reopen) or a
// leaked-but-intact record (tail published, tree insert lost) — never a
// torn value behind a live key.
//
// Overwriting or deleting a varlen key turns the old record into garbage;
// the displaced tree word is fed to the shard's accounting (every path
// that displaces a word — Put, PutBytes, PutBatch, Delete, DeleteBytes —
// goes through retireWord, the one place stale bytes are counted), and
// value-log GC reclaims the space (Options.GCGarbageRatio,
// Session.CompactValues; see gc.go for the full reclamation argument).
//
// Fixed-width (Put/Get) and varlen (PutBytes/GetBytes) values share one
// tree per shard, so a single key must be used through one API
// consistently. The store cannot tell a fixed value from a Ref by looking
// at the word; it tells them apart at read time, when a fixed value fails
// the log's record validation (GetBytes on it returns ErrNotVarlen) —
// while Get on a varlen key returns the raw Ref, which is meaningless but
// harmless.

// MaxValue is the largest value PutBytes accepts: 1 MiB less the wire
// protocol's frame headroom, equal to wire.MaxValue (asserted by a server
// test) so every stored value can be served over the network.
const MaxValue = 1<<20 - 64

// Errors of the varlen API.
var (
	// ErrValueTooLarge reports a PutBytes value above MaxValue.
	ErrValueTooLarge = errors.New("store: value exceeds MaxValue")
	// ErrNotVarlen reports a GetBytes/ScanBytes of a key whose stored
	// word is not a valid value-log reference — a key written through
	// the fixed-width Put API.
	ErrNotVarlen = errors.New("store: key does not hold a varlen value")
	// ErrValueCorrupt reports a value-log record that failed its
	// checksum: the key's reference was valid but the image is damaged.
	// Unlike ErrNotVarlen this is data loss, not API misuse.
	ErrValueCorrupt = errors.New("store: varlen value failed its checksum")
	// ErrNoSpace reports a write refused because the shard's pool can no
	// longer guarantee value-log space with GC headroom intact. The store
	// degrades, it does not die: reads, deletes, and compaction keep
	// working, and the condition clears once GC (triggered by deletes and
	// overwrites, or an explicit CompactValues) frees extents.
	ErrNoSpace = errors.New("store: value log out of space")
)

// wrapReadErr classifies a vlog read failure: checksum failures are
// corruption, everything else (bad offset, header/key/ref disagreement) is
// a fixed-width key read through the varlen API.
func wrapReadErr(key uint64, err error) error {
	if errors.Is(err, vlog.ErrCorrupt) {
		return fmt.Errorf("%w (key %d): %v", ErrValueCorrupt, key, err)
	}
	return fmt.Errorf("%w (key %d): %v", ErrNotVarlen, key, err)
}

// retireWord is the single funnel for garbage accounting: every operation
// that displaces a tree word hands it here, and the value log decides —
// by validating the word against the record it would name — whether it
// was a varlen reference whose bytes just became garbage. Fixed-width
// values fail the validation and change nothing, which is what makes
// Delete/DeleteBytes on never-varlen keys account consistently (nothing
// to reclaim, nothing counted).
func (ss *Session) retireWord(i int, key uint64, old uint64) bool {
	return ss.s.shards[i].vl.MarkStale(ss.ths[i], key, vlog.Ref(old))
}

// PutBytes stores val as a byte-string value under key, replacing any
// existing value (fixed or varlen). The value is durable when PutBytes
// returns; a crash mid-call can only lose the whole update, never expose
// a torn or partial value. An overwrite retires the old record's bytes to
// the shard's garbage accounting and may run an automatic GC pass (see
// Options.GCGarbageRatio). On a closed store it returns ErrClosed.
//
// The append and the tree install happen inside the shard's reclamation
// read-lock: a GC fence must not complete while a record exists whose ref
// is still on its way into the tree, or the pass could judge that record
// dead, free its extent, and let the install land on recycled memory (see
// gc.go). The lock is shared — writers never wait on each other here.
//
// Space admission runs first, outside the lock: when the shard's pool can
// no longer hold the append plus an extent of GC headroom, PutBytes tries
// one inline compaction pass and, if that does not clear the shortfall,
// fails fast with ErrNoSpace — before the log is grown into the last free
// bytes GC would need to stage relocations. Reads, deletes, and GC are
// unaffected, and the condition clears once compaction frees extents.
func (ss *Session) PutBytes(key uint64, val []byte) error {
	if len(val) > MaxValue {
		return fmt.Errorf("%w: %d > %d bytes", ErrValueTooLarge, len(val), MaxValue)
	}
	if !ss.s.acquire() {
		return ErrClosed
	}
	if err := ss.s.writable(); err != nil {
		ss.s.release()
		return err
	}
	if ss.sampleOp() {
		defer ss.s.met.putBytes.RecordSince(time.Now())
	}
	i := ss.s.ShardFor(key)
	sh := &ss.s.shards[i]
	if sh.vl.Admit(len(val)) != nil {
		// Best-effort reclamation before refusing: a full pass (wait=true
		// queues behind any running one, so its frees count too), then one
		// re-check. The slow path is paid only by writers already out of
		// space — and only when automatic compaction is enabled; with
		// GCGarbageRatio < 0 the operator asked for manual-only GC, so
		// admission refuses immediately and CompactValues is the way out.
		if ss.s.opts.GCGarbageRatio >= 0 {
			_, _ = ss.compactShard(i, 0, true)
		}
		if aerr := sh.vl.Admit(len(val)); aerr != nil {
			ss.s.release()
			return fmt.Errorf("%w: shard %d: %v", ErrNoSpace, i, aerr)
		}
	}
	sh.gc.applyMu.RLock()
	sh.gc.varMu.RLock()
	ref, err := sh.vl.Append(ss.ths[i], key, val)
	if err != nil {
		sh.gc.varMu.RUnlock()
		sh.gc.applyMu.RUnlock()
		ss.s.release()
		if errors.Is(err, vlog.ErrFull) {
			// Admission raced another writer into the last extent; the
			// hard failure is the same condition.
			return fmt.Errorf("%w: shard %d: %v", ErrNoSpace, i, err)
		}
		return fmt.Errorf("store: shard %d value log: %w", i, err)
	}
	old, existed, err := index.Exchange(sh.ix, ss.ths[i], key, uint64(ref))
	if err != nil {
		// The appended record is leaked until GC finds it dead; the
		// operation itself failed cleanly.
		sh.gc.varMu.RUnlock()
		sh.gc.applyMu.RUnlock()
		ss.s.release()
		return err
	}
	stale := existed && ss.retireWord(i, key, old)
	sh.gc.varMu.RUnlock()
	sh.gc.applyMu.RUnlock()
	ss.s.release()
	if stale {
		ss.maybeGC(i)
	}
	return nil
}

// readCurrent resolves key's current value through the tree. The caller
// must hold the shard's reclamation read-lock (gc.varMu.RLock), which
// pins every record the tree currently names: GC cannot complete its
// pre-free fence while we are inside it.
//
// One subtlety forces the retry loop: the tree's lock-free read protocol
// lets a reader racing a Delete observe the pre-delete value word (value
// boxes are never recycled, so that word is stable — but the log record
// it names stopped being referenced the moment the delete committed, and
// an already-running GC pass may have reclaimed it, reader lock
// notwithstanding: the lock only protects records the tree still names).
// Such a dangling ref fails the record validation (owner key, header,
// checksum); re-reading the tree then either shows the key gone (the
// delete won — report absent), or a fresh word from a racing re-insert
// (resolve that instead). Only a word that fails validation AND re-reads
// unchanged is a genuine classification: a fixed-width value (ErrNotVarlen)
// or real corruption.
func (ss *Session) readCurrent(i int, key uint64, dst []byte) ([]byte, bool, error) {
	sh := &ss.s.shards[i]
	ref, ok := sh.ix.Get(ss.ths[i], key)
	for {
		if !ok {
			return dst, false, nil
		}
		out, err := sh.vl.ReadKeyed(ss.ths[i], key, vlog.Ref(ref), dst)
		if err == nil {
			return out, true, nil
		}
		ref2, ok2 := sh.ix.Get(ss.ths[i], key)
		if ok2 && ref2 == ref {
			return dst, false, wrapReadErr(key, err)
		}
		ref, ok = ref2, ok2
	}
}

// GetBytes returns the byte-string value stored under key, appended to dst
// (pass nil, or a recycled buffer, to control allocation). The middle
// return reports presence. A key written through the fixed-width Put API
// fails with ErrNotVarlen. On a closed store it returns ErrClosed.
//
// The ref load and the record read happen inside the shard's reclamation
// read-lock, so a concurrent GC pass cannot free a record the tree names
// mid-read (see gc.go).
func (ss *Session) GetBytes(key uint64, dst []byte) ([]byte, bool, error) {
	if !ss.s.acquire() {
		return dst, false, ErrClosed
	}
	defer ss.s.release()
	if ss.sampleOp() {
		defer ss.s.met.getBytes.RecordSince(time.Now())
	}
	i := ss.s.ShardFor(key)
	sh := &ss.s.shards[i]
	sh.gc.varMu.RLock()
	defer sh.gc.varMu.RUnlock()
	return ss.readCurrent(i, key, dst)
}

// DeleteBytes removes a varlen key, reporting whether it was present. The
// tree entry disappears atomically; the value's log record is retired to
// the garbage accounting and reclaimed by GC. It is Delete with a name
// that documents the varlen discipline — the two are interchangeable for
// removal, and a delete of a never-varlen (fixed-width) key feeds nothing
// to the reclaim stats through the same retireWord funnel.
func (ss *Session) DeleteBytes(key uint64) (bool, error) {
	return ss.Delete(key)
}

// resolveScanRef resolves one collected (key, word) pair to value bytes
// under the shard's reclamation read-lock. A collected ref is a snapshot:
// GC may have relocated and freed the record since ScanLimit read the
// tree, so on validation failure the authoritative ref is re-read from the
// tree under the same lock — GC cannot complete a free while we hold it —
// and a key deleted in the meantime is skipped.
func (ss *Session) resolveScanRef(kv KV) (val []byte, skip bool, err error) {
	i := ss.s.ShardFor(kv.Key)
	sh := &ss.s.shards[i]
	sh.gc.varMu.RLock()
	defer sh.gc.varMu.RUnlock()
	buf, err := sh.vl.ReadKeyed(ss.ths[i], kv.Key, vlog.Ref(kv.Val), ss.valBuf[:0])
	if err != nil {
		var ok bool
		buf, ok, err = ss.readCurrent(i, kv.Key, ss.valBuf[:0])
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, true, nil
		}
	}
	ss.valBuf = buf
	return buf, false, nil
}

// ScanBytes visits varlen pairs with lo <= key <= hi in ascending global
// key order, resolving each tree Ref to its value bytes and calling fn
// until it returns false or max pairs (max <= 0 means no bound beyond the
// ScanLimit page cap) have been visited. The val slice is owned by the
// session and valid only during the callback — copy it to keep it.
//
// Like ScanLimit, which it pages on, the per-shard collection is
// read-uncommitted and bounded: at most max pairs are returned per call,
// so callers paginate with lo = lastKey+1. A fixed-width key inside the
// range aborts the scan with ErrNotVarlen: keep fixed and varlen keys in
// disjoint ranges if both share a store. Pairs whose key is concurrently
// deleted mid-resolution are skipped; a pair relocated by a concurrent GC
// pass is transparently re-resolved. On a closed store it returns
// ErrClosed.
func (ss *Session) ScanBytes(lo, hi uint64, max int, fn func(key uint64, val []byte) bool) error {
	if max <= 0 || max > maxScanPage {
		max = maxScanPage
	}
	if !ss.s.acquire() {
		return ErrClosed
	}
	defer ss.s.release()
	if ss.sampleOp() {
		defer ss.s.met.scanBytes.RecordSince(time.Now())
	}
	kvs, err := ss.ScanLimit(lo, hi, max)
	if err != nil {
		return err
	}
	for _, kv := range kvs {
		val, skip, err := ss.resolveScanRef(kv)
		if err != nil {
			return err
		}
		if skip {
			continue
		}
		if !fn(kv.Key, val) {
			return nil
		}
	}
	return nil
}

// maxScanPage bounds one ScanBytes page when the caller passes no max.
const maxScanPage = 65536
