package store

import "repro/internal/pmem"

// Session is a goroutine's handle on the store. It owns one pmem.Thread per
// shard, so callers never thread *pmem.Thread by hand: open one Session per
// goroutine, use it from that goroutine only, and Close it to fold its
// latency statistics back into the shard pools.
//
// Any number of Sessions may operate concurrently; the underlying FAST+FAIR
// shards give lock-free reads and per-node writer latches.
type Session struct {
	s   *Store
	ths []*pmem.Thread
}

// NewSession returns a fresh Session bound to the calling goroutine. It
// panics on a closed store (a lifecycle misuse, like reusing a closed
// sync primitive).
func (s *Store) NewSession() *Session {
	if s.closed {
		panic("store: NewSession on closed store")
	}
	ths := make([]*pmem.Thread, len(s.shards))
	for i, sh := range s.shards {
		ths[i] = sh.pool.NewThread()
	}
	return &Session{s: s, ths: ths}
}

// Close folds the session's per-shard statistics into the pools. The
// Session must not be used afterwards.
func (ss *Session) Close() {
	for _, th := range ss.ths {
		th.Release()
	}
	ss.ths = nil
}

// KV is one key-value pair, the batch-put unit.
type KV struct {
	Key, Val uint64
}

// Put stores val under key, replacing any existing value. Completed Puts
// are persistent; an in-flight Put is atomic under any crash.
func (ss *Session) Put(key, val uint64) error {
	i := ss.s.ShardFor(key)
	return ss.s.shards[i].ix.Insert(ss.ths[i], key, val)
}

// Get returns the value stored under key.
func (ss *Session) Get(key uint64) (uint64, bool) {
	i := ss.s.ShardFor(key)
	return ss.s.shards[i].ix.Get(ss.ths[i], key)
}

// Delete removes key, reporting whether it was present.
func (ss *Session) Delete(key uint64) bool {
	i := ss.s.ShardFor(key)
	return ss.s.shards[i].ix.Delete(ss.ths[i], key)
}

// PutBatch groups the pairs by shard and inserts each group on its own
// goroutine, so a bulk load drives every shard in parallel from one call.
// Pairs within a shard apply in slice order (later duplicates win); each
// pair is individually atomic, there is no cross-pair transaction. The
// first error aborts that shard's remaining pairs and is returned.
func (ss *Session) PutBatch(pairs []KV) error {
	n := len(ss.ths)
	if len(pairs) == 0 {
		return nil
	}
	groups := make([][]KV, n)
	for _, kv := range pairs {
		i := ss.s.ShardFor(kv.Key)
		groups[i] = append(groups[i], kv)
	}
	errs := make(chan error, n)
	active := 0
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		active++
		go func(i int, g []KV) {
			ix, th := ss.s.shards[i].ix, ss.ths[i]
			for _, kv := range g {
				if err := ix.Insert(th, kv.Key, kv.Val); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(i, g)
	}
	var first error
	for ; active > 0; active-- {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Len counts the keys across all shards (full scans; not a hot path).
func (ss *Session) Len() int {
	total := 0
	for i, sh := range ss.s.shards {
		total += sh.ix.Len(ss.ths[i])
	}
	return total
}
