package store

import (
	"time"

	"repro/index"
	"repro/internal/pmem"
)

// Session is a goroutine's handle on the store. It owns one pmem.Thread per
// shard, so callers never thread *pmem.Thread by hand: open one Session per
// goroutine, use it from that goroutine only, and Close it to fold its
// latency statistics back into the shard pools.
//
// Any number of Sessions may operate concurrently; the underlying FAST+FAIR
// shards give lock-free reads and per-node writer latches. A Session may
// outlive its Store: every operation on a closed store fails with ErrClosed
// instead of touching released shard state.
type Session struct {
	s   *Store
	ths []*pmem.Thread

	// ScanLimit's reusable state: per-shard collection buffers, their
	// merge cursors, the pre-built per-shard collector closures, the
	// current per-shard pair cap, and the merged output buffer. All lazily
	// sized on first use and reused so steady-state bounded scans are
	// allocation-free.
	scanBufs [][]KV
	scanCur  []int
	collect  []func(uint64, uint64) bool
	scanMax  int
	scanOut  []KV

	// valBuf is the reusable value buffer behind ScanBytes callbacks.
	valBuf []byte

	// The byte-key API's reusable state (see kv.go): kvBuf holds the
	// current bucket image being read, kvNew the rewritten image being
	// built, kvRefs one page of collected (prefix, ref) pairs, kvRuns the
	// per-shard entry runs ScanKV merges.
	kvBuf  []byte
	kvNew  []byte
	kvRefs []KV
	kvRuns []kvRun

	// opTick drives latency sampling (see sampleOp). Plain field: a
	// Session is single-goroutine by contract.
	opTick uint32
}

// sampleOp reports whether this operation's latency should be clocked.
// Reading the clock twice costs ~100ns on some hosts — a large fraction
// of a ~0.5µs Get — so the per-op histograms observe one in every
// opSampleMask+1 operations. Quantiles over a uniform 1-in-N sample of
// the op stream converge to the true quantiles; only the histogram
// _count reflects samples, not operations (exact op counts live in the
// server's per-opcode counters).
func (ss *Session) sampleOp() bool {
	ss.opTick++
	return ss.opTick&opSampleMask == 0
}

// NewSession returns a fresh Session bound to the calling goroutine. It may
// be called even on a closed store — the resulting session then fails every
// operation with ErrClosed — so connection handlers racing a shutdown have
// no panic window.
func (s *Store) NewSession() *Session {
	ths := make([]*pmem.Thread, len(s.shards))
	for i, sh := range s.shards {
		ths[i] = sh.pool.NewThread()
	}
	return &Session{s: s, ths: ths}
}

// Close folds the session's per-shard statistics into the pools. The
// Session must not be used afterwards.
func (ss *Session) Close() {
	for _, th := range ss.ths {
		th.Release()
	}
	ss.ths = nil
}

// KV is one key-value pair, the batch-put unit.
type KV struct {
	Key, Val uint64
}

// Put stores val under key, replacing any existing value. Completed Puts
// are persistent; an in-flight Put is atomic under any crash. Overwriting
// a key that held a varlen value retires the old log record through the
// same accounting funnel as PutBytes (see retireWord). On a closed store
// it returns ErrClosed.
func (ss *Session) Put(key, val uint64) error {
	if !ss.s.acquire() {
		return ErrClosed
	}
	if err := ss.s.writable(); err != nil {
		ss.s.release()
		return err
	}
	if ss.sampleOp() {
		defer ss.s.met.put.RecordSince(time.Now())
	}
	i := ss.s.ShardFor(key)
	gc := ss.s.shards[i].gc
	gc.applyMu.RLock()
	old, existed, err := index.Exchange(ss.s.shards[i].ix, ss.ths[i], key, val)
	stale := err == nil && existed && old != val && ss.retireWord(i, key, old)
	gc.applyMu.RUnlock()
	ss.s.release()
	if stale {
		ss.maybeGC(i)
	}
	return err
}

// Get returns the value stored under key. On a closed store it returns
// ErrClosed.
func (ss *Session) Get(key uint64) (uint64, bool, error) {
	if !ss.s.acquire() {
		return 0, false, ErrClosed
	}
	defer ss.s.release()
	if ss.sampleOp() {
		defer ss.s.met.get.RecordSince(time.Now())
	}
	i := ss.s.ShardFor(key)
	v, ok := ss.s.shards[i].ix.Get(ss.ths[i], key)
	return v, ok, nil
}

// Delete removes key, reporting whether it was present. A varlen key's log
// record is retired to the garbage accounting (and may trigger automatic
// GC); a fixed-width key's displaced word fails the record validation and
// feeds nothing, so the reclaim stats stay consistent whichever API wrote
// the key. On a closed store it returns ErrClosed.
func (ss *Session) Delete(key uint64) (bool, error) {
	if !ss.s.acquire() {
		return false, ErrClosed
	}
	if err := ss.s.writable(); err != nil {
		ss.s.release()
		return false, err
	}
	if ss.sampleOp() {
		defer ss.s.met.del.RecordSince(time.Now())
	}
	i := ss.s.ShardFor(key)
	gc := ss.s.shards[i].gc
	gc.applyMu.RLock()
	old, existed := index.Remove(ss.s.shards[i].ix, ss.ths[i], key)
	stale := existed && ss.retireWord(i, key, old)
	gc.applyMu.RUnlock()
	ss.s.release()
	if stale {
		ss.maybeGC(i)
	}
	return existed, nil
}

// PutBatch groups the pairs by shard and inserts each group on its own
// goroutine, so a bulk load drives every shard in parallel from one call.
// Pairs within a shard apply in slice order (later duplicates win); each
// pair is individually atomic, there is no cross-pair transaction. The
// first error aborts that shard's remaining pairs and is returned.
// Displaced varlen records retire through the same accounting funnel as
// every other write path, and shards whose batch created garbage may run
// an automatic GC pass before PutBatch returns. On a closed store it
// returns ErrClosed without applying any pair.
func (ss *Session) PutBatch(pairs []KV) error {
	if len(pairs) == 0 {
		return nil
	}
	if !ss.s.acquire() {
		return ErrClosed
	}
	if err := ss.s.writable(); err != nil {
		ss.s.release()
		return err
	}
	if ss.sampleOp() {
		defer ss.s.met.putBatch.RecordSince(time.Now())
	}
	n := len(ss.ths)
	groups := make([][]KV, n)
	for _, kv := range pairs {
		i := ss.s.ShardFor(kv.Key)
		groups[i] = append(groups[i], kv)
	}
	errs := make(chan error, n)
	stale := make([]bool, n)
	active := 0
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		active++
		go func(i int, g []KV) {
			ix, th := ss.s.shards[i].ix, ss.ths[i]
			gc := ss.s.shards[i].gc
			gc.applyMu.RLock()
			defer gc.applyMu.RUnlock()
			for _, kv := range g {
				old, existed, err := index.Exchange(ix, th, kv.Key, kv.Val)
				if err != nil {
					errs <- err
					return
				}
				if existed && old != kv.Val && ss.retireWord(i, kv.Key, old) {
					stale[i] = true
				}
			}
			errs <- nil
		}(i, g)
	}
	var first error
	for ; active > 0; active-- {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	ss.s.release()
	for i, st := range stale {
		if st {
			ss.maybeGC(i)
		}
	}
	if first != nil {
		return first
	}
	return nil
}

// Len counts the keys across all shards (full scans; not a hot path). On a
// closed store it returns ErrClosed.
func (ss *Session) Len() (int, error) {
	if !ss.s.acquire() {
		return 0, ErrClosed
	}
	defer ss.s.release()
	total := 0
	for i, sh := range ss.s.shards {
		total += sh.ix.Len(ss.ths[i])
	}
	return total, nil
}
