package store

import (
	"fmt"
	"time"

	"repro/index"
	"repro/internal/vlog"
)

// Value-log garbage collection, threaded through the store's shard
// discipline.
//
// Each shard compacts independently: a pass walks the shard's value log
// oldest-extent-first, copies the records its tree still references to the
// log tail (an ordinary failure-atomic append), commits each copy with a
// latched conditional replace of the tree word (old ref → new ref, refusing
// if a concurrent writer got there first), then drains readers and frees
// the extent. Liveness is the tree's word: a record is live iff
// Get(record.key) returns its ref — the one fact the log cannot know by
// itself and the reason records carry their key.
//
// # Why no tree ref can ever name freed log space
//
// The reclamation gate is shardGC.varMu, held shared by everyone who is
// in a window where a log record matters without the tree fully saying so:
// readers for their tree-word→log-bytes resolve, and PutBytes writers from
// the log append to the tree install (the appended record is invisible to
// GC's liveness until the install lands). The GC pass runs, per extent,
// relocation sweep → fence → catch-up sweep → fence → free, where each
// fence is an exclusive acquire-and-release of varMu. Consider extent E:
//
//   - A reader whose RLock precedes a fence's Lock: the fence waits, so E
//     outlives the access. It may read a pre-swap (old) copy — intact
//     (records are immutable and E unfreed) and byte-identical to the
//     relocated one unless it raced an application overwrite, which is
//     the store's documented read-uncommitted window, not a GC artifact.
//   - A reader whose RLock follows the final fence: it loads the ref from
//     the tree after every swap committed, so the ref does not point
//     into E.
//   - A writer that appended into E (necessarily before E was sealed) but
//     had not yet installed the ref when the sweep judged the record
//     dead: it holds the RLock, so the first fence waits out its install,
//     and the catch-up sweep relocates the record. No ref into E can be
//     installed after that — each append's ref is installed exactly once,
//     by its own writer, and those writers have drained.
//
// ScanBytes resolves refs collected before its per-record RLock, so it
// additionally retries through the tree when a snapshot ref no longer
// validates — see its implementation.
//
// Automatic passes piggyback on the writing session: when an overwrite or
// delete tips a shard past Options.GCGarbageRatio (and one extent's worth
// of garbage exists), the writer runs the pass inline on its own
// per-shard thread. shardGC.runMu keeps passes singular per shard;
// automatic triggers TryLock it, so at most one writer pays while the
// rest proceed.

// CompactStats aggregates the work of the per-shard GC passes one
// CompactValues call ran.
type CompactStats struct {
	// ExtentsFreed counts log extents unlinked and returned to their
	// pools; ReclaimedBytes their total arena bytes (headers included).
	ExtentsFreed   int
	ReclaimedBytes int64
	// Relocated counts live records copied to their log's tail;
	// DroppedBytes the payload of dead records discarded with their
	// extents; Skipped relocations abandoned because the application
	// overwrote the key mid-pass.
	Relocated    int
	DroppedBytes int64
	Skipped      int
}

func (c *CompactStats) add(r vlog.GCResult) {
	c.ExtentsFreed += r.Extents
	c.ReclaimedBytes += r.ReclaimedBytes
	c.Relocated += r.Relocated
	c.DroppedBytes += r.DroppedBytes
	c.Skipped += r.Skipped
}

// CompactValues runs a full value-log GC pass on every shard, reclaiming
// the space of overwritten and deleted varlen values, and reports the work
// done. It is safe to call concurrently with any other operation — readers
// and writers on the same shards proceed during the pass (writers may
// briefly serialise with a relocation's tree swap on a shared leaf) — and
// concurrently with itself, passes on one shard simply queueing. On a
// closed store it returns ErrClosed.
//
// Compaction needs headroom to copy an extent's live records before the
// extent is freed; a pool too full to stage them fails with the shard's
// ErrFull-wrapped error, so compact before the pool is exhausted (the
// automatic GCGarbageRatio trigger exists for exactly that).
func (ss *Session) CompactValues() (CompactStats, error) {
	var cs CompactStats
	if !ss.s.acquire() {
		return cs, ErrClosed
	}
	defer ss.s.release()
	for i := range ss.s.shards {
		res, err := ss.compactShard(i, 0, true)
		cs.add(res)
		if err != nil {
			return cs, fmt.Errorf("store: shard %d GC: %w", i, err)
		}
	}
	return cs, nil
}

// autoGCExtents bounds one automatic trigger's pass: the triggering writer
// pays for a few extents, not the shard's whole backlog — steady-state
// reclamation is the same (triggers keep firing while the ratio holds),
// but no single Put/Delete absorbs a full-log compaction latency cliff.
const autoGCExtents = 4

// compactShard runs one GC pass on shard i using the session's thread,
// reclaiming at most maxExtents extents (0 = no bound). When wait is false
// (automatic triggers) a pass already running on the shard makes this a
// no-op. Caller holds the store's close gate.
func (ss *Session) compactShard(i, maxExtents int, wait bool) (vlog.GCResult, error) {
	sh := &ss.s.shards[i]
	if wait {
		sh.gc.runMu.Lock()
	} else if !sh.gc.runMu.TryLock() {
		return vlog.GCResult{}, nil
	}
	defer sh.gc.runMu.Unlock()
	th := ss.ths[i]
	start := time.Now()
	res, err := sh.vl.GC(th, maxExtents, vlog.GCFuncs{
		Live: func(key uint64, ref vlog.Ref) bool {
			v, ok := sh.ix.Get(th, key)
			return ok && v == uint64(ref)
		},
		Swap: func(key uint64, old, new vlog.Ref) bool {
			return index.ReplaceIf(sh.ix, th, key, uint64(old), uint64(new))
		},
		Fence: func() {
			// A deliberately empty exclusive section: acquiring varMu
			// waits out every reader that could hold a pre-swap ref
			// snapshot and every writer mid-install of an appended
			// record's ref (see the package comment above). Nothing is
			// protected inside — the lock IS the barrier.
			sh.gc.varMu.Lock()
			//lint:ignore SA2001 quiescence barrier, not a critical section
			sh.gc.varMu.Unlock()
		},
	})
	ss.s.met.recordGC(start, res.Relocated)
	return res, err
}

// maybeGC is the automatic trigger, called after an operation turned a
// live record into garbage. It must be called without the close gate held
// (it re-acquires it), so a long pass never delays Close observing the
// triggering operation's completion.
func (ss *Session) maybeGC(i int) {
	ratio := ss.s.opts.GCGarbageRatio
	if ratio < 0 {
		return
	}
	st := ss.s.shards[i].vl.QuickStats()
	if st.Garbage < ss.s.opts.ValueLogExtent || st.GarbageRatio() < ratio {
		return
	}
	if !ss.s.acquire() {
		return
	}
	defer ss.s.release()
	// Best-effort: errors (e.g. a pool too full to stage relocations) are
	// not the triggering operation's failure; the next trigger or a
	// manual CompactValues surfaces persistent trouble.
	_, _ = ss.compactShard(i, autoGCExtents, false)
}
