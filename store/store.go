// Package store layers a sharded, concurrent key-value store over the
// FAST+FAIR B+-tree. Keys are hash-partitioned across N independent shards,
// each an index structure in its own pmem.Pool, so writers contend only
// within a shard and each shard keeps its own allocator, latency state and
// crash log — the standard multi-core scaling route for persistent trees
// (FP-tree's and Circ-Tree's partitioned deployments take the same shape).
//
// Callers never handle *pmem.Thread directly: a Session owns one thread per
// shard for its goroutine (see NewSession). Cross-shard reads are merged on
// the fly, so Scan streams the global key order even though shards are
// hash-partitioned.
//
// Durability matches the paper's contract per shard: every completed Put is
// persistent without logging, an in-flight Put is atomic under any crash,
// and Reopen runs FAST+FAIR recovery on every shard to repair transient
// inconsistency eagerly.
package store

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/index"
	"repro/internal/pmem"
	"repro/internal/txnlog"
	"repro/internal/vlog"
)

// ErrClosed reports an operation on a closed Store. Sessions outliving their
// store fail every operation with it instead of touching released shard
// state — the contract the network server's graceful shutdown leans on.
var ErrClosed = errors.New("store: closed")

// Options configures a Store. The zero value gives 4 FAST+FAIR shards of
// 256 MiB each at DRAM latency.
type Options struct {
	// Shards is the number of hash partitions (and pools). Default 4.
	Shards int
	// ShardSize is the arena capacity per shard in bytes. Default 256 MiB.
	ShardSize int64
	// Mem carries the latency/model configuration applied to every shard
	// pool. Mem.Size is ignored; ShardSize wins.
	Mem pmem.Config
	// Latency tunes the simulated PM latencies with plain fields, so
	// callers outside this module can shape the device without naming
	// internal/pmem types. Non-zero fields override the same knobs in Mem.
	Latency LatencyOptions
	// Kind selects the index structure per shard. Default index.FastFair.
	// Reopen requires a kind whose driver can re-attach pool images.
	Kind index.Kind
	// NodeSize overrides the per-shard node size.
	NodeSize int
	// ValueLogExtent is the growth unit of each shard's value log in
	// bytes (the persistent log behind PutBytes/GetBytes). 0 picks a
	// default scaled to ShardSize; oversized values allocate one-off
	// larger extents regardless.
	ValueLogExtent int64
	// GCGarbageRatio triggers automatic value-log compaction: when a
	// varlen overwrite or delete pushes a shard's garbage fraction
	// (garbage / (live+garbage) payload bytes) to or above this ratio —
	// and at least one extent's worth of garbage has accumulated — the
	// writing session runs a GC pass on that shard before returning.
	// 0 selects the default of 0.5; a negative value disables automatic
	// GC entirely (Session.CompactValues still compacts on demand).
	GCGarbageRatio float64
	// TxnLogCap is the fixed capacity in bytes of each shard's
	// transaction redo log (the crash-consistent intent buffer behind
	// Txn commits). A transaction's encoded write-set for one shard,
	// plus its commit mark, must fit the shard's log — larger
	// transactions fail with ErrTxnTooLarge before writing anything.
	// 0 picks a default scaled to ShardSize.
	TxnLogCap int64

	// recoverStep, when non-nil, is invoked by Reopen's transaction
	// recovery after each shard replay and each log truncation — the
	// recovery analogue of the commitStep hook, settable only from
	// within the package (crash-matrix tests); nil in production.
	recoverStep func()
}

// LatencyOptions is the external-facing slice of pmem.Config: the emulated
// device latencies. The zero value leaves the Mem configuration untouched
// (DRAM speed by default).
type LatencyOptions struct {
	// Read is the PM read stall charged per serial cache-line access.
	Read time.Duration
	// Write is the PM write stall charged per cache line flushed.
	Write time.Duration
	// Barrier is the store-fence cost on non-TSO memory models.
	Barrier time.Duration
}

func (o *Options) fill() error {
	if o.Shards == 0 {
		o.Shards = 4
	}
	if o.Shards < 1 || o.Shards >= maxShards {
		return fmt.Errorf("store: Shards %d out of range [1,%d)", o.Shards, maxShards)
	}
	if o.ShardSize == 0 {
		o.ShardSize = 256 << 20
	}
	if o.Latency.Read != 0 {
		o.Mem.ReadLatency = o.Latency.Read
	}
	if o.Latency.Write != 0 {
		o.Mem.WriteLatency = o.Latency.Write
	}
	if o.Latency.Barrier != 0 {
		o.Mem.BarrierLatency = o.Latency.Barrier
	}
	if o.Kind == "" {
		o.Kind = index.FastFair
	}
	if o.GCGarbageRatio == 0 {
		o.GCGarbageRatio = 0.5
	}
	if o.ValueLogExtent == 0 {
		// Scale the growth unit to the shard: 1/64 of the arena keeps
		// tiny test shards from burning their space on one extent while
		// production-sized shards grow in MiB steps.
		o.ValueLogExtent = o.ShardSize / 64
		if o.ValueLogExtent > vlog.DefaultExtent {
			o.ValueLogExtent = vlog.DefaultExtent
		}
		if o.ValueLogExtent < 4096 {
			o.ValueLogExtent = 4096
		}
	}
	if o.TxnLogCap == 0 {
		// 1/16 of the shard, clamped: big enough that a transaction can
		// carry a near-maximal byte-string value, small enough that tiny
		// test shards keep their arena.
		o.TxnLogCap = o.ShardSize / 16
		if o.TxnLogCap > 4<<20 {
			o.TxnLogCap = 4 << 20
		}
		if o.TxnLogCap < 64<<10 {
			o.TxnLogCap = 64 << 10
		}
	}
	return nil
}

// maxShards bounds the stamp encoding (16 bits) far above any sane count.
const maxShards = 1 << 16

// The pool root slots holding shard metadata. The tree anchors at slot 0
// and the FAST+Logging split log (and FP-tree recovery cursor) would claim
// slot 4, so slots 2, 3, 5 and 6 are free for every supported kind.
// stampSlot identifies the shard (magic, shard count, shard id); shapeSlot
// records how the shard's index was configured (kind hash, node size) so
// Reopen refuses to misinterpret an image with the wrong options; vlogSlot
// anchors the shard's value log (varlen values); txnSlot anchors the
// shard's transaction redo log (Txn commits).
const (
	stampSlot = 3
	shapeSlot = 2
	vlogSlot  = 5
	txnSlot   = 6
)

// stampMagic brands a pool as a store shard ("FF+S" in the top word).
const stampMagic = uint64(0x46462b53)

func stamp(shardID, shards int) int64 {
	return int64(stampMagic<<32 | uint64(shards)<<16 | uint64(shardID))
}

// shape encodes the index configuration: FNV-1a hash of the kind name in
// the top word, the raw NodeSize option (0 = kind default) in the bottom.
func shape(kind index.Kind, nodeSize int) int64 {
	h := uint64(2166136261)
	for i := 0; i < len(kind); i++ {
		h ^= uint64(kind[i])
		h *= 16777619
	}
	return int64((h&0xffffffff)<<32 | uint64(uint32(nodeSize)))
}

// Store is a sharded KV store. All operations go through Sessions; the Store
// itself only manages shard lifecycle.
type Store struct {
	opts   Options
	shards []shard
	met    *storeMetrics

	// closed+inflight form the close gate: every Session operation holds
	// an inflight reference for its duration, and Close flips closed
	// before waiting the count down to zero, so no operation can observe
	// shard state released by Close (see Session.acquire).
	closed   atomic.Bool
	inflight atomic.Int64

	// txnSeq issues transaction IDs. Volatile: every shard's redo log is
	// truncated during Reopen, so restarting from zero cannot collide
	// with a logged ID.
	txnSeq atomic.Uint64

	// txnFailed latches the store read-only after a Commit fails past
	// its commit point (ErrTxnIncomplete): the committed transaction's
	// redo records are still in a shard log, and any further commit's
	// cleanup would truncate them while any further plain write could be
	// silently superseded when Reopen replays them. While set, every
	// mutation fails with ErrReopenRequired; reads proceed.
	txnFailed atomic.Bool

	// commitStep, when non-nil, is invoked by Txn.Commit after every
	// persist-generating step of the commit protocol (each intent
	// append, each commit mark, each shard apply, each truncation) and
	// by recoverTxns after each replay and truncation. Test hook for
	// consistent-cut crash matrices; nil in production.
	commitStep func()

	// applyFault, when non-nil, is consulted by Txn.Commit before each
	// shard's apply phase; a non-nil return is treated as that shard's
	// apply failing after the commit point. Test hook for the
	// ErrTxnIncomplete latch; nil in production.
	applyFault func(shard int) error
}

// writable reports nil when the store accepts mutations, and
// ErrReopenRequired once an incomplete transaction commit has latched it
// read-only. Write paths check it after acquire; reads never do.
func (s *Store) writable() error {
	if s.txnFailed.Load() {
		return ErrReopenRequired
	}
	return nil
}

type shard struct {
	pool *pmem.Pool
	ix   index.Index
	vl   *vlog.Log
	tl   *txnlog.Log
	gc   *shardGC
}

// shardGC is a shard's volatile GC coordination state. It lives behind a
// pointer so shard values stay copyable.
type shardGC struct {
	// varMu is the reclamation gate: every resolution of a tree word
	// into value-log bytes holds it shared for the load-ref/read-record
	// window, and a GC pass acquires it exclusively (and immediately
	// releases it) between retargeting the tree refs and freeing the
	// drained extent. The exclusive acquire cannot complete until every
	// reader that might hold a pre-swap ref snapshot has drained, and
	// any reader arriving later re-reads the tree, which no longer names
	// the extent — so no reader can ever dereference freed log space.
	// Writers (appends) never take it: they hold no record references.
	varMu sync.RWMutex
	// runMu serialises GC passes per shard; automatic triggers TryLock
	// it so concurrent writers never queue behind one another's passes.
	runMu sync.Mutex
	// kvMu serialises byte-key writers (PutKV/DeleteKV) on this shard:
	// a bucket update is a read-modify-write of one log record, and the
	// tree's Exchange cannot express insert-if-absent, so two concurrent
	// upserts into one bucket could otherwise both install and silently
	// drop an entry. GC never takes it — relocation preserves bucket
	// content, and the writers' ReplaceIf install detects and retries
	// around a concurrent swap. Lock order: kvMu before varMu.
	kvMu sync.Mutex
	// applyMu fences transaction commits against plain writers: every
	// non-transactional mutation (Put, Delete, PutBatch, PutBytes,
	// PutKV, DeleteKV) holds it shared for the mutation, and Txn.Commit
	// holds it exclusively on every participating shard from before its
	// first intent append until after its log truncation. Without it, a
	// plain write landing between a committed transaction's tree apply
	// and its truncation would be reverted if a crash forced recovery to
	// replay the still-logged intents. Exclusive acquisition also
	// serialises commits per shard, so at most one transaction's records
	// ever occupy a redo log — which is what makes truncate-to-empty the
	// correct cleanup. Commits lock their shards in ascending order
	// (deadlock-free); plain writers hold at most one shard's applyMu at
	// a time. Reads and GC never take it. Lock order: applyMu before
	// kvMu before varMu.
	applyMu sync.RWMutex
}

// Open creates a fresh store: opts.Shards pools, one index per pool, each
// branded with a shard stamp so Reopen can reject mismatched images.
func Open(opts Options) (*Store, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	s := &Store{opts: opts, shards: make([]shard, opts.Shards), met: newStoreMetrics()}
	for i := range s.shards {
		mem := opts.Mem
		mem.Size = opts.ShardSize
		p := pmem.New(mem)
		th := p.NewThread()
		ix, err := index.Open(opts.Kind, p, th, index.Options{NodeSize: opts.NodeSize})
		if err != nil {
			return nil, fmt.Errorf("store: shard %d: %w", i, err)
		}
		vl, err := vlog.Create(p, th, vlogSlot, opts.ValueLogExtent)
		if err != nil {
			return nil, fmt.Errorf("store: shard %d value log: %w", i, err)
		}
		tl, err := txnlog.Create(p, th, txnSlot, opts.TxnLogCap)
		if err != nil {
			return nil, fmt.Errorf("store: shard %d txn log: %w", i, err)
		}
		p.SetRoot(th, stampSlot, stamp(i, opts.Shards))
		p.SetRoot(th, shapeSlot, shape(opts.Kind, opts.NodeSize))
		th.Release()
		s.shards[i] = shard{pool: p, ix: ix, vl: vl, tl: tl, gc: &shardGC{}}
	}
	return s, nil
}

// Reopen attaches to the pools of a previously opened store — reopened
// devices or post-crash images, in shard order — verifies every shard's
// stamp and recorded index configuration, and runs the kind's eager crash
// recovery on each shard. opts must carry the same Kind/NodeSize the store
// was created with (a mismatch is rejected, never misread); opts.Shards, if
// set, must equal len(pools). A zero opts.NodeSize adopts the recorded one.
func Reopen(pools []*pmem.Pool, opts Options) (*Store, error) {
	if opts.Shards == 0 {
		opts.Shards = len(pools)
	}
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if len(pools) != opts.Shards {
		return nil, fmt.Errorf("store: reopen with %d pools, want %d", len(pools), opts.Shards)
	}
	s := &Store{opts: opts, shards: make([]shard, len(pools)), met: newStoreMetrics()}
	for i, p := range pools {
		th := p.NewThread()
		if got, want := p.Root(th, stampSlot), stamp(i, len(pools)); got != want {
			return nil, fmt.Errorf("store: shard %d stamp %#x, want %#x (wrong pool, order, or shard count)", i, got, want)
		}
		rec := p.Root(th, shapeSlot)
		if opts.NodeSize == 0 {
			opts.NodeSize = int(uint32(rec))
			s.opts.NodeSize = opts.NodeSize
		}
		if want := shape(opts.Kind, opts.NodeSize); rec != want {
			return nil, fmt.Errorf("store: shard %d was created with a different kind or node size (shape %#x, want %#x for %s/%d)",
				i, rec, want, opts.Kind, opts.NodeSize)
		}
		ix, err := index.OpenExisting(opts.Kind, p, th, index.Options{NodeSize: opts.NodeSize})
		if err != nil {
			return nil, fmt.Errorf("store: shard %d: %w", i, err)
		}
		if err := index.Recover(ix, th); err != nil {
			return nil, fmt.Errorf("store: shard %d recovery: %w", i, err)
		}
		// Value-log recovery: bounds-check the tail, truncate the torn or
		// unpublished record at it, re-validate every published record.
		// Images from before the value log existed get a fresh one.
		var vl *vlog.Log
		if p.Root(th, vlogSlot) == 0 {
			vl, err = vlog.Create(p, th, vlogSlot, opts.ValueLogExtent)
		} else {
			vl, err = vlog.Open(p, th, vlogSlot)
		}
		if err != nil {
			return nil, fmt.Errorf("store: shard %d value log recovery: %w", i, err)
		}
		// Rebuild the live/garbage accounting the crash discarded (it is
		// volatile): the log walk gives the total surviving payload, the
		// tree walk the subset still referenced. The difference is
		// garbage the next GC pass can reclaim — without this, a store
		// reopened after heavy churn would never trigger automatic GC.
		cs, err := vl.Check(th)
		if err != nil {
			return nil, fmt.Errorf("store: shard %d value log check: %w", i, err)
		}
		var live int64
		ix.Scan(th, 0, ^uint64(0), func(k, v uint64) bool {
			if r := vlog.Ref(v); vl.IsRecord(th, k, r) {
				live += int64(r.Len())
			}
			return true
		})
		garbage := cs.Bytes - live
		if garbage < 0 {
			garbage = 0
		}
		vl.ResetAccounting(live, garbage)
		// Transaction redo-log recovery: bounds-check the tail, validate
		// the published records (intents and commit marks survive here
		// until recoverTxns below decides their fate). Images from before
		// transactions existed get a fresh log.
		var tl *txnlog.Log
		if p.Root(th, txnSlot) == 0 {
			tl, err = txnlog.Create(p, th, txnSlot, opts.TxnLogCap)
		} else {
			tl, err = txnlog.Open(p, th, txnSlot)
		}
		if err != nil {
			return nil, fmt.Errorf("store: shard %d txn log recovery: %w", i, err)
		}
		th.Release()
		s.shards[i] = shard{pool: p, ix: ix, vl: vl, tl: tl, gc: &shardGC{}}
	}
	// With every shard rebuilt, settle in-flight transactions: replay the
	// committed (a commit mark on ANY shard commits the transaction on
	// every shard), discard the rest, and truncate the logs — replay
	// strictly before truncation, so a crash during recovery never
	// erases a commit mark other shards still need (see recoverTxns).
	s.commitStep = opts.recoverStep
	if err := s.recoverTxns(); err != nil {
		return nil, err
	}
	s.commitStep = nil
	return s, nil
}

// mix is the splitmix64 finalizer; it decorrelates shard choice from key
// structure (sequential keys, packed bitfield keys) so partitions stay
// balanced.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// ShardFor returns the shard a key hashes to. It is deterministic per shard
// count, so images reopen onto the same partitioning.
func (s *Store) ShardFor(key uint64) int {
	return int(mix(key) % uint64(len(s.shards)))
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// Kind returns the index kind backing every shard.
func (s *Store) Kind() index.Kind { return s.opts.Kind }

// Pool returns shard i's pool — the handles a caller snapshots for crash
// simulation and passes back to Reopen.
func (s *Store) Pool(i int) *pmem.Pool { return s.shards[i].pool }

// Pools returns every shard pool in shard order.
func (s *Store) Pools() []*pmem.Pool {
	out := make([]*pmem.Pool, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.pool
	}
	return out
}

// acquire takes an inflight reference, failing once the store is closed.
// The double check brackets the counter increment: if Close's closed flip
// lands between the first check and the Add, the second check still catches
// it before the caller touches any shard state, and the reference is
// returned so Close's drain is never held up by a doomed operation.
func (s *Store) acquire() bool {
	if s.closed.Load() {
		return false
	}
	s.inflight.Add(1)
	if s.closed.Load() {
		s.inflight.Add(-1)
		return false
	}
	return true
}

func (s *Store) release() { s.inflight.Add(-1) }

// CheckInvariants verifies structural invariants on every shard (testing
// aid; full tree walks).
func (s *Store) CheckInvariants() error {
	if !s.acquire() {
		return ErrClosed
	}
	defer s.release()
	for i, sh := range s.shards {
		th := sh.pool.NewThread()
		err := index.CheckInvariants(sh.ix, th)
		if err == nil {
			_, err = sh.vl.Check(th)
		}
		th.Release()
		if err != nil {
			return fmt.Errorf("store: shard %d: %w", i, err)
		}
	}
	return nil
}

// ValueLogStats aggregates the shards' value-log space accounting in plain
// fields (no internal types leak; see ROADMAP on API hygiene). All byte
// counts are payload bytes except Reclaimed and Cap, which are arena bytes.
type ValueLogStats struct {
	// Live is the payload still referenced by the trees; Garbage the
	// payload of overwritten or deleted records not yet reclaimed.
	Live, Garbage int64
	// Cap is the record space across allocated extents; Reclaimed the
	// cumulative arena bytes GC has returned to the pools.
	Cap, Reclaimed int64
	// Relocated counts records GC copied forward; GCPasses the extents
	// it reclaimed.
	Relocated, GCPasses int64
}

// GarbageRatio is the garbage fraction of the accounted payload, in [0,1].
func (v ValueLogStats) GarbageRatio() float64 {
	total := v.Live + v.Garbage
	if total <= 0 {
		return 0
	}
	return float64(v.Garbage) / float64(total)
}

// ValueStats aggregates the value-log accounting across shards. It is
// counter-backed (no log walk) and safe to call concurrently with any
// operation.
func (s *Store) ValueStats() ValueLogStats {
	var out ValueLogStats
	if !s.acquire() {
		return out
	}
	defer s.release()
	for _, sh := range s.shards {
		st := sh.vl.QuickStats()
		out.Live += st.Live
		out.Garbage += st.Garbage
		out.Cap += st.Cap
		out.Reclaimed += st.Reclaimed
		out.Relocated += st.Relocated
		out.GCPasses += st.GCPasses
	}
	return out
}

// Stats aggregates the released-thread statistics of every shard pool.
func (s *Store) Stats() pmem.Stats {
	var total pmem.Stats
	for _, sh := range s.shards {
		total.Add(sh.pool.TotalStats())
	}
	return total
}

// Close marks the store closed, drains in-flight operations, and closes
// every shard index handle. The persistent images stay valid;
// Reopen(st.Pools(), opts) resumes from them. Sessions may outlive Close:
// their operations fail with ErrClosed instead of racing the teardown.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	// Most operations are short, so yield first; but Len and Scan hold
	// their reference across full multi-shard walks, so back off to
	// sleeping rather than burning a core until they finish.
	for spins := 0; s.inflight.Load() != 0; spins++ {
		if spins < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(50 * time.Microsecond)
		}
	}
	var first error
	for _, sh := range s.shards {
		if err := sh.ix.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
