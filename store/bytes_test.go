package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pmem"
)

func bval(k uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(k>>uint(8*(i%8))) ^ byte(i)
	}
	return b
}

func TestPutGetBytesRoundTrip(t *testing.T) {
	st, err := Open(Options{Shards: 4, ShardSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ss := st.NewSession()
	defer ss.Close()

	rng := rand.New(rand.NewSource(1))
	want := map[uint64][]byte{}
	for i := 0; i < 2000; i++ {
		k := rng.Uint64()%100000 + 1
		v := bval(k, rng.Intn(400))
		if err := ss.PutBytes(k, v); err != nil {
			t.Fatal(err)
		}
		want[k] = v // later duplicates overwrite, like the map
	}
	var buf []byte
	for k, v := range want {
		got, ok, err := ss.GetBytes(k, buf[:0])
		if err != nil || !ok {
			t.Fatalf("key %d: (%v, %v)", k, ok, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("key %d: got %d bytes, want %d", k, len(got), len(v))
		}
		buf = got
	}
	// Miss and delete semantics.
	if _, ok, err := ss.GetBytes(1<<50, nil); ok || err != nil {
		t.Fatalf("miss: (%v, %v)", ok, err)
	}
	for k := range want {
		if ok, err := ss.DeleteBytes(k); !ok || err != nil {
			t.Fatalf("delete %d: (%v, %v)", k, ok, err)
		}
		if _, ok, _ := ss.GetBytes(k, nil); ok {
			t.Fatalf("key %d survives delete", k)
		}
		break
	}
}

func TestBytesLimitsAndMixedAPIs(t *testing.T) {
	st, err := Open(Options{Shards: 2, ShardSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ss := st.NewSession()
	defer ss.Close()

	if err := ss.PutBytes(1, make([]byte, MaxValue+1)); !errors.Is(err, ErrValueTooLarge) {
		t.Fatalf("oversized: %v, want ErrValueTooLarge", err)
	}
	// Empty values are legal and distinct from absence.
	if err := ss.PutBytes(2, nil); err != nil {
		t.Fatal(err)
	}
	if got, ok, err := ss.GetBytes(2, nil); err != nil || !ok || len(got) != 0 {
		t.Fatalf("empty value: (%q, %v, %v)", got, ok, err)
	}
	// A fixed-width key read through the varlen API is rejected, not
	// misread.
	if err := ss.Put(3, 999); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ss.GetBytes(3, nil); !errors.Is(err, ErrNotVarlen) {
		t.Fatalf("fixed key via GetBytes: %v, want ErrNotVarlen", err)
	}
}

func TestScanBytes(t *testing.T) {
	st, err := Open(Options{Shards: 4, ShardSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ss := st.NewSession()
	defer ss.Close()

	const n = 500
	for k := uint64(1); k <= n; k++ {
		if err := ss.PutBytes(k, bval(k, int(k%97))); err != nil {
			t.Fatal(err)
		}
	}
	last, seen := uint64(0), 0
	err = ss.ScanBytes(10, 400, 0, func(k uint64, v []byte) bool {
		if k <= last || k < 10 || k > 400 {
			t.Fatalf("scan order/range violated at key %d", k)
		}
		if !bytes.Equal(v, bval(k, int(k%97))) {
			t.Fatalf("scan value mismatch at key %d", k)
		}
		last = k
		seen++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 391 {
		t.Fatalf("scan visited %d keys, want 391", seen)
	}
	// Bounded pages and early stop.
	seen = 0
	if err := ss.ScanBytes(0, ^uint64(0), 25, func(uint64, []byte) bool { seen++; return true }); err != nil {
		t.Fatal(err)
	}
	if seen != 25 {
		t.Fatalf("bounded scan visited %d, want 25", seen)
	}
	seen = 0
	if err := ss.ScanBytes(0, ^uint64(0), 0, func(uint64, []byte) bool { seen++; return seen < 7 }); err != nil {
		t.Fatal(err)
	}
	if seen != 7 {
		t.Fatalf("early-stop scan visited %d, want 7", seen)
	}
}

// TestBytesReopen round-trips varlen values through a clean Close/Reopen:
// refs stored in the tree must resolve in the recovered value log.
func TestBytesReopen(t *testing.T) {
	st, err := Open(Options{Shards: 4, ShardSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ss := st.NewSession()
	want := map[uint64][]byte{}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1500; i++ {
		k := rng.Uint64()%50000 + 1
		v := bval(k, rng.Intn(600))
		if err := ss.PutBytes(k, v); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	pools := st.Pools()
	ss.Close()
	st.Close()

	re, err := Reopen(pools, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rs := re.NewSession()
	defer rs.Close()
	for k, v := range want {
		got, ok, err := rs.GetBytes(k, nil)
		if err != nil || !ok || !bytes.Equal(got, v) {
			t.Fatalf("key %d after reopen: (%v, %v)", k, ok, err)
		}
	}
	if err := rs.PutBytes(1<<40, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMidPutBytes is the acceptance gate: a shard suffers a simulated
// power failure at a random point inside a window of PutBytes traffic —
// regularly mid-append or between the log publish and the tree insert —
// and the store is Reopened from the images. Committed varlen values
// survive byte-exact, the in-flight era is all-or-nothing per key (no torn
// value is ever visible), and the recovered store keeps serving both APIs.
func TestCrashMidPutBytes(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		st, err := Open(Options{
			Shards:    4,
			ShardSize: 32 << 20,
			Mem:       pmem.Config{TrackCrashes: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		ss := st.NewSession()

		committed := map[uint64][]byte{}
		for i := 0; i < 800; i++ {
			k := rng.Uint64()%100000 + 1
			v := bval(k, rng.Intn(500))
			if err := ss.PutBytes(k, v); err != nil {
				t.Fatal(err)
			}
			committed[k] = v
		}

		for i := 0; i < st.NumShards(); i++ {
			st.Pool(i).StartCrashLog()
		}

		victim := trial % st.NumShards()
		window := map[uint64][]byte{}
		for i := 0; i < 300; i++ {
			k := rng.Uint64()%100000 + 200000
			v := bval(k, rng.Intn(500))
			if err := ss.PutBytes(k, v); err != nil {
				t.Fatal(err)
			}
			window[k] = v
		}
		images := make([]*pmem.Pool, st.NumShards())
		for i := 0; i < st.NumShards(); i++ {
			pool := st.Pool(i)
			point := pool.LogLen()
			if i == victim {
				point = rng.Intn(pool.LogLen() + 1)
			}
			images[i] = pool.CrashImage(point, pmem.CrashRandom, rng)
		}
		ss.Close()
		st.Close()

		re, err := Reopen(images, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := re.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: post-recovery invariants: %v", trial, err)
		}
		rs := re.NewSession()

		var buf []byte
		for k, v := range committed {
			got, ok, err := rs.GetBytes(k, buf[:0])
			if err != nil || !ok || !bytes.Equal(got, v) {
				t.Fatalf("trial %d: lost committed varlen key %d: (%v, %v)", trial, k, ok, err)
			}
			buf = got
		}
		survived, lost := 0, 0
		for k, v := range window {
			got, ok, err := rs.GetBytes(k, buf[:0])
			switch {
			case err == nil && ok && bytes.Equal(got, v):
				survived++
			case err == nil && !ok && re.ShardFor(k) == victim:
				lost++ // atomic loss of an in-flight varlen write: legal
			case err == nil && !ok:
				t.Fatalf("trial %d: shard %d lost key %d but only shard %d crashed mid-tape",
					trial, re.ShardFor(k), k, victim)
			default:
				t.Fatalf("trial %d: TORN varlen value at key %d: ok=%v err=%v", trial, k, ok, err)
			}
			buf = got
		}
		t.Logf("trial %d: victim shard %d; window: %d survived, %d atomically lost",
			trial, victim, survived, lost)

		// The recovered store serves both APIs and accepts new writes.
		if err := rs.PutBytes(777, []byte("post-crash varlen")); err != nil {
			t.Fatalf("trial %d: post-recovery PutBytes: %v", trial, err)
		}
		if err := rs.Put(1<<45, 42); err != nil {
			t.Fatalf("trial %d: post-recovery Put: %v", trial, err)
		}
		rs.Close()
		re.Close()
	}
}

// TestCrashEveryPointOfOnePutBytes enumerates the full persist tape of a
// single PutBytes — every prefix of its stores, flushes and fences on the
// victim shard — asserting at each cut that the key is wholly present or
// wholly absent after Reopen. This is the store-level mirror of the vlog
// crash matrix, with the tree insert included in the tape.
func TestCrashEveryPointOfOnePutBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	st, err := Open(Options{
		Shards:    1,
		ShardSize: 32 << 20,
		Mem:       pmem.Config{TrackCrashes: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ss := st.NewSession()
	committed := map[uint64][]byte{}
	for i := uint64(1); i <= 50; i++ {
		v := bval(i, int(i)*7%300)
		if err := ss.PutBytes(i, v); err != nil {
			t.Fatal(err)
		}
		committed[i] = v
	}
	pool := st.Pool(0)
	pool.StartCrashLog()
	const key = uint64(999999)
	val := bval(key, 200)
	if err := ss.PutBytes(key, val); err != nil {
		t.Fatal(err)
	}
	tape := pool.LogLen()
	if tape == 0 {
		t.Fatal("empty crash tape")
	}
	for point := 0; point <= tape; point++ {
		for _, mode := range []pmem.CrashMode{pmem.CrashNone, pmem.CrashAll, pmem.CrashRandom} {
			img := pool.CrashImage(point, mode, rng)
			re, err := Reopen([]*pmem.Pool{img}, Options{})
			if err != nil {
				t.Fatalf("point %d/%d mode %d: reopen: %v", point, tape, mode, err)
			}
			if err := re.CheckInvariants(); err != nil {
				t.Fatalf("point %d mode %d: invariants: %v", point, mode, err)
			}
			rs := re.NewSession()
			for k, v := range committed {
				got, ok, err := rs.GetBytes(k, nil)
				if err != nil || !ok || !bytes.Equal(got, v) {
					t.Fatalf("point %d mode %d: committed key %d: (%v, %v)", point, mode, k, ok, err)
				}
			}
			got, ok, err := rs.GetBytes(key, nil)
			if err != nil {
				t.Fatalf("point %d mode %d: in-flight key errored (torn state visible): %v", point, mode, err)
			}
			if ok && !bytes.Equal(got, val) {
				t.Fatalf("point %d mode %d: TORN value for in-flight key", point, mode)
			}
			if point == tape && !ok {
				t.Fatalf("completed PutBytes lost at full tape")
			}
			if err := rs.PutBytes(key+1, []byte("recovered")); err != nil {
				t.Fatalf("point %d mode %d: post-recovery write: %v", point, mode, err)
			}
			rs.Close()
			re.Close()
		}
	}
	ss.Close()
	st.Close()
}

// TestBytesConcurrentSessions drives varlen puts/gets from several
// goroutines (one Session each) to exercise the append mutex against the
// lock-free readers under the race detector.
func TestBytesConcurrentSessions(t *testing.T) {
	st, err := Open(Options{Shards: 4, ShardSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const goroutines = 4
	const perG = 300
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			ss := st.NewSession()
			defer ss.Close()
			base := uint64(g) << 32
			var buf []byte
			for i := uint64(1); i <= perG; i++ {
				k := base | i
				v := bval(k, int(i%250))
				if err := ss.PutBytes(k, v); err != nil {
					errs <- err
					return
				}
				got, ok, err := ss.GetBytes(k, buf[:0])
				if err != nil || !ok || !bytes.Equal(got, v) {
					errs <- fmt.Errorf("g%d key %d: ok=%v err=%v", g, k, ok, err)
					return
				}
				buf = got
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
