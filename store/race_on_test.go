//go:build race

package store

// raceEnabled reports that the race detector is active; timing-based
// assertions are skipped because instrumentation distorts relative costs.
const raceEnabled = true
