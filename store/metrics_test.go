package store

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestStoreMetrics checks that the per-operation histograms observe real
// traffic (including the varlen path and a GC pass) and that the
// registered families render and lint.
func TestStoreMetrics(t *testing.T) {
	// Clock every operation so the count assertions below are exact;
	// production samples one in opSampleMask+1.
	old := opSampleMask
	opSampleMask = 0
	defer func() { opSampleMask = old }()

	st, err := Open(Options{Shards: 2, ShardSize: 16 << 20, ValueLogExtent: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ss := st.NewSession()
	defer ss.Close()

	const n = 100
	for i := uint64(0); i < n; i++ {
		if err := ss.Put(i, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		if _, _, err := ss.Get(i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ss.ScanLimit(0, ^uint64(0), 50); err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("v"), 512)
	for i := uint64(1000); i < 1000+n; i++ {
		if err := ss.PutBytes(i, val); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1000); i < 1000+n; i++ {
		if _, err := ss.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ss.CompactValues(); err != nil {
		t.Fatal(err)
	}

	m := st.met
	checks := []struct {
		name string
		h    *metrics.Histogram
		min  uint64
	}{
		{"get", m.get, n},
		{"put", m.put, n},
		{"delete", m.del, n},
		{"scan", m.scan, 1},
		{"putBytes", m.putBytes, n},
		{"gcPause", m.gcPause, 1},
	}
	for _, c := range checks {
		if got := c.h.Snapshot().Count(); got < c.min {
			t.Errorf("%s histogram count = %d, want >= %d", c.name, got, c.min)
		}
	}

	reg := metrics.NewRegistry()
	st.RegisterMetrics(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.LintText(buf.Bytes())
	if err != nil {
		t.Fatalf("store scrape does not lint: %v\n%s", err, buf.String())
	}
	for _, want := range []string{
		"pmkv_store_op_seconds", "pmkv_store_gc_pause_seconds",
		"pmkv_store_vlog_bytes", "pmkv_pmem_loads_total",
	} {
		if !fams[want] {
			t.Errorf("family %s missing from store scrape", want)
		}
	}
	if !strings.Contains(buf.String(), `pmkv_store_op_seconds_count{op="Get"}`) {
		t.Error("per-op Get series missing")
	}
}
