package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pmem"
)

// Crash-consistency matrix for the byte-key write path, extending the
// TestCrashEveryPointOfOnePutBytes pattern: tape one PutKV into a bucket
// that already holds prefix-colliding keys, then for EVERY persist point
// on the tape and every crash mode reopen the image and check the
// failure-atomicity contract — committed keys byte-exact, the in-flight
// key either fully absent or fully present (never torn, never an error),
// and its bucket's pre-existing colliders intact either way.

func kvPutCrashMatrix(t *testing.T, model pmem.MemModel) {
	rng := rand.New(rand.NewSource(77))
	st, err := Open(Options{
		Shards:    1,
		ShardSize: 32 << 20,
		Mem:       pmem.Config{TrackCrashes: true, Model: model},
	})
	if err != nil {
		t.Fatal(err)
	}
	ss := st.NewSession()
	committed := map[string][]byte{}
	commit := func(k string, n int) {
		t.Helper()
		v := bytes.Repeat([]byte{byte(len(k))}, n)
		if err := ss.PutKV([]byte(k), v); err != nil {
			t.Fatalf("commit %q: %v", k, err)
		}
		committed[k] = v
	}
	// Background population, including two keys sharing the in-flight
	// key's 8-byte prefix (same bucket: the PutKV below rewrites the
	// record THEY live in) and an empty-adjacent pair.
	for i := 0; i < 20; i++ {
		commit(fmt.Sprintf("bg-%04d", i), i*13%300)
	}
	commit("crashkey-a", 150)
	commit("crashkey-b", 0)
	commit("edge", 40)
	commit("edge\x00", 41)

	pool := st.Pool(0)
	pool.StartCrashLog()
	inKey := []byte("crashkey-target")
	inVal := bytes.Repeat([]byte{0xc7}, 200)
	if err := ss.PutKV(inKey, inVal); err != nil {
		t.Fatal(err)
	}
	tape := pool.LogLen()
	if tape == 0 {
		t.Fatal("empty crash tape")
	}
	for point := 0; point <= tape; point++ {
		for _, mode := range []pmem.CrashMode{pmem.CrashNone, pmem.CrashAll, pmem.CrashRandom} {
			img := pool.CrashImage(point, mode, rng)
			re, err := Reopen([]*pmem.Pool{img}, Options{})
			if err != nil {
				t.Fatalf("point %d/%d mode %d: reopen: %v", point, tape, mode, err)
			}
			if err := re.CheckInvariants(); err != nil {
				t.Fatalf("point %d mode %d: invariants: %v", point, mode, err)
			}
			rs := re.NewSession()
			for k, v := range committed {
				got, ok, err := rs.GetKV([]byte(k), nil)
				if err != nil || !ok || !bytes.Equal(got, v) {
					t.Fatalf("point %d mode %d: committed key %q: ok=%v err=%v", point, mode, k, ok, err)
				}
			}
			got, ok, err := rs.GetKV(inKey, nil)
			if err != nil {
				t.Fatalf("point %d mode %d: in-flight key errored (torn state visible): %v", point, mode, err)
			}
			if ok && !bytes.Equal(got, inVal) {
				t.Fatalf("point %d mode %d: TORN value for in-flight key", point, mode)
			}
			if point == tape && !ok {
				t.Fatalf("completed PutKV lost at full tape (mode %d)", mode)
			}
			// The store must stay writable after recovery, including into
			// the bucket the crash interrupted.
			if err := rs.PutKV([]byte("crashkey-after"), []byte("recovered")); err != nil {
				t.Fatalf("point %d mode %d: post-recovery write: %v", point, mode, err)
			}
			rs.Close()
			re.Close()
		}
	}
	ss.Close()
	st.Close()
}

func TestCrashEveryPointOfOnePutKV(t *testing.T)       { kvPutCrashMatrix(t, pmem.TSO) }
func TestCrashEveryPointOfOnePutKVNonTSO(t *testing.T) { kvPutCrashMatrix(t, pmem.NonTSO) }

// TestKVCrashRandomCampaign tapes a burst of byte-key mutations —
// overwrite, colliding insert, delete — and crashes at random points
// under both memory models: every key must land on one of its legal
// states (old value, new value, or absent for deletes/inserts), with the
// untouched population byte-exact throughout.
func TestKVCrashRandomCampaign(t *testing.T) {
	iters := 30
	crashesPer := 8
	if testing.Short() {
		iters, crashesPer = 8, 4
	}
	for _, model := range []pmem.MemModel{pmem.TSO, pmem.NonTSO} {
		t.Run(model.String(), func(t *testing.T) {
			for it := 0; it < iters; it++ {
				rng := rand.New(rand.NewSource(int64(1000*it) + int64(model)))
				st, err := Open(Options{
					Shards:    1,
					ShardSize: 16 << 20,
					Mem:       pmem.Config{TrackCrashes: true, Model: model},
				})
				if err != nil {
					t.Fatal(err)
				}
				ss := st.NewSession()
				stable := map[string][]byte{}
				put := func(k string, v []byte) {
					t.Helper()
					if err := ss.PutKV([]byte(k), v); err != nil {
						t.Fatalf("iter %d: put %q: %v", it, k, err)
					}
				}
				for i := 0; i < 10; i++ {
					k := fmt.Sprintf("stable-%03d", i)
					v := bytes.Repeat([]byte{byte(i)}, rng.Intn(200))
					put(k, v)
					stable[k] = v
				}
				oldOver := []byte("old-overwrite-value")
				oldDel := []byte("old-delete-value")
				put("mutate-o", oldOver) // will be overwritten on tape
				put("mutate-d", oldDel)  // will be deleted on tape

				pool := st.Pool(0)
				pool.StartCrashLog()
				newOver := bytes.Repeat([]byte{0xab}, 1+rng.Intn(300))
				insVal := bytes.Repeat([]byte{0xcd}, rng.Intn(300))
				put("mutate-o", newOver) // overwrite in place
				put("mutate-i", insVal)  // insert, collides with mutate-o/d's prefix
				if _, err := ss.DeleteKV([]byte("mutate-d")); err != nil {
					t.Fatalf("iter %d: delete: %v", it, err)
				}
				tape := pool.LogLen()
				for c := 0; c < crashesPer; c++ {
					point := rng.Intn(tape + 1)
					img := pool.CrashImage(point, pmem.CrashRandom, rng)
					re, err := Reopen([]*pmem.Pool{img}, Options{})
					if err != nil {
						t.Fatalf("iter %d point %d: reopen: %v", it, point, err)
					}
					if err := re.CheckInvariants(); err != nil {
						t.Fatalf("iter %d point %d: invariants: %v", it, point, err)
					}
					rs := re.NewSession()
					for k, v := range stable {
						got, ok, err := rs.GetKV([]byte(k), nil)
						if err != nil || !ok || !bytes.Equal(got, v) {
							t.Fatalf("iter %d point %d: stable key %q: ok=%v err=%v", it, point, k, ok, err)
						}
					}
					check := func(k string, legal ...[]byte) {
						t.Helper()
						got, ok, err := rs.GetKV([]byte(k), nil)
						if err != nil {
							t.Fatalf("iter %d point %d: %q errored: %v", it, point, k, err)
						}
						for _, want := range legal {
							if want == nil && !ok {
								return
							}
							if want != nil && ok && bytes.Equal(got, want) {
								return
							}
						}
						t.Fatalf("iter %d point %d: %q in illegal state (ok=%v, %d bytes)",
							it, point, k, ok, len(got))
					}
					check("mutate-o", oldOver, newOver)
					check("mutate-i", nil, insVal)
					check("mutate-d", oldDel, nil)
					rs.Close()
					re.Close()
				}
				ss.Close()
				st.Close()
			}
		})
	}
}
