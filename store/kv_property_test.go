package store

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// Property-based differential test for the byte-key API: a seeded op
// generator drives PutKV/GetKV/DeleteKV/ScanKV/CompactValues/Reopen
// against a model (map[string][]byte, scanned through a sorted key
// slice), and every divergence is a bug in exactly one of the two.
//
// Failures shrink by seed replay: each sub-test is fully determined by
// its seed, so a red run reproduces with
//
//	go test ./store -run TestKVProperty -kvprop.seed=<seed>
//
// which replays that seed alone with per-op logging. -kvprop.ops
// overrides the op count (bisect the failing trace by shrinking it).
var (
	kvpropSeed = flag.Int64("kvprop.seed", -1, "replay one TestKVProperty seed with op logging")
	kvpropOps  = flag.Int("kvprop.ops", 0, "override ops per TestKVProperty seed")
)

// kvKeyPool builds the adversarial key universe for one seed: families
// sharing an 8-byte prefix (bucket collisions), empty-adjacent pairs (k
// and k+"\x00"), 1-byte and binary keys, and keys up to MaxKey bytes.
func kvKeyPool(rng *rand.Rand) [][]byte {
	var pool [][]byte
	add := func(k []byte) { pool = append(pool, k) }
	// Three families of prefix-colliding keys.
	for f := 0; f < 3; f++ {
		prefix := fmt.Sprintf("fam%04d-", f) // 8 bytes
		add([]byte(prefix))                  // the prefix itself as a key
		for i := 0; i < 5; i++ {
			add([]byte(prefix + string(rune('a'+i))))
		}
	}
	// Empty-adjacent pairs.
	add([]byte("edge"))
	add([]byte("edge\x00"))
	add([]byte("edge\x00\x00"))
	// Single bytes, including the extremes.
	add([]byte{0x00})
	add([]byte{0xff})
	add([]byte{byte(rng.Intn(256))})
	// Binary keys with embedded zeros.
	for i := 0; i < 4; i++ {
		k := make([]byte, 9+rng.Intn(8))
		rng.Read(k)
		k[rng.Intn(len(k))] = 0x00
		add(k)
	}
	// Long keys, one at the MaxKey cap, sharing a long common prefix so
	// they collide into one bucket.
	long := bytes.Repeat([]byte{'L'}, 200+rng.Intn(200))
	add(append(append([]byte(nil), long...), '1'))
	add(append(append([]byte(nil), long...), '2'))
	add(bytes.Repeat([]byte{0xee}, MaxKey))
	// Random short keys for spread.
	for i := 0; i < 12; i++ {
		k := make([]byte, 1+rng.Intn(24))
		rng.Read(k)
		add(k)
	}
	return pool
}

// kvModelScan computes the expected ScanKV page from the model: in-range
// keys in bytewise order, truncated to max.
func kvModelScan(model map[string][]byte, lo, hi []byte, max int) []string {
	var keys []string
	for k := range model {
		if len(lo) > 0 && bytes.Compare([]byte(k), lo) < 0 {
			continue
		}
		if len(hi) > 0 && bytes.Compare([]byte(k), hi) > 0 {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if max > 0 && len(keys) > max {
		keys = keys[:max]
	}
	return keys
}

func TestKVProperty(t *testing.T) {
	nops := 1500
	if testing.Short() {
		nops = 400
	}
	if *kvpropOps > 0 {
		nops = *kvpropOps
	}
	if *kvpropSeed >= 0 {
		runKVProperty(t, *kvpropSeed, nops, true)
		return
	}
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:4]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runKVProperty(t, seed, nops, false)
		})
	}
}

func runKVProperty(t *testing.T, seed int64, nops int, verbose bool) {
	rng := rand.New(rand.NewSource(seed))
	pool := kvKeyPool(rng)
	opts := Options{Shards: 3, ShardSize: 8 << 20}
	st, err := Open(opts)
	if err != nil {
		t.Fatalf("seed %d: Open: %v", seed, err)
	}
	ss := st.NewSession()
	defer func() { ss.Close(); st.Close() }()

	model := map[string][]byte{}
	fatal := func(op int, format string, args ...any) {
		t.Helper()
		t.Fatalf("seed %d op %d: %s (replay: -kvprop.seed=%d -kvprop.ops=%d)",
			seed, op, fmt.Sprintf(format, args...), seed, op+1)
	}
	logf := func(format string, args ...any) {
		if verbose {
			t.Logf(format, args...)
		}
	}
	pick := func() []byte { return pool[rng.Intn(len(pool))] }
	checkAll := func(op int, when string) {
		t.Helper()
		for k, v := range model {
			got, ok, err := ss.GetKV([]byte(k), nil)
			if err != nil || !ok || !bytes.Equal(got, v) {
				fatal(op, "%s: model key %q: ok=%v err=%v got %d bytes want %d",
					when, k, ok, err, len(got), len(v))
			}
		}
	}

	for i := 0; i < nops; i++ {
		switch roll := rng.Intn(100); {
		case roll < 40: // put (insert or overwrite)
			k := pick()
			v := make([]byte, rng.Intn(600))
			rng.Read(v)
			logf("op %d: put %q (%d bytes)", i, k, len(v))
			if err := ss.PutKV(k, v); err != nil {
				fatal(i, "PutKV(%q): %v", k, err)
			}
			model[string(k)] = v
		case roll < 65: // get
			k := pick()
			if rng.Intn(8) == 0 { // occasional likely-miss shape (still model-checked)
				if len(k)+3 <= MaxKey {
					k = append(append([]byte(nil), k...), 0x01, 0x02, 0x03)
				} else {
					k = append([]byte(nil), k[:len(k)-1]...)
				}
			}
			logf("op %d: get %q", i, k)
			got, ok, err := ss.GetKV(k, nil)
			if err != nil {
				fatal(i, "GetKV(%q): %v", k, err)
			}
			want, inModel := model[string(k)]
			if ok != inModel {
				fatal(i, "GetKV(%q): ok=%v, model has it=%v", k, ok, inModel)
			}
			if ok && !bytes.Equal(got, want) {
				fatal(i, "GetKV(%q): got %d bytes, want %d", k, len(got), len(want))
			}
		case roll < 75: // delete
			k := pick()
			logf("op %d: delete %q", i, k)
			ok, err := ss.DeleteKV(k)
			if err != nil {
				fatal(i, "DeleteKV(%q): %v", k, err)
			}
			_, inModel := model[string(k)]
			if ok != inModel {
				fatal(i, "DeleteKV(%q): ok=%v, model has it=%v", k, ok, inModel)
			}
			delete(model, string(k))
		case roll < 90: // scan
			var lo, hi []byte
			if rng.Intn(4) != 0 {
				lo = pick()
			}
			if rng.Intn(4) != 0 {
				hi = pick()
			}
			if len(lo) > 0 && len(hi) > 0 && bytes.Compare(lo, hi) > 0 {
				lo, hi = hi, lo
			}
			max := 1 + rng.Intn(40)
			logf("op %d: scan [%q, %q] max %d", i, lo, hi, max)
			want := kvModelScan(model, lo, hi, max)
			var got []string
			var vals [][]byte
			err := ss.ScanKV(lo, hi, max, func(k, v []byte) bool {
				got = append(got, string(k))
				vals = append(vals, append([]byte(nil), v...))
				return true
			})
			if err != nil {
				fatal(i, "ScanKV: %v", err)
			}
			if len(got) != len(want) {
				fatal(i, "ScanKV [%q,%q] max %d: %d pairs, want %d\n got: %q\nwant: %q",
					lo, hi, max, len(got), len(want), got, want)
			}
			for j := range got {
				if got[j] != want[j] {
					fatal(i, "ScanKV pair %d: key %q, want %q", j, got[j], want[j])
				}
				if !bytes.Equal(vals[j], model[want[j]]) {
					fatal(i, "ScanKV pair %d (%q): wrong value (%d bytes)", j, got[j], len(vals[j]))
				}
			}
		case roll < 95: // compact
			logf("op %d: compact", i)
			if _, err := ss.CompactValues(); err != nil {
				fatal(i, "CompactValues: %v", err)
			}
		default: // reopen
			logf("op %d: reopen", i)
			pools := st.Pools()
			ss.Close()
			if err := st.Close(); err != nil {
				fatal(i, "Close: %v", err)
			}
			st, err = Reopen(pools, opts)
			if err != nil {
				fatal(i, "Reopen: %v", err)
			}
			ss = st.NewSession()
			checkAll(i, "after reopen")
		}
	}
	checkAll(nops, "final")
	// Deleted and never-written keys must stay gone.
	for _, k := range pool {
		if _, inModel := model[string(k)]; inModel {
			continue
		}
		if _, ok, err := ss.GetKV(k, nil); ok || err != nil {
			t.Fatalf("seed %d: absent key %q: ok=%v err=%v", seed, k, ok, err)
		}
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("seed %d: invariants: %v", seed, err)
	}
	n := 0
	if err := ss.ScanKV(nil, nil, 0, func(k, v []byte) bool { n++; return true }); err != nil {
		t.Fatalf("seed %d: full scan: %v", seed, err)
	}
	if n != len(model) {
		t.Fatalf("seed %d: full scan saw %d keys, model has %d", seed, n, len(model))
	}
}
