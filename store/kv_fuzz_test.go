package store

import (
	"bytes"
	"encoding/binary"
	"sort"
	"testing"
)

// Fuzz targets for the byte-key primitives: the prefix packer's ordering
// contract and the bucket codec's fail-closed parse / round-trip identity.
// Both run in CI's fuzz smoke alongside the wire decoder fuzzers.

func FuzzPackPrefix(f *testing.F) {
	f.Add([]byte("a\x00b"), []byte("ab"))
	f.Add([]byte{}, []byte{0x00})
	f.Add([]byte("sameprefix-1"), []byte("sameprefix-2"))
	f.Add(bytes.Repeat([]byte{0xff}, 16), bytes.Repeat([]byte{0xff}, 8))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		pa, pb := PackPrefix(a), PackPrefix(b)
		// Independent reimplementation: first 8 bytes, big-endian,
		// zero-padded on the right.
		var w [8]byte
		copy(w[:], a)
		if want := binary.BigEndian.Uint64(w[:]); pa != want {
			t.Fatalf("PackPrefix(%x) = %#x, want %#x", a, pa, want)
		}
		// Monotone: key order implies (non-strict) prefix order, so the
		// tree's prefix ordering can never contradict bytewise key order.
		switch cmp := bytes.Compare(a, b); {
		case cmp < 0 && pa > pb:
			t.Fatalf("keys %x < %x but prefixes %#x > %#x", a, b, pa, pb)
		case cmp > 0 && pa < pb:
			t.Fatalf("keys %x > %x but prefixes %#x < %#x", a, b, pa, pb)
		case cmp == 0 && pa != pb:
			t.Fatalf("equal keys %x with prefixes %#x != %#x", a, pa, pb)
		}
	})
}

// FuzzKVBucketCodec feeds arbitrary bytes to parseBucket (must fail
// closed, never panic, and anything it accepts must re-encode to the
// identical payload), then derives a set of prefix-sharing keys from the
// same input and drives bucketUpsert/bucketGet/bucketRemove against a
// map model.
func FuzzKVBucketCodec(f *testing.F) {
	// A valid two-entry bucket as a seed: keys share the prefix "seedpfx-".
	valid := appendKVEntry(nil, []byte("seedpfx-a"), []byte("v1"))
	valid = appendKVEntry(valid, []byte("seedpfx-b"), nil)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 'x'})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Part 1: arbitrary payload, every plausible owner prefix. Accepted
		// parses must be exact round-trips; rejected ones must visit nothing
		// beyond the valid prefix of entries (parse is sequential, but the
		// public readers treat any error as "not a bucket", so all that
		// matters here is no panic and no acceptance of malformed bytes).
		prefixes := []uint64{0, ^uint64(0)}
		if len(data) >= kvEntryHdr+1 {
			// The prefix a leading well-formed entry would claim, so valid
			// mutations of real buckets parse and exercise the accept path.
			kl := int(binary.LittleEndian.Uint16(data))
			if kl >= 1 && kl <= MaxKey && kvEntryHdr+kl <= len(data) {
				prefixes = append(prefixes, PackPrefix(data[kvEntryHdr:kvEntryHdr+kl]))
			}
		}
		for _, prefix := range prefixes {
			var reenc []byte
			var prev []byte
			err := parseBucket(prefix, data, func(k, v []byte) bool {
				if len(k) < 1 || len(k) > MaxKey {
					t.Fatalf("parse accepted key of %d bytes", len(k))
				}
				if PackPrefix(k) != prefix {
					t.Fatalf("parse accepted key %x outside prefix %#x", k, prefix)
				}
				if prev != nil && bytes.Compare(prev, k) >= 0 {
					t.Fatalf("parse accepted unsorted keys %x >= %x", prev, k)
				}
				prev = append(prev[:0], k...)
				reenc = appendKVEntry(reenc, k, v)
				return true
			})
			if err == nil && !bytes.Equal(reenc, data) {
				t.Fatalf("accepted payload is not a round-trip: %x -> %x", data, reenc)
			}
		}

		// Part 2: model-checked bucket operations over keys derived from
		// the fuzz input, all sharing one 8-byte prefix.
		const pfx = "fuzzpfx-"
		prefix := PackPrefix([]byte(pfx))
		model := map[string][]byte{}
		var bucket []byte
		for off := 0; off < len(data); {
			n := 1 + int(data[off])%8
			if off+n > len(data) {
				n = len(data) - off
			}
			chunk := data[off : off+n]
			off += n
			key := pfx + string(chunk)
			switch {
			case len(model) > 0 && chunk[0]%3 == 0: // remove (maybe absent)
				out, removed, err := bucketRemove(nil, bucket, prefix, []byte(key))
				if err != nil {
					t.Fatalf("bucketRemove(%q): %v", key, err)
				}
				_, inModel := model[key]
				if removed != inModel {
					t.Fatalf("bucketRemove(%q) = %v, model has it = %v", key, removed, inModel)
				}
				bucket = out
				delete(model, key)
			default: // upsert
				val := append([]byte("val:"), chunk...)
				out, replaced, err := bucketUpsert(nil, bucket, prefix, []byte(key), val)
				if err != nil {
					t.Fatalf("bucketUpsert(%q): %v", key, err)
				}
				_, inModel := model[key]
				if replaced != inModel {
					t.Fatalf("bucketUpsert(%q) replaced=%v, model has it = %v", key, replaced, inModel)
				}
				bucket = out
				model[key] = val
			}
		}
		// The final image must parse to exactly the model, in key order.
		var wantKeys []string
		for k := range model {
			wantKeys = append(wantKeys, k)
		}
		sort.Strings(wantKeys)
		i := 0
		err := parseBucket(prefix, bucket, func(k, v []byte) bool {
			if i >= len(wantKeys) || string(k) != wantKeys[i] || !bytes.Equal(v, model[wantKeys[i]]) {
				t.Fatalf("final bucket entry %d = %q, want %q", i, k, wantKeys[i])
			}
			i++
			return true
		})
		if err != nil || i != len(wantKeys) {
			t.Fatalf("final bucket parse: err=%v, %d entries, want %d", err, i, len(wantKeys))
		}
		// And every model key must resolve through bucketGet.
		for k, v := range model {
			got, found, err := bucketGet(bucket, prefix, []byte(k), nil)
			if err != nil || !found || !bytes.Equal(got, v) {
				t.Fatalf("bucketGet(%q): found=%v err=%v", k, found, err)
			}
		}
	})
}
