package store

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/txnlog"
)

// Unit coverage for the transaction API: write-set semantics
// (read-your-writes, last-write-wins), commit visibility and durability
// across Reopen, rollback, single-use enforcement, size limits, and the
// intent-payload codec. Crash atomicity lives in txn_crash_test.go.

func TestTxnCommitVisibleAndDurable(t *testing.T) {
	st, err := Open(Options{Shards: 4, ShardSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ss := st.NewSession()

	// Pre-existing state the transaction overwrites and deletes.
	if err := ss.Put(100, 1); err != nil {
		t.Fatal(err)
	}
	if err := ss.Put(200, 2); err != nil {
		t.Fatal(err)
	}
	if err := ss.PutKV([]byte("pre-over"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := ss.PutKV([]byte("pre-del"), []byte("doomed")); err != nil {
		t.Fatal(err)
	}

	tx := ss.Begin()
	// Spread fixed keys across all shards.
	for k := uint64(0); k < 64; k++ {
		if err := tx.Put(1000+k, k*k); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Put(100, 11); err != nil { // overwrite
		t.Fatal(err)
	}
	if err := tx.Delete(200); err != nil { // delete existing
		t.Fatal(err)
	}
	if err := tx.Delete(201); err != nil { // delete absent: no-op
		t.Fatal(err)
	}
	if err := tx.PutKV([]byte("txn-new"), bytes.Repeat([]byte{0x5a}, 500)); err != nil {
		t.Fatal(err)
	}
	if err := tx.PutKV([]byte("pre-over"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := tx.DeleteKV([]byte("pre-del")); err != nil {
		t.Fatal(err)
	}
	if got := tx.Pending(); got != 64+3+3 {
		t.Fatalf("Pending = %d, want %d", got, 64+3+3)
	}

	// Nothing visible before commit.
	if _, ok, _ := ss.Get(1000); ok {
		t.Fatal("buffered write visible before commit")
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	check := func(ss *Session, tag string) {
		t.Helper()
		for k := uint64(0); k < 64; k++ {
			v, ok, err := ss.Get(1000 + k)
			if err != nil || !ok || v != k*k {
				t.Fatalf("%s: key %d: v=%d ok=%v err=%v", tag, 1000+k, v, ok, err)
			}
		}
		if v, ok, _ := ss.Get(100); !ok || v != 11 {
			t.Fatalf("%s: overwrite lost (v=%d ok=%v)", tag, v, ok)
		}
		if _, ok, _ := ss.Get(200); ok {
			t.Fatalf("%s: deleted key still present", tag)
		}
		if v, ok, _ := ss.GetKV([]byte("txn-new"), nil); !ok || !bytes.Equal(v, bytes.Repeat([]byte{0x5a}, 500)) {
			t.Fatalf("%s: txn-new wrong (ok=%v len=%d)", tag, ok, len(v))
		}
		if v, ok, _ := ss.GetKV([]byte("pre-over"), nil); !ok || string(v) != "new" {
			t.Fatalf("%s: pre-over = %q ok=%v", tag, v, ok)
		}
		if _, ok, _ := ss.GetKV([]byte("pre-del"), nil); ok {
			t.Fatalf("%s: pre-del survived its delete", tag)
		}
	}
	check(ss, "after commit")
	ss.Close()
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	re, err := Reopen(st.Pools(), Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rs := re.NewSession()
	check(rs, "after reopen")
	rs.Close()
	re.Close()
}

func TestTxnRollbackAndSingleUse(t *testing.T) {
	st, err := Open(Options{Shards: 1, ShardSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ss := st.NewSession()
	defer ss.Close()

	tx := ss.Begin()
	if err := tx.Put(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := tx.PutKV([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	if _, ok, _ := ss.Get(1); ok {
		t.Fatal("rolled-back write reached the store")
	}
	if _, ok, _ := ss.GetKV([]byte("k"), nil); ok {
		t.Fatal("rolled-back byte-key write reached the store")
	}
	// Every method on a finished transaction fails with ErrTxnDone.
	if err := tx.Put(2, 2); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("Put after rollback: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("Commit after rollback: %v", err)
	}
	if _, _, err := tx.Get(1); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("Get after rollback: %v", err)
	}
	tx.Rollback() // double rollback is a no-op

	tx2 := ss.Begin()
	if err := tx2.Commit(); err != nil { // empty commit: no-op
		t.Fatalf("empty commit: %v", err)
	}
	if err := tx2.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("second commit: %v", err)
	}
}

func TestTxnReadYourWrites(t *testing.T) {
	st, err := Open(Options{Shards: 2, ShardSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ss := st.NewSession()
	defer ss.Close()
	if err := ss.Put(7, 70); err != nil {
		t.Fatal(err)
	}
	if err := ss.PutKV([]byte("base"), []byte("store")); err != nil {
		t.Fatal(err)
	}

	tx := ss.Begin()
	defer tx.Rollback()
	// Fall-through to the store for unbuffered keys.
	if v, ok, err := tx.Get(7); err != nil || !ok || v != 70 {
		t.Fatalf("fall-through Get: v=%d ok=%v err=%v", v, ok, err)
	}
	if v, ok, err := tx.GetKV([]byte("base"), nil); err != nil || !ok || string(v) != "store" {
		t.Fatalf("fall-through GetKV: %q ok=%v err=%v", v, ok, err)
	}
	// Buffered writes shadow the store; buffered deletes hide it.
	if err := tx.Put(7, 71); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := tx.Get(7); !ok || v != 71 {
		t.Fatalf("buffered Get: v=%d ok=%v", v, ok)
	}
	if err := tx.Delete(7); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tx.Get(7); ok {
		t.Fatal("buffered delete not visible to Get")
	}
	if err := tx.PutKV([]byte("base"), []byte("txn")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := tx.GetKV([]byte("base"), nil); !ok || string(v) != "txn" {
		t.Fatalf("buffered GetKV: %q ok=%v", v, ok)
	}
	if err := tx.DeleteKV([]byte("base")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tx.GetKV([]byte("base"), nil); ok {
		t.Fatal("buffered byte-key delete not visible")
	}
	// Last write wins: the delete above is the final buffered state, and
	// the store still holds the original until commit.
	if v, ok, _ := ss.Get(7); !ok || v != 70 {
		t.Fatalf("store mutated before commit: v=%d ok=%v", v, ok)
	}
}

func TestTxnLastWriteWinsAfterCommit(t *testing.T) {
	st, err := Open(Options{Shards: 2, ShardSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ss := st.NewSession()
	defer ss.Close()

	tx := ss.Begin()
	for i := 0; i < 5; i++ { // repeated overwrites collapse to the last
		if err := tx.Put(42, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Delete(43); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(43, 430); err != nil { // delete then put: put wins
		t.Fatal(err)
	}
	if err := tx.PutKV([]byte("flip"), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := tx.DeleteKV([]byte("flip")); err != nil { // put then delete: delete wins
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := ss.Get(42); !ok || v != 4 {
		t.Fatalf("key 42: v=%d ok=%v, want 4", v, ok)
	}
	if v, ok, _ := ss.Get(43); !ok || v != 430 {
		t.Fatalf("key 43: v=%d ok=%v, want 430", v, ok)
	}
	if _, ok, _ := ss.GetKV([]byte("flip"), nil); ok {
		t.Fatal("flip should have ended deleted")
	}
}

func TestTxnTooLarge(t *testing.T) {
	// A deliberately tiny redo log: one 4KiB-payload op cannot fit a
	// 1KiB log, and the pre-flight must refuse before writing anything.
	st, err := Open(Options{Shards: 1, ShardSize: 8 << 20, TxnLogCap: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ss := st.NewSession()
	defer ss.Close()

	tx := ss.Begin()
	if err := tx.PutKV([]byte("big"), bytes.Repeat([]byte{1}, 4<<10)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnTooLarge) {
		t.Fatalf("commit: %v, want ErrTxnTooLarge", err)
	}
	// Clean abort: the store is untouched and fully usable.
	if _, ok, _ := ss.GetKV([]byte("big"), nil); ok {
		t.Fatal("aborted write visible")
	}
	tx2 := ss.Begin()
	if err := tx2.Put(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatalf("small txn after abort: %v", err)
	}
	if v, ok, _ := ss.Get(1); !ok || v != 1 {
		t.Fatalf("post-abort commit lost: v=%d ok=%v", v, ok)
	}
}

func TestTxnBufferValidation(t *testing.T) {
	st, err := Open(Options{Shards: 1, ShardSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ss := st.NewSession()
	defer ss.Close()
	tx := ss.Begin()
	defer tx.Rollback()

	if err := tx.PutKV(nil, []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := tx.PutKV(bytes.Repeat([]byte{1}, MaxKey+1), []byte("v")); err == nil {
		t.Fatal("oversized key accepted")
	}
	if err := tx.PutKV([]byte("k"), make([]byte, MaxKVValue+1)); !errors.Is(err, ErrValueTooLarge) {
		t.Fatalf("oversized value: %v", err)
	}
	if err := tx.DeleteKV(nil); err == nil {
		t.Fatal("empty delete key accepted")
	}
	// The caller's slices are copied at buffer time.
	k, v := []byte("mut"), []byte("val-1")
	if err := tx.PutKV(k, v); err != nil {
		t.Fatal(err)
	}
	v[0] = 'X'
	if got, ok, _ := tx.GetKV([]byte("mut"), nil); !ok || string(got) != "val-1" {
		t.Fatalf("buffered value aliased caller slice: %q ok=%v", got, ok)
	}
}

func TestStoreBeginOwnsSession(t *testing.T) {
	st, err := Open(Options{Shards: 2, ShardSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	tx := st.Begin()
	if err := tx.Put(5, 50); err != nil {
		t.Fatal(err)
	}
	if err := tx.PutKV([]byte("own"), []byte("session")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := st.Begin()
	tx2.Rollback()

	ss := st.NewSession()
	defer ss.Close()
	if v, ok, _ := ss.Get(5); !ok || v != 50 {
		t.Fatalf("Store.Begin commit lost: v=%d ok=%v", v, ok)
	}
	if v, ok, _ := ss.GetKV([]byte("own"), nil); !ok || string(v) != "session" {
		t.Fatalf("Store.Begin byte-key commit lost: %q ok=%v", v, ok)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnCommitOnClosedStore(t *testing.T) {
	st, err := Open(Options{Shards: 1, ShardSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ss := st.NewSession()
	tx := ss.Begin()
	if err := tx.Put(1, 1); err != nil {
		t.Fatal(err)
	}
	ss.Close()
	st.Close()
	if err := tx.Commit(); !errors.Is(err, ErrClosed) {
		t.Fatalf("commit on closed store: %v, want ErrClosed", err)
	}
}

// TestTxnPayloadCodecRoundTrip drives the intent codec over a mixed op
// sequence and checks an exact decoded round-trip.
func TestTxnPayloadCodecRoundTrip(t *testing.T) {
	ops := []txnOp{
		{kind: txnOpPut, key: 0, val: ^uint64(0)},
		{kind: txnOpDelete, key: 1<<60 | 7},
		{kind: txnOpPutKV, bkey: []byte("k"), bval: nil},
		{kind: txnOpPutKV, bkey: bytes.Repeat([]byte{0xee}, MaxKey), bval: bytes.Repeat([]byte{9}, 3000)},
		{kind: txnOpDelKV, bkey: []byte("gone")},
	}
	var payload []byte
	for _, op := range ops {
		payload = appendTxnOp(payload, op)
	}
	got, err := decodeTxnOps(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
	}
	for i, op := range ops {
		g := got[i]
		if g.kind != op.kind || g.key != op.key || g.val != op.val ||
			!bytes.Equal(g.bkey, op.bkey) || !bytes.Equal(g.bval, op.bval) {
			t.Fatalf("op %d: got %+v want %+v", i, g, op)
		}
	}
	// Fail-closed: truncation at any interior byte must error, never
	// yield a partial parse that silently drops ops.
	for cut := 1; cut < len(payload); cut++ {
		if _, err := decodeTxnOps(payload[:cut]); err == nil {
			// A cut can only be valid if it falls exactly on an op
			// boundary; verify it decodes a strict prefix in that case.
			dec, _ := decodeTxnOps(payload[:cut])
			if len(dec) >= len(ops) {
				t.Fatalf("cut %d: over-decoded", cut)
			}
		}
	}
}

// FuzzTxnLogRecord fuzzes the fail-closed intent-payload parser (the
// bytes recovery reads back out of the redo log). Any input must either
// decode cleanly — in which case re-encoding the decoded ops must
// reproduce the input exactly — or error without panicking; decoded ops
// must always satisfy the documented caps.
func FuzzTxnLogRecord(f *testing.F) {
	var seed []byte
	seed = appendTxnOp(seed, txnOp{kind: txnOpPut, key: 77, val: 777})
	seed = appendTxnOp(seed, txnOp{kind: txnOpDelete, key: 78})
	seed = appendTxnOp(seed, txnOp{kind: txnOpPutKV, bkey: []byte("fuzz-key"), bval: []byte("fuzz-val")})
	seed = appendTxnOp(seed, txnOp{kind: txnOpDelKV, bkey: []byte("fuzz-del")})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{txnOpPut})
	f.Add([]byte{txnOpPutKV, 0xff, 0xff, 0, 0, 0, 0})
	f.Add([]byte{5, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		ops, err := decodeTxnOps(data)
		if err != nil {
			return
		}
		var re []byte
		for _, op := range ops {
			switch op.kind {
			case txnOpPut, txnOpDelete:
			case txnOpPutKV:
				if len(op.bkey) < 1 || len(op.bkey) > MaxKey || len(op.bval) > MaxKVValue {
					t.Fatalf("decoded put-kv violates caps: klen=%d vlen=%d", len(op.bkey), len(op.bval))
				}
			case txnOpDelKV:
				if len(op.bkey) < 1 || len(op.bkey) > MaxKey {
					t.Fatalf("decoded del-kv violates caps: klen=%d", len(op.bkey))
				}
			default:
				t.Fatalf("decoded unknown kind %d", op.kind)
			}
			re = appendTxnOp(re, op)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted input does not round-trip: %d in, %d out", len(data), len(re))
		}
	})
}

// TestTxnReopenAfterManyCommits interleaves transactions with plain
// writes and reopens, checking the final state — the txn sequence counter
// restarting from zero across Reopen must be harmless because every log
// is truncated during recovery.
func TestTxnReopenAfterManyCommits(t *testing.T) {
	st, err := Open(Options{Shards: 3, ShardSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]uint64{}
	for round := 0; round < 3; round++ {
		ss := st.NewSession()
		for i := 0; i < 4; i++ {
			tx := ss.Begin()
			for j := 0; j < 10; j++ {
				k := uint64(round*1000 + i*100 + j)
				if err := tx.Put(k, k*3); err != nil {
					t.Fatal(err)
				}
				want[k] = k * 3
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("round %d txn %d: %v", round, i, err)
			}
		}
		if err := ss.Put(uint64(90000+round), 1); err != nil {
			t.Fatal(err)
		}
		want[uint64(90000+round)] = 1
		ss.Close()
		re, err := Reopen(st.Pools(), Options{})
		if err != nil {
			t.Fatalf("round %d reopen: %v", round, err)
		}
		st = re
	}
	ss := st.NewSession()
	for k, v := range want {
		got, ok, err := ss.Get(k)
		if err != nil || !ok || got != v {
			t.Fatalf("key %d: got=%d ok=%v err=%v want %d", k, got, ok, err, v)
		}
	}
	n, err := ss.Len()
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != len(want) {
		t.Fatalf("Len = %d, want %d", n, len(want))
	}
	ss.Close()
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st.Close()
}

// TestTxnIncompleteLatchesStoreReadOnly drives a commit past its commit
// point into an injected apply failure and proves the store latches
// read-only: every further mutation — transactional or plain, fixed-width
// or byte-keyed — fails with ErrReopenRequired, reads keep serving, the
// redo records survive untouched, and a Reopen replays the committed
// transaction and lifts the latch.
func TestTxnIncompleteLatchesStoreReadOnly(t *testing.T) {
	st, err := Open(Options{Shards: 2, ShardSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ss := st.NewSession()

	if err := ss.Put(10, 100); err != nil {
		t.Fatal(err)
	}
	if err := ss.PutKV([]byte("stable"), []byte("value")); err != nil {
		t.Fatal(err)
	}

	// A cross-shard transaction whose apply phase fails on its first
	// shard: the commit marks are durable, nothing is applied.
	var insertKeys []uint64
	seen := map[int]bool{}
	for k := uint64(5000); len(insertKeys) < 2; k++ {
		if sh := st.ShardFor(k); !seen[sh] {
			seen[sh] = true
			insertKeys = append(insertKeys, k)
		}
	}
	st.applyFault = func(int) error { return errors.New("injected apply fault") }
	tx := ss.Begin()
	for _, k := range insertKeys {
		if err := tx.Put(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	err = tx.Commit()
	if !errors.Is(err, ErrTxnIncomplete) {
		t.Fatalf("faulted commit: %v, want ErrTxnIncomplete", err)
	}
	st.applyFault = nil

	// Both shards' redo logs still hold the committed records — the
	// failure path must never truncate them.
	for i := 0; i < 2; i++ {
		if st.shards[i].tl.Len() == 0 {
			t.Fatalf("shard %d redo log empty after incomplete commit", i)
		}
	}

	// Every mutation path refuses with ErrReopenRequired.
	if err := ss.Put(11, 1); !errors.Is(err, ErrReopenRequired) {
		t.Fatalf("Put on latched store: %v", err)
	}
	if _, err := ss.Delete(10); !errors.Is(err, ErrReopenRequired) {
		t.Fatalf("Delete on latched store: %v", err)
	}
	if err := ss.PutBatch([]KV{{Key: 12, Val: 2}}); !errors.Is(err, ErrReopenRequired) {
		t.Fatalf("PutBatch on latched store: %v", err)
	}
	if err := ss.PutBytes(13, []byte("x")); !errors.Is(err, ErrReopenRequired) {
		t.Fatalf("PutBytes on latched store: %v", err)
	}
	if _, err := ss.DeleteBytes(13); !errors.Is(err, ErrReopenRequired) {
		t.Fatalf("DeleteBytes on latched store: %v", err)
	}
	if err := ss.PutKV([]byte("nope"), []byte("x")); !errors.Is(err, ErrReopenRequired) {
		t.Fatalf("PutKV on latched store: %v", err)
	}
	if _, err := ss.DeleteKV([]byte("stable")); !errors.Is(err, ErrReopenRequired) {
		t.Fatalf("DeleteKV on latched store: %v", err)
	}
	tx2 := ss.Begin()
	if err := tx2.Put(14, 3); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); !errors.Is(err, ErrReopenRequired) {
		t.Fatalf("Commit on latched store: %v", err)
	}

	// Reads keep serving the pre-transaction state.
	if v, ok, err := ss.Get(10); err != nil || !ok || v != 100 {
		t.Fatalf("Get on latched store: v=%d ok=%v err=%v", v, ok, err)
	}
	if v, ok, err := ss.GetKV([]byte("stable"), nil); err != nil || !ok || string(v) != "value" {
		t.Fatalf("GetKV on latched store: ok=%v err=%v", ok, err)
	}
	for _, k := range insertKeys {
		if _, ok, _ := ss.Get(k); ok {
			t.Fatalf("unapplied txn key %d visible", k)
		}
	}
	ss.Close()

	// Reopen replays the committed transaction and lifts the latch.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Reopen(st.Pools(), Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	rs := re.NewSession()
	for _, k := range insertKeys {
		if v, ok, err := rs.Get(k); err != nil || !ok || v != k+1 {
			t.Fatalf("replayed key %d: v=%d ok=%v err=%v", k, v, ok, err)
		}
	}
	for i := 0; i < 2; i++ {
		if n := re.shards[i].tl.Len(); n != 0 {
			t.Fatalf("shard %d redo log holds %d bytes after recovery", i, n)
		}
	}
	if err := rs.Put(11, 1); err != nil {
		t.Fatalf("Put after reopen: %v", err)
	}
	tx3 := rs.Begin()
	if err := tx3.Put(15, 5); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatalf("Commit after reopen: %v", err)
	}
	rs.Close()
	re.Close()
}

// TestTxnCommitRefusesNonEmptyRedoLog plants an orphan record directly in
// a shard's redo log and proves Commit refuses with ErrReopenRequired
// without touching the log: the abort paths Truncate, and truncating
// records a crashed commit left behind would durably erase a committed
// transaction.
func TestTxnCommitRefusesNonEmptyRedoLog(t *testing.T) {
	st, err := Open(Options{Shards: 1, ShardSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ss := st.NewSession()
	if err := st.shards[0].tl.Append(ss.ths[0], 99, txnlog.KindIntent, []byte("orphan")); err != nil {
		t.Fatal(err)
	}
	before := st.shards[0].tl.Len()
	tx := ss.Begin()
	if err := tx.Put(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrReopenRequired) {
		t.Fatalf("commit over non-empty redo log: %v, want ErrReopenRequired", err)
	}
	if got := st.shards[0].tl.Len(); got != before {
		t.Fatalf("redo log %d bytes after refused commit, was %d — commit touched it", got, before)
	}
	ss.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// The unmarked orphan is discarded at reopen and the store works.
	re, err := Reopen(st.Pools(), Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rs := re.NewSession()
	tx2 := rs.Begin()
	if err := tx2.Put(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatalf("commit after reopen: %v", err)
	}
	rs.Close()
	re.Close()
}

// TestTxnCrossFamilyRefusedAtPreflight points a transactional byte-key op
// at a prefix word the fixed-width API owns. The collision must refuse at
// pre-flight — a clean ErrNotKeyed abort, nothing logged, store still
// writable — not surface during apply, which would be past the commit
// point and latch the store over a client-addressable state error.
func TestTxnCrossFamilyRefusedAtPreflight(t *testing.T) {
	st, err := Open(Options{Shards: 1, ShardSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ss := st.NewSession()
	defer ss.Close()

	key := []byte("family-clash")
	if err := ss.Put(PackPrefix(key), 12345); err != nil {
		t.Fatal(err)
	}
	for _, build := range []func(*Txn) error{
		func(tx *Txn) error { return tx.PutKV(key, []byte("v")) },
		func(tx *Txn) error { return tx.DeleteKV(key) },
	} {
		tx := ss.Begin()
		if err := build(tx); err != nil {
			t.Fatal(err)
		}
		if err := tx.Put(7, 8); err != nil {
			t.Fatal(err)
		}
		err := tx.Commit()
		if !errors.Is(err, ErrNotKeyed) {
			t.Fatalf("cross-family commit: %v, want ErrNotKeyed", err)
		}
		if errors.Is(err, ErrTxnIncomplete) || errors.Is(err, ErrReopenRequired) {
			t.Fatalf("cross-family commit escalated past a clean abort: %v", err)
		}
	}
	if n := st.shards[0].tl.Len(); n != 0 {
		t.Fatalf("redo log holds %d bytes after refused commits", n)
	}
	if _, ok, _ := ss.Get(7); ok {
		t.Fatal("refused transaction's write visible")
	}
	if v, ok, _ := ss.Get(PackPrefix(key)); !ok || v != 12345 {
		t.Fatal("colliding fixed-width key disturbed")
	}
	// The refusal is not sticky: an honest transaction still commits.
	tx := ss.Begin()
	if err := tx.Put(7, 8); err != nil {
		t.Fatal(err)
	}
	if err := tx.PutKV([]byte("fine"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("honest commit after refusals: %v", err)
	}
}
