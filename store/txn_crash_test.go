package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pmem"
)

// Crash-consistency proofs for the transaction commit protocol.
//
// The single-shard matrix tapes one mixed commit and reopens at EVERY
// persist point under every crash mode; the cross-shard matrix uses the
// store's commitStep hook to enumerate every CONSISTENT CUT of a commit
// spanning several shards — one shard's pool crashed mid-phase while the
// others sit at the step boundary the single-threaded commit had them at.
// In both, the contract is all-or-nothing: the recovered store holds
// either the complete pre-transaction state or the complete
// post-transaction state, never a mix, with the untouched population
// intact and the store writable afterwards.

// txnEffect describes one key's before/after states across the taped
// transaction. nil-with-absent semantics: pre/post of nil mean absent.
type txnEffect struct {
	fixed  bool
	key    uint64
	bkey   []byte
	pre    *uint64 // fixed: nil = absent
	post   *uint64
	preKV  []byte // byte-key: nil = absent
	postKV []byte
}

func u64p(v uint64) *uint64 { return &v }

// checkAtomic classifies the recovered image as pre- or post-transaction
// and fails on any mixed state. Returns true when the transaction's
// effects are (all) visible.
func checkAtomic(t *testing.T, ss *Session, effects []txnEffect, tag string) bool {
	t.Helper()
	state := -1 // -1 unknown, 0 pre, 1 post
	classify := func(isPost, isPre bool, desc string) {
		t.Helper()
		switch {
		case isPost && isPre:
			// Effect with identical pre/post carries no information.
		case isPost:
			if state == 0 {
				t.Fatalf("%s: MIXED state: %s is post-txn but an earlier key was pre-txn", tag, desc)
			}
			state = 1
		case isPre:
			if state == 1 {
				t.Fatalf("%s: MIXED state: %s is pre-txn but an earlier key was post-txn", tag, desc)
			}
			state = 0
		default:
			t.Fatalf("%s: %s in ILLEGAL state (neither pre nor post)", tag, desc)
		}
	}
	for _, e := range effects {
		if e.fixed {
			v, ok, err := ss.Get(e.key)
			if err != nil {
				t.Fatalf("%s: Get %d: %v", tag, e.key, err)
			}
			isPre := (e.pre == nil && !ok) || (e.pre != nil && ok && v == *e.pre)
			isPost := (e.post == nil && !ok) || (e.post != nil && ok && v == *e.post)
			classify(isPost, isPre, fmt.Sprintf("key %d (v=%d ok=%v)", e.key, v, ok))
		} else {
			v, ok, err := ss.GetKV(e.bkey, nil)
			if err != nil {
				t.Fatalf("%s: GetKV %q: %v", tag, e.bkey, err)
			}
			isPre := (e.preKV == nil && !ok) || (e.preKV != nil && ok && bytes.Equal(v, e.preKV))
			isPost := (e.postKV == nil && !ok) || (e.postKV != nil && ok && bytes.Equal(v, e.postKV))
			classify(isPost, isPre, fmt.Sprintf("byte key %q (ok=%v len=%d)", e.bkey, ok, len(v)))
		}
	}
	return state == 1
}

// txnCommitCrashMatrix: single shard, one mixed commit (inserts,
// overwrite, delete, byte-key put/overwrite/delete), every persist point,
// every crash mode, both memory models.
func txnCommitCrashMatrix(t *testing.T, model pmem.MemModel) {
	rng := rand.New(rand.NewSource(42))
	st, err := Open(Options{
		Shards:    1,
		ShardSize: 32 << 20,
		Mem:       pmem.Config{TrackCrashes: true, Model: model},
	})
	if err != nil {
		t.Fatal(err)
	}
	ss := st.NewSession()

	committed := map[uint64]uint64{}
	committedKV := map[string][]byte{}
	for i := uint64(0); i < 40; i++ {
		if err := ss.Put(i, i*7); err != nil {
			t.Fatal(err)
		}
		committed[i] = i * 7
	}
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("bg-%03d", i)
		v := bytes.Repeat([]byte{byte(i + 1)}, 50+i*20)
		if err := ss.PutKV([]byte(k), v); err != nil {
			t.Fatal(err)
		}
		committedKV[k] = v
	}
	// Keys the transaction touches: 500 overwritten, 501 deleted,
	// 502 inserted; "txn-over" overwritten, "txn-del" deleted,
	// "txn-new" inserted.
	if err := ss.Put(500, 5); err != nil {
		t.Fatal(err)
	}
	if err := ss.Put(501, 6); err != nil {
		t.Fatal(err)
	}
	preOver := []byte("pre-overwrite")
	preDel := []byte("pre-delete")
	if err := ss.PutKV([]byte("txn-over"), preOver); err != nil {
		t.Fatal(err)
	}
	if err := ss.PutKV([]byte("txn-del"), preDel); err != nil {
		t.Fatal(err)
	}
	newOver := bytes.Repeat([]byte{0xaa}, 120)
	newIns := bytes.Repeat([]byte{0xbb}, 240)
	effects := []txnEffect{
		{fixed: true, key: 500, pre: u64p(5), post: u64p(55)},
		{fixed: true, key: 501, pre: u64p(6), post: nil},
		{fixed: true, key: 502, pre: nil, post: u64p(52)},
		{bkey: []byte("txn-over"), preKV: preOver, postKV: newOver},
		{bkey: []byte("txn-del"), preKV: preDel, postKV: nil},
		{bkey: []byte("txn-new"), preKV: nil, postKV: newIns},
	}

	pool := st.Pool(0)
	pool.StartCrashLog()
	tx := ss.Begin()
	if err := tx.Put(500, 55); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(501); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put(502, 52); err != nil {
		t.Fatal(err)
	}
	if err := tx.PutKV([]byte("txn-over"), newOver); err != nil {
		t.Fatal(err)
	}
	if err := tx.DeleteKV([]byte("txn-del")); err != nil {
		t.Fatal(err)
	}
	if err := tx.PutKV([]byte("txn-new"), newIns); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	tape := pool.LogLen()
	if tape == 0 {
		t.Fatal("empty crash tape")
	}
	for point := 0; point <= tape; point++ {
		for _, mode := range []pmem.CrashMode{pmem.CrashNone, pmem.CrashAll, pmem.CrashRandom} {
			tag := fmt.Sprintf("point %d/%d mode %d", point, tape, mode)
			img := pool.CrashImage(point, mode, rng)
			re, err := Reopen([]*pmem.Pool{img}, Options{})
			if err != nil {
				t.Fatalf("%s: reopen: %v", tag, err)
			}
			if err := re.CheckInvariants(); err != nil {
				t.Fatalf("%s: invariants: %v", tag, err)
			}
			rs := re.NewSession()
			for k, v := range committed {
				got, ok, err := rs.Get(k)
				if err != nil || !ok || got != v {
					t.Fatalf("%s: committed key %d: got=%d ok=%v err=%v", tag, k, got, ok, err)
				}
			}
			for k, v := range committedKV {
				got, ok, err := rs.GetKV([]byte(k), nil)
				if err != nil || !ok || !bytes.Equal(got, v) {
					t.Fatalf("%s: committed byte key %q: ok=%v err=%v", tag, k, ok, err)
				}
			}
			post := checkAtomic(t, rs, effects, tag)
			if point == tape && !post {
				t.Fatalf("%s: completed commit rolled back at full tape", tag)
			}
			// Recovered store stays writable — plain and transactional.
			if err := rs.Put(9000, 9); err != nil {
				t.Fatalf("%s: post-recovery put: %v", tag, err)
			}
			tx := rs.Begin()
			if err := tx.Put(9001, 91); err != nil {
				t.Fatalf("%s: post-recovery txn put: %v", tag, err)
			}
			if err := tx.PutKV([]byte("after"), []byte("crash")); err != nil {
				t.Fatalf("%s: post-recovery txn putkv: %v", tag, err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("%s: post-recovery txn commit: %v", tag, err)
			}
			rs.Close()
			re.Close()
		}
	}
	ss.Close()
	st.Close()
}

func TestTxnCrashEveryPointOfOneCommit(t *testing.T)       { txnCommitCrashMatrix(t, pmem.TSO) }
func TestTxnCrashEveryPointOfOneCommitNonTSO(t *testing.T) { txnCommitCrashMatrix(t, pmem.NonTSO) }

// txnCrossShardCrashMatrix commits one transaction spanning at least
// three of four shards while the commitStep hook snapshots every pool's
// persist count at each protocol step. Commits are single-threaded, so
// between consecutive snapshots exactly one pool advances; crashing that
// pool at every interior point — under every crash mode — with the others
// frozen at their boundary counts enumerates every consistent cut of the
// distributed commit, including "one shard dies mid-phase".
func txnCrossShardCrashMatrix(t *testing.T, model pmem.MemModel) {
	rng := rand.New(rand.NewSource(1234))
	const shards = 4
	st, err := Open(Options{
		Shards:    shards,
		ShardSize: 16 << 20,
		Mem:       pmem.Config{TrackCrashes: true, Model: model},
	})
	if err != nil {
		t.Fatal(err)
	}
	ss := st.NewSession()

	// Background population across all shards.
	committed := map[uint64]uint64{}
	for i := uint64(0); i < 100; i++ {
		if err := ss.Put(i, i+1); err != nil {
			t.Fatal(err)
		}
		committed[i] = i + 1
	}
	// Pick fixed keys landing on at least three distinct shards, plus a
	// byte key (its shard counts too). Keys 1000..1063 hit every shard
	// with any sane distribution; collect one insert + one overwrite or
	// delete per shard.
	var insertKeys, overKeys []uint64
	seenIns := map[int]bool{}
	seenOver := map[int]bool{}
	for k := uint64(1000); len(insertKeys) < shards || len(overKeys) < shards; k++ {
		sh := st.ShardFor(k)
		if !seenIns[sh] {
			seenIns[sh] = true
			insertKeys = append(insertKeys, k)
		} else if !seenOver[sh] {
			seenOver[sh] = true
			overKeys = append(overKeys, k)
		}
		if k > 100000 {
			t.Fatal("could not spread keys over shards")
		}
	}
	for _, k := range overKeys {
		if err := ss.Put(k, 7); err != nil {
			t.Fatal(err)
		}
	}
	bkey := []byte("cross-shard-kv")
	preKV := []byte("kv-before")
	postKV := bytes.Repeat([]byte{0xcc}, 180)
	if err := ss.PutKV(bkey, preKV); err != nil {
		t.Fatal(err)
	}

	var effects []txnEffect
	for _, k := range insertKeys {
		effects = append(effects, txnEffect{fixed: true, key: k, pre: nil, post: u64p(k * 2)})
	}
	// First overwrite key becomes a delete, the rest are overwrites.
	effects = append(effects, txnEffect{fixed: true, key: overKeys[0], pre: u64p(7), post: nil})
	for _, k := range overKeys[1:] {
		effects = append(effects, txnEffect{fixed: true, key: k, pre: u64p(7), post: u64p(k * 3)})
	}
	effects = append(effects, txnEffect{bkey: bkey, preKV: preKV, postKV: postKV})

	// Arm the consistent-cut recorder and tape the commit.
	for i := 0; i < shards; i++ {
		st.Pool(i).StartCrashLog()
	}
	snap := func() []int {
		v := make([]int, shards)
		for i := 0; i < shards; i++ {
			v[i] = st.Pool(i).LogLen()
		}
		return v
	}
	vectors := [][]int{snap()} // all zeros: the nothing-happened cut
	st.commitStep = func() { vectors = append(vectors, snap()) }

	tx := ss.Begin()
	for _, k := range insertKeys {
		if err := tx.Put(k, k*2); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Delete(overKeys[0]); err != nil {
		t.Fatal(err)
	}
	for _, k := range overKeys[1:] {
		if err := tx.Put(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.PutKV(bkey, postKV); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	st.commitStep = nil
	if len(vectors) < 2*shards {
		t.Fatalf("only %d step vectors for a %d-shard txn", len(vectors), shards)
	}

	cuts := 0
	examine := func(cut []int, tag string, wantPost int) {
		t.Helper()
		for _, mode := range []pmem.CrashMode{pmem.CrashNone, pmem.CrashAll, pmem.CrashRandom} {
			imgs := make([]*pmem.Pool, shards)
			for i := 0; i < shards; i++ {
				imgs[i] = st.Pool(i).CrashImage(cut[i], mode, rng)
			}
			mtag := fmt.Sprintf("%s mode %d", tag, mode)
			re, err := Reopen(imgs, Options{})
			if err != nil {
				t.Fatalf("%s: reopen: %v", mtag, err)
			}
			if err := re.CheckInvariants(); err != nil {
				t.Fatalf("%s: invariants: %v", mtag, err)
			}
			rs := re.NewSession()
			for k, v := range committed {
				got, ok, err := rs.Get(k)
				if err != nil || !ok || got != v {
					t.Fatalf("%s: committed key %d: got=%d ok=%v err=%v", mtag, k, got, ok, err)
				}
			}
			post := checkAtomic(t, rs, effects, mtag)
			if wantPost == 1 && !post {
				t.Fatalf("%s: completed commit rolled back", mtag)
			}
			if wantPost == 0 && post {
				t.Fatalf("%s: transaction visible before any persist", mtag)
			}
			// Recovered store accepts a fresh cross-shard transaction.
			tx := rs.Begin()
			for i := uint64(0); i < 8; i++ {
				if err := tx.Put(77000+i, i); err != nil {
					t.Fatalf("%s: post-recovery buffer: %v", mtag, err)
				}
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("%s: post-recovery commit: %v", mtag, err)
			}
			rs.Close()
			re.Close()
			cuts++
		}
	}

	examine(vectors[0], "cut v0", 0)
	for s := 1; s < len(vectors); s++ {
		prev, cur := vectors[s-1], vectors[s]
		adv := -1
		for i := 0; i < shards; i++ {
			if cur[i] != prev[i] {
				if adv != -1 {
					t.Fatalf("segment %d: pools %d and %d both advanced (%v -> %v)", s, adv, i, prev, cur)
				}
				adv = i
			}
		}
		if adv == -1 {
			continue // step with no persists (shard not participating in phase)
		}
		want := -1
		if s == len(vectors)-1 {
			want = 1 // every log truncated: commit fully applied
		}
		for point := prev[adv] + 1; point <= cur[adv]; point++ {
			cut := append([]int(nil), prev...)
			cut[adv] = point
			w := -1
			if point == cur[adv] && want == 1 {
				w = 1
			}
			examine(cut, fmt.Sprintf("seg %d pool %d point %d/%d", s, adv, point, cur[adv]), w)
		}
	}
	if cuts < 3*shards {
		t.Fatalf("matrix degenerated: only %d cuts examined", cuts)
	}
	t.Logf("examined %d consistent cuts over %d step vectors", cuts, len(vectors))
	ss.Close()
	st.Close()
}

func TestTxnCrossShardAtomicityCrash(t *testing.T)       { txnCrossShardCrashMatrix(t, pmem.TSO) }
func TestTxnCrossShardAtomicityCrashNonTSO(t *testing.T) { txnCrossShardCrashMatrix(t, pmem.NonTSO) }

// TestTxnCrashRandomCampaign fires random whole-system crash points (all
// pools cut at one tape position each, CrashRandom) across repeated
// multi-shard commits under both memory models.
func TestTxnCrashRandomCampaign(t *testing.T) {
	iters := 12
	crashesPer := 6
	if testing.Short() {
		iters, crashesPer = 4, 3
	}
	for _, model := range []pmem.MemModel{pmem.TSO, pmem.NonTSO} {
		t.Run(model.String(), func(t *testing.T) {
			for it := 0; it < iters; it++ {
				rng := rand.New(rand.NewSource(int64(9000*it) + int64(model)))
				const shards = 3
				st, err := Open(Options{
					Shards:    shards,
					ShardSize: 16 << 20,
					Mem:       pmem.Config{TrackCrashes: true, Model: model},
				})
				if err != nil {
					t.Fatal(err)
				}
				ss := st.NewSession()
				stable := map[uint64]uint64{}
				for i := uint64(0); i < 60; i++ {
					if err := ss.Put(i, rng.Uint64()); err != nil {
						t.Fatal(err)
					}
					v, _, _ := ss.Get(i)
					stable[i] = v
				}
				var effects []txnEffect
				for i := 0; i < shards; i++ {
					st.Pool(i).StartCrashLog()
				}
				snap := func() []int {
					v := make([]int, shards)
					for i := 0; i < shards; i++ {
						v[i] = st.Pool(i).LogLen()
					}
					return v
				}
				vectors := [][]int{snap()}
				st.commitStep = func() { vectors = append(vectors, snap()) }
				tx := ss.Begin()
				nops := 5 + rng.Intn(20)
				for i := 0; i < nops; i++ {
					k := uint64(2000 + rng.Intn(500))
					v := rng.Uint64()
					if err := tx.Put(k, v); err != nil {
						t.Fatal(err)
					}
				}
				// Read the final buffered state to build effects (last
				// write wins inside the buffer).
				for k, w := range tx.fixed {
					effects = append(effects, txnEffect{fixed: true, key: k, pre: nil, post: u64p(w.val)})
				}
				bk := []byte(fmt.Sprintf("rc-%d", it))
				bv := bytes.Repeat([]byte{byte(it + 1)}, 1+rng.Intn(400))
				if err := tx.PutKV(bk, bv); err != nil {
					t.Fatal(err)
				}
				effects = append(effects, txnEffect{bkey: bk, preKV: nil, postKV: bv})
				if err := tx.Commit(); err != nil {
					t.Fatalf("iter %d: commit: %v", it, err)
				}
				st.commitStep = nil
				// Sample random consistent cuts: a random protocol
				// segment, a random persist point inside the advancing
				// pool's stretch, all other pools at the segment
				// boundary. (Independent per-pool cut points would let
				// one pool travel back in time relative to another — a
				// state no single-instant crash can produce.)
				for c := 0; c < crashesPer; c++ {
					s := 1 + rng.Intn(len(vectors)-1)
					prev, cur := vectors[s-1], vectors[s]
					cut := append([]int(nil), prev...)
					for i := 0; i < shards; i++ {
						if cur[i] != prev[i] {
							cut[i] = prev[i] + 1 + rng.Intn(cur[i]-prev[i])
						}
					}
					imgs := make([]*pmem.Pool, shards)
					for i := 0; i < shards; i++ {
						imgs[i] = st.Pool(i).CrashImage(cut[i], pmem.CrashRandom, rng)
					}
					tag := fmt.Sprintf("iter %d crash %d cut %v", it, c, cut)
					re, err := Reopen(imgs, Options{})
					if err != nil {
						t.Fatalf("%s: reopen: %v", tag, err)
					}
					if err := re.CheckInvariants(); err != nil {
						t.Fatalf("%s: invariants: %v", tag, err)
					}
					rs := re.NewSession()
					for k, v := range stable {
						got, ok, err := rs.Get(k)
						if err != nil || !ok || got != v {
							t.Fatalf("%s: stable key %d: got=%d ok=%v err=%v", tag, k, got, ok, err)
						}
					}
					checkAtomic(t, rs, effects, tag)
					rs.Close()
					re.Close()
				}
				ss.Close()
				st.Close()
			}
		})
	}
}

// txnRecoveryDoubleCrashMatrix proves the recovery protocol is itself
// crash-consistent. It crashes a cross-shard commit (first crash), tapes
// the recovery Reopen runs on that image, crashes THAT recovery at its
// consistent cuts (second crash), and requires the final recovery to land
// on the same all-or-nothing verdict the uninterrupted recovery reached.
// The pivotal first-crash window is mark-append — exactly one shard holds
// the transaction's only commit mark — where truncating any log before
// every shard replayed would let a second crash erase the commit point
// and strand a committed transaction half-applied.
func txnRecoveryDoubleCrashMatrix(t *testing.T, model pmem.MemModel) {
	rng := rand.New(rand.NewSource(20260808))
	const shards = 2
	st, err := Open(Options{
		Shards:    shards,
		ShardSize: 8 << 20,
		Mem:       pmem.Config{TrackCrashes: true, Model: model},
	})
	if err != nil {
		t.Fatal(err)
	}
	ss := st.NewSession()

	committed := map[uint64]uint64{}
	for i := uint64(0); i < 50; i++ {
		if err := ss.Put(i, i+3); err != nil {
			t.Fatal(err)
		}
		committed[i] = i + 3
	}
	// One insert and one overwrite per shard, plus a byte key, so every
	// shard both logs an intent and holds a commit mark.
	var insertKeys, overKeys []uint64
	seenIns := map[int]bool{}
	seenOver := map[int]bool{}
	for k := uint64(3000); len(insertKeys) < shards || len(overKeys) < shards; k++ {
		sh := st.ShardFor(k)
		if !seenIns[sh] {
			seenIns[sh] = true
			insertKeys = append(insertKeys, k)
		} else if !seenOver[sh] {
			seenOver[sh] = true
			overKeys = append(overKeys, k)
		}
		if k > 100000 {
			t.Fatal("could not spread keys over shards")
		}
	}
	for _, k := range overKeys {
		if err := ss.Put(k, 9); err != nil {
			t.Fatal(err)
		}
	}
	bkey := []byte("double-crash-kv")
	preKV := []byte("kv-first")
	postKV := bytes.Repeat([]byte{0xdd}, 150)
	if err := ss.PutKV(bkey, preKV); err != nil {
		t.Fatal(err)
	}
	var effects []txnEffect
	for _, k := range insertKeys {
		effects = append(effects, txnEffect{fixed: true, key: k, pre: nil, post: u64p(k * 2)})
	}
	for _, k := range overKeys {
		effects = append(effects, txnEffect{fixed: true, key: k, pre: u64p(9), post: u64p(k * 3)})
	}
	effects = append(effects, txnEffect{bkey: bkey, preKV: preKV, postKV: postKV})

	for i := 0; i < shards; i++ {
		st.Pool(i).StartCrashLog()
	}
	snap := func() []int {
		v := make([]int, shards)
		for i := 0; i < shards; i++ {
			v[i] = st.Pool(i).LogLen()
		}
		return v
	}
	vectors := [][]int{snap()}
	st.commitStep = func() { vectors = append(vectors, snap()) }
	tx := ss.Begin()
	for _, k := range insertKeys {
		if err := tx.Put(k, k*2); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range overKeys {
		if err := tx.Put(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.PutKV(bkey, postKV); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	st.commitStep = nil
	if len(vectors) != 4*shards+1 {
		t.Fatalf("%d step vectors for a %d-shard txn, want %d", len(vectors), shards, 4*shards+1)
	}

	// checkState asserts invariants and the untouched population on a
	// reopened store, then classifies it pre- or post-transaction.
	checkState := func(re *Store, tag string) bool {
		t.Helper()
		if err := re.CheckInvariants(); err != nil {
			t.Fatalf("%s: invariants: %v", tag, err)
		}
		rs := re.NewSession()
		defer rs.Close()
		for k, v := range committed {
			got, ok, err := rs.Get(k)
			if err != nil || !ok || got != v {
				t.Fatalf("%s: committed key %d: got=%d ok=%v err=%v", tag, k, got, ok, err)
			}
		}
		return checkAtomic(t, rs, effects, tag)
	}

	// Boundary verdicts locate the commit point: the first boundary whose
	// uninterrupted recovery lands post-txn is the cut where the first
	// commit mark persisted.
	refVerdict := func(cut []int, tag string) bool {
		t.Helper()
		imgs := make([]*pmem.Pool, shards)
		for i := 0; i < shards; i++ {
			imgs[i] = st.Pool(i).CrashImage(cut[i], pmem.CrashAll, rng)
		}
		re, err := Reopen(imgs, Options{})
		if err != nil {
			t.Fatalf("%s: ref reopen: %v", tag, err)
		}
		post := checkState(re, tag+" ref")
		re.Close()
		return post
	}
	verdicts := make([]bool, len(vectors))
	for s := range vectors {
		verdicts[s] = refVerdict(vectors[s], fmt.Sprintf("boundary %d", s))
	}
	last := len(vectors) - 1
	if verdicts[0] {
		t.Fatal("post-txn before any persist")
	}
	if !verdicts[last] {
		t.Fatal("completed commit not post-txn at full tape")
	}
	flip := -1
	for s := 1; s < len(vectors); s++ {
		if verdicts[s] {
			flip = s
			break
		}
	}
	for s := flip; s < len(vectors); s++ {
		if !verdicts[s] {
			t.Fatalf("verdict regressed at boundary %d", s)
		}
	}

	// First-crash cuts: the boundary before the commit point, every
	// interior point of the flip segment and (full mode) its successor —
	// the mark-append window — plus an apply-phase boundary and the full
	// tape.
	type outerCut struct {
		cut []int
		tag string
	}
	var outers []outerCut
	addSeg := func(s int) {
		prev, cur := vectors[s-1], vectors[s]
		adv := -1
		for i := 0; i < shards; i++ {
			if cur[i] != prev[i] {
				if adv != -1 {
					t.Fatalf("commit segment %d: pools %d and %d both advanced (%v -> %v)", s, adv, i, prev, cur)
				}
				adv = i
			}
		}
		if adv == -1 {
			return
		}
		for p := prev[adv] + 1; p <= cur[adv]; p++ {
			c := append([]int(nil), prev...)
			c[adv] = p
			outers = append(outers, outerCut{c, fmt.Sprintf("seg %d pool %d point %d/%d", s, adv, p, cur[adv])})
		}
	}
	outers = append(outers, outerCut{vectors[flip-1], fmt.Sprintf("boundary %d (pre-mark)", flip-1)})
	addSeg(flip)
	if !testing.Short() {
		if flip+1 <= last {
			addSeg(flip + 1)
		}
		mid := (flip + 1 + last) / 2
		outers = append(outers, outerCut{vectors[mid], fmt.Sprintf("boundary %d (mid-apply)", mid)})
	}
	outers = append(outers, outerCut{vectors[last], fmt.Sprintf("boundary %d (full tape)", last)})

	sampleCap := 6
	if testing.Short() {
		sampleCap = 3
	}
	doubles := 0
	for _, oc := range outers {
		// Deterministic first-crash images: one set cloned (with tracking
		// re-enabled) for the taped recovery, the original reopened
		// uninterrupted for the expected verdict. CrashAll is
		// deterministic, so both sets are bit-identical.
		first := make([]*pmem.Pool, shards)
		tapes := make([]*pmem.Pool, shards)
		for i := 0; i < shards; i++ {
			first[i] = st.Pool(i).CrashImage(oc.cut[i], pmem.CrashAll, rng)
			tapes[i] = first[i].Clone(true)
		}
		re, err := Reopen(first, Options{})
		if err != nil {
			t.Fatalf("%s: first reopen: %v", oc.tag, err)
		}
		want := checkState(re, oc.tag+" uninterrupted")
		re.Close()
		if want != verdicts[last] && want != verdicts[0] {
			t.Fatalf("%s: impossible verdict", oc.tag) // unreachable; checkState already fatals on mixed
		}

		// Tape the recovery running on the cloned first-crash image.
		for i := 0; i < shards; i++ {
			tapes[i].StartCrashLog()
		}
		rsnap := func() []int {
			v := make([]int, shards)
			for i := 0; i < shards; i++ {
				v[i] = tapes[i].LogLen()
			}
			return v
		}
		rvecs := [][]int{rsnap()}
		re2, err := Reopen(tapes, Options{recoverStep: func() { rvecs = append(rvecs, rsnap()) }})
		if err != nil {
			t.Fatalf("%s: taped reopen: %v", oc.tag, err)
		}
		if got := checkState(re2, oc.tag+" taped"); got != want {
			t.Fatalf("%s: taped recovery verdict post=%v, uninterrupted post=%v", oc.tag, got, want)
		}
		re2.Close()

		// Second crash at the taped recovery's consistent cuts: whatever
		// the interruption, the next (uninterrupted) recovery must land on
		// the same verdict — a committed transaction stays committed, an
		// uncommitted one stays invisible. The stretch before the first
		// recoverStep firing covers Reopen's per-shard rebuild, where
		// several pools advance between hooks; only its closing boundary
		// is a provable consistent cut. From the first firing on, recovery
		// is single-threaded and exactly one pool advances per segment.
		examine2 := func(cut []int, tag2 string) {
			t.Helper()
			for _, mode := range []pmem.CrashMode{pmem.CrashAll, pmem.CrashRandom} {
				imgs := make([]*pmem.Pool, shards)
				for i := 0; i < shards; i++ {
					imgs[i] = tapes[i].CrashImage(cut[i], mode, rng)
				}
				mtag := fmt.Sprintf("%s / second crash %s mode %d", oc.tag, tag2, mode)
				re3, err := Reopen(imgs, Options{})
				if err != nil {
					t.Fatalf("%s: reopen: %v", mtag, err)
				}
				if got := checkState(re3, mtag); got != want {
					t.Fatalf("%s: double-crash verdict post=%v, uninterrupted post=%v", mtag, got, want)
				}
				// Fully recovered: the store takes fresh commits again.
				rs := re3.NewSession()
				ftx := rs.Begin()
				if err := ftx.Put(88000, 1); err != nil {
					t.Fatalf("%s: post-recovery buffer: %v", mtag, err)
				}
				if err := ftx.Commit(); err != nil {
					t.Fatalf("%s: post-recovery commit: %v", mtag, err)
				}
				rs.Close()
				re3.Close()
				doubles++
			}
		}
		for s := 1; s < len(rvecs); s++ {
			prev, cur := rvecs[s-1], rvecs[s]
			adv, multi := -1, false
			for i := 0; i < shards; i++ {
				if cur[i] != prev[i] {
					if adv != -1 {
						multi = true
					}
					adv = i
				}
			}
			if adv == -1 {
				continue
			}
			if multi || s == 1 {
				examine2(cur, fmt.Sprintf("rseg %d boundary", s))
				continue
			}
			span := cur[adv] - prev[adv]
			points := []int{prev[adv] + 1, cur[adv]}
			if span <= sampleCap {
				points = points[:0]
				for p := prev[adv] + 1; p <= cur[adv]; p++ {
					points = append(points, p)
				}
			} else {
				for len(points) < sampleCap {
					points = append(points, prev[adv]+1+rng.Intn(span))
				}
			}
			for _, p := range points {
				c := append([]int(nil), prev...)
				c[adv] = p
				examine2(c, fmt.Sprintf("rseg %d pool %d point %d/%d", s, adv, p, cur[adv]))
			}
		}
	}
	if doubles == 0 {
		t.Fatal("no double-crash cuts examined")
	}
	t.Logf("examined %d double-crash cuts over %d first-crash cuts (commit point at boundary %d)", doubles, len(outers), flip)
	ss.Close()
	st.Close()
}

func TestTxnRecoveryDoubleCrash(t *testing.T)       { txnRecoveryDoubleCrashMatrix(t, pmem.TSO) }
func TestTxnRecoveryDoubleCrashNonTSO(t *testing.T) { txnRecoveryDoubleCrashMatrix(t, pmem.NonTSO) }
