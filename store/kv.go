package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/index"
	"repro/internal/vlog"
)

// The byte-string key API. The FAST+FAIR slot stays one 8-byte word — the
// paper's whole endurable-transient-inconsistency argument rests on every
// in-node write being a single failure-atomic store — so variable-length
// keys cannot live in the node. Instead the tree orders an 8-byte *prefix*
// of the key (big-endian, zero-padded; see PackPrefix) and the full key
// bytes live in the shard's value log, exactly where varlen values already
// live: each occupied prefix owns one keyed log record (its "bucket") whose
// payload is the sorted list of every (full key, value) pair in this shard
// sharing that prefix. Prefix ties — distinct keys with equal first 8
// bytes — therefore resolve by comparing full key bytes through the log,
// under the same reclamation read-lock every varlen resolution takes.
//
// PackPrefix is order-consistent with lexicographic byte order:
// prefix(x) < prefix(y) implies x < y, so the tree's prefix order IS the
// key order up to ties, and ties are confined to a single bucket. Scans
// walk the tree by prefix and merge bucket entries by full key.
//
// Crash atomicity is PutBytes' argument verbatim, because a bucket is an
// ordinary keyed record: the new bucket image (old entries plus the upsert)
// is fully durable — record flush, fence, tail publish — before its Ref
// exists anywhere, and the tree install of that Ref is one atomic 8-byte
// store. A crash mid-PutKV leaves either the old bucket (new record
// unreachable; leaked until GC or truncated by Reopen) or the new one —
// never a torn key or value behind a live prefix. GC relocation and
// Reopen's accounting rebuild need no new code: every live bucket is named
// directly by a tree word, which is all their Live/Swap callbacks and
// IsRecord walks assume.
//
// Buckets and the uint64 APIs share each shard's tree and log, so the
// prefix keyspace must be disjoint from any fixed/varlen uint64 keys: a
// bucket read of a word written by Put/PutBytes fails record or bucket
// validation and reports ErrNotKeyed (the byte-key analogue of
// ErrNotVarlen). Keep the two key universes apart per store.

const (
	// MaxKey is the largest key PutKV accepts, equal to wire.MaxKey
	// (asserted by a server test) so every stored key travels the
	// protocol.
	MaxKey = 1024
	// MaxKVValue is the largest value PutKV accepts. It is MaxValue less
	// the key headroom: a ScanKV response frame must fit one entry's key,
	// value, and per-entry header inside wire.MaxFrame.
	MaxKVValue = 1<<20 - 2048
	// maxBucket bounds one bucket's encoded payload (vlog.MaxValue). At
	// least ~15 max-sized colliding entries fit; random keys collide in a
	// 64-bit prefix space essentially never, so hitting this means an
	// adversarial workload aimed entire namespaces at one 8-byte prefix.
	maxBucket = vlog.MaxValue
	// kvEntryHdr is the per-entry header inside a bucket: klen u16,
	// vlen u32, little-endian.
	kvEntryHdr = 6
)

// Errors of the byte-key API.
var (
	// ErrKeyEmpty reports a zero-length key; the empty key is not a value
	// in the keyspace (scan bounds may still be empty, meaning unbounded).
	ErrKeyEmpty = errors.New("store: empty key")
	// ErrKeyTooLarge reports a key above MaxKey bytes.
	ErrKeyTooLarge = errors.New("store: key exceeds MaxKey")
	// ErrNotKeyed reports a byte-key operation that resolved a tree word
	// not holding a KV bucket — a prefix colliding with a key written
	// through the fixed-width or varlen uint64 APIs.
	ErrNotKeyed = errors.New("store: prefix does not hold a byte-key bucket")
	// ErrBucketOverflow reports a PutKV refused because the rewritten
	// prefix bucket would exceed the value log's record bound — only
	// reachable by deliberately aiming many large entries at one 8-byte
	// prefix.
	ErrBucketOverflow = errors.New("store: prefix bucket exceeds record bound")
)

// PackPrefix returns the tree key ordering a byte-string key: the first 8
// bytes big-endian, zero-padded on the right for shorter keys. Big-endian
// packing makes uint64 comparison agree with lexicographic byte comparison
// on the prefix, and zero-padding keeps short keys below their extensions
// ("a" packs below "a\x00", and resolves before it inside the shared
// bucket). The map is monotone — PackPrefix(x) < PackPrefix(y) implies
// x < y — so the tree's prefix order never contradicts the key order;
// distinct keys with equal prefixes land in one bucket and resolve by full
// bytes.
func PackPrefix(key []byte) uint64 {
	var p uint64
	n := len(key)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		p |= uint64(key[i]) << (56 - 8*i)
	}
	return p
}

// ShardForKey returns the shard a byte-string key hashes to: FNV-1a over
// the full key bytes, finalized by the same splitmix64 mixer the uint64
// path uses. Hashing the full key (not the prefix) keeps partitions
// balanced even when a workload shares long common prefixes; keys with
// equal prefixes may land in different shards, each holding its own
// independent bucket for that prefix, and scans merge by full key.
func (s *Store) ShardForKey(key []byte) int {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return int(mix(h) % uint64(len(s.shards)))
}

func checkKey(key []byte) error {
	if len(key) == 0 {
		return ErrKeyEmpty
	}
	if len(key) > MaxKey {
		return fmt.Errorf("%w: %d > %d bytes", ErrKeyTooLarge, len(key), MaxKey)
	}
	return nil
}

// wrapKVReadErr classifies a bucket resolution failure like wrapReadErr
// does for varlen values: checksum failures are corruption, everything
// else is a prefix whose word was never a bucket.
func wrapKVReadErr(prefix uint64, err error) error {
	if errors.Is(err, vlog.ErrCorrupt) {
		return fmt.Errorf("%w (prefix %#x): %v", ErrValueCorrupt, prefix, err)
	}
	return fmt.Errorf("%w (prefix %#x): %v", ErrNotKeyed, prefix, err)
}

// errBadBucket is the internal parse failure; public paths wrap it in
// ErrNotKeyed because a payload that fails bucket validation was not
// written by this API.
var errBadBucket = errors.New("malformed bucket payload")

// appendKVEntry appends one encoded bucket entry to dst.
func appendKVEntry(dst, key, val []byte) []byte {
	var h [kvEntryHdr]byte
	binary.LittleEndian.PutUint16(h[0:2], uint16(len(key)))
	binary.LittleEndian.PutUint32(h[2:6], uint32(len(val)))
	dst = append(dst, h[:]...)
	dst = append(dst, key...)
	return append(dst, val...)
}

// parseBucket walks a bucket payload, calling visit for each entry in key
// order until visit returns false. Validation is fail-closed: the payload
// must consume exactly, every key must be non-empty, within MaxKey, carry
// this bucket's prefix, and sort strictly above its predecessor — anything
// else is errBadBucket, never a partial parse. The k/v slices alias b.
func parseBucket(prefix uint64, b []byte, visit func(k, v []byte) bool) error {
	var prev []byte
	for off := 0; off < len(b); {
		if len(b)-off < kvEntryHdr {
			return errBadBucket
		}
		kl := int(binary.LittleEndian.Uint16(b[off:]))
		vl := int(binary.LittleEndian.Uint32(b[off+2:]))
		off += kvEntryHdr
		if kl < 1 || kl > MaxKey || vl > MaxKVValue || kl+vl > len(b)-off {
			return errBadBucket
		}
		k := b[off : off+kl]
		v := b[off+kl : off+kl+vl : off+kl+vl]
		off += kl + vl
		if PackPrefix(k) != prefix {
			return errBadBucket
		}
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			return errBadBucket
		}
		prev = k
		if !visit(k, v) {
			return nil
		}
	}
	return nil
}

// bucketUpsert rebuilds bucket with (key, val) inserted or replaced,
// appending the new image to dst. It reports whether an existing entry was
// replaced.
func bucketUpsert(dst, bucket []byte, prefix uint64, key, val []byte) (out []byte, replaced bool, err error) {
	done := false
	err = parseBucket(prefix, bucket, func(k, v []byte) bool {
		c := bytes.Compare(k, key)
		if c < 0 {
			dst = appendKVEntry(dst, k, v)
			return true
		}
		if !done {
			dst = appendKVEntry(dst, key, val)
			done = true
			if c == 0 {
				replaced = true
				return true
			}
		}
		dst = appendKVEntry(dst, k, v)
		return true
	})
	if err != nil {
		return nil, false, err
	}
	if !done {
		dst = appendKVEntry(dst, key, val)
	}
	return dst, replaced, nil
}

// bucketRemove rebuilds bucket without key, appending the new image to dst
// and reporting whether the key was present.
func bucketRemove(dst, bucket []byte, prefix uint64, key []byte) (out []byte, removed bool, err error) {
	err = parseBucket(prefix, bucket, func(k, v []byte) bool {
		if bytes.Equal(k, key) {
			removed = true
			return true
		}
		dst = appendKVEntry(dst, k, v)
		return true
	})
	if err != nil {
		return nil, false, err
	}
	return dst, removed, nil
}

// bucketGet appends key's value to dst, reporting presence. Entries are
// sorted, so the walk stops at the first key past the target.
func bucketGet(bucket []byte, prefix uint64, key, dst []byte) (out []byte, found bool, err error) {
	out = dst
	err = parseBucket(prefix, bucket, func(k, v []byte) bool {
		c := bytes.Compare(k, key)
		if c == 0 {
			out = append(out, v...)
			found = true
		}
		return c < 0
	})
	if err != nil {
		return dst, false, err
	}
	return out, found, nil
}

// readBucket resolves prefix's current bucket through shard i's tree. The
// caller must hold the shard's reclamation read-lock. Like readCurrent it
// retries on validation failure with a re-read of the tree word — a
// collected or racing snapshot may predate a GC relocation or a delete —
// and only a word that fails validation AND re-reads unchanged classifies
// as ErrNotKeyed/ErrValueCorrupt. The returned payload lives in ss.kvBuf.
func (ss *Session) readBucket(i int, prefix uint64, word uint64, haveWord bool) ([]byte, bool, error) {
	sh := &ss.s.shards[i]
	th := ss.ths[i]
	ref, ok := word, haveWord
	if !haveWord {
		ref, ok = sh.ix.Get(th, prefix)
	}
	for {
		if !ok {
			return nil, false, nil
		}
		b, err := sh.vl.ReadKeyed(th, prefix, vlog.Ref(ref), ss.kvBuf[:0])
		if err == nil {
			ss.kvBuf = b
			return b, true, nil
		}
		ref2, ok2 := sh.ix.Get(th, prefix)
		if ok2 && ref2 == ref {
			return nil, false, wrapKVReadErr(prefix, err)
		}
		ref, ok = ref2, ok2
	}
}

// admitKV runs space admission for a bucket rewrite of projected payload
// size need (the caller's advisory estimate: current bucket image plus the
// new entry). Falls back to one inline compaction pass before refusing,
// like PutBytes.
func (ss *Session) admitKV(i, need int) error {
	sh := &ss.s.shards[i]
	if sh.vl.Admit(need) == nil {
		return nil
	}
	if ss.s.opts.GCGarbageRatio >= 0 {
		_, _ = ss.compactShard(i, 0, true)
	}
	if aerr := sh.vl.Admit(need); aerr != nil {
		return fmt.Errorf("%w: shard %d: %v", ErrNoSpace, i, aerr)
	}
	return nil
}

// PutKV stores val under a byte-string key of 1..MaxKey bytes, replacing
// any existing value. Durability and crash atomicity match PutBytes: the
// rewritten bucket record is fully durable before the tree install, and
// the install is one atomic 8-byte store (see the package comment above).
// Byte-key writers to the same shard serialize on a per-shard mutex — the
// bucket rewrite is a read-modify-write — while readers, uint64-API
// writers, and other shards proceed concurrently. On a closed store it
// returns ErrClosed; when the shard cannot guarantee log space with GC
// headroom intact it fails fast with ErrNoSpace.
func (ss *Session) PutKV(key, val []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	if len(val) > MaxKVValue {
		return fmt.Errorf("%w: %d > %d bytes", ErrValueTooLarge, len(val), MaxKVValue)
	}
	if !ss.s.acquire() {
		return ErrClosed
	}
	if err := ss.s.writable(); err != nil {
		ss.s.release()
		return err
	}
	if ss.sampleOp() {
		defer ss.s.met.putKV.RecordSince(time.Now())
	}
	i := ss.s.ShardForKey(key)
	p := PackPrefix(key)
	sh := &ss.s.shards[i]
	th := ss.ths[i]
	// Admission before any lock: project the rewritten bucket as the
	// current image (advisory word read) plus the new entry.
	need := kvEntryHdr + len(key) + len(val)
	if ref, ok := sh.ix.Get(th, p); ok {
		need += vlog.Ref(ref).Len()
	}
	if need <= maxBucket {
		if err := ss.admitKV(i, need); err != nil {
			ss.s.release()
			return err
		}
	}
	sh.gc.applyMu.RLock()
	stale, perr := ss.putKVApply(i, p, key, val)
	sh.gc.applyMu.RUnlock()
	ss.s.release()
	if stale {
		ss.maybeGC(i)
	}
	return perr
}

// putKVApply performs the locked bucket rewrite behind PutKV: read the
// prefix's current bucket, upsert the entry, append the new image, install
// it over the old word. It serialises on the shard's kvMu and retries
// around concurrent GC relocations. The caller must hold the shard's
// applyMu (shared for plain writes, exclusive inside a transaction commit)
// or be the only mutator (recovery replay), and reports whether a displaced
// record turned stale (the caller runs maybeGC once its locks are down).
func (ss *Session) putKVApply(i int, p uint64, key, val []byte) (stale bool, err error) {
	sh := &ss.s.shards[i]
	th := ss.ths[i]
	sh.gc.kvMu.Lock()
	defer sh.gc.kvMu.Unlock()
	for {
		// One attempt under the reclamation read-lock; done=false with a
		// nil error means a concurrent delete or GC relocation invalidated
		// the snapshot — retry against the fresh tree word.
		done := false
		stale, err = func() (bool, error) {
			sh.gc.varMu.RLock()
			defer sh.gc.varMu.RUnlock()
			ref, ok := sh.ix.Get(th, p)
			var bucket []byte
			if ok {
				b, found, err := ss.readBucket(i, p, ref, true)
				if err != nil {
					return false, err
				}
				if !found {
					// Deleted between Get and read (uint64-API race);
					// treat as absent on the next attempt.
					return false, nil
				}
				bucket = b
			}
			newb, _, err := bucketUpsert(ss.kvNew[:0], bucket, p, key, val)
			if err != nil {
				return false, wrapKVReadErr(p, err)
			}
			ss.kvNew = newb
			if len(newb) > maxBucket {
				return false, fmt.Errorf("%w: prefix %#x at %d bytes", ErrBucketOverflow, p, len(newb))
			}
			newRef, aerr := sh.vl.Append(th, p, newb)
			if aerr != nil {
				if errors.Is(aerr, vlog.ErrFull) || errors.Is(aerr, vlog.ErrTooLarge) {
					return false, fmt.Errorf("%w: shard %d: %v", ErrNoSpace, i, aerr)
				}
				return false, fmt.Errorf("store: shard %d value log: %w", i, aerr)
			}
			if !ok {
				old, existed, xerr := index.Exchange(sh.ix, th, p, uint64(newRef))
				if xerr != nil {
					return false, xerr
				}
				done = true
				return existed && ss.retireWord(i, p, old), nil
			}
			if !index.ReplaceIf(sh.ix, th, p, ref, uint64(newRef)) {
				// A GC pass relocated the bucket between our read and the
				// install: the new record targets a superseded image.
				// Retire it and rebuild against the fresh word. (Only GC
				// moves the word — byte-key writers hold kvMu.)
				ss.retireWord(i, p, uint64(newRef))
				return false, nil
			}
			done = true
			return ss.retireWord(i, p, ref), nil
		}()
		if err != nil || done {
			return stale, err
		}
	}
}

// GetKV returns the value stored under a byte-string key, appended to dst
// (pass nil, or a recycled buffer, to control allocation). The middle
// return reports presence. A prefix written through a uint64 API fails
// with ErrNotKeyed. On a closed store it returns ErrClosed.
func (ss *Session) GetKV(key, dst []byte) ([]byte, bool, error) {
	if err := checkKey(key); err != nil {
		return dst, false, err
	}
	if !ss.s.acquire() {
		return dst, false, ErrClosed
	}
	defer ss.s.release()
	if ss.sampleOp() {
		defer ss.s.met.getKV.RecordSince(time.Now())
	}
	i := ss.s.ShardForKey(key)
	p := PackPrefix(key)
	sh := &ss.s.shards[i]
	sh.gc.varMu.RLock()
	defer sh.gc.varMu.RUnlock()
	b, ok, err := ss.readBucket(i, p, 0, false)
	if err != nil || !ok {
		return dst, false, err
	}
	out, found, perr := bucketGet(b, p, key, dst)
	if perr != nil {
		return dst, false, wrapKVReadErr(p, perr)
	}
	return out, found, nil
}

// DeleteKV removes a byte-string key, reporting whether it was present.
// Removing the last key of a prefix removes the tree entry; otherwise the
// bucket is rewritten without the entry — which appends, so a delete can
// (rarely) fail with ErrNoSpace on a log with no headroom, same as an
// overwrite. The displaced bucket record retires through the standard
// accounting funnel and may trigger automatic GC.
func (ss *Session) DeleteKV(key []byte) (bool, error) {
	if err := checkKey(key); err != nil {
		return false, err
	}
	if !ss.s.acquire() {
		return false, ErrClosed
	}
	if err := ss.s.writable(); err != nil {
		ss.s.release()
		return false, err
	}
	if ss.sampleOp() {
		defer ss.s.met.delKV.RecordSince(time.Now())
	}
	i := ss.s.ShardForKey(key)
	p := PackPrefix(key)
	gc := ss.s.shards[i].gc
	gc.applyMu.RLock()
	existed, stale, err := ss.deleteKVApply(i, p, key)
	gc.applyMu.RUnlock()
	ss.s.release()
	if stale {
		ss.maybeGC(i)
	}
	return existed, err
}

// deleteKVApply performs the locked bucket rewrite behind DeleteKV, under
// the same caller contract as putKVApply.
func (ss *Session) deleteKVApply(i int, p uint64, key []byte) (existed, stale bool, err error) {
	sh := &ss.s.shards[i]
	th := ss.ths[i]
	sh.gc.kvMu.Lock()
	defer sh.gc.kvMu.Unlock()
	for {
		done := false
		existed, stale, err = func() (bool, bool, error) {
			sh.gc.varMu.RLock()
			defer sh.gc.varMu.RUnlock()
			ref, ok := sh.ix.Get(th, p)
			if !ok {
				done = true
				return false, false, nil
			}
			b, found, err := ss.readBucket(i, p, ref, true)
			if err != nil {
				return false, false, err
			}
			if !found {
				done = true
				return false, false, nil
			}
			newb, removed, perr := bucketRemove(ss.kvNew[:0], b, p, key)
			if perr != nil {
				return false, false, wrapKVReadErr(p, perr)
			}
			ss.kvNew = newb
			if !removed {
				done = true
				return false, false, nil
			}
			if len(newb) == 0 {
				// Last entry: drop the prefix. Between our read and the
				// Remove only GC can have moved the word (same content), so
				// whatever Remove displaces is this bucket's live record.
				old, was := index.Remove(sh.ix, th, p)
				done = true
				return true, was && ss.retireWord(i, p, old), nil
			}
			newRef, aerr := sh.vl.Append(th, p, newb)
			if aerr != nil {
				if errors.Is(aerr, vlog.ErrFull) {
					return false, false, fmt.Errorf("%w: shard %d: %v", ErrNoSpace, i, aerr)
				}
				return false, false, fmt.Errorf("store: shard %d value log: %w", i, aerr)
			}
			if !index.ReplaceIf(sh.ix, th, p, ref, uint64(newRef)) {
				ss.retireWord(i, p, uint64(newRef))
				return false, false, nil
			}
			done = true
			return true, ss.retireWord(i, p, ref), nil
		}()
		if err != nil || done {
			return existed, stale, err
		}
	}
}

// kvSpan locates one collected entry inside a shard run's arena:
// key = arena[ko:vo], val = arena[vo:ve].
type kvSpan struct{ ko, vo, ve int }

// kvRun is one shard's collected, filtered, key-ordered entry run.
type kvRun struct {
	arena []byte
	spans []kvSpan
	cur   int
}

// kvScanRetainBytes bounds the arena bytes a session keeps cached per
// shard run between ScanKV calls; kvScanRetainSpans the cached span slots.
const (
	kvScanRetainBytes = 64 << 10
	kvScanRetainSpans = 4096
)

// kvBucketPage is the tree-scan page while collecting bucket refs: refs
// are collected outside the reclamation lock in pages, then resolved
// under it, so huge prefix ranges never pin a lock across a full walk.
const kvBucketPage = 512

// collectKVRun fills shard i's run with up to max entries in [lo, hi]
// (nil/empty hi = unbounded), starting at tree prefix plo.
func (ss *Session) collectKVRun(i int, run *kvRun, lo, hi []byte, plo, phi uint64, max int) error {
	sh := &ss.s.shards[i]
	th := ss.ths[i]
	next := plo
	for len(run.spans) < max {
		ss.kvRefs = ss.kvRefs[:0]
		sh.ix.Scan(th, next, phi, func(k, v uint64) bool {
			ss.kvRefs = append(ss.kvRefs, KV{k, v})
			return len(ss.kvRefs) < kvBucketPage
		})
		if len(ss.kvRefs) == 0 {
			return nil
		}
		for _, kv := range ss.kvRefs {
			if err := ss.resolveKVBucket(i, kv.Key, kv.Val, run, lo, hi); err != nil {
				return err
			}
		}
		if len(ss.kvRefs) < kvBucketPage {
			return nil
		}
		last := ss.kvRefs[len(ss.kvRefs)-1].Key
		if last == ^uint64(0) {
			return nil
		}
		next = last + 1
	}
	return nil
}

// resolveKVBucket resolves one collected (prefix, word) pair under the
// shard's reclamation read-lock and appends its in-range entries to run.
// Like resolveScanRef, a stale snapshot (concurrent GC relocation or
// delete) transparently re-resolves through the tree; a prefix deleted
// mid-scan is skipped.
func (ss *Session) resolveKVBucket(i int, prefix, word uint64, run *kvRun, lo, hi []byte) error {
	sh := &ss.s.shards[i]
	sh.gc.varMu.RLock()
	defer sh.gc.varMu.RUnlock()
	b, err := sh.vl.ReadKeyed(ss.ths[i], prefix, vlog.Ref(word), ss.kvBuf[:0])
	if err != nil {
		var ok bool
		b, ok, err = ss.readBucket(i, prefix, 0, false)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	ss.kvBuf = b
	perr := parseBucket(prefix, b, func(k, v []byte) bool {
		if len(lo) > 0 && bytes.Compare(k, lo) < 0 {
			return true
		}
		if len(hi) > 0 && bytes.Compare(k, hi) > 0 {
			return false // sorted: everything after is out of range too
		}
		ko := len(run.arena)
		run.arena = append(run.arena, k...)
		vo := len(run.arena)
		run.arena = append(run.arena, v...)
		run.spans = append(run.spans, kvSpan{ko, vo, len(run.arena)})
		return true
	})
	if perr != nil {
		return wrapKVReadErr(prefix, perr)
	}
	return nil
}

// ScanKV visits byte-key pairs with lo <= key <= hi in ascending full-key
// order, calling fn until it returns false or max pairs (max <= 0, or
// above the page cap, means one maxScanPage page) have been visited. A nil
// or empty lo starts at the smallest key; a nil or empty hi is unbounded
// above. Bounds may be up to MaxKey+1 bytes so a caller can paginate with
// lo = lastKey + "\x00" (the immediate successor). Key and value slices
// are session-owned and valid only during the callback.
//
// Like ScanLimit, the collection is bounded and read-uncommitted: at most
// max pairs return per call and each shard contributes its smallest
// in-range entries, so the merged page is exactly the global first max.
// Entries resolve through each shard's reclamation read-lock; concurrent
// GC relocation re-resolves transparently, concurrently deleted prefixes
// are skipped. A uint64-API key whose word lands in the prefix range
// aborts with ErrNotKeyed. On a closed store it returns ErrClosed.
func (ss *Session) ScanKV(lo, hi []byte, max int, fn func(key, val []byte) bool) error {
	if len(lo) > MaxKey+1 || len(hi) > MaxKey+1 {
		return fmt.Errorf("%w: scan bound exceeds %d bytes", ErrKeyTooLarge, MaxKey+1)
	}
	if len(hi) > 0 && len(lo) > 0 && bytes.Compare(lo, hi) > 0 {
		return nil
	}
	if max <= 0 || max > maxScanPage {
		max = maxScanPage
	}
	if !ss.s.acquire() {
		return ErrClosed
	}
	defer ss.s.release()
	if ss.sampleOp() {
		defer ss.s.met.scanKV.RecordSince(time.Now())
	}
	n := len(ss.ths)
	if ss.kvRuns == nil {
		ss.kvRuns = make([]kvRun, n)
	}
	plo := uint64(0)
	if len(lo) > 0 {
		plo = PackPrefix(lo)
	}
	phi := ^uint64(0)
	if len(hi) > 0 {
		phi = PackPrefix(hi)
	}
	for i := range ss.kvRuns {
		run := &ss.kvRuns[i]
		run.arena = run.arena[:0]
		run.spans = run.spans[:0]
		run.cur = 0
		if err := ss.collectKVRun(i, run, lo, hi, plo, phi, max); err != nil {
			return err
		}
	}
	// Merge the key-ordered shard runs by repeated minimum, like
	// ScanLimit; shard counts are small.
	emitted := 0
	for emitted < max {
		best := -1
		var bestKey []byte
		for i := range ss.kvRuns {
			run := &ss.kvRuns[i]
			if run.cur >= len(run.spans) {
				continue
			}
			sp := run.spans[run.cur]
			k := run.arena[sp.ko:sp.vo]
			if best < 0 || bytes.Compare(k, bestKey) < 0 {
				best, bestKey = i, k
			}
		}
		if best < 0 {
			break
		}
		run := &ss.kvRuns[best]
		sp := run.spans[run.cur]
		run.cur++
		emitted++
		if !fn(run.arena[sp.ko:sp.vo], run.arena[sp.vo:sp.ve]) {
			break
		}
	}
	for i := range ss.kvRuns {
		if cap(ss.kvRuns[i].arena) > kvScanRetainBytes {
			ss.kvRuns[i].arena = nil
		}
		if cap(ss.kvRuns[i].spans) > kvScanRetainSpans {
			ss.kvRuns[i].spans = nil
		}
	}
	return nil
}
