package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/pmem"
)

// --- crash matrix ----------------------------------------------------------

// gcCrashMatrix is the acceptance test of value-log compaction: a store is
// churned until its log holds relocatable garbage, and then a power
// failure is injected at EVERY point of a full CompactValues persist tape
// — mid-copy, between a copy and its tree swap, between swaps, around the
// extent unlink, mid-free of later extents — under each survivor model.
// At every cut the Reopened store must resolve every key to its exact
// current value: never a freed, torn, or stale-content record, never an
// error. This is the relocation+unlink mirror of the vlog append matrix,
// with the tree's conditional replace included in the tape.
func gcCrashMatrix(t *testing.T, model pmem.MemModel) {
	rng := rand.New(rand.NewSource(31))
	st, err := Open(Options{
		Shards:         1,
		ShardSize:      32 << 20,
		ValueLogExtent: 512,
		GCGarbageRatio: -1, // manual compaction only: the tape is one CompactValues
		Mem:            pmem.Config{TrackCrashes: true, Model: model},
	})
	if err != nil {
		t.Fatal(err)
	}
	ss := st.NewSession()

	// Spread records over several extents, then overwrite half the keys
	// (and delete one) so head extents mix live and dead records.
	want := map[uint64][]byte{}
	for k := uint64(1); k <= 12; k++ {
		v := bval(k, 40+int(k)*3)
		if err := ss.PutBytes(k, v); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	for k := uint64(1); k <= 12; k += 2 {
		v := bval(k^0xa5a5, 30+int(k)*5)
		if err := ss.PutBytes(k, v); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	if _, err := ss.DeleteBytes(4); err != nil {
		t.Fatal(err)
	}
	delete(want, 4)

	pool := st.Pool(0)
	pool.StartCrashLog()
	cs, err := ss.CompactValues()
	if err != nil {
		t.Fatal(err)
	}
	if cs.ExtentsFreed == 0 || cs.Relocated == 0 {
		t.Fatalf("compaction did no relocation+unlink work, tape is vacuous: %+v", cs)
	}
	tape := pool.LogLen()
	t.Logf("%v: compaction tape %d points, %+v", model, tape, cs)

	for point := 0; point <= tape; point++ {
		for _, mode := range []pmem.CrashMode{pmem.CrashNone, pmem.CrashAll, pmem.CrashRandom} {
			img := pool.CrashImage(point, mode, rng)
			re, err := Reopen([]*pmem.Pool{img}, Options{GCGarbageRatio: -1})
			if err != nil {
				t.Fatalf("point %d/%d mode %d: reopen: %v", point, tape, mode, err)
			}
			if err := re.CheckInvariants(); err != nil {
				t.Fatalf("point %d mode %d: invariants: %v", point, mode, err)
			}
			rs := re.NewSession()
			for k, v := range want {
				got, ok, err := rs.GetBytes(k, nil)
				if err != nil {
					t.Fatalf("point %d mode %d: key %d resolves to a bad record: %v", point, mode, k, err)
				}
				if !ok {
					t.Fatalf("point %d mode %d: live key %d lost", point, mode, k)
				}
				if !bytes.Equal(got, v) {
					t.Fatalf("point %d mode %d: key %d stale or torn content", point, mode, k)
				}
			}
			if _, ok, err := rs.GetBytes(4, nil); ok || err != nil {
				t.Fatalf("point %d mode %d: deleted key resurrected: (%v, %v)", point, mode, ok, err)
			}
			// The recovered store keeps working, including further
			// compaction from whatever state the crash left.
			if err := rs.PutBytes(1000, []byte("post-crash")); err != nil {
				t.Fatalf("point %d mode %d: post-recovery write: %v", point, mode, err)
			}
			if _, err := rs.CompactValues(); err != nil {
				t.Fatalf("point %d mode %d: post-recovery compaction: %v", point, mode, err)
			}
			rs.Close()
			re.Close()
		}
	}
	ss.Close()
	st.Close()
}

func TestGCCrashEveryPointTSO(t *testing.T)    { gcCrashMatrix(t, pmem.TSO) }
func TestGCCrashEveryPointNonTSO(t *testing.T) { gcCrashMatrix(t, pmem.NonTSO) }

// TestGCCrashCampaignRandomPoints is the breadth pass over a larger
// compaction: random crash points across a tape covering many extents,
// interleaved churn between two compactions, CrashRandom survivor sets.
func TestGCCrashCampaignRandomPoints(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		st, err := Open(Options{
			Shards:         1,
			ShardSize:      32 << 20,
			ValueLogExtent: 1024,
			GCGarbageRatio: -1,
			Mem:            pmem.Config{TrackCrashes: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		ss := st.NewSession()
		want := map[uint64][]byte{}
		churn := func(n int) {
			for j := 0; j < n; j++ {
				k := uint64(rng.Intn(40) + 1)
				v := bval(k^uint64(j)<<16, rng.Intn(200))
				if err := ss.PutBytes(k, v); err != nil {
					t.Fatal(err)
				}
				want[k] = v
			}
		}
		churn(120)
		pool := st.Pool(0)
		pool.StartCrashLog()
		if _, err := ss.CompactValues(); err != nil {
			t.Fatal(err)
		}
		churn(40)
		if _, err := ss.CompactValues(); err != nil {
			t.Fatal(err)
		}
		point := rng.Intn(pool.LogLen() + 1)
		img := pool.CrashImage(point, pmem.CrashRandom, rng)
		re, err := Reopen([]*pmem.Pool{img}, Options{})
		if err != nil {
			t.Fatalf("trial %d point %d: %v", trial, point, err)
		}
		if err := re.CheckInvariants(); err != nil {
			t.Fatalf("trial %d point %d: invariants: %v", trial, point, err)
		}
		rs := re.NewSession()
		// Keys written before the log started are committed; later
		// overwrites may or may not have landed, but a key must resolve
		// to SOME complete value it held, never a torn or alien one.
		for k := range want {
			got, ok, err := rs.GetBytes(k, nil)
			if err != nil {
				t.Fatalf("trial %d point %d: key %d: %v", trial, point, k, err)
			}
			if ok && !selfConsistent(k, got) {
				t.Fatalf("trial %d point %d: key %d holds a value never written for it", trial, point, k)
			}
		}
		rs.Close()
		re.Close()
		ss.Close()
		st.Close()
	}
}

// selfConsistent reports whether v could have been produced by bval for
// this key in the campaign above (any churn iteration).
func selfConsistent(k uint64, v []byte) bool {
	for j := 0; j < 256; j++ {
		if bytes.Equal(v, bval(k^uint64(j)<<16, len(v))) {
			return true
		}
	}
	return false
}

// --- bounded-space churn ---------------------------------------------------

// TestChurnSurvivesOnlyWithGC is the space acceptance test: a churn of ~10x
// the pool's capacity in overwrites must complete when automatic GC is on,
// and the identical workload must exhaust the pool with GC disabled.
func TestChurnSurvivesOnlyWithGC(t *testing.T) {
	const (
		shardSize = 4 << 20
		extent    = 32 << 10
		nKeys     = 64
		valSize   = 2048
		rounds    = 40 // ~5.3 MiB of appends into a 4 MiB pool
	)
	churn := func(ratio float64) (*Store, error) {
		st, err := Open(Options{
			Shards:         1,
			ShardSize:      shardSize,
			ValueLogExtent: extent,
			GCGarbageRatio: ratio,
		})
		if err != nil {
			t.Fatal(err)
		}
		ss := st.NewSession()
		defer ss.Close()
		for r := 0; r < rounds; r++ {
			for k := uint64(1); k <= nKeys; k++ {
				if err := ss.PutBytes(k, bval(k^uint64(r)<<20, valSize)); err != nil {
					return st, fmt.Errorf("round %d key %d: %w", r, k, err)
				}
			}
		}
		return st, nil
	}

	st, err := churn(0) // default ratio: automatic GC on
	if err != nil {
		t.Fatalf("churn with GC failed: %v", err)
	}
	vs := st.ValueStats()
	if vs.Reclaimed == 0 || vs.GCPasses == 0 {
		t.Fatalf("churn survived without reclaiming anything: %+v", vs)
	}
	// Every key still reads its last value.
	ss := st.NewSession()
	for k := uint64(1); k <= nKeys; k++ {
		got, ok, err := ss.GetBytes(k, nil)
		if err != nil || !ok || !bytes.Equal(got, bval(k^uint64(rounds-1)<<20, valSize)) {
			t.Fatalf("key %d after churn: ok=%v err=%v", k, ok, err)
		}
	}
	ss.Close()
	st.Close()

	st, err = churn(-1) // GC disabled: the same workload must overflow
	if err == nil {
		t.Fatal("churn without GC completed — pool too large for the test to mean anything")
	}
	st.Close()
	t.Logf("without GC the pool overflowed as expected: %v", err)
}

// --- concurrency -----------------------------------------------------------

// TestConcurrentGCAndVarlenOps races full compaction passes against
// readers, writers and deleters on overlapping keys, under -race in CI.
//
// The safety argument under test (see store/gc.go): a GC pass frees an
// extent only after (1) every tree ref into it was conditionally swapped
// to a relocated copy and (2) the shard's varMu was acquired exclusively,
// which waits out every reader holding a pre-swap ref snapshot — readers
// resolve tree word → log bytes entirely inside an RLock. So a reader can
// race a relocation or an overwrite (and legally observe either value of
// that race) but can never observe freed, rezeroed, or recycled log space,
// which is what the value self-check below would catch.
func TestConcurrentGCAndVarlenOps(t *testing.T) {
	st, err := Open(Options{
		Shards:         2,
		ShardSize:      64 << 20,
		ValueLogExtent: 4 << 10,
		GCGarbageRatio: -1, // GC runs on its own goroutine below, constantly
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const (
		nKeys   = 128
		workers = 4
		perW    = 1500
	)
	mkVal := func(k, seq uint64) []byte {
		v := make([]byte, 64+int(k%7)*24)
		binary.LittleEndian.PutUint64(v, seq)
		for i := 8; i < len(v); i++ {
			v[i] = byte(k>>uint(8*(i%8))) ^ byte(seq) ^ byte(i)
		}
		return v
	}
	checkVal := func(k uint64, v []byte) bool {
		if len(v) < 8 {
			return false
		}
		seq := binary.LittleEndian.Uint64(v)
		return bytes.Equal(v, mkVal(k, seq)[:len(v)]) && len(v) == len(mkVal(k, seq))
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, workers+1)

	// The compactor: back-to-back full passes for the whole run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ss := st.NewSession()
		defer ss.Close()
		for !stop.Load() {
			if _, err := ss.CompactValues(); err != nil {
				errs <- fmt.Errorf("compactor: %w", err)
				return
			}
		}
		errs <- nil
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			ss := st.NewSession()
			defer ss.Close()
			var buf []byte
			for i := 0; i < perW; i++ {
				k := uint64(rng.Intn(nKeys) + 1)
				switch rng.Intn(10) {
				case 0:
					if _, err := ss.DeleteBytes(k); err != nil {
						errs <- fmt.Errorf("w%d delete %d: %w", w, k, err)
						return
					}
				case 1, 2, 3:
					if err := ss.PutBytes(k, mkVal(k, uint64(w)<<32|uint64(i))); err != nil {
						errs <- fmt.Errorf("w%d put %d: %w", w, k, err)
						return
					}
				default:
					got, ok, err := ss.GetBytes(k, buf[:0])
					if err != nil {
						errs <- fmt.Errorf("w%d get %d: %w", w, k, err)
						return
					}
					if ok {
						if !checkVal(k, got) {
							errs <- fmt.Errorf("w%d get %d: value fails self-check (freed or torn record?)", w, k)
							return
						}
						buf = got
					}
				}
			}
			errs <- nil
		}(w)
	}

	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			stop.Store(true)
			t.Fatal(err)
		}
	}
	stop.Store(true)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestScanBytesDuringGC pages ScanBytes while a compactor relocates under
// it: collected ref snapshots go stale mid-page and must be transparently
// re-resolved (or skipped if deleted), never surfacing ErrNotVarlen or
// corrupt reads for live keys.
func TestScanBytesDuringGC(t *testing.T) {
	st, err := Open(Options{
		Shards:         2,
		ShardSize:      64 << 20,
		ValueLogExtent: 2 << 10,
		GCGarbageRatio: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ss := st.NewSession()
	defer ss.Close()
	const nKeys = 400
	for k := uint64(1); k <= nKeys; k++ {
		if err := ss.PutBytes(k, bval(k, 64)); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	done := make(chan error, 1)
	go func() {
		cs := st.NewSession()
		defer cs.Close()
		rng := rand.New(rand.NewSource(7))
		for !stop.Load() {
			k := uint64(rng.Intn(nKeys) + 1)
			if err := cs.PutBytes(k, bval(k, 64)); err != nil {
				done <- err
				return
			}
			if _, err := cs.CompactValues(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for iter := 0; iter < 40; iter++ {
		seen := 0
		lo := uint64(0)
		for {
			last := uint64(0)
			n := 0
			err := ss.ScanBytes(lo, nKeys, 64, func(k uint64, v []byte) bool {
				if len(v) != 64 {
					t.Errorf("key %d: %d bytes mid-GC", k, len(v))
				}
				last, n = k, n+1
				return true
			})
			if err != nil {
				stop.Store(true)
				<-done
				t.Fatalf("iter %d: scan: %v", iter, err)
			}
			seen += n
			if n == 0 || last >= nKeys {
				break
			}
			lo = last + 1
		}
		if seen < nKeys-1 { // a put+scan race may hide at most the in-flight key per page... be strict anyway
			t.Fatalf("iter %d: scan saw %d of %d keys", iter, seen, nKeys)
		}
	}
	stop.Store(true)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// --- accounting ------------------------------------------------------------

// TestDeleteAccountingUnified pins the satellite fix: every path that
// displaces a tree word (Delete, DeleteBytes, Put, PutBytes, overwrite or
// removal, fixed or varlen) feeds the same retireWord funnel, so reclaim
// stats move exactly when a varlen record died and never otherwise.
func TestDeleteAccountingUnified(t *testing.T) {
	st, err := Open(Options{Shards: 2, ShardSize: 16 << 20, GCGarbageRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ss := st.NewSession()
	defer ss.Close()

	garbage := func() int64 { return st.ValueStats().Garbage }

	// Fixed-width keys: no varlen record is ever involved, so no path may
	// move the reclaim stats.
	if err := ss.Put(1, 100); err != nil {
		t.Fatal(err)
	}
	if err := ss.Put(1, 200); err != nil { // fixed overwrite
		t.Fatal(err)
	}
	if ok, err := ss.DeleteBytes(1); !ok || err != nil {
		t.Fatalf("DeleteBytes on fixed key: (%v, %v)", ok, err)
	}
	if err := ss.Put(2, 300); err != nil {
		t.Fatal(err)
	}
	if ok, err := ss.Delete(2); !ok || err != nil {
		t.Fatalf("Delete on fixed key: (%v, %v)", ok, err)
	}
	if g := garbage(); g != 0 {
		t.Fatalf("fixed-width ops produced %d garbage bytes", g)
	}

	// Varlen overwrite and delete: exactly the dead payload is counted.
	if err := ss.PutBytes(10, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := ss.PutBytes(10, make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	if g := garbage(); g != 100 {
		t.Fatalf("after varlen overwrite: garbage %d, want 100", g)
	}
	if ok, err := ss.DeleteBytes(10); !ok || err != nil {
		t.Fatal(err)
	}
	if g := garbage(); g != 150 {
		t.Fatalf("after varlen delete: garbage %d, want 150", g)
	}

	// Delete (the fixed-named API) on a varlen key counts identically —
	// the funnel cannot be bypassed.
	if err := ss.PutBytes(11, make([]byte, 70)); err != nil {
		t.Fatal(err)
	}
	if ok, err := ss.Delete(11); !ok || err != nil {
		t.Fatal(err)
	}
	if g := garbage(); g != 220 {
		t.Fatalf("Delete on varlen key: garbage %d, want 220", g)
	}

	// A fixed Put clobbering a varlen key retires the record too.
	if err := ss.PutBytes(12, make([]byte, 30)); err != nil {
		t.Fatal(err)
	}
	if err := ss.Put(12, 42); err != nil {
		t.Fatal(err)
	}
	if g := garbage(); g != 250 {
		t.Fatalf("fixed Put over varlen key: garbage %d, want 250", g)
	}

	// Deleting that (now fixed) key adds nothing further.
	if ok, err := ss.Delete(12); !ok || err != nil {
		t.Fatal(err)
	}
	if g := garbage(); g != 250 {
		t.Fatalf("delete of fixed word moved stats: garbage %d, want 250", g)
	}

	// PutBatch clobbering a varlen key goes through the same funnel.
	if err := ss.PutBytes(13, make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	if err := ss.PutBatch([]KV{{Key: 13, Val: 1}, {Key: 14, Val: 2}}); err != nil {
		t.Fatal(err)
	}
	if g := garbage(); g != 290 {
		t.Fatalf("PutBatch over varlen key: garbage %d, want 290", g)
	}
}

// TestReopenRecomputesAccounting: the live/garbage counters are volatile;
// Reopen must rebuild them from the log and tree walks so automatic GC
// still triggers after a restart.
func TestReopenRecomputesAccounting(t *testing.T) {
	st, err := Open(Options{Shards: 2, ShardSize: 16 << 20, ValueLogExtent: 1024, GCGarbageRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	ss := st.NewSession()
	for k := uint64(1); k <= 50; k++ {
		if err := ss.PutBytes(k, bval(k, 100)); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1); k <= 50; k += 2 { // overwrite half
		if err := ss.PutBytes(k, bval(k^7, 100)); err != nil {
			t.Fatal(err)
		}
	}
	before := st.ValueStats()
	if before.Garbage == 0 {
		t.Fatalf("no garbage before reopen: %+v", before)
	}
	ss.Close()
	pools := st.Pools()
	st.Close()

	re, err := Reopen(pools, Options{GCGarbageRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	after := re.ValueStats()
	if after.Live != before.Live || after.Garbage != before.Garbage {
		t.Fatalf("reopen accounting drifted: before %+v, after %+v", before, after)
	}
	// And a compaction started from recomputed state reclaims it.
	rs := re.NewSession()
	defer rs.Close()
	cs, err := rs.CompactValues()
	if err != nil {
		t.Fatal(err)
	}
	if cs.ReclaimedBytes == 0 {
		t.Fatalf("nothing reclaimed after reopen: %+v", cs)
	}
	if g := re.ValueStats().Garbage; g >= before.Garbage {
		t.Fatalf("garbage did not shrink: %d -> %d", before.Garbage, g)
	}
}

// TestCompactValuesOnClosedStore: the close gate applies.
func TestCompactValuesOnClosedStore(t *testing.T) {
	st, err := Open(Options{Shards: 1, ShardSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ss := st.NewSession()
	st.Close()
	if _, err := ss.CompactValues(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	ss.Close()
}
