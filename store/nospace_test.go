package store

import (
	"bytes"
	"errors"
	"testing"
)

// TestNoSpaceDegradesGracefully drives a tiny store to space exhaustion and
// pins the whole ErrNoSpace lifecycle: writes fail fast and typed once the
// pool cannot guarantee GC headroom, reads and deletes keep working the
// entire time, and after deletes plus compaction free log space the same
// store accepts writes again — degradation that clears itself, not death.
func TestNoSpaceDegradesGracefully(t *testing.T) {
	st, err := Open(Options{Shards: 1, ShardSize: 4 << 20, ValueLogExtent: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ss := st.NewSession()
	defer ss.Close()

	val := make([]byte, 8<<10)
	for i := range val {
		val[i] = byte(i * 7)
	}

	// Fill until the admission check refuses.
	var full error
	var written []uint64
	for k := uint64(1); k <= 4096; k++ {
		if err := ss.PutBytes(k, val); err != nil {
			full = err
			break
		}
		written = append(written, k)
	}
	if full == nil {
		t.Fatal("4096 8KiB values fit a 4MiB shard; admission never refused")
	}
	if !errors.Is(full, ErrNoSpace) {
		t.Fatalf("write on full store failed with %v, want ErrNoSpace", full)
	}
	if len(written) == 0 {
		t.Fatal("store admitted nothing before filling")
	}

	// The refusal is stable (and each refused write is also an inline
	// compaction attempt that finds nothing to reclaim — no garbage yet).
	if err := ss.PutBytes(1<<40, val); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("second write on full store: %v, want ErrNoSpace", err)
	}

	// Degraded, not dead: every written value still reads back exactly,
	// and deletes work.
	for _, k := range written {
		got, ok, err := ss.GetBytes(k, nil)
		if err != nil || !ok || !bytes.Equal(got, val) {
			t.Fatalf("GetBytes(%d) on full store = (ok=%v, err=%v)", k, ok, err)
		}
	}

	// Free ~half the data, compact, and the store must admit writes again:
	// the condition clears through the normal delete+GC path, no restart.
	for _, k := range written[:len(written)/2] {
		if ok, err := ss.Delete(k); err != nil || !ok {
			t.Fatalf("Delete(%d) on full store = (%v, %v)", k, ok, err)
		}
	}
	if _, err := ss.CompactValues(); err != nil {
		t.Fatalf("CompactValues on full store: %v", err)
	}
	recovered := 0
	for k := uint64(1 << 20); k < 1<<20+16; k++ {
		if err := ss.PutBytes(k, val); err != nil {
			if !errors.Is(err, ErrNoSpace) {
				t.Fatalf("post-compaction write failed oddly: %v", err)
			}
			break
		}
		recovered++
	}
	if recovered == 0 {
		t.Fatal("store refused every write even after deletes + compaction")
	}

	// And the survivors are still intact.
	for _, k := range written[len(written)/2:] {
		got, ok, err := ss.GetBytes(k, nil)
		if err != nil || !ok || !bytes.Equal(got, val) {
			t.Fatalf("GetBytes(%d) after compaction = (ok=%v, err=%v)", k, ok, err)
		}
	}
}
