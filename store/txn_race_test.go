package store

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestTxnCommitRaceChurn races concurrent transactional commits from
// several sessions against plain writers, point readers, scans and forced
// value-log compaction; it earns its keep under -race (CI runs the store
// package with the detector on). Each committer owns a disjoint fixed-key
// range plus prefix-colliding byte keys, so the end state is exact; the
// shared applyMu choreography — committers exclusive in ascending shard
// order, plain writers shared, GC and readers outside — is what the
// detector is pointed at.
func TestTxnCommitRaceChurn(t *testing.T) {
	st, err := Open(Options{Shards: 4, ShardSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const committers = 3
	const keysPer = 24
	rounds := 10
	if testing.Short() {
		rounds = 4
	}
	fkey := func(w, i int) uint64 { return uint64(w*100000 + i) }
	bkey := func(w, i int) []byte {
		return []byte(fmt.Sprintf("txn-w%d-%04d-%c", w, i/3, 'a'+i%3))
	}
	bval := func(w, i, r int) []byte {
		return bytes.Repeat([]byte{byte(w*37 + i + r)}, 100+(w*keysPer+i)%150)
	}

	var wg sync.WaitGroup
	errs := make(chan error, committers+3)
	stop := make(chan struct{})

	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ss := st.NewSession()
			defer ss.Close()
			for r := 0; r < rounds; r++ {
				tx := ss.Begin()
				for i := 0; i < keysPer; i++ {
					if err := tx.Put(fkey(w, i), uint64(r*1000+i)); err != nil {
						errs <- fmt.Errorf("committer %d: %v", w, err)
						return
					}
					if err := tx.PutKV(bkey(w, i), bval(w, i, r)); err != nil {
						errs <- fmt.Errorf("committer %d: %v", w, err)
						return
					}
				}
				// A delete inside every other round exercises the remove
				// paths under commit's exclusive locks.
				if r%2 == 1 {
					if err := tx.Delete(fkey(w, 0)); err != nil {
						errs <- err
						return
					}
					if err := tx.DeleteKV(bkey(w, 0)); err != nil {
						errs <- err
						return
					}
				}
				if err := tx.Commit(); err != nil {
					errs <- fmt.Errorf("committer %d round %d: %v", w, r, err)
					return
				}
			}
			errs <- nil
		}(w)
	}
	// Plain writer on its own key range: shared applyMu against the
	// committers' exclusive holds.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ss := st.NewSession()
		defer ss.Close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				errs <- nil
				return
			default:
			}
			if err := ss.Put(uint64(900000+i%500), uint64(i)); err != nil {
				errs <- fmt.Errorf("plain writer: %v", err)
				return
			}
			if i%7 == 0 {
				if err := ss.PutKV([]byte(fmt.Sprintf("plain-%03d", i%200)), []byte("pv")); err != nil {
					errs <- fmt.Errorf("plain writer kv: %v", err)
					return
				}
			}
		}
	}()
	// Compactor forces GC passes throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ss := st.NewSession()
		defer ss.Close()
		for {
			select {
			case <-stop:
				errs <- nil
				return
			default:
			}
			if _, err := ss.CompactValues(); err != nil {
				errs <- fmt.Errorf("compactor: %v", err)
				return
			}
		}
	}()
	// Reader: point gets, scans, byte-key gets. Values are
	// single-byte-repeated so torn reads are detectable.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ss := st.NewSession()
		defer ss.Close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				errs <- nil
				return
			default:
			}
			w, k := i%committers, i%keysPer
			if _, _, err := ss.Get(fkey(w, k)); err != nil {
				errs <- fmt.Errorf("reader get: %v", err)
				return
			}
			v, ok, err := ss.GetKV(bkey(w, k), nil)
			if err != nil {
				errs <- fmt.Errorf("reader getkv: %v", err)
				return
			}
			if ok {
				for _, b := range v[1:] {
					if b != v[0] {
						errs <- errors.New("reader: torn byte-key value")
						return
					}
				}
			}
			if i%64 == 0 {
				if _, err := ss.ScanLimit(0, ^uint64(0), 200); err != nil {
					errs <- fmt.Errorf("reader scan: %v", err)
					return
				}
			}
		}
	}()

	for w := 0; w < committers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	// Exact end state per committer: last round's values, modulo the
	// final round's parity deletes.
	ss := st.NewSession()
	defer ss.Close()
	lastDel := (rounds-1)%2 == 1
	for w := 0; w < committers; w++ {
		for i := 0; i < keysPer; i++ {
			wantGone := lastDel && i == 0
			v, ok, err := ss.Get(fkey(w, i))
			if err != nil {
				t.Fatal(err)
			}
			if wantGone {
				if ok {
					t.Fatalf("committer %d key %d: survived its final delete", w, i)
				}
			} else if !ok || v != uint64((rounds-1)*1000+i) {
				t.Fatalf("committer %d key %d: v=%d ok=%v", w, i, v, ok)
			}
			bv2, ok, err := ss.GetKV(bkey(w, i), nil)
			if err != nil {
				t.Fatal(err)
			}
			if wantGone {
				if ok {
					t.Fatalf("committer %d byte key %d: survived its final delete", w, i)
				}
			} else if !ok || !bytes.Equal(bv2, bval(w, i, rounds-1)) {
				t.Fatalf("committer %d byte key %d: ok=%v len=%d", w, i, ok, len(bv2))
			}
		}
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
