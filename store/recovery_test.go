package store

import (
	"math/rand"
	"testing"

	"repro/internal/pmem"
)

// TestCrashOneShardMidInsert is the sharded-store crash campaign: one shard
// suffers a simulated power failure at a random instant inside its store
// tape (via pmem.CrashSim's adversarial per-line survivor model), the other
// shards crash at operation boundaries, and the store is Reopened from the
// images. Every committed key must be readable with its exact value, every
// in-flight-era key must be fully present or fully absent (no torn state),
// invariants must hold after recovery, and the store must be writable.
func TestCrashOneShardMidInsert(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		st, err := Open(Options{
			Shards:    4,
			ShardSize: 32 << 20,
			Mem:       pmem.Config{TrackCrashes: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		ss := st.NewSession()

		// Committed prefix: persisted before the crash log starts, so it
		// must survive any crash whatsoever.
		committed := map[uint64]uint64{}
		for _, k := range testKeys(3000, int64(trial)) {
			v := k ^ 0x5a5a
			if err := ss.Put(k, v); err != nil {
				t.Fatal(err)
			}
			committed[k] = v
		}

		for i := 0; i < st.NumShards(); i++ {
			st.Pool(i).StartCrashLog()
		}

		// In-flight era: more writes, then crash. The victim shard's
		// crash point is uniform over its tape, so it regularly lands
		// mid-insert (inside FAST's shift sequence or FAIR's split).
		victim := trial % st.NumShards()
		window := map[uint64]uint64{}
		for _, k := range testKeys(800, int64(trial)+50) {
			if _, dup := committed[k]; dup {
				continue
			}
			v := k ^ 0xc3c3
			if err := ss.Put(k, v); err != nil {
				t.Fatal(err)
			}
			window[k] = v
		}
		images := make([]*pmem.Pool, st.NumShards())
		for i := 0; i < st.NumShards(); i++ {
			pool := st.Pool(i)
			point := pool.LogLen()
			if i == victim {
				point = rng.Intn(pool.LogLen() + 1)
			}
			images[i] = pool.CrashImage(point, pmem.CrashRandom, rng)
		}
		ss.Close()
		st.Close()

		re, err := Reopen(images, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := re.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: post-recovery invariants: %v", trial, err)
		}
		rs := re.NewSession()

		for k, v := range committed {
			got, ok, err := rs.Get(k)
			if err != nil || !ok || got != v {
				t.Fatalf("trial %d: lost committed key %d: (%d,%v,%v)", trial, k, got, ok, err)
			}
		}
		survived, lost := 0, 0
		for k, v := range window {
			got, ok, err := rs.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case ok && got == v:
				survived++
			case !ok && re.ShardFor(k) == victim:
				lost++ // atomic loss of an in-flight write: legal
			case !ok:
				t.Fatalf("trial %d: shard %d lost key %d but only shard %d crashed mid-tape",
					trial, re.ShardFor(k), k, victim)
			default:
				t.Fatalf("trial %d: TORN write at key %d: got %d, want %d", trial, k, got, v)
			}
		}
		t.Logf("trial %d: victim shard %d; window writes: %d survived, %d atomically lost",
			trial, victim, survived, lost)

		// The recovered store keeps working: full merged scan remains
		// ordered, and new writes land.
		last, n := uint64(0), 0
		rs.Scan(0, ^uint64(0), func(k, v uint64) bool {
			if n > 0 && k <= last {
				t.Fatalf("trial %d: post-recovery scan out of order", trial)
			}
			last = k
			n++
			return true
		})
		if n != len(committed)+survived {
			t.Fatalf("trial %d: scan saw %d keys, want %d", trial, n, len(committed)+survived)
		}
		for i := uint64(1); i <= 200; i++ {
			if err := rs.Put(i<<40|i, i); err != nil {
				t.Fatalf("trial %d: post-recovery write: %v", trial, err)
			}
		}
		rs.Close()
		re.Close()
	}
}
