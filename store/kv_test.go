package store

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/pmem"
)

func kvTestStore(t *testing.T, opts Options) (*Store, *Session) {
	t.Helper()
	if opts.Shards == 0 {
		opts.Shards = 4
	}
	if opts.ShardSize == 0 {
		opts.ShardSize = 8 << 20
	}
	st, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ss := st.NewSession()
	t.Cleanup(func() { ss.Close(); st.Close() })
	return st, ss
}

func TestPackPrefixOrder(t *testing.T) {
	keys := [][]byte{
		{0x00}, {0x00, 0x00}, {0x01}, []byte("a"), []byte("a\x00"),
		[]byte("aa"), []byte("ab"), []byte("abcdefgh"), []byte("abcdefghi"),
		[]byte("abcdefgi"), []byte("b"), bytes.Repeat([]byte{0xff}, 9),
	}
	for i, a := range keys {
		for j, b := range keys {
			pa, pb := PackPrefix(a), PackPrefix(b)
			cmp := bytes.Compare(a, b)
			if pa < pb && cmp >= 0 {
				t.Errorf("PackPrefix(%q) < PackPrefix(%q) but keys not ordered (%d,%d)", a, b, i, j)
			}
			if cmp == 0 && pa != pb {
				t.Errorf("equal keys %q with different prefixes", a)
			}
		}
	}
	if PackPrefix([]byte("a")) != uint64('a')<<56 {
		t.Errorf("PackPrefix(a) = %#x", PackPrefix([]byte("a")))
	}
}

func TestKVBasic(t *testing.T) {
	_, ss := kvTestStore(t, Options{})
	put := func(k, v string) {
		t.Helper()
		if err := ss.PutKV([]byte(k), []byte(v)); err != nil {
			t.Fatalf("PutKV(%q): %v", k, err)
		}
	}
	get := func(k string) (string, bool) {
		t.Helper()
		v, ok, err := ss.GetKV([]byte(k), nil)
		if err != nil {
			t.Fatalf("GetKV(%q): %v", k, err)
		}
		return string(v), ok
	}
	put("hello", "world")
	put("a", "1")
	// Prefix collisions: all these share the first 8 bytes.
	put("collide-x", "vx")
	put("collide-y", "vy")
	put("collide-", "short") // the prefix itself as a key
	if v, ok := get("hello"); !ok || v != "world" {
		t.Fatalf("get hello = %q,%v", v, ok)
	}
	if v, ok := get("collide-x"); !ok || v != "vx" {
		t.Fatalf("get collide-x = %q,%v", v, ok)
	}
	if v, ok := get("collide-y"); !ok || v != "vy" {
		t.Fatalf("get collide-y = %q,%v", v, ok)
	}
	if v, ok := get("collide-"); !ok || v != "short" {
		t.Fatalf("get collide- = %q,%v", v, ok)
	}
	if _, ok := get("collide-z"); ok {
		t.Fatal("absent collide-z present")
	}
	if _, ok := get("hell"); ok {
		t.Fatal("absent prefix-of-live-key present")
	}
	// Overwrite.
	put("collide-x", "vx2")
	if v, _ := get("collide-x"); v != "vx2" {
		t.Fatalf("overwrite lost: %q", v)
	}
	if v, _ := get("collide-y"); v != "vy" {
		t.Fatalf("neighbor damaged by overwrite: %q", v)
	}
	// Delete one collider; others survive.
	if ok, err := ss.DeleteKV([]byte("collide-y")); err != nil || !ok {
		t.Fatalf("DeleteKV: %v %v", ok, err)
	}
	if _, ok := get("collide-y"); ok {
		t.Fatal("deleted key present")
	}
	if v, _ := get("collide-x"); v != "vx2" {
		t.Fatalf("neighbor damaged by delete: %q", v)
	}
	if ok, _ := ss.DeleteKV([]byte("collide-y")); ok {
		t.Fatal("double delete reported present")
	}
	// Delete last entry of a bucket drops the prefix entirely.
	if ok, _ := ss.DeleteKV([]byte("hello")); !ok {
		t.Fatal("delete hello")
	}
	if _, ok := get("hello"); ok {
		t.Fatal("hello still present")
	}
}

func TestKVLimitsAndErrors(t *testing.T) {
	_, ss := kvTestStore(t, Options{Shards: 1, ShardSize: 16 << 20})
	if err := ss.PutKV(nil, []byte("v")); !errors.Is(err, ErrKeyEmpty) {
		t.Fatalf("empty key: %v", err)
	}
	if err := ss.PutKV(bytes.Repeat([]byte("k"), MaxKey+1), nil); !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("oversized key: %v", err)
	}
	if err := ss.PutKV([]byte("k"), make([]byte, MaxKVValue+1)); !errors.Is(err, ErrValueTooLarge) {
		t.Fatalf("oversized value: %v", err)
	}
	if _, _, err := ss.GetKV(nil, nil); !errors.Is(err, ErrKeyEmpty) {
		t.Fatalf("GetKV empty key: %v", err)
	}
	if _, err := ss.DeleteKV(bytes.Repeat([]byte("k"), MaxKey+1)); !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("DeleteKV oversized: %v", err)
	}
	// Max-sized key and value round-trip.
	bigK := bytes.Repeat([]byte("K"), MaxKey)
	bigV := bytes.Repeat([]byte("V"), MaxKVValue)
	if err := ss.PutKV(bigK, bigV); err != nil {
		t.Fatalf("max-sized put: %v", err)
	}
	v, ok, err := ss.GetKV(bigK, nil)
	if err != nil || !ok || !bytes.Equal(v, bigV) {
		t.Fatalf("max-sized get: ok=%v err=%v len=%d", ok, err, len(v))
	}
	// Empty value is a legal, present value.
	if err := ss.PutKV([]byte("empty"), nil); err != nil {
		t.Fatalf("empty value: %v", err)
	}
	if v, ok, err := ss.GetKV([]byte("empty"), nil); err != nil || !ok || len(v) != 0 {
		t.Fatalf("empty value get: %q %v %v", v, ok, err)
	}
	// A prefix written through the uint64 varlen API reads as ErrNotKeyed.
	p := PackPrefix([]byte("mixed!!!"))
	if err := ss.PutBytes(p, []byte("not a bucket")); err != nil {
		t.Fatalf("PutBytes: %v", err)
	}
	// ShardForKey and ShardFor may disagree; find a key whose shard holds p.
	if _, _, err := ss.GetKV([]byte("mixed!!!"), nil); err == nil {
		// Single shard: the lookup must hit the foreign record.
		t.Fatalf("GetKV on uint64-API prefix succeeded")
	} else if !errors.Is(err, ErrNotKeyed) {
		t.Fatalf("GetKV on uint64-API prefix: %v", err)
	}
}

func TestKVScan(t *testing.T) {
	_, ss := kvTestStore(t, Options{})
	var want []string
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("scan/%03d", i)
		want = append(want, k)
		if err := ss.PutKV([]byte(k), []byte("v-"+k)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	// Colliding keys interleave correctly in scan order: same 8-byte
	// prefix "scan/05x" extended.
	extra := []string{"scan/050a", "scan/050b"}
	for _, k := range extra {
		if err := ss.PutKV([]byte(k), []byte("v-"+k)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	want = append(want[:51], append([]string{"scan/050a", "scan/050b"}, want[51:]...)...)

	var got []string
	err := ss.ScanKV(nil, nil, 0, func(k, v []byte) bool {
		got = append(got, string(k))
		if string(v) != "v-"+string(k) {
			t.Fatalf("wrong value for %q: %q", k, v)
		}
		return true
	})
	if err != nil {
		t.Fatalf("ScanKV: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// Bounded sub-range [scan/010, scan/020].
	got = got[:0]
	if err := ss.ScanKV([]byte("scan/010"), []byte("scan/020"), 0, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatalf("ScanKV bounded: %v", err)
	}
	if len(got) != 11 || got[0] != "scan/010" || got[10] != "scan/020" {
		t.Fatalf("bounded scan: %v", got)
	}
	// Pagination with the +"\x00" successor: pages concatenate to the
	// full range without duplicates.
	var pages []string
	lo := []byte(nil)
	for {
		n := 0
		var last []byte
		if err := ss.ScanKV(lo, nil, 7, func(k, v []byte) bool {
			pages = append(pages, string(k))
			last = append(last[:0], k...)
			n++
			return true
		}); err != nil {
			t.Fatalf("page: %v", err)
		}
		if n < 7 {
			break
		}
		lo = append(last, 0)
	}
	if len(pages) != len(want) {
		t.Fatalf("paged scan count %d, want %d", len(pages), len(want))
	}
	for i := range pages {
		if pages[i] != want[i] {
			t.Fatalf("paged[%d] = %q, want %q", i, pages[i], want[i])
		}
	}
	// max truncates.
	n := 0
	if err := ss.ScanKV(nil, nil, 5, func(k, v []byte) bool { n++; return true }); err != nil || n != 5 {
		t.Fatalf("max: n=%d err=%v", n, err)
	}
	// Early stop.
	n = 0
	if err := ss.ScanKV(nil, nil, 0, func(k, v []byte) bool { n++; return false }); err != nil || n != 1 {
		t.Fatalf("early stop: n=%d err=%v", n, err)
	}
}

func TestKVReopen(t *testing.T) {
	opts := Options{Shards: 2, ShardSize: 8 << 20}
	st, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ss := st.NewSession()
	keys := []string{"a", "a\x00", "aa", "collide-1", "collide-2", "zzzzzzzzzzzz"}
	for _, k := range keys {
		if err := ss.PutKV([]byte(k), []byte("val:"+k)); err != nil {
			t.Fatalf("put %q: %v", k, err)
		}
	}
	pools := st.Pools()
	ss.Close()
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st2, err := Reopen(pools, Options{Shards: 2, ShardSize: 8 << 20})
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	defer st2.Close()
	ss2 := st2.NewSession()
	defer ss2.Close()
	for _, k := range keys {
		v, ok, err := ss2.GetKV([]byte(k), nil)
		if err != nil || !ok || string(v) != "val:"+k {
			t.Fatalf("after reopen, %q = %q,%v,%v", k, v, ok, err)
		}
	}
	if err := st2.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	// Post-recovery writes work, including into surviving buckets.
	if err := ss2.PutKV([]byte("collide-3"), []byte("new")); err != nil {
		t.Fatalf("post-reopen put: %v", err)
	}
	if v, ok, _ := ss2.GetKV([]byte("collide-3"), nil); !ok || string(v) != "new" {
		t.Fatalf("post-reopen get: %q %v", v, ok)
	}
}

func TestKVGCPreservesBuckets(t *testing.T) {
	// Churn varlen bytes plus KV entries so GC relocates bucket records,
	// then verify every KV entry survives byte-exact.
	_, ss := kvTestStore(t, Options{Shards: 1, ShardSize: 8 << 20, ValueLogExtent: 16 << 10})
	keys := map[string][]byte{}
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("gc-key-%02d-%d", i%8, i) // shared prefixes
		v := bytes.Repeat([]byte{byte(i)}, 128)
		keys[k] = v
		if err := ss.PutKV([]byte(k), v); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	// Heavy overwrite churn forces automatic GC through the bucket path.
	for round := 0; round < 30; round++ {
		for i := 0; i < 8; i++ {
			k := fmt.Sprintf("churn-%d", i)
			v := bytes.Repeat([]byte{byte(round)}, 512)
			if err := ss.PutKV([]byte(k), v); err != nil {
				t.Fatalf("churn put: %v", err)
			}
			keys[k] = v
		}
	}
	if _, err := ss.CompactValues(); err != nil {
		t.Fatalf("CompactValues: %v", err)
	}
	st := ss.s
	if st.ValueStats().GCPasses == 0 {
		t.Fatal("no GC pass ran; churn insufficient")
	}
	for k, v := range keys {
		got, ok, err := ss.GetKV([]byte(k), nil)
		if err != nil || !ok || !bytes.Equal(got, v) {
			t.Fatalf("after GC, %q: ok=%v err=%v", k, ok, err)
		}
	}
}

func TestKVCrashSmoke(t *testing.T) {
	// A coarse crash check ahead of the exhaustive matrix in
	// kv_crash_test.go: crash-all after a committed PutKV, reopen, and the
	// write must be there.
	opts := Options{Shards: 1, ShardSize: 4 << 20, Mem: pmem.Config{TrackCrashes: true}}
	st, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ss := st.NewSession()
	pool := st.Pool(0)
	pool.StartCrashLog()
	if err := ss.PutKV([]byte("crash-key"), []byte("crash-val")); err != nil {
		t.Fatalf("put: %v", err)
	}
	img := pool.CrashImage(pool.LogLen(), pmem.CrashAll, nil)
	ss.Close()
	st.Close()
	st2, err := Reopen([]*pmem.Pool{img}, Options{Shards: 1, ShardSize: 4 << 20})
	if err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	defer st2.Close()
	ss2 := st2.NewSession()
	defer ss2.Close()
	v, ok, err := ss2.GetKV([]byte("crash-key"), nil)
	if err != nil || !ok || string(v) != "crash-val" {
		t.Fatalf("after crash: %q %v %v", v, ok, err)
	}
}
