package store

import (
	"time"

	"repro/internal/metrics"
)

// opSampleMask sets the per-session latency sampling rate to one in
// (mask+1) operations; must be a power of two minus one. Tests set it to
// 0 to clock every operation. GC pass histograms are never sampled.
var opSampleMask uint32 = 7

// storeMetrics is the store's always-on instrumentation: one latency
// histogram per session operation (recorded with two clock reads around
// one in every opSampleMask+1 calls — lock-free, allocation-free; see
// Session.sampleOp) and the GC pass distributions. Counters for the
// value log and the pmem layer are not duplicated here; RegisterMetrics
// exposes the existing accounting read-function-backed.
type storeMetrics struct {
	get, put, del, putBatch, scan *metrics.Histogram
	getBytes, putBytes, scanBytes *metrics.Histogram
	getKV, putKV, delKV, scanKV   *metrics.Histogram
	txnCommit                     *metrics.Histogram

	// gcPause is the duration of one GC pass (manual or automatic — the
	// latency a triggering writer absorbs); gcRelocated the live records
	// each pass copied forward.
	gcPause     *metrics.Histogram
	gcRelocated *metrics.Histogram
}

func newStoreMetrics() *storeMetrics {
	return &storeMetrics{
		get:         metrics.NewHistogram(),
		put:         metrics.NewHistogram(),
		del:         metrics.NewHistogram(),
		putBatch:    metrics.NewHistogram(),
		scan:        metrics.NewHistogram(),
		getBytes:    metrics.NewHistogram(),
		putBytes:    metrics.NewHistogram(),
		scanBytes:   metrics.NewHistogram(),
		getKV:       metrics.NewHistogram(),
		putKV:       metrics.NewHistogram(),
		delKV:       metrics.NewHistogram(),
		scanKV:      metrics.NewHistogram(),
		txnCommit:   metrics.NewHistogram(),
		gcPause:     metrics.NewHistogram(),
		gcRelocated: metrics.NewHistogram(),
	}
}

// RegisterMetrics exposes the store's instrumentation on reg: per-operation
// latency histograms, GC pass distributions, the value-log space accounting,
// and the pmem layer's simulated-device counters. Safe to call on several
// registries; the families read shared live state.
func (s *Store) RegisterMetrics(reg *metrics.Registry) {
	m := s.met
	ops := []struct {
		name string
		h    *metrics.Histogram
	}{
		{"Get", m.get}, {"Put", m.put}, {"Delete", m.del},
		{"PutBatch", m.putBatch}, {"Scan", m.scan},
		{"GetBytes", m.getBytes}, {"PutBytes", m.putBytes},
		{"ScanBytes", m.scanBytes},
		{"GetKV", m.getKV}, {"PutKV", m.putKV},
		{"DeleteKV", m.delKV}, {"ScanKV", m.scanKV},
		{"TxnCommit", m.txnCommit},
	}
	for _, op := range ops {
		reg.Histogram("pmkv_store_op_seconds", `op="`+op.name+`"`,
			"store operation latency", 1e-9, op.h)
	}
	reg.Histogram("pmkv_store_gc_pause_seconds", "",
		"duration of one value-log GC pass", 1e-9, m.gcPause)
	reg.Histogram("pmkv_store_gc_relocated_records", "",
		"live records relocated per GC pass", 1, m.gcRelocated)

	vs := func(read func(ValueLogStats) int64) func() float64 {
		return func() float64 { return float64(read(s.ValueStats())) }
	}
	reg.Gauge("pmkv_store_vlog_bytes", `state="live"`,
		"value-log payload bytes by state",
		vs(func(v ValueLogStats) int64 { return v.Live }))
	reg.Gauge("pmkv_store_vlog_bytes", `state="garbage"`,
		"value-log payload bytes by state",
		vs(func(v ValueLogStats) int64 { return v.Garbage }))
	reg.Gauge("pmkv_store_vlog_bytes", `state="cap"`,
		"value-log payload bytes by state",
		vs(func(v ValueLogStats) int64 { return v.Cap }))
	vc := func(read func(ValueLogStats) int64) func() uint64 {
		return func() uint64 { return uint64(read(s.ValueStats())) }
	}
	reg.Counter("pmkv_store_vlog_reclaimed_bytes_total", "",
		"arena bytes value-log GC returned to the pools",
		vc(func(v ValueLogStats) int64 { return v.Reclaimed }))
	reg.Counter("pmkv_store_vlog_relocated_total", "",
		"live records value-log GC copied forward",
		vc(func(v ValueLogStats) int64 { return v.Relocated }))
	reg.Counter("pmkv_store_vlog_gc_extents_total", "",
		"extents value-log GC reclaimed",
		vc(func(v ValueLogStats) int64 { return v.GCPasses }))

	reg.Counter("pmkv_pmem_loads_total", "",
		"word loads issued to the simulated device",
		func() uint64 { return s.Stats().Loads })
	reg.Counter("pmkv_pmem_stores_total", "",
		"word stores issued to the simulated device",
		func() uint64 { return s.Stats().Stores })
	reg.Counter("pmkv_pmem_charged_reads_total", "",
		"serial line accesses that paid PM read latency",
		func() uint64 { return s.Stats().ChargedReads })
	reg.Counter("pmkv_pmem_flushed_lines_total", "",
		"cache lines written back by Flush/Persist",
		func() uint64 { return s.Stats().FlushedLines })
	reg.Counter("pmkv_pmem_flush_calls_total", "",
		"Flush/Persist invocations",
		func() uint64 { return s.Stats().FlushCalls })
	reg.Counter("pmkv_pmem_fences_total", "",
		"ordering fences issued",
		func() uint64 { return s.Stats().Fences })
}

// recordGC charges one GC pass to the pause and relocation histograms.
func (m *storeMetrics) recordGC(start time.Time, relocated int) {
	m.gcPause.RecordSince(start)
	m.gcRelocated.Record(int64(relocated))
}
