package store

import (
	"sort"
	"testing"
)

func TestScanLimitMatchesScan(t *testing.T) {
	st := openTest(t, 4)
	ss := st.NewSession()
	defer ss.Close()

	keys := testKeys(5000, 11)
	for _, k := range keys {
		if err := ss.Put(k, k^0xfeed); err != nil {
			t.Fatal(err)
		}
	}
	sorted := append([]uint64{}, keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	lo, hi := sorted[100], sorted[4200]
	var want []KV
	if err := ss.Scan(lo, hi, func(k, v uint64) bool {
		want = append(want, KV{k, v})
		return true
	}); err != nil {
		t.Fatal(err)
	}

	got, err := ss.ScanLimit(lo, hi, len(want)+10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("ScanLimit returned %d pairs, Scan %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pair %d: ScanLimit %v, Scan %v", i, got[i], want[i])
		}
	}

	// The limit truncates the globally smallest max pairs, in order.
	part, err := ss.ScanLimit(lo, hi, 37)
	if err != nil {
		t.Fatal(err)
	}
	if len(part) != 37 {
		t.Fatalf("ScanLimit(37) returned %d pairs", len(part))
	}
	for i := range part {
		if part[i] != want[i] {
			t.Fatalf("limited pair %d: got %v, want %v", i, part[i], want[i])
		}
	}

	if out, err := ss.ScanLimit(hi, lo, 10); err != nil || out != nil {
		t.Fatalf("inverted range = (%v, %v), want (nil, nil)", out, err)
	}
}

func TestScanLimitSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the contract is checked in non-race runs")
	}
	st := openTest(t, 4)
	ss := st.NewSession()
	defer ss.Close()
	keys := testKeys(3000, 12)
	for _, k := range keys {
		if err := ss.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up: sizes the session buffers and builds the collectors.
	if _, err := ss.ScanLimit(0, ^uint64(0), 256); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		out, err := ss.ScanLimit(0, ^uint64(0), 256)
		if err != nil || len(out) != 256 {
			t.Fatalf("ScanLimit = (%d pairs, %v)", len(out), err)
		}
	})
	if allocs != 0 {
		t.Errorf("ScanLimit allocs/op = %v, want 0", allocs)
	}
}

func TestScanLimitClosedStore(t *testing.T) {
	st := openTest(t, 2)
	ss := st.NewSession()
	defer ss.Close()
	st.Close()
	if _, err := ss.ScanLimit(0, ^uint64(0), 10); err != ErrClosed {
		t.Fatalf("ScanLimit on closed store: %v, want ErrClosed", err)
	}
}
