package store

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/index"
	"repro/internal/pmem"
)

func openTest(t *testing.T, shards int) *Store {
	t.Helper()
	st, err := Open(Options{Shards: shards, ShardSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestBasicOps(t *testing.T) {
	st := openTest(t, 4)
	ss := st.NewSession()
	defer ss.Close()

	keys := testKeys(2000, 1)
	for _, k := range keys {
		if err := ss.Put(k, k^0xabcdef); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		v, ok, err := ss.Get(k)
		if err != nil || !ok || v != k^0xabcdef {
			t.Fatalf("Get(%d) = (%d,%v,%v)", k, v, ok, err)
		}
	}
	// Zero values are legal (the store boxes values; no InlineValues).
	if err := ss.Put(keys[0], 0); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := ss.Get(keys[0]); err != nil || !ok || v != 0 {
		t.Fatalf("zero value lost: (%d,%v,%v)", v, ok, err)
	}
	if n, err := ss.Len(); err != nil || n != len(keys) {
		t.Fatalf("Len = %d (%v), want %d", n, err, len(keys))
	}
	if ok, err := ss.Delete(keys[1]); err != nil || !ok {
		t.Fatalf("delete failed: (%v,%v)", ok, err)
	}
	if _, ok, _ := ss.Get(keys[1]); ok {
		t.Fatal("deleted key still present")
	}
	if ok, _ := ss.Delete(keys[1]); ok {
		t.Fatal("double delete reported true")
	}
}

func TestShardForPartitionsEveryShard(t *testing.T) {
	st := openTest(t, 8)
	seen := map[int]int{}
	for _, k := range testKeys(10000, 2) {
		s := st.ShardFor(k)
		if s < 0 || s >= st.NumShards() {
			t.Fatalf("ShardFor out of range: %d", s)
		}
		seen[s]++
	}
	for i := 0; i < st.NumShards(); i++ {
		// Uniform would be 1250 per shard; demand at least half that.
		if seen[i] < 625 {
			t.Errorf("shard %d got %d of 10000 keys (poor balance)", i, seen[i])
		}
	}
}

func TestPutBatch(t *testing.T) {
	st := openTest(t, 4)
	ss := st.NewSession()
	defer ss.Close()

	var batch []KV
	for _, k := range testKeys(5000, 3) {
		batch = append(batch, KV{Key: k, Val: k * 3})
	}
	// Later duplicates win.
	batch = append(batch, KV{Key: batch[0].Key, Val: 42})
	if err := ss.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := ss.Get(batch[0].Key); err != nil || !ok || v != 42 {
		t.Fatalf("duplicate override: (%d,%v,%v), want 42", v, ok, err)
	}
	for _, kv := range batch[1 : len(batch)-1] {
		if v, ok, err := ss.Get(kv.Key); err != nil || !ok || v != kv.Val {
			t.Fatalf("batch key %d = (%d,%v,%v), want %d", kv.Key, v, ok, err, kv.Val)
		}
	}
	if err := ss.PutBatch(nil); err != nil {
		t.Fatal("empty batch errored:", err)
	}
}

func TestScanMergesShardsInOrder(t *testing.T) {
	st := openTest(t, 5)
	ss := st.NewSession()
	defer ss.Close()

	keys := testKeys(3000, 4)
	want := map[uint64]uint64{}
	for _, k := range keys {
		if err := ss.Put(k, k+7); err != nil {
			t.Fatal(err)
		}
		want[k] = k + 7
	}
	// Full-range scan: globally ascending, complete, values intact.
	var got []uint64
	last := uint64(0)
	ss.Scan(0, ^uint64(0), func(k, v uint64) bool {
		if len(got) > 0 && k <= last {
			t.Fatalf("merged scan out of order: %d after %d", k, last)
		}
		if want[k] != v {
			t.Fatalf("scan val %d for key %d, want %d", v, k, want[k])
		}
		last = k
		got = append(got, k)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("full scan saw %d, want %d", len(got), len(want))
	}
	// Bounded sub-range matches a filter of the full result.
	lo, hi := got[100], got[2000]
	i := 100
	n := 0
	ss.Scan(lo, hi, func(k, v uint64) bool {
		if k != got[i] {
			t.Fatalf("bounded scan: key %d at pos %d, want %d", k, n, got[i])
		}
		i++
		n++
		return true
	})
	if n != 2000-100+1 {
		t.Fatalf("bounded scan saw %d, want %d", n, 2000-100+1)
	}
	// Early stop terminates cleanly (producers must not leak or deadlock).
	n = 0
	ss.Scan(0, ^uint64(0), func(k, v uint64) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop after %d, want 10", n)
	}
	// Empty and inverted ranges.
	ss.Scan(3, 2, func(uint64, uint64) bool { t.Fatal("inverted range visited"); return false })
}

func TestConcurrentSessions(t *testing.T) {
	st := openTest(t, 4)
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ss := st.NewSession()
			defer ss.Close()
			base := uint64(g) << 32
			for i := uint64(0); i < perG; i++ {
				k := base | i
				if err := ss.Put(k, k^5); err != nil {
					t.Error(err)
					return
				}
				if v, ok, err := ss.Get(k); err != nil || !ok || v != k^5 {
					t.Errorf("Get(%d) = (%d,%v,%v)", k, v, ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	ss := st.NewSession()
	defer ss.Close()
	if n, err := ss.Len(); err != nil || n != goroutines*perG {
		t.Fatalf("Len = %d (%v), want %d", n, err, goroutines*perG)
	}
}

func TestCleanReopen(t *testing.T) {
	st, err := Open(Options{Shards: 3, ShardSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ss := st.NewSession()
	keys := testKeys(1000, 5)
	for _, k := range keys {
		if err := ss.Put(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	ss.Close()
	pools := st.Pools()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Reopen(pools, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumShards() != 3 {
		t.Fatalf("reopened with %d shards, want 3", re.NumShards())
	}
	rs := re.NewSession()
	defer rs.Close()
	for _, k := range keys {
		if v, ok, err := rs.Get(k); err != nil || !ok || v != k+1 {
			t.Fatalf("after reopen Get(%d) = (%d,%v,%v)", k, v, ok, err)
		}
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReopenRejectsMismatchedPools(t *testing.T) {
	st := openTest(t, 2)
	pools := st.Pools()

	// Wrong shard count.
	if _, err := Reopen(pools[:1], Options{}); err == nil {
		t.Fatal("reopen with missing shard accepted")
	}
	// Shards out of order (stamp ids disagree with positions).
	if _, err := Reopen([]*pmem.Pool{pools[1], pools[0]}, Options{}); err == nil {
		t.Fatal("reopen with swapped shards accepted")
	}
	// A pool that was never a store shard.
	alien := pmem.New(pmem.Config{Size: 1 << 20})
	if _, err := Reopen([]*pmem.Pool{pools[0], alien}, Options{}); err == nil {
		t.Fatal("reopen with alien pool accepted")
	}
	// Explicit Shards must agree with len(pools).
	if _, err := Reopen(pools, Options{Shards: 4}); err == nil {
		t.Fatal("reopen with contradicting Shards accepted")
	}
}

func TestReopenRejectsMismatchedShape(t *testing.T) {
	st, err := Open(Options{Shards: 2, ShardSize: 32 << 20, Kind: index.SkipList})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Defaulted Kind (FastFair) disagrees with the recorded SkipList shape:
	// the image must be rejected, never misread as a B+-tree.
	if _, err := Reopen(st.Pools(), Options{}); err == nil {
		t.Fatal("reopen with wrong kind accepted")
	}
	// The right kind still works.
	re, err := Reopen(st.Pools(), Options{Kind: index.SkipList})
	if err != nil {
		t.Fatal(err)
	}
	re.Close()

	st2, err := Open(Options{Shards: 2, ShardSize: 32 << 20, NodeSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	// An explicit contradicting node size is rejected...
	if _, err := Reopen(st2.Pools(), Options{NodeSize: 256}); err == nil {
		t.Fatal("reopen with wrong node size accepted")
	}
	// ...while a zero NodeSize adopts the recorded one.
	re2, err := Reopen(st2.Pools(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.opts.NodeSize != 1024 {
		t.Fatalf("reopen adopted NodeSize %d, want 1024", re2.opts.NodeSize)
	}
}

// TestSessionOnClosedStore covers the drain contract: sessions created
// before or after Close keep working as handles, but every operation fails
// with ErrClosed instead of touching released shard state.
func TestSessionOnClosedStore(t *testing.T) {
	st, err := Open(Options{Shards: 2, ShardSize: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	pre := st.NewSession()
	defer pre.Close()
	if err := pre.Put(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	post := st.NewSession() // must not panic
	defer post.Close()
	for name, err := range map[string]error{
		"Put":      pre.Put(3, 4),
		"PutBatch": pre.PutBatch([]KV{{5, 6}}),
		"Scan":     pre.Scan(0, ^uint64(0), func(uint64, uint64) bool { return true }),
		"post.Put": post.Put(7, 8),
	} {
		if !errors.Is(err, ErrClosed) {
			t.Errorf("%s on closed store: err = %v, want ErrClosed", name, err)
		}
	}
	if _, _, err := pre.Get(1); !errors.Is(err, ErrClosed) {
		t.Errorf("Get on closed store: err = %v, want ErrClosed", err)
	}
	if _, err := pre.Delete(1); !errors.Is(err, ErrClosed) {
		t.Errorf("Delete on closed store: err = %v, want ErrClosed", err)
	}
	if _, err := pre.Len(); !errors.Is(err, ErrClosed) {
		t.Errorf("Len on closed store: err = %v, want ErrClosed", err)
	}
	if err := st.CheckInvariants(); !errors.Is(err, ErrClosed) {
		t.Errorf("CheckInvariants on closed store: err = %v, want ErrClosed", err)
	}
	if err := st.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestCloseDrainsConcurrentOps hammers the close gate: goroutines stream
// operations while the store closes underneath them. Every operation must
// either succeed cleanly or fail with ErrClosed — no panics, no torn reads —
// and everything acknowledged before Close started must still be counted.
// Run under -race this also proves the gate orders operations against
// teardown.
func TestCloseDrainsConcurrentOps(t *testing.T) {
	st, err := Open(Options{Shards: 4, ShardSize: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var acked atomic.Uint64
	var closedSeen atomic.Uint64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ss := st.NewSession()
			defer ss.Close()
			<-start
			for i := uint64(0); ; i++ {
				k := uint64(g)<<32 | i
				err := ss.Put(k, k)
				if errors.Is(err, ErrClosed) {
					closedSeen.Add(1)
					return
				}
				if err != nil {
					t.Errorf("Put(%d): %v", k, err)
					return
				}
				acked.Add(1)
				if _, ok, err := ss.Get(k); err == nil && !ok {
					t.Errorf("acked key %d missing before close", k)
					return
				}
			}
		}(g)
	}
	close(start)
	time.Sleep(5 * time.Millisecond) // let writers get going
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if closedSeen.Load() != goroutines {
		t.Fatalf("%d goroutines saw ErrClosed, want %d", closedSeen.Load(), goroutines)
	}
	t.Logf("%d puts acknowledged before close", acked.Load())
}

func TestReopenRequiresReopenableKind(t *testing.T) {
	st, err := Open(Options{Shards: 2, ShardSize: 32 << 20, Kind: index.BLink})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := Reopen(st.Pools(), Options{Kind: index.BLink}); !errors.Is(err, index.ErrNotReopenable) {
		t.Fatalf("err = %v, want ErrNotReopenable", err)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Open(Options{Shards: -1}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if _, err := Open(Options{Kind: "nope", ShardSize: 1 << 20}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestStatsAggregate(t *testing.T) {
	st := openTest(t, 2)
	ss := st.NewSession()
	for _, k := range testKeys(500, 6) {
		if err := ss.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	ss.Close() // folds session threads into the pools
	if s := st.Stats(); s.Stores == 0 || s.FlushedLines == 0 {
		t.Fatalf("aggregate stats empty after workload: %+v", s)
	}
}

// TestShardScaling is the acceptance check for the shard axis: with real
// cores, 4 shards at 8 goroutines must clearly beat 1 shard on an
// insert+get workload under simulated PM write latency. Contention on a
// single tree (writer latches, one allocator) is what sharding removes, so
// the effect needs genuine parallelism — skip on small hosts where the
// schedule serialises everything anyway.
func TestShardScaling(t *testing.T) {
	if raceEnabled {
		t.Skip("timing assertion is not meaningful under the race detector")
	}
	if runtime.NumCPU() < 8 {
		t.Skipf("need >= 8 CPUs for 8 goroutines to scale (have %d)", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("timing-heavy; CI runs with -short on shared runners")
	}
	const goroutines = 8
	const ops = 40000
	run := func(shards int) float64 {
		st, err := Open(Options{
			Shards:    shards,
			ShardSize: 64 << 20,
			Mem:       pmem.Config{WriteLatency: 300 * time.Nanosecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		// Monotonic keys from a shared counter: on one shard every
		// writer chases the same rightmost leaf; sharding spreads the
		// append point (see bench.FigShards).
		var ctr atomic.Uint64
		var wg sync.WaitGroup
		t0 := time.Now()
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ss := st.NewSession()
				defer ss.Close()
				var last uint64
				for i := 0; i < ops/goroutines; i++ {
					if i%2 == 1 && last != 0 {
						if _, ok, err := ss.Get(last); err != nil || !ok {
							t.Errorf("key %d missing (%v)", last, err)
							return
						}
						continue
					}
					k := ctr.Add(1)
					if err := ss.Put(k, k); err != nil {
						t.Error(err)
						return
					}
					last = k
				}
			}()
		}
		wg.Wait()
		return float64(ops) / time.Since(t0).Seconds()
	}
	one := run(1)
	four := run(4)
	t.Logf("1 shard: %.0f ops/s, 4 shards: %.0f ops/s (%.2fx)", one, four, four/one)
	if four < 2*one {
		t.Errorf("4 shards = %.2fx of 1 shard, want >= 2x", four/one)
	}
}

func testKeys(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	seen := map[uint64]bool{}
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := rng.Uint64()
		if k == 0 || seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
	}
	return keys
}
