package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/index"
	"repro/internal/txnlog"
)

// Multi-key ACID transactions. A Txn buffers writes — fixed-width and
// byte-string keyed — in a volatile write-set with read-your-writes, and
// Commit makes them durable atomically across any number of shards via a
// per-shard crash-consistent redo log (internal/txnlog):
//
//  1. Group the write-set by shard and encode one deterministic intent
//     payload per participating shard.
//  2. Lock every participating shard's applyMu exclusively, in ascending
//     shard order (commits serialise per shard; plain writers drain).
//  3. Pre-flight: the intent plus a commit mark must fit each shard's
//     redo log (ErrTxnTooLarge), projected bucket rewrites must fit the
//     record bound (ErrBucketOverflow), and the value logs must admit the
//     projected append volume (ErrNoSpace). Nothing is written yet, so
//     failure aborts with the store untouched.
//  4. Append the intent record to each shard's redo log. Each append is
//     durable when it returns (record flush, fence, tail publish).
//  5. Append a commit mark to each shard's redo log. THE FIRST DURABLE
//     MARK IS THE COMMIT POINT: recovery treats a mark on any shard as
//     committing the transaction on every shard. Marks are written only
//     after step 4 finished on all shards, so a crash image holding a
//     mark always holds every intent.
//  6. Apply the write-set to the trees through the same code paths plain
//     writes use (idempotent final-value puts and deletes).
//  7. Truncate each shard's redo log and unlock.
//
// Recovery (Reopen → recoverTxns) scans every shard's log: intents whose
// transaction has a mark anywhere are replayed — a replay of records a
// crashed commit already applied is harmless because intents carry final
// values — and everything else is discarded. Recovery replays EVERY
// shard before truncating ANY log: each replayed write is durable
// through the ordinary crash-consistent single-key paths, so a crash
// mid-replay just replays again at the next reopen, while the logs — and
// with them whichever single shard may hold a transaction's only commit
// mark — stay intact until no shard needs them. At every consistent
// crash cut, of the commit or of recovery itself, this yields
// all-or-nothing: before the first mark no effect is visible (applies
// had not started) and the intents are discarded; after it, replay
// completes the transaction.
//
// A Commit that fails AFTER its commit point (a mark-append or apply
// error — not a crash) returns ErrTxnIncomplete and latches the store
// read-only: the committed transaction's redo records are still in the
// shard logs awaiting replay, and any further commit's cleanup would
// truncate them — durably losing a committed transaction — while any
// further plain write could be silently superseded when Reopen replays
// them. Until the pools are reopened, every mutation fails with
// ErrReopenRequired; reads keep working.
//
// Isolation is write-side only: commits serialise against each other and
// against plain writers per shard (applyMu), but readers never block —
// a concurrent Get/Scan may observe a subset of a committing
// transaction's writes, matching the store's read-uncommitted scans.

// Errors of the transaction API.
var (
	// ErrTxnDone reports an operation on a transaction that was already
	// committed or rolled back.
	ErrTxnDone = errors.New("store: transaction already finished")
	// ErrTxnTooLarge reports a Commit whose encoded write-set for one
	// shard exceeds the shard's redo-log capacity (Options.TxnLogCap).
	// Nothing was written; the transaction may be retried in pieces.
	ErrTxnTooLarge = errors.New("store: transaction exceeds redo-log capacity")
	// ErrTxnIncomplete reports a Commit that reached its commit point but
	// failed while applying to the trees. The transaction IS committed:
	// its redo log survives, and the next Reopen replays it to
	// completion. The store latches read-only — every further mutation,
	// plain or transactional, fails with ErrReopenRequired — so nothing
	// can truncate or overtake the pending replay before the reopen.
	ErrTxnIncomplete = errors.New("store: committed transaction applied incompletely (redo log retained for reopen)")
	// ErrReopenRequired reports a mutation refused because an earlier
	// Commit on this store failed after its commit point
	// (ErrTxnIncomplete): the committed transaction's redo records are
	// still in the shard logs awaiting replay, so the store only serves
	// reads. A further commit would truncate those records as part of
	// its own cleanup — durably losing the committed transaction — and a
	// further plain write could be silently superseded when Reopen
	// replays them. Reopen the pools to replay the pending transaction
	// and clear the condition.
	ErrReopenRequired = errors.New("store: committed transaction awaits replay; store is read-only until reopened")
)

// Intent payload encoding: a flat sequence of ops, each
//
//	kind 1 (put):      0x01, key u64, val u64
//	kind 2 (delete):   0x02, key u64
//	kind 3 (put-kv):   0x03, klen u16, vlen u32, key bytes, val bytes
//	kind 4 (delete-kv):0x04, klen u16, key bytes
//
// all little-endian. Decoding is fail-closed: exact consumption, length
// caps, no partial results (see walkTxnPayload).
const (
	txnOpPut    = 1
	txnOpDelete = 2
	txnOpPutKV  = 3
	txnOpDelKV  = 4
)

// txnOp is one decoded write-set operation. Fixed-width ops use key/val;
// byte-key ops use bkey/bval.
type txnOp struct {
	kind byte
	key  uint64
	val  uint64
	bkey []byte
	bval []byte
}

// appendTxnOp appends op's encoding to dst.
func appendTxnOp(dst []byte, op txnOp) []byte {
	var w [8]byte
	dst = append(dst, op.kind)
	switch op.kind {
	case txnOpPut:
		binary.LittleEndian.PutUint64(w[:], op.key)
		dst = append(dst, w[:]...)
		binary.LittleEndian.PutUint64(w[:], op.val)
		dst = append(dst, w[:]...)
	case txnOpDelete:
		binary.LittleEndian.PutUint64(w[:], op.key)
		dst = append(dst, w[:]...)
	case txnOpPutKV:
		binary.LittleEndian.PutUint16(w[:2], uint16(len(op.bkey)))
		binary.LittleEndian.PutUint32(w[2:6], uint32(len(op.bval)))
		dst = append(dst, w[:6]...)
		dst = append(dst, op.bkey...)
		dst = append(dst, op.bval...)
	case txnOpDelKV:
		binary.LittleEndian.PutUint16(w[:2], uint16(len(op.bkey)))
		dst = append(dst, w[:2]...)
		dst = append(dst, op.bkey...)
	}
	return dst
}

// errBadTxnPayload is the internal decode failure; recovery wraps it.
var errBadTxnPayload = errors.New("malformed transaction intent payload")

// walkTxnPayload decodes an intent payload, calling visit per op. It is
// fail-closed like parseBucket: the payload must consume exactly, kinds
// must be known, byte keys must be 1..MaxKey bytes and values at most
// MaxKVValue — anything else is errBadTxnPayload, never a partial parse.
// The bkey/bval slices alias b.
func walkTxnPayload(b []byte, visit func(op txnOp) bool) error {
	for off := 0; off < len(b); {
		kind := b[off]
		off++
		switch kind {
		case txnOpPut:
			if len(b)-off < 16 {
				return errBadTxnPayload
			}
			op := txnOp{kind: kind,
				key: binary.LittleEndian.Uint64(b[off:]),
				val: binary.LittleEndian.Uint64(b[off+8:])}
			off += 16
			if !visit(op) {
				return nil
			}
		case txnOpDelete:
			if len(b)-off < 8 {
				return errBadTxnPayload
			}
			op := txnOp{kind: kind, key: binary.LittleEndian.Uint64(b[off:])}
			off += 8
			if !visit(op) {
				return nil
			}
		case txnOpPutKV:
			if len(b)-off < 6 {
				return errBadTxnPayload
			}
			kl := int(binary.LittleEndian.Uint16(b[off:]))
			vl := int(binary.LittleEndian.Uint32(b[off+2:]))
			off += 6
			if kl < 1 || kl > MaxKey || vl > MaxKVValue || kl+vl > len(b)-off {
				return errBadTxnPayload
			}
			op := txnOp{kind: kind,
				bkey: b[off : off+kl : off+kl],
				bval: b[off+kl : off+kl+vl : off+kl+vl]}
			off += kl + vl
			if !visit(op) {
				return nil
			}
		case txnOpDelKV:
			if len(b)-off < 2 {
				return errBadTxnPayload
			}
			kl := int(binary.LittleEndian.Uint16(b[off:]))
			off += 2
			if kl < 1 || kl > MaxKey || kl > len(b)-off {
				return errBadTxnPayload
			}
			op := txnOp{kind: kind, bkey: b[off : off+kl : off+kl]}
			off += kl
			if !visit(op) {
				return nil
			}
		default:
			return errBadTxnPayload
		}
	}
	return nil
}

// decodeTxnOps decodes a full intent payload (fail-closed).
func decodeTxnOps(b []byte) ([]txnOp, error) {
	var ops []txnOp
	if err := walkTxnPayload(b, func(op txnOp) bool {
		ops = append(ops, op)
		return true
	}); err != nil {
		return nil, err
	}
	return ops, nil
}

// txnWrite is a buffered fixed-width write; txnKVWrite a buffered
// byte-key write. del=true buffers a delete.
type txnWrite struct {
	val uint64
	del bool
}
type txnKVWrite struct {
	val []byte
	del bool
}

// Txn is one in-flight transaction: a volatile write-set over a Session.
// Use it from the session's goroutine only. Writes buffer locally with
// read-your-writes; nothing touches the store until Commit. A Txn is
// single-use: after Commit or Rollback every method fails with ErrTxnDone.
type Txn struct {
	ss      *Session
	ownSess bool
	fixed   map[uint64]txnWrite
	kv      map[string]txnKVWrite
	done    bool
}

// Begin opens a transaction over this session. The session stays usable
// for plain operations while the transaction buffers (they see the store,
// not the write-set), but Commit must not race other operations on the
// same session — the session's single-goroutine contract already
// guarantees that.
func (ss *Session) Begin() *Txn {
	return &Txn{
		ss:    ss,
		fixed: make(map[uint64]txnWrite),
		kv:    make(map[string]txnKVWrite),
	}
}

// Begin opens a transaction on a dedicated internal session, for callers
// that do not manage Sessions themselves. Commit or Rollback releases the
// session; abandoning the Txn without either leaks its per-shard latency
// statistics until the store closes.
func (s *Store) Begin() *Txn {
	tx := s.NewSession().Begin()
	tx.ownSess = true
	return tx
}

// finish marks the transaction done and releases an owned session.
func (tx *Txn) finish() {
	tx.done = true
	if tx.ownSess {
		tx.ss.Close()
		tx.ownSess = false
	}
}

// Put buffers a fixed-width write of val under key.
func (tx *Txn) Put(key, val uint64) error {
	if tx.done {
		return ErrTxnDone
	}
	tx.fixed[key] = txnWrite{val: val}
	return nil
}

// Delete buffers a fixed-width delete of key.
func (tx *Txn) Delete(key uint64) error {
	if tx.done {
		return ErrTxnDone
	}
	tx.fixed[key] = txnWrite{del: true}
	return nil
}

// Get reads through the write-set: a buffered write or delete answers
// locally, anything else reads the store (read-committed — concurrent
// writers are visible).
func (tx *Txn) Get(key uint64) (uint64, bool, error) {
	if tx.done {
		return 0, false, ErrTxnDone
	}
	if w, ok := tx.fixed[key]; ok {
		if w.del {
			return 0, false, nil
		}
		return w.val, true, nil
	}
	return tx.ss.Get(key)
}

// PutKV buffers a byte-key write. Key and value are copied, so the caller
// may reuse its slices immediately. Size limits match Session.PutKV.
func (tx *Txn) PutKV(key, val []byte) error {
	if tx.done {
		return ErrTxnDone
	}
	if err := checkKey(key); err != nil {
		return err
	}
	if len(val) > MaxKVValue {
		return fmt.Errorf("%w: %d > %d bytes", ErrValueTooLarge, len(val), MaxKVValue)
	}
	tx.kv[string(key)] = txnKVWrite{val: append([]byte(nil), val...)}
	return nil
}

// DeleteKV buffers a byte-key delete.
func (tx *Txn) DeleteKV(key []byte) error {
	if tx.done {
		return ErrTxnDone
	}
	if err := checkKey(key); err != nil {
		return err
	}
	tx.kv[string(key)] = txnKVWrite{del: true}
	return nil
}

// GetKV reads a byte key through the write-set, falling back to the store.
func (tx *Txn) GetKV(key, dst []byte) ([]byte, bool, error) {
	if tx.done {
		return dst, false, ErrTxnDone
	}
	if w, ok := tx.kv[string(key)]; ok {
		if w.del {
			return dst, false, nil
		}
		return append(dst, w.val...), true, nil
	}
	return tx.ss.GetKV(key, dst)
}

// Pending returns the number of buffered writes (deletes included).
func (tx *Txn) Pending() int { return len(tx.fixed) + len(tx.kv) }

// Rollback discards the write-set. The store is untouched; a finished
// transaction rolls back as a no-op.
func (tx *Txn) Rollback() {
	if tx.done {
		return
	}
	tx.finish()
}

// Commit atomically applies the write-set, following the redo-log
// protocol in the package comment above. When it returns nil every write
// is durable and visible; on any error before the commit point the store
// is untouched (ErrTxnTooLarge, ErrNoSpace, ErrBucketOverflow, ErrClosed,
// or a validation error); ErrTxnIncomplete means committed-but-unapplied
// (reopen to finish). An empty transaction commits as a no-op.
func (tx *Txn) Commit() error {
	if tx.done {
		return ErrTxnDone
	}
	ss := tx.ss
	defer tx.finish()
	if len(tx.fixed)+len(tx.kv) == 0 {
		return nil
	}
	s := ss.s
	if !s.acquire() {
		return ErrClosed
	}
	if ss.sampleOp() {
		defer s.met.txnCommit.RecordSince(time.Now())
	}
	parts, ops, payloads := tx.plan()
	staleShards, err := tx.commitLocked(parts, ops, payloads)
	s.release()
	for _, i := range staleShards {
		ss.maybeGC(i)
	}
	return err
}

// plan groups the write-set by shard in deterministic order (fixed keys
// ascending, then byte keys ascending) and encodes one intent payload per
// participating shard. parts lists participating shards ascending.
func (tx *Txn) plan() (parts []int, ops [][]txnOp, payloads [][]byte) {
	s := tx.ss.s
	n := len(s.shards)
	ops = make([][]txnOp, n)
	payloads = make([][]byte, n)
	fixedKeys := make([]uint64, 0, len(tx.fixed))
	for k := range tx.fixed {
		fixedKeys = append(fixedKeys, k)
	}
	sort.Slice(fixedKeys, func(a, b int) bool { return fixedKeys[a] < fixedKeys[b] })
	for _, k := range fixedKeys {
		w := tx.fixed[k]
		i := s.ShardFor(k)
		op := txnOp{kind: txnOpPut, key: k, val: w.val}
		if w.del {
			op = txnOp{kind: txnOpDelete, key: k}
		}
		ops[i] = append(ops[i], op)
	}
	kvKeys := make([]string, 0, len(tx.kv))
	for k := range tx.kv {
		kvKeys = append(kvKeys, k)
	}
	sort.Strings(kvKeys)
	for _, k := range kvKeys {
		w := tx.kv[k]
		bk := []byte(k)
		i := s.ShardForKey(bk)
		op := txnOp{kind: txnOpPutKV, bkey: bk, bval: w.val}
		if w.del {
			op = txnOp{kind: txnOpDelKV, bkey: bk}
		}
		ops[i] = append(ops[i], op)
	}
	for i := 0; i < n; i++ {
		if len(ops[i]) == 0 {
			continue
		}
		parts = append(parts, i)
		for _, op := range ops[i] {
			payloads[i] = appendTxnOp(payloads[i], op)
		}
	}
	return parts, ops, payloads
}

// step invokes the consistent-cut test hook, if armed.
func (s *Store) step() {
	if s.commitStep != nil {
		s.commitStep()
	}
}

// commitLocked runs the locked portion of Commit and returns the shards
// whose displaced records turned stale (the caller runs maybeGC after the
// locks are down). See the protocol comment at the top of the file.
func (tx *Txn) commitLocked(parts []int, ops [][]txnOp, payloads [][]byte) (staleShards []int, err error) {
	ss := tx.ss
	s := ss.s
	for _, i := range parts {
		s.shards[i].gc.applyMu.Lock()
	}
	defer func() {
		for _, i := range parts {
			s.shards[i].gc.applyMu.Unlock()
		}
	}()

	// Pre-flight: everything that can refuse must refuse before the
	// first byte hits a redo log, so failure is a clean abort. With
	// applyMu held exclusively no other writer can move the projections.
	// Checked under the locks so a commit racing the failing one cannot
	// slip past before the latch is set.
	if s.txnFailed.Load() {
		return nil, ErrReopenRequired
	}
	for _, i := range parts {
		tl := s.shards[i].tl
		if n := tl.Len(); n != 0 {
			// A non-empty redo log at commit entry means a committed
			// transaction's records still await replay (its apply or
			// truncation never finished). Never truncate them — the
			// abort paths below Truncate — so latch and refuse until
			// the store is reopened.
			s.txnFailed.Store(true)
			return nil, fmt.Errorf("%w (shard %d redo log holds %d bytes)", ErrReopenRequired, i, n)
		}
		if txnlog.RecordSize(len(payloads[i]))+txnlog.RecordSize(0) > tl.Capacity() {
			return nil, fmt.Errorf("%w: %d bytes of intents for shard %d, log capacity %d",
				ErrTxnTooLarge, len(payloads[i]), i, tl.Capacity())
		}
		if err := ss.admitTxnOps(i, ops[i]); err != nil {
			return nil, err
		}
	}

	id := s.txnSeq.Add(1)
	// Intents: each append is durable on return, so once the loop
	// finishes every shard's intent is on stable media — the marks below
	// can never outrun an intent into a crash image.
	for n, i := range parts {
		if aerr := s.shards[i].tl.Append(ss.ths[i], id, txnlog.KindIntent, payloads[i]); aerr != nil {
			for _, j := range parts[:n] {
				s.shards[j].tl.Truncate(ss.ths[j])
			}
			return nil, fmt.Errorf("store: txn intent append on shard %d: %w", i, aerr)
		}
		s.step()
	}
	// Commit marks: the first durable mark commits the transaction
	// everywhere.
	for n, i := range parts {
		if aerr := s.shards[i].tl.Append(ss.ths[i], id, txnlog.KindCommit, nil); aerr != nil {
			if n == 0 {
				// No mark durable yet: still abortable.
				for _, j := range parts {
					s.shards[j].tl.Truncate(ss.ths[j])
				}
				return nil, fmt.Errorf("store: txn commit mark on shard %d: %w", i, aerr)
			}
			s.txnFailed.Store(true)
			return nil, fmt.Errorf("%w: mark append on shard %d: %v", ErrTxnIncomplete, i, aerr)
		}
		s.step()
	}
	// Apply through the same paths plain writes use.
	for _, i := range parts {
		var aerr error
		var stale bool
		if s.applyFault != nil {
			aerr = s.applyFault(i)
		}
		if aerr == nil {
			stale, aerr = ss.applyTxnOps(i, ops[i])
		}
		if stale {
			staleShards = append(staleShards, i)
		}
		if aerr != nil {
			// Past the commit point with the apply unfinished: latch the
			// store read-only (see ErrReopenRequired) so the surviving
			// redo records reach the next Reopen intact.
			s.txnFailed.Store(true)
			return staleShards, fmt.Errorf("%w: apply on shard %d: %v", ErrTxnIncomplete, i, aerr)
		}
		s.step()
	}
	// The transaction is fully applied; drop the redo records.
	for _, i := range parts {
		s.shards[i].tl.Truncate(ss.ths[i])
		s.step()
	}
	return staleShards, nil
}

// admitTxnOps pre-admits shard i's byte-key rewrites: every touched
// prefix must currently hold a valid bucket (or nothing), projected
// bucket images must fit the record bound, and the value log must admit
// the projected append volume (with one inline compaction attempt, like
// admitKV). With applyMu held exclusively only GC can move words, and
// relocation preserves content and sizes.
func (ss *Session) admitTxnOps(i int, ops []txnOp) error {
	need := 0
	for _, op := range ops {
		switch op.kind {
		case txnOpPutKV:
			p := PackPrefix(op.bkey)
			cur, err := ss.projectBucket(i, p)
			if err != nil {
				return err
			}
			proj := cur + kvEntryHdr + len(op.bkey) + len(op.bval)
			if proj > maxBucket {
				return fmt.Errorf("%w: prefix %#x projected at %d bytes", ErrBucketOverflow, p, proj)
			}
			need += proj
		case txnOpDelKV:
			// A delete rewrites the bucket minus one entry: bounded by
			// the current image.
			cur, err := ss.projectBucket(i, PackPrefix(op.bkey))
			if err != nil {
				return err
			}
			need += cur
		}
	}
	if need == 0 {
		return nil
	}
	return ss.admitKV(i, need)
}

// projectBucket resolves and validates prefix p's current bucket on
// shard i, returning its payload size (0 when the prefix is vacant).
// Unlike the plain paths' advisory Ref-length projection, a commit's
// pre-flight must fully validate here: a prefix whose word was written
// through a uint64 API — or any payload failing bucket parse — would
// otherwise surface only inside the apply phase, AFTER the commit point,
// turning a client-addressable state error (ErrNotKeyed) into
// ErrTxnIncomplete and a latched store.
func (ss *Session) projectBucket(i int, p uint64) (size int, err error) {
	sh := &ss.s.shards[i]
	sh.gc.varMu.RLock()
	defer sh.gc.varMu.RUnlock()
	b, ok, err := ss.readBucket(i, p, 0, false)
	if err != nil || !ok {
		return 0, err
	}
	if perr := parseBucket(p, b, func(_, _ []byte) bool { return true }); perr != nil {
		return 0, wrapKVReadErr(p, perr)
	}
	return len(b), nil
}

// applyTxnOps applies one shard's decoded ops in order through the plain
// write paths' inner helpers. The caller either holds the shard's applyMu
// exclusively (commit) or is the only mutator (recovery replay). Returns
// whether any displaced record turned stale.
func (ss *Session) applyTxnOps(i int, ops []txnOp) (stale bool, err error) {
	sh := &ss.s.shards[i]
	th := ss.ths[i]
	for _, op := range ops {
		switch op.kind {
		case txnOpPut:
			old, existed, xerr := index.Exchange(sh.ix, th, op.key, op.val)
			if xerr != nil {
				return stale, xerr
			}
			if existed && old != op.val && ss.retireWord(i, op.key, old) {
				stale = true
			}
		case txnOpDelete:
			old, existed := index.Remove(sh.ix, th, op.key)
			if existed && ss.retireWord(i, op.key, old) {
				stale = true
			}
		case txnOpPutKV:
			st, perr := ss.putKVApply(i, PackPrefix(op.bkey), op.bkey, op.bval)
			stale = stale || st
			if perr != nil {
				return stale, perr
			}
		case txnOpDelKV:
			_, st, derr := ss.deleteKVApply(i, PackPrefix(op.bkey), op.bkey)
			stale = stale || st
			if derr != nil {
				return stale, derr
			}
		}
	}
	return stale, nil
}

// recoverTxns settles the redo logs during Reopen: a commit mark on any
// shard commits its transaction everywhere, so every committed intent is
// replayed (in log order, idempotently — intents carry final values) and
// every unmarked intent is discarded. All logs end truncated. Runs after
// every shard's index, value log and accounting are rebuilt; replayed
// writes go through the ordinary apply paths and feed the ordinary
// accounting.
//
// Recovery itself must survive a crash, so it runs in three strict
// phases — decode everything, replay everything, then truncate
// everything. Replay-before-truncate is the load-bearing order: when the
// original crash landed in the mark-append window, ONE shard holds the
// transaction's only commit mark, and truncating that shard's log before
// the other shards replayed would erase the commit point — a second
// crash would then make the next recovery discard the other shards'
// intents as uncommitted, leaving a committed transaction half-applied.
// With the phase order, a crash anywhere during replay leaves every log
// (and every mark) intact for the next recovery to redo idempotently,
// and a crash anywhere during truncation is past the point where every
// shard's effects are durably applied, so surviving intents — marked or
// orphaned — describe writes the trees already hold.
func (s *Store) recoverTxns() error {
	ss := s.NewSession()
	defer ss.Close()
	committed := map[uint64]bool{}
	empty := true
	for i := range s.shards {
		s.shards[i].tl.Scan(ss.ths[i], func(r txnlog.Rec) bool {
			empty = false
			if r.Kind == txnlog.KindCommit {
				committed[r.ID] = true
			}
			return true
		})
	}
	if empty {
		return nil
	}
	// Phase 1: decode every shard's committed intents, fail-closed —
	// an undecodable payload aborts recovery before anything is applied
	// or truncated.
	ops := make([][]txnOp, len(s.shards))
	for i := range s.shards {
		var derr error
		s.shards[i].tl.Scan(ss.ths[i], func(r txnlog.Rec) bool {
			if r.Kind != txnlog.KindIntent || !committed[r.ID] {
				return true
			}
			decoded, err := decodeTxnOps(r.Payload)
			if err != nil {
				derr = err
				return false
			}
			ops[i] = append(ops[i], decoded...)
			return true
		})
		if derr != nil {
			return fmt.Errorf("store: shard %d txn recovery: %w", i, derr)
		}
	}
	// Phase 2: replay every shard. Each replayed write is durable through
	// the ordinary crash-consistent single-key paths before the loop
	// moves on; no log is touched yet.
	for i := range s.shards {
		if len(ops[i]) == 0 {
			continue
		}
		if _, err := ss.applyTxnOps(i, ops[i]); err != nil {
			return fmt.Errorf("store: shard %d txn replay: %w", i, err)
		}
		s.step()
	}
	// Phase 3: every shard's effects are durable; drop the logs.
	for i := range s.shards {
		s.shards[i].tl.Truncate(ss.ths[i])
		s.step()
	}
	return nil
}
