package client

import (
	"context"

	"repro/wire"
)

// KKV is one byte-string key / byte-string value pair, aliased from the
// wire layer.
type KKV = wire.KKV

// GetKVAsync issues a pipelined GetK (byte-string-keyed Get). key is
// captured by reference; the caller must not mutate it until the call
// completes.
func (c *Conn) GetKVAsync(key []byte) *Call {
	return c.start(wire.Request{Op: wire.OpGetK, KKey: key})
}

// GetKV returns the value stored under the byte-string key on the server.
// Keys are 1..wire.MaxKey bytes. The returned slice is owned by the
// caller. Reading a prefix written through the uint64-keyed APIs fails
// with a *RemoteError.
func (c *Conn) GetKV(key []byte) ([]byte, bool, error) {
	call := c.GetKVAsync(key)
	if err := call.Wait(); err != nil {
		return nil, false, err
	}
	return call.Resp.VVal, call.Resp.Status == wire.StatusOK, nil
}

// PutKVAsync issues a pipelined PutK (byte-string-keyed Put). key must be
// 1..wire.MaxKey bytes and val at most wire.MaxKValue; both are captured
// by reference, so the caller must not mutate them until the call
// completes.
func (c *Conn) PutKVAsync(key, val []byte) *Call {
	return c.start(wire.Request{Op: wire.OpPutK, KKey: key, VVal: val})
}

// PutKV stores val under the byte-string key on the server. When it
// returns nil the write is durable in the store's persistence model.
func (c *Conn) PutKV(key, val []byte) error {
	return c.PutKVAsync(key, val).Wait()
}

// DeleteKVAsync issues a pipelined DeleteK. key is captured by reference;
// the caller must not mutate it until the call completes.
func (c *Conn) DeleteKVAsync(key []byte) *Call {
	return c.start(wire.Request{Op: wire.OpDeleteK, KKey: key})
}

// DeleteKV removes the byte-string key on the server, reporting whether it
// was present.
func (c *Conn) DeleteKV(key []byte) (bool, error) {
	call := c.DeleteKVAsync(key)
	if err := call.Wait(); err != nil {
		return false, err
	}
	return call.Resp.Status == wire.StatusOK, nil
}

// ScanKVAsync issues a pipelined ScanK for lo <= key <= hi in bytewise
// order, returning at most max pairs (0 = the server's cap). A zero-length
// bound is unbounded on that side; bounds may be up to wire.MaxScanBound
// bytes so a pagination cursor lastKey+"\x00" always fits. Bounds are
// captured by reference until the call completes.
func (c *Conn) ScanKVAsync(lo, hi []byte, max int) *Call {
	m := uint32(0)
	if max > 0 && max <= wire.MaxPairs {
		m = uint32(max)
	}
	return c.start(wire.Request{Op: wire.OpScanK, KLo: lo, KHi: hi, Max: m})
}

// ScanKV returns byte-keyed pairs with lo <= key <= hi in ascending
// bytewise key order. Pages are bounded twice over — by max (or the
// server's pair cap) and by the response frame budget — so a result set at
// either bound may be a truncation; page with lo = lastKey+"\x00" (the
// immediate successor) to continue. The pairs' key and value slices share
// one allocation owned by the caller.
func (c *Conn) ScanKV(lo, hi []byte, max int) ([]KKV, error) {
	call := c.ScanKVAsync(lo, hi, max)
	if err := call.Wait(); err != nil {
		return nil, err
	}
	return call.Resp.KPairs, nil
}

// GetKVContext is GetKV bounded by ctx.
func (c *Conn) GetKVContext(ctx context.Context, key []byte) ([]byte, bool, error) {
	call := c.GetKVAsync(key)
	if err := c.wait(ctx, call); err != nil {
		return nil, false, err
	}
	return call.Resp.VVal, call.Resp.Status == wire.StatusOK, nil
}

// PutKVContext is PutKV bounded by ctx. A ctx cut leaves the write's
// outcome unknown: the request may still reach the server and be applied.
func (c *Conn) PutKVContext(ctx context.Context, key, val []byte) error {
	return c.wait(ctx, c.PutKVAsync(key, val))
}

// DeleteKVContext is DeleteKV bounded by ctx (same unknown-outcome caveat
// as PutKVContext).
func (c *Conn) DeleteKVContext(ctx context.Context, key []byte) (bool, error) {
	call := c.DeleteKVAsync(key)
	if err := c.wait(ctx, call); err != nil {
		return false, err
	}
	return call.Resp.Status == wire.StatusOK, nil
}

// ScanKVContext is ScanKV bounded by ctx.
func (c *Conn) ScanKVContext(ctx context.Context, lo, hi []byte, max int) ([]KKV, error) {
	call := c.ScanKVAsync(lo, hi, max)
	if err := c.wait(ctx, call); err != nil {
		return nil, err
	}
	return call.Resp.KPairs, nil
}

// GetKV round-robins a byte-keyed Get (retried if Options.RetryReads).
func (p *Pool) GetKV(key []byte) (val []byte, ok bool, err error) {
	err = p.retryRead(func(c *Conn) error {
		var e error
		val, ok, e = c.GetKV(key)
		return e
	})
	return val, ok, err
}

// PutKV round-robins a byte-keyed Put. Writes are never auto-retried.
func (p *Pool) PutKV(key, val []byte) error { return p.Conn().PutKV(key, val) }

// DeleteKV round-robins a byte-keyed Delete. Writes are never auto-retried.
func (p *Pool) DeleteKV(key []byte) (bool, error) { return p.Conn().DeleteKV(key) }

// ScanKV round-robins a byte-keyed Scan (retried if Options.RetryReads).
func (p *Pool) ScanKV(lo, hi []byte, max int) (kvs []KKV, err error) {
	err = p.retryRead(func(c *Conn) error {
		var e error
		kvs, e = c.ScanKV(lo, hi, max)
		return e
	})
	return kvs, err
}
