package client

import (
	"net"
	"testing"
	"time"

	"repro/wire"
)

// poolServer accepts any number of connections and answers every request
// with StatusOK until the listener is closed. It returns the accepted
// server-side conns through accepted so a test can kill one.
func poolServer(t *testing.T) (addr string, accepted <-chan net.Conn, closeLn func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan net.Conn, 16)
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			ch <- nc
			go func(nc net.Conn) {
				var scratch, out []byte
				for {
					body, err := wire.ReadFrame(nc, wire.MaxFrame, scratch)
					if err != nil {
						return
					}
					req, err := wire.DecodeRequest(body)
					if err != nil {
						return
					}
					scratch = body[:0]
					out = wire.MustAppendResponse(out[:0], &wire.Response{
						ID: req.ID, Op: req.Op, Status: wire.StatusOK,
					})
					if _, err := nc.Write(out); err != nil {
						return
					}
				}
			}(nc)
		}
	}()
	return ln.Addr().String(), ch, func() { ln.Close() }
}

// killOneConn closes the server side of one pooled connection and waits
// until the client notices, returning the dead *Conn. It snapshots the
// pool's conns up front: the background redial loop may swap the dead one
// out of its slot at any moment.
func killOneConn(t *testing.T, p *Pool, victim net.Conn) *Conn {
	t.Helper()
	originals := make([]*Conn, p.Size())
	for i := range p.conns {
		originals[i] = p.conns[i].Load()
	}
	victim.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no conn observed the reset")
		}
		for _, c := range originals {
			c.Put(1, 1) // drive traffic so the failure surfaces
			if c.Err() != nil {
				return c
			}
		}
	}
}

// TestPoolSkipsDeadConn pins the eviction fix: after one of a pool's
// connections fails terminally, Conn() must stop handing it out instead of
// round-robining callers onto it forever.
func TestPoolSkipsDeadConn(t *testing.T) {
	addr, accepted, closeLn := poolServer(t)
	defer closeLn()

	p, err := DialPool(addr, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	nc0 := <-accepted
	<-accepted
	dead := killOneConn(t, p, nc0)

	for i := 0; i < 20; i++ {
		c := p.Conn()
		if c == dead {
			t.Fatalf("Conn() returned the dead connection on pick %d", i)
		}
		if err := c.Put(uint64(i), uint64(i)); err != nil {
			t.Fatalf("healthy conn failed: %v", err)
		}
	}
}

// TestPoolAllDeadFallsBack verifies the all-dead fallback still returns a
// connection (whose calls surface the terminal error) rather than spinning
// or panicking. The listener is closed too, so the background redial loop
// cannot resurrect anything.
func TestPoolAllDeadFallsBack(t *testing.T) {
	addr, accepted, closeLn := poolServer(t)

	p, err := DialPool(addr, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	nc0, nc1 := <-accepted, <-accepted
	nc0.Close()
	nc1.Close()
	closeLn()

	deadline := time.Now().Add(5 * time.Second)
	for {
		allDead := true
		for i := range p.conns {
			c := p.conns[i].Load()
			c.Put(1, 1)
			if c.Err() == nil {
				allDead = false
			}
		}
		if allDead {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("conns never observed the reset")
		}
	}
	if c := p.Conn(); c == nil {
		t.Fatal("Conn() returned nil with every conn dead")
	}
	if err := p.Put(1, 1); err == nil {
		t.Fatal("Put on an all-dead pool unexpectedly succeeded")
	}
}

// TestPoolRedialsDeadConn: the background loop replaces a terminally-failed
// conn with a fresh dial, restoring the pool to full strength without any
// caller intervention.
func TestPoolRedialsDeadConn(t *testing.T) {
	addr, accepted, closeLn := poolServer(t)
	defer closeLn()

	p, err := DialPool(addr, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	nc0 := <-accepted
	<-accepted
	dead := killOneConn(t, p, nc0)

	deadline := time.Now().Add(10 * time.Second)
	for {
		healthy := 0
		for i := range p.conns {
			c := p.conns[i].Load()
			if c != dead && c.Err() == nil {
				healthy++
			}
		}
		if healthy == p.Size() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("redial loop never replaced the dead conn")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The replacement carries traffic.
	select {
	case <-accepted:
	case <-time.After(time.Second):
		t.Fatal("no redialed connection reached the server")
	}
	for i := 0; i < 10; i++ {
		if err := p.Put(uint64(i), 1); err != nil {
			t.Fatalf("Put on redialed pool: %v", err)
		}
	}
}

// TestRetryReadsSurviveConnDeath: with RetryReads set, a Get landing on a
// freshly-killed conn retries onto a healthy one and the caller never sees
// the transport error. (Writes get no such cover — Put may fail.)
func TestRetryReadsSurviveConnDeath(t *testing.T) {
	addr, accepted, closeLn := poolServer(t)
	defer closeLn()

	p, err := DialPool(addr, 2, Options{RetryReads: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	nc0 := <-accepted
	<-accepted
	nc0.Close() // kill one conn; do NOT wait for the client to notice

	for i := 0; i < 100; i++ {
		if _, _, err := p.Get(uint64(i)); err != nil {
			t.Fatalf("Get %d through RetryReads pool: %v", i, err)
		}
	}
}
