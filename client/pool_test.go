package client

import (
	"net"
	"testing"
	"time"

	"repro/wire"
)

// poolServer accepts any number of connections and answers every request
// with StatusOK until the listener is closed. It returns the accepted
// server-side conns through accepted so a test can kill one.
func poolServer(t *testing.T) (addr string, accepted <-chan net.Conn, closeLn func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan net.Conn, 16)
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			ch <- nc
			go func(nc net.Conn) {
				var scratch, out []byte
				for {
					body, err := wire.ReadFrame(nc, wire.MaxFrame, scratch)
					if err != nil {
						return
					}
					req, err := wire.DecodeRequest(body)
					if err != nil {
						return
					}
					scratch = body[:0]
					out = wire.MustAppendResponse(out[:0], &wire.Response{
						ID: req.ID, Op: req.Op, Status: wire.StatusOK,
					})
					if _, err := nc.Write(out); err != nil {
						return
					}
				}
			}(nc)
		}
	}()
	return ln.Addr().String(), ch, func() { ln.Close() }
}

// TestPoolSkipsDeadConn pins the eviction fix: after one of a pool's
// connections fails terminally, Conn() must stop handing it out instead of
// round-robining callers onto it forever.
func TestPoolSkipsDeadConn(t *testing.T) {
	addr, accepted, closeLn := poolServer(t)
	defer closeLn()

	p, err := DialPool(addr, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	nc0 := <-accepted
	<-accepted

	// Kill the first server-side socket abruptly and wait for its client
	// conn to notice (a call must fail to surface the terminal error).
	nc0.Close()
	deadline := time.Now().Add(5 * time.Second)
	dead := -1
	for dead < 0 {
		if time.Now().After(deadline) {
			t.Fatal("no conn observed the reset")
		}
		for i, c := range p.conns {
			c.Put(1, 1) // drive traffic so the failure surfaces
			if c.Err() != nil {
				dead = i
				break
			}
		}
	}

	for i := 0; i < 20; i++ {
		c := p.Conn()
		if c == p.conns[dead] {
			t.Fatalf("Conn() returned the dead connection on pick %d", i)
		}
		if err := c.Put(uint64(i), uint64(i)); err != nil {
			t.Fatalf("healthy conn failed: %v", err)
		}
	}
}

// TestPoolAllDeadFallsBack verifies the all-dead fallback still returns a
// connection (whose calls surface the terminal error) rather than spinning
// or panicking.
func TestPoolAllDeadFallsBack(t *testing.T) {
	addr, accepted, closeLn := poolServer(t)

	p, err := DialPool(addr, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	nc0, nc1 := <-accepted, <-accepted
	nc0.Close()
	nc1.Close()
	closeLn()

	deadline := time.Now().Add(5 * time.Second)
	for {
		allDead := true
		for _, c := range p.conns {
			c.Put(1, 1)
			if c.Err() == nil {
				allDead = false
			}
		}
		if allDead {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("conns never observed the reset")
		}
	}
	if c := p.Conn(); c == nil {
		t.Fatal("Conn() returned nil with every conn dead")
	}
	if err := p.Put(1, 1); err == nil {
		t.Fatal("Put on an all-dead pool unexpectedly succeeded")
	}
}
