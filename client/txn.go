package client

import (
	"context"

	"repro/wire"
)

// TxnOp is one transaction write-set operation, aliased from the wire
// layer.
type TxnOp = wire.TxnOp

// Txn is a client-side transaction builder: it accumulates a write-set
// locally — fixed-width and byte-string keyed puts and deletes — and
// ships the whole set in one OpTxn frame, which the server commits
// atomically (all-or-nothing, including across server crashes). The
// builder is plain data: not safe for concurrent use, reusable after a
// commit fails at validation, and free to build before a connection even
// exists. There are no transactional reads over the wire; read what you
// need first, then buffer the writes.
//
// Later buffered operations on the same key win over earlier ones at
// apply time, matching the store's write-set semantics.
type Txn struct {
	ops []TxnOp
}

// Put buffers a fixed-width write of val under key.
func (t *Txn) Put(key, val uint64) *Txn {
	t.ops = append(t.ops, TxnOp{Kind: wire.TxnPut, Key: key, Val: val})
	return t
}

// Delete buffers a fixed-width delete of key.
func (t *Txn) Delete(key uint64) *Txn {
	t.ops = append(t.ops, TxnOp{Kind: wire.TxnDelete, Key: key})
	return t
}

// PutKV buffers a byte-string-keyed write. key must be 1..wire.MaxKey
// bytes and val at most wire.MaxKValue; both are captured by reference,
// so the caller must not mutate them until the commit completes.
func (t *Txn) PutKV(key, val []byte) *Txn {
	t.ops = append(t.ops, TxnOp{Kind: wire.TxnPutK, KKey: key, VVal: val})
	return t
}

// DeleteKV buffers a byte-string-keyed delete (captured by reference
// until the commit completes).
func (t *Txn) DeleteKV(key []byte) *Txn {
	t.ops = append(t.ops, TxnOp{Kind: wire.TxnDeleteK, KKey: key})
	return t
}

// Len returns the number of buffered operations.
func (t *Txn) Len() int { return len(t.ops) }

// Reset empties the builder for reuse.
func (t *Txn) Reset() { t.ops = t.ops[:0] }

// CommitTxnAsync issues a pipelined transaction commit carrying tx's
// write-set. The write-set (including all byte slices) is captured by
// reference until the call completes. Size violations — more than
// wire.MaxTxnOps operations, an op with an out-of-range key or value, or
// a set that overflows one frame — fail the call locally without
// touching the connection.
func (c *Conn) CommitTxnAsync(tx *Txn) *Call {
	return c.start(wire.Request{Op: wire.OpTxn, TxnOps: tx.ops})
}

// CommitTxn commits tx's write-set atomically on the server: when it
// returns nil every operation is applied and durable; on a server-side
// refusal (*RemoteError — over-capacity write-set, out of space, store
// closed) none are. The one exception is ErrTxnIncomplete: the commit
// crossed its durable commit point but failed to finish applying, so the
// transaction IS committed — the server replays it to completion when its
// store reopens — just not yet visible. Treat it as success that must not
// be reissued, not as a refusal. A transport failure leaves the outcome
// unknown, like any other write. An empty transaction commits as a no-op
// without touching the connection.
func (c *Conn) CommitTxn(tx *Txn) error {
	if tx.Len() == 0 {
		return nil
	}
	return c.CommitTxnAsync(tx).Wait()
}

// CommitTxnContext is CommitTxn bounded by ctx. A ctx cut leaves the
// commit's outcome unknown: the request may still reach the server and
// be applied in full.
func (c *Conn) CommitTxnContext(ctx context.Context, tx *Txn) error {
	if tx.Len() == 0 {
		return nil
	}
	return c.wait(ctx, c.CommitTxnAsync(tx))
}

// CommitTxn round-robins a transaction commit. Like every write, commits
// are never auto-retried: a transport failure leaves the outcome
// unknown, an ErrTxnIncomplete outcome is already committed, and
// retrying either could apply the transaction twice.
func (p *Pool) CommitTxn(tx *Txn) error { return p.Conn().CommitTxn(tx) }
