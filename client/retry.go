package client

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"syscall"
	"time"

	"repro/wire"
)

// Errors classifying degraded-server and deadline failures. Both carry the
// server's message when one was attached; match with errors.Is.
var (
	// ErrBusy reports wire.StatusBusy: the server shed the request at
	// admission because its global in-flight cap was reached. Nothing was
	// executed — any request, including a write, is safe to retry after
	// backing off.
	ErrBusy = errors.New("client: server busy, retry later")
	// ErrNoSpace reports wire.StatusNoSpace: the store refused a write
	// because its persistent pool can no longer guarantee GC headroom.
	// Not retryable on a timer — the condition clears only after deletes
	// and compaction free space.
	ErrNoSpace = errors.New("client: store out of space on server")
	// ErrCallTimeout reports a call that outlived Options.CallTimeout.
	// The connection survives; the call's outcome on the server is
	// unknown.
	ErrCallTimeout = errors.New("client: call timed out")
	// ErrTxnIncomplete reports wire.StatusTxnIncomplete: a CommitTxn
	// crossed its durable commit point on the server but failed while
	// applying. The transaction IS committed — the server's store replays
	// it to completion when it reopens — but its writes may not be
	// visible until then, and the store refuses further writes in the
	// meantime. Never retry it: reissuing a committed write-set would
	// double-apply.
	ErrTxnIncomplete = errors.New("client: transaction committed but not yet applied; server store requires reopen")
)

// Retryable reports whether err is worth retrying — on a backoff for
// ErrBusy, or on a fresh (possibly redialed) connection for transport
// failures. The classification:
//
//   - ErrBusy: yes. The server explicitly invited a retry; it executed
//     nothing.
//   - ErrCallTimeout: yes, for idempotent operations. The outcome is
//     unknown, so a write may already be applied — which is exactly why
//     the automatic policy (Options.RetryReads) covers reads only.
//   - Connection failures (ErrConnClosed, resets, EOFs, net timeouts,
//     corrupt frames): yes. The conversation died, not the request; a
//     fresh connection gets a fresh verdict.
//   - ErrNoSpace, ErrStoreClosed, *RemoteError: no. These are the server
//     answering clearly; asking again changes nothing until an operator,
//     GC, or the application (deletes) intervenes.
//   - ErrTxnIncomplete: no, emphatically. The transaction is already
//     committed server-side and will apply at the next reopen; a retry
//     would queue the same write-set twice.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	switch {
	case errors.Is(err, ErrBusy), errors.Is(err, ErrCallTimeout), errors.Is(err, ErrConnClosed):
		return true
	case errors.Is(err, ErrNoSpace), errors.Is(err, ErrStoreClosed), errors.Is(err, ErrTxnIncomplete):
		return false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return false
	}
	// Transport-level: the terminal error a dying connection stamped onto
	// its calls. Corrupt frames count — the damage was on the wire, and a
	// reconnect gets a clean stream.
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, wire.ErrMalformed) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, syscall.ECONNREFUSED) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// backoff returns the pause before retry attempt (0-based): exponential
// from base, capped at max, with ±25% jitter so a fleet of clients kicked
// loose by the same fault does not reconverge in lockstep.
func backoff(attempt int, base, max time.Duration) time.Duration {
	d := base << uint(attempt)
	if d > max || d <= 0 { // <= 0: shift overflow
		d = max
	}
	jitter := time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
	return d + jitter
}
