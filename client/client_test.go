package client

import (
	"errors"
	"net"
	"testing"
	"time"

	"repro/wire"
)

// fakeServer accepts one connection and runs fn over it.
func fakeServer(t *testing.T, fn func(nc net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		fn(nc)
	}()
	return ln.Addr().String()
}

// echoStatus reads requests and answers each with the given status.
func echoStatus(status wire.Status, msg string) func(nc net.Conn) {
	return func(nc net.Conn) {
		var scratch, out []byte
		for {
			body, err := wire.ReadFrame(nc, wire.MaxFrame, scratch)
			if err != nil {
				return
			}
			req, err := wire.DecodeRequest(body)
			if err != nil {
				return
			}
			scratch = body[:0]
			out, _ = wire.AppendResponse(out[:0], &wire.Response{
				ID: req.ID, Op: req.Op, Status: status, Msg: msg,
			})
			if _, err := nc.Write(out); err != nil {
				return
			}
		}
	}
}

func TestRemoteErrorSurfaces(t *testing.T) {
	addr := fakeServer(t, echoStatus(wire.StatusErr, "arena exhausted"))
	c, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Put(1, 2)
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "arena exhausted" || re.Op != wire.OpPut {
		t.Fatalf("err = %v, want RemoteError{Put, arena exhausted}", err)
	}
}

func TestStoreClosedSurfaces(t *testing.T) {
	addr := fakeServer(t, echoStatus(wire.StatusClosed, "store: closed"))
	c, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Get(1); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("err = %v, want ErrStoreClosed", err)
	}
}

// TestTxnIncompleteSurfaces: StatusTxnIncomplete maps to the dedicated
// ErrTxnIncomplete sentinel — never a generic *RemoteError, and never
// retryable: the transaction is already committed server-side, so a
// reissue would double-apply it.
func TestTxnIncompleteSurfaces(t *testing.T) {
	addr := fakeServer(t, echoStatus(wire.StatusTxnIncomplete, "store: committed transaction applied incompletely"))
	c, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var tx Txn
	tx.Put(1, 2)
	err = c.CommitTxn(&tx)
	if !errors.Is(err, ErrTxnIncomplete) {
		t.Fatalf("err = %v, want ErrTxnIncomplete", err)
	}
	var re *RemoteError
	if errors.As(err, &re) {
		t.Fatalf("ErrTxnIncomplete degraded to RemoteError: %v", err)
	}
	if Retryable(err) {
		t.Fatal("committed-but-unapplied transaction classified retryable")
	}
}

// TestAbruptDisconnectFailsPending: when the server dies mid-pipeline,
// every outstanding Call completes with the transport error instead of
// hanging.
func TestAbruptDisconnectFailsPending(t *testing.T) {
	addr := fakeServer(t, func(nc net.Conn) {
		// Read one frame, then hang up with the response unsent.
		wire.ReadFrame(nc, wire.MaxFrame, nil)
	})
	c, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	calls := make([]*Call, 50)
	for i := range calls {
		calls[i] = c.PutAsync(uint64(i), uint64(i))
	}
	for i, call := range calls {
		select {
		case <-call.Done():
		case <-time.After(5 * time.Second):
			t.Fatalf("call %d still pending after disconnect", i)
		}
		if call.Err == nil {
			t.Fatalf("call %d succeeded with no server response", i)
		}
	}
	if c.Err() == nil {
		t.Fatal("connection reports no terminal error")
	}
	// New calls fail fast on the dead connection.
	if err := c.Put(9, 9); err == nil {
		t.Fatal("call on dead connection succeeded")
	}
}

// TestOversizedBatchFailsOnlyThatCall: an unencodable request must not
// take down the connection or any other in-flight call.
func TestOversizedBatchFailsOnlyThatCall(t *testing.T) {
	addr := fakeServer(t, echoStatus(wire.StatusOK, ""))
	c, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := c.PutBatchAsync(make([]KV, wire.MaxPairs+1))
	if err := big.Wait(); !errors.Is(err, wire.ErrTooManyKV) {
		t.Fatalf("oversized batch: %v, want ErrTooManyKV", err)
	}
	// The connection is still healthy.
	if err := c.Put(1, 2); err != nil {
		t.Fatalf("Put after oversized batch: %v", err)
	}
	// The chunking sync wrapper handles the same batch fine.
	if err := c.PutBatch(make([]KV, wire.MaxPairs+1)); err != nil {
		t.Fatalf("chunked PutBatch: %v", err)
	}
}

func TestCallsAfterCloseFail(t *testing.T) {
	addr := fakeServer(t, echoStatus(wire.StatusOK, ""))
	c, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(3, 4); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("Put after Close: %v, want ErrConnClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// A graceful local Close is not a connection failure.
	if err := c.Err(); err != nil {
		t.Fatalf("Err() after clean Close: %v", err)
	}
}

func TestDialFailure(t *testing.T) {
	// A listener we immediately close: dialing must error, not hang.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Dial(addr, Options{DialTimeout: 2 * time.Second}); err == nil {
		t.Fatal("Dial to closed listener succeeded")
	}
}
