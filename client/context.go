package client

import (
	"context"

	"repro/wire"
)

// wait blocks until call completes or ctx ends. A context cut abandons the
// call — it fails with ctx.Err() and its late response, if one ever
// arrives, is discarded — but the connection itself stays up, exactly like
// a CallTimeout expiry.
func (c *Conn) wait(ctx context.Context, call *Call) error {
	select {
	case <-call.Done():
		return call.Err
	case <-ctx.Done():
		c.failCall(call.id, ctx.Err())
		<-call.Done()
		return call.Err
	}
}

// GetContext is Get bounded by ctx.
func (c *Conn) GetContext(ctx context.Context, key uint64) (uint64, bool, error) {
	call := c.GetAsync(key)
	if err := c.wait(ctx, call); err != nil {
		return 0, false, err
	}
	return call.Resp.Val, call.Resp.Status == wire.StatusOK, nil
}

// PutContext is Put bounded by ctx. A ctx cut leaves the write's outcome
// unknown: the request may still reach the server and be applied.
func (c *Conn) PutContext(ctx context.Context, key, val uint64) error {
	return c.wait(ctx, c.PutAsync(key, val))
}

// DeleteContext is Delete bounded by ctx (same unknown-outcome caveat as
// PutContext).
func (c *Conn) DeleteContext(ctx context.Context, key uint64) (bool, error) {
	call := c.DeleteAsync(key)
	if err := c.wait(ctx, call); err != nil {
		return false, err
	}
	return call.Resp.Status == wire.StatusOK, nil
}

// ScanContext is Scan bounded by ctx.
func (c *Conn) ScanContext(ctx context.Context, lo, hi uint64, max int) ([]KV, error) {
	call := c.ScanAsync(lo, hi, max)
	if err := c.wait(ctx, call); err != nil {
		return nil, err
	}
	return call.Resp.Pairs, nil
}

// GetBytesContext is GetBytes bounded by ctx.
func (c *Conn) GetBytesContext(ctx context.Context, key uint64) ([]byte, bool, error) {
	call := c.GetBytesAsync(key)
	if err := c.wait(ctx, call); err != nil {
		return nil, false, err
	}
	return call.Resp.VVal, call.Resp.Status == wire.StatusOK, nil
}

// PutBytesContext is PutBytes bounded by ctx (same unknown-outcome caveat
// as PutContext).
func (c *Conn) PutBytesContext(ctx context.Context, key uint64, val []byte) error {
	return c.wait(ctx, c.PutBytesAsync(key, val))
}

// ScanBytesContext is ScanBytes bounded by ctx.
func (c *Conn) ScanBytesContext(ctx context.Context, lo, hi uint64, max int) ([]VKV, error) {
	call := c.ScanBytesAsync(lo, hi, max)
	if err := c.wait(ctx, call); err != nil {
		return nil, err
	}
	return call.Resp.VPairs, nil
}

// StatsContext is Stats bounded by ctx.
func (c *Conn) StatsContext(ctx context.Context) (wire.Stats, error) {
	call := c.StatsAsync()
	if err := c.wait(ctx, call); err != nil {
		return wire.Stats{}, err
	}
	return call.Resp.Stats, nil
}
