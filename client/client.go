// Package client is the Go client for a pmkv server (package server): one
// Conn is one TCP connection speaking the pmkv wire protocol with full
// pipelining — any number of requests in flight, responses matched back to
// their Calls by id — plus synchronous wrappers for the common case and a
// round-robin connection Pool for fan-out.
//
// A Conn is safe for concurrent use by any number of goroutines; the
// pipelining is what turns that concurrency into throughput, since nobody
// waits for anybody else's round trip.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/wire"
)

// KV is one key-value pair, aliased from the wire layer.
type KV = wire.KV

// VKV is one key / byte-string value pair, aliased from the wire layer.
type VKV = wire.VKV

// Errors surfaced by the client. Server-reported failures are *RemoteError.
var (
	// ErrConnClosed reports a call issued on (or cut short by) a closed
	// connection.
	ErrConnClosed = errors.New("client: connection closed")
	// ErrStoreClosed reports wire.StatusClosed: the server is up but its
	// store has been closed (it is draining for shutdown).
	ErrStoreClosed = errors.New("client: store closed on server")
)

// RemoteError carries a server-side failure message (wire.StatusErr).
type RemoteError struct {
	Op  wire.Op
	Msg string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("client: server error on %s: %s", e.Op, e.Msg)
}

// Options configures a Conn.
type Options struct {
	// DialTimeout bounds connection establishment. Default 5s.
	DialTimeout time.Duration
	// MaxFrame caps an incoming response frame. Default wire.MaxFrame.
	MaxFrame uint32
	// SendQueue is the number of requests that may sit between callers
	// and the socket writer before issuing blocks. It is also the
	// writer's coalescing window: everything queued when the writer
	// wakes goes out in one Write. Default 1024.
	SendQueue int
	// CallTimeout bounds each call from issue to response. When it
	// expires the call fails with ErrCallTimeout but the connection stays
	// up — the late response, if it ever arrives, is discarded. The
	// outcome of a timed-out write is unknown (it may have been applied);
	// only the caller can decide whether reissuing is safe. 0 disables.
	CallTimeout time.Duration
	// RetryReads opts a Pool into transparently retrying idempotent
	// operations (Get, GetBytes, GetKV, Scan, ScanBytes, ScanKV, Stats)
	// whose failure is Retryable, with exponential backoff across
	// (possibly redialed) connections. Writes are never auto-retried: a retried Put whose
	// first attempt was applied but unacknowledged would double-apply.
	RetryReads bool
	// Dial, when non-nil, replaces net.DialTimeout for connection
	// establishment — the hook fault-injection tests use to wrap the
	// transport (see internal/netfault).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
}

func (o *Options) fill() {
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.MaxFrame == 0 {
		o.MaxFrame = wire.MaxFrame
	}
	if o.SendQueue <= 0 {
		o.SendQueue = 1024
	}
}

// Call is one in-flight request. Wait (or Done + the fields) delivers the
// outcome: Err is nil on any well-formed server reply, including NotFound —
// inspect Resp.Status for that.
type Call struct {
	Op    wire.Op
	Resp  wire.Response
	Err   error
	id    uint64
	timer *time.Timer // CallTimeout timer; nil when timeouts are off
	done  chan struct{}
}

// Done is closed when the call completes.
func (c *Call) Done() <-chan struct{} { return c.done }

// Wait blocks until the call completes and returns its error.
func (c *Call) Wait() error {
	<-c.done
	return c.Err
}

// Conn is one pipelined client connection.
type Conn struct {
	nc   net.Conn
	opts Options

	sendCh chan wire.Request
	stop   chan struct{} // closed by terminate

	mu        sync.Mutex
	pending   map[uint64]*Call
	nextID    uint64
	closing   bool
	closeDone chan struct{} // closed when the first Close finishes
	termErr   error

	calls sync.WaitGroup // in-flight Calls
	loops sync.WaitGroup // reader + writer goroutines
}

// Dial connects to a pmkv server at addr ("host:port").
func Dial(addr string, opts Options) (*Conn, error) {
	opts.fill()
	dial := opts.Dial
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	nc, err := dial(addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &Conn{
		nc:        nc,
		opts:      opts,
		sendCh:    make(chan wire.Request, opts.SendQueue),
		stop:      make(chan struct{}),
		closeDone: make(chan struct{}),
		pending:   make(map[uint64]*Call),
	}
	c.loops.Add(2)
	go c.writeLoop()
	go c.readLoop()
	return c, nil
}

// start registers a Call and queues its request. It never blocks on the
// network round trip — only on the bounded send queue.
func (c *Conn) start(req wire.Request) *Call {
	call := &Call{Op: req.Op, done: make(chan struct{})}
	c.mu.Lock()
	if c.closing || c.termErr != nil {
		err := c.termErr
		c.mu.Unlock()
		if err == nil {
			err = ErrConnClosed
		}
		call.Err = err
		close(call.done)
		return call
	}
	c.nextID++
	req.ID = c.nextID
	call.id = req.ID
	c.pending[req.ID] = call
	c.calls.Add(1)
	if d := c.opts.CallTimeout; d > 0 {
		// Armed before the call is visible to any completion path (all of
		// them run under c.mu), so call.timer is immutable after this.
		call.timer = time.AfterFunc(d, func() {
			c.failCall(call.id, fmt.Errorf("%w: %s after %v", ErrCallTimeout, call.Op, d))
		})
	}
	c.mu.Unlock()
	select {
	case c.sendCh <- req:
	case <-c.stop:
		// terminate ran (or is running): it sweeps the pending map and
		// fails this call; nothing more to do here.
	}
	return call
}

// maxWriteSlab caps the bytes one writer wakeup coalesces into a single
// Write: deep enough to amortize the syscall across a pipelined burst,
// shallow enough to keep frames flowing while a huge queue drains.
const maxWriteSlab = 256 << 10

// writeLoop drains the send queue into a reused slab and ships each slab
// with one Write call: every request queued by the time the writer wakes
// rides the same syscall, so deep pipelining costs syscalls logarithmically
// rather than linearly.
func (c *Conn) writeLoop() {
	defer c.loops.Done()
	var slab []byte
	for {
		select {
		case req := <-c.sendCh:
			slab = c.appendReq(slab[:0], &req)
		fill:
			for len(slab) < maxWriteSlab {
				select {
				case req = <-c.sendCh:
					slab = c.appendReq(slab, &req)
				default:
					break fill
				}
			}
			if len(slab) == 0 {
				continue // everything in the burst failed to encode
			}
			if _, err := c.nc.Write(slab); err != nil {
				c.terminate(fmt.Errorf("client: write: %w", err))
				return
			}
		case <-c.stop:
			return
		}
	}
}

// appendReq encodes one request onto the slab. An unencodable request
// (e.g. an oversized batch) is that call's own failure, not the
// connection's: it is failed alone and the slab returned unchanged.
func (c *Conn) appendReq(slab []byte, req *wire.Request) []byte {
	out, err := wire.AppendRequest(slab, req)
	if err != nil {
		c.failCall(req.ID, err)
		return slab
	}
	return out
}

// readLoop decodes response frames and completes their Calls.
func (c *Conn) readLoop() {
	defer c.loops.Done()
	br := newBufReader(c.nc)
	var scratch []byte
	for {
		body, err := wire.ReadFrame(br, c.opts.MaxFrame, scratch)
		if err != nil {
			c.terminate(fmt.Errorf("client: read: %w", err))
			return
		}
		resp, err := wire.DecodeResponse(body)
		if err != nil {
			c.terminate(err)
			return
		}
		scratch = body[:0]
		c.mu.Lock()
		call := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if call == nil {
			// A response nothing waits for: either a duplicate or a
			// server bug. Ignoring it keeps the stream usable.
			continue
		}
		call.Resp = resp
		switch resp.Status {
		case wire.StatusErr:
			call.Err = &RemoteError{Op: resp.Op, Msg: resp.Msg}
		case wire.StatusClosed:
			call.Err = fmt.Errorf("%w: %s", ErrStoreClosed, resp.Msg)
		case wire.StatusBusy:
			call.Err = fmt.Errorf("%w: %s", ErrBusy, resp.Msg)
		case wire.StatusNoSpace:
			call.Err = fmt.Errorf("%w: %s", ErrNoSpace, resp.Msg)
		case wire.StatusTxnIncomplete:
			call.Err = fmt.Errorf("%w: %s", ErrTxnIncomplete, resp.Msg)
		}
		if call.timer != nil {
			call.timer.Stop()
		}
		close(call.done)
		c.calls.Done()
	}
}

// failCall completes one pending call with err (no-op if the call already
// completed or was swept by terminate).
func (c *Conn) failCall(id uint64, err error) {
	c.mu.Lock()
	call := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	if call == nil {
		return
	}
	if call.timer != nil {
		call.timer.Stop()
	}
	call.Err = err
	close(call.done)
	c.calls.Done()
}

// terminate tears the connection down once: it records the terminal error,
// stops both loops, closes the socket, and fails every pending Call.
func (c *Conn) terminate(err error) {
	c.mu.Lock()
	if c.termErr != nil {
		c.mu.Unlock()
		return
	}
	c.termErr = err
	pend := c.pending
	c.pending = make(map[uint64]*Call)
	close(c.stop)
	c.mu.Unlock()
	c.nc.Close()
	for _, call := range pend {
		if call.timer != nil {
			call.timer.Stop()
		}
		call.Err = err
		close(call.done)
		c.calls.Done()
	}
}

// Close drains the connection gracefully: new calls fail immediately,
// in-flight calls run to completion, then the socket closes. Concurrent
// and repeated Closes all wait for that same drain. Closing an
// already-failed connection returns nil (the failure already surfaced on
// its calls).
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closing {
		// Another Close owns the teardown; wait for it rather than
		// aborting the calls it is still draining.
		c.mu.Unlock()
		<-c.closeDone
		return nil
	}
	c.closing = true
	c.mu.Unlock()
	c.calls.Wait()
	c.terminate(ErrConnClosed)
	c.loops.Wait()
	close(c.closeDone)
	return nil
}

// Err returns the connection's terminal error, or nil while it is usable.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.termErr != nil && !errors.Is(c.termErr, ErrConnClosed) {
		return c.termErr
	}
	return nil
}

// GetAsync issues a pipelined Get.
func (c *Conn) GetAsync(key uint64) *Call {
	return c.start(wire.Request{Op: wire.OpGet, Key: key})
}

// Get returns the value stored under key on the server.
func (c *Conn) Get(key uint64) (uint64, bool, error) {
	call := c.GetAsync(key)
	if err := call.Wait(); err != nil {
		return 0, false, err
	}
	return call.Resp.Val, call.Resp.Status == wire.StatusOK, nil
}

// PutAsync issues a pipelined Put.
func (c *Conn) PutAsync(key, val uint64) *Call {
	return c.start(wire.Request{Op: wire.OpPut, Key: key, Val: val})
}

// Put stores val under key on the server. When Put returns nil the write is
// durable on the server (the store's per-operation persistence contract).
func (c *Conn) Put(key, val uint64) error {
	return c.PutAsync(key, val).Wait()
}

// DeleteAsync issues a pipelined Delete.
func (c *Conn) DeleteAsync(key uint64) *Call {
	return c.start(wire.Request{Op: wire.OpDelete, Key: key})
}

// Delete removes key on the server, reporting whether it was present.
func (c *Conn) Delete(key uint64) (bool, error) {
	call := c.DeleteAsync(key)
	if err := call.Wait(); err != nil {
		return false, err
	}
	return call.Resp.Status == wire.StatusOK, nil
}

// PutBatchAsync issues one pipelined PutBatch frame. len(pairs) must not
// exceed wire.MaxPairs; the synchronous PutBatch chunks automatically.
func (c *Conn) PutBatchAsync(pairs []KV) *Call {
	return c.start(wire.Request{Op: wire.OpPutBatch, Pairs: pairs})
}

// PutBatch stores all pairs, chunking across frames when the batch exceeds
// wire.MaxPairs. Chunks are pipelined, not transactional: each pair is
// individually atomic on the server, and on error a suffix of the batch may
// be unapplied.
func (c *Conn) PutBatch(pairs []KV) error {
	var calls []*Call
	for len(pairs) > 0 {
		n := min(len(pairs), wire.MaxPairs)
		calls = append(calls, c.PutBatchAsync(pairs[:n]))
		pairs = pairs[n:]
	}
	var first error
	for _, call := range calls {
		if err := call.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ScanAsync issues a pipelined Scan for lo <= key <= hi, returning at most
// max pairs (0 = the server's cap; never more than wire.MaxPairs).
func (c *Conn) ScanAsync(lo, hi uint64, max int) *Call {
	m := uint32(0)
	if max > 0 && max <= wire.MaxPairs {
		m = uint32(max)
	}
	return c.start(wire.Request{Op: wire.OpScan, Lo: lo, Hi: hi, Max: m})
}

// Scan returns pairs with lo <= key <= hi in ascending key order, truncated
// to max (or the server's cap when max is 0). A full result set exactly at
// the cap may be a truncation; page with lo = lastKey+1 to continue.
func (c *Conn) Scan(lo, hi uint64, max int) ([]KV, error) {
	call := c.ScanAsync(lo, hi, max)
	if err := call.Wait(); err != nil {
		return nil, err
	}
	return call.Resp.Pairs, nil
}

// GetBytesAsync issues a pipelined GetV (varlen Get).
func (c *Conn) GetBytesAsync(key uint64) *Call {
	return c.start(wire.Request{Op: wire.OpGetV, Key: key})
}

// GetBytes returns the byte-string value stored under key on the server.
// The returned slice is owned by the caller. Reading a key written through
// the fixed-width Put API fails with a *RemoteError.
func (c *Conn) GetBytes(key uint64) ([]byte, bool, error) {
	call := c.GetBytesAsync(key)
	if err := call.Wait(); err != nil {
		return nil, false, err
	}
	return call.Resp.VVal, call.Resp.Status == wire.StatusOK, nil
}

// PutBytesAsync issues a pipelined PutV (varlen Put). val must not exceed
// wire.MaxValue; it is captured by reference, so the caller must not
// mutate it until the call completes.
func (c *Conn) PutBytesAsync(key uint64, val []byte) *Call {
	return c.start(wire.Request{Op: wire.OpPutV, Key: key, VVal: val})
}

// PutBytes stores val as a byte-string value under key on the server. When
// it returns nil the value is durable in the store's persistence model.
func (c *Conn) PutBytes(key uint64, val []byte) error {
	return c.PutBytesAsync(key, val).Wait()
}

// ScanBytesAsync issues a pipelined ScanV for lo <= key <= hi, returning
// at most max pairs (0 = the server's cap).
func (c *Conn) ScanBytesAsync(lo, hi uint64, max int) *Call {
	m := uint32(0)
	if max > 0 && max <= wire.MaxPairs {
		m = uint32(max)
	}
	return c.start(wire.Request{Op: wire.OpScanV, Lo: lo, Hi: hi, Max: m})
}

// ScanBytes returns varlen pairs with lo <= key <= hi in ascending key
// order. Pages are bounded twice over — by max (or the server's pair cap)
// and by the response frame budget — so a result set at either bound may
// be a truncation; page with lo = lastKey+1 to continue. The pairs' value
// slices share one allocation owned by the caller.
func (c *Conn) ScanBytes(lo, hi uint64, max int) ([]VKV, error) {
	call := c.ScanBytesAsync(lo, hi, max)
	if err := call.Wait(); err != nil {
		return nil, err
	}
	return call.Resp.VPairs, nil
}

// StatsAsync issues a pipelined Stats request.
func (c *Conn) StatsAsync() *Call {
	return c.start(wire.Request{Op: wire.OpStats})
}

// Stats fetches the server's counter snapshot.
func (c *Conn) Stats() (wire.Stats, error) {
	call := c.StatsAsync()
	if err := call.Wait(); err != nil {
		return wire.Stats{}, err
	}
	return call.Resp.Stats, nil
}
