package client

import (
	"bufio"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/wire"
)

// ioBufSize sizes the per-connection buffered reader; large enough that a
// pipelined burst of responses coalesces into few read syscalls. (The
// write side batches into a slab instead — see Conn.writeLoop.)
const ioBufSize = 64 << 10

func newBufReader(r io.Reader) *bufio.Reader { return bufio.NewReaderSize(r, ioBufSize) }

// Pool is a fixed set of Conns to one server with round-robin dispatch.
// With many goroutines sharing a Pool, each connection carries a slice of
// the pipelined traffic, spreading both client and server per-connection
// work across cores.
//
// The Pool also owns connection lifecycle: a terminally-failed conn is
// skipped by Conn() immediately and replaced in the background by a redial
// loop with exponential backoff + jitter, so a transient server outage
// costs the affected calls, not the slot. With Options.RetryReads set,
// idempotent operations additionally retry across (fresh) connections when
// their failure is Retryable; writes never auto-retry.
type Pool struct {
	addr string
	opts Options

	conns []atomic.Pointer[Conn]
	next  atomic.Uint64

	stop     chan struct{}
	redialed sync.WaitGroup
}

// redial pacing: first retry almost immediately (a restarting server is
// usually back fast), then exponential out to a steady 2s probe.
const (
	redialBase = 50 * time.Millisecond
	redialMax  = 2 * time.Second
)

// DialPool opens n connections to addr. On any dial failure the already-
// opened connections are closed and the error returned.
func DialPool(addr string, n int, opts Options) (*Pool, error) {
	if n < 1 {
		n = 1
	}
	p := &Pool{
		addr:  addr,
		opts:  opts,
		conns: make([]atomic.Pointer[Conn], n),
		stop:  make(chan struct{}),
	}
	for i := range p.conns {
		c, err := Dial(addr, opts)
		if err != nil {
			for j := 0; j < i; j++ {
				p.conns[j].Load().Close()
			}
			return nil, err
		}
		p.conns[i].Store(c)
	}
	p.redialed.Add(1)
	go p.redialLoop()
	return p, nil
}

// Conn returns the next connection round-robin, skipping connections that
// have terminally failed (Err != nil): a dead conn instantly fails every
// call issued on it, so handing it out would turn one broken socket into a
// permanent error stripe across the workload. (The redial loop replaces
// the dead conn in the background.) If every connection is dead the
// round-robin pick is returned anyway — its terminal error is the most
// useful thing the caller can see. Callers needing request ordering should
// pin one Conn rather than going through the Pool.
func (p *Pool) Conn() *Conn {
	start := p.next.Add(1)
	n := uint64(len(p.conns))
	for i := uint64(0); i < n; i++ {
		if c := p.conns[(start+i)%n].Load(); c.Err() == nil {
			return c
		}
	}
	return p.conns[start%n].Load()
}

// redialLoop watches for terminally-failed connections and replaces them.
// The scan interval backs off exponentially (with jitter) while redials
// keep failing — a down server gets a 2s probe, not a hammer — and snaps
// back to the base interval the moment everything is healthy again.
func (p *Pool) redialLoop() {
	defer p.redialed.Done()
	attempt := 0
	for {
		select {
		case <-p.stop:
			return
		case <-time.After(backoff(attempt, redialBase, redialMax)):
		}
		allHealthy := true
		for i := range p.conns {
			old := p.conns[i].Load()
			if old.Err() == nil {
				continue
			}
			nc, err := Dial(p.addr, p.opts)
			if err != nil {
				allHealthy = false
				continue
			}
			p.conns[i].Store(nc)
			old.Close() // fast: its calls already failed with the terminal error
		}
		if allHealthy {
			attempt = 0
		} else if attempt < 10 {
			attempt++
		}
	}
}

// Size returns the number of connections.
func (p *Pool) Size() int { return len(p.conns) }

// Close stops the redial loop, then drains and closes every connection.
func (p *Pool) Close() error {
	close(p.stop)
	p.redialed.Wait()
	for i := range p.conns {
		p.conns[i].Load().Close()
	}
	return nil
}

// readAttempts bounds one RetryReads operation: the initial try plus three
// retries, ~35ms of backoff worst-case before the final attempt.
const readAttempts = 4

// retryRead runs op for idempotent calls, retrying per Options.RetryReads.
func (p *Pool) retryRead(op func(c *Conn) error) error {
	err := op(p.Conn())
	if err == nil || !p.opts.RetryReads || !Retryable(err) {
		return err
	}
	for a := 1; a < readAttempts; a++ {
		time.Sleep(backoff(a-1, 2*time.Millisecond, 50*time.Millisecond))
		if err = op(p.Conn()); err == nil || !Retryable(err) {
			return err
		}
	}
	return err
}

// Get round-robins a Get (retried if Options.RetryReads).
func (p *Pool) Get(key uint64) (v uint64, ok bool, err error) {
	err = p.retryRead(func(c *Conn) error {
		var e error
		v, ok, e = c.Get(key)
		return e
	})
	return v, ok, err
}

// Put round-robins a Put. Writes are never auto-retried.
func (p *Pool) Put(key, val uint64) error { return p.Conn().Put(key, val) }

// Delete round-robins a Delete. Writes are never auto-retried.
func (p *Pool) Delete(key uint64) (bool, error) { return p.Conn().Delete(key) }

// PutBatch round-robins a chunked PutBatch. Writes are never auto-retried.
func (p *Pool) PutBatch(pairs []KV) error { return p.Conn().PutBatch(pairs) }

// Scan round-robins a Scan (retried if Options.RetryReads).
func (p *Pool) Scan(lo, hi uint64, max int) (kvs []KV, err error) {
	err = p.retryRead(func(c *Conn) error {
		var e error
		kvs, e = c.Scan(lo, hi, max)
		return e
	})
	return kvs, err
}

// GetBytes round-robins a varlen Get (retried if Options.RetryReads).
func (p *Pool) GetBytes(key uint64) (val []byte, ok bool, err error) {
	err = p.retryRead(func(c *Conn) error {
		var e error
		val, ok, e = c.GetBytes(key)
		return e
	})
	return val, ok, err
}

// PutBytes round-robins a varlen Put. Writes are never auto-retried.
func (p *Pool) PutBytes(key uint64, val []byte) error { return p.Conn().PutBytes(key, val) }

// ScanBytes round-robins a varlen Scan (retried if Options.RetryReads).
func (p *Pool) ScanBytes(lo, hi uint64, max int) (kvs []VKV, err error) {
	err = p.retryRead(func(c *Conn) error {
		var e error
		kvs, e = c.ScanBytes(lo, hi, max)
		return e
	})
	return kvs, err
}

// Stats round-robins a Stats fetch (retried if Options.RetryReads).
func (p *Pool) Stats() (st wire.Stats, err error) {
	err = p.retryRead(func(c *Conn) error {
		var e error
		st, e = c.Stats()
		return e
	})
	return st, err
}
