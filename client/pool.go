package client

import (
	"bufio"
	"io"
	"sync/atomic"

	"repro/wire"
)

// ioBufSize sizes the per-connection buffered reader; large enough that a
// pipelined burst of responses coalesces into few read syscalls. (The
// write side batches into a slab instead — see Conn.writeLoop.)
const ioBufSize = 64 << 10

func newBufReader(r io.Reader) *bufio.Reader { return bufio.NewReaderSize(r, ioBufSize) }

// Pool is a fixed set of Conns to one server with round-robin dispatch.
// With many goroutines sharing a Pool, each connection carries a slice of
// the pipelined traffic, spreading both client and server per-connection
// work across cores.
type Pool struct {
	conns []*Conn
	next  atomic.Uint64
}

// DialPool opens n connections to addr. On any dial failure the already-
// opened connections are closed and the error returned.
func DialPool(addr string, n int, opts Options) (*Pool, error) {
	if n < 1 {
		n = 1
	}
	p := &Pool{conns: make([]*Conn, n)}
	for i := range p.conns {
		c, err := Dial(addr, opts)
		if err != nil {
			for _, open := range p.conns[:i] {
				open.Close()
			}
			return nil, err
		}
		p.conns[i] = c
	}
	return p, nil
}

// Conn returns the next connection round-robin, skipping connections that
// have terminally failed (Err != nil): a dead conn instantly fails every
// call issued on it, so handing it out would turn one broken socket into a
// permanent error stripe across the workload. If every connection is dead
// the round-robin pick is returned anyway — its terminal error is the most
// useful thing the caller can see. Callers needing request ordering should
// pin one Conn rather than going through the Pool.
func (p *Pool) Conn() *Conn {
	start := p.next.Add(1)
	n := uint64(len(p.conns))
	for i := uint64(0); i < n; i++ {
		if c := p.conns[(start+i)%n]; c.Err() == nil {
			return c
		}
	}
	return p.conns[start%n]
}

// Size returns the number of connections.
func (p *Pool) Size() int { return len(p.conns) }

// Close drains and closes every connection.
func (p *Pool) Close() error {
	for _, c := range p.conns {
		c.Close()
	}
	return nil
}

// Get round-robins a Get.
func (p *Pool) Get(key uint64) (uint64, bool, error) { return p.Conn().Get(key) }

// Put round-robins a Put.
func (p *Pool) Put(key, val uint64) error { return p.Conn().Put(key, val) }

// Delete round-robins a Delete.
func (p *Pool) Delete(key uint64) (bool, error) { return p.Conn().Delete(key) }

// PutBatch round-robins a chunked PutBatch.
func (p *Pool) PutBatch(pairs []KV) error { return p.Conn().PutBatch(pairs) }

// Scan round-robins a Scan.
func (p *Pool) Scan(lo, hi uint64, max int) ([]KV, error) { return p.Conn().Scan(lo, hi, max) }

// GetBytes round-robins a varlen Get.
func (p *Pool) GetBytes(key uint64) ([]byte, bool, error) { return p.Conn().GetBytes(key) }

// PutBytes round-robins a varlen Put.
func (p *Pool) PutBytes(key uint64, val []byte) error { return p.Conn().PutBytes(key, val) }

// ScanBytes round-robins a varlen Scan.
func (p *Pool) ScanBytes(lo, hi uint64, max int) ([]VKV, error) {
	return p.Conn().ScanBytes(lo, hi, max)
}

// Stats round-robins a Stats fetch.
func (p *Pool) Stats() (wire.Stats, error) { return p.Conn().Stats() }
