// Command crashtest runs a crash-injection campaign against the FAST+FAIR
// tree: it executes a random operation tape on a crash-tracked pool, then
// materialises legal post-crash images at random points under every crash
// mode, checking that (a) readers on the un-recovered image return correct
// results for all committed keys, (b) the in-flight operation is atomic,
// and (c) recovery restores full invariants. This is the repository's
// substitute for the paper's physical power-off experiment (§5.7).
//
// Usage:
//
//	crashtest [-ops 2000] [-trials 500] [-seed 1] [-nontso] [-v]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/pmem"
)

func main() {
	ops := flag.Int("ops", 2000, "operations in the logged tape")
	trials := flag.Int("trials", 500, "crash points to test")
	seed := flag.Int64("seed", 1, "rng seed")
	nontso := flag.Bool("nontso", false, "simulate a non-TSO (ARM-like) memory model")
	verbose := flag.Bool("v", false, "print each trial")
	flag.Parse()

	model := pmem.TSO
	if *nontso {
		model = pmem.NonTSO
	}
	opts := core.Options{NodeSize: 256}
	p := pmem.New(pmem.Config{Size: 1 << 30, TrackCrashes: true, Model: model})
	th := p.NewThread()
	tr, err := core.New(p, th, opts)
	check(err)

	rng := rand.New(rand.NewSource(*seed))
	type opRec struct {
		logPos int
		del    bool
		key    uint64
		val    uint64
	}
	var tape []opRec
	p.StartCrashLog()
	for i := 0; i < *ops; i++ {
		pos := p.Mark(int64(i))
		k := rng.Uint64() % uint64(*ops/4+1)
		if rng.Intn(4) == 0 {
			tape = append(tape, opRec{pos, true, k, 0})
			tr.Delete(th, k)
		} else {
			v := rng.Uint64()
			tape = append(tape, opRec{pos, false, k, v})
			check(tr.Insert(th, k, v))
		}
	}
	logLen := p.LogLen()
	fmt.Printf("tape: %d ops, %d logged events, model=%v\n", *ops, logLen, model)

	crashRng := rand.New(rand.NewSource(*seed + 1))
	modes := []pmem.CrashMode{pmem.CrashNone, pmem.CrashAll, pmem.CrashRandom}
	for trial := 0; trial < *trials; trial++ {
		point := crashRng.Intn(logLen + 1)
		mode := modes[trial%len(modes)]

		nDone := 0
		for nDone < len(tape) && tape[nDone].logPos <= point {
			nDone++
		}
		oracle := map[uint64]uint64{}
		var inKey uint64
		var inOldVal, inNewVal uint64
		var inOldOK, inNewOK, haveIn bool
		if nDone > 0 {
			for _, o := range tape[:nDone-1] {
				if o.del {
					delete(oracle, o.key)
				} else {
					oracle[o.key] = o.val
				}
			}
			last := tape[nDone-1]
			haveIn = true
			inKey = last.key
			inOldVal, inOldOK = oracle[last.key]
			inNewOK = !last.del
			inNewVal = last.val
			delete(oracle, last.key)
		}

		img := p.CrashImage(point, mode, crashRng)
		ith := img.NewThread()
		tr2, err := core.Open(img, ith, opts)
		check(err)

		verify := func(stage string) {
			for k, v := range oracle {
				got, ok := tr2.Get(ith, k)
				if !ok || got != v {
					die("trial %d point %d mode %d %s: Get(%d) = (%d,%v), want (%d,true)",
						trial, point, mode, stage, k, got, ok, v)
				}
			}
			if haveIn {
				got, ok := tr2.Get(ith, inKey)
				oldState := ok == inOldOK && (!ok || got == inOldVal)
				newState := ok == inNewOK && (!ok || got == inNewVal)
				if !oldState && !newState {
					die("trial %d point %d mode %d %s: in-flight key %d illegal state (%d,%v)",
						trial, point, mode, stage, inKey, got, ok)
				}
			}
		}
		verify("pre-recovery")
		check(tr2.Recover(ith))
		if err := tr2.CheckInvariants(ith); err != nil {
			die("trial %d point %d mode %d: post-recovery: %v", trial, point, mode, err)
		}
		verify("post-recovery")
		if *verbose {
			fmt.Printf("trial %4d: point=%7d mode=%d committed=%5d ok\n", trial, point, mode, len(oracle))
		}
	}
	fmt.Printf("PASS: %d crash trials (pre-recovery reads, atomicity, recovery invariants, idempotence)\n", *trials)
}

func check(err error) {
	if err != nil {
		die("%v", err)
	}
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "FAIL: "+format+"\n", args...)
	os.Exit(1)
}
