// Command doccheck validates the repository's markdown documentation so
// docs rot fails CI instead of readers.
//
// Usage:
//
//	doccheck FILE.md [FILE.md ...]
//
// For every `[text](target)` link in the given files it checks:
//
//   - relative file targets resolve to an existing file or directory
//     (relative to the markdown file's own location);
//   - `#anchor` fragments — in-file or on a relative target — match a
//     heading in the destination file, using GitHub's slug rules
//     (lowercase, spaces to dashes, punctuation dropped);
//   - http(s) targets are syntax-checked only (no network in CI).
//
// It exits nonzero listing every broken link. Code snippets in docs are
// kept honest separately: the examples/ programs are built and run by the
// same CI job.
package main

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links, skipping images. Nested brackets
// in the text are rare in these docs and not supported.
var linkRe = regexp.MustCompile(`(^|[^!])\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRe matches ATX headings.
var headingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*#*\s*$`)

// codeFenceRe strips fenced code blocks so links and headings inside
// them are not parsed.
var codeFenceRe = regexp.MustCompile("(?ms)^```.*?^```[ \t]*$")

// slug converts a heading to a GitHub-style anchor slug.
func slug(heading string) string {
	// Drop inline code/links markup, then non-alphanumerics.
	h := strings.ToLower(strings.TrimSpace(heading))
	h = regexp.MustCompile(`\[([^\]]*)\]\([^)]*\)`).ReplaceAllString(h, "$1")
	h = strings.ReplaceAll(h, "`", "")
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ', r == '-':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// anchorsOf returns the heading slugs of a markdown file.
func anchorsOf(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	text := codeFenceRe.ReplaceAllString(string(data), "")
	anchors := map[string]bool{}
	for _, m := range headingRe.FindAllStringSubmatch(text, -1) {
		anchors[slug(m[1])] = true
	}
	return anchors, nil
}

// checkFile validates every link in one markdown file, returning problem
// descriptions.
func checkFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	text := codeFenceRe.ReplaceAllString(string(data), "")
	var problems []string
	for _, m := range linkRe.FindAllStringSubmatch(text, -1) {
		target := m[2]
		switch {
		case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"):
			if _, err := url.Parse(target); err != nil {
				problems = append(problems, fmt.Sprintf("%s: bad URL %q: %v", path, target, err))
			}
			continue
		case strings.HasPrefix(target, "mailto:"):
			continue
		}
		file, frag, _ := strings.Cut(target, "#")
		dest := path
		if file != "" {
			dest = filepath.Join(filepath.Dir(path), file)
			if _, err := os.Stat(dest); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken link %q: %s does not exist", path, target, dest))
				continue
			}
		}
		if frag == "" {
			continue
		}
		if !strings.HasSuffix(dest, ".md") {
			continue // anchors into non-markdown targets are not checked
		}
		anchors, err := anchorsOf(dest)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: cannot read %s: %v", path, dest, err))
			continue
		}
		if !anchors[frag] {
			problems = append(problems, fmt.Sprintf("%s: broken anchor %q: no heading #%s in %s", path, target, frag, dest))
		}
	}
	return problems, nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck FILE.md [FILE.md ...]")
		os.Exit(2)
	}
	bad := 0
	for _, path := range os.Args[1:] {
		problems, err := checkFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		for _, p := range problems {
			fmt.Println(p)
			bad++
		}
	}
	if bad > 0 {
		fmt.Printf("doccheck: %d broken link(s)\n", bad)
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d file(s) clean\n", len(os.Args)-1)
}
