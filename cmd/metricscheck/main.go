// Command metricscheck fetches a Prometheus text-format metrics endpoint,
// validates that it parses (HELP/TYPE comments, sample syntax, histogram
// bucket monotonicity and +Inf/count agreement), and optionally checks
// that required metric families are present — CI's smoke test that the
// server's /metrics endpoint stays scrapeable.
//
// Usage:
//
//	metricscheck [-timeout 5s] <url> [required-family ...]
//
// Exit status 0 when the exposition lints and every required family is
// present; 1 otherwise, with the failures on stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/metrics"
)

func main() {
	timeout := flag.Duration("timeout", 5*time.Second, "HTTP fetch timeout")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: metricscheck [-timeout 5s] <url> [required-family ...]")
		os.Exit(2)
	}
	url := flag.Arg(0)

	cl := &http.Client{Timeout: *timeout}
	resp, err := cl.Get(url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricscheck: fetch %s: %v\n", url, err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "metricscheck: %s: status %s\n", url, resp.Status)
		os.Exit(1)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricscheck: read body: %v\n", err)
		os.Exit(1)
	}

	fams, err := metrics.LintText(body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricscheck: exposition does not lint: %v\n", err)
		os.Exit(1)
	}

	missing := 0
	for _, want := range flag.Args()[1:] {
		if !fams[want] {
			fmt.Fprintf(os.Stderr, "metricscheck: required family %q missing\n", want)
			missing++
		}
	}
	if missing > 0 {
		names := make([]string, 0, len(fams))
		for f := range fams {
			names = append(names, f)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "metricscheck: families present: %v\n", names)
		os.Exit(1)
	}
	fmt.Printf("metricscheck: %s ok — %d families, %d bytes\n", url, len(fams), len(body))
}
