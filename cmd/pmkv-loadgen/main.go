// Command pmkv-loadgen is a closed-loop load generator for pmkv-server: G
// goroutines issue synchronous requests over C pooled connections, so C <
// G pipelines requests on every connection while each goroutine still
// measures true request latency. It reports throughput and latency
// percentiles.
//
// Usage:
//
//	pmkv-loadgen [-addr localhost:7841] [-ops 500000] [-clients 32]
//	             [-conns 4] [-read 0.5] [-keys 1000000] [-preload 0]
//
// -clients 1 -conns 1 is the unpipelined baseline (one request per round
// trip); raising -clients while holding -conns shows what pipelining buys.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
)

func main() {
	addr := flag.String("addr", "localhost:7841", "server address")
	ops := flag.Int("ops", 500000, "total operations")
	clients := flag.Int("clients", 32, "closed-loop worker goroutines")
	conns := flag.Int("conns", 4, "pooled TCP connections")
	readFrac := flag.Float64("read", 0.5, "fraction of ops that are Gets")
	keys := flag.Uint64("keys", 1000000, "key space size")
	preload := flag.Int("preload", 0, "keys to PutBatch before timing (0 = keyspace/4)")
	flag.Parse()
	if *clients < 1 || *conns < 1 || *ops < 1 || *keys < 1 || *readFrac < 0 || *readFrac > 1 {
		flag.Usage()
		os.Exit(2)
	}

	pool, err := client.DialPool(*addr, *conns, client.Options{})
	if err != nil {
		log.Fatalf("dial %s: %v", *addr, err)
	}
	defer pool.Close()

	// Preload so Gets hit often even at low op counts.
	nPre := *preload
	if nPre == 0 {
		nPre = int(*keys / 4)
	}
	if nPre > 0 {
		rng := rand.New(rand.NewSource(1))
		batch := make([]client.KV, nPre)
		for i := range batch {
			k := rng.Uint64()%*keys + 1
			batch[i] = client.KV{Key: k, Val: k ^ 0xdead}
		}
		t0 := time.Now()
		if err := pool.PutBatch(batch); err != nil {
			log.Fatalf("preload: %v", err)
		}
		fmt.Printf("preloaded %d keys in %v\n", nPre, time.Since(t0).Round(time.Millisecond))
	}

	perG := *ops / *clients
	if perG == 0 {
		perG = 1 // fewer ops than clients: still do one op each
	}
	lats := make([][]time.Duration, *clients)
	var failed atomic.Uint64
	var wg sync.WaitGroup
	t0 := time.Now()
	for g := 0; g < *clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 100))
			c := pool.Conn() // pin a connection; many goroutines share each
			my := make([]time.Duration, 0, perG)
			for i := 0; i < perG; i++ {
				k := rng.Uint64()%*keys + 1
				start := time.Now()
				var err error
				if rng.Float64() < *readFrac {
					_, _, err = c.Get(k)
				} else {
					err = c.Put(k, k^0xbeef)
				}
				if err != nil {
					failed.Add(1)
					continue
				}
				my = append(my, time.Since(start))
			}
			lats[g] = my
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		log.Fatalf("no operation succeeded (%d failed)", failed.Load())
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	tput := float64(len(all)) / elapsed.Seconds()
	fmt.Printf("%d ops in %v: %.0f ops/s (%d failed)\n",
		len(all), elapsed.Round(time.Millisecond), tput, failed.Load())
	fmt.Printf("latency: p50 %v  p90 %v  p99 %v  p99.9 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(0.999).Round(time.Microsecond),
		all[len(all)-1].Round(time.Microsecond))
	fmt.Printf("config: %d clients over %d conns, %.0f%% reads, keyspace %d\n",
		*clients, *conns, *readFrac*100, *keys)

	if stats, err := pool.Stats(); err == nil {
		fmt.Printf("server: %d ops (%d errors), %d conns live, %d B in, %d B out\n",
			stats.Ops, stats.Errors, stats.ConnsLive, stats.BytesIn, stats.BytesOut)
	}
}
