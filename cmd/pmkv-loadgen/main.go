// Command pmkv-loadgen is a closed-loop load generator for pmkv-server: G
// goroutines issue requests over C pooled connections, each keeping a
// -pipeline deep window of async calls in flight, so the generator can
// drive the server's batched pipeline the way real hot-path clients do
// while still measuring true per-request latency (issue to completion).
// It reports throughput and latency percentiles — recorded into log-linear
// histograms (constant memory, ≤~3% relative error) rather than per-sample
// slices, so soak runs of any length are safe — alongside the server's own
// per-class p50/p99 from the Stats frame, separating wire time from
// server-side queue+execute time.
//
// Usage:
//
//	pmkv-loadgen [-addr localhost:7841] [-ops 500000] [-duration 0]
//	             [-clients 32] [-conns 4] [-pipeline 1] [-read 0.5]
//	             [-mix get=90,put=10] [-keys 1000000] [-preload 0]
//	             [-scanmax 100] [-valsize 0] [-call-timeout 0]
//	             [-memprofile heap.pprof]
//
// -clients 1 -conns 1 -pipeline 1 is the unpipelined baseline (one request
// per round trip); raising -pipeline shows what the async window buys on a
// single connection, raising -clients shows what connection sharing buys.
// With -duration set the run is time-bounded instead of ops-bounded
// (-ops is ignored), which is the right shape for soak runs and for
// comparing configurations at equal wall time.
//
// The workload is either the legacy -read get/put split or an explicit
// -mix of weighted operations ("get=90,put=10", also accepting delete and
// scan; weights need not sum to 100). Scans page -scanmax pairs from a
// random key upward, driving the server's pooled Scan response path.
//
// -valsize N switches the workload to the varlen-value ops: puts carry
// N-byte values (PutV), gets and scans read them back (GetV/ScanV), and
// reported throughput includes the value payload bytes. N must stay under
// wire.MaxValue. -valsize 0 (default) drives the fixed-width u64 ops.
//
// -keysize N switches the workload to the byte-string-keyed ops
// (PutK/GetK/DeleteK/ScanK): each key is N bytes (up to wire.MaxKey) with
// the key index packed into its leading bytes, so keys are distinct and
// bytewise order matches index order. Values carry -valsize bytes (minimum
// 8 when -valsize is 0). -keydist picks the key index distribution:
// uniform (default) or zipf (skewed toward low indices, exercising
// per-prefix bucket contention).
//
// -call-timeout puts a deadline on every request (client.Options
// CallTimeout), so a stalled or overloaded server fails calls instead of
// parking the generator. Failures are reported by class — busy (server
// shed the request past its -admit cap), nospace (store refused a varlen
// write), other — which makes the generator usable as an overload probe:
// run it against a small -admit server and the busy count is the shed
// traffic, with no other error class present.
//
// -memprofile writes a heap profile when the run finishes — the easy check
// that read-heavy serving stays allocation-quiet end to end.
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/metrics"
	"repro/wire"
)

// mixWeights is the parsed -mix flag: relative weights per opcode.
type mixWeights struct {
	get, put, delete, scan int
}

func (m mixWeights) total() int { return m.get + m.put + m.delete + m.scan }

// parseMix parses "get=90,put=10" style op weight lists.
func parseMix(s string) (mixWeights, error) {
	var m mixWeights
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("bad -mix element %q, want op=weight", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad -mix weight %q", val)
		}
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "get":
			m.get = w
		case "put":
			m.put = w
		case "delete", "del":
			m.delete = w
		case "scan":
			m.scan = w
		default:
			return m, fmt.Errorf("unknown -mix op %q (want get/put/delete/scan)", name)
		}
	}
	if m.total() == 0 {
		return m, fmt.Errorf("-mix %q has zero total weight", s)
	}
	return m, nil
}

// pick maps a roll in [0, total) to an opcode name.
func (m mixWeights) pick(roll int) string {
	if roll < m.get {
		return "get"
	}
	roll -= m.get
	if roll < m.put {
		return "put"
	}
	roll -= m.put
	if roll < m.delete {
		return "delete"
	}
	return "scan"
}

// pending is one in-flight async call with its issue time, so completion
// records true request latency even with a deep window.
type pending struct {
	call  *client.Call
	start time.Time
}

// makeKey builds the size-byte key for index idx: the index occupies the
// leading bytes big-endian (so bytewise key order matches index order and
// keys are distinct), the tail is deterministic padding. Each call
// allocates: async byte-key calls capture the key by reference, so
// in-flight windows must not share a buffer.
func makeKey(size int, idx uint64) []byte {
	var b8 [8]byte
	binary.BigEndian.PutUint64(b8[:], idx)
	key := make([]byte, 0, size)
	if size <= 8 {
		key = append(key, b8[8-size:]...)
	} else {
		key = append(key, b8[:]...)
		for len(key) < size {
			key = append(key, byte(idx)^byte(len(key)))
		}
	}
	return key
}

func main() {
	addr := flag.String("addr", "localhost:7841", "server address")
	ops := flag.Int("ops", 500000, "total operations (ignored when -duration is set)")
	duration := flag.Duration("duration", 0, "run for this long instead of a fixed op count")
	clients := flag.Int("clients", 32, "closed-loop worker goroutines")
	conns := flag.Int("conns", 4, "pooled TCP connections")
	pipeline := flag.Int("pipeline", 1, "async calls each worker keeps in flight (1 = synchronous)")
	readFrac := flag.Float64("read", 0.5, "fraction of ops that are Gets (ignored when -mix is set)")
	mixFlag := flag.String("mix", "", "weighted op mix, e.g. get=90,put=10 (ops: get, put, delete, scan)")
	keys := flag.Uint64("keys", 1000000, "key space size")
	preload := flag.Int("preload", 0, "keys to PutBatch before timing (0 = keyspace/4)")
	scanMax := flag.Int("scanmax", 100, "pairs per scan request in -mix scan ops")
	valSize := flag.Int("valsize", 0, "value bytes per op: 0 = fixed-width u64 ops, >0 = varlen ops (PutV/GetV/ScanV)")
	keySize := flag.Int("keysize", 0, "key bytes per op: 0 = u64 keys, >0 = byte-string ops (PutK/GetK/DeleteK/ScanK)")
	keyDist := flag.String("keydist", "uniform", "key index distribution: uniform or zipf")
	callTimeout := flag.Duration("call-timeout", 0, "per-request deadline; timed-out calls fail instead of blocking the run (0 = none)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()
	if *clients < 1 || *conns < 1 || *ops < 1 || *keys < 1 || *readFrac < 0 || *readFrac > 1 || *scanMax < 1 ||
		*pipeline < 1 || *duration < 0 || *valSize < 0 || *valSize > wire.MaxValue || *callTimeout < 0 ||
		*keySize < 0 || *keySize > wire.MaxKey || (*keyDist != "uniform" && *keyDist != "zipf") {
		flag.Usage()
		os.Exit(2)
	}
	if *keySize > 0 && *keySize < 8 {
		// Short keys bound the distinct-key count; clamp the keyspace so
		// the index always fits the key bytes.
		if max := uint64(1) << (8 * uint(*keySize)); *keys > max {
			*keys = max
		}
	}
	mix := mixWeights{get: int(*readFrac * 1000), put: 1000 - int(*readFrac*1000)}
	if *mixFlag != "" {
		var err error
		if mix, err = parseMix(*mixFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	pool, err := client.DialPool(*addr, *conns, client.Options{CallTimeout: *callTimeout})
	if err != nil {
		log.Fatalf("dial %s: %v", *addr, err)
	}
	defer pool.Close()

	// Preload so Gets hit often even at low op counts.
	nPre := *preload
	if nPre == 0 {
		nPre = int(*keys / 4)
	}
	if nPre > 0 {
		rng := rand.New(rand.NewSource(1))
		t0 := time.Now()
		if *keySize > 0 {
			// Byte-string keys: pipeline individual PutK frames.
			vs := *valSize
			if vs == 0 {
				vs = 8
			}
			val := make([]byte, vs)
			rng.Read(val)
			c := pool.Conn()
			calls := make([]*client.Call, 0, 1024)
			flush := func() {
				for _, call := range calls {
					if err := call.Wait(); err != nil {
						log.Fatalf("preload: %v", err)
					}
				}
				calls = calls[:0]
			}
			for i := 0; i < nPre; i++ {
				calls = append(calls, c.PutKVAsync(makeKey(*keySize, rng.Uint64()%*keys), val))
				if len(calls) == cap(calls) {
					flush()
				}
			}
			flush()
		} else if *valSize > 0 {
			// No varlen batch op: pipeline individual PutV frames.
			val := make([]byte, *valSize)
			rng.Read(val)
			c := pool.Conn()
			calls := make([]*client.Call, 0, 1024)
			flush := func() {
				for _, call := range calls {
					if err := call.Wait(); err != nil {
						log.Fatalf("preload: %v", err)
					}
				}
				calls = calls[:0]
			}
			for i := 0; i < nPre; i++ {
				calls = append(calls, c.PutBytesAsync(rng.Uint64()%*keys+1, val))
				if len(calls) == cap(calls) {
					flush()
				}
			}
			flush()
		} else {
			batch := make([]client.KV, nPre)
			for i := range batch {
				k := rng.Uint64()%*keys + 1
				batch[i] = client.KV{Key: k, Val: k ^ 0xdead}
			}
			if err := pool.PutBatch(batch); err != nil {
				log.Fatalf("preload: %v", err)
			}
		}
		fmt.Printf("preloaded %d keys in %v\n", nPre, time.Since(t0).Round(time.Millisecond))
	}

	perG := *ops / *clients
	if perG == 0 {
		perG = 1 // fewer ops than clients: still do one op each
	}
	var deadline time.Time
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	total := mix.total()
	// Latency is recorded into one log-linear histogram per worker (merged
	// after the run), so memory stays constant no matter how many ops a
	// soak run completes — no per-sample slices, no end-of-run sort.
	hists := make([]*metrics.Histogram, *clients)
	for g := range hists {
		hists[g] = metrics.NewHistogram()
	}
	// Failures are counted by class so an overload or space-exhaustion run
	// reports what actually happened, not just a number: busy = shed by the
	// server's admission cap, nospace = varlen write refused by the store's
	// space admission, other = transport faults, timeouts, remote errors.
	var busyErrs, nospaceErrs, otherErrs, scanned atomic.Uint64
	var wg sync.WaitGroup
	t0 := time.Now()
	for g := 0; g < *clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 100))
			c := pool.Conn() // pin a connection; many goroutines share each
			var val []byte
			if vs := *valSize; vs > 0 || *keySize > 0 {
				if vs == 0 {
					vs = 8
				}
				val = make([]byte, vs)
				rng.Read(val)
			}
			nextIdx := func() uint64 { return rng.Uint64() % *keys }
			if *keyDist == "zipf" {
				z := rand.NewZipf(rng, 1.1, 8, *keys-1)
				nextIdx = z.Uint64
			}
			h := hists[g]
			complete := func(p pending) {
				if err := p.call.Wait(); err != nil {
					switch {
					case errors.Is(err, client.ErrBusy):
						busyErrs.Add(1)
					case errors.Is(err, client.ErrNoSpace):
						nospaceErrs.Add(1)
					default:
						otherErrs.Add(1)
					}
					return
				}
				switch p.call.Op {
				case wire.OpScan:
					scanned.Add(uint64(len(p.call.Resp.Pairs)))
				case wire.OpScanV:
					scanned.Add(uint64(len(p.call.Resp.VPairs)))
				case wire.OpScanK:
					scanned.Add(uint64(len(p.call.Resp.KPairs)))
				}
				h.RecordSince(p.start)
			}
			window := make([]pending, 0, *pipeline)
			for i := 0; *duration > 0 || i < perG; i++ {
				idx := nextIdx()
				k := idx%*keys + 1
				op := mix.pick(rng.Intn(total))
				start := time.Now()
				if *duration > 0 && !start.Before(deadline) {
					break
				}
				var call *client.Call
				switch {
				case *keySize > 0 && op == "get":
					call = c.GetKVAsync(makeKey(*keySize, idx))
				case *keySize > 0 && op == "put":
					call = c.PutKVAsync(makeKey(*keySize, idx), val)
				case *keySize > 0 && op == "delete":
					call = c.DeleteKVAsync(makeKey(*keySize, idx))
				case *keySize > 0 && op == "scan":
					call = c.ScanKVAsync(makeKey(*keySize, idx), nil, *scanMax)
				case op == "get" && *valSize > 0:
					call = c.GetBytesAsync(k)
				case op == "get":
					call = c.GetAsync(k)
				case op == "put" && *valSize > 0:
					call = c.PutBytesAsync(k, val)
				case op == "put":
					call = c.PutAsync(k, k^0xbeef)
				case op == "delete":
					call = c.DeleteAsync(k)
				case op == "scan" && *valSize > 0:
					call = c.ScanBytesAsync(k, ^uint64(0), *scanMax)
				case op == "scan":
					call = c.ScanAsync(k, ^uint64(0), *scanMax)
				}
				window = append(window, pending{call, start})
				if len(window) >= *pipeline {
					complete(window[0])
					window = window[:copy(window, window[1:])]
				}
			}
			for _, p := range window {
				complete(p)
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	snap := hists[0].Snapshot()
	for _, h := range hists[1:] {
		snap.Merge(h.Snapshot())
	}
	done := snap.Count()
	failed := busyErrs.Load() + nospaceErrs.Load() + otherErrs.Load()
	if done == 0 {
		log.Fatalf("no operation succeeded (%d failed: %d busy, %d nospace, %d other)",
			failed, busyErrs.Load(), nospaceErrs.Load(), otherErrs.Load())
	}
	pct := func(p float64) time.Duration {
		return time.Duration(snap.Quantile(p))
	}
	tput := float64(done) / elapsed.Seconds()
	fmt.Printf("%d ops in %v: %.0f ops/s (%d failed)\n",
		done, elapsed.Round(time.Millisecond), tput, failed)
	if failed > 0 {
		fmt.Printf("failures: %d busy (shed), %d nospace, %d other\n",
			busyErrs.Load(), nospaceErrs.Load(), otherErrs.Load())
	}
	fmt.Printf("latency: p50 %v  p90 %v  p99 %v  p99.9 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(0.999).Round(time.Microsecond),
		time.Duration(snap.Max()).Round(time.Microsecond))
	if *mixFlag != "" {
		fmt.Printf("config: %d clients over %d conns, pipeline %d, mix %s, keyspace %d", *clients, *conns, *pipeline, *mixFlag, *keys)
		if mix.scan > 0 {
			fmt.Printf(", %d pairs scanned", scanned.Load())
		}
		if *valSize > 0 {
			fmt.Printf(", varlen %d B values", *valSize)
		}
		if *keySize > 0 {
			fmt.Printf(", %d B byte keys (%s)", *keySize, *keyDist)
		}
		fmt.Println()
	} else {
		fmt.Printf("config: %d clients over %d conns, pipeline %d, %.0f%% reads, keyspace %d", *clients, *conns, *pipeline, *readFrac*100, *keys)
		if *valSize > 0 {
			fmt.Printf(", varlen %d B values", *valSize)
		}
		if *keySize > 0 {
			fmt.Printf(", %d B byte keys (%s)", *keySize, *keyDist)
		}
		fmt.Println()
	}

	if stats, err := pool.Stats(); err == nil {
		fmt.Printf("server: %d ops (%d errors), %d conns live, %d B in, %d B out\n",
			stats.Ops, stats.Errors, stats.ConnsLive, stats.BytesIn, stats.BytesOut)
		// Server-side per-class percentiles (queue wait + execution, no
		// network or flush coalescing): the gap to the client-side numbers
		// above is wire time plus coalescing delay.
		sp := func(ns uint64) time.Duration {
			return time.Duration(ns).Round(time.Microsecond)
		}
		fmt.Printf("server latency p50/p99: read %v/%v  write %v/%v  scan %v/%v\n",
			sp(stats.ReadP50), sp(stats.ReadP99),
			sp(stats.WriteP50), sp(stats.WriteP99),
			sp(stats.ScanP50), sp(stats.ScanP99))
		if stats.VlogLive+stats.VlogGarbage+stats.VlogReclaimed > 0 {
			fmt.Printf("server value log: %d B live, %d B garbage, %d B reclaimed by GC\n",
				stats.VlogLive, stats.VlogGarbage, stats.VlogReclaimed)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		runtime.GC() // flush dead objects so the profile shows live state
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		f.Close()
		fmt.Printf("heap profile written to %s\n", *memprofile)
	}
}
