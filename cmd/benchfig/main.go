// Command benchfig regenerates the paper's figures as text tables.
//
// Usage:
//
//	benchfig [-n keys] [-threads 1,2,4,8] [-tx 2000] [-warehouses 1]
//	         [-json out.json] <figure>...
//
// Figures: fig3 fig4 fig5a fig5b fig5c fig5d fig6 tpcc fig7a fig7b fig7c flushes shards server server-scaling hotpath all
//
// The tpcc figure runs the transactional TPC-C port over the sharded
// store (FigTPCC); fig6 keeps the paper's index-level comparison.
//
// Default scales are reduced from the paper's 10M/50M keys so every figure
// regenerates in seconds to minutes; raise -n (and -tx) to approach
// paper-scale runs. Expected qualitative shapes are printed with each table
// and recorded in EXPERIMENTS.md.
//
// With -json, every produced table is also written to the given file as a
// machine-readable snapshot (title, header, rows, notes per table); the
// repository tracks `benchfig -json BENCH_hotpath.json hotpath` so the
// read-path trend survives across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/pmem"
	"repro/internal/tpcc"
)

func main() {
	n := flag.Int("n", 200000, "keys per run (paper: 1M-50M)")
	threadsFlag := flag.String("threads", "1,2,4,8", "thread counts for fig7")
	tx := flag.Int("tx", 2000, "transactions per TPC-C mix")
	warehouses := flag.Int("warehouses", 1, "TPC-C warehouses")
	jsonOut := flag.String("json", "", "also write the produced tables to this file as JSON")
	flag.Parse()

	var threads []int
	for _, s := range strings.Split(*threadsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "bad -threads value %q\n", s)
			os.Exit(2)
		}
		threads = append(threads, v)
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchfig [flags] fig3|fig4|fig5a|fig5b|fig5c|fig5d|fig6|tpcc|fig7a|fig7b|fig7c|flushes|shards|server|server-scaling|hotpath|all")
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = []string{"fig3", "fig4", "fig5a", "fig5b", "fig5c", "fig5d", "fig6", "tpcc", "fig7a", "fig7b", "fig7c", "flushes", "shards", "server", "server-scaling", "hotpath"}
	}

	var tables []*bench.Table
	for _, fig := range args {
		var tbl *bench.Table
		switch fig {
		case "fig3":
			tbl = bench.Fig3(*n)
		case "fig4":
			tbl = bench.Fig4(*n)
		case "fig5a":
			tbl = bench.Fig5a(*n)
		case "fig5b":
			tbl = bench.Fig5b(*n)
		case "fig5c":
			tbl = bench.Fig5c(*n)
		case "fig5d":
			tbl = bench.Fig5d(*n)
		case "fig6":
			tbl = tpcc.Fig6(*tx, *warehouses)
		case "tpcc":
			tbl = tpcc.FigTPCC(*tx, *warehouses)
		case "fig7a":
			tbl = bench.Fig7("search", *n, threads)
		case "fig7b":
			tbl = bench.Fig7("insert", *n, threads)
		case "fig7c":
			tbl = bench.Fig7("mixed", *n, threads)
		case "flushes":
			tbl = bench.Flushes(*n)
		case "shards":
			tbl = bench.FigShards(bench.ShardConfig{
				Ops:         *n,
				ShardCounts: threads, // reuse the -threads axis as shard counts
				Goroutines:  8,
				Mem:         pmem.Config{WriteLatency: 300 * time.Nanosecond},
			})
		case "server":
			// DRAM latency: the remote figure isolates what pipelining
			// buys against round trips; PM-latency sensitivity is the
			// shards figure's axis.
			tbl = bench.FigServer(bench.ServerConfig{Ops: *n})
		case "server-scaling":
			tbl = bench.FigServerScaling(bench.ScalingConfig{Ops: *n})
		case "hotpath":
			tbl = bench.FigHotpath(bench.HotpathConfig{Ops: *n})
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", fig)
			os.Exit(2)
		}
		tbl.Fprint(os.Stdout)
		tables = append(tables, tbl)
	}

	if *jsonOut != "" {
		blob, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: encode tables: %v\n", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(*jsonOut, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d table(s) to %s\n", len(tables), *jsonOut)
	}
}
