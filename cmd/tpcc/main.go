// Command tpcc runs the transactional TPC-C smoke: it loads the given
// number of warehouses into a sharded store, drives the selected workload
// mixes through the store's redo-log transaction path, and then validates
// both the TPC-C consistency conditions (warehouse YTD vs district YTD vs
// history sum, district next_o_id vs the order table) and the store's own
// structural invariants.
//
// Usage:
//
//	tpcc [-warehouses 1] [-tx 2000] [-mix all|W1|W2|W3|W4] [-shards 4]
//
// Exit status is 0 only when every transaction commits and every check
// passes; any aborted-by-bug transaction or consistency violation exits 1.
// CI runs this as the tpcc smoke step.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/tpcc"
	"repro/store"
)

func main() {
	warehouses := flag.Int("warehouses", 1, "warehouses to load")
	tx := flag.Int("tx", 2000, "transactions per mix")
	mixName := flag.String("mix", "all", "mix to run: all, or one of W1..W4")
	shards := flag.Int("shards", 4, "store shards")
	flag.Parse()

	var mixes []tpcc.Mix
	for _, m := range tpcc.Mixes {
		if *mixName == "all" || m.Name == *mixName {
			mixes = append(mixes, m)
		}
	}
	if len(mixes) == 0 {
		fmt.Fprintf(os.Stderr, "tpcc: unknown mix %q\n", *mixName)
		os.Exit(2)
	}

	b, err := tpcc.NewStoreBench(*warehouses, store.Options{Shards: *shards, ShardSize: 64 << 20})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tpcc: load: %v\n", err)
		os.Exit(1)
	}
	defer b.Close()

	rng := rand.New(rand.NewSource(77))
	for _, mix := range mixes {
		t0 := time.Now()
		n, err := b.Run(mix, *tx, rng)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tpcc: %s aborted after %d transactions: %v\n", mix.Name, n, err)
			os.Exit(1)
		}
		el := time.Since(t0)
		fmt.Printf("%s: %d transactions in %v (%.1f Ktx/s)\n",
			mix.Name, n, el.Round(time.Millisecond), float64(n)/el.Seconds()/1000)
		if err := b.CheckConsistency(); err != nil {
			fmt.Fprintf(os.Stderr, "tpcc: consistency after %s: %v\n", mix.Name, err)
			os.Exit(1)
		}
	}
	if err := b.Store().CheckInvariants(); err != nil {
		fmt.Fprintf(os.Stderr, "tpcc: store invariants: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("tpcc: all mixes committed, consistency and store invariants clean")
}
