// Command benchdiff is the CI bench-regression gate: it re-runs the
// repository's tracked figures in-process and compares the throughput of
// every cell against the committed snapshots, failing — exit status 1 —
// when any cell regresses by more than the threshold.
//
// Usage:
//
//	benchdiff [-runs 3] [-threshold 25] [-n 50000] [-scaling-n 20000]
//	          [snapshot.json ...]
//
// With no positional arguments it gates the committed snapshots:
// BENCH_hotpath.json (the store and server hot-path rows),
// BENCH_server_scaling.json (the workers × conns × pipeline-depth sweep),
// and BENCH_tpcc.json (transactional TPC-C throughput per mix).
// Each snapshot names the figures it holds through its table titles —
// "Hot path ..." tables re-run FigHotpath at -n, "Server scaling ..."
// tables re-run FigServerScaling at -scaling-n, "TPC-C ..." tables re-run
// FigTPCC at -tpcc-tx — so one binary gates every tracked figure without
// per-figure flags.
//
// Noise handling: each needed figure is re-run -runs times and every
// cell's BEST throughput is compared, so a single descheduled run on a
// shared CI machine cannot fail the gate; only a change that caps the
// cell's best case does. The threshold is a percentage of the committed
// ops/s.
//
// The comparison is absolute, so the snapshots' provenance matters: a
// baseline measured on faster hardware than the gate's runner reads as a
// phantom regression. Refresh the committed snapshots from the CI run's
// own uploaded artifacts (measured on runner hardware, at the gate's
// scales), not from a development machine — then baseline and measurement
// share a hardware class and the threshold only has to absorb
// runner-to-runner noise.
//
// Cells are matched by name across all tables in the snapshots whose
// header carries a "Kops/s" column; cells present on only one side are
// reported but never fail the gate (they are new or retired figures, not
// regressions). A missing snapshot file fails: the gate exists to keep the
// snapshots honest.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/tpcc"
)

func main() {
	runs := flag.Int("runs", 3, "benchmark repetitions; each cell's best run is compared")
	threshold := flag.Float64("threshold", 25, "maximum tolerated regression, percent of the committed ops/s")
	n := flag.Int("n", 50000, "operations per hot-path benchmark cell")
	scalingN := flag.Int("scaling-n", 20000, "operations per server-scaling benchmark cell")
	tpccTx := flag.Int("tpcc-tx", 2000, "transactions per TPC-C mix cell")
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		files = []string{"BENCH_hotpath.json", "BENCH_server_scaling.json", "BENCH_tpcc.json"}
	}

	var committed []*bench.Table
	for _, f := range files {
		blob, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: read snapshot: %v\n", err)
			os.Exit(1)
		}
		var tables []*bench.Table
		if err := json.Unmarshal(blob, &tables); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: parse %s: %v\n", f, err)
			os.Exit(1)
		}
		committed = append(committed, tables...)
	}
	want := cellRates(committed)
	if len(want) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no Kops/s cells in %s\n", strings.Join(files, ", "))
		os.Exit(1)
	}

	// The snapshots' table titles say which figures to re-run.
	reruns := figuresFor(committed, *n, *scalingN, *tpccTx)
	if len(reruns) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no known figure titles in %s\n", strings.Join(files, ", "))
		os.Exit(1)
	}

	// Fresh runs: keep the best throughput per cell across repetitions.
	best := map[string]float64{}
	for r := 0; r < *runs; r++ {
		var produced []*bench.Table
		for _, rerun := range reruns {
			produced = append(produced, rerun())
		}
		got := cellRates(produced)
		for cell, v := range got {
			if v > best[cell] {
				best[cell] = v
			}
		}
		fmt.Printf("run %d/%d: %v\n", r+1, *runs, got)
	}

	failed := false
	fmt.Printf("%-12s %12s %12s %9s\n", "cell", "committed", "best-of-runs", "delta")
	cells := make([]string, 0, len(want))
	for cell := range want {
		cells = append(cells, cell)
	}
	sort.Strings(cells)
	for _, cell := range cells {
		base := want[cell]
		now, ok := best[cell]
		if !ok {
			fmt.Printf("%-12s %12.0f %12s %9s  (cell no longer produced; not gated)\n", cell, base*1000, "-", "-")
			continue
		}
		delta := (now - base) / base * 100
		verdict := ""
		if now < base*(1-*threshold/100) {
			verdict = "  REGRESSION"
			failed = true
		}
		fmt.Printf("%-12s %12.0f %12.0f %+8.1f%%%s\n", cell, base*1000, now*1000, delta, verdict)
	}
	for cell := range best {
		if _, ok := want[cell]; !ok {
			fmt.Printf("%-12s %12s %12.0f %9s  (new cell; not gated — refresh the snapshot)\n", cell, "-", best[cell]*1000, "-")
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: throughput regressed more than %.0f%% against %s\n", *threshold, strings.Join(files, ", "))
		os.Exit(1)
	}
	fmt.Printf("benchdiff: all cells within %.0f%% of %s\n", *threshold, strings.Join(files, ", "))
}

// figuresFor maps the committed tables' titles to the figure re-runs the
// gate needs, deduplicated: any "Hot path ..." table re-runs FigHotpath,
// any "Server scaling ..." table re-runs FigServerScaling, any "TPC-C ..."
// table re-runs FigTPCC. Unknown titles are skipped (their cells report as
// no-longer-produced, never failing).
func figuresFor(tables []*bench.Table, n, scalingN, tpccTx int) []func() *bench.Table {
	var out []func() *bench.Table
	seen := map[string]bool{}
	for _, t := range tables {
		switch {
		case strings.HasPrefix(t.Title, "Hot path") && !seen["hotpath"]:
			seen["hotpath"] = true
			out = append(out, func() *bench.Table {
				return bench.FigHotpath(bench.HotpathConfig{Ops: n})
			})
		case strings.HasPrefix(t.Title, "Server scaling") && !seen["scaling"]:
			seen["scaling"] = true
			out = append(out, func() *bench.Table {
				return bench.FigServerScaling(bench.ScalingConfig{Ops: scalingN})
			})
		case strings.HasPrefix(t.Title, "TPC-C") && !seen["tpcc"]:
			seen["tpcc"] = true
			out = append(out, func() *bench.Table {
				return tpcc.FigTPCC(tpccTx, 1)
			})
		}
	}
	return out
}

// cellRates extracts cell-name → Kops/s from every table carrying a
// "Kops/s" column (first column is the cell name).
func cellRates(tables []*bench.Table) map[string]float64 {
	out := map[string]float64{}
	for _, t := range tables {
		col := -1
		for i, h := range t.Header {
			if h == "Kops/s" {
				col = i
			}
		}
		if col <= 0 {
			continue
		}
		for _, row := range t.Rows {
			if len(row) <= col {
				continue
			}
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				continue
			}
			out[row[0]] = v
		}
	}
	return out
}
