// Command benchdiff is the CI bench-regression gate: it re-runs the
// repository's tracked hot-path figure in-process and compares the
// throughput of every cell against the committed snapshot
// (BENCH_hotpath.json), failing — exit status 1 — when any cell regresses
// by more than the threshold.
//
// Usage:
//
//	benchdiff [-runs 3] [-threshold 25] [-n 50000] [BENCH_hotpath.json]
//
// Noise handling: the figure is re-run -runs times and each cell's BEST
// throughput is compared, so a single descheduled run on a shared CI
// machine cannot fail the gate; only a change that caps the cell's best
// case does. The threshold is a percentage of the committed ops/s.
//
// The comparison is absolute, so the snapshot's provenance matters: a
// baseline measured on faster hardware than the gate's runner reads as a
// phantom regression. Refresh the committed snapshot from the CI run's
// own uploaded BENCH_hotpath artifact (measured on runner hardware, at
// the gate's -n), not from a development machine — then baseline and
// measurement share a hardware class and the threshold only has to absorb
// runner-to-runner noise.
//
// Cells are matched by name across all tables in the snapshot whose header
// carries a "Kops/s" column; cells present on only one side are reported
// but never fail the gate (they are new or retired figures, not
// regressions). A missing snapshot file fails: the gate exists to keep the
// snapshot honest.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/bench"
)

func main() {
	runs := flag.Int("runs", 3, "benchmark repetitions; each cell's best run is compared")
	threshold := flag.Float64("threshold", 25, "maximum tolerated regression, percent of the committed ops/s")
	n := flag.Int("n", 50000, "operations per benchmark cell")
	flag.Parse()
	base := "BENCH_hotpath.json"
	if flag.NArg() == 1 {
		base = flag.Arg(0)
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] [snapshot.json]")
		os.Exit(2)
	}

	blob, err := os.ReadFile(base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: read snapshot: %v\n", err)
		os.Exit(1)
	}
	var committed []*bench.Table
	if err := json.Unmarshal(blob, &committed); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: parse %s: %v\n", base, err)
		os.Exit(1)
	}
	want := cellRates(committed)
	if len(want) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no Kops/s cells in %s\n", base)
		os.Exit(1)
	}

	// Fresh runs: keep the best throughput per cell across repetitions.
	best := map[string]float64{}
	for r := 0; r < *runs; r++ {
		got := cellRates([]*bench.Table{bench.FigHotpath(bench.HotpathConfig{Ops: *n})})
		for cell, v := range got {
			if v > best[cell] {
				best[cell] = v
			}
		}
		fmt.Printf("run %d/%d: %v\n", r+1, *runs, got)
	}

	failed := false
	fmt.Printf("%-10s %12s %12s %9s\n", "cell", "committed", "best-of-runs", "delta")
	for cell, base := range want {
		now, ok := best[cell]
		if !ok {
			fmt.Printf("%-10s %12.0f %12s %9s  (cell no longer produced; not gated)\n", cell, base*1000, "-", "-")
			continue
		}
		delta := (now - base) / base * 100
		verdict := ""
		if now < base*(1-*threshold/100) {
			verdict = "  REGRESSION"
			failed = true
		}
		fmt.Printf("%-10s %12.0f %12.0f %+8.1f%%%s\n", cell, base*1000, now*1000, delta, verdict)
	}
	for cell := range best {
		if _, ok := want[cell]; !ok {
			fmt.Printf("%-10s %12s %12.0f %9s  (new cell; not gated — refresh the snapshot)\n", cell, "-", best[cell]*1000, "-")
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: throughput regressed more than %.0f%% against %s\n", *threshold, base)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: all cells within %.0f%% of %s\n", *threshold, base)
}

// cellRates extracts cell-name → Kops/s from every table carrying a
// "Kops/s" column (first column is the cell name).
func cellRates(tables []*bench.Table) map[string]float64 {
	out := map[string]float64{}
	for _, t := range tables {
		col := -1
		for i, h := range t.Header {
			if h == "Kops/s" {
				col = i
			}
		}
		if col <= 0 {
			continue
		}
		for _, row := range t.Rows {
			if len(row) <= col {
				continue
			}
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				continue
			}
			out[row[0]] = v
		}
	}
	return out
}
