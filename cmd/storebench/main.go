// Command storebench sweeps the sharded KV store's shard axis under
// concurrent sessions and prints throughput plus speedup over one shard.
//
// Usage:
//
//	storebench [-n ops] [-shards 1,2,4,8] [-goroutines 8] [-wlat 300ns] [-rlat 0]
//
// The acceptance shape: on a host with >= 4 cores, 4 shards at 8 goroutines
// should at least double 1-shard insert+get throughput under the simulated
// PM latency model (per-shard writer latches and per-shard allocators stop
// contending). On a single-core host the curve is flat, as with Figure 7.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/pmem"
)

func main() {
	n := flag.Int("n", 200000, "total operations per cell")
	shardsFlag := flag.String("shards", "1,2,4,8", "shard counts to sweep")
	goroutines := flag.Int("goroutines", 8, "concurrent sessions")
	wlat := flag.Duration("wlat", 300*time.Nanosecond, "simulated PM write latency")
	rlat := flag.Duration("rlat", 0, "simulated PM read latency")
	flag.Parse()

	var counts []int
	for _, s := range strings.Split(*shardsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "bad -shards value %q\n", s)
			os.Exit(2)
		}
		counts = append(counts, v)
	}

	fmt.Printf("host cores: %d (speedups need real cores)\n\n", runtime.NumCPU())
	tbl := bench.FigShards(bench.ShardConfig{
		Ops:         *n,
		ShardCounts: counts,
		Goroutines:  *goroutines,
		Mem:         pmem.Config{WriteLatency: *wlat, ReadLatency: *rlat},
	})
	tbl.Fprint(os.Stdout)
}
