// Command pmkv-server serves a sharded FAST+FAIR store over TCP using the
// pmkv wire protocol.
//
// Usage:
//
//	pmkv-server [-addr :7841] [-shards 8] [-shard-size-mb 256]
//	            [-workers 2] [-read-latency 0] [-write-latency 0]
//	            [-gc-ratio 0.5]
//
// The store lives in simulated persistent memory inside the process; the
// latency flags emulate a PM device (e.g. -write-latency 300ns). SIGINT or
// SIGTERM triggers a graceful shutdown: the listeners close, in-flight
// requests drain and answer, and only then does the store close.
//
// -gc-ratio tunes value-log compaction: when a shard's varlen garbage
// fraction reaches the ratio, the writing session compacts the shard
// inline, so sustained overwrite traffic runs in bounded space. -gc-ratio
// -1 disables automatic compaction (the log then only grows).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/server"
	"repro/store"
)

func main() {
	addr := flag.String("addr", ":7841", "listen address")
	shards := flag.Int("shards", 8, "store shard count")
	shardMB := flag.Int64("shard-size-mb", 256, "arena size per shard, MiB")
	workers := flag.Int("workers", 2, "request workers (sessions) per connection")
	readLat := flag.Duration("read-latency", 0, "simulated PM read latency (e.g. 150ns)")
	writeLat := flag.Duration("write-latency", 0, "simulated PM write latency (e.g. 300ns)")
	gcRatio := flag.Float64("gc-ratio", 0, "value-log garbage ratio that triggers automatic compaction (0 = default 0.5, negative disables)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
	quiet := flag.Bool("quiet", false, "suppress per-connection diagnostics")
	flag.Parse()

	st, err := store.Open(store.Options{
		Shards:         *shards,
		ShardSize:      *shardMB << 20,
		GCGarbageRatio: *gcRatio,
		Latency: store.LatencyOptions{
			Read:  *readLat,
			Write: *writeLat,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	opts := server.Options{Workers: *workers}
	if !*quiet {
		opts.Logf = log.Printf
	}
	srv := server.New(st, opts)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("pmkv-server: serving %d shards (%d MiB each) on %s, %d workers/conn",
		*shards, *shardMB, ln.Addr(), *workers)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("pmkv-server: %v: draining (budget %v)", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			log.Printf("pmkv-server: drain incomplete: %v", err)
		}
	case err := <-done:
		if err != nil {
			log.Printf("pmkv-server: serve: %v", err)
		}
	}

	stats := srv.Stats()
	vs := st.ValueStats()
	if err := st.Close(); err != nil {
		log.Printf("pmkv-server: store close: %v", err)
	}
	fmt.Printf("served %d ops (%d errors), %d conns total, %d B in, %d B out\n",
		stats.Ops, stats.Errors, stats.ConnsTotal, stats.BytesIn, stats.BytesOut)
	if vs.Live+vs.Garbage+vs.Reclaimed > 0 {
		fmt.Printf("value log: %d B live, %d B garbage, %d B reclaimed by GC\n",
			vs.Live, vs.Garbage, vs.Reclaimed)
	}
}
