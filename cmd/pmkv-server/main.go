// Command pmkv-server serves a sharded FAST+FAIR store over TCP using the
// pmkv wire protocol.
//
// Usage:
//
//	pmkv-server [-addr :7841] [-shards 8] [-shard-size-mb 256]
//	            [-workers 0] [-read-latency 0] [-write-latency 0]
//	            [-gc-ratio 0.5] [-inflight 256] [-inline-batch 16]
//	            [-flush-bytes 65536] [-flush-pending 64] [-flush-delay 200us]
//	            [-stats-interval 0] [-slow-op 0]
//	            [-pprof addr] [-mutexprofile 0] [-blockprofile 0]
//
// The store lives in simulated persistent memory inside the process; the
// latency flags emulate a PM device (e.g. -write-latency 300ns). SIGINT or
// SIGTERM triggers a graceful shutdown: the listeners close, in-flight
// requests drain and answer, and only then does the store close.
//
// -workers sizes the server-wide worker pool that executes steered request
// batches (0 = one per core); the remaining pipeline knobs map onto
// server.Options — -inflight is the per-connection request window that
// bounds memory under slow clients, -inline-batch the batch size below
// which the reader executes requests itself, and the -flush-* trio the
// response-coalescing policy (flush on bytes, on pending count, or after a
// short delay while the window is open).
//
// -gc-ratio tunes value-log compaction: when a shard's varlen garbage
// fraction reaches the ratio, the writing session compacts the shard
// inline, so sustained overwrite traffic runs in bounded space. -gc-ratio
// -1 disables automatic compaction (the log then only grows).
//
// -pprof serves net/http/pprof on the given address (e.g. localhost:6060)
// for live CPU/heap/goroutine profiles while the server runs. The same
// listener carries the observability endpoints: /metrics is Prometheus
// text format (per-opcode request counts and errors, queue/execute/flush
// stage latency histograms, store op latencies, GC pauses, value-log and
// pmem counters), and /debug/vars exposes the same registry as expvar JSON
// under the "pmkv" key. -stats-interval logs a periodic one-line summary
// (ops/s, errors, connections, per-class p50/p99); -slow-op logs any
// request whose queue+execute time meets the threshold, rate-limited to
// one line per 100ms.
// -mutexprofile and -blockprofile set the runtime's contention sampling
// rates (runtime.SetMutexProfileFraction / runtime.SetBlockProfileRate) so
// the pprof mutex and block endpoints carry data; both default to 0 (off)
// because sampling costs a little on every contended event.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/server"
	"repro/store"
)

func main() {
	addr := flag.String("addr", ":7841", "listen address")
	shards := flag.Int("shards", 8, "store shard count")
	shardMB := flag.Int64("shard-size-mb", 256, "arena size per shard, MiB")
	workers := flag.Int("workers", 0, "server-wide request workers (0 = one per core)")
	readLat := flag.Duration("read-latency", 0, "simulated PM read latency (e.g. 150ns)")
	writeLat := flag.Duration("write-latency", 0, "simulated PM write latency (e.g. 300ns)")
	gcRatio := flag.Float64("gc-ratio", 0, "value-log garbage ratio that triggers automatic compaction (0 = default 0.5, negative disables)")
	inflight := flag.Int("inflight", 0, "max pipelined requests per connection (0 = default 256)")
	inlineBatch := flag.Int("inline-batch", 0, "largest ingest batch the reader executes inline (0 = default 16, negative = always steer)")
	flushBytes := flag.Int("flush-bytes", 0, "response bytes that force a flush (0 = default 64 KiB)")
	flushPending := flag.Int("flush-pending", 0, "coalesced responses that force a flush (0 = default 64)")
	flushDelay := flag.Duration("flush-delay", 0, "max time a response waits for coalescing (0 = default 200us)")
	admit := flag.Int("admit", 0, "global in-flight admission cap; past it requests are shed with StatusBusy (0 = unlimited)")
	idleTimeout := flag.Duration("idle-timeout", 0, "close connections idle this long (0 = never)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
	quiet := flag.Bool("quiet", false, "suppress per-connection diagnostics")
	statsInterval := flag.Duration("stats-interval", 0, "log a throughput/latency line this often (0 = off)")
	slowOp := flag.Duration("slow-op", 0, "log requests slower than this, rate-limited (0 = off)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof, /metrics and /debug/vars on this address (e.g. localhost:6060)")
	mutexProfile := flag.Int("mutexprofile", 0, "mutex contention sampling: 1 of every N events (0 = off)")
	blockProfile := flag.Int("blockprofile", 0, "blocking profile sampling rate in ns (0 = off)")
	flag.Parse()

	if *mutexProfile > 0 {
		runtime.SetMutexProfileFraction(*mutexProfile)
	}
	if *blockProfile > 0 {
		runtime.SetBlockProfileRate(*blockProfile)
	}
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("pprof listen %s: %v", *pprofAddr, err)
		}
		log.Printf("pmkv-server: pprof on http://%s/debug/pprof/", pln.Addr())
		go func() {
			if err := http.Serve(pln, nil); err != nil {
				log.Printf("pmkv-server: pprof serve: %v", err)
			}
		}()
	}

	st, err := store.Open(store.Options{
		Shards:         *shards,
		ShardSize:      *shardMB << 20,
		GCGarbageRatio: *gcRatio,
		Latency: store.LatencyOptions{
			Read:  *readLat,
			Write: *writeLat,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	opts := server.Options{
		Workers:           *workers,
		MaxInflight:       *inflight,
		InlineBatch:       *inlineBatch,
		FlushBytes:        *flushBytes,
		FlushPending:      *flushPending,
		FlushDelay:        *flushDelay,
		MaxServerInflight: *admit,
		IdleTimeout:       *idleTimeout,
	}
	opts.SlowOpThreshold = *slowOp
	if !*quiet {
		opts.Logf = log.Printf
	}
	srv := server.New(st, opts)

	// The pprof mux (DefaultServeMux) also carries the observability
	// endpoints: Prometheus text format on /metrics, and the same registry
	// as JSON under the "pmkv" key of expvar's /debug/vars.
	http.Handle("/metrics", srv.Metrics().Handler())
	expvar.Publish("pmkv", srv.Metrics().ExpvarFunc())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	effWorkers := *workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	log.Printf("pmkv-server: serving %d shards (%d MiB each) on %s, %d workers",
		*shards, *shardMB, ln.Addr(), effWorkers)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	if *statsInterval > 0 {
		go func() {
			tick := time.NewTicker(*statsInterval)
			defer tick.Stop()
			var last server.Stats
			lastT := time.Now()
			for range tick.C {
				cur := srv.Stats()
				now := time.Now()
				dt := now.Sub(lastT).Seconds()
				p50, p99 := srv.OpLatencies()
				log.Printf("pmkv-server: %.0f ops/s (%d total, %d errors), %d conns, %.0f flushes/s | p50/p99 read %v/%v write %v/%v scan %v/%v",
					float64(cur.Ops-last.Ops)/dt, cur.Ops, cur.Errors, cur.ConnsLive,
					float64(cur.Flushes-last.Flushes)/dt,
					p50[0], p99[0], p50[1], p99[1], p50[2], p99[2])
				last, lastT = cur, now
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("pmkv-server: %v: draining (budget %v)", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			log.Printf("pmkv-server: drain incomplete: %v", err)
		}
	case err := <-done:
		if err != nil {
			log.Printf("pmkv-server: serve: %v", err)
		}
	}

	stats := srv.Stats()
	vs := st.ValueStats()
	if err := st.Close(); err != nil {
		log.Printf("pmkv-server: store close: %v", err)
	}
	fmt.Printf("served %d ops (%d errors), %d conns total, %d B in, %d B out\n",
		stats.Ops, stats.Errors, stats.ConnsTotal, stats.BytesIn, stats.BytesOut)
	fmt.Printf("pipeline: %d read batches, %d inline ops, %d steered ops, %d write flushes\n",
		stats.ReadBatches, stats.InlineOps, stats.SteeredOps, stats.Flushes)
	if vs.Live+vs.Garbage+vs.Reclaimed > 0 {
		fmt.Printf("value log: %d B live, %d B garbage, %d B reclaimed by GC\n",
			vs.Live, vs.Garbage, vs.Reclaimed)
	}
}
