package blink

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pmem"
)

func newTree(t testing.TB, opts Options) (*Tree, *pmem.Thread) {
	t.Helper()
	p := pmem.New(pmem.Config{Size: 128 << 20})
	th := p.NewThread()
	tr, err := New(p, th, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr, th
}

func TestBasicOps(t *testing.T) {
	tr, th := newTree(t, Options{})
	for i := uint64(0); i < 5000; i++ {
		if err := tr.Insert(th, i*2, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 5000; i++ {
		if v, ok := tr.Get(th, i*2); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i*2, v, ok)
		}
		if _, ok := tr.Get(th, i*2+1); ok {
			t.Fatalf("found missing key %d", i*2+1)
		}
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
}

func TestOracle(t *testing.T) {
	tr, th := newTree(t, Options{NodeSize: 256})
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(1))
	for op := 0; op < 20000; op++ {
		k := rng.Uint64() % 1500
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			v := rng.Uint64()
			if err := tr.Insert(th, k, v); err != nil {
				t.Fatal(err)
			}
			oracle[k] = v
		case 5, 6:
			_, want := oracle[k]
			if got := tr.Delete(th, k); got != want {
				t.Fatalf("Delete(%d) = %v want %v", k, got, want)
			}
			delete(oracle, k)
		default:
			want, wantOK := oracle[k]
			got, ok := tr.Get(th, k)
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("Get(%d) = %d,%v want %d,%v", k, got, ok, want, wantOK)
			}
		}
	}
	if tr.Len(th) != len(oracle) {
		t.Fatalf("Len = %d oracle %d", tr.Len(th), len(oracle))
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
}

func TestScan(t *testing.T) {
	tr, th := newTree(t, Options{})
	for i := uint64(0); i < 3000; i++ {
		tr.Insert(th, i*7, i)
	}
	var prev uint64
	first := true
	n := 0
	tr.Scan(th, 700, 7000, func(k, v uint64) bool {
		if k < 700 || k > 7000 {
			t.Fatalf("out of range key %d", k)
		}
		if !first && k <= prev {
			t.Fatal("unsorted scan")
		}
		prev, first = k, false
		n++
		return true
	})
	if n != 901 { // 700..7000 step 7
		t.Fatalf("scan count %d want 901", n)
	}
}

func TestConcurrentMixed(t *testing.T) {
	tr, th0 := newTree(t, Options{NodeSize: 256})
	const stable = 4000
	for i := uint64(0); i < stable; i++ {
		tr.Insert(th0, i*2, i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := tr.Pool().NewThread()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 4000; i++ {
				switch g % 3 {
				case 0:
					k := rng.Uint64()%(stable*2) | 1
					if err := tr.Insert(th, k, k); err != nil {
						t.Error(err)
						return
					}
				case 1:
					k := (rng.Uint64() % stable) * 2
					if v, ok := tr.Get(th, k); !ok || v != k/2 {
						t.Errorf("Get(%d) = %d,%v", k, v, ok)
						return
					}
				default:
					k := rng.Uint64()%(stable*2) | 1
					tr.Delete(th, k)
				}
			}
		}(g)
	}
	wg.Wait()
	th := tr.Pool().NewThread()
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < stable; i++ {
		if v, ok := tr.Get(th, i*2); !ok || v != i {
			t.Fatalf("stable Get(%d) = %d,%v", i*2, v, ok)
		}
	}
}

func TestConcurrentRootGrowth(t *testing.T) {
	tr, _ := newTree(t, Options{NodeSize: 128})
	var wg sync.WaitGroup
	const goroutines = 8
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := tr.Pool().NewThread()
			for i := 0; i < 2000; i++ {
				k := uint64(i*goroutines + g)
				if err := tr.Insert(th, k, k+7); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	th := tr.Pool().NewThread()
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 2000*goroutines; k++ {
		if v, ok := tr.Get(th, k); !ok || v != k+7 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
}
