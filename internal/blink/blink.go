// Package blink implements a Lehman–Yao B-link tree, the volatile
// concurrency reference of Figure 7. It runs over the same pmem arena as
// the persistent indexes so reads pay identical memory latency, but it
// issues no flushes or fences — it is not failure-atomic, exactly as the
// paper notes ("B-link tree is not designed to provide failure-atomicity").
//
// Unlike FAST+FAIR, B-link search is not lock-free: readers acquire a shared
// latch on every node they visit (the paper's B-link uses std::mutex, which
// saturates even earlier). That per-node latch traffic is what caps its
// search scalability at a handful of threads in Figure 7(a).
package blink

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/pmem"
)

const (
	offMeta     = 0 // level
	offLeftmost = 8
	offSibling  = 16
	offCount    = 24
	offLock     = 32
	offLowKey   = 40
	headerBytes = 64

	writerBit = uint64(1)
	readerInc = uint64(2)
)

// Options configures a Tree.
type Options struct {
	// NodeSize in bytes (multiple of 64). Default 512 to match the
	// FAST+FAIR configuration.
	NodeSize int
	RootSlot int
}

func (o *Options) fill() error {
	if o.NodeSize == 0 {
		o.NodeSize = 512
	}
	if o.NodeSize < 128 || o.NodeSize%pmem.LineSize != 0 {
		return fmt.Errorf("blink: bad NodeSize %d", o.NodeSize)
	}
	if o.RootSlot < 0 || o.RootSlot > 7 {
		return fmt.Errorf("blink: RootSlot %d out of range", o.RootSlot)
	}
	return nil
}

// Tree is a thread-safe volatile B-link tree.
type Tree struct {
	pool   *pmem.Pool
	opts   Options
	cap    int
	rootMu sync.Mutex
}

// New creates an empty tree.
func New(p *pmem.Pool, th *pmem.Thread, opts Options) (*Tree, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	t := &Tree{pool: p, opts: opts, cap: (opts.NodeSize - headerBytes) / 16}
	root, err := t.allocNode(th, 0)
	if err != nil {
		return nil, err
	}
	p.SetRoot(th, opts.RootSlot, root)
	return t, nil
}

// Pool returns the backing pool.
func (t *Tree) Pool() *pmem.Pool { return t.pool }

func (t *Tree) allocNode(th *pmem.Thread, level int) (int64, error) {
	n, err := t.pool.Alloc(int64(t.opts.NodeSize), pmem.LineSize)
	if err != nil {
		return 0, err
	}
	th.StoreVolatile(n+offMeta, uint64(level))
	return n, nil
}

func recOff(n int64, i int) int64 { return n + headerBytes + int64(i)*16 }

func (t *Tree) key(th *pmem.Thread, n int64, i int) uint64 { return th.Load(recOff(n, i)) }
func (t *Tree) val(th *pmem.Thread, n int64, i int) uint64 { return th.Load(recOff(n, i) + 8) }
func (t *Tree) count(th *pmem.Thread, n int64) int         { return int(th.Load(n + offCount)) }
func (t *Tree) level(th *pmem.Thread, n int64) int         { return int(th.Load(n + offMeta)) }
func (t *Tree) sibling(th *pmem.Thread, n int64) int64     { return int64(th.Load(n + offSibling)) }
func (t *Tree) lowKey(th *pmem.Thread, n int64) uint64     { return th.Load(n + offLowKey) }

// Stores are volatile-style plain stores: B-link persists nothing.
func (t *Tree) store(th *pmem.Thread, off int64, v uint64) { th.StoreVolatile(off, v) }

// --- latches ---------------------------------------------------------------

func pause(spins int) {
	if spins%64 == 63 {
		runtime.Gosched()
	}
}

func (t *Tree) rlock(th *pmem.Thread, n int64) {
	for s := 0; ; s++ {
		v := th.LoadVolatile(n + offLock)
		if v&writerBit == 0 && th.CASVolatile(n+offLock, v, v+readerInc) {
			return
		}
		pause(s)
	}
}

func (t *Tree) runlock(th *pmem.Thread, n int64) {
	for s := 0; ; s++ {
		v := th.LoadVolatile(n + offLock)
		if th.CASVolatile(n+offLock, v, v-readerInc) {
			return
		}
		pause(s)
	}
}

func (t *Tree) wlock(th *pmem.Thread, n int64) {
	for s := 0; ; s++ {
		if th.LoadVolatile(n+offLock) == 0 && th.CASVolatile(n+offLock, 0, writerBit) {
			return
		}
		pause(s)
	}
}

func (t *Tree) wunlock(th *pmem.Thread, n int64) { th.StoreVolatile(n+offLock, 0) }

// --- search ------------------------------------------------------------------

// lowerBound returns the first index with key(n,i) >= k (binary search —
// B-link has no store-ordering constraints, so it may).
func (t *Tree) lowerBound(th *pmem.Thread, n int64, k uint64) int {
	lo, hi := 0, t.count(th, n)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.key(th, n, mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// descendToLeaf returns the leaf covering key, read-latching every visited
// node (the scalability cost Figure 7 measures).
func (t *Tree) descendToLeaf(th *pmem.Thread, key uint64) int64 {
	n := t.pool.Root(th, t.opts.RootSlot)
	for {
		t.rlock(th, n)
		if sib := t.sibling(th, n); sib != 0 && key >= t.lowKey(th, sib) {
			t.runlock(th, n)
			n = sib
			continue
		}
		if t.level(th, n) == 0 {
			t.runlock(th, n)
			return n
		}
		child := t.route(th, n, key)
		t.runlock(th, n)
		n = child
	}
}

func (t *Tree) route(th *pmem.Thread, n int64, key uint64) int64 {
	i := t.lowerBound(th, n, key)
	cnt := t.count(th, n)
	if i < cnt && t.key(th, n, i) == key {
		return int64(t.val(th, n, i))
	}
	if i == 0 {
		return int64(th.Load(n + offLeftmost))
	}
	return int64(t.val(th, n, i-1))
}

// Get returns the value stored under key.
func (t *Tree) Get(th *pmem.Thread, key uint64) (uint64, bool) {
	n := t.descendToLeaf(th, key)
	for {
		t.rlock(th, n)
		if sib := t.sibling(th, n); sib != 0 && key >= t.lowKey(th, sib) {
			t.runlock(th, n)
			n = sib
			continue
		}
		i := t.lowerBound(th, n, key)
		var v uint64
		found := i < t.count(th, n) && t.key(th, n, i) == key
		if found {
			v = t.val(th, n, i)
		}
		t.runlock(th, n)
		return v, found
	}
}

// Insert stores val under key (upsert).
func (t *Tree) Insert(th *pmem.Thread, key, val uint64) error {
	th.BeginPhase(pmem.PhaseSearch)
	defer th.EndPhase()
	n := t.descendToLeaf(th, key)
	t.wlock(th, n)
	n = t.moveRightLocked(th, n, key)
	th.BeginPhase(pmem.PhaseUpdate)
	return t.insertLocked(th, n, 0, key, val)
}

func (t *Tree) moveRightLocked(th *pmem.Thread, n int64, key uint64) int64 {
	for {
		sib := t.sibling(th, n)
		if sib == 0 || key < t.lowKey(th, sib) {
			return n
		}
		t.wunlock(th, n)
		t.wlock(th, sib)
		n = sib
	}
}

// insertLocked inserts into write-latched node n (releasing the latch).
func (t *Tree) insertLocked(th *pmem.Thread, n int64, level int, key, val uint64) error {
	cnt := t.count(th, n)
	i := t.lowerBound(th, n, key)
	if i < cnt && t.key(th, n, i) == key {
		t.store(th, recOff(n, i)+8, val)
		t.wunlock(th, n)
		return nil
	}
	if cnt < t.cap {
		for j := cnt; j > i; j-- {
			t.store(th, recOff(n, j), t.key(th, n, j-1))
			t.store(th, recOff(n, j)+8, t.val(th, n, j-1))
		}
		t.store(th, recOff(n, i), key)
		t.store(th, recOff(n, i)+8, val)
		t.store(th, n+offCount, uint64(cnt+1))
		t.wunlock(th, n)
		return nil
	}
	return t.split(th, n, level, key, val)
}

// split performs the Lehman–Yao half-split of latched node n.
func (t *Tree) split(th *pmem.Thread, n int64, level int, key, val uint64) error {
	cnt := t.cap
	median := cnt / 2
	sepKey := t.key(th, n, median)
	sib, err := t.allocNode(th, level)
	if err != nil {
		t.wunlock(th, n)
		return err
	}
	t.store(th, sib+offLowKey, sepKey)
	scnt := 0
	from := median
	if level > 0 {
		t.store(th, sib+offLeftmost, t.val(th, n, median))
		from = median + 1
	}
	for i := from; i < cnt; i++ {
		t.store(th, recOff(sib, scnt), t.key(th, n, i))
		t.store(th, recOff(sib, scnt)+8, t.val(th, n, i))
		scnt++
	}
	t.store(th, sib+offCount, uint64(scnt))
	t.store(th, sib+offSibling, uint64(t.sibling(th, n)))
	t.store(th, n+offSibling, uint64(sib))
	t.store(th, n+offCount, uint64(median))
	if key < sepKey {
		// Re-insert into the (now non-full) left node.
		cnt = median
		i := t.lowerBound(th, n, key)
		for j := cnt; j > i; j-- {
			t.store(th, recOff(n, j), t.key(th, n, j-1))
			t.store(th, recOff(n, j)+8, t.val(th, n, j-1))
		}
		t.store(th, recOff(n, i), key)
		t.store(th, recOff(n, i)+8, val)
		t.store(th, n+offCount, uint64(cnt+1))
	} else {
		i := t.lowerBound(th, sib, key)
		for j := scnt; j > i; j-- {
			t.store(th, recOff(sib, j), t.key(th, sib, j-1))
			t.store(th, recOff(sib, j)+8, t.val(th, sib, j-1))
		}
		t.store(th, recOff(sib, i), key)
		t.store(th, recOff(sib, i)+8, val)
		t.store(th, sib+offCount, uint64(scnt+1))
	}
	t.wunlock(th, n)
	return t.insertParent(th, n, level, sepKey, sib)
}

func (t *Tree) insertParent(th *pmem.Thread, child int64, level int, sepKey uint64, sib int64) error {
	for {
		root := t.pool.Root(th, t.opts.RootSlot)
		if root == child {
			t.rootMu.Lock()
			if t.pool.Root(th, t.opts.RootSlot) != child {
				t.rootMu.Unlock()
				continue
			}
			nr, err := t.allocNode(th, level+1)
			if err != nil {
				t.rootMu.Unlock()
				return err
			}
			t.store(th, nr+offLeftmost, uint64(child))
			t.store(th, nr+offLowKey, t.lowKey(th, child))
			t.store(th, recOff(nr, 0), sepKey)
			t.store(th, recOff(nr, 0)+8, uint64(sib))
			t.store(th, nr+offCount, 1)
			t.pool.SetRoot(th, t.opts.RootSlot, nr)
			t.rootMu.Unlock()
			return nil
		}
		if t.level(th, root) <= level {
			pause(1)
			continue
		}
		p := root
		for t.level(th, p) > level+1 {
			t.rlock(th, p)
			if s := t.sibling(th, p); s != 0 && sepKey >= t.lowKey(th, s) {
				t.runlock(th, p)
				p = s
				continue
			}
			c := t.route(th, p, sepKey)
			t.runlock(th, p)
			p = c
		}
		t.wlock(th, p)
		p = t.moveRightLocked(th, p, sepKey)
		// Dedup: the separator may already be present.
		i := t.lowerBound(th, p, sepKey)
		if i < t.count(th, p) && t.key(th, p, i) == sepKey {
			t.wunlock(th, p)
			return nil
		}
		return t.insertLocked(th, p, level+1, sepKey, uint64(sib))
	}
}

// Delete removes key, reporting whether it was present. Underflowed nodes
// are left in place (the classic B-link simplification).
func (t *Tree) Delete(th *pmem.Thread, key uint64) bool {
	th.BeginPhase(pmem.PhaseSearch)
	defer th.EndPhase()
	n := t.descendToLeaf(th, key)
	t.wlock(th, n)
	n = t.moveRightLocked(th, n, key)
	th.BeginPhase(pmem.PhaseUpdate)
	cnt := t.count(th, n)
	i := t.lowerBound(th, n, key)
	if i >= cnt || t.key(th, n, i) != key {
		t.wunlock(th, n)
		return false
	}
	for j := i; j < cnt-1; j++ {
		t.store(th, recOff(n, j), t.key(th, n, j+1))
		t.store(th, recOff(n, j)+8, t.val(th, n, j+1))
	}
	t.store(th, n+offCount, uint64(cnt-1))
	t.wunlock(th, n)
	return true
}

// Scan visits pairs with lo <= key <= hi ascending, snapshotting each leaf
// under a read latch.
func (t *Tree) Scan(th *pmem.Thread, lo, hi uint64, fn func(key, val uint64) bool) {
	n := t.descendToLeaf(th, lo)
	var keys, vals []uint64
	last, first := lo, true
	for n != 0 {
		t.rlock(th, n)
		cnt := t.count(th, n)
		keys, vals = keys[:0], vals[:0]
		for i := 0; i < cnt; i++ {
			keys = append(keys, t.key(th, n, i))
			vals = append(vals, t.val(th, n, i))
		}
		sib := t.sibling(th, n)
		var fence uint64
		if sib != 0 {
			fence = t.lowKey(th, sib)
		}
		t.runlock(th, n)
		for i, k := range keys {
			if k < lo || k > hi || (!first && k <= last) {
				continue
			}
			last, first = k, false
			if !fn(k, vals[i]) {
				return
			}
		}
		if sib == 0 || fence > hi {
			return
		}
		n = sib
	}
}

// Len counts keys (test helper).
func (t *Tree) Len(th *pmem.Thread) int {
	c := 0
	t.Scan(th, 0, ^uint64(0), func(uint64, uint64) bool { c++; return true })
	return c
}

// CheckInvariants validates sorted nodes and the global leaf-chain order on
// a quiescent tree.
func (t *Tree) CheckInvariants(th *pmem.Thread) error {
	// Find the leftmost leaf.
	n := t.pool.Root(th, t.opts.RootSlot)
	for t.level(th, n) > 0 {
		n = int64(th.Load(n + offLeftmost))
	}
	var prev uint64
	first := true
	for ; n != 0; n = t.sibling(th, n) {
		cnt := t.count(th, n)
		for i := 0; i < cnt; i++ {
			k := t.key(th, n, i)
			if !first && k <= prev {
				return fmt.Errorf("blink: leaf chain unsorted at %d", k)
			}
			prev, first = k, false
		}
	}
	return nil
}
