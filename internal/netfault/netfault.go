// Package netfault wraps net.Conn and net.Listener with deterministic,
// seeded fault injection: added latency, partial reads and writes, stalls,
// mid-stream connection resets, and byte corruption. It is the network-side
// analogue of the pmem package's crash simulator — the same faults a
// hostile or merely unlucky network delivers, on demand and reproducibly,
// so the server and client torture suites can assert the system's failure
// contract (no hangs, no lost acknowledged writes, corruption always caught
// at frame decode) instead of hoping.
//
// Faults are drawn per I/O operation from a per-connection PRNG seeded from
// Options.Seed (a wrapped listener derives each accepted connection's seed
// from its accept index, so a run's schedule is stable across repeats as
// long as accept order is). Goroutine interleaving still varies between
// runs — determinism here means the fault schedule, not the global
// execution order.
package netfault

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Options selects which faults a wrapped connection injects. The zero value
// injects nothing and costs one bounds check per I/O call.
type Options struct {
	// Seed keys the fault schedule. Connections wrapped directly use it as
	// is; a wrapped listener derives seed+i for the i-th accepted conn.
	Seed int64

	// ReadLatency / WriteLatency are added to every Read / Write call.
	ReadLatency  time.Duration
	WriteLatency time.Duration

	// StallEvery makes every Nth I/O operation (across reads and writes)
	// sleep for StallFor before proceeding: a bursty, head-of-line stall
	// rather than uniform latency. 0 disables.
	StallEvery int
	StallFor   time.Duration

	// PartialProb is the probability (0..1) that a Read or Write transfers
	// only a prefix this wakeup: reads return early with part of the
	// requested bytes, writes split the buffer across several underlying
	// syscalls. Both are legal per the io contracts — this shakes out
	// callers that assume one frame arrives in one call.
	PartialProb float64

	// CorruptProb is the probability (0..1) that a Read's returned bytes
	// have one byte XOR-flipped. Corruption is injected after the data
	// leaves the peer, so the peer's view stays consistent — exactly like
	// damage on the path.
	CorruptProb float64

	// ResetAfter closes the underlying connection abruptly after this many
	// I/O operations, mid-frame if that is where the count lands. 0
	// disables. Subsequent calls fail with the net package's closed-conn
	// error.
	ResetAfter int
}

// enabled reports whether any fault is configured.
func (o *Options) enabled() bool {
	return o.ReadLatency > 0 || o.WriteLatency > 0 ||
		(o.StallEvery > 0 && o.StallFor > 0) ||
		o.PartialProb > 0 || o.CorruptProb > 0 || o.ResetAfter > 0
}

// WrapConn wraps nc with fault injection per o. With a zero Options the
// conn is returned unwrapped — the disabled path costs nothing.
func WrapConn(nc net.Conn, o Options) net.Conn {
	if !o.enabled() {
		return nc
	}
	return &faultConn{Conn: nc, o: o, rng: rand.New(rand.NewSource(o.Seed))}
}

// WrapListener wraps ln so every accepted connection carries the faults in
// o, each with its own schedule (seed o.Seed+i for the i-th accept).
func WrapListener(ln net.Listener, o Options) net.Listener {
	return &faultListener{Listener: ln, o: o}
}

type faultListener struct {
	net.Listener
	o        Options
	accepted int64
	mu       sync.Mutex
}

func (l *faultListener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	o := l.o
	o.Seed += l.accepted
	l.accepted++
	l.mu.Unlock()
	return WrapConn(nc, o), nil
}

// faultConn injects o's faults around an underlying conn. The PRNG and op
// counter are mutex-guarded (draws only — never held across blocking I/O):
// a net.Conn must tolerate concurrent Read/Write, and the transports here
// run reader and writer goroutines against one conn.
type faultConn struct {
	net.Conn
	o Options

	mu  sync.Mutex
	rng *rand.Rand
	ops int
}

// plan draws this operation's fault decisions under the lock.
type ioPlan struct {
	stall   bool
	reset   bool
	partial bool
	corrupt bool
}

func (c *faultConn) plan(read bool) ioPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ops++
	var p ioPlan
	if c.o.StallEvery > 0 && c.o.StallFor > 0 && c.ops%c.o.StallEvery == 0 {
		p.stall = true
	}
	if c.o.ResetAfter > 0 && c.ops >= c.o.ResetAfter {
		p.reset = true
	}
	if c.o.PartialProb > 0 && c.rng.Float64() < c.o.PartialProb {
		p.partial = true
	}
	if read && c.o.CorruptProb > 0 && c.rng.Float64() < c.o.CorruptProb {
		p.corrupt = true
	}
	return p
}

// corruptAt draws the flip position for a corrupted read.
func (c *faultConn) corruptAt(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Intn(n)
}

// maxFragment caps a partial transfer: fragments stay small (dribbling
// TCP, not half-a-buffer chunks), so fault density per byte moved does not
// depend on how large a buffer the caller happened to pass.
const maxFragment = 4 << 10

// cut draws a partial-transfer length in [1, min(n, maxFragment)].
func (c *faultConn) cut(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n > maxFragment {
		n = maxFragment
	}
	if n <= 1 {
		return n
	}
	return 1 + c.rng.Intn(n)
}

func (c *faultConn) Read(b []byte) (int, error) {
	p := c.plan(true)
	if p.stall {
		time.Sleep(c.o.StallFor)
	}
	if c.o.ReadLatency > 0 {
		time.Sleep(c.o.ReadLatency)
	}
	if p.reset {
		c.Conn.Close()
	}
	if p.partial && len(b) > 1 {
		b = b[:c.cut(len(b))]
	}
	n, err := c.Conn.Read(b)
	if n > 0 && p.corrupt {
		b[c.corruptAt(n)] ^= 0x55
	}
	return n, err
}

func (c *faultConn) Write(b []byte) (int, error) {
	p := c.plan(false)
	if p.stall {
		time.Sleep(c.o.StallFor)
	}
	if c.o.WriteLatency > 0 {
		time.Sleep(c.o.WriteLatency)
	}
	if p.reset {
		c.Conn.Close()
	}
	if !p.partial || len(b) <= 1 {
		return c.Conn.Write(b)
	}
	// Partial write: split the buffer and push it through several
	// underlying writes, re-drawing faults for each continuation — so a
	// reset can land between fragments, tearing a frame mid-flight the
	// way a dying route does. The caller still sees the io.Writer
	// contract (n == len(b) unless an error is returned).
	written := 0
	for written < len(b) {
		frag := b[written:]
		if len(frag) > 1 {
			frag = frag[:c.cut(len(frag))]
		}
		n, err := c.Conn.Write(frag)
		written += n
		if err != nil {
			return written, err
		}
		if written < len(b) {
			if q := c.plan(false); q.reset {
				c.Conn.Close()
			}
		}
	}
	return written, nil
}
