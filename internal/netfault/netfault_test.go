package netfault

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pipe returns both ends of a loopback TCP connection; loopback rather than
// net.Pipe because net.Pipe has no kernel buffer and would deadlock the
// single-goroutine transfer patterns below.
func pipe(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, err = ln.Accept()
	}()
	client, cerr := net.Dial("tcp", ln.Addr().String())
	<-done
	if err != nil || cerr != nil {
		t.Fatalf("pipe: accept=%v dial=%v", err, cerr)
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestZeroOptionsUnwrapped(t *testing.T) {
	c, _ := pipe(t)
	if w := WrapConn(c, Options{Seed: 42}); w != c {
		t.Fatal("zero fault options should return the conn unwrapped")
	}
}

// TestPartialWritesDeliverEverything: a heavily fragmenting writer still
// delivers every byte in order — the io.Writer contract holds through the
// fault layer.
func TestPartialWritesDeliverEverything(t *testing.T) {
	c, s := pipe(t)
	w := WrapConn(c, Options{Seed: 1, PartialProb: 1.0})
	msg := make([]byte, 64<<10)
	for i := range msg {
		msg[i] = byte(i * 31)
	}
	got := make([]byte, 0, len(msg))
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 4096)
		for len(got) < len(msg) {
			n, err := s.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	n, err := w.Write(msg)
	if err != nil || n != len(msg) {
		t.Fatalf("Write = (%d, %v), want (%d, nil)", n, err, len(msg))
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("fragmented write delivered different bytes")
	}
}

// TestPartialReadsReturnPrefixes: partial reads return short counts but
// never wrong bytes, and the stream reassembles exactly.
func TestPartialReadsReturnPrefixes(t *testing.T) {
	c, s := pipe(t)
	r := WrapConn(c, Options{Seed: 7, PartialProb: 1.0})
	msg := make([]byte, 32<<10)
	for i := range msg {
		msg[i] = byte(i * 13)
	}
	go func() {
		s.Write(msg)
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(r, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("partial reads reassembled different bytes")
	}
}

// TestCorruptionFlipsBytes: with CorruptProb=1 every non-empty read differs
// from what the peer sent, and with the same seed the damage is identical
// across runs.
func TestCorruptionFlipsBytes(t *testing.T) {
	read := func(seed int64) []byte {
		c, s := pipe(t)
		r := WrapConn(c, Options{Seed: seed, CorruptProb: 1.0})
		msg := []byte("the quick brown fox jumps over the lazy dog")
		go s.Write(msg)
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(r, got); err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(got, msg) {
			t.Fatal("CorruptProb=1 read returned clean bytes")
		}
		return got
	}
	a, b := read(3), read(3)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruption")
	}
}

// TestResetKillsConnection: after ResetAfter operations the connection is
// dead and every later call errors — nothing hangs.
func TestResetKillsConnection(t *testing.T) {
	c, s := pipe(t)
	w := WrapConn(c, Options{Seed: 9, ResetAfter: 3})
	for i := 0; i < 2; i++ {
		if _, err := w.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d before reset: %v", i, err)
		}
	}
	if _, err := w.Write([]byte("boom")); err == nil {
		t.Fatal("write at ResetAfter threshold succeeded")
	}
	if _, err := w.Write([]byte("after")); err == nil {
		t.Fatal("write after reset succeeded")
	}
	// The peer sees EOF (or a reset), not a hang.
	s.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := s.Read(buf); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Fatal("peer read timed out instead of seeing the reset")
			}
			return
		}
	}
}

// TestStallDelays: every-op stalls inflate wall time measurably.
func TestStallDelays(t *testing.T) {
	c, s := pipe(t)
	w := WrapConn(c, Options{Seed: 5, StallEvery: 1, StallFor: 20 * time.Millisecond})
	go io.Copy(io.Discard, s)
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := w.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("5 stalled writes took only %v, want >= 100ms", elapsed)
	}
}

// TestListenerDerivesSeeds: two conns accepted from one wrapped listener
// corrupt differently (different derived seeds) but both are wrapped.
func TestListenerDerivesSeeds(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := WrapListener(ln, Options{Seed: 11, CorruptProb: 1.0})
	defer fl.Close()

	msg := make([]byte, 256)
	for i := range msg {
		msg[i] = 0xAA
	}
	accept := func() []byte {
		nc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		sc, err := fl.Accept()
		if err != nil {
			t.Fatal(err)
		}
		defer sc.Close()
		go nc.Write(msg)
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(sc, got); err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(got, msg) {
			t.Fatal("accepted conn not corrupting")
		}
		return got
	}
	a, b := accept(), accept()
	if bytes.Equal(a, b) {
		t.Fatal("two accepted conns shared a fault schedule")
	}
}
