package fptree

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pmem"
)

func newTree(t testing.TB, opts Options) (*Tree, *pmem.Thread) {
	t.Helper()
	p := pmem.New(pmem.Config{Size: 128 << 20})
	th := p.NewThread()
	tr, err := New(p, th, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr, th
}

func TestBasicOps(t *testing.T) {
	tr, th := newTree(t, Options{})
	if _, ok := tr.Get(th, 1); ok {
		t.Error("empty tree found key")
	}
	for i := uint64(0); i < 5000; i++ {
		if err := tr.Insert(th, i*2, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 5000; i++ {
		if v, ok := tr.Get(th, i*2); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i*2, v, ok)
		}
		if _, ok := tr.Get(th, i*2+1); ok {
			t.Fatalf("found missing key %d", i*2+1)
		}
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
}

func TestOracle(t *testing.T) {
	tr, th := newTree(t, Options{LeafSize: 256})
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(1))
	for op := 0; op < 20000; op++ {
		k := rng.Uint64() % 1200
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			v := rng.Uint64()
			if err := tr.Insert(th, k, v); err != nil {
				t.Fatal(err)
			}
			oracle[k] = v
		case 5, 6:
			_, want := oracle[k]
			if got := tr.Delete(th, k); got != want {
				t.Fatalf("op %d: Delete(%d) = %v want %v", op, k, got, want)
			}
			delete(oracle, k)
		default:
			want, wantOK := oracle[k]
			got, ok := tr.Get(th, k)
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", op, k, got, ok, want, wantOK)
			}
		}
	}
	if tr.Len(th) != len(oracle) {
		t.Fatalf("Len = %d oracle %d", tr.Len(th), len(oracle))
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
}

func TestScanSortedAcrossUnsortedLeaves(t *testing.T) {
	tr, th := newTree(t, Options{})
	rng := rand.New(rand.NewSource(2))
	m := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		k := rng.Uint64() % 50000
		tr.Insert(th, k, k)
		m[k] = true
	}
	var prev uint64
	first := true
	n := 0
	tr.Scan(th, 0, ^uint64(0), func(k, v uint64) bool {
		if !first && k <= prev {
			t.Fatalf("scan unsorted: %d after %d", k, prev)
		}
		prev, first = k, false
		n++
		return true
	})
	if n != len(m) {
		t.Fatalf("scan saw %d, want %d", n, len(m))
	}
}

func TestRebuildInnerEqualsOriginal(t *testing.T) {
	p := pmem.New(pmem.Config{Size: 128 << 20})
	th := p.NewThread()
	tr, err := New(p, th, Options{LeafSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	m := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		k := rng.Uint64() % 1000000
		tr.Insert(th, k, k+5)
		m[k] = k + 5
	}
	// Simulate restart: Open rebuilds the inner levels from the chain.
	tr2, err := Open(p, th, Options{LeafSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range m {
		if got, ok := tr2.Get(th, k); !ok || got != v {
			t.Fatalf("rebuilt Get(%d) = %d,%v", k, got, ok)
		}
	}
	if err := tr2.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
	// And it keeps working for writes.
	for i := uint64(0); i < 5000; i++ {
		if err := tr2.Insert(th, 2000000+i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr2.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
}

func TestCrashLeafAtomicity(t *testing.T) {
	p := pmem.New(pmem.Config{Size: 8 << 20, TrackCrashes: true})
	th := p.NewThread()
	tr, err := New(p, th, Options{LeafSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	committed := map[uint64]uint64{}
	for i := uint64(0); i < 9; i++ {
		tr.Insert(th, i*10, i)
		committed[i*10] = i
	}
	p.StartCrashLog()
	tr.Insert(th, 45, 99)  // plain insert
	tr.Insert(th, 20, 777) // out-of-place update
	tr.Delete(th, 70)
	oldTwenty := committed[20]
	oldSeventy := committed[70]
	delete(committed, 20)
	delete(committed, 70)
	rng := rand.New(rand.NewSource(4))
	for point := 0; point <= p.LogLen(); point++ {
		for _, mode := range []pmem.CrashMode{pmem.CrashNone, pmem.CrashAll, pmem.CrashRandom} {
			img := p.CrashImage(point, mode, rng)
			ith := img.NewThread()
			tr2, err := Open(img, ith, Options{LeafSize: 256})
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range committed {
				if got, ok := tr2.Get(ith, k); !ok || got != v {
					t.Fatalf("point %d mode %d: Get(%d) = %d,%v want %d", point, mode, k, got, ok, v)
				}
			}
			if v, ok := tr2.Get(ith, 45); ok && v != 99 {
				t.Fatalf("point %d: torn insert %d", point, v)
			}
			if v, ok := tr2.Get(ith, 20); !ok || (v != oldTwenty && v != 777) {
				t.Fatalf("point %d: upsert state (%d,%v)", point, v, ok)
			}
			if v, ok := tr2.Get(ith, 70); ok && v != oldSeventy {
				t.Fatalf("point %d: torn delete %d", point, v)
			}
			if err := tr2.CheckInvariants(ith); err != nil {
				t.Fatalf("point %d mode %d: %v", point, mode, err)
			}
		}
	}
}

func TestCrashSplitMicroLog(t *testing.T) {
	p := pmem.New(pmem.Config{Size: 8 << 20, TrackCrashes: true})
	th := p.NewThread()
	tr, err := New(p, th, Options{LeafSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	committed := map[uint64]uint64{}
	for i := uint64(0); i < 10; i++ { // leaf cap for 256B is 10
		tr.Insert(th, i*10, i)
		committed[i*10] = i
	}
	p.StartCrashLog()
	tr.Insert(th, 45, 99) // forces a split
	rng := rand.New(rand.NewSource(5))
	for point := 0; point <= p.LogLen(); point++ {
		for _, mode := range []pmem.CrashMode{pmem.CrashNone, pmem.CrashAll, pmem.CrashRandom} {
			img := p.CrashImage(point, mode, rng)
			ith := img.NewThread()
			tr2, err := Open(img, ith, Options{LeafSize: 256})
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range committed {
				if got, ok := tr2.Get(ith, k); !ok || got != v {
					t.Fatalf("point %d mode %d: Get(%d) = %d,%v want %d", point, mode, k, got, ok, v)
				}
			}
			if err := tr2.CheckInvariants(ith); err != nil {
				t.Fatalf("point %d mode %d: %v", point, mode, err)
			}
			if err := tr2.Insert(ith, 999, 1); err != nil {
				t.Fatal(err)
			}
			if v, ok := tr2.Get(ith, 999); !ok || v != 1 {
				t.Fatalf("point %d: post-crash insert lost", point)
			}
		}
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	tr, th0 := newTree(t, Options{LeafSize: 512})
	const stable = 3000
	for i := uint64(0); i < stable; i++ {
		tr.Insert(th0, i*2, i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := tr.Pool().NewThread()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 4000; i++ {
				if g%2 == 0 {
					k := rng.Uint64()%(stable*2) | 1
					if err := tr.Insert(th, k, k); err != nil {
						t.Error(err)
						return
					}
				} else {
					k := (rng.Uint64() % stable) * 2
					if v, ok := tr.Get(th, k); !ok || v != k/2 {
						t.Errorf("Get(%d) = %d,%v", k, v, ok)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := tr.CheckInvariants(tr.Pool().NewThread()); err != nil {
		t.Fatal(err)
	}
}
