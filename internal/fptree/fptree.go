// Package fptree implements FP-tree (Oukid et al., SIGMOD'16), the selective-
// persistence baseline: leaf nodes live in PM, inner nodes in volatile DRAM
// (plain Go memory here). Leaves keep unsorted records guarded by a bitmap
// plus one-byte key fingerprints that cut probe cache misses; splits are
// protected by a leaf-level micro-log. Because the inner levels are volatile,
// searches touch PM only at the leaf — the property that makes FP-tree search
// faster than FAST+FAIR at high PM read latency (Figure 5b) — but recovery
// must rebuild every inner node from the leaf chain, so instant recovery is
// impossible (§V of the paper; measured by RebuildInner).
//
// The original uses Intel TSX to guard inner-node concurrency; Go has no
// HTM, so a global reader/writer lock over the volatile structure plus
// per-leaf spinlocks substitutes (see DESIGN.md). The read path still scales
// to several threads and saturates the way Figure 7 shows.
package fptree

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/pmem"
)

const (
	offBitmap = 0
	offNext   = 8
	offLock   = 16 // volatile leaf spinlock
	offFP     = 32 // fingerprint bytes
	offRecs   = 96

	innerFanout = 64
)

// Options configures a Tree.
type Options struct {
	// LeafSize in bytes (multiple of 64). Default 1024, the paper's
	// fastest configuration.
	LeafSize int
	// RootSlot anchors the head leaf; RootSlot+4 holds the micro-log.
	RootSlot int
}

func (o *Options) fill() error {
	if o.LeafSize == 0 {
		o.LeafSize = 1024
	}
	if o.LeafSize < 256 || o.LeafSize%pmem.LineSize != 0 {
		return fmt.Errorf("fptree: bad LeafSize %d", o.LeafSize)
	}
	if o.RootSlot < 0 || o.RootSlot > 3 {
		return fmt.Errorf("fptree: RootSlot %d out of range", o.RootSlot)
	}
	return nil
}

// inner is a volatile internal node: child i covers keys < keys[i] ... the
// usual B+-tree routing, children are inner nodes or leaf offsets.
type inner struct {
	keys   []uint64
	kids   []*inner
	leaves []int64 // set on the last inner level instead of kids
}

// Tree is an FP-tree over a pmem.Pool.
type Tree struct {
	pool     *pmem.Pool
	opts     Options
	leafSize int64
	cap      int

	mu   sync.RWMutex // guards the volatile inner structure (TSX substitute)
	root *inner
	head int64 // first leaf (persistent anchor)
	log  int64
}

// New creates an empty tree.
func New(p *pmem.Pool, th *pmem.Thread, opts Options) (*Tree, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	t := handle(p, opts)
	leaf, err := t.allocLeaf(th)
	if err != nil {
		return nil, err
	}
	th.Persist(leaf, t.leafSize)
	p.SetRoot(th, opts.RootSlot, leaf)
	t.head = leaf
	t.root = &inner{leaves: []int64{leaf}}
	if err := t.initLog(th); err != nil {
		return nil, err
	}
	return t, nil
}

// Open attaches to an existing tree: it replays the micro-log and rebuilds
// the volatile inner levels (FP-tree's non-instant recovery).
func Open(p *pmem.Pool, th *pmem.Thread, opts Options) (*Tree, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	t := handle(p, opts)
	t.head = p.Root(th, opts.RootSlot)
	if t.head == 0 {
		return nil, fmt.Errorf("fptree: no tree at root slot %d", opts.RootSlot)
	}
	if err := t.initLog(th); err != nil {
		return nil, err
	}
	t.replayLog(th)
	t.RebuildInner(th)
	return t, nil
}

func handle(p *pmem.Pool, opts Options) *Tree {
	c := (opts.LeafSize - offRecs) / 16
	if c > 56 {
		c = 56 // fingerprint area is 56 bytes
	}
	return &Tree{pool: p, opts: opts, leafSize: int64(opts.LeafSize), cap: c}
}

// Pool returns the backing pool.
func (t *Tree) Pool() *pmem.Pool { return t.pool }

func (t *Tree) initLog(th *pmem.Thread) error {
	slot := t.opts.RootSlot + 4
	off := t.pool.Root(th, slot)
	if off == 0 {
		var err error
		off, err = t.pool.Alloc(24, pmem.LineSize)
		if err != nil {
			return err
		}
		th.Persist(off, 24)
		t.pool.SetRoot(th, slot, off)
	}
	t.log = off
	return nil
}

func (t *Tree) allocLeaf(th *pmem.Thread) (int64, error) {
	return t.pool.Alloc(t.leafSize, pmem.LineSize)
}

func fingerprint(key uint64) byte {
	x := key * 0x9e3779b97f4a7c15
	return byte(x >> 56)
}

func recOff(leaf int64, i int) int64 { return leaf + offRecs + int64(i)*16 }

func (t *Tree) fpByte(th *pmem.Thread, leaf int64, i int) byte {
	w := th.Load(leaf + offFP + int64(i/8*8))
	return byte(w >> uint(i%8*8))
}

func (t *Tree) setFPByte(th *pmem.Thread, leaf int64, i int, b byte) {
	off := leaf + offFP + int64(i/8*8)
	w := th.Load(off)
	sh := uint(i % 8 * 8)
	th.Store(off, w&^(uint64(0xff)<<sh)|uint64(b)<<sh)
}

// --- leaf spinlock ---------------------------------------------------------

func (t *Tree) lockLeaf(th *pmem.Thread, leaf int64) {
	for spins := 0; ; spins++ {
		if th.LoadVolatile(leaf+offLock) == 0 && th.CASVolatile(leaf+offLock, 0, 1) {
			return
		}
		if spins%64 == 63 {
			// Backoff is handled by the scheduler.
		}
	}
}

func (t *Tree) unlockLeaf(th *pmem.Thread, leaf int64) {
	th.StoreVolatile(leaf+offLock, 0)
}

// --- descent ---------------------------------------------------------------

// findLeaf routes to the leaf covering key. Caller holds t.mu (read or
// write). Inner access is plain Go memory: no PM latency, the FP-tree
// advantage.
func (t *Tree) findLeaf(key uint64) int64 {
	n := t.root
	for n.leaves == nil {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
		n = n.kids[i]
	}
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
	return n.leaves[i]
}

// Get returns the value stored under key.
func (t *Tree) Get(th *pmem.Thread, key uint64) (uint64, bool) {
	t.mu.RLock()
	leaf := t.findLeaf(key)
	t.mu.RUnlock()
	t.lockLeaf(th, leaf)
	defer t.unlockLeaf(th, leaf)
	i := t.probe(th, leaf, key)
	if i < 0 {
		return 0, false
	}
	return th.Load(recOff(leaf, i) + 8), true
}

// probe finds key's record slot via fingerprints, or -1.
func (t *Tree) probe(th *pmem.Thread, leaf int64, key uint64) int {
	bm := th.Load(leaf + offBitmap)
	fp := fingerprint(key)
	for i := 0; i < t.cap; i++ {
		if bm&(uint64(1)<<uint(i)) == 0 || t.fpByte(th, leaf, i) != fp {
			continue
		}
		if th.Load(recOff(leaf, i)) == key {
			return i
		}
	}
	return -1
}

// Insert stores val under key (upsert; updates are out-of-place with an
// atomic bitmap flip, as in the FP-tree paper).
func (t *Tree) Insert(th *pmem.Thread, key, val uint64) error {
	th.BeginPhase(pmem.PhaseSearch)
	defer th.EndPhase()
	for {
		t.mu.RLock()
		leaf := t.findLeaf(key)
		t.lockLeaf(th, leaf)
		bm := th.Load(leaf + offBitmap)
		free := -1
		for i := 0; i < t.cap; i++ {
			if bm&(uint64(1)<<uint(i)) == 0 {
				free = i
				break
			}
		}
		old := t.probe(th, leaf, key)
		if free < 0 && old < 0 {
			// Full: split under the writer lock, then retry.
			t.unlockLeaf(th, leaf)
			t.mu.RUnlock()
			if err := t.splitLeaf(th, key); err != nil {
				return err
			}
			continue
		}
		th.BeginPhase(pmem.PhaseUpdate)
		if old >= 0 && free < 0 {
			// No free slot for an out-of-place update: overwrite in
			// place (8-byte atomic), still failure-atomic.
			th.Store(recOff(leaf, old)+8, val)
			th.Flush(recOff(leaf, old)+8, 8)
		} else {
			th.Store(recOff(leaf, free), key)
			th.Store(recOff(leaf, free)+8, val)
			t.setFPByte(th, leaf, free, fingerprint(key))
			th.Flush(recOff(leaf, free), 16)
			th.Flush(leaf+offFP+int64(free/8*8), 8)
			nbm := bm | uint64(1)<<uint(free)
			if old >= 0 {
				nbm &^= uint64(1) << uint(old)
			}
			th.Store(leaf+offBitmap, nbm) // atomic commit
			th.Flush(leaf+offBitmap, 8)
		}
		t.unlockLeaf(th, leaf)
		t.mu.RUnlock()
		return nil
	}
}

// Delete removes key: one atomic bitmap store.
func (t *Tree) Delete(th *pmem.Thread, key uint64) bool {
	th.BeginPhase(pmem.PhaseSearch)
	defer th.EndPhase()
	t.mu.RLock()
	leaf := t.findLeaf(key)
	t.lockLeaf(th, leaf)
	defer func() {
		t.unlockLeaf(th, leaf)
		t.mu.RUnlock()
	}()
	i := t.probe(th, leaf, key)
	if i < 0 {
		return false
	}
	th.BeginPhase(pmem.PhaseUpdate)
	bm := th.Load(leaf + offBitmap)
	th.Store(leaf+offBitmap, bm&^(uint64(1)<<uint(i)))
	th.Flush(leaf+offBitmap, 8)
	return true
}

// splitLeaf splits the full leaf covering key under the global writer lock,
// journalled in the micro-log.
func (t *Tree) splitLeaf(th *pmem.Thread, key uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	leaf := t.findLeaf(key)
	t.lockLeaf(th, leaf)
	defer t.unlockLeaf(th, leaf)

	bm := th.Load(leaf + offBitmap)
	type rec struct {
		k uint64
		i int
	}
	var recs []rec
	for i := 0; i < t.cap; i++ {
		if bm&(uint64(1)<<uint(i)) != 0 {
			recs = append(recs, rec{th.Load(recOff(leaf, i)), i})
		}
	}
	if len(recs) < t.cap {
		return nil // someone else split meanwhile; retry outside
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].k < recs[b].k })
	sep := recs[len(recs)/2].k // upper half: keys >= sep

	sib, err := t.allocLeaf(th)
	if err != nil {
		return err
	}
	// Micro-log: record the split intent before mutating shared state.
	th.Store(t.log+8, uint64(leaf))
	th.Store(t.log+16, uint64(sib))
	th.Persist(t.log+8, 16)
	th.Store(t.log, 1)
	th.Flush(t.log, 8)

	// Copy the upper half into the sibling and persist it fully.
	var moved uint64
	j := 0
	for _, r := range recs[len(recs)/2:] {
		th.Store(recOff(sib, j), th.Load(recOff(leaf, r.i)))
		th.Store(recOff(sib, j)+8, th.Load(recOff(leaf, r.i)+8))
		t.setFPByte(th, sib, j, t.fpByte(th, leaf, r.i))
		moved |= uint64(1) << uint(r.i)
		j++
	}
	th.Store(sib+offBitmap, uint64(1)<<uint(j)-1)
	th.Store(sib+offNext, th.Load(leaf+offNext))
	th.Persist(sib, t.leafSize)

	// Link the sibling, then prune the moved records with one store.
	th.Store(leaf+offNext, uint64(sib))
	th.Flush(leaf+offNext, 8)
	th.Store(leaf+offBitmap, bm&^moved)
	th.Flush(leaf+offBitmap, 8)

	// Release the log and update the volatile inner structure.
	th.Store(t.log, 0)
	th.Flush(t.log, 8)
	t.innerInsert(sep, sib)
	return nil
}

// innerInsert installs (sep → sib) in the volatile structure. Caller holds
// the writer lock.
func (t *Tree) innerInsert(sep uint64, sib int64) {
	newRoot := t.insertRec(t.root, sep, sib)
	if newRoot != nil {
		t.root = newRoot
	}
}

// insertRec inserts into n's subtree; returns a replacement root when n
// split.
func (t *Tree) insertRec(n *inner, sep uint64, sib int64) *inner {
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > sep })
	if n.leaves != nil {
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = sep
		n.leaves = append(n.leaves, 0)
		copy(n.leaves[i+2:], n.leaves[i+1:])
		n.leaves[i+1] = sib
	} else {
		if r := t.insertRec(n.kids[i], sep, sib); r != nil {
			// Child split: splice its separator here.
			n.keys = append(n.keys, 0)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = r.keys[0]
			n.kids = append(n.kids, nil)
			copy(n.kids[i+2:], n.kids[i+1:])
			n.kids[i] = r.kids[0]
			n.kids[i+1] = r.kids[1]
		}
	}
	if len(n.keys) <= innerFanout {
		return nil
	}
	// Split n; return a mini-root (1 key, 2 children) for the caller.
	// Slices are copied, not re-sliced: n keeps the backing array and
	// will append into it again.
	mid := len(n.keys) / 2
	sepUp := n.keys[mid]
	right := &inner{keys: append([]uint64{}, n.keys[mid+1:]...)}
	n.keys = append([]uint64{}, n.keys[:mid]...)
	if n.leaves != nil {
		right.leaves = append([]int64{}, n.leaves[mid+1:]...)
		n.leaves = append([]int64{}, n.leaves[:mid+1]...)
	} else {
		right.kids = append([]*inner{}, n.kids[mid+1:]...)
		n.kids = append([]*inner{}, n.kids[:mid+1]...)
	}
	if t.root == n {
		t.root = &inner{keys: []uint64{sepUp}, kids: []*inner{n, right}}
		return nil
	}
	return &inner{keys: []uint64{sepUp}, kids: []*inner{n, right}}
}

// Scan visits pairs with lo <= key <= hi ascending. Each leaf is snapshotted
// under its lock and sorted (records are unsorted in PM — the read overhead
// the paper attributes to append-only designs).
func (t *Tree) Scan(th *pmem.Thread, lo, hi uint64, fn func(key, val uint64) bool) {
	t.mu.RLock()
	leaf := t.findLeaf(lo)
	t.mu.RUnlock()
	type kv struct{ k, v uint64 }
	var buf []kv
	for leaf != 0 {
		t.lockLeaf(th, leaf)
		bm := th.Load(leaf + offBitmap)
		buf = buf[:0]
		for i := 0; i < t.cap; i++ {
			if bm&(uint64(1)<<uint(i)) != 0 {
				buf = append(buf, kv{th.Load(recOff(leaf, i)), th.Load(recOff(leaf, i) + 8)})
			}
		}
		next := int64(th.Load(leaf + offNext))
		t.unlockLeaf(th, leaf)
		sort.Slice(buf, func(a, b int) bool { return buf[a].k < buf[b].k })
		for _, r := range buf {
			if r.k < lo {
				continue
			}
			if r.k > hi {
				return
			}
			if !fn(r.k, r.v) {
				return
			}
		}
		leaf = next
	}
}

// Len counts keys (test helper).
func (t *Tree) Len(th *pmem.Thread) int {
	c := 0
	t.Scan(th, 0, ^uint64(0), func(uint64, uint64) bool { c++; return true })
	return c
}

// replayLog finishes or discards a crashed split.
func (t *Tree) replayLog(th *pmem.Thread) {
	if th.Load(t.log) != 1 {
		return
	}
	leaf := int64(th.Load(t.log + 8))
	sib := int64(th.Load(t.log + 16))
	if int64(th.Load(leaf+offNext)) == sib {
		// The sibling is linked: complete the prune by dropping from
		// the old leaf every record that also exists in the sibling.
		sbm := th.Load(sib + offBitmap)
		sibKeys := map[uint64]bool{}
		for i := 0; i < t.cap; i++ {
			if sbm&(uint64(1)<<uint(i)) != 0 {
				sibKeys[th.Load(recOff(sib, i))] = true
			}
		}
		bm := th.Load(leaf + offBitmap)
		nbm := bm
		for i := 0; i < t.cap; i++ {
			if bm&(uint64(1)<<uint(i)) != 0 && sibKeys[th.Load(recOff(leaf, i))] {
				nbm &^= uint64(1) << uint(i)
			}
		}
		th.Store(leaf+offBitmap, nbm)
		th.Flush(leaf+offBitmap, 8)
	}
	th.Store(t.log, 0)
	th.Flush(t.log, 8)
}

// RebuildInner reconstructs the volatile inner levels from the persistent
// leaf chain. This is FP-tree's whole-index recovery cost (the reason the
// paper says strict instant recovery is impossible); callers can time it.
func (t *Tree) RebuildInner(th *pmem.Thread) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var leaves []int64
	var seps []uint64 // low key of each kept leaf after the first
	for leaf := t.head; leaf != 0; leaf = int64(th.Load(leaf + offNext)) {
		bm := th.Load(leaf + offBitmap)
		low := ^uint64(0)
		for i := 0; i < t.cap; i++ {
			if bm&(uint64(1)<<uint(i)) != 0 {
				if k := th.Load(recOff(leaf, i)); k < low {
					low = k
				}
			}
		}
		if low == ^uint64(0) && len(leaves) > 0 {
			continue // empty leaf: routing skips it, the chain keeps it
		}
		if len(leaves) > 0 {
			seps = append(seps, low)
		}
		leaves = append(leaves, leaf)
	}
	// Bottom level: group leaves into inner nodes of <= innerFanout kids.
	level := make([]*inner, 0, len(leaves)/innerFanout+1)
	var levelSeps []uint64
	for start := 0; start < len(leaves); start += innerFanout {
		end := start + innerFanout
		if end > len(leaves) {
			end = len(leaves)
		}
		child := &inner{
			leaves: append([]int64{}, leaves[start:end]...),
			keys:   append([]uint64{}, seps[start:end-1]...),
		}
		if start > 0 {
			levelSeps = append(levelSeps, seps[start-1])
		}
		level = append(level, child)
	}
	// Upper levels until a single root remains.
	for len(level) > 1 {
		var up []*inner
		var upSeps []uint64
		for start := 0; start < len(level); start += innerFanout {
			end := start + innerFanout
			if end > len(level) {
				end = len(level)
			}
			node := &inner{
				kids: append([]*inner{}, level[start:end]...),
				keys: append([]uint64{}, levelSeps[start:end-1]...),
			}
			if start > 0 {
				upSeps = append(upSeps, levelSeps[start-1])
			}
			up = append(up, node)
		}
		level, levelSeps = up, upSeps
	}
	t.root = level[0]
}

// CheckInvariants validates leaf-chain order (across leaves; in-leaf records
// are unsorted by design) and inner routing consistency.
func (t *Tree) CheckInvariants(th *pmem.Thread) error {
	var prevMax uint64
	first := true
	for leaf := t.head; leaf != 0; leaf = int64(th.Load(leaf + offNext)) {
		bm := th.Load(leaf + offBitmap)
		lo, hi := ^uint64(0), uint64(0)
		any := false
		seen := map[uint64]bool{}
		for i := 0; i < t.cap; i++ {
			if bm&(uint64(1)<<uint(i)) == 0 {
				continue
			}
			k := th.Load(recOff(leaf, i))
			if seen[k] {
				return fmt.Errorf("fptree: duplicate key %d in leaf %d", k, leaf)
			}
			seen[k] = true
			if t.fpByte(th, leaf, i) != fingerprint(k) {
				return fmt.Errorf("fptree: bad fingerprint for key %d", k)
			}
			any = true
			if k < lo {
				lo = k
			}
			if k > hi {
				hi = k
			}
		}
		if any {
			if !first && lo <= prevMax {
				return fmt.Errorf("fptree: leaf chain overlap at %d", lo)
			}
			prevMax, first = hi, false
		}
	}
	// Every key must be routable.
	bad := ""
	t.Scan(th, 0, ^uint64(0), func(k, v uint64) bool {
		if got, ok := t.Get(th, k); !ok || got != v {
			bad = fmt.Sprintf("key %d unroutable (%d,%v)", k, got, ok)
			return false
		}
		return true
	})
	if bad != "" {
		return fmt.Errorf("fptree: %s", bad)
	}
	return nil
}
