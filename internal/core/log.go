package core

import (
	"fmt"

	"repro/internal/pmem"
)

// FAST+Logging (the "L" baseline in Figure 5): in-node updates still use
// FAST, but node splits are protected by a legacy redo log instead of FAIR.
// Before a split the full pre-split node image is written to a persistent
// log area and committed; recovery restores the image when the commit flag
// is found set. The extra image write costs NodeSize/64 + 2 additional line
// flushes per split, which is exactly the overhead the paper measures at
// 7–18% of insertion time.
//
// Log layout at splitLog:
//
//	word 0  commit flag (1 = log valid)
//	word 1  target node offset
//	+16     NodeSize-byte node image
//
// The log offset is kept in pool root slot RootSlot+4, so logged trees may
// use root slots 0–3 only.

func (t *BTree) initSplitLog(th *pmem.Thread) error {
	if t.opts.RootSlot > 3 {
		return fmt.Errorf("%w: LoggedSplit requires RootSlot <= 3", ErrBadOptions)
	}
	slot := t.opts.RootSlot + 4
	off := t.pool.Root(th, slot)
	if off == 0 {
		var err error
		off, err = t.pool.Alloc(16+int64(t.nodeSize), pmem.LineSize)
		if err != nil {
			return err
		}
		th.Persist(off, 16+int64(t.nodeSize))
		t.pool.SetRoot(th, slot, off)
	}
	t.splitLog = off
	return nil
}

// splitLogged wraps the FAIR split body in a redo log record, making the
// node-local transformation a logged transaction the way wB+-tree and
// FP-tree splits are.
func (t *BTree) splitLogged(th *pmem.Thread, n node, level int, key, ptr uint64) error {
	lg := t.splitLog
	th.Store(lg+8, uint64(n.off))
	for w := int64(0); w < int64(t.nodeSize); w += 8 {
		th.Store(lg+16+w, th.Load(n.off+w))
	}
	th.Persist(lg+8, 8+int64(t.nodeSize))
	th.Store(lg, 1)
	th.Flush(lg, 8) // log commit

	sepKey, sib, err := t.splitBody(th, n, level)

	th.Store(lg, 0)
	th.Flush(lg, 8) // log release
	if err != nil {
		return err
	}
	if err := t.insertPending(th, n, sib, level, sepKey, key, ptr); err != nil {
		return err
	}
	return t.insertParent(th, n, level, sepKey, uint64(sib.off))
}

// replaySplitLog restores a node image whose logged split did not complete.
// The restored image may orphan an already-linked sibling node; with the
// volatile allocator that is a leak, not a correctness problem.
func (t *BTree) replaySplitLog(th *pmem.Thread) {
	lg := t.splitLog
	if lg == 0 || th.Load(lg) != 1 {
		return
	}
	nodeOff := int64(th.Load(lg + 8))
	for w := int64(0); w < int64(t.nodeSize); w += 8 {
		th.Store(nodeOff+w, th.Load(lg+16+w))
	}
	th.Persist(nodeOff, int64(t.nodeSize))
	th.StoreVolatile(nodeOff+offLock, 0)
	th.Store(lg, 0)
	th.Flush(lg, 8)
}
