package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pmem"
)

// The crash-injection suite is the repository's substitute for the paper's
// physical power-off experiments (§5.7), and is strictly more thorough: for
// a set of representative operations it enumerates *every* store/flush
// boundary as a crash point, and for each point checks that
//
//	(a) a reader on the un-recovered image returns correct results for all
//	    committed keys (endurable transient inconsistency),
//	(b) the in-flight operation is atomic: its key is either fully present
//	    (new value) or fully absent (old state), never mangled,
//	(c) eager recovery restores full structural invariants, and
//	(d) recovery is idempotent.

// crashTree builds a tracked tree, applies setup, then logs one operation
// and verifies every crash point of that operation.
func crashTree(t *testing.T, model pmem.MemModel, opts Options, setup map[uint64]uint64,
	setupOrder []uint64, op func(tr *BTree, th *pmem.Thread)) {
	t.Helper()
	p := pmem.New(pmem.Config{Size: 2 << 20, TrackCrashes: true, Model: model})
	th := p.NewThread()
	tr, err := New(p, th, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range setupOrder {
		if err := tr.Insert(th, k, setup[k]); err != nil {
			t.Fatal(err)
		}
	}
	p.StartCrashLog()
	op(tr, th)
	verifyAllCrashPoints(t, p, opts, setup, nil)
}

// verifyAllCrashPoints checks (a)–(d) for every crash point of the logged
// suffix. committed maps keys to values that must be intact at every point;
// inflight (may be nil) describes the single in-flight op's key and its
// legal outcomes.
type inflightOp struct {
	key    uint64
	oldVal uint64
	oldOK  bool // key existed before the op
	newVal uint64
	newOK  bool // key exists after the op
}

func verifyAllCrashPoints(t *testing.T, p *pmem.Pool, opts Options,
	committed map[uint64]uint64, inflight *inflightOp) {
	t.Helper()
	n := p.LogLen()
	modes := []pmem.CrashMode{pmem.CrashNone, pmem.CrashAll, pmem.CrashRandom}
	rng := rand.New(rand.NewSource(42))
	for point := 0; point <= n; point++ {
		for _, mode := range modes {
			img := p.CrashImage(point, mode, rng)
			tag := fmt.Sprintf("point=%d mode=%d", point, mode)
			verifyCrashImage(t, img, opts, committed, inflight, tag)
			if t.Failed() {
				return
			}
		}
	}
}

func verifyCrashImage(t *testing.T, img *pmem.Pool, opts Options,
	committed map[uint64]uint64, inflight *inflightOp, tag string) {
	t.Helper()
	th := img.NewThread()
	tr, err := Open(img, th, opts)
	if err != nil {
		t.Fatalf("%s: Open: %v", tag, err)
	}

	// (a) un-recovered reads tolerate the transient inconsistency.
	for k, v := range committed {
		got, ok := tr.Get(th, k)
		if !ok || got != v {
			t.Fatalf("%s: pre-recovery Get(%d) = %d,%v want %d,true", tag, k, got, ok, v)
		}
	}
	// (b) the in-flight op is failure-atomic.
	checkInflight := func(stage string) {
		if inflight == nil {
			return
		}
		got, ok := tr.Get(th, inflight.key)
		oldState := ok == inflight.oldOK && (!ok || got == inflight.oldVal)
		newState := ok == inflight.newOK && (!ok || got == inflight.newVal)
		if !oldState && !newState {
			t.Fatalf("%s: %s in-flight key %d in illegal state (%d,%v)",
				tag, stage, inflight.key, got, ok)
		}
	}
	checkInflight("pre-recovery")

	// (c) recovery restores full invariants and keeps committed data.
	if err := tr.Recover(th); err != nil {
		t.Fatalf("%s: Recover: %v", tag, err)
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatalf("%s: post-recovery: %v", tag, err)
	}
	for k, v := range committed {
		got, ok := tr.Get(th, k)
		if !ok || got != v {
			t.Fatalf("%s: post-recovery Get(%d) = %d,%v want %d,true", tag, k, got, ok, v)
		}
	}
	checkInflight("post-recovery")

	// (d) recovery is idempotent.
	if err := tr.Recover(th); err != nil {
		t.Fatalf("%s: second Recover: %v", tag, err)
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatalf("%s: after second Recover: %v", tag, err)
	}
}

// buildSetup returns n keys with a fixed stride so node population is
// deterministic.
func buildSetup(n int, stride, base uint64) (map[uint64]uint64, []uint64) {
	m := make(map[uint64]uint64, n)
	var order []uint64
	for i := 0; i < n; i++ {
		k := base + uint64(i)*stride
		m[k] = k * 3
		order = append(order, k)
	}
	return m, order
}

func forBothModels(t *testing.T, f func(t *testing.T, model pmem.MemModel)) {
	t.Run("TSO", func(t *testing.T) { f(t, pmem.TSO) })
	t.Run("NonTSO", func(t *testing.T) { f(t, pmem.NonTSO) })
}

func TestCrashInsertMiddle(t *testing.T) {
	forBothModels(t, func(t *testing.T, model pmem.MemModel) {
		setup, order := buildSetup(10, 10, 100) // keys 100..190
		p := pmem.New(pmem.Config{Size: 2 << 20, TrackCrashes: true, Model: model})
		th := p.NewThread()
		tr, _ := New(p, th, Options{})
		for _, k := range order {
			tr.Insert(th, k, setup[k])
		}
		p.StartCrashLog()
		tr.Insert(th, 145, 999) // middle insert, shifts half the node
		verifyAllCrashPoints(t, p, Options{}, setup,
			&inflightOp{key: 145, oldOK: false, newVal: 999, newOK: true})
	})
}

func TestCrashInsertHead(t *testing.T) {
	forBothModels(t, func(t *testing.T, model pmem.MemModel) {
		setup, order := buildSetup(10, 10, 100)
		p := pmem.New(pmem.Config{Size: 2 << 20, TrackCrashes: true, Model: model})
		th := p.NewThread()
		tr, _ := New(p, th, Options{})
		for _, k := range order {
			tr.Insert(th, k, setup[k])
		}
		p.StartCrashLog()
		tr.Insert(th, 5, 555) // head insert exercises the sentinel path
		verifyAllCrashPoints(t, p, Options{}, setup,
			&inflightOp{key: 5, oldOK: false, newVal: 555, newOK: true})
	})
}

func TestCrashInsertAppend(t *testing.T) {
	setup, order := buildSetup(10, 10, 100)
	p := pmem.New(pmem.Config{Size: 2 << 20, TrackCrashes: true})
	th := p.NewThread()
	tr, _ := New(p, th, Options{})
	for _, k := range order {
		tr.Insert(th, k, setup[k])
	}
	p.StartCrashLog()
	tr.Insert(th, 500, 50) // append at tail
	verifyAllCrashPoints(t, p, Options{}, setup,
		&inflightOp{key: 500, oldOK: false, newVal: 50, newOK: true})
}

func TestCrashUpsert(t *testing.T) {
	setup, order := buildSetup(10, 10, 100)
	p := pmem.New(pmem.Config{Size: 2 << 20, TrackCrashes: true})
	th := p.NewThread()
	tr, _ := New(p, th, Options{})
	for _, k := range order {
		tr.Insert(th, k, setup[k])
	}
	p.StartCrashLog()
	tr.Insert(th, 150, 7777) // in-place box update
	delete(setup, 150)
	verifyAllCrashPoints(t, p, Options{}, setup,
		&inflightOp{key: 150, oldVal: 450, oldOK: true, newVal: 7777, newOK: true})
}

func TestCrashDelete(t *testing.T) {
	forBothModels(t, func(t *testing.T, model pmem.MemModel) {
		setup, order := buildSetup(10, 10, 100)
		p := pmem.New(pmem.Config{Size: 2 << 20, TrackCrashes: true, Model: model})
		th := p.NewThread()
		tr, _ := New(p, th, Options{})
		for _, k := range order {
			tr.Insert(th, k, setup[k])
		}
		p.StartCrashLog()
		tr.Delete(th, 130)
		old := setup[130]
		delete(setup, 130)
		verifyAllCrashPoints(t, p, Options{}, setup,
			&inflightOp{key: 130, oldVal: old, oldOK: true, newOK: false})
	})
}

func TestCrashDeleteHead(t *testing.T) {
	setup, order := buildSetup(10, 10, 100)
	p := pmem.New(pmem.Config{Size: 2 << 20, TrackCrashes: true})
	th := p.NewThread()
	tr, _ := New(p, th, Options{})
	for _, k := range order {
		tr.Insert(th, k, setup[k])
	}
	p.StartCrashLog()
	tr.Delete(th, 100) // head delete duplicates the sentinel
	old := setup[100]
	delete(setup, 100)
	verifyAllCrashPoints(t, p, Options{}, setup,
		&inflightOp{key: 100, oldVal: old, oldOK: true, newOK: false})
}

func TestCrashDeleteLast(t *testing.T) {
	setup, order := buildSetup(10, 10, 100)
	p := pmem.New(pmem.Config{Size: 2 << 20, TrackCrashes: true})
	th := p.NewThread()
	tr, _ := New(p, th, Options{})
	for _, k := range order {
		tr.Insert(th, k, setup[k])
	}
	p.StartCrashLog()
	tr.Delete(th, 190) // tail delete: invalidate + terminator only
	old := setup[190]
	delete(setup, 190)
	verifyAllCrashPoints(t, p, Options{}, setup,
		&inflightOp{key: 190, oldVal: old, oldOK: true, newOK: false})
}

// TestCrashLeafSplit fills one leaf exactly and crashes inside the split of
// the next insert — the FAIR sequence (build, link, truncate, insert,
// parent update) in full.
func TestCrashLeafSplit(t *testing.T) {
	forBothModels(t, func(t *testing.T, model pmem.MemModel) {
		opts := Options{NodeSize: 256} // 12 slots, 11 max entries
		p := pmem.New(pmem.Config{Size: 2 << 20, TrackCrashes: true, Model: model})
		th := p.NewThread()
		tr, err := New(p, th, opts)
		if err != nil {
			t.Fatal(err)
		}
		setup := map[uint64]uint64{}
		for i := uint64(0); i < 11; i++ { // fill the root leaf
			k := 100 + i*10
			tr.Insert(th, k, k*3)
			setup[k] = k * 3
		}
		p.StartCrashLog()
		tr.Insert(th, 145, 999) // forces root-leaf split (root grow too)
		verifyAllCrashPoints(t, p, opts, setup,
			&inflightOp{key: 145, oldOK: false, newVal: 999, newOK: true})
	})
}

// TestCrashInternalSplit drives enough inserts to split an internal node and
// crashes through the cascade.
func TestCrashInternalSplit(t *testing.T) {
	opts := Options{NodeSize: 128} // 4 slots, 3 max entries: splits cascade fast
	p := pmem.New(pmem.Config{Size: 2 << 20, TrackCrashes: true})
	th := p.NewThread()
	tr, err := New(p, th, opts)
	if err != nil {
		t.Fatal(err)
	}
	setup := map[uint64]uint64{}
	for i := uint64(0); i < 30; i++ {
		k := i * 10
		tr.Insert(th, k, k+1)
		setup[k] = k + 1
	}
	if tr.Height(th) < 3 {
		t.Fatalf("setup did not build 3 levels (height %d)", tr.Height(th))
	}
	p.StartCrashLog()
	tr.Insert(th, 301, 42) // lands right of everything: splits rightmost spine
	verifyAllCrashPoints(t, p, opts, setup,
		&inflightOp{key: 301, oldOK: false, newVal: 42, newOK: true})
}

// TestCrashLoggedSplit exercises the FAST+Logging baseline's redo log.
func TestCrashLoggedSplit(t *testing.T) {
	opts := Options{NodeSize: 256, LoggedSplit: true}
	p := pmem.New(pmem.Config{Size: 2 << 20, TrackCrashes: true})
	th := p.NewThread()
	tr, err := New(p, th, opts)
	if err != nil {
		t.Fatal(err)
	}
	setup := map[uint64]uint64{}
	for i := uint64(0); i < 11; i++ {
		k := 100 + i*10
		tr.Insert(th, k, k*3)
		setup[k] = k * 3
	}
	p.StartCrashLog()
	tr.Insert(th, 145, 999)
	verifyAllCrashPoints(t, p, opts, setup,
		&inflightOp{key: 145, oldOK: false, newVal: 999, newOK: true})
}

// TestCrashCampaign runs a long random tape with op-boundary marks and
// random crash points, reconstructing the committed oracle per point.
func TestCrashCampaign(t *testing.T) {
	forBothModels(t, func(t *testing.T, model pmem.MemModel) {
		const nOps = 300
		opts := Options{NodeSize: 256}
		p := pmem.New(pmem.Config{Size: 8 << 20, TrackCrashes: true, Model: model})
		th := p.NewThread()
		tr, err := New(p, th, opts)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))

		type opRec struct {
			logPos int
			del    bool
			key    uint64
			val    uint64
		}
		var ops []opRec
		p.StartCrashLog()
		for i := 0; i < nOps; i++ {
			pos := p.Mark(int64(i))
			k := rng.Uint64() % 200
			if rng.Intn(4) == 0 {
				ops = append(ops, opRec{pos, true, k, 0})
				tr.Delete(th, k)
			} else {
				v := rng.Uint64()
				ops = append(ops, opRec{pos, false, k, v})
				if err := tr.Insert(th, k, v); err != nil {
					t.Fatal(err)
				}
			}
		}

		logLen := p.LogLen()
		crashRng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 120; trial++ {
			point := crashRng.Intn(logLen + 1)
			mode := []pmem.CrashMode{pmem.CrashNone, pmem.CrashAll, pmem.CrashRandom}[trial%3]

			// Committed ops: those whose mark precedes the point,
			// except the last one which is (potentially) in flight.
			nDone := 0
			for nDone < len(ops) && ops[nDone].logPos <= point {
				nDone++
			}
			oracle := map[uint64]uint64{}
			var fl *inflightOp
			if nDone > 0 {
				for _, o := range ops[:nDone-1] {
					if o.del {
						delete(oracle, o.key)
					} else {
						oracle[o.key] = o.val
					}
				}
				last := ops[nDone-1]
				oldVal, oldOK := oracle[last.key]
				if last.del {
					fl = &inflightOp{key: last.key, oldVal: oldVal, oldOK: oldOK, newOK: false}
				} else {
					fl = &inflightOp{key: last.key, oldVal: oldVal, oldOK: oldOK,
						newVal: last.val, newOK: true}
				}
				delete(oracle, last.key)
			}
			img := p.CrashImage(point, mode, crashRng)
			verifyCrashImage(t, img, opts,
				oracle, fl, fmt.Sprintf("trial=%d point=%d mode=%d", trial, point, mode))
			if t.Failed() {
				return
			}
		}
	})
}

// TestCrashThenContinue crashes, recovers, and keeps operating on the
// recovered tree — recovery must leave a fully writable tree.
func TestCrashThenContinue(t *testing.T) {
	opts := Options{NodeSize: 256}
	p := pmem.New(pmem.Config{Size: 8 << 20, TrackCrashes: true})
	th := p.NewThread()
	tr, err := New(p, th, opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[uint64]uint64{}
	for i := uint64(0); i < 500; i++ {
		tr.Insert(th, i, i)
		oracle[i] = i
	}
	p.StartCrashLog()
	for i := uint64(500); i < 600; i++ {
		tr.Insert(th, i, i)
	}
	rng := rand.New(rand.NewSource(3))
	for _, point := range []int{1, p.LogLen() / 3, p.LogLen() / 2, p.LogLen()} {
		img := p.CrashImage(point, pmem.CrashRandom, rng)
		ith := img.NewThread()
		tr2, err := Open(img, ith, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr2.Recover(ith); err != nil {
			t.Fatal(err)
		}
		// Continue operating post-recovery.
		for i := uint64(1000); i < 1500; i++ {
			if err := tr2.Insert(ith, i, i*2); err != nil {
				t.Fatal(err)
			}
		}
		for i := uint64(0); i < 500; i++ {
			if v, ok := tr2.Get(ith, i); !ok || v != i {
				t.Fatalf("point %d: committed Get(%d) = %d,%v", point, i, v, ok)
			}
		}
		for i := uint64(1000); i < 1500; i++ {
			if v, ok := tr2.Get(ith, i); !ok || v != i*2 {
				t.Fatalf("point %d: post-recovery Get(%d) = %d,%v", point, i, v, ok)
			}
		}
		if err := tr2.CheckInvariants(ith); err != nil {
			t.Fatalf("point %d: %v", point, err)
		}
	}
}

// TestCrashVacuum verifies Vacuum's merge steps are individually
// crash-consistent (readable at every cut; recovery restores invariants).
func TestCrashVacuum(t *testing.T) {
	opts := Options{NodeSize: 256}
	p := pmem.New(pmem.Config{Size: 8 << 20, TrackCrashes: true})
	th := p.NewThread()
	tr, err := New(p, th, opts)
	if err != nil {
		t.Fatal(err)
	}
	committed := map[uint64]uint64{}
	for i := uint64(0); i < 200; i++ {
		tr.Insert(th, i, i+7)
	}
	for i := uint64(0); i < 200; i++ {
		if i%8 != 0 {
			tr.Delete(th, i)
		} else {
			committed[i] = i + 7
		}
	}
	p.StartCrashLog()
	if err := tr.Vacuum(th); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	logLen := p.LogLen()
	for trial := 0; trial < 150; trial++ {
		point := rng.Intn(logLen + 1)
		mode := []pmem.CrashMode{pmem.CrashNone, pmem.CrashAll, pmem.CrashRandom}[trial%3]
		img := p.CrashImage(point, mode, rng)
		ith := img.NewThread()
		tr2, err := Open(img, ith, opts)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range committed {
			if got, ok := tr2.Get(ith, k); !ok || got != v {
				t.Fatalf("trial %d point %d: pre-recovery Get(%d) = %d,%v", trial, point, k, got, ok)
			}
		}
		if err := tr2.Recover(ith); err != nil {
			t.Fatal(err)
		}
		for k, v := range committed {
			if got, ok := tr2.Get(ith, k); !ok || got != v {
				t.Fatalf("trial %d point %d: post-recovery Get(%d) = %d,%v", trial, point, k, got, ok)
			}
		}
	}
}
