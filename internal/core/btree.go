package core

import (
	"fmt"
	"sync"

	"repro/internal/pmem"
)

// Options configures a BTree.
type Options struct {
	// NodeSize is the node size in bytes (multiple of 64, >= 128).
	// Default 512, the sweet spot found in Figure 3 of the paper.
	NodeSize int
	// RootSlot selects which pool root-pointer slot anchors this tree,
	// letting several trees share one pool (TPC-C uses this). Default 0.
	RootSlot int
	// LeafLocks makes readers take shared leaf latches, trading the
	// lock-free search's read-uncommitted isolation for serializable
	// point reads (the FAST+FAIR+LeafLock variant of Figure 7).
	LeafLocks bool
	// BinarySearch switches in-node search from the paper's linear scan
	// to binary search. Binary search is incompatible with the lock-free
	// protocol (it cannot honour the scan-direction rule), so it is for
	// single-threaded use only — it exists to reproduce Figure 3.
	BinarySearch bool
	// LoggedSplit replaces FAIR with legacy redo-logged splits (the
	// FAST+Logging baseline of Figure 5).
	LoggedSplit bool
	// InlineValues stores values directly in leaf records instead of
	// boxing them into arena cells. This is the paper's own setup — leaf
	// "pointers" are the values — and saves one allocation and one flush
	// per insert, but the caller must guarantee that values are unique
	// across the tree and non-zero: the duplicate-pointer protocol reads
	// equal adjacent record pointers as invalidity, and a zero pointer as
	// the array terminator. Insert rejects zero values in this mode.
	InlineValues bool
}

func (o *Options) fill() error {
	if o.NodeSize == 0 {
		o.NodeSize = 512
	}
	if o.NodeSize < 128 || o.NodeSize%pmem.LineSize != 0 {
		return fmt.Errorf("%w: NodeSize %d must be a multiple of %d and >= 128",
			ErrBadOptions, o.NodeSize, pmem.LineSize)
	}
	if o.RootSlot < 0 || o.RootSlot > 7 {
		return fmt.Errorf("%w: RootSlot %d out of range", ErrBadOptions, o.RootSlot)
	}
	return nil
}

// BTree is a FAST+FAIR persistent B+-tree over a pmem.Pool.
//
// All methods take a *pmem.Thread; concurrent use requires one Thread per
// goroutine. Writers serialise per node with volatile latches; readers are
// lock-free (or take shared leaf latches with Options.LeafLocks).
type BTree struct {
	pool       *pmem.Pool
	opts       Options
	nodeSize   int
	slots      int // record slots per node
	maxEntries int // slots - 1: the last slot always keeps a zero ptr
	rootMu     sync.Mutex
	splitLog   int64     // redo-log area for Options.LoggedSplit
	scratch    sync.Pool // *scanScratch, reused across Scans
}

// New creates an empty tree anchored at opts.RootSlot and persists it.
func New(p *pmem.Pool, th *pmem.Thread, opts Options) (*BTree, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	t := newHandle(p, opts)
	root, err := t.allocNode(th, 0, 0, 0)
	if err != nil {
		return nil, err
	}
	th.Persist(root.off, int64(t.nodeSize))
	p.SetRoot(th, opts.RootSlot, root.off)
	if opts.LoggedSplit {
		if err := t.initSplitLog(th); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Open attaches to a tree previously created in the pool (e.g. a crash
// image). It performs no recovery; call Recover to repair transient
// inconsistency eagerly, or rely on readers tolerating it and writers fixing
// it lazily.
func Open(p *pmem.Pool, th *pmem.Thread, opts Options) (*BTree, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	t := newHandle(p, opts)
	if p.Root(th, opts.RootSlot) == 0 {
		return nil, fmt.Errorf("%w: no tree at root slot %d", ErrCorrupt, opts.RootSlot)
	}
	if opts.LoggedSplit {
		if err := t.initSplitLog(th); err != nil {
			return nil, err
		}
		t.replaySplitLog(th)
	}
	return t, nil
}

func newHandle(p *pmem.Pool, opts Options) *BTree {
	slots := (opts.NodeSize - headerBytes) / recordBytes
	return &BTree{
		pool:       p,
		opts:       opts,
		nodeSize:   opts.NodeSize,
		slots:      slots,
		maxEntries: slots - 1,
	}
}

// Pool returns the backing pool.
func (t *BTree) Pool() *pmem.Pool { return t.pool }

// NodeSize returns the configured node size in bytes.
func (t *BTree) NodeSize() int { return t.nodeSize }

func (t *BTree) root(th *pmem.Thread) node {
	return node{t.pool.Root(th, t.opts.RootSlot)}
}

// Height returns the number of levels (1 for a lone leaf).
func (t *BTree) Height(th *pmem.Thread) int {
	return t.level(th, t.root(th)) + 1
}

// --- descent -------------------------------------------------------------

// descendToLeaf routes from the root to the leaf whose range covers key,
// following sibling pointers across in-flight splits (B-link move-right).
func (t *BTree) descendToLeaf(th *pmem.Thread, key uint64) node {
	n := t.root(th)
	for {
		if sib := t.sibling(th, n); sib.valid() && key >= t.lowKey(th, sib) {
			n = sib
			continue
		}
		if t.level(th, n) == 0 {
			return n
		}
		n = node{int64(t.routeChild(th, n, key))}
	}
}

// scanBound returns the index of the first zero pointer — the terminator —
// which upper-bounds right-to-left scans. In delete mode zero slots only
// spread leftward, so a bound read before the scan stays valid during it;
// stale non-zero slots *beyond* the terminator (pre-split leftovers, consumed
// lazily by fastInsert) are never visited. The scan is line-granular: one
// latency charge per record line, terminator located in the snapshot.
func (t *BTree) scanBound(th *pmem.Thread, n node) int {
	var ln [pmem.WordsPerLine]uint64
	for base := 0; base < t.slots; base += slotsPerLine {
		th.LoadLine(t.slotOff(n, base), &ln)
		for j := 0; j < slotsPerLine; j++ {
			if ln[2*j+1] == 0 {
				return base + j
			}
		}
	}
	return t.slots
}

// bracketSlot re-reads slot i with the per-word protocol: the key
// double-read bracketing the pointer and left-neighbour reads (Algorithm
// 3's validity check). It is the authority behind every line-snapshot
// candidate — the snapshot finds slots worth looking at, the bracket
// decides. The left neighbour must be read inside the bracket: a stale
// value could validate an entry whose pointer still holds the
// left-duplicate of an in-flight insert. Callers classify the readout:
//
//	k1 != k2                     torn (a shift is running): re-snapshot
//	k1 == k2, p == 0 or p == prev  committed invalid: skip the slot
//	k1 == k2, p != 0, p != prev    valid entry (k1, p)
func (t *BTree) bracketSlot(th *pmem.Thread, n node, i int) (k1, p, prev, k2 uint64) {
	k1 = t.keyAt(th, n, i)
	p = t.ptrAt(th, n, i)
	prev = t.leftPtrOf(th, n, i)
	k2 = t.keyAt(th, n, i)
	return
}

// The lock-free scans below are line-granular: whole cache lines are
// snapshotted (one latency charge and one batched stats update per line,
// see pmem.Thread.LoadLine) and the snapshot drives the slot walk, with
// per-word reads reserved for confirming candidate slots. Word order inside
// a snapshot follows the scan direction — ascending in insert mode,
// descending (LoadLineRev) in delete mode — so the FAST shift-visibility
// argument (an entry shifting toward the scan front is seen twice at worst;
// one shifting away is always copied to its destination before its source
// is overwritten, and the destination is read later) carries over word for
// word. When a candidate's bracket disagrees with the snapshot (the key
// re-read differs, or the bracket sees a different key than the snapshot
// did), the node shifted after the line was captured; the not-yet-processed
// remainder of that snapshot can no longer be trusted, so the line is
// re-snapshotted and the slot re-examined. A bracket that coherently shows
// an invalid slot (duplicate or zero pointer) is skipped, exactly as the
// per-word scans skipped it. The whole-scan switch-counter revalidation
// bracket is unchanged.

// routeChild finds the child covering key in internal node n: the pointer of
// the last valid entry with entryKey <= key, or the leftmost child when key
// precedes every entry. It runs lock-free under the switch-counter protocol.
func (t *BTree) routeChild(th *pmem.Thread, n node, key uint64) uint64 {
	if t.opts.BinarySearch {
		return t.routeChildBinary(th, n, key)
	}
	var ln [pmem.WordsPerLine]uint64
	for {
		sw := t.switchCtr(th, n)
		var best uint64
		found := false
		if sw%2 == 0 {
			// Insert direction: scan lines left to right, tracking the
			// last snapshot-valid entry with entryKey <= key, then
			// confirm that one slot. Snapshot validity (p != prev, both
			// from the same pass) keeps committed duplicates out of
			// the candidate seat, so a failed confirmation always
			// means a transient state: rescanning makes progress.
			cand := -1
			prev := t.leftmost(th, n)
		scan:
			for base := 0; base < t.slots; base += slotsPerLine {
				th.LoadLine(t.slotOff(n, base), &ln)
				for j := 0; j < slotsPerLine; j++ {
					k, p := ln[2*j], ln[2*j+1]
					if p == 0 {
						break scan
					}
					if k <= key && p != prev {
						cand = base + j
					}
					prev = p
				}
			}
			if cand >= 0 {
				k1, p, prevW, k2 := t.bracketSlot(th, n, cand)
				if k1 != k2 || k1 > key || p == 0 || p == prevW {
					continue
				}
				best, found = p, true
			}
		} else {
			// Delete direction: scan right to left from the
			// terminator (slots beyond it can hold stale pre-split
			// entries, see fastInsert); the first confirmed entry
			// with entryKey <= key wins.
			last := t.scanBound(th, n) - 1
		scanR:
			for base := (last / slotsPerLine) * slotsPerLine; base >= 0 && last >= 0; base -= slotsPerLine {
				th.LoadLineRev(t.slotOff(n, base), &ln)
				top := slotsPerLine - 1
				if base+top > last {
					top = last - base
				}
				for j := top; j >= 0; {
					k, p := ln[2*j], ln[2*j+1]
					if p == 0 || k > key {
						j--
						continue
					}
					k1, p2, prevW, k2 := t.bracketSlot(th, n, base+j)
					if k1 != k || k1 != k2 {
						th.LoadLineRev(t.slotOff(n, base), &ln)
						continue
					}
					if p2 == 0 || p2 == prevW {
						j--
						continue
					}
					best, found = p2, true
					break scanR
				}
			}
		}
		if t.switchCtr(th, n) != sw {
			continue
		}
		if !found {
			return t.leftmost(th, n)
		}
		return best
	}
}

// routeChildBinary is the Figure 3 binary-search variant (single-threaded).
func (t *BTree) routeChildBinary(th *pmem.Thread, n node, key uint64) uint64 {
	cnt := t.count(th, n)
	lo, hi := 0, cnt // first entry with entryKey > key
	for lo < hi {
		mid := (lo + hi) / 2
		if t.keyAt(th, n, mid) <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return t.leftmost(th, n)
	}
	return t.ptrAt(th, n, lo-1)
}

// --- point lookup ----------------------------------------------------------

// Get returns the value stored under key.
func (t *BTree) Get(th *pmem.Thread, key uint64) (uint64, bool) {
	n := t.descendToLeaf(th, key)
	for {
		if t.opts.LeafLocks {
			t.rlockNode(th, n)
		}
		box, found := t.leafFind(th, n, key)
		var sib node
		var right bool
		if !found {
			// The key may have moved right past us (in-flight
			// split); chase the sibling while it can cover key.
			sib = t.sibling(th, n)
			right = sib.valid() && key >= t.lowKey(th, sib)
		}
		if t.opts.LeafLocks {
			t.runlockNode(th, n)
		}
		if found {
			if t.opts.InlineValues {
				return box, true
			}
			return th.Load(int64(box)), true
		}
		if right {
			n = sib
			continue
		}
		return 0, false
	}
}

// leafFind locates key's value box in leaf n using the lock-free protocol:
// line snapshots drive the slot walk, candidate hits are confirmed with the
// per-entry key double-read + duplicate-pointer bracket, and the whole scan
// is revalidated against the switch counter (Algorithm 3).
func (t *BTree) leafFind(th *pmem.Thread, n node, key uint64) (uint64, bool) {
	if t.opts.BinarySearch {
		return t.leafFindBinary(th, n, key)
	}
	var ln [pmem.WordsPerLine]uint64
	for {
		sw := t.switchCtr(th, n)
		var box uint64
		found := false
		if sw%2 == 0 {
		scan:
			for base := 0; base < t.slots; base += slotsPerLine {
				th.LoadLine(t.slotOff(n, base), &ln)
				for j := 0; j < slotsPerLine; {
					k, p := ln[2*j], ln[2*j+1]
					if p == 0 {
						break scan
					}
					if k != key {
						j++
						continue
					}
					k1, p2, prev, k2 := t.bracketSlot(th, n, base+j)
					if k1 != key || k1 != k2 {
						th.LoadLine(t.slotOff(n, base), &ln)
						continue
					}
					if p2 == 0 || p2 == prev {
						j++
						continue
					}
					box, found = p2, true
					break scan
				}
			}
		} else {
			last := t.scanBound(th, n) - 1
		scanR:
			for base := (last / slotsPerLine) * slotsPerLine; base >= 0 && last >= 0; base -= slotsPerLine {
				th.LoadLineRev(t.slotOff(n, base), &ln)
				top := slotsPerLine - 1
				if base+top > last {
					top = last - base
				}
				for j := top; j >= 0; {
					k, p := ln[2*j], ln[2*j+1]
					if p == 0 || k != key {
						j--
						continue
					}
					k1, p2, prev, k2 := t.bracketSlot(th, n, base+j)
					if k1 != key || k1 != k2 {
						th.LoadLineRev(t.slotOff(n, base), &ln)
						continue
					}
					if p2 == 0 || p2 == prev {
						j--
						continue
					}
					box, found = p2, true
					break scanR
				}
			}
		}
		if t.switchCtr(th, n) != sw {
			continue
		}
		return box, found
	}
}

func (t *BTree) leafFindBinary(th *pmem.Thread, n node, key uint64) (uint64, bool) {
	cnt := t.count(th, n)
	lo, hi := 0, cnt
	for lo < hi {
		mid := (lo + hi) / 2
		if t.keyAt(th, n, mid) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < cnt && t.keyAt(th, n, lo) == key && t.ptrAt(th, n, lo) != t.leftPtrOf(th, n, lo) {
		return t.ptrAt(th, n, lo), true
	}
	return 0, false
}

// --- range scan ------------------------------------------------------------

// scanScratch is the reusable leaf-snapshot buffer pair behind Scan. It is
// pooled on the tree so steady-state scans allocate nothing.
type scanScratch struct {
	keys  []uint64
	boxes []uint64
}

// Scan visits key/value pairs with lo <= key <= hi in ascending key order,
// calling fn for each; fn returning false stops the scan. Under concurrent
// writes the scan has the paper's read-uncommitted semantics. Steady-state
// scans are allocation-free: the per-leaf snapshot buffers come from a pool.
func (t *BTree) Scan(th *pmem.Thread, lo, hi uint64, fn func(key, val uint64) bool) {
	if hi < lo {
		return
	}
	sc, _ := t.scratch.Get().(*scanScratch)
	if sc == nil {
		sc = new(scanScratch)
	}
	defer t.scratch.Put(sc)
	n := t.descendToLeaf(th, lo)
	keys, boxes := sc.keys, sc.boxes
	defer func() { sc.keys, sc.boxes = keys, boxes }()
	last := lo
	first := true
	for n.valid() {
		if t.opts.LeafLocks {
			t.rlockNode(th, n)
		}
		keys, boxes = t.leafCollect(th, n, keys[:0], boxes[:0])
		sib := t.sibling(th, n)
		if t.opts.LeafLocks {
			t.runlockNode(th, n)
		}
		for i, k := range keys {
			if k < lo || k > hi {
				continue
			}
			// Monotonic filter: in-flight splits briefly expose an
			// entry in both a node and its new sibling.
			if !first && k <= last {
				continue
			}
			last, first = k, false
			v := boxes[i]
			if !t.opts.InlineValues {
				v = th.Load(int64(boxes[i]))
			}
			if !fn(k, v) {
				return
			}
		}
		if !sib.valid() || t.lowKey(th, sib) > hi {
			return
		}
		n = sib
	}
}

// leafCollect snapshots a leaf's valid entries in ascending order: line
// snapshots drive the walk — quiescent lines (verified by a double read)
// yield their entries directly, contended lines fall back to per-word
// bracket confirmation per slot — and the whole pass is revalidated against
// the switch counter.
func (t *BTree) leafCollect(th *pmem.Thread, n node, keys []uint64, boxes []uint64) ([]uint64, []uint64) {
	var ln, ln2 [pmem.WordsPerLine]uint64
	for {
		keys, boxes = keys[:0], boxes[:0]
		sw := t.switchCtr(th, n)
		if sw%2 == 0 {
			// Each line is read twice; two identical images mean the
			// line was quiescent across the window, so validity comes
			// straight from the image with no per-slot brackets. A
			// word changing and changing back between the reads would
			// need a delete (shifts move entries monotonically within
			// one direction; a delete flips the switch counter, which
			// the revalidation below rejects) or racing in-place value
			// updates, whose either value is a committed one. A line
			// caught mid-shift falls back to bracket-confirmed slots.
			prev := t.leftmost(th, n)
		scan:
			for base := 0; base < t.slots; base += slotsPerLine {
				off := t.slotOff(n, base)
				th.LoadLine(off, &ln)
				th.LoadLine(off, &ln2)
				if ln == ln2 {
					for j := 0; j < slotsPerLine; j++ {
						k, p := ln[2*j], ln[2*j+1]
						if p == 0 {
							break scan
						}
						if p != prev {
							keys = append(keys, k)
							boxes = append(boxes, p)
						}
						prev = p
					}
					continue
				}
				for j := 0; j < slotsPerLine; {
					k, p := ln2[2*j], ln2[2*j+1]
					if p == 0 {
						break scan
					}
					if p == prev {
						j++
						continue
					}
					k1, p2, prevW, k2 := t.bracketSlot(th, n, base+j)
					if k1 != k || k1 != k2 {
						th.LoadLine(off, &ln2)
						if j > 0 {
							prev = ln2[2*j-1]
						}
						continue
					}
					if p2 != 0 && p2 != prevW {
						keys = append(keys, k1)
						boxes = append(boxes, p2)
					}
					prev = p
					j++
				}
			}
		} else {
			// Delete direction: scan right to left so a concurrent
			// left-shift cannot move an entry past us, then reverse.
			last := t.scanBound(th, n) - 1
			for base := (last / slotsPerLine) * slotsPerLine; base >= 0 && last >= 0; base -= slotsPerLine {
				th.LoadLineRev(t.slotOff(n, base), &ln)
				top := slotsPerLine - 1
				if base+top > last {
					top = last - base
				}
				for j := top; j >= 0; {
					k, p := ln[2*j], ln[2*j+1]
					if p == 0 {
						j--
						continue
					}
					k1, p2, prevW, k2 := t.bracketSlot(th, n, base+j)
					if k1 != k || k1 != k2 {
						th.LoadLineRev(t.slotOff(n, base), &ln)
						continue
					}
					if p2 != 0 && p2 != prevW {
						keys = append(keys, k1)
						boxes = append(boxes, p2)
					}
					j--
				}
			}
			for i, j := 0, len(keys)-1; i < j; i, j = i+1, j-1 {
				keys[i], keys[j] = keys[j], keys[i]
				boxes[i], boxes[j] = boxes[j], boxes[i]
			}
			// A right-to-left scan can observe the same logical
			// entry at two slots mid-shift; drop adjacent
			// duplicates (keep the later-observed, lower slot).
			w := 0
			for i := 0; i < len(keys); i++ {
				if w > 0 && keys[w-1] == keys[i] {
					continue
				}
				keys[w], boxes[w] = keys[i], boxes[i]
				w++
			}
			keys, boxes = keys[:w], boxes[:w]
		}
		if t.switchCtr(th, n) == sw {
			return keys, boxes
		}
	}
}

// Len counts the keys in the tree (a full scan; intended for tests and
// examples, not hot paths).
func (t *BTree) Len(th *pmem.Thread) int {
	n := 0
	t.Scan(th, 0, ^uint64(0), func(uint64, uint64) bool { n++; return true })
	return n
}
