package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/pmem"
)

// Options configures a BTree.
type Options struct {
	// NodeSize is the node size in bytes (multiple of 64, >= 128).
	// Default 512, the sweet spot found in Figure 3 of the paper.
	NodeSize int
	// RootSlot selects which pool root-pointer slot anchors this tree,
	// letting several trees share one pool (TPC-C uses this). Default 0.
	RootSlot int
	// LeafLocks makes readers take shared leaf latches, trading the
	// lock-free search's read-uncommitted isolation for serializable
	// point reads (the FAST+FAIR+LeafLock variant of Figure 7).
	LeafLocks bool
	// BinarySearch switches in-node search from the paper's linear scan
	// to binary search. Binary search is incompatible with the lock-free
	// protocol (it cannot honour the scan-direction rule), so it is for
	// single-threaded use only — it exists to reproduce Figure 3.
	BinarySearch bool
	// LoggedSplit replaces FAIR with legacy redo-logged splits (the
	// FAST+Logging baseline of Figure 5).
	LoggedSplit bool
	// InlineValues stores values directly in leaf records instead of
	// boxing them into arena cells. This is the paper's own setup — leaf
	// "pointers" are the values — and saves one allocation and one flush
	// per insert, but the caller must guarantee that values are unique
	// across the tree and non-zero: the duplicate-pointer protocol reads
	// equal adjacent record pointers as invalidity, and a zero pointer as
	// the array terminator. Insert rejects zero values in this mode.
	InlineValues bool
}

func (o *Options) fill() error {
	if o.NodeSize == 0 {
		o.NodeSize = 512
	}
	if o.NodeSize < 128 || o.NodeSize%pmem.LineSize != 0 {
		return fmt.Errorf("%w: NodeSize %d must be a multiple of %d and >= 128",
			ErrBadOptions, o.NodeSize, pmem.LineSize)
	}
	if o.RootSlot < 0 || o.RootSlot > 7 {
		return fmt.Errorf("%w: RootSlot %d out of range", ErrBadOptions, o.RootSlot)
	}
	return nil
}

// BTree is a FAST+FAIR persistent B+-tree over a pmem.Pool.
//
// All methods take a *pmem.Thread; concurrent use requires one Thread per
// goroutine. Writers serialise per node with volatile latches; readers are
// lock-free (or take shared leaf latches with Options.LeafLocks).
type BTree struct {
	pool       *pmem.Pool
	opts       Options
	nodeSize   int
	slots      int // record slots per node
	maxEntries int // slots - 1: the last slot always keeps a zero ptr
	rootMu     sync.Mutex
	splitLog   int64 // redo-log area for Options.LoggedSplit
}

// New creates an empty tree anchored at opts.RootSlot and persists it.
func New(p *pmem.Pool, th *pmem.Thread, opts Options) (*BTree, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	t := newHandle(p, opts)
	root, err := t.allocNode(th, 0, 0, 0)
	if err != nil {
		return nil, err
	}
	th.Persist(root.off, int64(t.nodeSize))
	p.SetRoot(th, opts.RootSlot, root.off)
	if opts.LoggedSplit {
		if err := t.initSplitLog(th); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Open attaches to a tree previously created in the pool (e.g. a crash
// image). It performs no recovery; call Recover to repair transient
// inconsistency eagerly, or rely on readers tolerating it and writers fixing
// it lazily.
func Open(p *pmem.Pool, th *pmem.Thread, opts Options) (*BTree, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	t := newHandle(p, opts)
	if p.Root(th, opts.RootSlot) == 0 {
		return nil, fmt.Errorf("%w: no tree at root slot %d", ErrCorrupt, opts.RootSlot)
	}
	if opts.LoggedSplit {
		if err := t.initSplitLog(th); err != nil {
			return nil, err
		}
		t.replaySplitLog(th)
	}
	return t, nil
}

func newHandle(p *pmem.Pool, opts Options) *BTree {
	slots := (opts.NodeSize - headerBytes) / recordBytes
	return &BTree{
		pool:       p,
		opts:       opts,
		nodeSize:   opts.NodeSize,
		slots:      slots,
		maxEntries: slots - 1,
	}
}

// Pool returns the backing pool.
func (t *BTree) Pool() *pmem.Pool { return t.pool }

// NodeSize returns the configured node size in bytes.
func (t *BTree) NodeSize() int { return t.nodeSize }

func (t *BTree) root(th *pmem.Thread) node {
	return node{t.pool.Root(th, t.opts.RootSlot)}
}

// Height returns the number of levels (1 for a lone leaf).
func (t *BTree) Height(th *pmem.Thread) int {
	return t.level(th, t.root(th)) + 1
}

// pause backs off a spinlock loop.
func pause(spins int) {
	if spins%64 == 63 {
		runtime.Gosched()
	}
}

// --- descent -------------------------------------------------------------

// descendToLeaf routes from the root to the leaf whose range covers key,
// following sibling pointers across in-flight splits (B-link move-right).
func (t *BTree) descendToLeaf(th *pmem.Thread, key uint64) node {
	n := t.root(th)
	for {
		if sib := t.sibling(th, n); sib.valid() && key >= t.lowKey(th, sib) {
			n = sib
			continue
		}
		if t.level(th, n) == 0 {
			return n
		}
		n = node{int64(t.routeChild(th, n, key))}
	}
}

// scanBound returns the index of the first zero pointer — the terminator —
// which upper-bounds right-to-left scans. In delete mode zero slots only
// spread leftward, so a bound read before the scan stays valid during it;
// stale non-zero slots *beyond* the terminator (pre-split leftovers, consumed
// lazily by fastInsert) are never visited.
func (t *BTree) scanBound(th *pmem.Thread, n node) int {
	i := 0
	for i < t.slots && t.ptrAt(th, n, i) != 0 {
		i++
	}
	return i
}

// routeChild finds the child covering key in internal node n: the pointer of
// the last valid entry with entryKey <= key, or the leftmost child when key
// precedes every entry. It runs lock-free under the switch-counter protocol.
func (t *BTree) routeChild(th *pmem.Thread, n node, key uint64) uint64 {
	if t.opts.BinarySearch {
		return t.routeChildBinary(th, n, key)
	}
	for {
		sw := t.switchCtr(th, n)
		var best uint64
		found := false
		if sw%2 == 0 {
			// Insert direction: scan left to right. The left
			// neighbour pointer is re-read inside the key
			// double-read bracket: a stale value could validate an
			// entry whose pointer still holds the left-duplicate of
			// an in-flight insert.
			for i := 0; i < t.slots; i++ {
				k1 := t.keyAt(th, n, i)
				p := t.ptrAt(th, n, i)
				if p == 0 {
					break
				}
				prev := t.leftPtrOf(th, n, i)
				k2 := t.keyAt(th, n, i)
				if k1 == k2 && p != prev && k1 <= key {
					best, found = p, true
				}
			}
		} else {
			// Delete direction: scan right to left; first valid
			// entry with entryKey <= key wins. The scan starts at
			// the terminator, not the last slot: slots beyond it
			// can hold stale pre-split entries (see fastInsert).
			for i := t.scanBound(th, n) - 1; i >= 0; i-- {
				p := t.ptrAt(th, n, i)
				if p == 0 {
					continue
				}
				k1 := t.keyAt(th, n, i)
				prev := t.leftPtrOf(th, n, i)
				k2 := t.keyAt(th, n, i)
				if k1 == k2 && p != prev && k1 <= key {
					best, found = p, true
					break
				}
			}
		}
		if t.switchCtr(th, n) != sw {
			continue
		}
		if !found {
			return t.leftmost(th, n)
		}
		return best
	}
}

// routeChildBinary is the Figure 3 binary-search variant (single-threaded).
func (t *BTree) routeChildBinary(th *pmem.Thread, n node, key uint64) uint64 {
	cnt := t.count(th, n)
	lo, hi := 0, cnt // first entry with entryKey > key
	for lo < hi {
		mid := (lo + hi) / 2
		if t.keyAt(th, n, mid) <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return t.leftmost(th, n)
	}
	return t.ptrAt(th, n, lo-1)
}

// --- point lookup ----------------------------------------------------------

// Get returns the value stored under key.
func (t *BTree) Get(th *pmem.Thread, key uint64) (uint64, bool) {
	n := t.descendToLeaf(th, key)
	for {
		if t.opts.LeafLocks {
			t.rlockNode(th, n)
		}
		box, found := t.leafFind(th, n, key)
		var sib node
		var right bool
		if !found {
			// The key may have moved right past us (in-flight
			// split); chase the sibling while it can cover key.
			sib = t.sibling(th, n)
			right = sib.valid() && key >= t.lowKey(th, sib)
		}
		if t.opts.LeafLocks {
			t.runlockNode(th, n)
		}
		if found {
			if t.opts.InlineValues {
				return box, true
			}
			return th.Load(int64(box)), true
		}
		if right {
			n = sib
			continue
		}
		return 0, false
	}
}

// leafFind locates key's value box in leaf n using the lock-free protocol:
// per-entry key double-read around the pointer reads, duplicate-pointer
// validity, and whole-scan switch-counter revalidation (Algorithm 3).
func (t *BTree) leafFind(th *pmem.Thread, n node, key uint64) (uint64, bool) {
	if t.opts.BinarySearch {
		return t.leafFindBinary(th, n, key)
	}
	for {
		sw := t.switchCtr(th, n)
		var box uint64
		found := false
		if sw%2 == 0 {
			for i := 0; i < t.slots; i++ {
				k1 := t.keyAt(th, n, i)
				p := t.ptrAt(th, n, i)
				if p == 0 {
					break
				}
				prev := t.leftPtrOf(th, n, i)
				k2 := t.keyAt(th, n, i)
				if k1 == key && k2 == key && p != prev {
					box, found = p, true
					break
				}
			}
		} else {
			for i := t.scanBound(th, n) - 1; i >= 0; i-- {
				p := t.ptrAt(th, n, i)
				if p == 0 {
					continue
				}
				k1 := t.keyAt(th, n, i)
				prev := t.leftPtrOf(th, n, i)
				k2 := t.keyAt(th, n, i)
				if k1 == key && k2 == key && p != prev {
					box, found = p, true
					break
				}
			}
		}
		if t.switchCtr(th, n) != sw {
			continue
		}
		return box, found
	}
}

func (t *BTree) leafFindBinary(th *pmem.Thread, n node, key uint64) (uint64, bool) {
	cnt := t.count(th, n)
	lo, hi := 0, cnt
	for lo < hi {
		mid := (lo + hi) / 2
		if t.keyAt(th, n, mid) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < cnt && t.keyAt(th, n, lo) == key && t.ptrAt(th, n, lo) != t.leftPtrOf(th, n, lo) {
		return t.ptrAt(th, n, lo), true
	}
	return 0, false
}

// --- range scan ------------------------------------------------------------

// Scan visits key/value pairs with lo <= key <= hi in ascending key order,
// calling fn for each; fn returning false stops the scan. Under concurrent
// writes the scan has the paper's read-uncommitted semantics.
func (t *BTree) Scan(th *pmem.Thread, lo, hi uint64, fn func(key, val uint64) bool) {
	if hi < lo {
		return
	}
	n := t.descendToLeaf(th, lo)
	var keys []uint64
	var boxes []uint64
	last := lo
	first := true
	for n.valid() {
		if t.opts.LeafLocks {
			t.rlockNode(th, n)
		}
		keys, boxes = t.leafCollect(th, n, keys[:0], boxes[:0])
		sib := t.sibling(th, n)
		if t.opts.LeafLocks {
			t.runlockNode(th, n)
		}
		for i, k := range keys {
			if k < lo || k > hi {
				continue
			}
			// Monotonic filter: in-flight splits briefly expose an
			// entry in both a node and its new sibling.
			if !first && k <= last {
				continue
			}
			last, first = k, false
			v := boxes[i]
			if !t.opts.InlineValues {
				v = th.Load(int64(boxes[i]))
			}
			if !fn(k, v) {
				return
			}
		}
		if !sib.valid() || t.lowKey(th, sib) > hi {
			return
		}
		n = sib
	}
}

// leafCollect snapshots a leaf's valid entries in ascending order, with
// switch-counter revalidation.
func (t *BTree) leafCollect(th *pmem.Thread, n node, keys []uint64, boxes []uint64) ([]uint64, []uint64) {
	for {
		keys, boxes = keys[:0], boxes[:0]
		sw := t.switchCtr(th, n)
		if sw%2 == 0 {
			for i := 0; i < t.slots; i++ {
				k1 := t.keyAt(th, n, i)
				p := t.ptrAt(th, n, i)
				if p == 0 {
					break
				}
				prev := t.leftPtrOf(th, n, i)
				k2 := t.keyAt(th, n, i)
				if k1 == k2 && p != prev {
					keys = append(keys, k1)
					boxes = append(boxes, p)
				}
			}
		} else {
			// Delete direction: scan right to left so a concurrent
			// left-shift cannot move an entry past us, then reverse.
			for i := t.scanBound(th, n) - 1; i >= 0; i-- {
				p := t.ptrAt(th, n, i)
				if p == 0 {
					continue
				}
				k1 := t.keyAt(th, n, i)
				prev := t.leftPtrOf(th, n, i)
				k2 := t.keyAt(th, n, i)
				if k1 == k2 && p != prev {
					keys = append(keys, k1)
					boxes = append(boxes, p)
				}
			}
			for i, j := 0, len(keys)-1; i < j; i, j = i+1, j-1 {
				keys[i], keys[j] = keys[j], keys[i]
				boxes[i], boxes[j] = boxes[j], boxes[i]
			}
			// A right-to-left scan can observe the same logical
			// entry at two slots mid-shift; drop adjacent
			// duplicates (keep the later-observed, lower slot).
			w := 0
			for i := 0; i < len(keys); i++ {
				if w > 0 && keys[w-1] == keys[i] {
					continue
				}
				keys[w], boxes[w] = keys[i], boxes[i]
				w++
			}
			keys, boxes = keys[:w], boxes[:w]
		}
		if t.switchCtr(th, n) == sw {
			return keys, boxes
		}
	}
}

// Len counts the keys in the tree (a full scan; intended for tests and
// examples, not hot paths).
func (t *BTree) Len(th *pmem.Thread) int {
	n := 0
	t.Scan(th, 0, ^uint64(0), func(uint64, uint64) bool { n++; return true })
	return n
}
