package core

import "runtime"

// Spinlock backoff tuning. The first pauseActiveSpins iterations busy-wait
// with exponentially growing cost — cheap enough to win when the holder
// releases within its short critical section (FAST's in-node work is a few
// dozen stores) — after which every iteration yields the processor, so
// waiters on an oversubscribed machine stop burning the cycles the lock
// holder needs to finish.
const (
	pauseActiveSpins = 16
	pauseMaxCycles   = 64
)

// pause backs off a spinlock loop after the spins-th failed acquisition
// attempt: escalating busy-wait first, runtime.Gosched beyond.
func pause(spins int) {
	if spins < pauseActiveSpins {
		n := 2 << uint(spins)
		if n > pauseMaxCycles {
			n = pauseMaxCycles
		}
		spinWait(n)
		return
	}
	runtime.Gosched()
}

// spinWait burns roughly n cycles. It is kept out of line so the compiler
// cannot delete the empty loop at a call site.
//
//go:noinline
func spinWait(n int) {
	for i := 0; i < n; i++ {
	}
}
