package core

import (
	"fmt"

	"repro/internal/pmem"
)

// The read-modify-write primitives behind the store's value-log garbage
// accounting and relocation. All three run under the same per-node writer
// latch as Insert, so they serialise with every other writer touching the
// key; readers stay lock-free and observe either the old or the new value
// word, both of which are committed states (an aligned 8-byte store is
// failure- and concurrency-atomic in the paper's hardware contract).

// Exchange stores val under key exactly like Insert, additionally returning
// the value the key held before (existed reports whether there was one).
// The store layer needs the displaced word to retire the value-log record
// it may name.
func (t *BTree) Exchange(th *pmem.Thread, key, val uint64) (old uint64, existed bool, err error) {
	th.BeginPhase(pmem.PhaseSearch)
	defer th.EndPhase()

	n := t.descendToLeaf(th, key)
	t.lockNode(th, n)
	n = t.moveRightLocked(th, n, key)
	t.fixNodeLocked(th, n)

	if t.opts.InlineValues && val == 0 {
		t.unlockNode(th, n)
		return 0, false, fmt.Errorf("%w: InlineValues forbids zero values", ErrBadOptions)
	}
	if pos := t.findPosLocked(th, n, key); pos >= 0 {
		th.BeginPhase(pmem.PhaseUpdate)
		if t.opts.InlineValues {
			old = t.ptrAt(th, n, pos)
			t.storePtr(th, n, pos, val)
			th.Flush(t.slotOff(n, pos)+8, 8)
		} else {
			box := int64(t.ptrAt(th, n, pos))
			old = th.Load(box)
			th.Store(box, val)
			th.Flush(box, 8)
		}
		t.unlockNode(th, n)
		return old, true, nil
	}

	box := val
	if !t.opts.InlineValues {
		var err error
		box, err = t.newBox(th, val)
		if err != nil {
			t.unlockNode(th, n)
			return 0, false, err
		}
	}
	th.BeginPhase(pmem.PhaseUpdate)
	return 0, false, t.insertIntoNode(th, n, 0, key, box)
}

// ReplaceIf atomically replaces key's value old→new, refusing (and
// reporting false) when the key is absent or no longer holds old. It is
// the conditional swap value-log GC commits relocations with: a concurrent
// overwrite or delete between the GC's copy and its swap changes the value
// word, so the stale relocation is refused instead of clobbering fresher
// data. The compare and the store happen under the leaf latch, which every
// writer path (Insert, Exchange, Delete) also takes, so the
// compare-and-swap is atomic with respect to them.
//
// An ABA false-positive would need the value word to return to `old` while
// the relocation is in flight; for value-log refs that cannot happen, since
// a ref's offset can only be handed out again after its extent is freed,
// which the GC does strictly after this swap.
func (t *BTree) ReplaceIf(th *pmem.Thread, key, old, new uint64) bool {
	th.BeginPhase(pmem.PhaseSearch)
	defer th.EndPhase()

	n := t.descendToLeaf(th, key)
	t.lockNode(th, n)
	n = t.moveRightLocked(th, n, key)
	t.fixNodeLocked(th, n)

	pos := t.findPosLocked(th, n, key)
	if pos < 0 {
		t.unlockNode(th, n)
		return false
	}
	th.BeginPhase(pmem.PhaseUpdate)
	swapped := false
	if t.opts.InlineValues {
		// The record pointer is the value; zero would read as the array
		// terminator, so it can never be installed.
		if new != 0 && t.ptrAt(th, n, pos) == old {
			t.storePtr(th, n, pos, new)
			th.Flush(t.slotOff(n, pos)+8, 8)
			swapped = true
		}
	} else {
		box := int64(t.ptrAt(th, n, pos))
		if th.Load(box) == old {
			th.Store(box, new)
			th.Flush(box, 8)
			swapped = true
		}
	}
	t.unlockNode(th, n)
	return swapped
}

// Remove is Delete returning the value the key held, so the caller can
// retire a value-log record the displaced word names.
func (t *BTree) Remove(th *pmem.Thread, key uint64) (old uint64, existed bool) {
	th.BeginPhase(pmem.PhaseSearch)
	defer th.EndPhase()

	n := t.descendToLeaf(th, key)
	t.lockNode(th, n)
	n = t.moveRightLocked(th, n, key)
	t.fixNodeLocked(th, n)

	pos := t.findPosLocked(th, n, key)
	if pos < 0 {
		t.unlockNode(th, n)
		return 0, false
	}
	if t.opts.InlineValues {
		old = t.ptrAt(th, n, pos)
	} else {
		old = th.Load(int64(t.ptrAt(th, n, pos)))
	}
	th.BeginPhase(pmem.PhaseUpdate)
	t.fastDelete(th, n, pos)
	t.unlockNode(th, n)
	return old, true
}
