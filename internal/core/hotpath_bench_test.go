package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pmem"
)

// Hot-path microbenchmarks for the read path: in-node search where it
// happens (leafFind, routeChild) and the full point lookup (Get), each under
// a DRAM config (no latency charging — the pure bookkeeping cost) and a
// PM-latency config (300ns serial line reads, the paper's midpoint).

func hotpathConfigs() []struct {
	name string
	cfg  pmem.Config
} {
	return []struct {
		name string
		cfg  pmem.Config
	}{
		{"dram", pmem.Config{Size: 128 << 20}},
		{"pm300", pmem.Config{Size: 128 << 20, ReadLatency: 300 * time.Nanosecond}},
	}
}

// benchKeys is a deterministic splitmix64 stream (non-zero, unique w.h.p.).
func benchKeys(n int, seed uint64) []uint64 {
	keys := make([]uint64, n)
	x := seed
	for i := range keys {
		x += 0x9e3779b97f4a7c15
		z := x
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		keys[i] = z | 1
	}
	return keys
}

func benchTree(b *testing.B, cfg pmem.Config, n int) (*BTree, *pmem.Thread, []uint64) {
	b.Helper()
	p := pmem.New(cfg)
	th := p.NewThread()
	tr, err := New(p, th, Options{InlineValues: true})
	if err != nil {
		b.Fatal(err)
	}
	keys := benchKeys(n, 1)
	for _, k := range keys {
		if err := tr.Insert(th, k, k); err != nil {
			b.Fatal(err)
		}
	}
	return tr, th, keys
}

const hotpathKeys = 100000

// BenchmarkLeafFind measures the lock-free in-leaf search alone: the leaves
// are resolved up front, so each iteration is one leafFind call.
func BenchmarkLeafFind(b *testing.B) {
	for _, c := range hotpathConfigs() {
		b.Run(c.name, func(b *testing.B) {
			tr, th, keys := benchTree(b, c.cfg, hotpathKeys)
			const samples = 4096
			leaves := make([]node, samples)
			probe := make([]uint64, samples)
			for i := range leaves {
				k := keys[(i*2654435761)%len(keys)]
				leaves[i] = tr.descendToLeaf(th, k)
				probe[i] = k
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i % samples
				if _, ok := tr.leafFind(th, leaves[j], probe[j]); !ok {
					b.Fatal("key missing")
				}
			}
		})
	}
}

// BenchmarkRouteChild measures lock-free internal-node routing alone, on the
// root of a tree tall enough that the root is internal.
func BenchmarkRouteChild(b *testing.B) {
	for _, c := range hotpathConfigs() {
		b.Run(c.name, func(b *testing.B) {
			tr, th, keys := benchTree(b, c.cfg, hotpathKeys)
			root := tr.root(th)
			if tr.level(th, root) == 0 {
				b.Fatal("tree has no internal nodes")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := keys[(i*2654435761)%len(keys)]
				if tr.routeChild(th, root, k) == 0 {
					b.Fatal("routeChild returned NULL")
				}
			}
		})
	}
}

// BenchmarkTreeGet measures the full point lookup over preloaded keys.
func BenchmarkTreeGet(b *testing.B) {
	for _, c := range hotpathConfigs() {
		b.Run(c.name, func(b *testing.B) {
			tr, th, keys := benchTree(b, c.cfg, hotpathKeys)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := keys[(i*2654435761)%len(keys)]
				if _, ok := tr.Get(th, k); !ok {
					b.Fatal("key missing")
				}
			}
		})
	}
}

// BenchmarkTreeScan measures a 100-key range scan (leafCollect dominated).
func BenchmarkTreeScan(b *testing.B) {
	for _, c := range hotpathConfigs() {
		b.Run(c.name, func(b *testing.B) {
			tr, th, _ := benchTree(b, c.cfg, hotpathKeys)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo := uint64(i%64) << 58
				got := 0
				tr.Scan(th, lo, ^uint64(0), func(uint64, uint64) bool {
					got++
					return got < 100
				})
			}
		})
	}
}

// BenchmarkContendedPut hammers a deliberately small key range from a fixed
// number of writer goroutines so they collide on node latches — the
// workload the spinlock backoff (pause) exists for.
func BenchmarkContendedPut(b *testing.B) {
	for _, writers := range []int{2, 8} {
		b.Run(fmt.Sprintf("writers%d", writers), func(b *testing.B) {
			p := pmem.New(pmem.Config{Size: 256 << 20})
			th := p.NewThread()
			tr, err := New(p, th, Options{InlineValues: true})
			if err != nil {
				b.Fatal(err)
			}
			const hot = 512 // keys; a handful of leaves
			for k := uint64(1); k <= hot; k++ {
				if err := tr.Insert(th, k, k); err != nil {
					b.Fatal(err)
				}
			}
			var left atomic.Int64
			left.Store(int64(b.N))
			var wg sync.WaitGroup
			b.ReportAllocs()
			b.ResetTimer()
			for g := 0; g < writers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					wth := p.NewThread()
					for {
						i := left.Add(-1)
						if i < 0 {
							return
						}
						k := uint64(i)%hot + 1
						// Offset keeps values unique tree-wide, which
						// InlineValues' duplicate-pointer protocol needs.
						if err := tr.Insert(wth, k, uint64(i)+1<<32); err != nil {
							panic(err)
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}
