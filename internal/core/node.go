// Package core implements the paper's contribution: a persistent B+-tree
// whose in-node writes use Failure-Atomic ShifT (FAST) and whose structure
// modifications use Failure-Atomic In-place Rebalance (FAIR).
//
// Every 8-byte store performed by FAST and FAIR moves the tree from one
// consistent state either to another consistent state or to a *transient
// inconsistent* state that readers detect — via duplicate adjacent pointers —
// and tolerate. Because readers tolerate the inconsistency, the tree needs
// no logging, no copy-on-write, and no read latches: search is lock-free.
//
// The tree lives entirely inside a pmem.Pool arena. Node references and leaf
// values are arena offsets, keys and values are uint64, and leaf values are
// boxed into arena cells so that leaf record pointers are unique — the
// property the duplicate-pointer protocol relies on.
package core

import (
	"errors"
	"fmt"

	"repro/internal/pmem"
)

// Node layout. A node occupies NodeSize bytes, 64-byte aligned:
//
//	word 0  meta      level (bits 0..15) | deleted flag (bit 16)
//	word 1  leftmost  internal: leftmost child offset
//	                  leaf:     per-node odd sentinel (nodeOff|1), the
//	                            "pointer to the left of slot 0" in the
//	                            duplicate-pointer protocol
//	word 2  sibling   right sibling offset (0 = none)
//	word 3  switch    op-direction counter: even = last op was an insert
//	                  (readers scan left→right), odd = delete (right→left)
//	word 4  lastIdx   volatile entry-count hint; never trusted after crash
//	word 5  lock      volatile reader/writer spinlock word
//	word 6  lowKey    low fence key (B-link): smallest key this node may
//	                  hold; immutable once set
//	word 7  reserved
//	+64...  records   16-byte (key, ptr) slots; a zero ptr terminates the
//	                  array, and every slot at or beyond the terminator has
//	                  a zero ptr (maintained by FAST, see insert.go)
//
// Record i's key is valid iff ptr(i-1) != ptr(i), where ptr(-1) is the
// leftmost word. FAST's shifts are ordered so that at every instant exactly
// the committed keys are valid.
//
// The layout is deliberately line-granular, and the read path exploits it:
// the header fills exactly one 64-byte cache line, the record area is a
// whole number of lines (NodeSize is a multiple of pmem.LineSize), and each
// record line holds slotsPerLine complete (key, ptr) slots — no slot ever
// straddles a line. In-node search therefore snapshots whole lines
// (pmem.Thread.LoadLine: one latency charge and one batched stats update
// per line, the cost real hardware pays for a line fill) and falls back to
// per-word loads only to confirm candidate slots under the double-read +
// duplicate-pointer bracket. This is the access pattern the paper's
// accounting assumes: clflush counts write-back lines, and serial line
// accesses — not word loads — stand in for effective LLC misses.
const (
	offMeta     = 0
	offLeftmost = 8
	offSibling  = 16
	offSwitch   = 24
	offLastIdx  = 32
	offLock     = 40
	offLowKey   = 48
	headerBytes = 64
	recordBytes = 16

	// slotsPerLine is the number of record slots per cache line. The
	// header is exactly one line and NodeSize is a multiple of the line
	// size, so every record line is fully occupied by whole slots.
	slotsPerLine = pmem.LineSize / recordBytes

	metaLevelMask = 0xffff
	metaDeleted   = uint64(1) << 16

	writerBit = uint64(1)
	readerInc = uint64(2)
)

// Errors returned by the tree.
var (
	ErrTreeFull   = errors.New("core: arena exhausted")
	ErrCorrupt    = errors.New("core: structural invariant violated")
	ErrBadOptions = errors.New("core: invalid options")
)

// node is a typed view of a node offset. It carries the thread so the
// accessors read through the latency model.
type node struct {
	off int64
}

func (n node) valid() bool { return n.off != 0 }

func (t *BTree) meta(th *pmem.Thread, n node) uint64 { return th.Load(n.off + offMeta) }

func (t *BTree) level(th *pmem.Thread, n node) int {
	return int(t.meta(th, n) & metaLevelMask)
}

func (t *BTree) isDeleted(th *pmem.Thread, n node) bool {
	return t.meta(th, n)&metaDeleted != 0
}

func (t *BTree) leftmost(th *pmem.Thread, n node) uint64 { return th.Load(n.off + offLeftmost) }

func (t *BTree) sibling(th *pmem.Thread, n node) node {
	return node{int64(th.Load(n.off + offSibling))}
}

func (t *BTree) switchCtr(th *pmem.Thread, n node) uint64 { return th.Load(n.off + offSwitch) }

func (t *BTree) lowKey(th *pmem.Thread, n node) uint64 { return th.Load(n.off + offLowKey) }

func (t *BTree) lastIdxHint(th *pmem.Thread, n node) int {
	return int(th.LoadVolatile(n.off + offLastIdx))
}

func (t *BTree) setLastIdxHint(th *pmem.Thread, n node, v int) {
	th.StoreVolatile(n.off+offLastIdx, uint64(v))
}

// slotOff returns the arena offset of record slot i.
func (t *BTree) slotOff(n node, i int) int64 {
	return n.off + headerBytes + int64(i)*recordBytes
}

func (t *BTree) keyAt(th *pmem.Thread, n node, i int) uint64 {
	return th.Load(t.slotOff(n, i))
}

func (t *BTree) ptrAt(th *pmem.Thread, n node, i int) uint64 {
	return th.Load(t.slotOff(n, i) + 8)
}

func (t *BTree) storeKey(th *pmem.Thread, n node, i int, k uint64) {
	th.Store(t.slotOff(n, i), k)
}

func (t *BTree) storePtr(th *pmem.Thread, n node, i int, p uint64) {
	th.Store(t.slotOff(n, i)+8, p)
}

// leftPtrOf returns the pointer immediately to the left of slot i: slot
// i-1's ptr, or the leftmost word for slot 0. It is the reference value of
// the duplicate-pointer validity check.
func (t *BTree) leftPtrOf(th *pmem.Thread, n node, i int) uint64 {
	if i == 0 {
		return t.leftmost(th, n)
	}
	return t.ptrAt(th, n, i-1)
}

// count scans for the terminator under a write lock (where the node has no
// transient state) and returns the number of record slots in use.
func (t *BTree) count(th *pmem.Thread, n node) int {
	// The hint is exact while the node is locked by us, but cheap to
	// verify; fall back to a line-granular scan when it disagrees
	// (post-crash).
	h := t.lastIdxHint(th, n)
	if h >= 0 && h <= t.maxEntries {
		if (h == 0 || t.ptrAt(th, n, h-1) != 0) && t.ptrAt(th, n, h) == 0 {
			return h
		}
	}
	return t.scanBound(th, n)
}

// leafSentinel is the odd pseudo-pointer a leaf uses as its leftmost word.
// It is unique per node (derived from the node offset) and can never equal a
// real record pointer (allocations are 8-byte aligned, hence even).
func leafSentinel(off int64) uint64 { return uint64(off) | 1 }

// initNode writes a fresh node's header with plain stores. The caller
// persists the node before publishing it.
func (t *BTree) initNode(th *pmem.Thread, n node, level int, leftmost uint64, lowKey uint64) {
	if level == 0 && leftmost == 0 {
		leftmost = leafSentinel(n.off)
	}
	th.Store(n.off+offMeta, uint64(level)&metaLevelMask)
	th.Store(n.off+offLeftmost, leftmost)
	th.Store(n.off+offSibling, 0)
	th.Store(n.off+offSwitch, 0)
	th.StoreVolatile(n.off+offLastIdx, 0)
	th.StoreVolatile(n.off+offLock, 0)
	th.Store(n.off+offLowKey, lowKey)
}

// allocNode allocates and initialises a node.
func (t *BTree) allocNode(th *pmem.Thread, level int, leftmost uint64, lowKey uint64) (node, error) {
	off, err := t.pool.Alloc(int64(t.nodeSize), pmem.LineSize)
	if err != nil {
		return node{}, fmt.Errorf("%w: %v", ErrTreeFull, err)
	}
	n := node{off}
	t.initNode(th, n, level, leftmost, lowKey)
	return n, nil
}

// --- volatile node latches ---------------------------------------------
//
// Locks are volatile: their words are excluded from the crash model and
// recovery re-zeroes them. Writers always take the exclusive latch; readers
// take the shared latch only in LeafLock mode (the serializable variant
// evaluated as FAST+FAIR+LeafLock in Figure 7).

func (t *BTree) lockNode(th *pmem.Thread, n node) {
	off := n.off + offLock
	for spins := 0; ; spins++ {
		if th.LoadVolatile(off) == 0 && th.CASVolatile(off, 0, writerBit) {
			return
		}
		pause(spins)
	}
}

func (t *BTree) unlockNode(th *pmem.Thread, n node) {
	th.StoreVolatile(n.off+offLock, 0)
}

func (t *BTree) rlockNode(th *pmem.Thread, n node) {
	off := n.off + offLock
	for spins := 0; ; spins++ {
		v := th.LoadVolatile(off)
		if v&writerBit == 0 && th.CASVolatile(off, v, v+readerInc) {
			return
		}
		pause(spins)
	}
}

func (t *BTree) runlockNode(th *pmem.Thread, n node) {
	off := n.off + offLock
	for spins := 0; ; spins++ {
		v := th.LoadVolatile(off)
		if th.CASVolatile(off, v, v-readerInc) {
			return
		}
		pause(spins)
	}
}
