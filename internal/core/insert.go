package core

import (
	"fmt"

	"repro/internal/pmem"
)

// Insert stores val under key, replacing any existing value (an existing
// key's value box is updated in place with one atomic store + flush, which
// is failure-atomic by itself).
func (t *BTree) Insert(th *pmem.Thread, key, val uint64) error {
	th.BeginPhase(pmem.PhaseSearch)
	defer th.EndPhase()

	n := t.descendToLeaf(th, key)
	t.lockNode(th, n)
	n = t.moveRightLocked(th, n, key)
	t.fixNodeLocked(th, n)

	if t.opts.InlineValues && val == 0 {
		t.unlockNode(th, n)
		return fmt.Errorf("%w: InlineValues forbids zero values", ErrBadOptions)
	}
	if pos := t.findPosLocked(th, n, key); pos >= 0 {
		th.BeginPhase(pmem.PhaseUpdate)
		if t.opts.InlineValues {
			// The record pointer is the value: one atomic store
			// replaces it (uniqueness keeps neighbours valid).
			t.storePtr(th, n, pos, val)
			th.Flush(t.slotOff(n, pos)+8, 8)
		} else {
			box := int64(t.ptrAt(th, n, pos))
			th.Store(box, val)
			th.Flush(box, 8)
		}
		t.unlockNode(th, n)
		return nil
	}

	box := val
	if !t.opts.InlineValues {
		var err error
		box, err = t.newBox(th, val)
		if err != nil {
			t.unlockNode(th, n)
			return err
		}
	}
	th.BeginPhase(pmem.PhaseUpdate)
	return t.insertIntoNode(th, n, 0, key, box)
}

// newBox allocates and persists a value cell. The box is persistent before
// any tree entry can point at it, so a crash can orphan a box but never
// expose an unwritten one.
func (t *BTree) newBox(th *pmem.Thread, val uint64) (uint64, error) {
	off, err := t.pool.Alloc(8, 8)
	if err != nil {
		return 0, err
	}
	th.Store(off, val)
	th.Persist(off, 8)
	return uint64(off), nil
}

// moveRightLocked re-checks, under the node latch, whether key now belongs
// to a right sibling (Algorithm 1 lines 2–8) and hands the latch rightward
// until it holds the covering node.
func (t *BTree) moveRightLocked(th *pmem.Thread, n node, key uint64) node {
	for {
		sib := t.sibling(th, n)
		if !sib.valid() || key < t.lowKey(th, sib) {
			return n
		}
		t.unlockNode(th, n)
		t.lockNode(th, sib)
		n = sib
	}
}

// findPosLocked returns the slot of key in the latched node, or -1. Under
// the latch (and after fixNodeLocked) every entry before the terminator is
// valid, so a plain line-granular scan suffices — no brackets needed.
func (t *BTree) findPosLocked(th *pmem.Thread, n node, key uint64) int {
	var ln [pmem.WordsPerLine]uint64
	for base := 0; base < t.slots; base += slotsPerLine {
		th.LoadLine(t.slotOff(n, base), &ln)
		for j := 0; j < slotsPerLine; j++ {
			if ln[2*j+1] == 0 {
				return -1
			}
			if ln[2*j] == key {
				return base + j
			}
		}
	}
	return -1
}

// insertIntoNode inserts (key, ptr) into latched node n at the given level,
// splitting when full. It releases the latch.
func (t *BTree) insertIntoNode(th *pmem.Thread, n node, level int, key, ptr uint64) error {
	cnt := t.count(th, n)
	if cnt < t.maxEntries {
		t.fastInsert(th, n, key, ptr, cnt)
		t.unlockNode(th, n)
		return nil
	}
	if t.opts.LoggedSplit {
		return t.splitLogged(th, n, level, key, ptr)
	}
	return t.split(th, n, level, key, ptr)
}

func lineOf(off int64) int64 { return off / pmem.LineSize }

// fastInsert is Failure-Atomic ShifT (Algorithm 1): shift the entries that
// follow key one slot right — per slot, pointer first, then key — flushing
// each cache line before touching the next, then write the new entry as
// (left-duplicate pointer, key, pointer), where the final pointer store is
// the atomic commit.
//
// Every intermediate 8-byte store leaves the node readable: the duplicated
// pointers make exactly one copy of each shifted key valid, and the new key
// stays invalid (its pointer equals its left neighbour's) until the commit
// store.
func (t *BTree) fastInsert(th *pmem.Thread, n node, key, ptr uint64, cnt int) {
	// Flip the node to insert direction so lock-free readers scan
	// left-to-right (a right-shift can double-deliver but never hide an
	// entry from a left-to-right scan).
	if sw := t.switchCtr(th, n); sw%2 == 1 {
		th.Store(n.off+offSwitch, sw+1)
	}

	// Zero-beyond invariant: before slot cnt can become non-zero the slot
	// after it must hold a zero pointer, or a reader running past the old
	// terminator would walk into stale pre-split entries. The stale slot
	// is consumed one insert at a time after a split truncation.
	if cnt+1 < t.slots && t.ptrAt(th, n, cnt+1) != 0 {
		t.storePtr(th, n, cnt+1, 0)
		th.Flush(t.slotOff(n, cnt+1)+8, 8)
	}

	i := cnt - 1
	for ; i >= 0; i-- {
		k := t.keyAt(th, n, i)
		if k <= key {
			break
		}
		t.storePtr(th, n, i+1, t.ptrAt(th, n, i))
		th.StoreFence()
		t.storeKey(th, n, i+1, k)
		th.StoreFence()
		// Moving to a lower cache line: flush the finished one.
		if lineOf(t.slotOff(n, i+1)) != lineOf(t.slotOff(n, i)) {
			th.Flush(t.slotOff(n, i+1), recordBytes)
		}
	}
	pos := i + 1
	t.storePtr(th, n, pos, t.leftPtrOf(th, n, pos))
	th.StoreFence()
	t.storeKey(th, n, pos, key)
	th.StoreFence()
	t.storePtr(th, n, pos, ptr) // commit
	th.Flush(t.slotOff(n, pos), recordBytes)
	t.setLastIdxHint(th, n, cnt+1)
}

// split is Failure-Atomic In-place Rebalance (Algorithm 2): build the new
// sibling, persist it, link it (making the pair a "virtual single node"),
// truncate the overfull node with a single pointer store, insert the pending
// entry, and finally — after releasing the latch — insert the separator into
// the parent. A crash at any step leaves a tree readers handle: before the
// link the sibling is invisible; after the link the two nodes overlap but
// duplicate entries resolve to the same value boxes; after the truncation
// the separator may be missing from the parent, which the sibling chase
// hides and Recover repairs.
func (t *BTree) split(th *pmem.Thread, n node, level int, key, ptr uint64) error {
	sepKey, sib, err := t.splitBody(th, n, level)
	if err != nil {
		return err
	}
	if err := t.insertPending(th, n, sib, level, sepKey, key, ptr); err != nil {
		return err
	}
	return t.insertParent(th, n, level, sepKey, uint64(sib.off))
}

// insertPending installs the entry whose insertion triggered the split. It
// re-enters through the normal latched path: the moment splitBody stored the
// sibling link, concurrent writers' lock-free descents could reach either
// half, so the pending insert must re-latch, re-check move-right, apply lazy
// fixes, and recount — it may even split again if a racer filled the target.
func (t *BTree) insertPending(th *pmem.Thread, n, sib node, level int, sepKey, key, ptr uint64) error {
	target := n
	if key >= sepKey {
		target = sib
	}
	t.lockNode(th, target)
	target = t.moveRightLocked(th, target, key)
	t.fixNodeLocked(th, target)
	return t.insertIntoNode(th, target, level, key, ptr)
}

// splitBody performs the node-local part of FAIR on latched node n and
// releases the latch; the caller inserts the pending entry and installs the
// separator in the parent.
func (t *BTree) splitBody(th *pmem.Thread, n node, level int) (uint64, node, error) {
	cnt := t.maxEntries
	median := cnt / 2
	medKey := t.keyAt(th, n, median)

	var sib node
	var err error
	var scnt int
	if level == 0 {
		sib, err = t.allocNode(th, 0, 0, medKey)
		if err != nil {
			t.unlockNode(th, n)
			return 0, node{}, err
		}
		for i := median; i < cnt; i++ {
			t.storeKey(th, sib, scnt, t.keyAt(th, n, i))
			t.storePtr(th, sib, scnt, t.ptrAt(th, n, i))
			scnt++
		}
	} else {
		// The median entry's child becomes the sibling's leftmost and
		// its key the separator; it lives on in neither entry list.
		sib, err = t.allocNode(th, level, t.ptrAt(th, n, median), medKey)
		if err != nil {
			t.unlockNode(th, n)
			return 0, node{}, err
		}
		for i := median + 1; i < cnt; i++ {
			t.storeKey(th, sib, scnt, t.keyAt(th, n, i))
			t.storePtr(th, sib, scnt, t.ptrAt(th, n, i))
			scnt++
		}
	}
	th.Store(sib.off+offSibling, uint64(t.sibling(th, n).off))
	t.setLastIdxHint(th, sib, scnt)
	th.Persist(sib.off, int64(t.nodeSize))

	th.Store(n.off+offSibling, uint64(sib.off))
	th.Flush(n.off+offSibling, 8)

	t.storePtr(th, n, median, 0) // truncate: single atomic store
	th.Flush(t.slotOff(n, median)+8, 8)
	t.setLastIdxHint(th, n, median)
	t.unlockNode(th, n)

	return medKey, sib, nil
}

// insertParent installs (sepKey → sib) one level up, growing a new root when
// child was the root. It holds no latches while descending and at most one
// while inserting, so the single-latch discipline (and thus deadlock
// freedom) is preserved.
func (t *BTree) insertParent(th *pmem.Thread, child node, level int, sepKey uint64, sibPtr uint64) error {
	for {
		root := t.root(th)
		if root.off == child.off {
			t.rootMu.Lock()
			if t.root(th).off != child.off {
				t.rootMu.Unlock()
				continue
			}
			nr, err := t.allocNode(th, level+1, uint64(child.off), t.lowKey(th, child))
			if err != nil {
				t.rootMu.Unlock()
				return err
			}
			t.storeKey(th, nr, 0, sepKey)
			t.storePtr(th, nr, 0, sibPtr)
			t.setLastIdxHint(th, nr, 1)
			th.Persist(nr.off, int64(t.nodeSize))
			t.pool.SetRoot(th, t.opts.RootSlot, nr.off)
			t.rootMu.Unlock()
			return nil
		}
		if t.level(th, root) <= level {
			// A root grow for our level is in flight elsewhere.
			pause(1)
			continue
		}

		p := root
		for t.level(th, p) > level+1 {
			if sib := t.sibling(th, p); sib.valid() && sepKey >= t.lowKey(th, sib) {
				p = sib
				continue
			}
			p = node{int64(t.routeChild(th, p, sepKey))}
		}
		t.lockNode(th, p)
		p = t.moveRightLocked(th, p, sepKey)
		t.fixNodeLocked(th, p)
		if t.hasChildLocked(th, p, sibPtr) {
			// Another writer (or recovery) beat us to it — the
			// paper's "only one of them will succeed".
			t.unlockNode(th, p)
			return nil
		}
		return t.insertIntoNode(th, p, level+1, sepKey, sibPtr)
	}
}

// hasChildLocked reports whether latched internal node p already references
// child (as leftmost or an entry pointer).
func (t *BTree) hasChildLocked(th *pmem.Thread, p node, child uint64) bool {
	if t.leftmost(th, p) == child {
		return true
	}
	for i := 0; i < t.slots; i++ {
		ptr := t.ptrAt(th, p, i)
		if ptr == 0 {
			return false
		}
		if ptr == child {
			return true
		}
	}
	return false
}
