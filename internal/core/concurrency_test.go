package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// The concurrency suite exercises §IV of the paper: lock-free searches run
// against concurrent FAST shifts and FAIR splits and must never miss a key
// that is stably present, never fabricate a key that was never inserted, and
// never return a torn value. Run with -race.

func TestConcurrentDisjointInserts(t *testing.T) {
	tr, _ := newTestTree(t, Options{NodeSize: 256})
	const (
		goroutines = 8
		perG       = 3000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := tr.Pool().NewThread()
			for i := 0; i < perG; i++ {
				k := uint64(g*perG + i)
				if err := tr.Insert(th, k, k*2); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	th := tr.Pool().NewThread()
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < goroutines*perG; k++ {
		if v, ok := tr.Get(th, k); !ok || v != k*2 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
}

func TestConcurrentOverlappingUpserts(t *testing.T) {
	tr, _ := newTestTree(t, Options{NodeSize: 256})
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := tr.Pool().NewThread()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 4000; i++ {
				k := rng.Uint64() % 1000
				if err := tr.Insert(th, k, k+100); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	th := tr.Pool().NewThread()
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
	n := 0
	tr.Scan(th, 0, ^uint64(0), func(k, v uint64) bool {
		if v != k+100 {
			t.Errorf("key %d has value %d", k, v)
		}
		n++
		return true
	})
	if n > 1000 {
		t.Errorf("scan saw %d keys, max possible 1000", n)
	}
}

// TestLockFreeSearchDuringInserts: stable keys (inserted before the readers
// start, never touched again) must be found by every lock-free search while
// writers churn interleaved keys and force splits.
func TestLockFreeSearchDuringInserts(t *testing.T) {
	tr, th0 := newTestTree(t, Options{NodeSize: 256})
	const stable = 2000
	for i := uint64(0); i < stable; i++ {
		if err := tr.Insert(th0, i*10, i); err != nil { // keys 0,10,20,...
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			th := tr.Pool().NewThread()
			rng := rand.New(rand.NewSource(int64(g + 100)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Uint64()%(stable*10) | 1 // odd keys never collide with stable
				if err := tr.Insert(th, k, k); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	var readers sync.WaitGroup
	var lookups atomic.Int64
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			th := tr.Pool().NewThread()
			rng := rand.New(rand.NewSource(int64(g + 200)))
			for i := 0; i < 20000; i++ {
				k := (rng.Uint64() % stable) * 10
				v, ok := tr.Get(th, k)
				if !ok || v != k/10 {
					t.Errorf("lock-free Get(%d) = %d,%v want %d,true", k, v, ok, k/10)
					return
				}
				lookups.Add(1)
			}
		}(g)
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	if lookups.Load() == 0 {
		t.Fatal("no lookups ran")
	}
	if err := tr.CheckInvariants(tr.Pool().NewThread()); err != nil {
		t.Fatal(err)
	}
}

// TestLockFreeSearchDuringDeletes: readers hammer keys that are never
// deleted while writers delete the interleaved ones (right-to-left scan
// protocol under left shifts).
func TestLockFreeSearchDuringDeletes(t *testing.T) {
	tr, th0 := newTestTree(t, Options{NodeSize: 256})
	const n = 20000
	for i := uint64(0); i < n; i++ {
		if err := tr.Insert(th0, i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	// Deleters remove odd keys.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := tr.Pool().NewThread()
			for i := uint64(g*2 + 1); i < n; i += 4 {
				tr.Delete(th, i)
			}
		}(g)
	}
	// Readers check even keys.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := tr.Pool().NewThread()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 20000; i++ {
				k := (rng.Uint64() % (n / 2)) * 2
				if v, ok := tr.Get(th, k); !ok || v != k+1 {
					t.Errorf("Get(%d) = %d,%v want %d,true", k, v, ok, k+1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	th := tr.Pool().NewThread()
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		_, ok := tr.Get(th, i)
		if want := i%2 == 0; ok != want {
			t.Fatalf("Get(%d) present=%v want %v", i, ok, want)
		}
	}
}

// TestConcurrentMixed is the Figure 7(c) shape: every writer alternates
// 4 inserts / 16 searches / 1 delete while readers scan.
func TestConcurrentMixed(t *testing.T) {
	tr, th0 := newTestTree(t, Options{NodeSize: 256})
	const stable = 5000
	for i := uint64(0); i < stable; i++ {
		tr.Insert(th0, i*4, i) // stable keys ≡ 0 mod 4
	}
	var wg sync.WaitGroup
	var inserted sync.Map
	const churners = 6
	// Each churner owns a disjoint odd-key subspace so its map bookkeeping
	// is race-free; the tree still sees full cross-thread interleaving.
	churnKey := func(g int, r uint64) uint64 {
		return (r%stable)*4*churners + uint64(2*g+1)
	}
	for g := 0; g < churners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := tr.Pool().NewThread()
			rng := rand.New(rand.NewSource(int64(g + 1)))
			for round := 0; round < 500; round++ {
				for i := 0; i < 4; i++ {
					k := churnKey(g, rng.Uint64())
					if err := tr.Insert(th, k, k); err != nil {
						t.Error(err)
						return
					}
					inserted.Store(k, true)
				}
				for i := 0; i < 16; i++ {
					k := (rng.Uint64() % stable) * 4
					if v, ok := tr.Get(th, k); !ok || v != k/4 {
						t.Errorf("Get(%d) = %d,%v", k, v, ok)
						return
					}
				}
				k := churnKey(g, rng.Uint64())
				tr.Delete(th, k)
				inserted.Delete(k)
			}
		}(g)
	}
	// A scanner validates ordering and no fabricated keys.
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := tr.Pool().NewThread()
		for round := 0; round < 30; round++ {
			var prev uint64
			first := true
			tr.Scan(th, 0, ^uint64(0), func(k, v uint64) bool {
				if !first && k <= prev {
					t.Errorf("scan unsorted: %d after %d", k, prev)
					return false
				}
				prev, first = k, false
				if k%4 == 0 && k/4 < stable {
					if v != k/4 {
						t.Errorf("stable key %d value %d", k, v)
						return false
					}
				} else if k%2 == 0 {
					t.Errorf("fabricated key %d", k)
					return false
				}
				return true
			})
		}
	}()
	wg.Wait()
	th := tr.Pool().NewThread()
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
	// Everything recorded as inserted (and not later deleted) must exist.
	inserted.Range(func(key, _ any) bool {
		k := key.(uint64)
		if _, ok := tr.Get(th, k); !ok {
			// The key may have been deleted by another goroutine's
			// delete race on the same key; re-check the map.
			if _, still := inserted.Load(k); still {
				t.Errorf("inserted key %d missing", k)
			}
		}
		return true
	})
}

func TestConcurrentLeafLockMode(t *testing.T) {
	tr, th0 := newTestTree(t, Options{NodeSize: 256, LeafLocks: true})
	const stable = 3000
	for i := uint64(0); i < stable; i++ {
		tr.Insert(th0, i*2, i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := tr.Pool().NewThread()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 5000; i++ {
				if g%2 == 0 {
					k := rng.Uint64()%(stable*2) | 1
					if err := tr.Insert(th, k, k); err != nil {
						t.Error(err)
						return
					}
				} else {
					k := (rng.Uint64() % stable) * 2
					if v, ok := tr.Get(th, k); !ok || v != k/2 {
						t.Errorf("Get(%d) = %d,%v", k, v, ok)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := tr.CheckInvariants(tr.Pool().NewThread()); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentRootGrowth makes many goroutines race through repeated root
// splits from a tiny tree.
func TestConcurrentRootGrowth(t *testing.T) {
	tr, _ := newTestTree(t, Options{NodeSize: 128}) // 3 entries per node
	var wg sync.WaitGroup
	const goroutines = 8
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := tr.Pool().NewThread()
			for i := 0; i < 2000; i++ {
				k := uint64(i*goroutines + g)
				if err := tr.Insert(th, k, k+7); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	th := tr.Pool().NewThread()
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 2000*goroutines; k++ {
		if v, ok := tr.Get(th, k); !ok || v != k+7 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	if h := tr.Height(th); h < 4 {
		t.Errorf("height %d, want deep tree", h)
	}
}
