package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pmem"
)

// TestQuickRangeQueries: for random op tapes and random [lo, hi] windows,
// Scan must return exactly the oracle's keys in that window, sorted.
func TestQuickRangeQueries(t *testing.T) {
	f := func(seed int64) bool {
		tr, th := newTestTree(t, Options{NodeSize: 256})
		rng := rand.New(rand.NewSource(seed))
		oracle := map[uint64]uint64{}
		for op := 0; op < 3000; op++ {
			k := rng.Uint64() % 5000
			if rng.Intn(5) == 0 {
				tr.Delete(th, k)
				delete(oracle, k)
			} else {
				v := rng.Uint64()
				if err := tr.Insert(th, k, v); err != nil {
					t.Fatal(err)
				}
				oracle[k] = v
			}
		}
		for q := 0; q < 50; q++ {
			lo := rng.Uint64() % 5000
			hi := lo + rng.Uint64()%1000
			want := 0
			for k := range oracle {
				if k >= lo && k <= hi {
					want++
				}
			}
			got := 0
			prev := uint64(0)
			first := true
			bad := false
			tr.Scan(th, lo, hi, func(k, v uint64) bool {
				if k < lo || k > hi {
					bad = true
					return false
				}
				if !first && k <= prev {
					bad = true
					return false
				}
				if ov, ok := oracle[k]; !ok || ov != v {
					bad = true
					return false
				}
				prev, first = k, false
				got++
				return true
			})
			if bad || got != want {
				t.Logf("seed %d: range [%d,%d] got %d want %d bad=%v", seed, lo, hi, got, want, bad)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVacuumPreservesContent: Vacuum must never change the logical
// key/value content, whatever the delete pattern.
func TestQuickVacuumPreservesContent(t *testing.T) {
	f := func(seed int64, delMod uint8) bool {
		mod := uint64(delMod%9) + 2
		tr, th := newTestTree(t, Options{NodeSize: 256})
		oracle := map[uint64]uint64{}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 4000; i++ {
			k := rng.Uint64() % 10000
			if err := tr.Insert(th, k, k+3); err != nil {
				t.Fatal(err)
			}
			oracle[k] = k + 3
		}
		for k := range oracle {
			if k%mod != 0 {
				tr.Delete(th, k)
				delete(oracle, k)
			}
		}
		if err := tr.Vacuum(th); err != nil {
			t.Fatal(err)
		}
		if err := tr.CheckInvariants(th); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if tr.Len(th) != len(oracle) {
			return false
		}
		for k, v := range oracle {
			if got, ok := tr.Get(th, k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// TestLazyFixOnWritePath: after a mid-operation crash, writers touching the
// damaged node repair it (§4.2 lazy recovery) without any eager Recover
// call, and reads stay correct throughout.
func TestLazyFixOnWritePath(t *testing.T) {
	p := pmem.New(pmem.Config{Size: 4 << 20, TrackCrashes: true})
	th := p.NewThread()
	tr, err := New(p, th, Options{})
	if err != nil {
		t.Fatal(err)
	}
	committed := map[uint64]uint64{}
	for i := uint64(0); i < 20; i++ {
		tr.Insert(th, i*10, i)
		committed[i*10] = i
	}
	p.StartCrashLog()
	tr.Insert(th, 105, 1) // mid-node shift
	tr.Delete(th, 150)
	delete(committed, 150)

	rng := rand.New(rand.NewSource(31))
	for point := 1; point <= p.LogLen(); point += 3 {
		img := p.CrashImage(point, pmem.CrashRandom, rng)
		ith := img.NewThread()
		tr2, err := Open(img, ith, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// No Recover: write straight into the possibly-damaged region.
		for i := uint64(0); i < 30; i++ {
			if err := tr2.Insert(ith, 101+i*2, i); err != nil {
				t.Fatal(err)
			}
		}
		for k, v := range committed {
			if got, ok := tr2.Get(ith, k); !ok || got != v {
				t.Fatalf("point %d: committed Get(%d) = (%d,%v)", point, k, got, ok)
			}
		}
		for i := uint64(0); i < 30; i++ {
			if got, ok := tr2.Get(ith, 101+i*2); !ok || got != i {
				t.Fatalf("point %d: lazy-path Get(%d) = (%d,%v)", point, 101+i*2, got, ok)
			}
		}
		// The write path must have repaired every node it latched; a
		// delete pass over the same region then a full check proves
		// the damaged node is structurally sound again.
		for i := uint64(0); i < 30; i++ {
			tr2.Delete(ith, 101+i*2)
		}
		if err := tr2.Recover(ith); err != nil {
			t.Fatal(err)
		}
		if err := tr2.CheckInvariants(ith); err != nil {
			t.Fatalf("point %d: %v", point, err)
		}
	}
}

// TestSwitchCounterParity: the scan-direction flag must be even after an
// insert and odd after a delete on the affected leaf.
func TestSwitchCounterParity(t *testing.T) {
	tr, th := newTestTree(t, Options{})
	for i := uint64(0); i < 5; i++ {
		tr.Insert(th, i, i+1)
	}
	leaf := tr.descendToLeaf(th, 2)
	if sw := tr.switchCtr(th, leaf); sw%2 != 0 {
		t.Fatalf("switch counter odd after inserts: %d", sw)
	}
	tr.Delete(th, 2)
	if sw := tr.switchCtr(th, leaf); sw%2 != 1 {
		t.Fatalf("switch counter even after delete: %d", sw)
	}
	tr.Insert(th, 2, 3)
	if sw := tr.switchCtr(th, leaf); sw%2 != 0 {
		t.Fatalf("switch counter odd after re-insert: %d", sw)
	}
}

// TestDuplicatePointerInvariantUnderLock verifies that between operations a
// quiescent node never exposes duplicate adjacent pointers (at most one pair
// can exist transiently *during* an op; zero after).
func TestDuplicatePointerInvariantUnderLock(t *testing.T) {
	tr, th := newTestTree(t, Options{NodeSize: 256})
	rng := rand.New(rand.NewSource(17))
	for op := 0; op < 5000; op++ {
		k := rng.Uint64() % 3000
		if rng.Intn(3) == 0 {
			tr.Delete(th, k)
		} else if err := tr.Insert(th, k, k+1); err != nil {
			t.Fatal(err)
		}
		if op%500 == 0 {
			if err := tr.CheckInvariants(th); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
}

// TestBoxedValueStability: without InlineValues, a reader holding a value
// box across a concurrent upsert sees either the old or new value (the box
// is updated in place, never reallocated).
func TestBoxedValueStability(t *testing.T) {
	tr, th := newTestTree(t, Options{})
	tr.Insert(th, 5, 100)
	for i := uint64(0); i < 100; i++ {
		tr.Insert(th, 5, 100+i)
		v, ok := tr.Get(th, 5)
		if !ok || v != 100+i {
			t.Fatalf("upsert %d: got (%d,%v)", i, v, ok)
		}
	}
	if n := tr.Len(th); n != 1 {
		t.Fatalf("Len = %d", n)
	}
}
