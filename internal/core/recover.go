package core

import (
	"fmt"

	"repro/internal/pmem"
)

// fixNodeLocked is the paper's lazy recovery (§4.2), run by every writer
// right after latching a node: tolerable inconsistency left by a crash is
// repaired before the writer makes new changes. Readers never repair —
// they only tolerate.
//
// Two kinds of leftovers can exist:
//
//  1. A truncation that did not persist after a crashed FAIR split: the
//     node still holds entries at or beyond its sibling's low fence. The
//     single-store truncation is simply redone.
//  2. A duplicate-pointer pair from a crashed FAST shift: the garbage key
//     between the duplicates is deleted by completing the left shift.
func (t *BTree) fixNodeLocked(th *pmem.Thread, n node) {
	if sib := t.sibling(th, n); sib.valid() {
		fence := t.lowKey(th, sib)
		for i := 0; i < t.slots; i++ {
			if t.ptrAt(th, n, i) == 0 {
				break
			}
			if k := t.keyAt(th, n, i); k >= fence {
				// Guard: a true split leftover survives in the
				// sibling — as an entry (leaf split, vacuum
				// copy) or as the separator that became the
				// sibling's low fence (internal split, where
				// the median's child became the sibling's
				// leftmost). Never truncate an entry that
				// exists nowhere else.
				if k != fence && !t.siblingHasKey(th, sib, k) {
					break
				}
				t.storePtr(th, n, i, 0)
				th.Flush(t.slotOff(n, i)+8, 8)
				break
			}
		}
	}

	for {
		cnt := 0
		for cnt < t.slots && t.ptrAt(th, n, cnt) != 0 {
			cnt++
		}
		t.setLastIdxHint(th, n, cnt)
		fixed := false
		for i := 0; i < cnt; i++ {
			if t.ptrAt(th, n, i) == t.leftPtrOf(th, n, i) {
				// Complete the abandoned shift. Readers must
				// scan right-to-left while we shift left.
				if sw := t.switchCtr(th, n); sw%2 == 0 {
					th.Store(n.off+offSwitch, sw+1)
				}
				t.completeShiftLocked(th, n, i, cnt)
				fixed = true
				break
			}
		}
		if !fixed {
			return
		}
	}
}

// siblingHasKey reports whether key appears in sib's entries: the test that
// distinguishes a crashed-split leftover (safe to truncate — the sibling
// holds the surviving copy) from live data.
func (t *BTree) siblingHasKey(th *pmem.Thread, sib node, key uint64) bool {
	for i := 0; i < t.slots; i++ {
		if t.ptrAt(th, sib, i) == 0 {
			break
		}
		if t.keyAt(th, sib, i) == key {
			return true
		}
	}
	return false
}

// Recover eagerly repairs the whole tree after a crash: it clears latch
// words, applies the lazy fixes to every node, zeroes stale slots beyond
// each terminator, re-attaches dangling siblings to their parents, and
// completes crashed root splits. It must run with exclusive access to the
// pool (the post-crash, pre-restart situation).
//
// Recover is idempotent: running it on a consistent tree changes nothing,
// and running it twice equals running it once.
func (t *BTree) Recover(th *pmem.Thread) error {
	if t.opts.LoggedSplit {
		t.replaySplitLog(th)
	}

	// Complete a crashed root split first: the root must not have a
	// sibling. One new level per iteration; entries for the whole chain.
	for {
		root := t.root(th)
		if !t.sibling(th, root).valid() {
			break
		}
		level := t.level(th, root)
		nr, err := t.allocNode(th, level+1, uint64(root.off), t.lowKey(th, root))
		if err != nil {
			return err
		}
		i := 0
		for s := t.sibling(th, root); s.valid() && i < t.maxEntries; s = t.sibling(th, s) {
			t.storeKey(th, nr, i, t.lowKey(th, s))
			t.storePtr(th, nr, i, uint64(s.off))
			i++
		}
		t.setLastIdxHint(th, nr, i)
		th.Persist(nr.off, int64(t.nodeSize))
		t.pool.SetRoot(th, t.opts.RootSlot, nr.off)
	}

	// Per-level sweep, top down.
	levels := t.levelHeads(th)
	for li := len(levels) - 1; li >= 0; li-- {
		for n := levels[li]; n.valid(); n = t.sibling(th, n) {
			th.StoreVolatile(n.off+offLock, 0)
			t.fixNodeLocked(th, n)
			t.zeroBeyond(th, n)
		}
	}

	// Re-attach dangling siblings: every node in a level chain except the
	// head must be referenced by its parent level.
	for li := len(levels) - 2; li >= 0; li-- {
		refs := make(map[int64]bool)
		for p := levels[li+1]; p.valid(); p = t.sibling(th, p) {
			refs[int64(t.leftmost(th, p))] = true
			for i := 0; i < t.slots; i++ {
				ptr := t.ptrAt(th, p, i)
				if ptr == 0 {
					break
				}
				refs[int64(ptr)] = true
			}
		}
		for n := levels[li]; n.valid(); n = t.sibling(th, n) {
			if refs[n.off] {
				continue
			}
			if err := t.insertParent(th, n, li, t.lowKey(th, n), uint64(n.off)); err != nil {
				return err
			}
		}
	}
	return nil
}

// levelHeads returns the leftmost node of every level, index 0 = leaves.
func (t *BTree) levelHeads(th *pmem.Thread) []node {
	root := t.root(th)
	heads := make([]node, t.level(th, root)+1)
	n := root
	for {
		lv := t.level(th, n)
		heads[lv] = n
		if lv == 0 {
			return heads
		}
		n = node{int64(t.leftmost(th, n))}
	}
}

// zeroBeyond clears stale non-zero pointers past the terminator (possible
// only as crash debris; readers stop at the terminator so this is hygiene,
// not correctness).
func (t *BTree) zeroBeyond(th *pmem.Thread, n node) {
	cnt := 0
	for cnt < t.slots && t.ptrAt(th, n, cnt) != 0 {
		cnt++
	}
	for i := cnt + 1; i < t.slots; i++ {
		if t.ptrAt(th, n, i) != 0 {
			t.storePtr(th, n, i, 0)
			th.Flush(t.slotOff(n, i)+8, 8)
		}
	}
}

// Vacuum is offline maintenance (exclusive access required): it merges each
// leaf into its left neighbour when their entries fit in one node, keeping
// space bounded under delete-heavy workloads. Every step is crash-safe —
// entries are copied with FAST (duplicates across adjacent leaves resolve to
// the same value boxes), the parent separator is removed with FAST, and the
// unlink is a single pointer store.
func (t *BTree) Vacuum(th *pmem.Thread) error {
	heads := t.levelHeads(th)
	if len(heads) < 2 {
		return nil // a lone root leaf cannot be merged
	}
	prev := heads[0]
	for {
		n := t.sibling(th, prev)
		if !n.valid() {
			return nil
		}
		pc, nc := t.count(th, prev), t.count(th, n)
		parent, pos := t.findParentEntry(th, n)
		if pc+nc >= t.maxEntries || !parent.valid() {
			prev = n
			continue
		}
		// 1. Copy entries left (each FAST insert is failure-atomic).
		for i := 0; i < nc; i++ {
			t.fastInsert(th, prev, t.keyAt(th, n, i), t.ptrAt(th, n, i), pc+i)
		}
		// 2. Remove the parent separator (FAST delete).
		t.fastDelete(th, parent, pos)
		// 3. Unlink (atomic store) and reclaim.
		th.Store(prev.off+offSibling, uint64(t.sibling(th, n).off))
		th.Flush(prev.off+offSibling, 8)
		t.pool.Free(n.off, int64(t.nodeSize))
		// prev unchanged: it may absorb the next leaf too.
	}
}

// findParentEntry locates the internal level-1 node and slot whose pointer
// is leaf n. A leaf reachable only as a leftmost child returns an invalid
// node (Vacuum skips it).
func (t *BTree) findParentEntry(th *pmem.Thread, n node) (node, int) {
	key := t.lowKey(th, n)
	p := t.root(th)
	for t.level(th, p) > 1 {
		if sib := t.sibling(th, p); sib.valid() && key >= t.lowKey(th, sib) {
			p = sib
			continue
		}
		p = node{int64(t.routeChild(th, p, key))}
	}
	for {
		for i := 0; i < t.slots; i++ {
			ptr := t.ptrAt(th, p, i)
			if ptr == 0 {
				break
			}
			if ptr == uint64(n.off) {
				return p, i
			}
		}
		sib := t.sibling(th, p)
		if !sib.valid() {
			return node{}, -1
		}
		p = sib
	}
}

// CheckInvariants validates the full structural contract of a quiescent
// tree; it is the oracle the crash-injection and property tests rely on.
func (t *BTree) CheckInvariants(th *pmem.Thread) error {
	root := t.root(th)
	if !root.valid() {
		return fmt.Errorf("%w: nil root", ErrCorrupt)
	}
	if t.sibling(th, root).valid() {
		return fmt.Errorf("%w: root %d has a sibling", ErrCorrupt, root.off)
	}
	_, err := t.checkNode(th, root, t.level(th, root), 0, 0)
	if err != nil {
		return err
	}
	// Leaf chain must be globally sorted.
	prevSet := false
	var prevKey uint64
	for n := t.levelHeads(th)[0]; n.valid(); n = t.sibling(th, n) {
		cnt := t.count(th, n)
		for i := 0; i < cnt; i++ {
			k := t.keyAt(th, n, i)
			if prevSet && k <= prevKey {
				return fmt.Errorf("%w: leaf chain unsorted at key %d (node %d)", ErrCorrupt, k, n.off)
			}
			prevKey, prevSet = k, true
		}
	}
	return nil
}

// checkNode validates node n and its subtree; returns the node's maximum key
// bound for sibling cross-checks.
func (t *BTree) checkNode(th *pmem.Thread, n node, wantLevel int, lowBound uint64, depth int) (uint64, error) {
	if depth > 64 {
		return 0, fmt.Errorf("%w: depth runaway at node %d", ErrCorrupt, n.off)
	}
	if got := t.level(th, n); got != wantLevel {
		return 0, fmt.Errorf("%w: node %d level %d, want %d", ErrCorrupt, n.off, got, wantLevel)
	}
	low := t.lowKey(th, n)
	if low < lowBound {
		return 0, fmt.Errorf("%w: node %d lowKey %d below bound %d", ErrCorrupt, n.off, low, lowBound)
	}
	cnt := t.count(th, n)
	// Terminator must exist; slots beyond it may legitimately hold stale
	// pre-split entries, which readers never visit and inserts consume.
	if cnt < t.slots && t.ptrAt(th, n, cnt) != 0 {
		return 0, fmt.Errorf("%w: node %d missing terminator at slot %d", ErrCorrupt, n.off, cnt)
	}
	var hi uint64
	if wantLevel == 0 {
		if t.leftmost(th, n) != leafSentinel(n.off) {
			return 0, fmt.Errorf("%w: leaf %d bad sentinel", ErrCorrupt, n.off)
		}
	} else if t.leftmost(th, n) == 0 {
		return 0, fmt.Errorf("%w: internal %d nil leftmost", ErrCorrupt, n.off)
	}
	prev := t.leftmost(th, n)
	for i := 0; i < cnt; i++ {
		k, p := t.keyAt(th, n, i), t.ptrAt(th, n, i)
		if p == prev {
			return 0, fmt.Errorf("%w: node %d duplicate pointer at slot %d", ErrCorrupt, n.off, i)
		}
		if k < low {
			return 0, fmt.Errorf("%w: node %d key %d below lowKey %d", ErrCorrupt, n.off, k, low)
		}
		if i > 0 && k <= t.keyAt(th, n, i-1) {
			return 0, fmt.Errorf("%w: node %d keys unsorted at slot %d", ErrCorrupt, n.off, i)
		}
		prev = p
		hi = k
	}
	if sib := t.sibling(th, n); sib.valid() {
		fence := t.lowKey(th, sib)
		if cnt > 0 && hi >= fence {
			return 0, fmt.Errorf("%w: node %d max key %d crosses sibling fence %d", ErrCorrupt, n.off, hi, fence)
		}
		if t.level(th, sib) != wantLevel {
			return 0, fmt.Errorf("%w: node %d sibling level mismatch", ErrCorrupt, n.off)
		}
	}
	if wantLevel > 0 {
		// Children: leftmost covers [lowKey, firstEntryKey), entry i
		// covers [key_i, key_{i+1}).
		child := node{int64(t.leftmost(th, n))}
		if _, err := t.checkNode(th, child, wantLevel-1, low, depth+1); err != nil {
			return 0, err
		}
		if got := t.lowKey(th, child); got != low {
			return 0, fmt.Errorf("%w: node %d leftmost child lowKey %d != %d", ErrCorrupt, n.off, got, low)
		}
		for i := 0; i < cnt; i++ {
			k := t.keyAt(th, n, i)
			c := node{int64(t.ptrAt(th, n, i))}
			if _, err := t.checkNode(th, c, wantLevel-1, k, depth+1); err != nil {
				return 0, err
			}
			if got := t.lowKey(th, c); got != k {
				return 0, fmt.Errorf("%w: node %d child %d lowKey %d != separator %d", ErrCorrupt, n.off, c.off, got, k)
			}
		}
	}
	return hi, nil
}
