package core

import (
	"repro/internal/pmem"
)

// Delete removes key, reporting whether it was present.
//
// Deletion is the FAST left shift: the entry is first invalidated by
// duplicating its left neighbour's pointer over its own (the atomic commit),
// then the tail of the array shifts left one slot — key before pointer —
// with cache lines flushed in shift order, and finally the old last slot's
// pointer is zeroed, restoring the terminator.
//
// Emptied leaves stay in place: they keep routing their key range (searches
// find nothing and correctly chase the sibling only when the sibling's low
// fence allows), and Vacuum reclaims them offline. Value boxes are not
// reused, so a lock-free reader that raced the delete still observes the
// pre-delete value rather than recycled garbage.
func (t *BTree) Delete(th *pmem.Thread, key uint64) bool {
	_, existed := t.Remove(th, key)
	return existed
}

// fastDelete removes the entry at pos from the latched node.
func (t *BTree) fastDelete(th *pmem.Thread, n node, pos int) {
	cnt := t.count(th, n)

	// Flip to delete direction so lock-free readers scan right-to-left:
	// an entry moving left toward such a reader is seen twice at worst,
	// never missed.
	if sw := t.switchCtr(th, n); sw%2 == 0 {
		th.Store(n.off+offSwitch, sw+1)
	}

	// Commit: duplicating the left pointer atomically invalidates the key.
	t.storePtr(th, n, pos, t.leftPtrOf(th, n, pos))
	th.StoreFence()
	th.Flush(t.slotOff(n, pos)+8, 8)

	// Compact: shift the tail left, key before pointer; each pointer
	// store atomically hands validity from the right copy to the left.
	t.completeShiftLocked(th, n, pos, cnt)
}

// completeShiftLocked compacts out the invalid entry at pos (whose pointer
// equals its left neighbour's) by shifting [pos+1, cnt) one slot left and
// restoring the terminator. It is shared by fastDelete and the lazy-recovery
// fix for crash-abandoned shifts.
func (t *BTree) completeShiftLocked(th *pmem.Thread, n node, pos, cnt int) {
	for j := pos; j < cnt-1; j++ {
		t.storeKey(th, n, j, t.keyAt(th, n, j+1))
		th.StoreFence()
		t.storePtr(th, n, j, t.ptrAt(th, n, j+1))
		th.StoreFence()
		// Moving to a higher cache line: flush the finished one.
		if lineOf(t.slotOff(n, j)) != lineOf(t.slotOff(n, j+1)) {
			th.Flush(t.slotOff(n, j), recordBytes)
		}
	}
	t.storePtr(th, n, cnt-1, 0)
	th.Flush(t.slotOff(n, cnt-1)+8, 8)
	t.setLastIdxHint(th, n, cnt-1)
}
