package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pmem"
)

func newTestTree(t testing.TB, opts Options) (*BTree, *pmem.Thread) {
	t.Helper()
	p := pmem.New(pmem.Config{Size: 64 << 20})
	th := p.NewThread()
	tr, err := New(p, th, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr, th
}

func TestEmptyTree(t *testing.T) {
	tr, th := newTestTree(t, Options{})
	if _, ok := tr.Get(th, 42); ok {
		t.Error("Get on empty tree found a key")
	}
	if tr.Delete(th, 42) {
		t.Error("Delete on empty tree reported success")
	}
	if n := tr.Len(th); n != 0 {
		t.Errorf("Len = %d, want 0", n)
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Error(err)
	}
	if h := tr.Height(th); h != 1 {
		t.Errorf("Height = %d, want 1", h)
	}
}

func TestInsertGetSmall(t *testing.T) {
	tr, th := newTestTree(t, Options{})
	for i := uint64(1); i <= 10; i++ {
		if err := tr.Insert(th, i*10, i*100); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 10; i++ {
		v, ok := tr.Get(th, i*10)
		if !ok || v != i*100 {
			t.Fatalf("Get(%d) = %d,%v want %d,true", i*10, v, ok, i*100)
		}
	}
	if _, ok := tr.Get(th, 15); ok {
		t.Error("Get(15) found a missing key")
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Error(err)
	}
}

func TestUpsertReplacesValue(t *testing.T) {
	tr, th := newTestTree(t, Options{})
	if err := tr.Insert(th, 7, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(th, 7, 2); err != nil {
		t.Fatal(err)
	}
	if v, ok := tr.Get(th, 7); !ok || v != 2 {
		t.Fatalf("Get(7) = %d,%v want 2,true", v, ok)
	}
	if n := tr.Len(th); n != 1 {
		t.Errorf("Len = %d, want 1", n)
	}
}

func TestInsertDescendingSplitsLeft(t *testing.T) {
	tr, th := newTestTree(t, Options{})
	const n = 5000
	for i := n; i >= 1; i-- {
		if err := tr.Insert(th, uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if v, ok := tr.Get(th, uint64(i)); !ok || v != uint64(i) {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestInsertAscendingManySplits(t *testing.T) {
	tr, th := newTestTree(t, Options{})
	const n = 5000
	for i := 1; i <= n; i++ {
		if err := tr.Insert(th, uint64(i), uint64(i*2)); err != nil {
			t.Fatal(err)
		}
	}
	if h := tr.Height(th); h < 3 {
		t.Errorf("Height = %d, want >= 3 after %d inserts", h, n)
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
	if got := tr.Len(th); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
}

func TestDeleteBasics(t *testing.T) {
	tr, th := newTestTree(t, Options{})
	for i := uint64(0); i < 100; i++ {
		if err := tr.Insert(th, i, i); err != nil {
			t.Fatal(err)
		}
	}
	// Delete evens.
	for i := uint64(0); i < 100; i += 2 {
		if !tr.Delete(th, i) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	if tr.Delete(th, 4) {
		t.Error("double delete succeeded")
	}
	for i := uint64(0); i < 100; i++ {
		_, ok := tr.Get(th, i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v want %v", i, ok, want)
		}
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAll(t *testing.T) {
	tr, th := newTestTree(t, Options{})
	const n = 2000
	for i := uint64(0); i < n; i++ {
		if err := tr.Insert(th, i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		if !tr.Delete(th, i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if got := tr.Len(th); got != 0 {
		t.Fatalf("Len after delete-all = %d", got)
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
	// Tree must remain usable.
	for i := uint64(0); i < n; i += 7 {
		if err := tr.Insert(th, i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
}

func TestScanRange(t *testing.T) {
	tr, th := newTestTree(t, Options{})
	for i := uint64(0); i < 1000; i++ {
		if err := tr.Insert(th, i*3, i); err != nil { // keys 0,3,...,2997
			t.Fatal(err)
		}
	}
	var got []uint64
	tr.Scan(th, 100, 200, func(k, v uint64) bool {
		got = append(got, k)
		return true
	})
	var want []uint64
	for k := uint64(102); k <= 198; k += 3 {
		want = append(want, k)
	}
	if len(got) != len(want) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr, th := newTestTree(t, Options{})
	for i := uint64(0); i < 100; i++ {
		tr.Insert(th, i, i)
	}
	n := 0
	tr.Scan(th, 0, 99, func(k, v uint64) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Errorf("scan visited %d, want 10", n)
	}
}

func TestScanFullKeyspaceBounds(t *testing.T) {
	tr, th := newTestTree(t, Options{})
	keys := []uint64{0, 1, 1 << 32, ^uint64(0) - 1, ^uint64(0)}
	for _, k := range keys {
		if err := tr.Insert(th, k, k^0xff); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	tr.Scan(th, 0, ^uint64(0), func(k, v uint64) bool {
		if v != k^0xff {
			t.Errorf("value mismatch at %d", k)
		}
		got = append(got, k)
		return true
	})
	if len(got) != len(keys) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(keys))
	}
}

// oracleCheck runs an op tape against the tree and a map, verifying every
// response.
func oracleCheck(t *testing.T, tr *BTree, th *pmem.Thread, rng *rand.Rand, nOps int, keySpace uint64) {
	t.Helper()
	oracle := map[uint64]uint64{}
	for op := 0; op < nOps; op++ {
		k := rng.Uint64() % keySpace
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // insert
			v := rng.Uint64()
			if err := tr.Insert(th, k, v); err != nil {
				t.Fatal(err)
			}
			oracle[k] = v
		case 5, 6: // delete
			_, want := oracle[k]
			if got := tr.Delete(th, k); got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, want)
			}
			delete(oracle, k)
		default: // get
			want, wantOK := oracle[k]
			got, ok := tr.Get(th, k)
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", op, k, got, ok, want, wantOK)
			}
		}
	}
	if got, want := tr.Len(th), len(oracle); got != want {
		t.Fatalf("Len = %d, oracle %d", got, want)
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
	// Full scan must equal the sorted oracle.
	var prev uint64
	first := true
	n := 0
	tr.Scan(th, 0, ^uint64(0), func(k, v uint64) bool {
		if !first && k <= prev {
			t.Fatalf("scan unsorted: %d after %d", k, prev)
		}
		prev, first = k, false
		if want, ok := oracle[k]; !ok || want != v {
			t.Fatalf("scan saw (%d,%d), oracle (%d,%v)", k, v, want, ok)
		}
		n++
		return true
	})
	if n != len(oracle) {
		t.Fatalf("scan visited %d, oracle has %d", n, len(oracle))
	}
}

func TestOracleDenseKeys(t *testing.T) {
	tr, th := newTestTree(t, Options{})
	oracleCheck(t, tr, th, rand.New(rand.NewSource(1)), 20000, 500)
}

func TestOracleSparseKeys(t *testing.T) {
	tr, th := newTestTree(t, Options{})
	oracleCheck(t, tr, th, rand.New(rand.NewSource(2)), 20000, 1<<40)
}

func TestOracleSmallNodes(t *testing.T) {
	tr, th := newTestTree(t, Options{NodeSize: 128})
	oracleCheck(t, tr, th, rand.New(rand.NewSource(3)), 10000, 2000)
}

func TestOracleLargeNodes(t *testing.T) {
	tr, th := newTestTree(t, Options{NodeSize: 4096})
	oracleCheck(t, tr, th, rand.New(rand.NewSource(4)), 10000, 2000)
}

func TestOracleBinarySearchMode(t *testing.T) {
	tr, th := newTestTree(t, Options{BinarySearch: true})
	oracleCheck(t, tr, th, rand.New(rand.NewSource(5)), 10000, 2000)
}

func TestOracleLoggedSplit(t *testing.T) {
	tr, th := newTestTree(t, Options{LoggedSplit: true})
	oracleCheck(t, tr, th, rand.New(rand.NewSource(6)), 10000, 2000)
}

func TestOracleLeafLocks(t *testing.T) {
	tr, th := newTestTree(t, Options{LeafLocks: true})
	oracleCheck(t, tr, th, rand.New(rand.NewSource(7)), 10000, 2000)
}

// TestOracleInlineValues uses distinct values derived from keys, honouring
// the InlineValues uniqueness contract (the oracle uses random values, so we
// run a dedicated tape here).
func TestOracleInlineValues(t *testing.T) {
	tr, th := newTestTree(t, Options{InlineValues: true})
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(8))
	val := func(k uint64, gen int) uint64 { return k ^ uint64(gen)<<48 ^ 0xABCD }
	gen := map[uint64]int{}
	for op := 0; op < 15000; op++ {
		k := rng.Uint64()%2000 + 1
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			gen[k]++
			v := val(k, gen[k])
			if err := tr.Insert(th, k, v); err != nil {
				t.Fatal(err)
			}
			oracle[k] = v
		case 5, 6:
			_, want := oracle[k]
			if got := tr.Delete(th, k); got != want {
				t.Fatalf("Delete(%d) = %v want %v", k, got, want)
			}
			delete(oracle, k)
		default:
			want, wantOK := oracle[k]
			got, ok := tr.Get(th, k)
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("Get(%d) = %d,%v want %d,%v", k, got, ok, want, wantOK)
			}
		}
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
	if got := tr.Len(th); got != len(oracle) {
		t.Fatalf("Len = %d oracle %d", got, len(oracle))
	}
}

func TestInlineValuesRejectZero(t *testing.T) {
	tr, th := newTestTree(t, Options{InlineValues: true})
	if err := tr.Insert(th, 1, 0); err == nil {
		t.Fatal("zero value accepted in InlineValues mode")
	}
}

// TestCrashInlineValues re-runs the enumerated insert/delete crash check in
// InlineValues mode: the commit protocol must hold without boxing too.
func TestCrashInlineValues(t *testing.T) {
	opts := Options{InlineValues: true}
	p := pmem.New(pmem.Config{Size: 2 << 20, TrackCrashes: true})
	th := p.NewThread()
	tr, err := New(p, th, opts)
	if err != nil {
		t.Fatal(err)
	}
	committed := map[uint64]uint64{}
	for i := uint64(1); i <= 10; i++ {
		tr.Insert(th, i*10, i*10+1)
		committed[i*10] = i*10 + 1
	}
	p.StartCrashLog()
	tr.Insert(th, 45, 46)
	tr.Insert(th, 50, 999) // in-place inline upsert
	tr.Delete(th, 80)
	delete(committed, 50)
	delete(committed, 80)
	rng := rand.New(rand.NewSource(12))
	for point := 0; point <= p.LogLen(); point++ {
		for _, mode := range []pmem.CrashMode{pmem.CrashNone, pmem.CrashAll, pmem.CrashRandom} {
			img := p.CrashImage(point, mode, rng)
			ith := img.NewThread()
			tr2, err := Open(img, ith, opts)
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range committed {
				if got, ok := tr2.Get(ith, k); !ok || got != v {
					t.Fatalf("point %d mode %d: Get(%d) = %d,%v", point, mode, k, got, ok)
				}
			}
			if v, ok := tr2.Get(ith, 45); ok && v != 46 {
				t.Fatalf("point %d: torn inline insert %d", point, v)
			}
			if v, ok := tr2.Get(ith, 50); !ok || (v != 51 && v != 999) {
				t.Fatalf("point %d: torn inline upsert (%d,%v)", point, v, ok)
			}
			if v, ok := tr2.Get(ith, 80); ok && v != 81 {
				t.Fatalf("point %d: torn inline delete %d", point, v)
			}
			if err := tr2.Recover(ith); err != nil {
				t.Fatal(err)
			}
			if err := tr2.CheckInvariants(ith); err != nil {
				t.Fatalf("point %d mode %d: %v", point, mode, err)
			}
		}
	}
}

// TestQuickRandomTapes drives random op tapes through testing/quick.
func TestQuickRandomTapes(t *testing.T) {
	f := func(seed int64, dense bool) bool {
		tr, th := newTestTree(t, Options{NodeSize: 256})
		space := uint64(1 << 40)
		if dense {
			space = 300
		}
		oracleCheck(t, tr, th, rand.New(rand.NewSource(seed)), 3000, space)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenExistingTree(t *testing.T) {
	p := pmem.New(pmem.Config{Size: 16 << 20})
	th := p.NewThread()
	tr, err := New(p, th, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(th, i, i*7)
	}
	// Re-open a second handle on the same pool (simulates restart).
	tr2, err := Open(p, th, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		if v, ok := tr2.Get(th, i); !ok || v != i*7 {
			t.Fatalf("reopened Get(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestOpenMissingTree(t *testing.T) {
	p := pmem.New(pmem.Config{Size: 1 << 20})
	th := p.NewThread()
	if _, err := Open(p, th, Options{}); err == nil {
		t.Fatal("Open on empty pool succeeded")
	}
}

func TestBadOptions(t *testing.T) {
	p := pmem.New(pmem.Config{Size: 1 << 20})
	th := p.NewThread()
	for _, opts := range []Options{
		{NodeSize: 100},
		{NodeSize: 96},
		{RootSlot: 9},
		{LoggedSplit: true, RootSlot: 4},
	} {
		if _, err := New(p, th, opts); err == nil {
			t.Errorf("New(%+v) succeeded, want error", opts)
		}
	}
}

func TestArenaExhaustion(t *testing.T) {
	p := pmem.New(pmem.Config{Size: 16 << 10})
	th := p.NewThread()
	tr, err := New(p, th, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sawErr bool
	for i := uint64(0); i < 10000; i++ {
		if err := tr.Insert(th, i, i); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("no error from exhausted arena")
	}
	// The tree must remain consistent and readable after the failure.
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
}

func TestVacuumMergesLeaves(t *testing.T) {
	tr, th := newTestTree(t, Options{})
	const n = 3000
	for i := uint64(0); i < n; i++ {
		tr.Insert(th, i, i)
	}
	// Delete most keys, leaving sparse leaves.
	for i := uint64(0); i < n; i++ {
		if i%10 != 0 {
			tr.Delete(th, i)
		}
	}
	leavesBefore := countLeaves(tr, th)
	if err := tr.Vacuum(th); err != nil {
		t.Fatal(err)
	}
	leavesAfter := countLeaves(tr, th)
	if leavesAfter >= leavesBefore {
		t.Errorf("Vacuum did not shrink leaf chain: %d -> %d", leavesBefore, leavesAfter)
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i += 10 {
		if v, ok := tr.Get(th, i); !ok || v != i {
			t.Fatalf("post-vacuum Get(%d) = %d,%v", i, v, ok)
		}
	}
	if got := tr.Len(th); got != n/10 {
		t.Fatalf("post-vacuum Len = %d, want %d", got, n/10)
	}
}

func countLeaves(tr *BTree, th *pmem.Thread) int {
	c := 0
	for n := tr.levelHeads(th)[0]; n.valid(); n = tr.sibling(th, n) {
		c++
	}
	return c
}

func TestRecoverOnCleanTreeIsNoop(t *testing.T) {
	tr, th := newTestTree(t, Options{})
	for i := uint64(0); i < 2000; i++ {
		tr.Insert(th, i, i)
	}
	if err := tr.Recover(th); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
	if got := tr.Len(th); got != 2000 {
		t.Fatalf("Len after Recover = %d", got)
	}
}

func TestMultipleTreesOnePool(t *testing.T) {
	p := pmem.New(pmem.Config{Size: 32 << 20})
	th := p.NewThread()
	t1, err := New(p, th, Options{RootSlot: 0})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := New(p, th, Options{RootSlot: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		t1.Insert(th, i, i)
		t2.Insert(th, i, i*2)
	}
	for i := uint64(0); i < 1000; i++ {
		if v, _ := t1.Get(th, i); v != i {
			t.Fatalf("tree1 Get(%d) = %d", i, v)
		}
		if v, _ := t2.Get(th, i); v != i*2 {
			t.Fatalf("tree2 Get(%d) = %d", i, v)
		}
	}
}

// TestFlushCountPerInsert sanity-checks the paper's in-text claim that a
// 512 B node FAST insert needs few flushes (4.2 average in the paper; worst
// case 8 lines + box + commit).
func TestFlushCountPerInsert(t *testing.T) {
	tr, th := newTestTree(t, Options{})
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(th, i*2, i) // warm up
	}
	th.Stats = pmem.Stats{}
	const n = 1000
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		tr.Insert(th, rng.Uint64()%100000*2+1, 1)
	}
	avg := float64(th.Stats.FlushedLines) / n
	if avg < 1.5 || avg > 12 {
		t.Errorf("avg flushed lines per insert = %.2f, want plausible [1.5, 12]", avg)
	}
	t.Logf("avg flushed lines per insert: %.2f", avg)
}
