package vlog

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/pmem"
)

// The vlog crash matrix: a power failure is injected at EVERY point of an
// append's persist tape — mid-payload, after the header store, after the
// record flush, between the fence and the tail store, after the tail store,
// after the tail flush — under each of the crash simulator's survivor
// models. The contract under test is the publish protocol's: records below
// the persisted tail are byte-exact, the in-flight record is wholly present
// or wholly absent, and the reopened log accepts new appends.

func crashAppendMatrix(t *testing.T, model pmem.MemModel, extSize int64, valSizes []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	p := pmem.New(pmem.Config{Size: 8 << 20, TrackCrashes: true, Model: model})
	th := p.NewThread()
	l, err := Create(p, th, 5, extSize)
	if err != nil {
		t.Fatal(err)
	}
	// Committed prefix, persisted before the log starts: must survive
	// every crash below.
	var comRefs []Ref
	var comVals [][]byte
	for i := 0; i < 20; i++ {
		v := testValue(rng, rng.Intn(120))
		ref, err := l.Append(th, uint64(i+1), v)
		if err != nil {
			t.Fatal(err)
		}
		comRefs = append(comRefs, ref)
		comVals = append(comVals, v)
	}

	for _, n := range valSizes {
		p.StartCrashLog()
		inflight := testValue(rng, n)
		ref, err := l.Append(th, uint64(1000+n), inflight)
		if err != nil {
			t.Fatal(err)
		}
		tape := p.LogLen()
		for point := 0; point <= tape; point++ {
			for _, mode := range []pmem.CrashMode{pmem.CrashNone, pmem.CrashAll, pmem.CrashRandom} {
				img := p.CrashImage(point, mode, rng)
				ith := img.NewThread()
				rl, err := Open(img, ith, 5)
				if err != nil {
					t.Fatalf("val %d point %d/%d mode %d: reopen: %v", n, point, tape, mode, err)
				}
				if _, err := rl.Check(ith); err != nil {
					t.Fatalf("val %d point %d mode %d: post-recovery check: %v", n, point, mode, err)
				}
				for i, cref := range comRefs {
					got, err := rl.Read(ith, cref, nil)
					if err != nil || !bytes.Equal(got, comVals[i]) {
						t.Fatalf("val %d point %d mode %d: committed record %d lost: %v", n, point, mode, i, err)
					}
				}
				// The in-flight record: all or nothing, never torn.
				if got, err := rl.Read(ith, ref, nil); err == nil {
					if !bytes.Equal(got, inflight) {
						t.Fatalf("val %d point %d mode %d: TORN in-flight record", n, point, mode)
					}
				}
				// The recovered log keeps appending and reading.
				nref, err := rl.Append(ith, 31337, []byte("post-crash"))
				if err != nil {
					t.Fatalf("val %d point %d mode %d: post-recovery append: %v", n, point, mode, err)
				}
				if got, err := rl.Read(ith, nref, nil); err != nil || string(got) != "post-crash" {
					t.Fatalf("val %d point %d mode %d: post-recovery read: %v", n, point, mode, err)
				}
			}
		}
		// Keep the live log consistent for the next round: the append
		// above committed on the live pool.
		if got, err := l.Read(th, ref, nil); err != nil || !bytes.Equal(got, inflight) {
			t.Fatal("live log lost the appended record")
		}
		comRefs = append(comRefs, ref)
		comVals = append(comVals, inflight)
	}
}

func TestCrashEveryPointTSO(t *testing.T) {
	// 200-byte values in 4 KiB extents: the tape covers payload lines,
	// header, and tail publish without extent growth.
	crashAppendMatrix(t, pmem.TSO, 4096, []int{0, 5, 200})
}

func TestCrashEveryPointNonTSO(t *testing.T) {
	crashAppendMatrix(t, pmem.NonTSO, 4096, []int{0, 5, 200})
}

// TestCrashEveryPointDuringGrowth shrinks the extents so the in-flight
// append must allocate and link a new extent mid-tape, covering the
// link-then-move-tail crash windows (including resuming in an abandoned
// half-linked extent).
func TestCrashEveryPointDuringGrowth(t *testing.T) {
	crashAppendMatrix(t, pmem.TSO, 512, []int{300, 700})
}

// TestCrashCampaignRandomPoints is the breadth pass: many appends of mixed
// sizes, crash points sampled across the whole multi-append tape, and the
// surviving prefix checked record by record.
func TestCrashCampaignRandomPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		p := pmem.New(pmem.Config{Size: 8 << 20, TrackCrashes: true})
		th := p.NewThread()
		l, err := Create(p, th, 5, 2048)
		if err != nil {
			t.Fatal(err)
		}
		p.StartCrashLog()
		var refs []Ref
		var vals [][]byte
		marks := []int{0}
		for i := 0; i < 40; i++ {
			v := testValue(rng, rng.Intn(600))
			ref, err := l.Append(th, uint64(i+1), v)
			if err != nil {
				t.Fatal(err)
			}
			refs = append(refs, ref)
			vals = append(vals, v)
			marks = append(marks, p.LogLen())
		}
		point := rng.Intn(p.LogLen() + 1)
		img := p.CrashImage(point, pmem.CrashRandom, rng)
		ith := img.NewThread()
		rl, err := Open(img, ith, 5)
		if err != nil {
			t.Fatalf("trial %d point %d: %v", trial, point, err)
		}
		if _, err := rl.Check(ith); err != nil {
			t.Fatalf("trial %d point %d: check: %v", trial, point, err)
		}
		// Appends whose tape completed before the crash point must have
		// survived in full; later ones may be absent but never torn.
		for i, ref := range refs {
			got, err := rl.Read(ith, ref, nil)
			switch {
			case err == nil && bytes.Equal(got, vals[i]):
				// survived intact
			case err == nil:
				t.Fatalf("trial %d: record %d TORN after crash at %d", trial, i, point)
			case marks[i+1] <= point:
				t.Fatalf("trial %d: committed record %d (tape<=%d) lost: %v", trial, i, point, err)
			}
		}
	}
}
