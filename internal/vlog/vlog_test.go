package vlog

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/pmem"
)

func newPool(tb testing.TB, size int64, track bool) (*pmem.Pool, *pmem.Thread) {
	tb.Helper()
	p := pmem.New(pmem.Config{Size: size, TrackCrashes: track})
	return p, p.NewThread()
}

func testValue(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

func TestAppendReadRoundTrip(t *testing.T) {
	p, th := newPool(t, 8<<20, false)
	l, err := Create(p, th, 5, 4096)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// Sizes straddle every interesting boundary: empty, sub-word, exact
	// word, line, and multi-extent.
	sizes := []int{0, 1, 7, 8, 9, 63, 64, 65, 100, 4000, 5000, 20000}
	vals := make([][]byte, len(sizes))
	refs := make([]Ref, len(sizes))
	for i, n := range sizes {
		vals[i] = testValue(rng, n)
		refs[i], err = l.Append(th, uint64(i+1), vals[i])
		if err != nil {
			t.Fatalf("append %d bytes: %v", n, err)
		}
		if refs[i].Len() != n {
			t.Fatalf("ref length %d, want %d", refs[i].Len(), n)
		}
	}
	for i, ref := range refs {
		got, err := l.Read(th, ref, nil)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, vals[i]) {
			t.Fatalf("read %d: got %d bytes, want %d", i, len(got), len(vals[i]))
		}
	}
	st, err := l.Check(th)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != len(sizes) {
		t.Fatalf("Check records %d, want %d", st.Records, len(sizes))
	}
}

func TestReadAppendsToDst(t *testing.T) {
	p, th := newPool(t, 4<<20, false)
	l, err := Create(p, th, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := l.Append(th, 1, []byte("world"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := l.Read(th, ref, []byte("hello "))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Fatalf("got %q", got)
	}
}

func TestBadRefs(t *testing.T) {
	p, th := newPool(t, 1<<20, false)
	l, err := Create(p, th, 5, 4096)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := l.Append(th, 7, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		ref  Ref
	}{
		{"zero", 0},
		{"fixed-width value", Ref(42)},
		{"misaligned", MakeRef(ref.Off()+1, ref.Len())},
		{"wrong length", MakeRef(ref.Off(), ref.Len()+1)},
		{"out of bounds", MakeRef(p.Size(), 8)},
		{"huge length", Ref(uint64(ref) | uint64(MaxValue)<<40)},
	}
	for _, tc := range cases {
		if _, err := l.Read(th, tc.ref, nil); !errors.Is(err, ErrBadRef) {
			t.Errorf("%s: err = %v, want ErrBadRef", tc.name, err)
		}
	}
	if _, err := l.Append(th, 8, make([]byte, MaxValue+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized append: err = %v, want ErrTooLarge", err)
	}
}

func TestOversizedValueGetsOwnExtent(t *testing.T) {
	p, th := newPool(t, 8<<20, false)
	l, err := Create(p, th, 5, 512)
	if err != nil {
		t.Fatal(err)
	}
	big := testValue(rand.New(rand.NewSource(2)), 100_000)
	ref, err := l.Append(th, 9, big)
	if err != nil {
		t.Fatal(err)
	}
	got, err := l.Read(th, ref, nil)
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("big read: %v, %d bytes", err, len(got))
	}
	// The log keeps working in regular extents afterwards.
	small, err := l.Append(th, 10, []byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := l.Read(th, small, nil); err != nil || string(got) != "after" {
		t.Fatalf("small after big: %v %q", err, got)
	}
}

func TestPoolExhaustion(t *testing.T) {
	p, th := newPool(t, 64<<10, false)
	l, err := Create(p, th, 5, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 100; i++ {
		if _, lastErr = l.Append(th, uint64(i+1), make([]byte, 4<<10)); lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrFull) {
		t.Fatalf("err = %v, want ErrFull", lastErr)
	}
}

// TestReopenCleanImage closes the loop without a crash: records written,
// image reopened, every record still readable through its old Ref.
func TestReopenCleanImage(t *testing.T) {
	p, th := newPool(t, 8<<20, false)
	l, err := Create(p, th, 5, 4096)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var refs []Ref
	var vals [][]byte
	for i := 0; i < 200; i++ {
		v := testValue(rng, rng.Intn(300))
		ref, err := l.Append(th, uint64(i+1), v)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
		vals = append(vals, v)
	}
	re, err := Open(p, th, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, ref := range refs {
		got, err := re.Read(th, ref, nil)
		if err != nil || !bytes.Equal(got, vals[i]) {
			t.Fatalf("record %d after reopen: %v", i, err)
		}
	}
	// And it accepts new appends.
	ref, err := re.Append(th, 999, []byte("fresh"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := re.Read(th, ref, nil); err != nil || string(got) != "fresh" {
		t.Fatalf("fresh append after reopen: %v %q", err, got)
	}
}

// TestConcurrentReadersOneAppender exercises the lock-free read contract:
// published records stay readable, byte-exact, while an appender keeps
// publishing new ones (and growing extents) on another goroutine.
func TestConcurrentReadersOneAppender(t *testing.T) {
	p, _ := newPool(t, 32<<20, false)
	wth := p.NewThread()
	l, err := Create(p, wth, 5, 4096)
	if err != nil {
		t.Fatal(err)
	}
	const nVals = 500
	rng := rand.New(rand.NewSource(4))
	vals := make([][]byte, nVals)
	for i := range vals {
		vals[i] = testValue(rng, 16+rng.Intn(200))
	}
	refCh := make(chan Ref, nVals)
	go func() {
		for i, v := range vals {
			ref, err := l.Append(wth, uint64(i+1), v)
			if err != nil {
				break
			}
			refCh <- ref
		}
		close(refCh)
	}()
	done := make(chan error, 4)
	var refs []Ref
	for ref := range refCh {
		refs = append(refs, ref)
		if len(refs)%100 == 0 {
			snapshot := append([]Ref(nil), refs...)
			go func() {
				rth := p.NewThread()
				var buf []byte
				for i, ref := range snapshot {
					var err error
					buf, err = l.Read(rth, ref, buf[:0])
					if err != nil {
						done <- err
						return
					}
					if !bytes.Equal(buf, vals[i]) {
						done <- errors.New("value mismatch under concurrency")
						return
					}
				}
				done <- nil
			}()
		}
	}
	for i := 0; i < nVals/100; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
