// Package vlog is a crash-consistent, append-only value log in simulated
// persistent memory: the indirection layer that gives the 8-byte FAST+FAIR
// tree variable-length values without touching its failure-atomicity
// argument. The tree keeps storing one uint64 per key; for byte-string
// values that word is a Ref — a packed (offset, length) pointer into this
// log — following the pointer-into-PM reading of values the paper itself
// uses (§3) and the log-structured value separation of WiscKey/Badger.
//
// # Persistence protocol
//
// A record is published in three ordered steps, all within the hardware
// contract the emulator models (8-byte failure-atomic stores, explicit
// cache-line write-back, store fencing):
//
//  1. The payload words and the record header (length+1 and a CRC-32C of
//     the payload packed into one 8-byte word) are stored and flushed.
//  2. A store fence orders the record ahead of its publication (free on
//     TSO, a dmb on NonTSO).
//  3. The log tail — a single 8-byte word in the log header line — is
//     advanced over the record with one atomic store and flushed.
//
// The tail store is the commit point: a crash before it leaves the record
// bytes beyond the persisted tail, where they are unreachable garbage; a
// crash after it leaves a fully-flushed record below the tail. No crash can
// expose a torn record through a published tail.
//
// # Recovery
//
// Open re-attaches to a log image and eagerly repairs it: it walks the
// extent chain, bounds-checks the persisted tail, rewinds it into the last
// extent if a crash interrupted extent growth, truncates the torn or
// unpublished record at the tail (zeroing its header word so later scans
// terminate there), and then validates every published record's header and
// checksum from the beginning of the log. Validation failures below the
// tail — impossible under the publish protocol, but checked anyway —
// truncate the log at the first bad record.
//
// # Space
//
// Records live in a chain of fixed-size extents allocated from the pool on
// demand (oversized values get an extent of their own). The log is strictly
// append-only: overwriting or deleting a key in the layer above turns the
// old record into garbage that stays on the device until a future
// compaction pass; Garbage/Live accounting for that pass is out of scope
// here and tracked by the caller if needed.
package vlog

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"repro/internal/pmem"
)

// MaxValue is the largest payload one record may carry, bounded by the
// Ref encoding (24 bits of length).
const MaxValue = 1<<24 - 1

// maxOffset bounds record offsets to the 40 bits a Ref reserves for them
// (1 TiB — far above any simulated pool).
const maxOffset = 1 << 40

// Errors returned by the log.
var (
	// ErrTooLarge reports an Append payload above MaxValue.
	ErrTooLarge = errors.New("vlog: value exceeds MaxValue")
	// ErrBadRef reports a Ref that does not name a published record: out
	// of bounds, misaligned, or with a header that disagrees with the
	// Ref's length. Fixed-width tree values read as refs fail with this.
	ErrBadRef = errors.New("vlog: ref does not name a valid record")
	// ErrCorrupt reports a record whose payload fails its checksum, or a
	// log image whose header or extent chain is unreadable.
	ErrCorrupt = errors.New("vlog: corrupt log")
	// ErrFull wraps pmem.ErrOutOfMemory when the pool cannot hold a new
	// extent.
	ErrFull = errors.New("vlog: pool exhausted")
)

// Ref names one published record: the arena offset of its header word in
// the low 40 bits and the payload length in the high 24. The zero Ref is
// never valid (offset 0 is the pool's NULL).
type Ref uint64

// MakeRef packs an offset and length; exported for tests.
func MakeRef(off int64, n int) Ref { return Ref(uint64(off) | uint64(n)<<40) }

// Off returns the arena offset of the record header.
func (r Ref) Off() int64 { return int64(r & (maxOffset - 1)) }

// Len returns the payload length in bytes.
func (r Ref) Len() int { return int(uint64(r) >> 40) }

// Log header layout: one cache line anchored at a pool root slot.
//
//	word 0: magic | version
//	word 1: offset of the first extent
//	word 2: tail — arena offset of the next append (the commit point)
//	word 3: configured extent size
//
// Extent layout: a 16-byte header then record space.
//
//	word 0: offset of the next extent (0 = end of chain)
//	word 1: offset one past the extent (its exclusive end)
//
// Record layout: an 8-byte header then the payload, padded to whole words.
//
//	header: (payload length + 1) in the low 32 bits, CRC-32C of the
//	        payload in the high 32. A zero header word terminates the
//	        record sequence of an extent (extents are allocated zeroed,
//	        and truncation re-zeroes the header at the tail).
//
// The +1 keeps an empty record's header nonzero, so "no record here" and
// "zero-length record" stay distinguishable.
const (
	logMagic   = uint64(0x564c4f47) // "VLOG"
	logVersion = 1

	hdrMagicWord = 0
	hdrFirstWord = 1
	hdrTailWord  = 2
	hdrExtWord   = 3
	hdrBytes     = pmem.LineSize

	extHdrBytes = 2 * pmem.WordSize

	// DefaultExtent is the extent size used when Options leave it zero.
	DefaultExtent = 1 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Log is a handle on one value log. Appends serialise on an internal
// (volatile) mutex; reads of published records are lock-free and may run
// concurrently with appends, because published records are immutable and
// appends only touch space beyond the tail.
type Log struct {
	p      *pmem.Pool
	hdrOff int64

	mu      sync.Mutex
	tail    int64 // next append offset (mirrors the persisted tail word)
	curExt  int64 // extent containing tail
	curEnd  int64 // curExt's exclusive end
	first   int64 // first extent in the chain
	extSize int64
}

// Create initialises an empty log anchored at the given pool root slot and
// persists it. extSize is the growth unit in bytes (0 = DefaultExtent);
// oversized values allocate larger one-off extents.
func Create(p *pmem.Pool, th *pmem.Thread, slot int, extSize int64) (*Log, error) {
	if extSize <= 0 {
		extSize = DefaultExtent
	}
	extSize = roundUp(extSize, pmem.LineSize)
	hdr, err := p.Alloc(hdrBytes, pmem.LineSize)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFull, err)
	}
	l := &Log{p: p, hdrOff: hdr, extSize: extSize}
	ext, err := l.allocExtent(th, extSize)
	if err != nil {
		return nil, err
	}
	l.first, l.curExt = ext, ext
	l.curEnd = ext + extSize
	l.tail = ext + extHdrBytes
	th.Store(hdr+hdrFirstWord*pmem.WordSize, uint64(ext))
	th.Store(hdr+hdrTailWord*pmem.WordSize, uint64(l.tail))
	th.Store(hdr+hdrExtWord*pmem.WordSize, uint64(extSize))
	th.Store(hdr+hdrMagicWord*pmem.WordSize, logMagic<<32|logVersion)
	th.Persist(hdr, hdrBytes)
	p.SetRoot(th, slot, hdr)
	return l, nil
}

// Open re-attaches to the log anchored at slot and runs recovery: the tail
// is bounds-checked and rewound into the last extent if a crash interrupted
// growth, the record at the tail (torn or unpublished) is truncated, and
// every published record is re-validated from the start of the log.
func Open(p *pmem.Pool, th *pmem.Thread, slot int) (*Log, error) {
	hdr := p.Root(th, slot)
	if hdr == 0 {
		return nil, fmt.Errorf("%w: no log at root slot %d", ErrCorrupt, slot)
	}
	magic := th.Load(hdr + hdrMagicWord*pmem.WordSize)
	if magic>>32 != logMagic || magic&0xffffffff != logVersion {
		return nil, fmt.Errorf("%w: bad magic %#x at root slot %d", ErrCorrupt, magic, slot)
	}
	l := &Log{
		p:       p,
		hdrOff:  hdr,
		first:   int64(th.Load(hdr + hdrFirstWord*pmem.WordSize)),
		tail:    int64(th.Load(hdr + hdrTailWord*pmem.WordSize)),
		extSize: int64(th.Load(hdr + hdrExtWord*pmem.WordSize)),
	}
	if l.first == 0 || l.extSize <= 0 {
		return nil, fmt.Errorf("%w: empty extent chain", ErrCorrupt)
	}
	if err := l.recover(th); err != nil {
		return nil, err
	}
	return l, nil
}

// recover restores the append invariants after a crash (see Open).
func (l *Log) recover(th *pmem.Thread) error {
	// Walk the chain to its last extent, remembering the extent holding
	// the persisted tail. The chain is bounded by the pool size, so a
	// corrupt cycle cannot loop forever.
	var tailExt, tailEnd int64
	last, lastEnd := int64(0), int64(0)
	limit := l.p.Size()
	for ext, hops := l.first, int64(0); ext != 0; hops++ {
		if ext < 0 || ext+extHdrBytes > limit || hops > limit/extHdrBytes {
			return fmt.Errorf("%w: extent chain leaves the arena", ErrCorrupt)
		}
		end := int64(th.Load(ext + pmem.WordSize))
		if end <= ext+extHdrBytes || end > limit {
			return fmt.Errorf("%w: extent %d has end %d", ErrCorrupt, ext, end)
		}
		if l.tail >= ext+extHdrBytes && l.tail <= end {
			tailExt, tailEnd = ext, end
		}
		last, lastEnd = ext, end
		ext = int64(th.Load(ext))
	}
	if tailExt == 0 {
		return fmt.Errorf("%w: tail %d is outside every extent", ErrCorrupt, l.tail)
	}
	// A crash between linking a fresh extent and moving the tail leaves
	// the tail in an earlier extent. Everything at or beyond it is
	// unpublished; resume in the last extent so the chain order stays the
	// append order. (The abandoned space was already terminated with a
	// zero header word by growth, or is truncated just below.)
	if tailExt != last {
		l.truncate(th, l.tail, tailEnd)
		l.tail = last + extHdrBytes
		l.persistTail(th)
	}
	l.curExt, l.curEnd = last, lastEnd
	// Truncate the record straddling the tail: a torn append, or a
	// complete one whose publication never landed. Either way nothing
	// references it.
	l.truncate(th, l.tail, l.curEnd)

	// Defensive full-log validation: the publish protocol guarantees every
	// record below the tail is intact, so any failure here means the image
	// itself is damaged; truncating at the first bad record keeps the
	// intact prefix serviceable.
	for ext := l.first; ext != 0; {
		end := int64(th.Load(ext + pmem.WordSize))
		pos := ext + extHdrBytes
		for pos+pmem.WordSize <= end {
			if ext == l.curExt && pos >= l.tail {
				break
			}
			hdr := th.Load(pos)
			if hdr == 0 {
				break // rest of the extent is unused
			}
			n := int64(hdr&0xffffffff) - 1
			rend := pos + pmem.WordSize + roundUp(n, pmem.WordSize)
			if n < 0 || n > MaxValue || rend > end ||
				(ext == l.curExt && rend > l.tail) ||
				l.checksumAt(th, pos+pmem.WordSize, int(n)) != uint32(hdr>>32) {
				l.tail = pos
				l.curExt, l.curEnd = ext, end
				l.truncate(th, pos, end)
				l.persistTail(th)
				return nil
			}
			pos = rend
		}
		if ext == l.curExt {
			break
		}
		ext = int64(th.Load(ext))
	}
	return nil
}

// truncate zeroes and persists the record header at off (when the extent
// has room for one), so scans terminate there.
func (l *Log) truncate(th *pmem.Thread, off, end int64) {
	if off+pmem.WordSize > end {
		return
	}
	th.Store(off, 0)
	th.Flush(off, pmem.WordSize)
}

// persistTail publishes l.tail with the fenced 8-byte store that commits
// appends.
func (l *Log) persistTail(th *pmem.Thread) {
	th.StoreFence()
	off := l.hdrOff + hdrTailWord*pmem.WordSize
	th.Store(off, uint64(l.tail))
	th.Flush(off, pmem.WordSize)
}

// allocExtent carves a zeroed extent of the given size out of the pool and
// persists its header (next = 0, end = off+size).
func (l *Log) allocExtent(th *pmem.Thread, size int64) (int64, error) {
	off, err := l.p.Alloc(size, pmem.LineSize)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrFull, err)
	}
	th.Store(off+pmem.WordSize, uint64(off+size))
	th.Persist(off, extHdrBytes)
	return off, nil
}

// Append publishes val as one record and returns its Ref. The record is
// durable when Append returns; a crash mid-append can only lose the whole
// record, never expose a torn one. Appends to one Log serialise on its
// mutex; the pmem traffic is issued through the caller's thread.
func (l *Log) Append(th *pmem.Thread, val []byte) (Ref, error) {
	if len(val) > MaxValue {
		return 0, fmt.Errorf("%w: %d > %d bytes", ErrTooLarge, len(val), MaxValue)
	}
	need := pmem.WordSize + roundUp(int64(len(val)), pmem.WordSize)
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.tail+need > l.curEnd {
		if err := l.grow(th, need); err != nil {
			return 0, err
		}
	}
	off := l.tail
	if off+need >= maxOffset {
		return 0, fmt.Errorf("%w: offset exceeds Ref range", ErrFull)
	}
	// Step 1: payload words then the header word, flushed together.
	for i, pos := 0, off+pmem.WordSize; i < len(val); i, pos = i+8, pos+pmem.WordSize {
		th.Store(pos, packWord(val[i:]))
	}
	crc := crc32.Checksum(val, crcTable)
	th.Store(off, uint64(len(val)+1)|uint64(crc)<<32)
	th.Flush(off, need)
	// Steps 2+3: fence, then commit by advancing the tail over the record.
	l.tail = off + need
	l.persistTail(th)
	return MakeRef(off, len(val)), nil
}

// grow makes room for a record of `need` bytes: it advances into an
// already-linked next extent (left over from a crashed growth) or allocates
// and links a fresh one. The abandoned space in the old extent is
// terminated with a zero header word so scans stop there.
func (l *Log) grow(th *pmem.Thread, need int64) error {
	l.truncate(th, l.tail, l.curEnd)
	next := int64(th.Load(l.curExt))
	if next == 0 {
		size := l.extSize
		if min := need + extHdrBytes; size < min {
			size = roundUp(min, pmem.LineSize)
		}
		ext, err := l.allocExtent(th, size)
		if err != nil {
			return err
		}
		// Link after the extent header is durable, so recovery never
		// follows a pointer to uninitialised space.
		th.StoreFence()
		th.Store(l.curExt, uint64(ext))
		th.Flush(l.curExt, pmem.WordSize)
		next = ext
	}
	l.curExt = next
	l.curEnd = int64(th.Load(next + pmem.WordSize))
	l.tail = next + extHdrBytes
	// Publishing the moved tail commits the growth; the record that
	// triggered it commits separately with its own tail advance.
	l.persistTail(th)
	return nil
}

// Read resolves ref and appends the record's payload to dst, returning the
// extended slice. It validates the header against the Ref and the payload
// against its checksum, so a Ref forged from a fixed-width tree value fails
// with ErrBadRef (or, with negligible probability for a colliding header,
// ErrCorrupt) instead of returning garbage. Read is lock-free.
func (l *Log) Read(th *pmem.Thread, ref Ref, dst []byte) ([]byte, error) {
	off, n := ref.Off(), ref.Len()
	if off <= 0 || off%pmem.WordSize != 0 || n > MaxValue ||
		off+pmem.WordSize+roundUp(int64(n), pmem.WordSize) > l.p.Size() {
		return dst, fmt.Errorf("%w: off %d len %d", ErrBadRef, off, n)
	}
	hdr := th.Load(off)
	if int64(hdr&0xffffffff) != int64(n)+1 {
		return dst, fmt.Errorf("%w: header disagrees with ref length %d", ErrBadRef, n)
	}
	start := len(dst)
	dst = appendPayload(th, dst, off+pmem.WordSize, n)
	if crc := crc32.Checksum(dst[start:], crcTable); crc != uint32(hdr>>32) {
		return dst[:start], fmt.Errorf("%w: checksum mismatch at %d", ErrCorrupt, off)
	}
	return dst, nil
}

// Stats describes a log's space accounting.
type Stats struct {
	Records int   // published records
	Bytes   int64 // payload bytes in published records
	Used    int64 // bytes consumed by records incl. headers and padding
	Cap     int64 // bytes available across all allocated extents
}

// Check walks the whole log, re-validating every published record, and
// returns the space accounting. It is the testing/diagnostic counterpart
// of Open's recovery scan.
func (l *Log) Check(th *pmem.Thread) (Stats, error) {
	l.mu.Lock()
	tail, curExt := l.tail, l.curExt
	l.mu.Unlock()
	var st Stats
	for ext := l.first; ext != 0; {
		end := int64(th.Load(ext + pmem.WordSize))
		st.Cap += end - ext - extHdrBytes
		pos := ext + extHdrBytes
		for pos+pmem.WordSize <= end {
			if ext == curExt && pos >= tail {
				break
			}
			hdr := th.Load(pos)
			if hdr == 0 {
				break
			}
			n := int64(hdr&0xffffffff) - 1
			rend := pos + pmem.WordSize + roundUp(n, pmem.WordSize)
			if n < 0 || n > MaxValue || rend > end || (ext == curExt && rend > tail) {
				return st, fmt.Errorf("%w: bad record header at %d", ErrCorrupt, pos)
			}
			if l.checksumAt(th, pos+pmem.WordSize, int(n)) != uint32(hdr>>32) {
				return st, fmt.Errorf("%w: checksum mismatch at %d", ErrCorrupt, pos)
			}
			st.Records++
			st.Bytes += n
			st.Used += rend - pos
			pos = rend
		}
		if ext == curExt {
			break
		}
		ext = int64(th.Load(ext))
	}
	return st, nil
}

// checksumAt computes the CRC-32C of n payload bytes starting at off.
func (l *Log) checksumAt(th *pmem.Thread, off int64, n int) uint32 {
	crc := crc32.Checksum(nil, crcTable)
	var buf [8]byte
	for i := 0; i < n; i += 8 {
		w := th.Load(off + int64(i))
		for b := 0; b < 8; b++ {
			buf[b] = byte(w >> (8 * b))
		}
		m := n - i
		if m > 8 {
			m = 8
		}
		crc = crc32.Update(crc, crcTable, buf[:m])
	}
	return crc
}

// packWord packs up to 8 payload bytes into one little-endian word,
// zero-padding the tail.
func packWord(b []byte) uint64 {
	var w uint64
	n := len(b)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		w |= uint64(b[i]) << (8 * i)
	}
	return w
}

// appendPayload appends n payload bytes stored word-packed at off to dst.
func appendPayload(th *pmem.Thread, dst []byte, off int64, n int) []byte {
	for i := 0; i < n; i += 8 {
		w := th.Load(off + int64(i))
		m := n - i
		if m > 8 {
			m = 8
		}
		for b := 0; b < m; b++ {
			dst = append(dst, byte(w>>(8*b)))
		}
	}
	return dst
}

func roundUp(v, m int64) int64 { return (v + m - 1) / m * m }
