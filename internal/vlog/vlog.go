// Package vlog is a crash-consistent, append-only value log in simulated
// persistent memory: the indirection layer that gives the 8-byte FAST+FAIR
// tree variable-length values without touching its failure-atomicity
// argument. The tree keeps storing one uint64 per key; for byte-string
// values that word is a Ref — a packed (offset, length) pointer into this
// log — following the pointer-into-PM reading of values the paper itself
// uses (§3) and the log-structured value separation of WiscKey/Badger.
//
// # Persistence protocol
//
// A record is published in three ordered steps, all within the hardware
// contract the emulator models (8-byte failure-atomic stores, explicit
// cache-line write-back, store fencing):
//
//  1. The payload words, the owning key, and the record header (length+1
//     and a CRC-32C of key+payload packed into one 8-byte word) are stored
//     and flushed.
//  2. A store fence orders the record ahead of its publication (free on
//     TSO, a dmb on NonTSO).
//  3. The log tail — a single 8-byte word in the log header line — is
//     advanced over the record with one atomic store and flushed.
//
// The tail store is the commit point: a crash before it leaves the record
// bytes beyond the persisted tail, where they are unreachable garbage; a
// crash after it leaves a fully-flushed record below the tail. No crash can
// expose a torn record through a published tail.
//
// # Recovery
//
// Open re-attaches to a log image and eagerly repairs it: it walks the
// extent chain, bounds-checks the persisted tail, rewinds it into the last
// extent if a crash interrupted extent growth, truncates the torn or
// unpublished record at the tail (zeroing its header word so later scans
// terminate there), and then validates every published record's header and
// checksum from the beginning of the log. Validation failures below the
// tail — impossible under the publish protocol, but checked anyway —
// truncate the log at the first bad record.
//
// # Space and garbage collection
//
// Records live in a chain of fixed-size extents allocated from the pool on
// demand (oversized values get an extent of their own). Appends only ever
// touch the chain's last extent; overwriting or deleting a key in the layer
// above turns the old record into garbage that GC reclaims.
//
// Every record carries the key it was written under, so a compaction pass
// can ask the index layer whether the record is still live (the tree's
// word for that key still names this record). GC walks extents
// oldest-first — the chain head — copies live records to the tail with the
// ordinary failure-atomic append, asks the caller to swap the tree
// reference from the old location to the new (a conditional replace that
// refuses if the application overwrote the key mid-GC), and only then
// unlinks and frees the drained extent. The unlink is a single persisted
// 8-byte store of the chain-head pointer, ordered after the relocations by
// their own flushes, so a crash anywhere in the cycle leaves every live key
// naming exactly one intact copy: before the swap the old record is still
// linked and valid; after the swap the new copy was already durable
// (Append returned); after the unlink the old extent holds only dead
// records. The caller supplies a Fence callback, invoked between the last
// swap and the free, to drain readers that may still hold a pre-swap
// reference snapshot (see GCFuncs).
//
// Live/garbage byte accounting is volatile and caller-assisted: Append
// counts the new record live, MarkStale moves the bytes of an overwritten
// or deleted record to the garbage side, and the caller reconstructs both
// counters after recovery (the log alone cannot know liveness).
package vlog

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"repro/internal/pmem"
)

// MaxValue is the largest payload one record may carry, bounded by the
// Ref encoding (24 bits of length).
const MaxValue = 1<<24 - 1

// maxOffset bounds record offsets to the 40 bits a Ref reserves for them
// (1 TiB — far above any simulated pool).
const maxOffset = 1 << 40

// Errors returned by the log.
var (
	// ErrTooLarge reports an Append payload above MaxValue.
	ErrTooLarge = errors.New("vlog: value exceeds MaxValue")
	// ErrBadRef reports a Ref that does not name a published record: out
	// of bounds, misaligned, or with a header or key that disagrees with
	// the Ref. Fixed-width tree values read as refs fail with this.
	ErrBadRef = errors.New("vlog: ref does not name a valid record")
	// ErrCorrupt reports a record whose payload fails its checksum, or a
	// log image whose header or extent chain is unreadable.
	ErrCorrupt = errors.New("vlog: corrupt log")
	// ErrFull wraps pmem.ErrOutOfMemory when the pool cannot hold a new
	// extent.
	ErrFull = errors.New("vlog: pool exhausted")
)

// Ref names one published record: the arena offset of its header word in
// the low 40 bits and the payload length in the high 24. The zero Ref is
// never valid (offset 0 is the pool's NULL).
type Ref uint64

// MakeRef packs an offset and length; exported for tests.
func MakeRef(off int64, n int) Ref { return Ref(uint64(off) | uint64(n)<<40) }

// Off returns the arena offset of the record header.
func (r Ref) Off() int64 { return int64(r & (maxOffset - 1)) }

// Len returns the payload length in bytes.
func (r Ref) Len() int { return int(uint64(r) >> 40) }

// Log header layout: one cache line anchored at a pool root slot.
//
//	word 0: magic | version
//	word 1: offset of the first extent (GC advances it as head extents
//	        are reclaimed)
//	word 2: tail — arena offset of the next append (the commit point)
//	word 3: configured extent size
//
// Extent layout: a 16-byte header then record space.
//
//	word 0: offset of the next extent (0 = end of chain)
//	word 1: offset one past the extent (its exclusive end)
//
// Record layout: an 8-byte header, the 8-byte key the record was written
// under, then the payload, padded to whole words.
//
//	header: (payload length + 1) in the low 32 bits, CRC-32C of the
//	        key bytes followed by the payload in the high 32. A zero
//	        header word terminates the record sequence of an extent
//	        (extents are allocated zeroed, and truncation re-zeroes the
//	        header at the tail).
//
// The +1 keeps an empty record's header nonzero, so "no record here" and
// "zero-length record" stay distinguishable. The key word exists for GC:
// a compaction pass walking an extent must ask the index layer "does key K
// still point at this record?", which requires knowing K (the WiscKey
// arrangement — the log is the authority on which key owns a record).
const (
	logMagic   = uint64(0x564c4f47) // "VLOG"
	logVersion = 2                  // version 1 records carried no key word

	hdrMagicWord = 0
	hdrFirstWord = 1
	hdrTailWord  = 2
	hdrExtWord   = 3
	hdrBytes     = pmem.LineSize

	extHdrBytes = 2 * pmem.WordSize

	// recHdrBytes is the fixed per-record overhead: header word + key word.
	recHdrBytes = 2 * pmem.WordSize

	// DefaultExtent is the extent size used when Options leave it zero.
	DefaultExtent = 1 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// recordCRC hashes the record's key bytes (little-endian) followed by its
// payload: the checksum ties the payload to its owner, so a Ref forged for
// the wrong key fails validation even at a colliding offset. The key bytes
// are folded in with the table directly — a temporary byte slice would
// escape into the (assembly-backed) crc32.Update and put one heap
// allocation on the zero-alloc read path.
func recordCRC(key uint64, val []byte) uint32 {
	crc := ^uint32(0)
	for i := 0; i < 8; i++ {
		crc = crcTable[byte(crc)^byte(key>>(8*i))] ^ crc>>8
	}
	// crc32.Update takes and returns finalized values; unfinalize the raw
	// state around the (fast, possibly vectorised) payload pass. The
	// result equals crc32.Update(crc32.Update(0, t, keyLE), t, val).
	return crc32.Update(^crc, crcTable, val)
}

// Log is a handle on one value log. Appends serialise on an internal
// (volatile) mutex; reads of published records are lock-free and may run
// concurrently with appends, because published records are immutable and
// appends only touch space beyond the tail. GC passes serialise on their
// own mutex and may run concurrently with appends and reads — the caller's
// Fence callback is the only reader/GC synchronisation point (see GCFuncs).
type Log struct {
	p      *pmem.Pool
	hdrOff int64

	mu      sync.Mutex
	tail    int64 // next append offset (mirrors the persisted tail word)
	curExt  int64 // extent containing tail
	curEnd  int64 // curExt's exclusive end
	first   int64 // first extent in the chain (GC moves it forward)
	extSize int64

	// gcMu serialises GC passes, and Check against concurrent unlinks.
	gcMu sync.Mutex

	// Volatile space accounting, in payload bytes (see Stats). live and
	// garbage are caller-assisted: Append adds live, MarkStale moves
	// live→garbage, GC settles both when it relocates and frees;
	// ResetAccounting restores them after recovery.
	live      atomic.Int64
	garbage   atomic.Int64
	capBytes  atomic.Int64 // record space across allocated extents
	reclaimed atomic.Int64 // arena bytes returned to the pool by GC
	relocated atomic.Int64 // records copied forward by GC
	gcPasses  atomic.Int64 // extents reclaimed by GC
}

// Create initialises an empty log anchored at the given pool root slot and
// persists it. extSize is the growth unit in bytes (0 = DefaultExtent);
// oversized values allocate larger one-off extents.
func Create(p *pmem.Pool, th *pmem.Thread, slot int, extSize int64) (*Log, error) {
	if extSize <= 0 {
		extSize = DefaultExtent
	}
	extSize = roundUp(extSize, pmem.LineSize)
	hdr, err := p.Alloc(hdrBytes, pmem.LineSize)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFull, err)
	}
	l := &Log{p: p, hdrOff: hdr, extSize: extSize}
	ext, err := l.allocExtent(th, extSize)
	if err != nil {
		return nil, err
	}
	l.first, l.curExt = ext, ext
	l.curEnd = ext + extSize
	l.tail = ext + extHdrBytes
	th.Store(hdr+hdrFirstWord*pmem.WordSize, uint64(ext))
	th.Store(hdr+hdrTailWord*pmem.WordSize, uint64(l.tail))
	th.Store(hdr+hdrExtWord*pmem.WordSize, uint64(extSize))
	th.Store(hdr+hdrMagicWord*pmem.WordSize, logMagic<<32|logVersion)
	th.Persist(hdr, hdrBytes)
	p.SetRoot(th, slot, hdr)
	return l, nil
}

// Open re-attaches to the log anchored at slot and runs recovery: the tail
// is bounds-checked and rewound into the last extent if a crash interrupted
// growth, the record at the tail (torn or unpublished) is truncated, and
// every published record is re-validated from the start of the log.
//
// Accounting after Open assumes every surviving record is live; a caller
// that can compute real liveness (the store walks its trees) should follow
// with ResetAccounting.
func Open(p *pmem.Pool, th *pmem.Thread, slot int) (*Log, error) {
	hdr := p.Root(th, slot)
	if hdr == 0 {
		return nil, fmt.Errorf("%w: no log at root slot %d", ErrCorrupt, slot)
	}
	magic := th.Load(hdr + hdrMagicWord*pmem.WordSize)
	if magic>>32 != logMagic || magic&0xffffffff != logVersion {
		return nil, fmt.Errorf("%w: bad magic %#x at root slot %d", ErrCorrupt, magic, slot)
	}
	l := &Log{
		p:       p,
		hdrOff:  hdr,
		first:   int64(th.Load(hdr + hdrFirstWord*pmem.WordSize)),
		tail:    int64(th.Load(hdr + hdrTailWord*pmem.WordSize)),
		extSize: int64(th.Load(hdr + hdrExtWord*pmem.WordSize)),
	}
	if l.first == 0 || l.extSize <= 0 {
		return nil, fmt.Errorf("%w: empty extent chain", ErrCorrupt)
	}
	if err := l.recover(th); err != nil {
		return nil, err
	}
	return l, nil
}

// recover restores the append invariants after a crash (see Open).
func (l *Log) recover(th *pmem.Thread) error {
	// Walk the chain to its last extent, remembering the extent holding
	// the persisted tail. The chain is bounded by the pool size, so a
	// corrupt cycle cannot loop forever.
	var tailExt, tailEnd int64
	last, lastEnd := int64(0), int64(0)
	limit := l.p.Size()
	var capSum int64
	for ext, hops := l.first, int64(0); ext != 0; hops++ {
		if ext < 0 || ext+extHdrBytes > limit || hops > limit/extHdrBytes {
			return fmt.Errorf("%w: extent chain leaves the arena", ErrCorrupt)
		}
		end := int64(th.Load(ext + pmem.WordSize))
		if end <= ext+extHdrBytes || end > limit {
			return fmt.Errorf("%w: extent %d has end %d", ErrCorrupt, ext, end)
		}
		if l.tail >= ext+extHdrBytes && l.tail <= end {
			tailExt, tailEnd = ext, end
		}
		capSum += end - ext - extHdrBytes
		last, lastEnd = ext, end
		ext = int64(th.Load(ext))
	}
	if tailExt == 0 {
		return fmt.Errorf("%w: tail %d is outside every extent", ErrCorrupt, l.tail)
	}
	l.capBytes.Store(capSum)
	// A crash between linking a fresh extent and moving the tail leaves
	// the tail in an earlier extent. Everything at or beyond it is
	// unpublished; resume in the last extent so the chain order stays the
	// append order. (The abandoned space was already terminated with a
	// zero header word by growth, or is truncated just below.)
	if tailExt != last {
		l.truncate(th, l.tail, tailEnd)
		l.tail = last + extHdrBytes
		l.persistTail(th)
	}
	l.curExt, l.curEnd = last, lastEnd
	// Truncate the record straddling the tail: a torn append, or a
	// complete one whose publication never landed. Either way nothing
	// references it.
	l.truncate(th, l.tail, l.curEnd)

	// Defensive full-log validation: the publish protocol guarantees every
	// record below the tail is intact, so any failure here means the image
	// itself is damaged; truncating at the first bad record keeps the
	// intact prefix serviceable. The walk also sums payload bytes, which
	// seed the liveness accounting (everything live until the caller says
	// otherwise).
	var payload int64
	for ext := l.first; ext != 0; {
		end := int64(th.Load(ext + pmem.WordSize))
		pos := ext + extHdrBytes
		for pos+pmem.WordSize <= end {
			if ext == l.curExt && pos >= l.tail {
				break
			}
			hdr := th.Load(pos)
			if hdr == 0 {
				break // rest of the extent is unused
			}
			n := int64(hdr&0xffffffff) - 1
			rend := pos + recHdrBytes + roundUp(n, pmem.WordSize)
			if n < 0 || n > MaxValue || rend > end ||
				(ext == l.curExt && rend > l.tail) ||
				l.checksumAt(th, pos, int(n)) != uint32(hdr>>32) {
				l.tail = pos
				l.curExt, l.curEnd = ext, end
				l.truncate(th, pos, end)
				l.persistTail(th)
				l.live.Store(payload)
				return nil
			}
			payload += n
			pos = rend
		}
		if ext == l.curExt {
			break
		}
		ext = int64(th.Load(ext))
	}
	l.live.Store(payload)
	return nil
}

// truncate zeroes and persists the record header at off (when the extent
// has room for one), so scans terminate there.
func (l *Log) truncate(th *pmem.Thread, off, end int64) {
	if off+pmem.WordSize > end {
		return
	}
	th.Store(off, 0)
	th.Flush(off, pmem.WordSize)
}

// persistTail publishes l.tail with the fenced 8-byte store that commits
// appends.
func (l *Log) persistTail(th *pmem.Thread) {
	th.StoreFence()
	off := l.hdrOff + hdrTailWord*pmem.WordSize
	th.Store(off, uint64(l.tail))
	th.Flush(off, pmem.WordSize)
}

// allocExtent carves a zeroed extent of the given size out of the pool and
// persists its header (next = 0, end = off+size). The next word is stored
// explicitly even though Alloc hands out zeroed memory: freed extents may
// be recycled, and the allocator's zeroing is volatile (outside the
// crash-ordered store stream), so a crash image could otherwise resurrect
// the stale chain pointer the extent held in its previous life.
func (l *Log) allocExtent(th *pmem.Thread, size int64) (int64, error) {
	off, err := l.p.Alloc(size, pmem.LineSize)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrFull, err)
	}
	th.Store(off, 0)
	th.Store(off+pmem.WordSize, uint64(off+size))
	th.Persist(off, extHdrBytes)
	l.capBytes.Add(size - extHdrBytes)
	return off, nil
}

// Append publishes val as one record owned by key and returns its Ref. The
// record is durable when Append returns; a crash mid-append can only lose
// the whole record, never expose a torn one. Appends to one Log serialise
// on its mutex; the pmem traffic is issued through the caller's thread.
func (l *Log) Append(th *pmem.Thread, key uint64, val []byte) (Ref, error) {
	if len(val) > MaxValue {
		return 0, fmt.Errorf("%w: %d > %d bytes", ErrTooLarge, len(val), MaxValue)
	}
	need := recHdrBytes + roundUp(int64(len(val)), pmem.WordSize)
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.tail+need > l.curEnd {
		if err := l.grow(th, need); err != nil {
			return 0, err
		}
	}
	off := l.tail
	if off+need >= maxOffset {
		return 0, fmt.Errorf("%w: offset exceeds Ref range", ErrFull)
	}
	// Step 1: payload words, the key, then the header word, flushed
	// together.
	for i, pos := 0, off+recHdrBytes; i < len(val); i, pos = i+8, pos+pmem.WordSize {
		th.Store(pos, packWord(val[i:]))
	}
	th.Store(off+pmem.WordSize, key)
	crc := recordCRC(key, val)
	th.Store(off, uint64(len(val)+1)|uint64(crc)<<32)
	th.Flush(off, need)
	// Steps 2+3: fence, then commit by advancing the tail over the record.
	l.tail = off + need
	l.persistTail(th)
	l.live.Add(int64(len(val)))
	return MakeRef(off, len(val)), nil
}

// Admit reports whether the log can accept a record of valLen payload bytes
// without eating the pool's GC headroom. A record that fits the current
// extent is always admitted (the space is already carved out); one that
// forces growth is admitted only if the pool can hold the new extent PLUS
// one extra extent of reserve, so a GC pass can still stage relocations
// after the append. On refusal it returns an ErrFull-wrapped error; reads,
// deletes, and GC are unaffected, and the condition clears once GC returns
// extents to the pool.
//
// Admission is advisory, not a reservation: a racing writer can consume the
// headroom between Admit and Append, in which case Append itself fails with
// ErrFull. The point of Admit is the asymmetry — it refuses while the pool
// still has room for compaction to make progress, where waiting for
// Append's own ErrFull would leave GC wedged too (nowhere to relocate).
func (l *Log) Admit(valLen int) error {
	if valLen > MaxValue {
		return fmt.Errorf("%w: %d > %d bytes", ErrTooLarge, valLen, MaxValue)
	}
	need := recHdrBytes + roundUp(int64(valLen), pmem.WordSize)
	l.mu.Lock()
	room := l.curEnd - l.tail
	l.mu.Unlock()
	if room >= need {
		return nil
	}
	size := l.extSize
	if min := need + extHdrBytes; size < min {
		size = roundUp(min, pmem.LineSize)
	}
	if free := l.p.FreeBytes(); free < size+l.extSize {
		return fmt.Errorf("%w: admission refused: %d bytes free, need %d plus %d GC reserve",
			ErrFull, free, size, l.extSize)
	}
	return nil
}

// grow makes room for a record of `need` bytes: it advances into an
// already-linked next extent (left over from a crashed growth) or allocates
// and links a fresh one. The abandoned space in the old extent is
// terminated with a zero header word so scans stop there.
func (l *Log) grow(th *pmem.Thread, need int64) error {
	l.truncate(th, l.tail, l.curEnd)
	next := int64(th.Load(l.curExt))
	if next == 0 {
		size := l.extSize
		if min := need + extHdrBytes; size < min {
			size = roundUp(min, pmem.LineSize)
		}
		ext, err := l.allocExtent(th, size)
		if err != nil {
			return err
		}
		// Link after the extent header is durable, so recovery never
		// follows a pointer to uninitialised space.
		th.StoreFence()
		th.Store(l.curExt, uint64(ext))
		th.Flush(l.curExt, pmem.WordSize)
		next = ext
	}
	l.curExt = next
	l.curEnd = int64(th.Load(next + pmem.WordSize))
	l.tail = next + extHdrBytes
	// Publishing the moved tail commits the growth; the record that
	// triggered it commits separately with its own tail advance.
	l.persistTail(th)
	return nil
}

// Read resolves ref and appends the record's payload to dst, returning the
// extended slice. It validates the header against the Ref and the key and
// payload against the record checksum, so a Ref forged from a fixed-width
// tree value fails with ErrBadRef (or, with negligible probability for a
// colliding header, ErrCorrupt) instead of returning garbage. Read is
// lock-free; the caller is responsible for not racing a GC free of the
// record's extent (the store brackets ref resolution in a shared lock the
// GC fence takes exclusively).
func (l *Log) Read(th *pmem.Thread, ref Ref, dst []byte) ([]byte, error) {
	off, n := ref.Off(), ref.Len()
	if off <= 0 || off%pmem.WordSize != 0 || n > MaxValue ||
		off+recHdrBytes+roundUp(int64(n), pmem.WordSize) > l.p.Size() {
		return dst, fmt.Errorf("%w: off %d len %d", ErrBadRef, off, n)
	}
	hdr := th.Load(off)
	if int64(hdr&0xffffffff) != int64(n)+1 {
		return dst, fmt.Errorf("%w: header disagrees with ref length %d", ErrBadRef, n)
	}
	key := th.Load(off + pmem.WordSize)
	start := len(dst)
	dst = appendPayload(th, dst, off+recHdrBytes, n)
	if crc := recordCRC(key, dst[start:]); crc != uint32(hdr>>32) {
		return dst[:start], fmt.Errorf("%w: checksum mismatch at %d", ErrCorrupt, off)
	}
	return dst, nil
}

// ReadKeyed is Read for a caller that knows which key the ref came from:
// it additionally rejects, with ErrBadRef, a record owned by a different
// key. The store resolves every tree ref through this, so a fixed-width
// value that happens to decode as a plausible ref still cannot alias
// another key's record.
func (l *Log) ReadKeyed(th *pmem.Thread, key uint64, ref Ref, dst []byte) ([]byte, error) {
	if err := l.checkRecord(th, key, ref); err != nil {
		return dst, err
	}
	off, n := ref.Off(), ref.Len()
	hdr := th.Load(off)
	start := len(dst)
	dst = appendPayload(th, dst, off+recHdrBytes, n)
	if crc := recordCRC(key, dst[start:]); crc != uint32(hdr>>32) {
		return dst[:start], fmt.Errorf("%w: checksum mismatch at %d", ErrCorrupt, off)
	}
	return dst, nil
}

// checkRecord validates that ref names a record owned by key: bounds,
// header/length agreement, and the stored key word. It does not checksum
// the payload.
func (l *Log) checkRecord(th *pmem.Thread, key uint64, ref Ref) error {
	off, n := ref.Off(), ref.Len()
	if off <= 0 || off%pmem.WordSize != 0 || n > MaxValue ||
		off+recHdrBytes+roundUp(int64(n), pmem.WordSize) > l.p.Size() {
		return fmt.Errorf("%w: off %d len %d", ErrBadRef, off, n)
	}
	hdr := th.Load(off)
	if int64(hdr&0xffffffff) != int64(n)+1 {
		return fmt.Errorf("%w: header disagrees with ref length %d", ErrBadRef, n)
	}
	if got := th.Load(off + pmem.WordSize); got != key {
		return fmt.Errorf("%w: record owned by key %d, not %d", ErrBadRef, got, key)
	}
	return nil
}

// IsRecord reports whether ref names a published record owned by key
// (header and key word agree with the ref; the payload is not checksummed).
// It is the cheap validity test behind garbage accounting: a fixed-width
// tree value misread as a ref fails it.
func (l *Log) IsRecord(th *pmem.Thread, key uint64, ref Ref) bool {
	return l.checkRecord(th, key, ref) == nil
}

// MarkStale records that the caller overwrote or deleted the tree entry
// that pointed at ref: the record's payload bytes move from the live to the
// garbage side of the accounting. Words that do not name a record owned by
// key (a fixed-width value, or a ref already reclaimed) are ignored, so the
// caller may feed it every replaced tree word without classifying them
// first. It reports whether the bytes were counted.
func (l *Log) MarkStale(th *pmem.Thread, key uint64, ref Ref) bool {
	if !l.IsRecord(th, key, ref) {
		return false
	}
	n := int64(ref.Len())
	l.live.Add(-n)
	l.garbage.Add(n)
	return true
}

// ResetAccounting overwrites the live/garbage byte counters, for a caller
// that recomputed real liveness after recovery (Open alone must assume
// every surviving record is live).
func (l *Log) ResetAccounting(live, garbage int64) {
	l.live.Store(live)
	l.garbage.Store(garbage)
}

// --- garbage collection ----------------------------------------------------

// GCFuncs are the index-layer callbacks a GC pass drives. The log knows
// which key each record was written under but not whether that key still
// points here — only the tree does.
type GCFuncs struct {
	// Live reports whether key's tree entry still names ref. It is the
	// cheap pre-copy filter; Swap is the authority. Optional (nil treats
	// every record as possibly-live and lets Swap decide).
	Live func(key uint64, ref Ref) bool
	// Swap atomically replaces key's tree entry old→new, refusing if the
	// entry no longer holds old (the application overwrote or deleted the
	// key mid-GC — the fresh copy is then abandoned as garbage). Required.
	Swap func(key uint64, old, new Ref) bool
	// Fence is a quiescence barrier, called twice per reclaimed extent:
	// after the initial relocation sweep and again after the post-fence
	// catch-up sweep, always before the extent is freed. It must not
	// return while any reader can still hold a reference snapshot taken
	// before the sweep's swaps, nor while any writer is mid-flight
	// between appending a record and installing its ref in the tree (the
	// store implements it as a write-acquire of the shard's resolve lock,
	// which lookups hold shared for the resolve window and writers hold
	// shared across append+install). Optional only when no concurrent
	// readers or writers exist.
	Fence func()
}

// GCResult describes one GC call's work.
type GCResult struct {
	Extents        int   // extents unlinked and freed
	ReclaimedBytes int64 // arena bytes returned to the pool, headers included
	Relocated      int   // live records copied to the tail
	RelocatedBytes int64 // their payload bytes
	DroppedBytes   int64 // payload of dead records discarded with their extents
	Skipped        int   // relocations abandoned: the key changed mid-GC
}

// GC reclaims up to maxExtents (0 = no bound) sealed extents from the head
// of the chain — the oldest records first. For each extent it relocates the
// records the index still references (copy to the tail with the ordinary
// failure-atomic Append, then f.Swap the tree entry old→new), then runs a
// fence → catch-up sweep → fence sequence before unlinking and freeing the
// extent. The catch-up sweep exists because a liveness verdict can go
// stale: a writer that appended a record into this extent long ago may
// install its ref in the tree only after the first sweep judged the record
// dead. The first fence waits such writers out (they hold the caller's
// reader lock across append+install), the second sweep relocates whatever
// they installed, and — since appends into a sealed extent are over and
// each append's ref is installed at most once — nothing new can appear
// after it; the final fence then drains readers still holding pre-sweep
// snapshots before the memory is recycled. The extent holding the append
// tail is never touched, so GC runs concurrently with appends and
// lock-free reads; passes serialise with each other.
//
// Crash-wise every step is covered by an existing argument: the copies are
// ordinary appends (all-or-nothing via the tail publish), each swap is the
// tree's single atomic 8-byte value store, and the unlink is one persisted
// store of the chain-head pointer issued only after the swaps' flushes
// completed. A crash anywhere leaves each live key naming exactly one
// intact copy of its value; at worst the new copies (pre-swap) or the whole
// victim extent (pre-unlink, post-swap) survive as garbage for the next
// pass. Freed space is recycled by later extent allocations.
//
// A corrupt live record aborts the pass with ErrCorrupt rather than
// propagating bad bytes; pool exhaustion mid-copy aborts with ErrFull
// (compaction needs headroom for one extent's live data — callers should
// GC before the pool is wholly full, which the store's garbage-ratio
// trigger does).
func (l *Log) GC(th *pmem.Thread, maxExtents int, f GCFuncs) (GCResult, error) {
	var res GCResult
	if f.Swap == nil {
		return res, errors.New("vlog: GC requires a Swap callback")
	}
	l.gcMu.Lock()
	defer l.gcMu.Unlock()
	// The pass is bounded by the chain as it stood on entry: relocation
	// appends grow the tail, and without a stopping extent a full pass
	// would chase it forever, re-copying its own copies. Stopping at the
	// entry-time current extent visits every extent that could hold
	// pre-pass garbage exactly once.
	l.mu.Lock()
	stop := l.curExt
	l.mu.Unlock()
	var buf []byte

	// sweep walks one sealed extent, relocating every record the index
	// references. It reports the payload bytes it saw so the caller can
	// settle the garbage accounting at free time (every byte left behind
	// is dead by then). Safe without locks: appends only touch the
	// current extent, records are immutable once published, and gcMu
	// makes this the only GC pass.
	sweep := func(victim, end int64) (payload, relocated int64, err error) {
		pos := victim + extHdrBytes
		for pos+pmem.WordSize <= end {
			hdr := th.Load(pos)
			if hdr == 0 {
				break
			}
			n := int64(hdr&0xffffffff) - 1
			rend := pos + recHdrBytes + roundUp(n, pmem.WordSize)
			if n < 0 || n > MaxValue || rend > end {
				return payload, relocated, fmt.Errorf("%w: bad record header at %d during GC", ErrCorrupt, pos)
			}
			payload += n
			key := th.Load(pos + pmem.WordSize)
			ref := MakeRef(pos, int(n))
			if f.Live != nil && !f.Live(key, ref) {
				pos = rend
				continue
			}
			buf, err = l.ReadKeyed(th, key, ref, buf[:0])
			if err != nil {
				return payload, relocated, fmt.Errorf("vlog: GC copy of key %d: %w", key, err)
			}
			newRef, err := l.Append(th, key, buf)
			if err != nil {
				return payload, relocated, fmt.Errorf("vlog: GC relocation of key %d: %w", key, err)
			}
			if f.Swap(key, ref, newRef) {
				// The old copy dies with its extent; Append already
				// counted the new one live, so only retire the old.
				l.live.Add(-n)
				l.relocated.Add(1)
				res.Relocated++
				relocated += n
				res.RelocatedBytes += n
			} else {
				// The application overwrote or deleted the key between
				// our copy and our swap; its own MarkStale covered the
				// old copy, and the fresh copy is garbage a future pass
				// will drop.
				l.live.Add(-n)
				l.garbage.Add(n)
				res.Skipped++
			}
			pos = rend
		}
		return payload, relocated, nil
	}

	for maxExtents <= 0 || res.Extents < maxExtents {
		l.mu.Lock()
		victim, cur := l.first, l.curExt
		l.mu.Unlock()
		if victim == 0 || victim == stop || victim == cur {
			break // never reclaim the extent appends are landing in
		}
		end := int64(th.Load(victim + pmem.WordSize))
		payload, relocated, err := sweep(victim, end)
		if err != nil {
			return res, err
		}
		// First fence: no writer is left mid-flight between appending a
		// record into this (long-sealed) extent and installing its ref —
		// such installs would invalidate the sweep's dead verdicts.
		if f.Fence != nil {
			f.Fence()
		}
		// Catch-up sweep: relocate records whose ref was installed after
		// the first sweep judged them dead. After this, no record in the
		// victim can become referenced again (its ref is installed at
		// most once, by the writer that appended it, and those writers
		// have drained).
		_, relocated2, err := sweep(victim, end)
		if err != nil {
			return res, err
		}
		relocated += relocated2
		// Final fence: readers may still hold pre-sweep refs into the
		// victim; they must drain before its memory can be recycled (and
		// rezeroed) by a later allocation. New resolutions re-read the
		// tree, which no longer names the victim.
		if f.Fence != nil {
			f.Fence()
		}
		dropped := payload - relocated
		res.DroppedBytes += dropped
		// Unlink: one persisted 8-byte store moves the chain head past
		// the victim. The fence orders it after the relocations' flushes
		// on NonTSO; a crash before the flush lands leaves the victim
		// linked, full of dead records — the next pass redoes it.
		l.mu.Lock()
		next := int64(th.Load(victim))
		th.StoreFence()
		th.Store(l.hdrOff+hdrFirstWord*pmem.WordSize, uint64(next))
		th.Flush(l.hdrOff+hdrFirstWord*pmem.WordSize, pmem.WordSize)
		l.first = next
		l.mu.Unlock()
		size := end - victim
		l.p.Free(victim, size)
		l.capBytes.Add(-(size - extHdrBytes))
		l.reclaimed.Add(size)
		l.garbage.Add(-dropped)
		l.gcPasses.Add(1)
		res.Extents++
		res.ReclaimedBytes += size
	}
	return res, nil
}

// --- statistics ------------------------------------------------------------

// Stats describes a log's space accounting. Records/Bytes/Used/Extents are
// filled by the full walk in Check; the counter fields are also available
// cheaply through QuickStats. Live+Garbage can drift below Bytes when keys
// written through the varlen API are later touched through the fixed-width
// one (the store cannot attribute those bytes); recovery recomputes both
// from the tree, and GC settles them extent by extent.
type Stats struct {
	Records int   // published records (walk)
	Bytes   int64 // payload bytes in published records (walk)
	Used    int64 // bytes consumed by records incl. headers and padding (walk)
	Extents int   // extents in the chain (walk)
	Cap     int64 // record space across all allocated extents

	Live      int64 // payload bytes the index still references
	Garbage   int64 // payload bytes of overwritten/deleted records
	Reclaimed int64 // arena bytes GC returned to the pool
	Relocated int64 // records GC copied forward
	GCPasses  int64 // extents GC reclaimed
}

// GarbageRatio is the fraction of accounted payload bytes that are garbage,
// in [0,1] — the store's auto-GC trigger input.
func (s Stats) GarbageRatio() float64 {
	total := s.Live + s.Garbage
	if total <= 0 {
		return 0
	}
	return float64(s.Garbage) / float64(total)
}

// QuickStats returns the counter-backed statistics without walking the log.
func (l *Log) QuickStats() Stats {
	live, garbage := l.live.Load(), l.garbage.Load()
	if live < 0 {
		live = 0
	}
	if garbage < 0 {
		garbage = 0
	}
	return Stats{
		Cap:       l.capBytes.Load(),
		Live:      live,
		Garbage:   garbage,
		Reclaimed: l.reclaimed.Load(),
		Relocated: l.relocated.Load(),
		GCPasses:  l.gcPasses.Load(),
	}
}

// Check walks the whole log, re-validating every published record, and
// returns the space accounting. It is the testing/diagnostic counterpart
// of Open's recovery scan. Check excludes concurrent GC passes (their
// unlinks would pull the chain out from under the walk) but not concurrent
// appends, whose records it simply does not visit.
func (l *Log) Check(th *pmem.Thread) (Stats, error) {
	l.gcMu.Lock()
	defer l.gcMu.Unlock()
	l.mu.Lock()
	tail, curExt, first := l.tail, l.curExt, l.first
	l.mu.Unlock()
	st := l.QuickStats()
	st.Cap = 0
	for ext := first; ext != 0; {
		end := int64(th.Load(ext + pmem.WordSize))
		st.Cap += end - ext - extHdrBytes
		st.Extents++
		pos := ext + extHdrBytes
		for pos+pmem.WordSize <= end {
			if ext == curExt && pos >= tail {
				break
			}
			hdr := th.Load(pos)
			if hdr == 0 {
				break
			}
			n := int64(hdr&0xffffffff) - 1
			rend := pos + recHdrBytes + roundUp(n, pmem.WordSize)
			if n < 0 || n > MaxValue || rend > end || (ext == curExt && rend > tail) {
				return st, fmt.Errorf("%w: bad record header at %d", ErrCorrupt, pos)
			}
			if l.checksumAt(th, pos, int(n)) != uint32(hdr>>32) {
				return st, fmt.Errorf("%w: checksum mismatch at %d", ErrCorrupt, pos)
			}
			st.Records++
			st.Bytes += n
			st.Used += rend - pos
			pos = rend
		}
		if ext == curExt {
			break
		}
		ext = int64(th.Load(ext))
	}
	return st, nil
}

// checksumAt computes the CRC-32C of the record at off: its key word
// followed by n payload bytes.
func (l *Log) checksumAt(th *pmem.Thread, off int64, n int) uint32 {
	var buf [8]byte
	key := th.Load(off + pmem.WordSize)
	for b := 0; b < 8; b++ {
		buf[b] = byte(key >> (8 * b))
	}
	crc := crc32.Update(0, crcTable, buf[:])
	pay := off + recHdrBytes
	for i := 0; i < n; i += 8 {
		w := th.Load(pay + int64(i))
		for b := 0; b < 8; b++ {
			buf[b] = byte(w >> (8 * b))
		}
		m := n - i
		if m > 8 {
			m = 8
		}
		crc = crc32.Update(crc, crcTable, buf[:m])
	}
	return crc
}

// packWord packs up to 8 payload bytes into one little-endian word,
// zero-padding the tail.
func packWord(b []byte) uint64 {
	var w uint64
	n := len(b)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		w |= uint64(b[i]) << (8 * i)
	}
	return w
}

// appendPayload appends n payload bytes stored word-packed at off to dst.
func appendPayload(th *pmem.Thread, dst []byte, off int64, n int) []byte {
	for i := 0; i < n; i += 8 {
		w := th.Load(off + int64(i))
		m := n - i
		if m > 8 {
			m = 8
		}
		for b := 0; b < m; b++ {
			dst = append(dst, byte(w>>(8*b)))
		}
	}
	return dst
}

func roundUp(v, m int64) int64 { return (v + m - 1) / m * m }
