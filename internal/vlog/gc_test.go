package vlog

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/pmem"
)

// mapTree is the test stand-in for the index layer: a volatile key→Ref map
// with the conditional-swap semantics GC needs.
type mapTree map[uint64]Ref

func (m mapTree) funcs() GCFuncs {
	return GCFuncs{
		Live: func(key uint64, ref Ref) bool { return m[key] == ref },
		Swap: func(key uint64, old, new Ref) bool {
			if m[key] != old {
				return false
			}
			m[key] = new
			return true
		},
	}
}

// fillAndChurn appends nKeys records through the map tree, then overwrites
// each key churn times (marking the replaced record stale), returning the
// expected value per key.
func fillAndChurn(t *testing.T, l *Log, th *pmem.Thread, tree mapTree, nKeys, churn, valSize int) map[uint64][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	want := make(map[uint64][]byte)
	put := func(k uint64) {
		v := testValue(rng, valSize/2+rng.Intn(valSize/2+1))
		ref, err := l.Append(th, k, v)
		if err != nil {
			t.Fatalf("append key %d: %v", k, err)
		}
		if old, ok := tree[k]; ok {
			l.MarkStale(th, k, old)
		}
		tree[k] = ref
		want[k] = v
	}
	for k := uint64(1); k <= uint64(nKeys); k++ {
		put(k)
	}
	for c := 0; c < churn; c++ {
		for k := uint64(1); k <= uint64(nKeys); k++ {
			put(k)
		}
	}
	return want
}

func verifyTree(t *testing.T, l *Log, th *pmem.Thread, tree mapTree, want map[uint64][]byte, when string) {
	t.Helper()
	for k, v := range want {
		got, err := l.ReadKeyed(th, k, tree[k], nil)
		if err != nil {
			t.Fatalf("%s: key %d: %v", when, k, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("%s: key %d: wrong bytes", when, k)
		}
	}
}

func TestGCReclaimsGarbageAndPreservesLive(t *testing.T) {
	p, th := newPool(t, 8<<20, false)
	l, err := Create(p, th, 5, 2048)
	if err != nil {
		t.Fatal(err)
	}
	tree := mapTree{}
	want := fillAndChurn(t, l, th, tree, 40, 4, 120)

	before := l.QuickStats()
	if before.Garbage == 0 || before.GarbageRatio() < 0.5 {
		t.Fatalf("churn left no garbage to collect: %+v", before)
	}
	res, err := l.GC(th, 0, tree.funcs())
	if err != nil {
		t.Fatal(err)
	}
	if res.Extents == 0 || res.ReclaimedBytes == 0 {
		t.Fatalf("GC freed nothing: %+v", res)
	}
	if res.Relocated == 0 {
		t.Fatalf("GC relocated nothing (live records should have moved): %+v", res)
	}
	verifyTree(t, l, th, tree, want, "after GC")

	after, err := l.Check(th)
	if err != nil {
		t.Fatalf("post-GC check: %v", err)
	}
	if after.Cap >= before.Cap {
		t.Fatalf("capacity did not shrink: %d -> %d", before.Cap, after.Cap)
	}
	if after.Reclaimed == 0 || after.GCPasses == 0 {
		t.Fatalf("counters not updated: %+v", after)
	}
	// Repeated passes converge: once the chain is compact, GC stops short
	// of the tail extent and frees nothing more... unless relocation
	// itself left movable garbage behind, so run to a fixed point.
	for i := 0; i < 10; i++ {
		res, err = l.GC(th, 0, tree.funcs())
		if err != nil {
			t.Fatal(err)
		}
		if res.Extents == 0 {
			break
		}
	}
	verifyTree(t, l, th, tree, want, "after repeated GC")

	// The log still appends and the freed space is accounted.
	st := l.QuickStats()
	if st.Reclaimed == 0 {
		t.Fatal("no reclaimed bytes recorded")
	}
	if _, err := l.Append(th, 9999, []byte("post-gc")); err != nil {
		t.Fatalf("append after GC: %v", err)
	}
}

// TestGCBoundedInPlace proves churn at constant live size runs in bounded
// space when GC is interleaved: without reclamation the workload would need
// ~40x the pool, with it the pool never fills.
func TestGCBoundedInPlace(t *testing.T) {
	p, th := newPool(t, 1<<20, false) // 1 MiB pool
	l, err := Create(p, th, 5, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	tree := mapTree{}
	rng := rand.New(rand.NewSource(9))
	const nKeys, rounds, valSize = 32, 160, 1024 // ~5 MiB of appends total
	want := make(map[uint64][]byte)
	for r := 0; r < rounds; r++ {
		for k := uint64(1); k <= nKeys; k++ {
			v := testValue(rng, valSize)
			ref, err := l.Append(th, k, v)
			if err != nil {
				t.Fatalf("round %d key %d: %v (GC failed to keep up)", r, k, err)
			}
			if old, ok := tree[k]; ok {
				l.MarkStale(th, k, old)
			}
			tree[k] = ref
			want[k] = v
		}
		if l.QuickStats().GarbageRatio() > 0.5 {
			if _, err := l.GC(th, 0, tree.funcs()); err != nil {
				t.Fatalf("round %d GC: %v", r, err)
			}
		}
	}
	verifyTree(t, l, th, tree, want, "after churn")
	if st := l.QuickStats(); st.Reclaimed == 0 {
		t.Fatal("churn succeeded without reclaiming anything — pool larger than intended?")
	}
}

// TestGCSkipsRecordOverwrittenMidPass drives the Swap-refusal path: a key
// overwritten between GC's copy and its swap must keep the application's
// value, and the abandoned relocation copy must be collectable later.
func TestGCSkipsRecordOverwrittenMidPass(t *testing.T) {
	p, th := newPool(t, 4<<20, false)
	l, err := Create(p, th, 5, 1024)
	if err != nil {
		t.Fatal(err)
	}
	tree := mapTree{}
	want := fillAndChurn(t, l, th, tree, 16, 2, 100)

	// Intercept Swap: the first time GC tries to move key 7, "the
	// application" overwrites it first.
	raced := false
	fs := tree.funcs()
	innerSwap := fs.Swap
	fs.Swap = func(key uint64, old, new Ref) bool {
		if key == 7 && !raced {
			raced = true
			v := []byte("overwritten mid-GC")
			ref, err := l.Append(th, 7, v)
			if err != nil {
				t.Fatalf("racing append: %v", err)
			}
			l.MarkStale(th, 7, tree[7])
			tree[7] = ref
			want[7] = v
		}
		return innerSwap(key, old, new)
	}
	res, err := l.GC(th, 0, fs)
	if err != nil {
		t.Fatal(err)
	}
	if !raced {
		t.Skip("key 7 was not live in a reclaimed extent this run")
	}
	if res.Skipped == 0 {
		t.Fatalf("expected a skipped relocation: %+v", res)
	}
	verifyTree(t, l, th, tree, want, "after raced GC")
}

// TestGCNeverTouchesTailExtent: with the whole log in one extent there is
// nothing reclaimable, however much garbage it holds.
func TestGCNeverTouchesTailExtent(t *testing.T) {
	p, th := newPool(t, 4<<20, false)
	l, err := Create(p, th, 5, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	tree := mapTree{}
	for i := 0; i < 50; i++ {
		ref, err := l.Append(th, 1, []byte("value"))
		if err != nil {
			t.Fatal(err)
		}
		if old, ok := tree[1]; ok {
			l.MarkStale(th, 1, old)
		}
		tree[1] = ref
	}
	res, err := l.GC(th, 0, tree.funcs())
	if err != nil {
		t.Fatal(err)
	}
	if res.Extents != 0 || res.Relocated != 0 {
		t.Fatalf("GC touched the tail extent: %+v", res)
	}
	if got, err := l.ReadKeyed(th, 1, tree[1], nil); err != nil || string(got) != "value" {
		t.Fatalf("live value damaged: %v %q", err, got)
	}
}

func TestGCRequiresSwap(t *testing.T) {
	p, th := newPool(t, 1<<20, false)
	l, err := Create(p, th, 5, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.GC(th, 0, GCFuncs{}); err == nil {
		t.Fatal("GC without Swap must refuse")
	}
}

func TestReadKeyedRejectsWrongOwner(t *testing.T) {
	p, th := newPool(t, 1<<20, false)
	l, err := Create(p, th, 5, 4096)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := l.Append(th, 77, []byte("mine"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReadKeyed(th, 77, ref, nil); err != nil {
		t.Fatalf("rightful owner rejected: %v", err)
	}
	if _, err := l.ReadKeyed(th, 78, ref, nil); !errors.Is(err, ErrBadRef) {
		t.Fatalf("wrong owner: err = %v, want ErrBadRef", err)
	}
	if l.IsRecord(th, 78, ref) {
		t.Fatal("IsRecord accepted the wrong owner")
	}
	if !l.IsRecord(th, 77, ref) {
		t.Fatal("IsRecord rejected the rightful owner")
	}
}

// TestAccountingFollowsLifecycle pins the live/garbage bookkeeping through
// append → overwrite → GC → reopen.
func TestAccountingFollowsLifecycle(t *testing.T) {
	p, th := newPool(t, 4<<20, false)
	l, err := Create(p, th, 5, 1024)
	if err != nil {
		t.Fatal(err)
	}
	tree := mapTree{}
	val := make([]byte, 100)
	ref1, _ := l.Append(th, 1, val)
	tree[1] = ref1
	if st := l.QuickStats(); st.Live != 100 || st.Garbage != 0 {
		t.Fatalf("after append: %+v", st)
	}
	ref2, _ := l.Append(th, 1, val)
	l.MarkStale(th, 1, ref1)
	tree[1] = ref2
	if st := l.QuickStats(); st.Live != 100 || st.Garbage != 100 {
		t.Fatalf("after overwrite: %+v", st)
	}
	// MarkStale on a non-record word is a no-op (fixed-width values).
	if l.MarkStale(th, 2, Ref(12345)) {
		t.Fatal("MarkStale accepted a fixed-width word")
	}
	if st := l.QuickStats(); st.Garbage != 100 {
		t.Fatalf("fixed-width word changed accounting: %+v", st)
	}
	// Fill enough extents that GC can free the head, then collect.
	for k := uint64(10); k < 40; k++ {
		r, err := l.Append(th, k, val)
		if err != nil {
			t.Fatal(err)
		}
		tree[k] = r
	}
	if _, err := l.GC(th, 0, tree.funcs()); err != nil {
		t.Fatal(err)
	}
	st := l.QuickStats()
	if st.Garbage != 0 {
		t.Fatalf("garbage not settled by GC: %+v", st)
	}
	if st.Live != int64(100*(1+30)) {
		t.Fatalf("live drifted: %+v", st)
	}
	// Reopen assumes everything below the tail is live; ResetAccounting
	// restores the caller-computed truth.
	re, err := Open(p, th, 5)
	if err != nil {
		t.Fatal(err)
	}
	rst := re.QuickStats()
	if rst.Live == 0 || rst.Garbage != 0 {
		t.Fatalf("reopen seed accounting: %+v", rst)
	}
	re.ResetAccounting(3100, 42)
	if got := re.QuickStats(); got.Live != 3100 || got.Garbage != 42 {
		t.Fatalf("ResetAccounting: %+v", got)
	}
}
