package metrics

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
)

// Registry holds named metric families and renders them. Registration
// happens at subsystem construction (server.New, store.Open); rendering
// happens on scrape. Families group series that share a name and type but
// differ in labels — the per-opcode layout.
//
// Counters and gauges are read-function-backed, so existing atomic counters
// register without changing how they are written. Histograms register the
// live *Histogram; the registry snapshots it per scrape.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

type family struct {
	name, help, typ string
	series          []series
}

type series struct {
	labels  string // rendered label pairs without braces, e.g. `op="Get"`
	counter func() uint64
	gauge   func() float64
	hist    *Histogram
	scale   float64 // exported value = recorded value * scale (1e-9: ns→s)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) add(name, labels, help, typ string, s series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.typ, typ))
	}
	s.labels = labels
	f.series = append(f.series, s)
}

// Counter registers a counter series read from fn. labels is the rendered
// label list without braces ("" for none), e.g. `op="Get"`.
func (r *Registry) Counter(name, labels, help string, fn func() uint64) {
	r.add(name, labels, help, "counter", series{counter: fn})
}

// Gauge registers a gauge series read from fn.
func (r *Registry) Gauge(name, labels, help string, fn func() float64) {
	r.add(name, labels, help, "gauge", series{gauge: fn})
}

// Histogram registers a histogram series. scale converts recorded values to
// the exported unit (1e-9 for nanosecond recordings exported as seconds,
// 1 for counts and sizes).
func (r *Registry) Histogram(name, labels, help string, scale float64, h *Histogram) {
	if scale == 0 {
		scale = 1
	}
	r.add(name, labels, help, "histogram", series{hist: h, scale: scale})
}

// fmtFloat renders a sample value the way Prometheus text format expects.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeSample(w io.Writer, name, labels string, v float64) error {
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s %s\n", name, fmtFloat(v))
		return err
	}
	_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, labels, fmtFloat(v))
	return err
}

// joinLabels appends extra to base with the "," separator, tolerating either
// being empty.
func joinLabels(base, extra string) string {
	if base == "" {
		return extra
	}
	if extra == "" {
		return base
	}
	return base + "," + extra
}

// WritePrometheus renders the registry in Prometheus text exposition format
// (version 0.0.4): one HELP/TYPE header per family, then every series.
// Histograms export cumulative buckets on the power-of-two grid — each `le`
// bound is 2^k in the exported unit's recorded scale — spanning the
// nonempty range, plus the mandatory +Inf bucket, _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			var err error
			switch {
			case s.counter != nil:
				err = writeSample(w, f.name, s.labels, float64(s.counter()))
			case s.gauge != nil:
				err = writeSample(w, f.name, s.labels, s.gauge())
			case s.hist != nil:
				err = writeHist(w, f.name, s.labels, s.hist.Snapshot(), s.scale)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHist renders one histogram series: cumulative buckets at the
// power-of-two boundaries covering the recorded range (the fine sub-bucket
// resolution stays internal; the exported grid is stable across scrapes
// because its bounds come from a fixed geometric ladder, not the data).
func writeHist(w io.Writer, name, labels string, s *Snapshot, scale float64) error {
	// Find the first and last nonempty bucket to bound the ladder: the
	// boundary for k covers recorded values < 2^k (cumulative through
	// fine-bucket index (k-subBits+1)*subCount - 1).
	first, last := -1, -1
	for i, c := range s.Counts {
		if c != 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	var cum uint64
	if first >= 0 {
		kFirst := first/subCount + subBits // smallest k with 2^k > bucket lo
		kLast := last/subCount + subBits + 1
		idx := 0
		for k := kFirst; k <= kLast && k <= 63; k++ {
			// cumulative count of values < 2^k = buckets [0, k*subCount-subCount*subBits+...):
			// bucket index of value 2^k - 1 is (k-subBits)*subCount + subCount - 1
			end := (k-subBits)*subCount + subCount // exclusive
			if end > len(s.Counts) {
				end = len(s.Counts)
			}
			for ; idx < end; idx++ {
				cum += s.Counts[idx]
			}
			le := float64(int64(1)<<k) * scale
			if err := writeSample(w, name+"_bucket", joinLabels(labels, `le="`+fmtFloat(le)+`"`), float64(cum)); err != nil {
				return err
			}
		}
	}
	if err := writeSample(w, name+"_bucket", joinLabels(labels, `le="+Inf"`), float64(s.Total)); err != nil {
		return err
	}
	if err := writeSample(w, name+"_sum", labels, float64(s.Sum)*scale); err != nil {
		return err
	}
	return writeSample(w, name+"_count", labels, float64(s.Total))
}

// Handler returns an http.Handler serving the registry as Prometheus text
// format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// ExpvarFunc returns an expvar.Func rendering the registry as a JSON map:
// counters and gauges by "name{labels}" key, histograms as
// {count, sum, p50, p99, max} objects. Publish it once per process:
//
//	expvar.Publish("pmkv", reg.ExpvarFunc())
func (r *Registry) ExpvarFunc() expvar.Func {
	return func() any {
		out := make(map[string]any)
		r.mu.Lock()
		fams := make([]*family, len(r.families))
		copy(fams, r.families)
		r.mu.Unlock()
		for _, f := range fams {
			for _, s := range f.series {
				key := f.name
				if s.labels != "" {
					key += "{" + s.labels + "}"
				}
				switch {
				case s.counter != nil:
					out[key] = s.counter()
				case s.gauge != nil:
					out[key] = s.gauge()
				case s.hist != nil:
					snap := s.hist.Snapshot()
					out[key] = map[string]any{
						"count": snap.Count(),
						"sum":   float64(snap.Sum) * s.scale,
						"p50":   float64(snap.Quantile(0.50)) * s.scale,
						"p99":   float64(snap.Quantile(0.99)) * s.scale,
						"max":   float64(snap.Max()) * s.scale,
					}
				}
			}
		}
		return out
	}
}

// SeriesNames returns the registered family names, sorted — a testing and
// smoke-check aid.
func (r *Registry) SeriesNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for _, f := range r.families {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return names
}
