package metrics

import "sync/atomic"

// cacheLine is the assumed coherence granule. Counters are padded to it so
// adjacent counters in an array (the per-opcode layout) never share a line,
// and striped counters give each writer its own line.
const cacheLine = 64

// Counter is a monotonically increasing counter padded to a cache line, so
// arrays of Counters (one per opcode, one per stage) do not false-share.
// For counters bumped concurrently from many cores on one hot path, prefer
// Striped.
type Counter struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Striped is a counter sharded across cache-line-padded stripes: writers
// pick a stripe (their worker id, shard id, or any stable small int) so
// concurrent increments touch distinct lines, and readers sum the stripes.
// Loads are monotonic per stripe; a concurrent sum is a monitoring-grade
// approximation, like every counter snapshot in this package.
type Striped struct {
	stripes []Counter
	mask    uint32
}

// NewStriped returns a counter with at least n stripes (rounded up to a
// power of two so stripe selection is a mask, not a modulo).
func NewStriped(n int) *Striped {
	if n < 1 {
		n = 1
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &Striped{stripes: make([]Counter, size), mask: uint32(size - 1)}
}

// Add increments the counter by d on the stripe selected by hint. Any hint
// value is safe; distinct concurrent writers should pass distinct hints.
func (s *Striped) Add(hint int, d uint64) {
	s.stripes[uint32(hint)&s.mask].Add(d)
}

// Inc increments by one on the stripe selected by hint.
func (s *Striped) Inc(hint int) { s.Add(hint, 1) }

// Load sums the stripes.
func (s *Striped) Load() uint64 {
	var total uint64
	for i := range s.stripes {
		total += s.stripes[i].Load()
	}
	return total
}
