package metrics

import (
	"bufio"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LintText validates Prometheus text exposition format (version 0.0.4) the
// way a scraper would: every line must be a well-formed comment or sample,
// TYPE lines must precede their family's samples and not repeat, histogram
// families must carry cumulative non-decreasing buckets ending in le="+Inf"
// whose count matches _count. It returns the set of family names seen (with
// the _bucket/_sum/_count suffixes folded into their histogram family), so
// callers can assert required series are present.
//
// It backs both the registry's own tests and cmd/metricscheck's CI smoke
// scrape; it is a validator for this repo's exposition, not a general
// Prometheus parser (exotic but legal corners like exemplars are rejected).
func LintText(data []byte) (map[string]bool, error) {
	families := make(map[string]bool)
	typed := make(map[string]string)
	// histogram bucket state per series (family + non-le labels).
	type bucketState struct {
		lastLe  float64
		lastCum float64
		infSeen bool
		infCum  float64
	}
	buckets := make(map[string]*bucketState)
	counts := make(map[string]float64)

	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if kind == "TYPE" {
				if _, dup := typed[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, rest)
				}
				typed[name] = rest
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		base, isBucket, isCount := name, false, false
		for fam, typ := range typed {
			if typ != "histogram" {
				continue
			}
			switch name {
			case fam + "_bucket":
				base, isBucket = fam, true
			case fam + "_count":
				base, isCount = fam, true
			case fam + "_sum":
				base = fam
			}
		}
		if typ, ok := typed[base]; !ok {
			return nil, fmt.Errorf("line %d: sample %s without a preceding TYPE", lineNo, name)
		} else if typ == "histogram" && base == name {
			return nil, fmt.Errorf("line %d: histogram %s sampled without _bucket/_sum/_count suffix", lineNo, name)
		}
		families[base] = true
		if isBucket {
			le, rest, err := splitLe(labels)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			key := base + "{" + rest + "}"
			st := buckets[key]
			if st == nil {
				st = &bucketState{lastLe: -1}
				buckets[key] = st
			}
			if st.infSeen {
				return nil, fmt.Errorf("line %d: bucket after le=\"+Inf\" for %s", lineNo, key)
			}
			if le == infLe {
				st.infSeen, st.infCum = true, value
			} else {
				if le <= st.lastLe {
					return nil, fmt.Errorf("line %d: le bounds not increasing for %s", lineNo, key)
				}
				st.lastLe = le
			}
			if value < st.lastCum {
				return nil, fmt.Errorf("line %d: bucket counts not cumulative for %s", lineNo, key)
			}
			st.lastCum = value
		}
		if isCount {
			// Key by sorted label pairs so it matches the bucket series
			// identity regardless of rendered order.
			pairs := splitLabelPairs(labels)
			sort.Strings(pairs)
			counts[base+"{"+strings.Join(pairs, ",")+"}"] = value
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for key, st := range buckets {
		if !st.infSeen {
			return nil, fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", key)
		}
		if cnt, ok := counts[key]; !ok {
			return nil, fmt.Errorf("histogram %s has buckets but no _count", key)
		} else if cnt != st.infCum {
			return nil, fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", key, st.infCum, cnt)
		}
	}
	return families, nil
}

// infLe is the sentinel parsed from le="+Inf".
var infLe = math.Inf(1)

func parseComment(line string) (kind, name, rest string, err error) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 || fields[0] != "#" {
		// Bare comments are legal but this exposition never emits them.
		return "", "", "", fmt.Errorf("malformed comment %q", line)
	}
	kind = fields[1]
	if kind != "HELP" && kind != "TYPE" {
		return "", "", "", fmt.Errorf("unknown comment kind %q", kind)
	}
	if len(fields) < 3 {
		return "", "", "", fmt.Errorf("%s without a metric name", kind)
	}
	name = fields[2]
	if !validName(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if len(fields) == 4 {
		rest = fields[3]
	}
	return kind, name, rest, nil
}

// parseSample parses `name{labels} value [timestamp]`, returning the
// rendered label list without braces.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", "", 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !validName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end, err := scanLabels(rest)
		if err != nil {
			return "", "", 0, err
		}
		labels = rest[1 : end-1]
		rest = rest[end:]
	}
	rest = strings.TrimPrefix(rest, " ")
	valStr, _, _ := strings.Cut(rest, " ")
	value, err = parseValue(valStr)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad sample value %q: %v", valStr, err)
	}
	return name, labels, value, nil
}

// scanLabels validates a `{name="value",...}` block starting at s[0]=='{'
// and returns the index just past the closing brace.
func scanLabels(s string) (int, error) {
	i := 1
	for {
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) || !validLabelName(s[start:i]) {
			return 0, fmt.Errorf("bad label name in %q", s)
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
				if i >= len(s) || (s[i] != '\\' && s[i] != '"' && s[i] != 'n') {
					return 0, fmt.Errorf("bad escape in label value in %q", s)
				}
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // closing '"'
		if i < len(s) && s[i] == ',' {
			i++
		} else if i >= len(s) || s[i] != '}' {
			return 0, fmt.Errorf("missing , or } in label block %q", s)
		}
	}
}

// splitLe extracts the le bound from a bucket's label list and returns the
// remaining labels (the bucket's series identity).
func splitLe(labels string) (le float64, rest string, err error) {
	parts := splitLabelPairs(labels)
	found := false
	var kept []string
	for _, p := range parts {
		name, val, ok := strings.Cut(p, "=")
		if !ok {
			return 0, "", fmt.Errorf("bad label pair %q", p)
		}
		if name != "le" {
			kept = append(kept, p)
			continue
		}
		found = true
		unq := strings.Trim(val, `"`)
		if unq == "+Inf" {
			le = infLe
			continue
		}
		le, err = strconv.ParseFloat(unq, 64)
		if err != nil {
			return 0, "", fmt.Errorf("bad le bound %q", unq)
		}
	}
	if !found {
		return 0, "", fmt.Errorf("bucket sample without le label in {%s}", labels)
	}
	sort.Strings(kept)
	return le, strings.Join(kept, ","), nil
}

// splitLabelPairs splits a rendered label list on commas outside quotes.
func splitLabelPairs(labels string) []string {
	if labels == "" {
		return nil
	}
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, labels[start:i])
				start = i + 1
			}
		}
	}
	return append(out, labels[start:])
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return infLe, nil
	case "-Inf":
		return -infLe, nil
	case "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
