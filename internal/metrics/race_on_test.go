//go:build race

package metrics

// raceEnabled reports that the race detector is active; exact allocation
// counts are not meaningful under its instrumentation.
const raceEnabled = true
