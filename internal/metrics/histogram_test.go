package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketRoundTrip pins the index/bounds inverse: every bucket's lo and
// hi map back to it, hi+1 maps to the next, and widths respect the
// 1/subCount relative-error contract.
func TestBucketRoundTrip(t *testing.T) {
	for idx := 0; idx < numBuckets; idx++ {
		lo, hi := bucketRange(idx)
		if got := bucketIndex(lo); got != idx {
			t.Fatalf("bucketIndex(lo=%d) = %d, want %d", lo, got, idx)
		}
		if got := bucketIndex(hi); got != idx {
			t.Fatalf("bucketIndex(hi=%d) = %d, want %d", hi, got, idx)
		}
		if idx < numBuckets-1 && hi != math.MaxInt64 {
			if got := bucketIndex(hi + 1); got != idx+1 {
				t.Fatalf("bucketIndex(hi+1=%d) = %d, want %d", hi+1, got, idx+1)
			}
		}
		if lo >= subCount {
			if width := hi - lo + 1; width > lo/subCount {
				t.Fatalf("bucket %d [%d,%d] width %d exceeds lo/subCount bound", idx, lo, hi, width)
			}
		}
	}
	if got := bucketIndex(math.MaxInt64); got != numBuckets-1 {
		t.Fatalf("bucketIndex(MaxInt64) = %d, want %d", got, numBuckets-1)
	}
	if got := bucketIndex(-5); got != 0 {
		t.Fatalf("bucketIndex(-5) = %d, want 0 (negative clamp)", got)
	}
}

// TestQuantileAccuracy compares histogram quantiles against exact sorted
// order statistics on distributions shaped like real latencies: the
// histogram's answer must bracket the exact one within the log-linear
// relative-error bound.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func() int64{
		// log-uniform over ~100ns..100ms, the server latency shape
		"loguniform": func() int64 { return int64(math.Exp(rng.Float64()*13.8 + 4.6)) },
		// heavy-tailed: mostly small with rare large spikes
		"spiky": func() int64 {
			if rng.Intn(100) == 0 {
				return int64(rng.Intn(1e9))
			}
			return int64(500 + rng.Intn(2000))
		},
		"uniform-small": func() int64 { return int64(rng.Intn(64)) },
	}
	for name, gen := range dists {
		h := NewHistogram()
		vals := make([]int64, 20000)
		for i := range vals {
			vals[i] = gen()
			h.Record(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		s := h.Snapshot()
		if s.Count() != uint64(len(vals)) {
			t.Fatalf("%s: count %d, want %d", name, s.Count(), len(vals))
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			rank := int(q * float64(len(vals)))
			if rank > 0 {
				rank--
			}
			exact := vals[rank]
			got := s.Quantile(q)
			// got is the upper bound of exact's bucket: never below exact,
			// and at most one bucket width (lo/subCount, or the exact
			// buckets' width of 0) above it.
			if got < exact {
				t.Errorf("%s: q%.3f = %d below exact %d", name, q, got, exact)
			}
			slack := exact/subCount + 1
			if got > exact+slack {
				t.Errorf("%s: q%.3f = %d exceeds exact %d by more than %d", name, q, got, exact, slack)
			}
		}
	}
}

// TestQuantileEdgeCases covers the empty and degenerate snapshots.
func TestQuantileEdgeCases(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if s.Quantile(0.5) != 0 || s.Max() != 0 || s.Min() != 0 || s.Mean() != 0 {
		t.Fatal("empty snapshot must report zeros")
	}
	h.Record(42)
	s = h.Snapshot()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := s.Quantile(q); got != 42 {
			t.Fatalf("single-value Quantile(%v) = %d, want 42", q, got)
		}
	}
	if s.Min() != 42 || s.Max() != 42 || s.Mean() != 42 {
		t.Fatalf("single-value min/max/mean = %d/%d/%v, want 42", s.Min(), s.Max(), s.Mean())
	}
	h.Record(math.MaxInt64)
	if got := h.Snapshot().Max(); got != math.MaxInt64 {
		t.Fatalf("Max after MaxInt64 record = %d", got)
	}
}

// TestMergeAssociativity pins that snapshots merge associatively and
// commutatively, so per-worker histograms combine into one distribution no
// matter the fold order.
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func() *Histogram {
		h := NewHistogram()
		for i := 0; i < 5000; i++ {
			h.Record(int64(rng.Intn(1 << 30)))
		}
		return h
	}
	a, b, c := mk(), mk(), mk()

	// (a+b)+c
	left := a.Snapshot()
	left.Merge(b.Snapshot())
	left.Merge(c.Snapshot())
	// a+(b+c)
	bc := b.Snapshot()
	bc.Merge(c.Snapshot())
	right := a.Snapshot()
	right.Merge(bc)
	// c+b+a
	rev := c.Snapshot()
	rev.Merge(b.Snapshot())
	rev.Merge(a.Snapshot())

	for _, o := range []*Snapshot{right, rev} {
		if left.Total != o.Total || left.Sum != o.Sum {
			t.Fatalf("merge totals disagree: %d/%d vs %d/%d", left.Total, left.Sum, o.Total, o.Sum)
		}
		for i := range left.Counts {
			if left.Counts[i] != o.Counts[i] {
				t.Fatalf("merge bucket %d disagrees: %d vs %d", i, left.Counts[i], o.Counts[i])
			}
		}
	}
}

// TestConcurrentRecord hammers one histogram from many goroutines; the
// count and sum must balance exactly. Run under -race in CI, this is also
// the data-race proof for the lock-free Record.
func TestConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	const workers, perWorker = 8, 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Record(int64(w*1000 + i%997))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count() != workers*perWorker {
		t.Fatalf("count %d, want %d", s.Count(), workers*perWorker)
	}
	var wantSum int64
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			wantSum += int64(w*1000 + i%997)
		}
	}
	if s.Sum != wantSum {
		t.Fatalf("sum %d, want %d", s.Sum, wantSum)
	}
}

// TestStripedCounter exercises stripe selection and concurrent adds.
func TestStripedCounter(t *testing.T) {
	c := NewStriped(3) // rounds to 4 stripes
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				c.Inc(w)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Load(); got != 80000 {
		t.Fatalf("striped load %d, want 80000", got)
	}
	var pc Counter
	pc.Add(3)
	pc.Inc()
	if pc.Load() != 4 {
		t.Fatalf("counter = %d, want 4", pc.Load())
	}
}

// TestRecordAllocs pins the hot-path contract: Record, RecordSince, and
// striped counter adds must not touch the heap.
func TestRecordAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the contract is checked in non-race runs")
	}
	h := NewHistogram()
	if allocs := testing.AllocsPerRun(1000, func() { h.Record(1234) }); allocs != 0 {
		t.Errorf("Record allocs/op = %v, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() { h.RecordSince(time.Now()) }); allocs != 0 {
		t.Errorf("RecordSince allocs/op = %v, want 0", allocs)
	}
	c := NewStriped(4)
	if allocs := testing.AllocsPerRun(1000, func() { c.Inc(2) }); allocs != 0 {
		t.Errorf("Striped.Inc allocs/op = %v, want 0", allocs)
	}
}

func BenchmarkRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

func BenchmarkRecordParallel(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(0)
		for pb.Next() {
			v++
			h.Record(v)
		}
	})
}
