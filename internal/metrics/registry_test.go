package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func buildRegistry() *Registry {
	r := NewRegistry()
	var reqs Counter
	reqs.Add(17)
	r.Counter("test_requests_total", `op="Get"`, "requests served", reqs.Load)
	r.Counter("test_requests_total", `op="Put"`, "requests served", func() uint64 { return 5 })
	r.Gauge("test_conns_live", "", "open connections", func() float64 { return 3 })
	h := NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 1000) // 1µs..1ms
	}
	r.Histogram("test_latency_seconds", `op="Get",stage="execute"`, "latency by stage", 1e-9, h)
	empty := NewHistogram()
	r.Histogram("test_latency_seconds", `op="Put",stage="execute"`, "latency by stage", 1e-9, empty)
	return r
}

// TestWritePrometheusLints renders a registry and validates it with the
// same linter CI's metricscheck uses: parseable, typed, cumulative
// histograms, all families present.
func TestWritePrometheusLints(t *testing.T) {
	r := buildRegistry()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := LintText(buf.Bytes())
	if err != nil {
		t.Fatalf("lint: %v\noutput:\n%s", err, buf.String())
	}
	for _, want := range []string{"test_requests_total", "test_conns_live", "test_latency_seconds"} {
		if !fams[want] {
			t.Errorf("family %s missing from output; got %v", want, fams)
		}
	}
	out := buf.String()
	for _, want := range []string{
		`test_requests_total{op="Get"} 17`,
		`test_requests_total{op="Put"} 5`,
		"test_conns_live 3",
		`test_latency_seconds_count{op="Get",stage="execute"} 1000`,
		`le="+Inf"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE must appear once per family even with multiple series.
	if n := strings.Count(out, "# TYPE test_latency_seconds histogram"); n != 1 {
		t.Errorf("TYPE for test_latency_seconds appears %d times, want 1", n)
	}
}

// TestHistogramExportBounds checks the exported cumulative buckets against
// the snapshot ground truth at every power-of-two ladder point.
func TestHistogramExportBounds(t *testing.T) {
	h := NewHistogram()
	vals := []int64{1, 31, 32, 1000, 1024, 1025, 1 << 20}
	for _, v := range vals {
		h.Record(v)
	}
	r := NewRegistry()
	r.Histogram("raw", "", "raw units", 1, h)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LintText(buf.Bytes()); err != nil {
		t.Fatalf("lint: %v\n%s", err, buf.String())
	}
	out := buf.String()
	// le="32" covers values < 32: {1, 31} = 2. le="1024" covers {1,31,32,1000} = 4.
	for _, want := range []string{
		`raw_bucket{le="32"} 2`,
		`raw_bucket{le="1024"} 4`,
		`raw_bucket{le="+Inf"} 7`,
		"raw_count 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestLintRejects feeds the linter malformed expositions; each must fail.
func TestLintRejects(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "foo 1\n",
		"bad name":            "# TYPE 9bad counter\n9bad 1\n",
		"bad value":           "# TYPE foo counter\nfoo xyz\n",
		"unterminated labels": "# TYPE foo counter\nfoo{a=\"b 1\n",
		"duplicate TYPE":      "# TYPE foo counter\n# TYPE foo gauge\nfoo 1\n",
		"unknown type":        "# TYPE foo widget\nfoo 1\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"missing +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"Inf/count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 6\n",
		"decreasing le": "# TYPE h histogram\n" +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
	}
	for name, in := range cases {
		if _, err := LintText([]byte(in)); err == nil {
			t.Errorf("%s: lint accepted malformed input:\n%s", name, in)
		}
	}
	// And a well-formed control.
	good := "# HELP ok fine\n# TYPE ok counter\nok{a=\"b\",c=\"d\"} 12\n" +
		"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 4.5\nh_count 3\n"
	if _, err := LintText([]byte(good)); err != nil {
		t.Errorf("lint rejected well-formed input: %v", err)
	}
}

// TestExpvarFunc checks the JSON-shaped view.
func TestExpvarFunc(t *testing.T) {
	r := buildRegistry()
	v := r.ExpvarFunc()()
	m, ok := v.(map[string]any)
	if !ok {
		t.Fatalf("expvar value is %T, want map", v)
	}
	if got := m[`test_requests_total{op="Get"}`]; got != uint64(17) {
		t.Errorf("counter via expvar = %v, want 17", got)
	}
	hist, ok := m[`test_latency_seconds{op="Get",stage="execute"}`].(map[string]any)
	if !ok || hist["count"] != uint64(1000) {
		t.Errorf("histogram via expvar = %v", m)
	}
}

// TestRegistryTypeConflict pins the programming-error panic.
func TestRegistryTypeConflict(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a name with a different type must panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x", "", "h", func() uint64 { return 0 })
	r.Gauge("x", "", "h", func() float64 { return 0 })
}
