// Package metrics is the in-process observability layer: lock-free,
// allocation-free latency histograms and cache-line-padded counters, plus a
// Registry that exposes them as Prometheus text format, expvar JSON, and
// mergeable snapshots with quantiles.
//
// The package is dependency-free and always-on by design: a Histogram's
// Record is three atomic operations on pre-allocated memory (no locks, no
// allocation, no time source), so the server and store keep their
// instrumentation enabled unconditionally and the benchmark regression gate
// doubles as the overhead proof. Reading — snapshots, quantiles, text
// exposition — is the slow path and may allocate freely.
package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is HDR-style log-linear: values below subCount get one
// bucket each (exact), and every power-of-two range above that is split
// into subCount linear sub-buckets, so any recorded value lands in a bucket
// whose width is at most 1/subCount of the value. Quantiles read from
// bucket upper bounds therefore carry a bounded relative error of
// 1/subCount (~3.1%), independent of the distribution, while the whole
// positive int64 range — recorded values are typically nanoseconds, but
// sizes and counts work the same — fits numBuckets fixed counters with no
// dynamic resizing (which is what keeps Record lock-free).
const (
	subBits  = 5
	subCount = 1 << subBits
	// numBuckets covers bucketIndex over all of [0, MaxInt64]: subCount
	// exact buckets plus subCount linear sub-buckets for each of the
	// 63-subBits power-of-two ranges above them.
	numBuckets = (63-subBits)*subCount + subCount
)

// bucketIndex maps a value to its bucket. Negative values clamp to 0.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	uv := uint64(v)
	k := bits.Len64(uv)
	if k <= subBits {
		return int(uv)
	}
	shift := k - subBits - 1
	return (k-subBits)*subCount + int(uv>>shift) - subCount
}

// bucketRange returns the inclusive value range [lo, hi] of bucket idx —
// the inverse of bucketIndex.
func bucketRange(idx int) (lo, hi int64) {
	if idx < subCount {
		return int64(idx), int64(idx)
	}
	shift := idx/subCount - 1
	lo = int64(subCount+idx%subCount) << shift
	return lo, lo + (int64(1) << shift) - 1
}

// Histogram is a fixed-size log-linear histogram safe for concurrent use.
// Record never blocks, never allocates, and never takes a lock; reads
// (Snapshot) observe a consistent-enough view for monitoring (individual
// bucket loads are atomic, the set of loads is not a linearizable cut).
// The zero value is NOT ready; use NewHistogram.
type Histogram struct {
	counts []atomic.Uint64
	sum    atomic.Int64
}

// NewHistogram returns an empty histogram covering [0, MaxInt64].
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Uint64, numBuckets)}
}

// Record adds one observation. Negative values clamp to 0. It is lock-free
// and allocation-free: one indexed atomic add plus one atomic add for the
// sum.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// RecordSince records the elapsed nanoseconds since start. It is the
// latency-timing convenience: `defer h.RecordSince(time.Now())` charges a
// function's duration on return without allocating.
func (h *Histogram) RecordSince(start time.Time) {
	h.Record(int64(time.Since(start)))
}

// Snapshot copies the histogram's state into a mergeable, quantile-capable
// value. It allocates; take snapshots on scrape/report paths, not hot ones.
func (h *Histogram) Snapshot() *Snapshot {
	s := &Snapshot{Counts: make([]uint64, numBuckets), Sum: h.sum.Load()}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Total += c
	}
	return s
}

// Snapshot is a point-in-time copy of a Histogram. Snapshots merge
// associatively and commutatively: bucket counts and sums simply add,
// so per-worker histograms combine into one distribution with no loss
// beyond the shared bucket granularity.
type Snapshot struct {
	Counts []uint64
	Total  uint64
	Sum    int64
}

// Merge adds o into s.
func (s *Snapshot) Merge(o *Snapshot) {
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Total += o.Total
	s.Sum += o.Sum
}

// Count returns the number of recorded observations.
func (s *Snapshot) Count() uint64 { return s.Total }

// Mean returns the exact mean of the recorded values (the sum is tracked
// exactly, not rebuilt from buckets), or 0 when empty.
func (s *Snapshot) Mean() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Total)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]) of the
// recorded values: the upper bound of the bucket holding the rank-⌈q·n⌉
// observation, which exceeds the exact order statistic by at most a factor
// of 1/subCount (~3.1%). An empty snapshot returns 0.
func (s *Snapshot) Quantile(q float64) int64 {
	if s.Total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Total))
	if rank > 0 {
		rank-- // 1-based rank of the order statistic, clamped into range
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum > rank {
			_, hi := bucketRange(i)
			return hi
		}
	}
	_, hi := bucketRange(numBuckets - 1)
	return hi
}

// Max returns an upper bound for the largest recorded value (the top
// nonempty bucket's upper bound), or 0 when empty.
func (s *Snapshot) Max() int64 {
	for i := len(s.Counts) - 1; i >= 0; i-- {
		if s.Counts[i] != 0 {
			_, hi := bucketRange(i)
			return hi
		}
	}
	return 0
}

// Min returns a lower bound for the smallest recorded value (the bottom
// nonempty bucket's lower bound), or 0 when empty.
func (s *Snapshot) Min() int64 {
	for i, c := range s.Counts {
		if c != 0 {
			lo, _ := bucketRange(i)
			return lo
		}
	}
	return 0
}
