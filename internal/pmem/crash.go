package pmem

import (
	"math/rand"
)

// The crash simulator answers the question the paper's power-off experiments
// ask: "which arena images can persistent memory legally contain after an
// untimely crash?" It records every crash-visible store, flush, and fence in
// program order and then materialises legal post-crash images.
//
// Legality rules, matching the hardware contract in §II of the paper:
//
//   - A store is *guaranteed* persistent once a Flush covering its line
//     completes after it (clflush_with_mfence is synchronous here, i.e. the
//     strict persistency model the paper assumes in §III).
//   - Stores to a line after its last completed flush ("pending" stores) may
//     or may not have been evicted. Under TSO any program-order prefix of a
//     line's pending stores may survive. Under NonTSO the only ordering is
//     supplied by StoreFence: pending stores between two fences may survive
//     in any subset, and a surviving store implies all pending same-line
//     stores from *earlier* fence epochs survived (fences order them).
//
// These rules are strictly more adversarial than a physical power-off test,
// which samples only a few of the states this simulator can enumerate.

type recKind uint8

const (
	recStore recKind = iota
	recFlush
	recFence
	recSFence
	recMark
)

type logRec struct {
	kind recKind
	off  int64  // recStore: word offset; recFlush: line index; recMark: user tag
	val  uint64 // recStore: stored value
}

type crashLog struct {
	base []uint64 // arena snapshot at log start
	recs []logRec
}

func newCrashLog() *crashLog { return &crashLog{} }

func (l *crashLog) appendStore(off int64, val uint64) {
	l.recs = append(l.recs, logRec{kind: recStore, off: off, val: val})
}
func (l *crashLog) appendFlush(line int64) {
	l.recs = append(l.recs, logRec{kind: recFlush, off: line})
}
func (l *crashLog) appendFence()  { l.recs = append(l.recs, logRec{kind: recFence}) }
func (l *crashLog) appendSFence() { l.recs = append(l.recs, logRec{kind: recSFence}) }

// StartCrashLog snapshots the current arena as the known-persistent image
// and begins recording. It panics if the pool was not created with
// TrackCrashes. Calling it again truncates the previous log.
func (p *Pool) StartCrashLog() {
	if p.log == nil {
		panic("pmem: pool not created with TrackCrashes")
	}
	p.logMu.Lock()
	defer p.logMu.Unlock()
	base := make([]uint64, len(p.words))
	copy(base, p.words)
	p.log.base = base
	p.log.recs = p.log.recs[:0]
}

// Mark appends a user-visible marker (e.g. an operation boundary) to the
// log and returns its position. Crash points at or before a marker include
// only operations completed before it.
func (p *Pool) Mark(tag int64) int {
	if p.log == nil {
		panic("pmem: pool not created with TrackCrashes")
	}
	p.logMu.Lock()
	defer p.logMu.Unlock()
	p.log.recs = append(p.log.recs, logRec{kind: recMark, off: tag})
	return len(p.log.recs)
}

// LogLen returns the number of records currently logged. Crash points range
// over [0, LogLen].
func (p *Pool) LogLen() int {
	if p.log == nil {
		return 0
	}
	p.logMu.Lock()
	defer p.logMu.Unlock()
	return len(p.log.recs)
}

// CrashMode selects how pending (unflushed) stores survive a crash.
type CrashMode int

const (
	// CrashNone persists nothing beyond the flush guarantees: every
	// dirty line reverts to its last flushed contents.
	CrashNone CrashMode = iota
	// CrashAll persists every store issued before the crash point, as if
	// all dirty lines were evicted at the instant of failure.
	CrashAll
	// CrashRandom picks, per line, a random legal survivor set (prefix
	// under TSO, fence-epoch-consistent subset under NonTSO).
	CrashRandom
)

// CrashImage materialises a legal post-crash pool image, crashing after the
// first `point` log records (so point = LogLen() crashes "now", point = 0
// crashes immediately after StartCrashLog). rng is used only by CrashRandom
// and may be nil otherwise. The returned pool has crash tracking disabled.
func (p *Pool) CrashImage(point int, mode CrashMode, rng *rand.Rand) *Pool {
	if p.log == nil {
		panic("pmem: pool not created with TrackCrashes")
	}
	p.logMu.Lock()
	defer p.logMu.Unlock()
	if point < 0 || point > len(p.log.recs) {
		panic("pmem: crash point out of range")
	}
	if p.log.base == nil {
		panic("pmem: StartCrashLog not called")
	}

	words := make([]uint64, len(p.log.base))
	copy(words, p.log.base)

	// pending[line] holds stores since that line's last flush, annotated
	// with the fence epoch they belong to (NonTSO only).
	type pstore struct {
		off   int64
		val   uint64
		epoch int
	}
	pending := make(map[int64][]pstore)
	epoch := 0

	apply := func(off int64, val uint64) { words[off/WordSize] = val }

	for i := 0; i < point; i++ {
		r := p.log.recs[i]
		switch r.kind {
		case recStore:
			line := r.off / LineSize
			pending[line] = append(pending[line], pstore{r.off, r.val, epoch})
		case recFlush:
			// The flush persists all pending stores to the line.
			for _, s := range pending[r.off] {
				apply(s.off, s.val)
			}
			delete(pending, r.off)
		case recSFence:
			epoch++
		case recFence, recMark:
		}
	}

	switch mode {
	case CrashNone:
		// Pending stores are lost.
	case CrashAll:
		for _, stores := range pending {
			for _, s := range stores {
				apply(s.off, s.val)
			}
		}
	case CrashRandom:
		if rng == nil {
			rng = rand.New(rand.NewSource(1))
		}
		// Deterministic line order for reproducibility.
		lines := make([]int64, 0, len(pending))
		for ln := range pending {
			lines = append(lines, ln)
		}
		sortInt64s(lines)
		for _, ln := range lines {
			stores := pending[ln]
			if p.cfg.Model == TSO {
				// Any program-order prefix.
				cut := rng.Intn(len(stores) + 1)
				for _, s := range stores[:cut] {
					apply(s.off, s.val)
				}
				continue
			}
			// NonTSO: choose a cut epoch; all earlier epochs
			// survive in full, the cut epoch survives as an
			// arbitrary subset with arbitrary per-word winner.
			maxEpoch := stores[len(stores)-1].epoch
			cutEpoch := stores[0].epoch + rng.Intn(maxEpoch-stores[0].epoch+1)
			// Collect the cut epoch's stores per word, applying
			// earlier epochs directly.
			perWord := make(map[int64][]uint64)
			order := make([]int64, 0, 4)
			for _, s := range stores {
				switch {
				case s.epoch < cutEpoch:
					apply(s.off, s.val)
				case s.epoch == cutEpoch:
					if _, seen := perWord[s.off]; !seen {
						order = append(order, s.off)
					}
					perWord[s.off] = append(perWord[s.off], s.val)
				}
			}
			for _, w := range order {
				vals := perWord[w]
				// 0 = the word retains its pre-epoch value.
				pick := rng.Intn(len(vals) + 1)
				if pick > 0 {
					apply(w, vals[pick-1])
				}
			}
		}
	}

	cfg := p.cfg
	cfg.TrackCrashes = false
	n := New(cfg)
	n.words = words
	n.alloc.init(p.alloc.highWater())
	return n
}

func sortInt64s(v []int64) {
	// Insertion sort: line sets per crash image are small.
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
