package pmem

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func newTestPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	if cfg.Size == 0 {
		cfg.Size = 1 << 20
	}
	return New(cfg)
}

func TestAllocBasics(t *testing.T) {
	p := newTestPool(t, Config{})
	a, err := p.Alloc(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a == 0 {
		t.Fatal("Alloc returned NULL offset")
	}
	if a%64 != 0 {
		t.Fatalf("Alloc(64,64) returned unaligned offset %d", a)
	}
	b, err := p.Alloc(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b == a {
		t.Fatal("overlapping allocations")
	}
	th := p.NewThread()
	th.Store(a, 42)
	if got := th.Load(a); got != 42 {
		t.Fatalf("Load after Store = %d, want 42", got)
	}
	if got := th.Load(b); got != 0 {
		t.Fatalf("fresh allocation not zeroed: %d", got)
	}
}

func TestAllocErrors(t *testing.T) {
	p := New(Config{Size: 4096})
	if _, err := p.Alloc(0, 8); err != ErrBadSize {
		t.Errorf("Alloc(0) err = %v, want ErrBadSize", err)
	}
	if _, err := p.Alloc(8, 3); err != ErrBadSize {
		t.Errorf("Alloc(align=3) err = %v, want ErrBadSize", err)
	}
	if _, err := p.Alloc(1<<30, 8); err != ErrOutOfMemory {
		t.Errorf("huge Alloc err = %v, want ErrOutOfMemory", err)
	}
}

func TestAllocFreeReuseIsZeroed(t *testing.T) {
	p := New(Config{Size: 4096})
	th := p.NewThread()
	a, err := p.Alloc(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	th.Store(a, 0xdead)
	p.Free(a, 64)
	b, err := p.Alloc(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Fatalf("free list not reused: got %d want %d", b, a)
	}
	if got := th.Load(b); got != 0 {
		t.Fatalf("reused block not zeroed: %#x", got)
	}
}

func TestAllocNoOverlapQuick(t *testing.T) {
	p := New(Config{Size: 1 << 22})
	type block struct{ off, size int64 }
	var blocks []block
	f := func(szSeed uint16) bool {
		size := int64(szSeed%512 + 8)
		off, err := p.Alloc(size, 8)
		if err != nil {
			return true // pool exhausted is fine
		}
		for _, b := range blocks {
			if off < b.off+b.size && b.off < off+size {
				t.Logf("overlap: [%d,%d) with [%d,%d)", off, off+size, b.off, b.off+b.size)
				return false
			}
		}
		blocks = append(blocks, block{off, size})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRootSlots(t *testing.T) {
	p := newTestPool(t, Config{})
	th := p.NewThread()
	p.SetRoot(th, 0, 12345)
	p.SetRoot(th, 7, 999)
	if got := p.Root(th, 0); got != 12345 {
		t.Errorf("Root(0) = %d", got)
	}
	if got := p.Root(th, 7); got != 999 {
		t.Errorf("Root(7) = %d", got)
	}
}

func TestStatsCounting(t *testing.T) {
	p := newTestPool(t, Config{})
	th := p.NewThread()
	off, _ := p.Alloc(128, 64)
	th.Store(off, 1)
	th.Store(off+8, 2)
	th.Load(off)
	th.Flush(off, 128) // two lines
	if th.Stats.Stores != 2 {
		t.Errorf("Stores = %d, want 2", th.Stats.Stores)
	}
	if th.Stats.Loads != 1 {
		t.Errorf("Loads = %d, want 1", th.Stats.Loads)
	}
	if th.Stats.FlushedLines != 2 {
		t.Errorf("FlushedLines = %d, want 2", th.Stats.FlushedLines)
	}
	if th.Stats.FlushCalls != 1 {
		t.Errorf("FlushCalls = %d, want 1", th.Stats.FlushCalls)
	}
	th.Release()
	if got := p.TotalStats().Stores; got != 2 {
		t.Errorf("TotalStats.Stores = %d, want 2", got)
	}
	if th.Stats.Stores != 0 {
		t.Error("Release did not reset thread stats")
	}
}

func TestStoreFenceOnlyOnNonTSO(t *testing.T) {
	tso := newTestPool(t, Config{Model: TSO})
	th := tso.NewThread()
	th.StoreFence()
	if th.Stats.StoreFences != 0 {
		t.Errorf("TSO StoreFence counted: %d", th.Stats.StoreFences)
	}
	arm := newTestPool(t, Config{Model: NonTSO})
	th2 := arm.NewThread()
	th2.StoreFence()
	if th2.Stats.StoreFences != 1 {
		t.Errorf("NonTSO StoreFences = %d, want 1", th2.Stats.StoreFences)
	}
}

func TestLatencyCharging(t *testing.T) {
	p := newTestPool(t, Config{ReadLatency: 50 * time.Microsecond})
	th := p.NewThread()
	off, _ := p.Alloc(4096, 64)

	// Sequential scan: only the first line should be charged.
	th.Stats = Stats{}
	for i := int64(0); i < 4096; i += 8 {
		th.Load(off + i)
	}
	if th.Stats.ChargedReads != 1 {
		t.Errorf("sequential scan ChargedReads = %d, want 1", th.Stats.ChargedReads)
	}

	// Random pointer-chasing across a large area: most accesses charged.
	big, _ := p.Alloc(512*1024, 64)
	th.resetCache()
	th.Stats = Stats{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 64; i++ {
		ln := int64(rng.Intn(512*1024/64))*64 + big
		th.Load(ln)
		th.Load(ln + 1024) // jump away so "next line" prefetch never helps
	}
	if th.Stats.ChargedReads < 64 {
		t.Errorf("random chase ChargedReads = %d, want >= 64", th.Stats.ChargedReads)
	}

	// Repeated access to a hot line is cached after first touch.
	th.resetCache()
	th.Stats = Stats{}
	for i := 0; i < 100; i++ {
		th.Load(off)
		th.Load(big) // alternate two resident lines
	}
	if th.Stats.ChargedReads > 4 {
		t.Errorf("hot lines ChargedReads = %d, want <= 4", th.Stats.ChargedReads)
	}
}

func TestLoadLine(t *testing.T) {
	p := newTestPool(t, Config{})
	th := p.NewThread()
	off, _ := p.Alloc(128, 64)
	for i := int64(0); i < 16; i++ {
		th.Store(off+i*8, uint64(100+i))
	}
	var ln [WordsPerLine]uint64
	th.LoadLine(off, &ln)
	for i, got := range ln {
		if want := uint64(100 + i); got != want {
			t.Errorf("LoadLine word %d = %d, want %d", i, got, want)
		}
	}
	// An unaligned offset loads the line containing it.
	var ln2 [WordsPerLine]uint64
	th.LoadLine(off+64+24, &ln2)
	for i, got := range ln2 {
		if want := uint64(108 + i); got != want {
			t.Errorf("LoadLine(+24) word %d = %d, want %d", i, got, want)
		}
	}
	var rev [WordsPerLine]uint64
	th.LoadLineRev(off, &rev)
	if rev != ln {
		t.Errorf("LoadLineRev = %v, want %v", rev, ln)
	}
}

func TestLoadLineAccounting(t *testing.T) {
	p := newTestPool(t, Config{ReadLatency: 50 * time.Microsecond})
	th := p.NewThread()
	off, _ := p.Alloc(1<<16, 64)

	// One LoadLine = 8 word loads, one charged line (cold).
	big := off + 32768 // far from anything touched so the line is cold
	th.resetCache()
	th.Stats = Stats{}
	var ln [WordsPerLine]uint64
	th.LoadLine(big, &ln)
	if th.Stats.Loads != WordsPerLine {
		t.Errorf("Loads = %d, want %d", th.Stats.Loads, WordsPerLine)
	}
	if th.Stats.ChargedReads != 1 {
		t.Errorf("ChargedReads = %d, want 1", th.Stats.ChargedReads)
	}

	// Re-reading the same line (any direction) charges nothing further.
	th.LoadLine(big, &ln)
	th.LoadLineRev(big, &ln)
	if th.Stats.ChargedReads != 1 {
		t.Errorf("hot-line ChargedReads = %d, want 1", th.Stats.ChargedReads)
	}
	if th.Stats.Loads != 3*WordsPerLine {
		t.Errorf("Loads = %d, want %d", th.Stats.Loads, 3*WordsPerLine)
	}

	// A sequential line walk charges only the first line, like the
	// per-word prefetcher model.
	th.resetCache()
	th.Stats = Stats{}
	for i := int64(0); i < 16; i++ {
		th.LoadLine(off+i*LineSize, &ln)
	}
	if th.Stats.ChargedReads != 1 {
		t.Errorf("sequential LoadLine ChargedReads = %d, want 1", th.Stats.ChargedReads)
	}

	// LoadLine and per-word Load agree on the latency-model state: a word
	// load after LoadLine of its line is free.
	th.resetCache()
	th.Stats = Stats{}
	th.LoadLine(big+4096, &ln)
	th.Load(big + 4096 + 16)
	if th.Stats.ChargedReads != 1 {
		t.Errorf("word-after-line ChargedReads = %d, want 1", th.Stats.ChargedReads)
	}
}

func TestFlushStallAttribution(t *testing.T) {
	p := newTestPool(t, Config{WriteLatency: 200 * time.Microsecond})
	th := p.NewThread()
	off, _ := p.Alloc(64, 64)
	th.BeginPhase(PhaseUpdate)
	th.Store(off, 1)
	th.Flush(off, 8)
	th.EndPhase()
	if th.Stats.PhaseTime[PhaseFlush] < 200*time.Microsecond {
		t.Errorf("flush time %v < write latency", th.Stats.PhaseTime[PhaseFlush])
	}
	if th.Stats.PhaseTime[PhaseUpdate] > 150*time.Microsecond {
		t.Errorf("update phase double-counted flush stall: %v", th.Stats.PhaseTime[PhaseUpdate])
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p := newTestPool(t, Config{})
	th := p.NewThread()
	off, _ := p.Alloc(64, 64)
	th.Store(off, 7)
	c := p.Clone(false)
	cth := c.NewThread()
	if got := cth.Load(off); got != 7 {
		t.Fatalf("clone lost data: %d", got)
	}
	cth.Store(off, 8)
	if got := th.Load(off); got != 7 {
		t.Fatalf("clone writes leaked into source: %d", got)
	}
	// Clone allocations must not overlap source's live data.
	a, err := c.Alloc(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a <= off {
		t.Fatalf("clone alloc %d overlaps source high-water %d", a, off)
	}
}

// crashSetup stores a known pattern across two lines with a flush between.
func crashSetup(t *testing.T, model MemModel) (*Pool, *Thread, int64) {
	t.Helper()
	p := New(Config{Size: 1 << 16, TrackCrashes: true, Model: model})
	th := p.NewThread()
	off, err := p.Alloc(128, 64)
	if err != nil {
		t.Fatal(err)
	}
	p.StartCrashLog()
	return p, th, off
}

func TestCrashNoneLosesUnflushed(t *testing.T) {
	p, th, off := crashSetup(t, TSO)
	th.Store(off, 1)
	th.Store(off+8, 2)
	img := p.CrashImage(p.LogLen(), CrashNone, nil)
	ith := img.NewThread()
	if ith.Load(off) != 0 || ith.Load(off+8) != 0 {
		t.Error("unflushed stores survived CrashNone")
	}
}

func TestCrashFlushGuarantees(t *testing.T) {
	p, th, off := crashSetup(t, TSO)
	th.Store(off, 1)
	th.Flush(off, 8)
	th.Store(off+8, 2) // same line, after the flush: not guaranteed
	img := p.CrashImage(p.LogLen(), CrashNone, nil)
	ith := img.NewThread()
	if got := ith.Load(off); got != 1 {
		t.Errorf("flushed store lost: %d", got)
	}
	if got := ith.Load(off + 8); got != 0 {
		t.Errorf("post-flush store survived CrashNone: %d", got)
	}
}

func TestCrashAllKeepsEverything(t *testing.T) {
	p, th, off := crashSetup(t, TSO)
	th.Store(off, 1)
	th.Store(off+64, 2)
	img := p.CrashImage(p.LogLen(), CrashAll, nil)
	ith := img.NewThread()
	if ith.Load(off) != 1 || ith.Load(off+64) != 2 {
		t.Error("CrashAll dropped stores")
	}
}

func TestCrashPointTruncatesHistory(t *testing.T) {
	p, th, off := crashSetup(t, TSO)
	th.Store(off, 1)
	cut := p.LogLen()
	th.Store(off+8, 2)
	img := p.CrashImage(cut, CrashAll, nil)
	ith := img.NewThread()
	if ith.Load(off) != 1 {
		t.Error("pre-point store lost")
	}
	if ith.Load(off+8) != 0 {
		t.Error("post-point store survived")
	}
}

// TestCrashTSOPrefix verifies that random TSO crash images always hold a
// program-order prefix of same-line stores.
func TestCrashTSOPrefix(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		p, th, off := crashSetup(t, TSO)
		// Three stores to one line, in order.
		th.Store(off, 1)
		th.Store(off+8, 2)
		th.Store(off+16, 3)
		rng := rand.New(rand.NewSource(seed))
		img := p.CrashImage(p.LogLen(), CrashRandom, rng)
		ith := img.NewThread()
		a, b, c := ith.Load(off), ith.Load(off+8), ith.Load(off+16)
		// Legal states: (0,0,0), (1,0,0), (1,2,0), (1,2,3).
		ok := (a == 0 && b == 0 && c == 0) ||
			(a == 1 && b == 0 && c == 0) ||
			(a == 1 && b == 2 && c == 0) ||
			(a == 1 && b == 2 && c == 3)
		if !ok {
			t.Fatalf("seed %d: illegal TSO state (%d,%d,%d)", seed, a, b, c)
		}
	}
}

// TestCrashNonTSOFences verifies that under NonTSO, stores separated by
// StoreFence persist in fence order while unfenced stores may reorder.
func TestCrashNonTSOFences(t *testing.T) {
	sawReorder := false
	for seed := int64(0); seed < 400; seed++ {
		p := New(Config{Size: 1 << 16, TrackCrashes: true, Model: NonTSO})
		th := p.NewThread()
		off, _ := p.Alloc(64, 64)
		p.StartCrashLog()
		th.Store(off, 1)
		th.StoreFence()
		th.Store(off+8, 2) // fenced after off: if off+8 persists, off must too
		th.Store(off+16, 3)
		th.Store(off+24, 4) // unfenced vs off+16: may persist without it
		rng := rand.New(rand.NewSource(seed))
		img := p.CrashImage(p.LogLen(), CrashRandom, rng)
		ith := img.NewThread()
		a, b, c, d := ith.Load(off), ith.Load(off+8), ith.Load(off+16), ith.Load(off+24)
		if (b != 0 || c != 0 || d != 0) && a == 0 {
			t.Fatalf("seed %d: fence violated: later epoch persisted without earlier (a=%d b=%d c=%d d=%d)", seed, a, b, c, d)
		}
		if d != 0 && c == 0 {
			sawReorder = true // legal on NonTSO, impossible on TSO
		}
	}
	if !sawReorder {
		t.Error("NonTSO crash model never produced a same-epoch reorder in 400 seeds")
	}
}

// TestCrashVolatileStoresExcluded checks StoreVolatile never persists.
func TestCrashVolatileStoresExcluded(t *testing.T) {
	p, th, off := crashSetup(t, TSO)
	th.StoreVolatile(off, 99)
	img := p.CrashImage(p.LogLen(), CrashAll, nil)
	ith := img.NewThread()
	if got := ith.Load(off); got != 0 {
		t.Errorf("volatile store persisted: %d", got)
	}
	// But it is visible in the live pool.
	if got := th.Load(off); got != 99 {
		t.Errorf("volatile store not visible live: %d", got)
	}
}

func TestCrashMarkBoundaries(t *testing.T) {
	p, th, off := crashSetup(t, TSO)
	th.Store(off, 1)
	th.Flush(off, 8)
	m := p.Mark(1)
	th.Store(off+64, 2)
	th.Flush(off+64, 8)
	img := p.CrashImage(m, CrashAll, nil)
	ith := img.NewThread()
	if ith.Load(off) != 1 {
		t.Error("op before mark lost")
	}
	if ith.Load(off+64) != 0 {
		t.Error("op after mark visible")
	}
}

// TestCrashImageQuick cross-checks the random crash generator against the
// legality predicate for arbitrary store/flush tapes on one line.
func TestCrashImageQuick(t *testing.T) {
	f := func(ops []byte, seed int64) bool {
		p := New(Config{Size: 1 << 16, TrackCrashes: true, Model: TSO})
		th := p.NewThread()
		off, _ := p.Alloc(64, 64)
		p.StartCrashLog()
		// Replay tape: even byte = store next counter value at (b%8)*8,
		// odd = flush line.
		var vals []uint64 // program-order store log: offsets and values
		var offs []int64
		var flushedAt []int // indices into vals guaranteed at each flush
		ctr := uint64(0)
		for _, b := range ops {
			if b%2 == 0 {
				ctr++
				o := off + int64(b%8)*8
				th.Store(o, ctr)
				offs = append(offs, o)
				vals = append(vals, ctr)
			} else {
				th.Flush(off, 64)
				flushedAt = append(flushedAt, len(vals))
			}
		}
		rng := rand.New(rand.NewSource(seed))
		img := p.CrashImage(p.LogLen(), CrashRandom, rng)
		ith := img.NewThread()
		// The image must equal replaying some prefix of the store
		// tape with length >= last flush point.
		guaranteed := 0
		if len(flushedAt) > 0 {
			guaranteed = flushedAt[len(flushedAt)-1]
		}
		for cut := guaranteed; cut <= len(vals); cut++ {
			state := map[int64]uint64{}
			for i := 0; i < cut; i++ {
				state[offs[i]] = vals[i]
			}
			match := true
			for w := int64(0); w < 8; w++ {
				if ith.Load(off+w*8) != state[off+w*8] {
					match = false
					break
				}
			}
			if match {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
