package pmem

import (
	"sync/atomic"
	"time"
)

// Phase labels the logical activity a thread is performing, so harnesses can
// attribute elapsed time the way Figure 5(a) of the paper does.
type Phase int

const (
	// PhaseOther is the default attribution bucket.
	PhaseOther Phase = iota
	// PhaseSearch covers tree traversal and in-node key search.
	PhaseSearch
	// PhaseUpdate covers in-node modification (shifting, appends, splits).
	PhaseUpdate
	// PhaseFlush is used internally for time spent stalling on emulated
	// cache-line write-backs. Callers do not set it directly.
	PhaseFlush
	numPhases
)

func (ph Phase) String() string {
	switch ph {
	case PhaseSearch:
		return "search"
	case PhaseUpdate:
		return "update"
	case PhaseFlush:
		return "clflush"
	default:
		return "other"
	}
}

// Stats counts the memory-system events a thread generated. Counters mirror
// the quantities the paper reports: flush calls per insert, fence counts, and
// serial (latency-charged) line accesses standing in for effective LLC
// misses.
type Stats struct {
	Loads        uint64 // word loads issued
	Stores       uint64 // word stores issued
	ChargedReads uint64 // serial line accesses that paid PM read latency
	FlushedLines uint64 // cache lines written back by Flush/Persist
	FlushCalls   uint64 // Flush/Persist invocations
	Fences       uint64 // ordering fences (clflush barriers)
	StoreFences  uint64 // store-store fences (NonTSO dmb); 0 on TSO

	// PhaseTime attributes wall-clock time (including emulated stalls)
	// to phases. Index with Phase.
	PhaseTime [numPhases]time.Duration
}

func (s *Stats) add(o Stats) {
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.ChargedReads += o.ChargedReads
	s.FlushedLines += o.FlushedLines
	s.FlushCalls += o.FlushCalls
	s.Fences += o.Fences
	s.StoreFences += o.StoreFences
	for i := range s.PhaseTime {
		s.PhaseTime[i] += o.PhaseTime[i]
	}
}

// Add merges o into s.
func (s *Stats) Add(o Stats) { s.add(o) }

// cacheSlots is the size of the per-thread direct-mapped line-tag cache used
// by the read-latency model. 4096 lines × 64 B models a 256 KiB slice of
// cache per thread — small enough that big-tree traversals miss, large
// enough that hot upper levels hit, which is the behaviour the paper's
// Quartz setup produces.
const cacheSlots = 4096

// Thread is a per-goroutine context for pool access. It carries the latency
// model's state (last line touched, simulated cache tags), statistics, and
// the phase timer. Threads must not be shared between goroutines.
type Thread struct {
	p *Pool

	Stats Stats

	lastLine int64
	tags     [cacheSlots]int64

	phase      Phase
	phaseStart time.Time
}

// Pool returns the pool this thread operates on.
func (t *Thread) Pool() *Pool { return t.p }

func (t *Thread) resetCache() {
	t.lastLine = -1
	for i := range t.tags {
		t.tags[i] = -1
	}
}

// Release folds the thread's statistics into the pool aggregate and resets
// them.
func (t *Thread) Release() {
	t.EndPhase()
	t.p.AddStats(t.Stats)
	t.Stats = Stats{}
}

// BeginPhase starts attributing wall-clock time to ph, closing any open
// phase first.
func (t *Thread) BeginPhase(ph Phase) {
	now := time.Now()
	if !t.phaseStart.IsZero() {
		t.Stats.PhaseTime[t.phase] += now.Sub(t.phaseStart)
	}
	t.phase = ph
	t.phaseStart = now
}

// EndPhase closes the open phase, attributing its elapsed time.
func (t *Thread) EndPhase() {
	if t.phaseStart.IsZero() {
		return
	}
	t.Stats.PhaseTime[t.phase] += time.Since(t.phaseStart)
	t.phaseStart = time.Time{}
	t.phase = PhaseOther
}

// Load performs a latency-modelled 8-byte atomic load. off must be 8-byte
// aligned and inside the arena.
func (t *Thread) Load(off int64) uint64 {
	t.Stats.Loads++
	if t.p.cfg.ReadLatency > 0 {
		t.chargeRead(off / LineSize)
	}
	return t.p.rawLoad(off)
}

// WordsPerLine is the number of 8-byte words in one cache line.
const WordsPerLine = LineSize / WordSize

// LoadLine performs a latency-modelled read of the whole cache line holding
// off, depositing its 8 words into dst in ascending address order. Each word
// is read atomically (the snapshot is word-atomic, not line-atomic: a
// concurrent writer may be observed mid-line, exactly as a per-word ascending
// scan would observe it). The line is charged once — one latency-model
// lookup, at most one ChargedReads increment — and the word loads are
// counted in batch, so Stats.Loads still reflects words read while
// ChargedReads keeps its one-per-serial-line meaning.
//
// Line-granular readers (the FAST+FAIR in-node search) use LoadLine for the
// scan and fall back to per-word Loads only to confirm candidate hits.
func (t *Thread) LoadLine(off int64, dst *[WordsPerLine]uint64) {
	t.Stats.Loads += WordsPerLine
	line := off / LineSize
	if t.p.cfg.ReadLatency > 0 {
		t.chargeRead(line)
	}
	w := line * WordsPerLine
	for i := range dst {
		dst[i] = atomic.LoadUint64(&t.p.words[w+int64(i)])
	}
}

// LoadLineRev is LoadLine with the words read in descending address order.
// Right-to-left scans (the FAST+FAIR delete-direction protocol) need the
// descending order: an entry shifting left between two word reads must be
// seen at its old slot or its new one, which only holds when the reader's
// word order opposes the writer's shift order.
func (t *Thread) LoadLineRev(off int64, dst *[WordsPerLine]uint64) {
	t.Stats.Loads += WordsPerLine
	line := off / LineSize
	if t.p.cfg.ReadLatency > 0 {
		t.chargeRead(line)
	}
	w := line * WordsPerLine
	for i := WordsPerLine - 1; i >= 0; i-- {
		dst[i] = atomic.LoadUint64(&t.p.words[w+int64(i)])
	}
}

// chargeRead implements the serial-access read model: an access to the same
// or the next cache line is free (prefetcher / open row), an access to a
// line whose tag is resident in the thread's simulated cache is free, and
// everything else stalls for the configured PM read latency.
func (t *Thread) chargeRead(line int64) {
	if line == t.lastLine || line == t.lastLine+1 {
		t.lastLine = line
		t.install(line)
		return
	}
	t.lastLine = line
	slot := line & (cacheSlots - 1)
	if t.tags[slot] == line {
		return
	}
	t.tags[slot] = line
	t.Stats.ChargedReads++
	t.stall(t.p.cfg.ReadLatency)
}

func (t *Thread) install(line int64) {
	t.tags[line&(cacheSlots-1)] = line
}

// Store performs an 8-byte atomic store. The store lands in the simulated
// cache: it reaches persistence only via Flush/Persist or (after a crash)
// the crash simulator's eviction model.
func (t *Thread) Store(off int64, val uint64) {
	t.Stats.Stores++
	t.p.storeWord(off, val, true)
}

// StoreVolatile stores a word that is deliberately excluded from the crash
// model: after a simulated crash the word reverts to an arbitrary stale
// value. Use it for fields recovery must not trust (lock words, cached
// counts).
func (t *Thread) StoreVolatile(off int64, val uint64) {
	t.Stats.Stores++
	t.p.storeWord(off, val, false)
}

// CAS performs a crash-visible compare-and-swap: on success the store joins
// the crash log like a Store. Lock-free persistent structures (the skiplist
// baseline) link nodes with it.
func (t *Thread) CAS(off int64, old, new uint64) bool {
	t.Stats.Loads++
	if t.p.log != nil {
		// Serialise with the log so log order equals apply order.
		t.p.logMu.Lock()
		ok := atomic.CompareAndSwapUint64(&t.p.words[off/WordSize], old, new)
		if ok {
			t.Stats.Stores++
			t.p.log.appendStore(off, new)
		}
		t.p.logMu.Unlock()
		return ok
	}
	ok := atomic.CompareAndSwapUint64(&t.p.words[off/WordSize], old, new)
	if ok {
		t.Stats.Stores++
	}
	return ok
}

// LoadVolatile reads a word with no latency charge, no statistics, and no
// crash-log participation. Use it for volatile control words (locks, cached
// counts) that conceptually live in DRAM next to the structure.
func (t *Thread) LoadVolatile(off int64) uint64 {
	return atomic.LoadUint64(&t.p.words[off/WordSize])
}

// CASVolatile performs a compare-and-swap on a volatile control word. Like
// StoreVolatile, it is excluded from the crash model.
func (t *Thread) CASVolatile(off int64, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&t.p.words[off/WordSize], old, new)
}

// StoreFence orders earlier stores before later ones on NonTSO machines (the
// paper's mfence_IF_NOT_TSO / dmb). On TSO it is free and records nothing:
// hardware already orders store-store pairs.
func (t *Thread) StoreFence() {
	if t.p.cfg.Model != NonTSO {
		return
	}
	t.Stats.StoreFences++
	t.p.logSFence()
	t.stall(t.p.cfg.BarrierLatency)
}

// Flush writes back every cache line overlapping [off, off+size) and fences,
// charging PM write latency per line (the paper's clflush_with_mfence). The
// flushed stores are persistent when Flush returns.
func (t *Thread) Flush(off, size int64) {
	t.Stats.FlushCalls++
	first := off / LineSize
	last := (off + size - 1) / LineSize
	for ln := first; ln <= last; ln++ {
		t.Stats.FlushedLines++
		t.p.logFlush(ln)
		t.stallFlush(t.p.cfg.WriteLatency)
	}
	t.Stats.Fences++
	t.p.logFence()
}

// Persist is Flush; the name documents intent at call sites that persist a
// freshly initialised object rather than ordering a protocol step.
func (t *Thread) Persist(off, size int64) { t.Flush(off, size) }

// stall burns CPU for d, attributing the time to the currently open phase.
// It is the emulator's equivalent of Quartz's injected stall cycles.
func (t *Thread) stall(d time.Duration) {
	if d <= 0 {
		return
	}
	t0 := time.Now()
	for time.Since(t0) < d {
	}
}

// stallFlush burns CPU for d and attributes the time to PhaseFlush rather
// than the ambient phase, shifting the ambient phase's start so the stall is
// not double-counted. This is what lets harnesses report the clflush /
// search / node-update breakdown of Figure 5(a).
func (t *Thread) stallFlush(d time.Duration) {
	if d <= 0 {
		return
	}
	t0 := time.Now()
	for time.Since(t0) < d {
	}
	el := time.Since(t0)
	t.Stats.PhaseTime[PhaseFlush] += el
	if !t.phaseStart.IsZero() {
		t.phaseStart = t.phaseStart.Add(el)
	}
}

// atomicStore writes val to the word holding off.
func atomicStore(words []uint64, off int64, val uint64) {
	atomic.StoreUint64(&words[off/WordSize], val)
}

// storeWord applies a store and, when logging is enabled and the store is
// crash-visible, appends it to the crash log.
func (p *Pool) storeWord(off int64, val uint64, logged bool) {
	if p.log != nil && logged {
		p.logMu.Lock()
		p.log.appendStore(off, val)
		atomicStore(p.words, off, val)
		p.logMu.Unlock()
		return
	}
	atomicStore(p.words, off, val)
}

func (p *Pool) logFlush(line int64) {
	if p.log == nil {
		return
	}
	p.logMu.Lock()
	p.log.appendFlush(line)
	p.logMu.Unlock()
}

func (p *Pool) logFence() {
	if p.log == nil {
		return
	}
	p.logMu.Lock()
	p.log.appendFence()
	p.logMu.Unlock()
}

func (p *Pool) logSFence() {
	if p.log == nil {
		return
	}
	p.logMu.Lock()
	p.log.appendSFence()
	p.logMu.Unlock()
}
