// Package pmem emulates byte-addressable persistent memory for algorithms
// that must reason about 8-byte failure-atomic stores, cache-line flushes,
// and store fences — the hardware contract of the FAST+FAIR paper.
//
// A Pool is a word-addressed arena. All persistent state lives inside the
// arena and references between persistent objects are arena offsets, so a
// pool image is self-contained: it can be snapshotted, subjected to a
// simulated power failure (see CrashSim), and reopened.
//
// The emulator models three hardware properties:
//
//  1. Failure atomicity of aligned 8-byte stores. Store and Load are
//     implemented with sync/atomic on the backing words.
//  2. The cache hierarchy between CPU and PM. Stores land in a (simulated)
//     cache; they reach PM only when their cache line is explicitly flushed
//     (Flush) or, after a crash, when the crash simulator decides the line
//     was evicted. Flush charges the configured PM write latency; Load
//     charges PM read latency per serial line access, with sequential
//     accesses and recently-used lines free (modelling the hardware
//     prefetcher and memory-level parallelism, the effect Quartz models for
//     the paper).
//  3. Store ordering. Under TSO, same-line stores persist in program order
//     (any prefix may survive a crash). Under NonTSO, stores may persist in
//     any order unless separated by StoreFence.
//
// Per-goroutine state (latency bookkeeping, statistics, phase timers) lives
// in a Thread; every memory operation goes through a Thread.
package pmem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// MemModel selects the volatile store-ordering model of the simulated CPU.
type MemModel int

const (
	// TSO is total store ordering (x86): stores are not reordered with
	// other stores, so a crashed cache line holds a program-order prefix
	// of the stores since its last flush.
	TSO MemModel = iota
	// NonTSO allows store-store reordering (ARM): without explicit
	// StoreFence calls a crashed line may hold any subset of unflushed
	// stores.
	NonTSO
)

func (m MemModel) String() string {
	if m == NonTSO {
		return "NonTSO"
	}
	return "TSO"
}

// LineSize is the simulated cache-line size in bytes.
const LineSize = 64

// WordSize is the failure-atomic store granularity in bytes.
const WordSize = 8

// headerWords is the number of words at the start of the arena reserved for
// pool metadata (root pointers). Offset 0 is never a valid allocation, so 0
// doubles as the NULL pointer.
const headerWords = 8

// Config describes a simulated PM device.
type Config struct {
	// Size is the arena capacity in bytes. Rounded up to a whole line.
	Size int64
	// ReadLatency is the emulated PM read stall charged per serial
	// cache-line access (0 = DRAM, no charging).
	ReadLatency time.Duration
	// WriteLatency is the emulated PM write stall charged per cache line
	// flushed (0 = DRAM).
	WriteLatency time.Duration
	// BarrierLatency is the cost of a store fence under NonTSO (the
	// paper's dmb). Ignored under TSO, where FAST needs no fences
	// between stores.
	BarrierLatency time.Duration
	// Model is the store-ordering model.
	Model MemModel
	// TrackCrashes enables the store log used by CrashSim. Logging is
	// intended for single-writer crash-injection tests; it serialises
	// stores through a mutex.
	TrackCrashes bool
}

// Errors returned by the allocator.
var (
	ErrOutOfMemory = errors.New("pmem: arena exhausted")
	ErrBadSize     = errors.New("pmem: invalid allocation size")
)

// Pool is a simulated persistent-memory device.
type Pool struct {
	words []uint64
	cfg   Config

	alloc allocator

	logMu sync.Mutex
	log   *crashLog

	// threads tracks aggregate statistics from released threads.
	statMu sync.Mutex
	stats  Stats

	dbgMu   sync.Mutex
	dbgLive map[int64]int64
}

// debugAllocCheck enables overlap detection on every allocation (a
// diagnostic for allocator regressions; enabled by tests).
var debugAllocCheck = false

// New creates a pool of the configured size. The arena is zeroed, which is
// the persistent image of an empty device.
func New(cfg Config) *Pool {
	if cfg.Size < headerWords*WordSize {
		cfg.Size = headerWords * WordSize
	}
	lines := (cfg.Size + LineSize - 1) / LineSize
	p := &Pool{
		words: make([]uint64, lines*LineSize/WordSize),
		cfg:   cfg,
	}
	p.alloc.init(int64(headerWords * WordSize))
	if cfg.TrackCrashes {
		p.log = newCrashLog()
	}
	return p
}

// Config returns the pool configuration.
func (p *Pool) Config() Config { return p.cfg }

// Size returns the arena capacity in bytes.
func (p *Pool) Size() int64 { return int64(len(p.words) * WordSize) }

// NewThread returns a fresh per-goroutine context. Threads are not safe for
// concurrent use; create one per goroutine.
func (p *Pool) NewThread() *Thread {
	t := &Thread{p: p}
	t.resetCache()
	return t
}

// Alloc reserves size bytes aligned to align (which must be a power of two,
// at least WordSize). The returned offset is never 0. The memory is zeroed.
//
// Allocator metadata is volatile: the paper assumes a persistent nv_malloc,
// and this emulator keeps the bump pointer and free lists outside the
// persistent image (see DESIGN.md).
func (p *Pool) Alloc(size, align int64) (int64, error) {
	if size <= 0 || align < WordSize || align&(align-1) != 0 {
		return 0, ErrBadSize
	}
	off, err := p.alloc.take(size, align, p.Size())
	if err != nil {
		return 0, err
	}
	if debugAllocCheck {
		p.dbgMu.Lock()
		if p.dbgLive == nil {
			p.dbgLive = map[int64]int64{}
		}
		for o, s := range p.dbgLive {
			if off < o+s && o < off+size {
				p.dbgMu.Unlock()
				panic(fmt.Sprintf("pmem: Alloc overlap [%d,%d) with live [%d,%d)", off, off+size, o, o+s))
			}
		}
		p.dbgLive[off] = size
		p.dbgMu.Unlock()
	}
	// Zero the block: freed blocks may contain stale data. Zeroing is
	// part of allocation, not of the crash-ordered store stream (a real
	// allocator hands out zeroed or initialised-by-caller memory).
	for w := off / WordSize; w < (off+size)/WordSize; w++ {
		atomic.StoreUint64(&p.words[w], 0)
	}
	return off, nil
}

// Free returns a block to the allocator. The caller must pass the same size
// used at Alloc time. Double frees are not detected.
func (p *Pool) Free(off, size int64) {
	p.alloc.give(off, size)
}

// FreeBytes reports the bytes the allocator could still hand out: the
// untouched arena past the bump pointer plus every free-listed block. It is
// an upper bound — free-listed blocks only satisfy requests of their own
// size class — so callers admitting work against it must keep their own
// reserve (see the store's value-log admission).
func (p *Pool) FreeBytes() int64 {
	return p.alloc.freeBytes(p.Size())
}

// SetRoot stores a durable root pointer in the reserved pool header.
// slot must be in [0, 8). The store is persisted immediately (flushed).
func (p *Pool) SetRoot(t *Thread, slot int, off int64) {
	if slot < 0 || slot >= headerWords {
		panic(fmt.Sprintf("pmem: root slot %d out of range", slot))
	}
	t.Store(int64(slot*WordSize), uint64(off))
	t.Persist(int64(slot*WordSize), WordSize)
}

// Root loads a durable root pointer from the pool header.
func (p *Pool) Root(t *Thread, slot int) int64 {
	if slot < 0 || slot >= headerWords {
		panic(fmt.Sprintf("pmem: root slot %d out of range", slot))
	}
	return int64(t.Load(int64(slot * WordSize)))
}

// rawLoad reads a word without latency accounting (used by the crash
// simulator and tests).
func (p *Pool) rawLoad(off int64) uint64 {
	return atomic.LoadUint64(&p.words[off/WordSize])
}

// Clone produces an independent copy of the pool image with the same
// configuration (crash tracking disabled on the copy unless retrack is
// true). The allocator of the clone resumes from the source's high-water
// mark so new allocations cannot overlap live data even if allocator state
// was "lost" in a crash.
func (p *Pool) Clone(retrack bool) *Pool {
	cfg := p.cfg
	cfg.TrackCrashes = retrack
	n := New(cfg)
	for i := range p.words {
		n.words[i] = atomic.LoadUint64(&p.words[i])
	}
	n.alloc.init(p.alloc.highWater())
	return n
}

// AddStats merges a thread's counters into the pool-wide aggregate. Threads
// call this from Release; harnesses may also call it directly.
func (p *Pool) AddStats(s Stats) {
	p.statMu.Lock()
	p.stats.add(s)
	p.statMu.Unlock()
}

// TotalStats returns the aggregate of all released threads' statistics.
func (p *Pool) TotalStats() Stats {
	p.statMu.Lock()
	defer p.statMu.Unlock()
	return p.stats
}

// allocator is a bump allocator with power-of-two size-class free lists.
// It is volatile by design (see Alloc).
type allocator struct {
	mu   sync.Mutex
	next int64
	free map[int64][]int64
}

func (a *allocator) init(next int64) {
	a.mu.Lock()
	a.next = next
	a.free = make(map[int64][]int64)
	a.mu.Unlock()
}

func (a *allocator) take(size, align, limit int64) (int64, error) {
	size = roundUp(size, WordSize)
	a.mu.Lock()
	defer a.mu.Unlock()
	if lst := a.free[size]; len(lst) > 0 {
		// Free-listed blocks were allocated with the same size class;
		// they satisfy any alignment the original allocation had. We
		// only reuse when alignment still holds.
		for i := len(lst) - 1; i >= 0; i-- {
			if lst[i]%align == 0 {
				off := lst[i]
				a.free[size] = append(lst[:i], lst[i+1:]...)
				return off, nil
			}
		}
	}
	off := roundUp(a.next, align)
	if off+size > limit {
		return 0, ErrOutOfMemory
	}
	a.next = off + size
	return off, nil
}

func (a *allocator) give(off, size int64) {
	size = roundUp(size, WordSize)
	a.mu.Lock()
	a.free[size] = append(a.free[size], off)
	a.mu.Unlock()
}

func (a *allocator) freeBytes(limit int64) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	b := limit - a.next
	if b < 0 {
		b = 0
	}
	for size, lst := range a.free {
		b += size * int64(len(lst))
	}
	return b
}

func (a *allocator) highWater() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.next
}

func roundUp(v, m int64) int64 { return (v + m - 1) / m * m }
