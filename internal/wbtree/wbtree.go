// Package wbtree implements wB+-tree with slot-array+bitmap nodes (Chen &
// Jin, VLDB'15), the "wB+-tree" baseline of the paper. Records are stored
// unsorted and appended; a one-byte-per-entry slot array keeps the sorted
// order, and a bitmap word is the atomic validity commit for both records
// and slot array. An insert therefore costs at least four cache-line
// flushes (invalidate slot array, record, slot array, bitmap commit) — the
// count the paper contrasts with FAST+FAIR's ~4.2 total including splits —
// and structure modifications (splits) need a redo log.
//
// As in the paper, wB+-tree is evaluated single-threaded: the structure has
// no concurrency protocol of its own.
package wbtree

import (
	"fmt"

	"repro/internal/pmem"
)

const (
	offBitmap   = 0
	offNext     = 8
	offLeftmost = 16
	offMeta     = 24
	offSlotArr  = 32 // 64 bytes: [0] = count, [1..] = sorted record indices
	offRecords  = 96

	slotValidBit = uint64(1) // bitmap bit 0: slot array is valid
	maxCap       = 62        // bitmap bits 1..62 map to record indices 0..61
)

// Options configures a Tree.
type Options struct {
	// NodeSize in bytes (multiple of 64). Default 1024, the paper's
	// configuration ("each node can hold no more than 64 entries").
	NodeSize int
	// RootSlot anchors the tree; must be <= 3 (slot RootSlot+4 holds the
	// split-log area).
	RootSlot int
}

func (o *Options) fill() error {
	if o.NodeSize == 0 {
		o.NodeSize = 1024
	}
	if o.NodeSize < 256 || o.NodeSize%pmem.LineSize != 0 {
		return fmt.Errorf("wbtree: bad NodeSize %d", o.NodeSize)
	}
	if o.RootSlot < 0 || o.RootSlot > 3 {
		return fmt.Errorf("wbtree: RootSlot %d out of range", o.RootSlot)
	}
	return nil
}

// Tree is a single-writer wB+-tree over a pmem.Pool.
type Tree struct {
	pool     *pmem.Pool
	opts     Options
	nodeSize int64
	cap      int
	logOff   int64
}

// New creates an empty tree.
func New(p *pmem.Pool, th *pmem.Thread, opts Options) (*Tree, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	t := handle(p, opts)
	root, err := t.allocNode(th, 0)
	if err != nil {
		return nil, err
	}
	th.Persist(root, t.nodeSize)
	p.SetRoot(th, opts.RootSlot, root)
	if err := t.initLog(th); err != nil {
		return nil, err
	}
	return t, nil
}

// Open attaches to an existing tree and replays an unfinished split log.
func Open(p *pmem.Pool, th *pmem.Thread, opts Options) (*Tree, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	t := handle(p, opts)
	if p.Root(th, opts.RootSlot) == 0 {
		return nil, fmt.Errorf("wbtree: no tree at root slot %d", opts.RootSlot)
	}
	if err := t.initLog(th); err != nil {
		return nil, err
	}
	t.Recover(th)
	return t, nil
}

func handle(p *pmem.Pool, opts Options) *Tree {
	c := (opts.NodeSize - offRecords) / 16
	if c > maxCap {
		c = maxCap
	}
	if c > 63 { // slot array byte capacity
		c = 63
	}
	return &Tree{pool: p, opts: opts, nodeSize: int64(opts.NodeSize), cap: c}
}

// Pool returns the backing pool.
func (t *Tree) Pool() *pmem.Pool { return t.pool }

func (t *Tree) initLog(th *pmem.Thread) error {
	slot := t.opts.RootSlot + 4
	off := t.pool.Root(th, slot)
	if off == 0 {
		var err error
		off, err = t.pool.Alloc(16+t.nodeSize, pmem.LineSize)
		if err != nil {
			return err
		}
		th.Persist(off, 16+t.nodeSize)
		t.pool.SetRoot(th, slot, off)
	}
	t.logOff = off
	return nil
}

func (t *Tree) allocNode(th *pmem.Thread, level int) (int64, error) {
	n, err := t.pool.Alloc(t.nodeSize, pmem.LineSize)
	if err != nil {
		return 0, err
	}
	th.Store(n+offBitmap, slotValidBit)
	th.Store(n+offMeta, uint64(level))
	return n, nil
}

// --- node accessors ------------------------------------------------------

func (t *Tree) bitmap(th *pmem.Thread, n int64) uint64 { return th.Load(n + offBitmap) }
func (t *Tree) level(th *pmem.Thread, n int64) int     { return int(th.Load(n + offMeta)) }
func (t *Tree) next(th *pmem.Thread, n int64) int64    { return int64(th.Load(n + offNext)) }

func recOff(n int64, i int) int64 { return n + offRecords + int64(i)*16 }

func (t *Tree) recKey(th *pmem.Thread, n int64, i int) uint64 { return th.Load(recOff(n, i)) }
func (t *Tree) recVal(th *pmem.Thread, n int64, i int) uint64 { return th.Load(recOff(n, i) + 8) }

// slotArr reads the slot array (count + sorted indices) as bytes packed into
// words. Index 0 is the count.
func (t *Tree) slotByte(th *pmem.Thread, n int64, i int) int {
	w := th.Load(n + offSlotArr + int64(i/8*8))
	return int(w >> uint(i%8*8) & 0xff)
}

// writeSlotArr writes count followed by idx into the slot array with plain
// stores and flushes the touched lines (one line for <= 63 entries when the
// array is 64-byte aligned, as it is here).
func (t *Tree) writeSlotArr(th *pmem.Thread, n int64, idx []int) {
	var words [8]uint64
	words[0] = uint64(len(idx))
	for i, r := range idx {
		b := i + 1
		words[b/8] |= uint64(r) << uint(b%8*8)
	}
	for w := 0; w < 8; w++ {
		th.Store(n+offSlotArr+int64(w)*8, words[w])
	}
	th.Flush(n+offSlotArr, 64)
}

// sortedIdx returns the record indices in key order. With a valid slot array
// it is a direct read; otherwise (crash leftover) it scans the bitmap and
// sorts — the recovery path the paper describes.
func (t *Tree) sortedIdx(th *pmem.Thread, n int64, buf []int) []int {
	bm := t.bitmap(th, n)
	buf = buf[:0]
	if bm&slotValidBit != 0 {
		cnt := t.slotByte(th, n, 0)
		for i := 1; i <= cnt; i++ {
			buf = append(buf, t.slotByte(th, n, i))
		}
		return buf
	}
	for i := 0; i < t.cap; i++ {
		if bm&(uint64(1)<<uint(i+1)) != 0 {
			buf = append(buf, i)
		}
	}
	// Insertion sort by key (cap <= 62).
	for i := 1; i < len(buf); i++ {
		for j := i; j > 0 && t.recKey(th, n, buf[j]) < t.recKey(th, n, buf[j-1]); j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	return buf
}

// --- operations ----------------------------------------------------------

func (t *Tree) root(th *pmem.Thread) int64 { return t.pool.Root(th, t.opts.RootSlot) }

// descend returns the leaf covering key and the path of internal nodes.
func (t *Tree) descend(th *pmem.Thread, key uint64) (int64, []int64) {
	var path []int64
	n := t.root(th)
	var buf [maxCap]int
	for t.level(th, n) > 0 {
		path = append(path, n)
		idx := t.sortedIdx(th, n, buf[:0])
		child := int64(th.Load(n + offLeftmost))
		for _, r := range idx {
			if t.recKey(th, n, r) <= key {
				child = int64(t.recVal(th, n, r))
			} else {
				break
			}
		}
		n = child
	}
	return n, path
}

// Get returns the value stored under key. Leaves are probed through the
// slot array (binary search over sorted positions).
func (t *Tree) Get(th *pmem.Thread, key uint64) (uint64, bool) {
	n, _ := t.descend(th, key)
	var buf [maxCap]int
	idx := t.sortedIdx(th, n, buf[:0])
	lo, hi := 0, len(idx)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.recKey(th, n, idx[mid]) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(idx) && t.recKey(th, n, idx[lo]) == key {
		return t.recVal(th, n, idx[lo]), true
	}
	return 0, false
}

// Insert stores val under key (upsert).
func (t *Tree) Insert(th *pmem.Thread, key, val uint64) error {
	th.BeginPhase(pmem.PhaseSearch)
	defer th.EndPhase()
	n, path := t.descend(th, key)
	var buf [maxCap]int
	idx := t.sortedIdx(th, n, buf[:0])
	// Upsert: overwrite the record value in place (8-byte atomic).
	for _, r := range idx {
		if t.recKey(th, n, r) == key {
			th.BeginPhase(pmem.PhaseUpdate)
			th.Store(recOff(n, r)+8, val)
			th.Flush(recOff(n, r)+8, 8)
			return nil
		}
	}
	th.BeginPhase(pmem.PhaseUpdate)
	if len(idx) >= t.cap {
		var err error
		n, idx, err = t.splitLeaf(th, n, path, key, idx, buf[:0])
		if err != nil {
			return err
		}
	}
	t.insertIntoNode(th, n, key, val, idx)
	return nil
}

// insertIntoNode performs the 4-flush slot+bitmap insert protocol.
func (t *Tree) insertIntoNode(th *pmem.Thread, n int64, key, val uint64, idx []int) {
	bm := t.bitmap(th, n)
	// Find a free record index.
	free := -1
	for i := 0; i < t.cap; i++ {
		if bm&(uint64(1)<<uint(i+1)) == 0 {
			free = i
			break
		}
	}
	// ① invalidate the slot array.
	th.Store(n+offBitmap, bm&^slotValidBit)
	th.Flush(n+offBitmap, 8)
	// ② write the record.
	th.Store(recOff(n, free), key)
	th.Store(recOff(n, free)+8, val)
	th.Flush(recOff(n, free), 16)
	// ③ rewrite the slot array with the new index in sorted position.
	pos := 0
	for pos < len(idx) && t.recKey(th, n, idx[pos]) < key {
		pos++
	}
	idx = append(idx, 0)
	copy(idx[pos+1:], idx[pos:])
	idx[pos] = free
	t.writeSlotArr(th, n, idx)
	// ④ atomic commit: record bit + slot-valid bit in one store.
	th.Store(n+offBitmap, bm|uint64(1)<<uint(free+1)|slotValidBit)
	th.Flush(n+offBitmap, 8)
}

// Delete removes key, reporting whether it was present.
func (t *Tree) Delete(th *pmem.Thread, key uint64) bool {
	th.BeginPhase(pmem.PhaseSearch)
	defer th.EndPhase()
	n, _ := t.descend(th, key)
	var buf [maxCap]int
	idx := t.sortedIdx(th, n, buf[:0])
	pos := -1
	for i, r := range idx {
		if t.recKey(th, n, r) == key {
			pos = i
			break
		}
	}
	if pos < 0 {
		return false
	}
	th.BeginPhase(pmem.PhaseUpdate)
	bm := t.bitmap(th, n)
	r := idx[pos]
	// ① invalidate slot array, ② rewrite it without the record,
	// ③ atomic commit clearing the record bit.
	th.Store(n+offBitmap, bm&^slotValidBit)
	th.Flush(n+offBitmap, 8)
	idx = append(idx[:pos], idx[pos+1:]...)
	t.writeSlotArr(th, n, idx)
	th.Store(n+offBitmap, (bm|slotValidBit)&^(uint64(1)<<uint(r+1)))
	th.Flush(n+offBitmap, 8)
	return true
}

// Scan visits pairs with lo <= key <= hi ascending via the leaf chain.
func (t *Tree) Scan(th *pmem.Thread, lo, hi uint64, fn func(key, val uint64) bool) {
	n, _ := t.descend(th, lo)
	var buf [maxCap]int
	for n != 0 {
		idx := t.sortedIdx(th, n, buf[:0])
		for _, r := range idx {
			k := t.recKey(th, n, r)
			if k < lo {
				continue
			}
			if k > hi {
				return
			}
			if !fn(k, t.recVal(th, n, r)) {
				return
			}
		}
		n = t.next(th, n)
	}
}

// Len counts keys (test helper).
func (t *Tree) Len(th *pmem.Thread) int {
	c := 0
	t.Scan(th, 0, ^uint64(0), func(uint64, uint64) bool { c++; return true })
	return c
}

// --- splits (redo-logged) --------------------------------------------------

// logNode snapshots node n into the redo log and commits the log.
func (t *Tree) logNode(th *pmem.Thread, n int64) {
	th.Store(t.logOff+8, uint64(n))
	for w := int64(0); w < t.nodeSize; w += 8 {
		th.Store(t.logOff+16+w, th.Load(n+w))
	}
	th.Persist(t.logOff+8, 8+t.nodeSize)
	th.Store(t.logOff, 1)
	th.Flush(t.logOff, 8)
}

func (t *Tree) clearLog(th *pmem.Thread) {
	th.Store(t.logOff, 0)
	th.Flush(t.logOff, 8)
}

// splitLeaf splits full node n (with sorted indices idx), updates the parent
// path, and returns the node that should receive key. The pre-split image of
// n is redo-logged; the sibling is fresh memory needing no log.
func (t *Tree) splitLeaf(th *pmem.Thread, n int64, path []int64, key uint64, idx []int, buf []int) (int64, []int, error) {
	level := t.level(th, n)
	half := len(idx) / 2
	sepKey := t.recKey(th, n, idx[half])

	sib, err := t.allocNode(th, level)
	if err != nil {
		return 0, nil, err
	}
	// Sibling gets the upper half, compacted.
	var sIdx []int
	movedFrom := idx[half:]
	if level > 0 {
		// Internal: median key moves up; its child becomes sibling's
		// leftmost.
		th.Store(sib+offLeftmost, t.recVal(th, n, idx[half]))
		movedFrom = idx[half+1:]
	}
	for i, r := range movedFrom {
		th.Store(recOff(sib, i), t.recKey(th, n, r))
		th.Store(recOff(sib, i)+8, t.recVal(th, n, r))
		sIdx = append(sIdx, i)
	}
	var sBm uint64 = slotValidBit
	for i := range sIdx {
		sBm |= uint64(1) << uint(i+1)
	}
	t.writeSlotArr(th, sib, sIdx)
	th.Store(sib+offBitmap, sBm)
	th.Store(sib+offNext, uint64(t.next(th, n)))
	th.Persist(sib, t.nodeSize)

	// Install the separator in the parent first (may split recursively;
	// each parent insert is itself crash-atomic). Until n is rewritten
	// the upper half exists in both nodes, which reads resolve
	// consistently: the parent routes >= sepKey to the sibling's copies,
	// and the leaf chain still bypasses the sibling.
	if err := t.insertSeparator(th, path, sepKey, sib); err != nil {
		return 0, nil, err
	}

	// Rewrite n under log protection: drop the moved records, link the
	// sibling into the leaf chain.
	t.logNode(th, n)
	keep := idx[:half]
	var nBm uint64 = slotValidBit
	for _, r := range keep {
		nBm |= uint64(1) << uint(r+1)
	}
	t.writeSlotArr(th, n, keep)
	th.Store(n+offBitmap, nBm)
	th.Store(n+offNext, uint64(sib))
	th.Flush(n+offBitmap, 8)
	th.Flush(n+offNext, 8)
	t.clearLog(th)
	if key < sepKey {
		return n, t.sortedIdx(th, n, buf), nil
	}
	return sib, t.sortedIdx(th, sib, buf), nil
}

func (t *Tree) insertSeparator(th *pmem.Thread, path []int64, sepKey uint64, sib int64) error {
	if len(path) == 0 {
		// Split the root: grow a level.
		oldRoot := t.root(th)
		nr, err := t.allocNode(th, t.level(th, oldRoot)+1)
		if err != nil {
			return err
		}
		th.Store(nr+offLeftmost, uint64(oldRoot))
		th.Store(recOff(nr, 0), sepKey)
		th.Store(recOff(nr, 0)+8, uint64(sib))
		t.writeSlotArr(th, nr, []int{0})
		th.Store(nr+offBitmap, slotValidBit|1<<1)
		th.Persist(nr, t.nodeSize)
		t.pool.SetRoot(th, t.opts.RootSlot, nr)
		return nil
	}
	p := path[len(path)-1]
	var buf [maxCap]int
	idx := t.sortedIdx(th, p, buf[:0])
	if len(idx) >= t.cap {
		var err error
		p, idx, err = t.splitLeaf(th, p, path[:len(path)-1], sepKey, idx, buf[:0])
		if err != nil {
			return err
		}
	}
	t.insertIntoNode(th, p, sepKey, uint64(sib), idx)
	return nil
}

// Recover replays an unfinished logged split and revalidates slot arrays.
func (t *Tree) Recover(th *pmem.Thread) {
	if th.Load(t.logOff) == 1 {
		n := int64(th.Load(t.logOff + 8))
		for w := int64(0); w < t.nodeSize; w += 8 {
			th.Store(n+w, th.Load(t.logOff+16+w))
		}
		th.Persist(n, t.nodeSize)
		t.clearLog(th)
	}
	// Rebuild any slot array left invalid by a crashed insert/delete.
	t.eachNode(th, func(n int64) {
		if t.bitmap(th, n)&slotValidBit != 0 {
			return
		}
		var buf [maxCap]int
		idx := t.sortedIdx(th, n, buf[:0]) // bitmap-order rebuild
		t.writeSlotArr(th, n, idx)
		th.Store(n+offBitmap, t.bitmap(th, n)|slotValidBit)
		th.Flush(n+offBitmap, 8)
	})
	// Complete interrupted splits: a crash between the parent-separator
	// commit and the old node's rewrite leaves the upper half in both the
	// node and its new sibling. Truncate each leaf at the next leaf's
	// routing separator and relink the chain.
	leaves, lows := t.leavesInRoutingOrder(th)
	for i, n := range leaves {
		if i+1 >= len(leaves) {
			break
		}
		fence := lows[i+1]
		var buf [maxCap]int
		idx := t.sortedIdx(th, n, buf[:0])
		keep := idx[:0]
		for _, r := range idx {
			if t.recKey(th, n, r) < fence {
				keep = append(keep, r)
			}
		}
		if len(keep) == len(idx) && t.next(th, n) == leaves[i+1] {
			continue
		}
		t.logNode(th, n)
		var bm uint64 = slotValidBit
		for _, r := range keep {
			bm |= uint64(1) << uint(r+1)
		}
		t.writeSlotArr(th, n, keep)
		th.Store(n+offBitmap, bm)
		th.Store(n+offNext, uint64(leaves[i+1]))
		th.Flush(n+offBitmap, 8)
		th.Flush(n+offNext, 8)
		t.clearLog(th)
	}
}

// leavesInRoutingOrder returns the leaves as the internal levels route them,
// with each leaf's low separator key.
func (t *Tree) leavesInRoutingOrder(th *pmem.Thread) ([]int64, []uint64) {
	var leaves []int64
	var lows []uint64
	var walk func(n int64, low uint64)
	walk = func(n int64, low uint64) {
		if t.level(th, n) == 0 {
			leaves = append(leaves, n)
			lows = append(lows, low)
			return
		}
		walk(int64(th.Load(n+offLeftmost)), low)
		var buf [maxCap]int
		for _, r := range t.sortedIdx(th, n, buf[:0]) {
			walk(int64(t.recVal(th, n, r)), t.recKey(th, n, r))
		}
	}
	walk(t.root(th), 0)
	return leaves, lows
}

func (t *Tree) eachNode(th *pmem.Thread, fn func(n int64)) {
	var walk func(n int64)
	walk = func(n int64) {
		fn(n)
		if t.level(th, n) == 0 {
			return
		}
		walk(int64(th.Load(n + offLeftmost)))
		var buf [maxCap]int
		for _, r := range t.sortedIdx(th, n, buf[:0]) {
			walk(int64(t.recVal(th, n, r)))
		}
	}
	walk(t.root(th))
}

// CheckInvariants verifies sorted slot arrays, bitmap/slot agreement, and
// global leaf-chain order.
func (t *Tree) CheckInvariants(th *pmem.Thread) error {
	errOut := ""
	t.eachNode(th, func(n int64) {
		var buf [maxCap]int
		idx := t.sortedIdx(th, n, buf[:0])
		bm := t.bitmap(th, n)
		seen := map[int]bool{}
		for i, r := range idx {
			if r < 0 || r >= t.cap || seen[r] {
				errOut = fmt.Sprintf("node %d: bad slot entry %d", n, r)
				return
			}
			seen[r] = true
			if bm&slotValidBit != 0 && bm&(uint64(1)<<uint(r+1)) == 0 {
				errOut = fmt.Sprintf("node %d: slot %d not set in bitmap", n, r)
				return
			}
			if i > 0 && t.recKey(th, n, r) <= t.recKey(th, n, idx[i-1]) {
				errOut = fmt.Sprintf("node %d: slot array unsorted at %d", n, i)
				return
			}
		}
	})
	if errOut != "" {
		return fmt.Errorf("wbtree: %s", errOut)
	}
	var prev uint64
	first := true
	bad := ""
	t.Scan(th, 0, ^uint64(0), func(k, v uint64) bool {
		if !first && k <= prev {
			bad = fmt.Sprintf("leaf chain unsorted: %d after %d", k, prev)
			return false
		}
		prev, first = k, false
		return true
	})
	if bad != "" {
		return fmt.Errorf("wbtree: %s", bad)
	}
	return nil
}
