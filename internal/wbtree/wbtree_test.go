package wbtree

import (
	"math/rand"
	"testing"

	"repro/internal/pmem"
)

func newTree(t testing.TB, opts Options) (*Tree, *pmem.Thread) {
	t.Helper()
	p := pmem.New(pmem.Config{Size: 128 << 20})
	th := p.NewThread()
	tr, err := New(p, th, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr, th
}

func TestBasicOps(t *testing.T) {
	tr, th := newTree(t, Options{})
	if _, ok := tr.Get(th, 1); ok {
		t.Error("empty tree found key")
	}
	for i := uint64(0); i < 5000; i++ {
		if err := tr.Insert(th, i*2, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 5000; i++ {
		if v, ok := tr.Get(th, i*2); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i*2, v, ok)
		}
		if _, ok := tr.Get(th, i*2+1); ok {
			t.Fatalf("found missing key %d", i*2+1)
		}
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
}

func TestUpsert(t *testing.T) {
	tr, th := newTree(t, Options{})
	tr.Insert(th, 9, 1)
	tr.Insert(th, 9, 2)
	if v, _ := tr.Get(th, 9); v != 2 {
		t.Fatalf("upsert: %d", v)
	}
	if tr.Len(th) != 1 {
		t.Fatalf("Len = %d", tr.Len(th))
	}
}

func TestOracle(t *testing.T) {
	tr, th := newTree(t, Options{NodeSize: 512})
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(1))
	for op := 0; op < 20000; op++ {
		k := rng.Uint64() % 1500
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			v := rng.Uint64()
			if err := tr.Insert(th, k, v); err != nil {
				t.Fatal(err)
			}
			oracle[k] = v
		case 5, 6:
			_, want := oracle[k]
			if got := tr.Delete(th, k); got != want {
				t.Fatalf("Delete(%d) = %v want %v", k, got, want)
			}
			delete(oracle, k)
		default:
			want, wantOK := oracle[k]
			got, ok := tr.Get(th, k)
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("Get(%d) = %d,%v want %d,%v", k, got, ok, want, wantOK)
			}
		}
	}
	if tr.Len(th) != len(oracle) {
		t.Fatalf("Len = %d oracle %d", tr.Len(th), len(oracle))
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
}

func TestScan(t *testing.T) {
	tr, th := newTree(t, Options{})
	for i := uint64(0); i < 2000; i++ {
		tr.Insert(th, i*5, i)
	}
	var got []uint64
	tr.Scan(th, 1000, 2000, func(k, v uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 201 {
		t.Fatalf("scan count %d want 201", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("scan unsorted")
		}
	}
}

func TestInsertFlushCount(t *testing.T) {
	tr, th := newTree(t, Options{})
	for i := uint64(0); i < 100; i++ {
		tr.Insert(th, i*7, i)
	}
	th.Stats = pmem.Stats{}
	tr.Insert(th, 3, 3) // no split
	if th.Stats.FlushCalls < 4 {
		t.Errorf("insert used %d flush calls, wB+-tree needs at least 4", th.Stats.FlushCalls)
	}
	t.Logf("flush calls per non-split insert: %d", th.Stats.FlushCalls)
}

func TestCrashInsertAtomicity(t *testing.T) {
	p := pmem.New(pmem.Config{Size: 8 << 20, TrackCrashes: true})
	th := p.NewThread()
	tr, err := New(p, th, Options{NodeSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	committed := map[uint64]uint64{}
	for i := uint64(0); i < 20; i++ {
		tr.Insert(th, i*10, i)
		committed[i*10] = i
	}
	p.StartCrashLog()
	tr.Insert(th, 55, 555)
	tr.Delete(th, 30)
	old := committed[30]
	delete(committed, 30)
	rng := rand.New(rand.NewSource(2))
	for point := 0; point <= p.LogLen(); point++ {
		for _, mode := range []pmem.CrashMode{pmem.CrashNone, pmem.CrashAll, pmem.CrashRandom} {
			img := p.CrashImage(point, mode, rng)
			ith := img.NewThread()
			tr2, err := Open(img, ith, Options{NodeSize: 512}) // Open runs Recover
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range committed {
				if got, ok := tr2.Get(ith, k); !ok || got != v {
					t.Fatalf("point %d mode %d: Get(%d) = %d,%v want %d", point, mode, k, got, ok, v)
				}
			}
			if v, ok := tr2.Get(ith, 55); ok && v != 555 {
				t.Fatalf("point %d: torn insert %d", point, v)
			}
			if v, ok := tr2.Get(ith, 30); ok && v != old {
				t.Fatalf("point %d: torn delete %d", point, v)
			}
			if err := tr2.CheckInvariants(ith); err != nil {
				t.Fatalf("point %d mode %d: %v", point, mode, err)
			}
		}
	}
}

func TestCrashSplit(t *testing.T) {
	opts := Options{NodeSize: 256} // 10 records per node: quick splits
	p := pmem.New(pmem.Config{Size: 8 << 20, TrackCrashes: true})
	th := p.NewThread()
	tr, err := New(p, th, opts)
	if err != nil {
		t.Fatal(err)
	}
	committed := map[uint64]uint64{}
	for i := uint64(0); i < 10; i++ {
		tr.Insert(th, i*10, i)
		committed[i*10] = i
	}
	p.StartCrashLog()
	tr.Insert(th, 45, 99) // forces a root-leaf split
	rng := rand.New(rand.NewSource(3))
	for point := 0; point <= p.LogLen(); point++ {
		for _, mode := range []pmem.CrashMode{pmem.CrashNone, pmem.CrashAll, pmem.CrashRandom} {
			img := p.CrashImage(point, mode, rng)
			ith := img.NewThread()
			tr2, err := Open(img, ith, opts)
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range committed {
				if got, ok := tr2.Get(ith, k); !ok || got != v {
					t.Fatalf("point %d mode %d: Get(%d) = %d,%v want %d", point, mode, k, got, ok, v)
				}
			}
			if err := tr2.CheckInvariants(ith); err != nil {
				t.Fatalf("point %d mode %d: %v", point, mode, err)
			}
			// Post-crash writability.
			if err := tr2.Insert(ith, 999, 1); err != nil {
				t.Fatal(err)
			}
			if v, ok := tr2.Get(ith, 999); !ok || v != 1 {
				t.Fatalf("point %d: post-crash insert lost", point)
			}
		}
	}
}

func TestDeepTree(t *testing.T) {
	tr, th := newTree(t, Options{NodeSize: 256})
	rng := rand.New(rand.NewSource(4))
	m := map[uint64]uint64{}
	for i := 0; i < 30000; i++ {
		k := rng.Uint64() % 100000
		tr.Insert(th, k, k+1)
		m[k] = k + 1
	}
	for k, v := range m {
		if got, ok := tr.Get(th, k); !ok || got != v {
			t.Fatalf("Get(%d) = %d,%v", k, got, ok)
		}
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
}
