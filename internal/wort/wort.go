// Package wort implements WORT (Write-Optimal Radix Tree, FAST'17), the
// radix-tree baseline the paper evaluates. WORT needs no key sorting and no
// rebalancing: because the radix structure is deterministic, every update
// becomes visible through a single 8-byte atomic pointer store issued after
// the new nodes are persisted, so it is write-optimal (few flushes) but pays
// for it with pointer-chasing reads, poor cache utilisation, and slow range
// queries — the trade-off Figures 4 and 5 measure.
//
// This is a path-compressed 4-bit radix tree over uint64 keys (16 nibbles,
// most significant first). Each node holds a 16-way child array plus a
// one-word header packing its depth and compressed prefix. As in the WORT
// paper, the header's depth field makes a stale prefix — the one transient
// state a crash can leave, between re-parenting a node and rewriting its
// header — detectable and repairable during reads.
package wort

import (
	"fmt"

	"repro/internal/pmem"
)

const (
	fanout    = 16
	nibbles   = 16 // key length in nibbles
	maxPrefix = 12 // prefix nibbles a single header word can compress

	nodeSize = 8 + fanout*8
	leafSize = 16

	leafTag = uint64(1)
)

// Tree is a WORT radix tree anchored at a pool root slot. Writers must be
// externally serialised (the paper evaluates WORT single-threaded); readers
// may run concurrently with one writer.
type Tree struct {
	pool *pmem.Pool
	root int64
	slot int
}

// Options configures a Tree.
type Options struct {
	RootSlot int
}

// New creates an empty tree.
func New(p *pmem.Pool, th *pmem.Thread, opts Options) (*Tree, error) {
	root, err := p.Alloc(nodeSize, pmem.LineSize)
	if err != nil {
		return nil, err
	}
	th.Store(root, packHeader(0, 0, 0))
	th.Persist(root, nodeSize)
	p.SetRoot(th, opts.RootSlot, root)
	return &Tree{pool: p, root: root, slot: opts.RootSlot}, nil
}

// Open attaches to an existing tree (e.g. a crash image).
func Open(p *pmem.Pool, th *pmem.Thread, opts Options) (*Tree, error) {
	root := p.Root(th, opts.RootSlot)
	if root == 0 {
		return nil, fmt.Errorf("wort: no tree at root slot %d", opts.RootSlot)
	}
	return &Tree{pool: p, root: root, slot: opts.RootSlot}, nil
}

// Pool returns the backing pool.
func (t *Tree) Pool() *pmem.Pool { return t.pool }

// packHeader packs depth (nibbles consumed before this node), prefix length,
// and up to maxPrefix prefix nibbles into one failure-atomic word.
func packHeader(depth, plen int, prefix uint64) uint64 {
	return uint64(depth)<<56 | uint64(plen)<<48 | prefix&(1<<48-1)
}

func unpackHeader(h uint64) (depth, plen int, prefix uint64) {
	return int(h >> 56), int(h >> 48 & 0xff), h & (1<<48 - 1)
}

// nibble extracts the i-th most significant nibble of key.
func nibble(key uint64, i int) int {
	return int(key >> uint((nibbles-1-i)*4) & 0xf)
}

// prefixOf packs key's nibbles [from, from+n) into a prefix field.
func prefixOf(key uint64, from, n int) uint64 {
	var p uint64
	for j := 0; j < n; j++ {
		p = p<<4 | uint64(nibble(key, from+j))
	}
	return p
}

func prefixNibble(prefix uint64, plen, j int) int {
	return int(prefix >> uint((plen-1-j)*4) & 0xf)
}

func childOff(n int64, idx int) int64 { return n + 8 + int64(idx)*8 }

// effHeader reads a node header at traversal depth d, adjusting for a stale
// prefix: if a crash (or in-flight split) re-parented the node before its
// header rewrite persisted, the stored depth is smaller than d and the first
// d-storedDepth prefix nibbles have already been consumed by new ancestors.
func (t *Tree) effHeader(th *pmem.Thread, n int64, d int) (plen int, prefix uint64) {
	sd, sl, sp := unpackHeader(th.Load(n))
	if sd == d {
		return sl, sp
	}
	skip := d - sd
	if skip < 0 || skip > sl {
		// The node is from a newer epoch than the traversal (in-flight
		// split seen mid-publish); treat as empty prefix.
		return 0, 0
	}
	return sl - skip, sp & (1<<uint((sl-skip)*4) - 1)
}

// Get returns the value stored under key.
func (t *Tree) Get(th *pmem.Thread, key uint64) (uint64, bool) {
	n, d := t.root, 0
	for {
		plen, prefix := t.effHeader(th, n, d)
		for j := 0; j < plen; j++ {
			if nibble(key, d+j) != prefixNibble(prefix, plen, j) {
				return 0, false
			}
		}
		d += plen
		c := th.Load(childOff(n, nibble(key, d)))
		switch {
		case c == 0:
			return 0, false
		case c&leafTag != 0:
			leaf := int64(c &^ leafTag)
			if th.Load(leaf) != key {
				return 0, false
			}
			return th.Load(leaf + 8), true
		default:
			n, d = int64(c), d+1
		}
	}
}

// Insert stores val under key, replacing an existing value in place.
// Every structural change is committed by one atomic 8-byte store after the
// subtree it publishes has been persisted.
func (t *Tree) Insert(th *pmem.Thread, key, val uint64) error {
	th.BeginPhase(pmem.PhaseSearch)
	defer th.EndPhase()
	n, d := t.root, 0
	parentSlot := int64(-1) // slot that references n; -1 for the root
	for {
		hdr := th.Load(n)
		sd, _, _ := unpackHeader(hdr)
		if sd != d {
			// Lazy repair of a stale header (crash between
			// re-parent and header rewrite): rewrite atomically.
			plen, prefix := t.effHeader(th, n, d)
			th.BeginPhase(pmem.PhaseUpdate)
			th.Store(n, packHeader(d, plen, prefix))
			th.Flush(n, 8)
			th.BeginPhase(pmem.PhaseSearch)
			continue
		}
		plen, prefix := unpackHeader2(hdr)
		mism := -1
		for j := 0; j < plen; j++ {
			if nibble(key, d+j) != prefixNibble(prefix, plen, j) {
				mism = j
				break
			}
		}
		if mism >= 0 {
			th.BeginPhase(pmem.PhaseUpdate)
			return t.splitPrefix(th, n, parentSlot, d, plen, prefix, mism, key, val)
		}
		d += plen
		idx := nibble(key, d)
		slot := childOff(n, idx)
		c := th.Load(slot)
		switch {
		case c == 0:
			th.BeginPhase(pmem.PhaseUpdate)
			leaf, err := t.newLeaf(th, key, val)
			if err != nil {
				return err
			}
			th.Store(slot, uint64(leaf)|leafTag)
			th.Flush(slot, 8)
			return nil
		case c&leafTag != 0:
			leaf := int64(c &^ leafTag)
			k2 := th.Load(leaf)
			if k2 == key {
				th.BeginPhase(pmem.PhaseUpdate)
				th.Store(leaf+8, val)
				th.Flush(leaf+8, 8)
				return nil
			}
			th.BeginPhase(pmem.PhaseUpdate)
			return t.splitLeaf(th, slot, d+1, c, k2, key, val)
		default:
			n, d = int64(c), d+1
			parentSlot = slot
		}
	}
}

func unpackHeader2(h uint64) (plen int, prefix uint64) {
	_, plen, prefix = unpackHeader(h)
	return plen, prefix
}

func (t *Tree) newLeaf(th *pmem.Thread, key, val uint64) (int64, error) {
	leaf, err := t.pool.Alloc(leafSize, 8)
	if err != nil {
		return 0, err
	}
	th.Store(leaf, key)
	th.Store(leaf+8, val)
	th.Persist(leaf, leafSize)
	return leaf, nil
}

// splitLeaf replaces a leaf slot with nodes covering the common nibbles of
// the existing key k2 and the new key, branching to both leaves at their
// divergence. Only the final slot store publishes the subtree.
func (t *Tree) splitLeaf(th *pmem.Thread, slot int64, d int, oldChild uint64, k2, key, val uint64) error {
	cpl := 0
	for nibble(key, d+cpl) == nibble(k2, d+cpl) {
		cpl++
	}
	leaf, err := t.newLeaf(th, key, val)
	if err != nil {
		return err
	}
	top, err := t.buildSplit(th, d, cpl, key, uint64(leaf)|leafTag, k2, oldChild)
	if err != nil {
		return err
	}
	th.Store(slot, top)
	th.Flush(slot, 8)
	return nil
}

// buildSplit creates (and persists, bottom-up) the node chain that consumes
// cpl common nibbles starting at depth d and then branches to newChild (the
// key path) and oldChild (the k2 path). A node compresses at most maxPrefix
// nibbles; longer runs chain through single-child nodes.
func (t *Tree) buildSplit(th *pmem.Thread, d, cpl int, key uint64, newChild uint64, k2 uint64, oldChild uint64) (uint64, error) {
	plen := cpl
	if plen > maxPrefix {
		plen = maxPrefix
	}
	n, err := t.pool.Alloc(nodeSize, pmem.LineSize)
	if err != nil {
		return 0, err
	}
	th.Store(n, packHeader(d, plen, prefixOf(key, d, plen)))
	if plen == cpl {
		// Divergence right after the prefix: branch both keys.
		th.Store(childOff(n, nibble(key, d+cpl)), newChild)
		th.Store(childOff(n, nibble(k2, d+cpl)), oldChild)
	} else {
		// Still-common branch nibble; the rest of the run continues
		// in a child node (built and persisted first).
		sub, err := t.buildSplit(th, d+plen+1, cpl-plen-1, key, newChild, k2, oldChild)
		if err != nil {
			return 0, err
		}
		th.Store(childOff(n, nibble(key, d+plen)), sub)
	}
	th.Persist(n, nodeSize)
	return uint64(n), nil
}

// splitPrefix splits node n (reached via parentSlot at depth d) whose prefix
// diverges from key at nibble j: a new parent covering prefix[0:j] branches
// to a new leaf and to n. The parent-slot store is the commit; n's header
// rewrite afterwards is the one step a crash can abandon, detectable via the
// stored depth and repaired lazily by readers and writers.
func (t *Tree) splitPrefix(th *pmem.Thread, n, parentSlot int64, d, plen int, prefix uint64, j int, key, val uint64) error {
	if parentSlot < 0 {
		return fmt.Errorf("wort: root node cannot have a prefix")
	}
	leaf, err := t.newLeaf(th, key, val)
	if err != nil {
		return err
	}
	p, err := t.pool.Alloc(nodeSize, pmem.LineSize)
	if err != nil {
		return err
	}
	th.Store(p, packHeader(d, j, prefix>>uint((plen-j)*4)))
	th.Store(childOff(p, nibble(key, d+j)), uint64(leaf)|leafTag)
	th.Store(childOff(p, prefixNibble(prefix, plen, j)), uint64(n))
	th.Persist(p, nodeSize)

	th.Store(parentSlot, uint64(p)) // commit
	th.Flush(parentSlot, 8)

	// Rewrite n's header: it now sits j+1 nibbles below its old depth.
	rem := plen - j - 1
	th.Store(n, packHeader(d+j+1, rem, prefix&(1<<uint(rem*4)-1)))
	th.Flush(n, 8)
	return nil
}

// Delete removes key: one atomic store clears the leaf slot. Interior nodes
// are not compacted (as in the WORT paper).
func (t *Tree) Delete(th *pmem.Thread, key uint64) bool {
	th.BeginPhase(pmem.PhaseSearch)
	defer th.EndPhase()
	n, d := t.root, 0
	for {
		plen, prefix := t.effHeader(th, n, d)
		for j := 0; j < plen; j++ {
			if nibble(key, d+j) != prefixNibble(prefix, plen, j) {
				return false
			}
		}
		d += plen
		slot := childOff(n, nibble(key, d))
		c := th.Load(slot)
		switch {
		case c == 0:
			return false
		case c&leafTag != 0:
			leaf := int64(c &^ leafTag)
			if th.Load(leaf) != key {
				return false
			}
			th.BeginPhase(pmem.PhaseUpdate)
			th.Store(slot, 0)
			th.Flush(slot, 8)
			return true
		default:
			n, d = int64(c), d+1
		}
	}
}

// Scan visits pairs with lo <= key <= hi in ascending key order via an
// in-order DFS — the access pattern that makes radix-tree range queries
// slow.
func (t *Tree) Scan(th *pmem.Thread, lo, hi uint64, fn func(key, val uint64) bool) {
	t.scanNode(th, t.root, 0, lo, hi, fn)
}

func (t *Tree) scanNode(th *pmem.Thread, n int64, d int, lo, hi uint64, fn func(key, val uint64) bool) bool {
	plen, _ := t.effHeader(th, n, d)
	d += plen
	for i := 0; i < fanout; i++ {
		c := th.Load(childOff(n, i))
		if c == 0 {
			continue
		}
		if c&leafTag != 0 {
			leaf := int64(c &^ leafTag)
			k := th.Load(leaf)
			if k >= lo && k <= hi {
				if !fn(k, th.Load(leaf+8)) {
					return false
				}
			}
			continue
		}
		if !t.scanNode(th, int64(c), d+1, lo, hi, fn) {
			return false
		}
	}
	return true
}

// Len counts the keys (test helper).
func (t *Tree) Len(th *pmem.Thread) int {
	c := 0
	t.Scan(th, 0, ^uint64(0), func(uint64, uint64) bool { c++; return true })
	return c
}

// CheckInvariants verifies structural sanity: every leaf is reachable along
// a path consistent with its key, and scan order is strictly ascending.
func (t *Tree) CheckInvariants(th *pmem.Thread) error {
	var prev uint64
	first := true
	bad := ""
	t.Scan(th, 0, ^uint64(0), func(k, v uint64) bool {
		if !first && k <= prev {
			bad = fmt.Sprintf("scan unsorted: %d after %d", k, prev)
			return false
		}
		prev, first = k, false
		if got, ok := t.Get(th, k); !ok || got != v {
			bad = fmt.Sprintf("key %d unreachable via Get (%d,%v)", k, got, ok)
			return false
		}
		return true
	})
	if bad != "" {
		return fmt.Errorf("wort: %s", bad)
	}
	return nil
}
