package wort

import (
	"math/rand"
	"testing"

	"repro/internal/pmem"
)

func newTree(t testing.TB) (*Tree, *pmem.Thread) {
	t.Helper()
	p := pmem.New(pmem.Config{Size: 256 << 20})
	th := p.NewThread()
	tr, err := New(p, th, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, th
}

func TestBasicOps(t *testing.T) {
	tr, th := newTree(t)
	if _, ok := tr.Get(th, 1); ok {
		t.Error("empty tree found key")
	}
	for i := uint64(0); i < 2000; i++ {
		if err := tr.Insert(th, i, i*3); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 2000; i++ {
		if v, ok := tr.Get(th, i); !ok || v != i*3 {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if _, ok := tr.Get(th, 99999); ok {
		t.Error("found missing key")
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
}

// TestDenseSequentialKeys exercises deep common prefixes (path compression
// and chained splits).
func TestDenseSequentialKeys(t *testing.T) {
	tr, th := newTree(t)
	for i := uint64(0); i < 5000; i++ {
		if err := tr.Insert(th, i+1000000, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 5000; i++ {
		if v, ok := tr.Get(th, i+1000000); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i+1000000, v, ok)
		}
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
}

// TestPrefixSplit inserts keys that force prefix divergence inside
// compressed nodes (sharing long runs then branching high).
func TestPrefixSplit(t *testing.T) {
	tr, th := newTree(t)
	keys := []uint64{
		0x1234567890abcdef,
		0x1234567890abcd00, // diverge at nibble 14
		0x1234567890000000, // diverge inside the compressed prefix
		0x1234500000000000, // diverge earlier
		0x1234567890abcdee,
	}
	for i, k := range keys {
		if err := tr.Insert(th, k, uint64(i)); err != nil {
			t.Fatal(err)
		}
		for j := 0; j <= i; j++ {
			if v, ok := tr.Get(th, keys[j]); !ok || v != uint64(j) {
				t.Fatalf("after %d inserts: Get(%#x) = %d,%v", i+1, keys[j], v, ok)
			}
		}
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
}

func TestOracle(t *testing.T) {
	tr, th := newTree(t)
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(1))
	for op := 0; op < 20000; op++ {
		var k uint64
		if op%2 == 0 {
			k = rng.Uint64() % 1000 // dense
		} else {
			k = rng.Uint64() // sparse
		}
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			v := rng.Uint64()
			if err := tr.Insert(th, k, v); err != nil {
				t.Fatal(err)
			}
			oracle[k] = v
		case 5, 6:
			_, want := oracle[k]
			if got := tr.Delete(th, k); got != want {
				t.Fatalf("Delete(%d) = %v want %v", k, got, want)
			}
			delete(oracle, k)
		default:
			want, wantOK := oracle[k]
			got, ok := tr.Get(th, k)
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("Get(%d) = %d,%v want %d,%v", k, got, ok, want, wantOK)
			}
		}
	}
	if got := tr.Len(th); got != len(oracle) {
		t.Fatalf("Len = %d oracle %d", got, len(oracle))
	}
	if err := tr.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
}

func TestScanSorted(t *testing.T) {
	tr, th := newTree(t)
	rng := rand.New(rand.NewSource(2))
	m := map[uint64]bool{}
	for i := 0; i < 3000; i++ {
		k := rng.Uint64() >> 20
		tr.Insert(th, k, k)
		m[k] = true
	}
	var prev uint64
	first := true
	n := 0
	tr.Scan(th, 0, ^uint64(0), func(k, v uint64) bool {
		if !first && k <= prev {
			t.Fatalf("scan unsorted: %d after %d", k, prev)
		}
		if !m[k] {
			t.Fatalf("scan fabricated key %d", k)
		}
		prev, first = k, false
		n++
		return true
	})
	if n != len(m) {
		t.Fatalf("scan saw %d keys, want %d", n, len(m))
	}
}

func TestScanRangeBounds(t *testing.T) {
	tr, th := newTree(t)
	for i := uint64(0); i < 100; i++ {
		tr.Insert(th, i*10, i)
	}
	n := 0
	tr.Scan(th, 250, 500, func(k, v uint64) bool {
		if k < 250 || k > 500 {
			t.Fatalf("scan out of range: %d", k)
		}
		n++
		return true
	})
	if n != 26 { // 250..500 step 10
		t.Fatalf("scan count = %d, want 26", n)
	}
}

// TestCrashAtomicity enumerates crash points across inserts that exercise
// all three WORT update paths: empty slot, leaf split, and prefix split
// (whose header rewrite is deliberately the step a crash may abandon).
func TestCrashAtomicity(t *testing.T) {
	p := pmem.New(pmem.Config{Size: 8 << 20, TrackCrashes: true})
	th := p.NewThread()
	tr, err := New(p, th, Options{})
	if err != nil {
		t.Fatal(err)
	}
	committed := map[uint64]uint64{}
	setup := []uint64{0x1234567890abcdef, 0x1111111111111111, 42}
	for i, k := range setup {
		tr.Insert(th, k, uint64(i+1))
		committed[k] = uint64(i + 1)
	}
	p.StartCrashLog()
	inflight := []uint64{
		0x1234567890abcd00, // leaf split deep
		0x1234560000000000, // prefix split
		43,                 // leaf split shallow
		0x9999999999999999, // empty slot at root
	}
	for i, k := range inflight {
		tr.Insert(th, k, uint64(100+i))
	}
	rng := rand.New(rand.NewSource(3))
	for point := 0; point <= p.LogLen(); point++ {
		for _, mode := range []pmem.CrashMode{pmem.CrashNone, pmem.CrashAll, pmem.CrashRandom} {
			img := p.CrashImage(point, mode, rng)
			ith := img.NewThread()
			tr2, err := Open(img, ith, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range committed {
				if got, ok := tr2.Get(ith, k); !ok || got != v {
					t.Fatalf("point %d mode %d: Get(%#x) = %d,%v want %d", point, mode, k, got, ok, v)
				}
			}
			for i, k := range inflight {
				if got, ok := tr2.Get(ith, k); ok && got != uint64(100+i) {
					t.Fatalf("point %d mode %d: torn in-flight key %#x = %d", point, mode, k, got)
				}
			}
			// The tree must remain writable post-crash (lazy header
			// repair path).
			if err := tr2.Insert(ith, 0x1234567890abcd11, 7); err != nil {
				t.Fatal(err)
			}
			if v, ok := tr2.Get(ith, 0x1234567890abcd11); !ok || v != 7 {
				t.Fatalf("point %d: post-crash insert lost", point)
			}
			if err := tr2.CheckInvariants(ith); err != nil {
				t.Fatalf("point %d mode %d: %v", point, mode, err)
			}
		}
	}
}

func TestDeleteThenReinsert(t *testing.T) {
	tr, th := newTree(t)
	for i := uint64(0); i < 500; i++ {
		tr.Insert(th, i, i)
	}
	for i := uint64(0); i < 500; i += 2 {
		if !tr.Delete(th, i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	for i := uint64(0); i < 500; i += 2 {
		if err := tr.Insert(th, i, i+1000); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 500; i++ {
		want := i
		if i%2 == 0 {
			want = i + 1000
		}
		if v, ok := tr.Get(th, i); !ok || v != want {
			t.Fatalf("Get(%d) = %d,%v want %d", i, v, ok, want)
		}
	}
}
