// Package txnlog is a crash-consistent, bounded redo log for multi-key
// transactions in simulated persistent memory. Each store shard owns one:
// a transaction commit appends an intent record (the encoded write-set for
// that shard), then a commit mark, applies the write-set to the shard's
// tree, and truncates the log. Recovery scans every shard's log, replays
// intents whose transaction has a durable commit mark anywhere, and
// discards the rest.
//
// The log borrows the vlog's publish protocol — store record words, flush,
// fence, advance a persisted tail word — but is deliberately simpler than
// the value log: one fixed-capacity region instead of an extent chain, no
// space accounting, no GC. The store serialises commits per shard, so at
// most one transaction's records live in a log at a time and truncation
// always empties it.
//
// # Persistence protocol
//
//  1. The payload words, the transaction ID, the record kind, and the
//     header word (length+1 and a CRC-32C packed into 8 bytes) are stored
//     and flushed.
//  2. A store fence orders the record ahead of its publication (free on
//     TSO, a dmb on NonTSO).
//  3. The tail word in the log header line is advanced over the record
//     with one atomic 8-byte store and flushed. The record is durable when
//     Append returns.
//
// Truncate publishes tail = 0 the same way: one atomic store, flushed and
// durable on return. A crash between a commit's apply phase and its
// truncation leaves the committed records in the log; recovery replays
// them, which is idempotent because intents carry final values.
//
// # Recovery
//
// Open bounds-checks the persisted tail (word alignment, capacity), then
// validates every record below it — header length, CRC — and truncates at
// the first invalid one. Under the publish protocol nothing below a
// persisted tail can be torn, so validation failures indicate corruption;
// they shrink the log rather than fail recovery, mirroring the vlog.
package txnlog

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"repro/internal/pmem"
)

// Kind tags a record's role in the commit protocol.
type Kind uint64

const (
	// KindIntent carries one shard's encoded write-set for a transaction.
	KindIntent Kind = 1
	// KindCommit is the commit mark: a durable mark anywhere makes the
	// transaction committed on every shard.
	KindCommit Kind = 2
)

// Errors returned by the log.
var (
	// ErrTooLarge reports an Append that does not fit the log's fixed
	// capacity (even on an empty log).
	ErrTooLarge = errors.New("txnlog: record exceeds log capacity")
	// ErrFull reports an Append that does not fit the space remaining
	// behind the tail.
	ErrFull = errors.New("txnlog: log full")
	// ErrCorrupt reports an unreadable log image.
	ErrCorrupt = errors.New("txnlog: corrupt log")
)

// Log header layout: one cache line anchored at a pool root slot.
//
//	word 0: magic | version
//	word 1: arena offset of the record region
//	word 2: region capacity in bytes
//	word 3: tail — byte offset of the next append within the region (the
//	        commit point; 0 = empty log)
//
// Record layout: an 8-byte header, the 8-byte transaction ID, the 8-byte
// kind word, then the payload padded to whole words.
//
//	header: (payload length + 1) in the low 32 bits, CRC-32C of the
//	        ID bytes, kind byte, and payload in the high 32. The +1
//	        keeps an empty record's header nonzero.
const (
	logMagic   = uint64(0x54584c47) // "TXLG"
	logVersion = 1

	hdrMagicWord  = 0
	hdrRegionWord = 1
	hdrCapWord    = 2
	hdrTailWord   = 3
	hdrBytes      = pmem.LineSize

	// recHdrBytes is the fixed per-record overhead: header word +
	// transaction-ID word + kind word.
	recHdrBytes = 3 * pmem.WordSize

	// DefaultCap is the region capacity used when Create gets zero.
	DefaultCap = 1 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// recordCRC hashes the transaction ID (little-endian), the kind byte, and
// the payload. Folding the fixed fields in directly keeps the append path
// allocation-free, like the vlog's recordCRC.
func recordCRC(id uint64, kind Kind, payload []byte) uint32 {
	crc := ^uint32(0)
	for i := 0; i < 8; i++ {
		crc = crcTable[byte(crc)^byte(id>>(8*i))] ^ crc>>8
	}
	crc = crcTable[byte(crc)^byte(kind)] ^ crc>>8
	return crc32.Update(^crc, crcTable, payload)
}

// Log is a handle on one transaction log. Appends and truncations
// serialise on an internal mutex; the store additionally serialises whole
// commits per shard, so records from different transactions never
// interleave.
type Log struct {
	p      *pmem.Pool
	hdrOff int64

	mu     sync.Mutex
	region int64
	cap    int64
	tail   int64 // next append offset within the region (mirrors pmem)
}

// Rec is one decoded record, as yielded by Scan.
type Rec struct {
	ID      uint64
	Kind    Kind
	Payload []byte
}

// Capacity returns the log's fixed record-space capacity in bytes.
func (l *Log) Capacity() int64 { return l.cap }

// RecordSize returns the log bytes one record of payloadLen bytes
// occupies: header, ID and kind words plus the word-padded payload.
func RecordSize(payloadLen int) int64 {
	return recHdrBytes + roundUp(int64(payloadLen), pmem.WordSize)
}

// SpaceFor reports whether a payload of n bytes fits an EMPTY log — the
// admission check commits run before writing anything, so a too-large
// transaction aborts cleanly instead of half-appending.
func (l *Log) SpaceFor(n int) bool {
	return recHdrBytes+roundUp(int64(n), pmem.WordSize) <= l.cap
}

// Create initialises an empty log of the given capacity (0 = DefaultCap)
// anchored at the pool root slot and persists it.
func Create(p *pmem.Pool, th *pmem.Thread, slot int, capBytes int64) (*Log, error) {
	if capBytes <= 0 {
		capBytes = DefaultCap
	}
	capBytes = roundUp(capBytes, pmem.LineSize)
	hdr, err := p.Alloc(hdrBytes, pmem.LineSize)
	if err != nil {
		return nil, fmt.Errorf("txnlog: alloc header: %w", err)
	}
	region, err := p.Alloc(capBytes, pmem.LineSize)
	if err != nil {
		return nil, fmt.Errorf("txnlog: alloc region: %w", err)
	}
	l := &Log{p: p, hdrOff: hdr, region: region, cap: capBytes}
	th.Store(hdr+hdrRegionWord*pmem.WordSize, uint64(region))
	th.Store(hdr+hdrCapWord*pmem.WordSize, uint64(capBytes))
	th.Store(hdr+hdrTailWord*pmem.WordSize, 0)
	th.Store(hdr+hdrMagicWord*pmem.WordSize, logMagic<<32|logVersion)
	th.Persist(hdr, hdrBytes)
	p.SetRoot(th, slot, hdr)
	return l, nil
}

// Open re-attaches to the log anchored at slot and runs recovery: the tail
// is bounds-checked and every record below it re-validated; the log is
// truncated (volatile-side only — the caller decides when to Truncate
// durably) at the first invalid record. The surviving records are exactly
// what Scan will yield.
func Open(p *pmem.Pool, th *pmem.Thread, slot int) (*Log, error) {
	hdr := p.Root(th, slot)
	if hdr == 0 {
		return nil, fmt.Errorf("%w: no log at root slot %d", ErrCorrupt, slot)
	}
	magic := th.Load(hdr + hdrMagicWord*pmem.WordSize)
	if magic>>32 != logMagic || magic&0xffffffff != logVersion {
		return nil, fmt.Errorf("%w: bad magic %#x at root slot %d", ErrCorrupt, magic, slot)
	}
	l := &Log{
		p:      p,
		hdrOff: hdr,
		region: int64(th.Load(hdr + hdrRegionWord*pmem.WordSize)),
		cap:    int64(th.Load(hdr + hdrCapWord*pmem.WordSize)),
	}
	if l.region <= 0 || l.cap <= 0 || l.region+l.cap > p.Size() {
		return nil, fmt.Errorf("%w: region [%d,+%d) outside pool", ErrCorrupt, l.region, l.cap)
	}
	tail := int64(th.Load(hdr + hdrTailWord*pmem.WordSize))
	if tail < 0 || tail > l.cap || tail%pmem.WordSize != 0 {
		// A torn tail word is impossible (8-byte atomic stores), but a
		// corrupt image could hold anything; an unparseable tail means no
		// record was ever durably published past a parseable state, so
		// treat the log as empty rather than guess.
		tail = 0
	}
	// Walk the records below the tail; stop at the first invalid one.
	off := int64(0)
	for off < tail {
		n, ok := l.checkRecord(th, off, tail)
		if !ok {
			break
		}
		off += n
	}
	l.tail = off
	return l, nil
}

// checkRecord validates the record at byte offset off (within the region),
// returning its total size and whether it is intact and fits below bound.
func (l *Log) checkRecord(th *pmem.Thread, off, bound int64) (int64, bool) {
	if off+recHdrBytes > bound {
		return 0, false
	}
	hdrWord := th.Load(l.region + off)
	if hdrWord == 0 {
		return 0, false
	}
	plen := int64(hdrWord&0xffffffff) - 1
	if plen < 0 || plen > l.cap {
		return 0, false
	}
	need := recHdrBytes + roundUp(plen, pmem.WordSize)
	if off+need > bound {
		return 0, false
	}
	id := th.Load(l.region + off + pmem.WordSize)
	kind := Kind(th.Load(l.region + off + 2*pmem.WordSize))
	if kind != KindIntent && kind != KindCommit {
		return 0, false
	}
	payload := appendPayload(th, nil, l.region+off+recHdrBytes, int(plen))
	if recordCRC(id, kind, payload) != uint32(hdrWord>>32) {
		return 0, false
	}
	return need, true
}

// Append publishes one record. It is durable when Append returns: a crash
// mid-append can only lose the whole record, never expose a torn one.
func (l *Log) Append(th *pmem.Thread, id uint64, kind Kind, payload []byte) error {
	need := recHdrBytes + roundUp(int64(len(payload)), pmem.WordSize)
	l.mu.Lock()
	defer l.mu.Unlock()
	if need > l.cap {
		return fmt.Errorf("%w: %d > %d bytes", ErrTooLarge, need, l.cap)
	}
	if l.tail+need > l.cap {
		return fmt.Errorf("%w: %d bytes free, need %d", ErrFull, l.cap-l.tail, need)
	}
	off := l.region + l.tail
	// Step 1: payload words, the ID, the kind, then the header word,
	// flushed together.
	for i, pos := 0, off+recHdrBytes; i < len(payload); i, pos = i+8, pos+pmem.WordSize {
		th.Store(pos, packWord(payload[i:]))
	}
	th.Store(off+pmem.WordSize, id)
	th.Store(off+2*pmem.WordSize, uint64(kind))
	crc := recordCRC(id, kind, payload)
	th.Store(off, uint64(len(payload)+1)|uint64(crc)<<32)
	th.Flush(off, need)
	// Steps 2+3: fence, then commit by advancing the tail over the record.
	l.tail += need
	l.persistTail(th)
	return nil
}

// Truncate durably empties the log: one atomic persisted store of
// tail = 0. It must be durable before the next transaction appends (the
// store holds the commit serialisation lock across both), otherwise a
// crash image could pair a new transaction's record with a stale tail that
// still covers the old transaction's bytes.
func (l *Log) Truncate(th *pmem.Thread) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.tail == 0 {
		return
	}
	l.tail = 0
	l.persistTail(th)
}

// Len returns the published bytes in the log (0 = empty).
func (l *Log) Len() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tail
}

// Scan yields every published record in append order until fn returns
// false. The payload slice is freshly allocated per record and owned by
// fn. Records were validated at Open (or written by this process), so Scan
// trusts headers below the tail.
func (l *Log) Scan(th *pmem.Thread, fn func(r Rec) bool) {
	l.mu.Lock()
	tail := l.tail
	l.mu.Unlock()
	off := int64(0)
	for off < tail {
		hdrWord := th.Load(l.region + off)
		plen := int64(hdrWord&0xffffffff) - 1
		r := Rec{
			ID:   th.Load(l.region + off + pmem.WordSize),
			Kind: Kind(th.Load(l.region + off + 2*pmem.WordSize)),
		}
		r.Payload = appendPayload(th, nil, l.region+off+recHdrBytes, int(plen))
		if !fn(r) {
			return
		}
		off += recHdrBytes + roundUp(plen, pmem.WordSize)
	}
}

// persistTail publishes l.tail: fence so the records (or truncation) it
// covers are ordered first, then one atomic store, flushed (durable on
// return).
func (l *Log) persistTail(th *pmem.Thread) {
	th.StoreFence()
	off := l.hdrOff + hdrTailWord*pmem.WordSize
	th.Store(off, uint64(l.tail))
	th.Flush(off, pmem.WordSize)
}

// packWord packs up to 8 bytes little-endian.
func packWord(b []byte) uint64 {
	var w uint64
	n := len(b)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		w |= uint64(b[i]) << (8 * i)
	}
	return w
}

// appendPayload appends n payload bytes stored word-packed at off to dst.
func appendPayload(th *pmem.Thread, dst []byte, off int64, n int) []byte {
	for i := 0; i < n; i += 8 {
		w := th.Load(off + int64(i))
		m := n - i
		if m > 8 {
			m = 8
		}
		for b := 0; b < m; b++ {
			dst = append(dst, byte(w>>(8*b)))
		}
	}
	return dst
}

func roundUp(v, m int64) int64 { return (v + m - 1) / m * m }
