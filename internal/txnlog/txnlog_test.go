package txnlog

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pmem"
)

const testSlot = 6

func testValue(rng *rand.Rand, n int) []byte {
	v := make([]byte, n)
	rng.Read(v)
	return v
}

// collect drains the log into a slice.
func collect(l *Log, th *pmem.Thread) []Rec {
	var out []Rec
	l.Scan(th, func(r Rec) bool {
		out = append(out, r)
		return true
	})
	return out
}

func TestAppendScanTruncate(t *testing.T) {
	p := pmem.New(pmem.Config{Size: 4 << 20})
	th := p.NewThread()
	l, err := Create(p, th, testSlot, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{
		{},
		[]byte("x"),
		[]byte("eight..."),
		bytes.Repeat([]byte{0xaa}, 100),
	}
	for i, pl := range payloads {
		kind := KindIntent
		if i%2 == 1 {
			kind = KindCommit
		}
		if err := l.Append(th, uint64(100+i), kind, pl); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	recs := collect(l, th)
	if len(recs) != len(payloads) {
		t.Fatalf("got %d records, want %d", len(recs), len(payloads))
	}
	for i, r := range recs {
		if r.ID != uint64(100+i) || !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("record %d: id=%d payload %d bytes", i, r.ID, len(r.Payload))
		}
	}
	// Early stop.
	seen := 0
	l.Scan(th, func(Rec) bool { seen++; return false })
	if seen != 1 {
		t.Fatalf("early-stop scan saw %d records", seen)
	}
	l.Truncate(th)
	if l.Len() != 0 || len(collect(l, th)) != 0 {
		t.Fatal("truncated log not empty")
	}
	// Reusable after truncation.
	if err := l.Append(th, 7, KindIntent, []byte("again")); err != nil {
		t.Fatal(err)
	}
	if recs := collect(l, th); len(recs) != 1 || string(recs[0].Payload) != "again" {
		t.Fatal("post-truncate append not visible")
	}
}

func TestOpenRecoversPublishedRecords(t *testing.T) {
	p := pmem.New(pmem.Config{Size: 4 << 20})
	th := p.NewThread()
	l, err := Create(p, th, testSlot, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var want [][]byte
	for i := 0; i < 10; i++ {
		v := testValue(rng, rng.Intn(200))
		if err := l.Append(th, uint64(i), KindIntent, v); err != nil {
			t.Fatal(err)
		}
		want = append(want, v)
	}
	re, err := Open(p, th, testSlot)
	if err != nil {
		t.Fatal(err)
	}
	recs := collect(re, th)
	if len(recs) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.ID != uint64(i) || r.Kind != KindIntent || !bytes.Equal(r.Payload, want[i]) {
			t.Fatalf("record %d corrupt after reopen", i)
		}
	}
}

func TestSpaceErrors(t *testing.T) {
	p := pmem.New(pmem.Config{Size: 4 << 20})
	th := p.NewThread()
	l, err := Create(p, th, testSlot, pmem.LineSize) // one line: 64 bytes
	if err != nil {
		t.Fatal(err)
	}
	if !l.SpaceFor(8) || l.SpaceFor(1<<10) {
		t.Fatal("SpaceFor disagrees with capacity")
	}
	if err := l.Append(th, 1, KindIntent, make([]byte, 1<<10)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized append: %v", err)
	}
	// Fill it, then overflow.
	if err := l.Append(th, 1, KindIntent, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(th, 2, KindIntent, make([]byte, 32)); !errors.Is(err, ErrFull) {
		t.Fatalf("overflow append: %v", err)
	}
	l.Truncate(th)
	if err := l.Append(th, 3, KindIntent, make([]byte, 32)); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
}

// crashAppendMatrix injects a crash at every point of an append's persist
// tape under each survivor model: committed records byte-exact, the
// in-flight record wholly present or wholly absent, the log usable after.
func crashAppendMatrix(t *testing.T, model pmem.MemModel) {
	rng := rand.New(rand.NewSource(7))
	p := pmem.New(pmem.Config{Size: 4 << 20, TrackCrashes: true, Model: model})
	th := p.NewThread()
	l, err := Create(p, th, testSlot, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	var comVals [][]byte
	for i := 0; i < 5; i++ {
		v := testValue(rng, 40+i)
		if err := l.Append(th, uint64(i), KindIntent, v); err != nil {
			t.Fatal(err)
		}
		comVals = append(comVals, v)
	}
	p.StartCrashLog()
	inflight := testValue(rng, 100)
	if err := l.Append(th, 999, KindCommit, inflight); err != nil {
		t.Fatal(err)
	}
	tape := p.LogLen()
	if tape == 0 {
		t.Fatal("empty crash tape")
	}
	for point := 0; point <= tape; point++ {
		for _, mode := range []pmem.CrashMode{pmem.CrashNone, pmem.CrashAll, pmem.CrashRandom} {
			img := p.CrashImage(point, mode, rng)
			ith := img.NewThread()
			rl, err := Open(img, ith, testSlot)
			if err != nil {
				t.Fatalf("point %d/%d mode %d: reopen: %v", point, tape, mode, err)
			}
			recs := collect(rl, ith)
			if len(recs) != len(comVals) && len(recs) != len(comVals)+1 {
				t.Fatalf("point %d mode %d: %d records survive", point, mode, len(recs))
			}
			for i, v := range comVals {
				r := recs[i]
				if r.ID != uint64(i) || r.Kind != KindIntent || !bytes.Equal(r.Payload, v) {
					t.Fatalf("point %d mode %d: committed record %d lost", point, mode, i)
				}
			}
			if len(recs) == len(comVals)+1 {
				r := recs[len(recs)-1]
				if r.ID != 999 || r.Kind != KindCommit || !bytes.Equal(r.Payload, inflight) {
					t.Fatalf("point %d mode %d: TORN in-flight record", point, mode)
				}
			} else if point == tape && mode != pmem.CrashRandom {
				// Append returned, so at the full tape the record must be
				// there under any model that keeps persisted lines.
				t.Fatalf("completed append lost at full tape (mode %d)", mode)
			}
			// Recovered log keeps working.
			if err := rl.Append(ith, 31337, KindIntent, []byte("post-crash")); err != nil {
				t.Fatalf("point %d mode %d: post-recovery append: %v", point, mode, err)
			}
			post := collect(rl, ith)
			if got := post[len(post)-1]; string(got.Payload) != "post-crash" {
				t.Fatalf("point %d mode %d: post-recovery scan", point, mode)
			}
		}
	}
}

func TestCrashEveryPointOfAppend(t *testing.T)       { crashAppendMatrix(t, pmem.TSO) }
func TestCrashEveryPointOfAppendNonTSO(t *testing.T) { crashAppendMatrix(t, pmem.NonTSO) }

// crashTruncateMatrix crashes at every point of a Truncate: the reopened
// log holds either the full pre-truncate record set or nothing — never a
// suffix, prefix, or torn record.
func crashTruncateMatrix(t *testing.T, model pmem.MemModel) {
	rng := rand.New(rand.NewSource(11))
	p := pmem.New(pmem.Config{Size: 4 << 20, TrackCrashes: true, Model: model})
	th := p.NewThread()
	l, err := Create(p, th, testSlot, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	var vals [][]byte
	for i := 0; i < 4; i++ {
		v := testValue(rng, 30*i)
		if err := l.Append(th, uint64(i), KindIntent, v); err != nil {
			t.Fatal(err)
		}
		vals = append(vals, v)
	}
	p.StartCrashLog()
	l.Truncate(th)
	tape := p.LogLen()
	for point := 0; point <= tape; point++ {
		for _, mode := range []pmem.CrashMode{pmem.CrashNone, pmem.CrashAll, pmem.CrashRandom} {
			img := p.CrashImage(point, mode, rng)
			ith := img.NewThread()
			rl, err := Open(img, ith, testSlot)
			if err != nil {
				t.Fatalf("point %d/%d mode %d: reopen: %v", point, tape, mode, err)
			}
			recs := collect(rl, ith)
			switch len(recs) {
			case 0: // truncation won
			case len(vals): // truncation lost; records must be intact
				for i, v := range vals {
					if recs[i].ID != uint64(i) || !bytes.Equal(recs[i].Payload, v) {
						t.Fatalf("point %d mode %d: record %d torn", point, mode, i)
					}
				}
			default:
				t.Fatalf("point %d mode %d: partial truncation, %d of %d records",
					point, mode, len(recs), len(vals))
			}
		}
	}
}

func TestCrashEveryPointOfTruncate(t *testing.T)       { crashTruncateMatrix(t, pmem.TSO) }
func TestCrashEveryPointOfTruncateNonTSO(t *testing.T) { crashTruncateMatrix(t, pmem.NonTSO) }

// TestOpenRejectsCorruptImages flips header fields and asserts fail-closed
// behaviour: bad magic and out-of-range regions error, a wild tail or a
// corrupted record body silently shrinks the log instead of yielding
// garbage records.
func TestOpenRejectsCorruptImages(t *testing.T) {
	build := func() (*pmem.Pool, *pmem.Thread, *Log) {
		p := pmem.New(pmem.Config{Size: 1 << 20})
		th := p.NewThread()
		l, err := Create(p, th, testSlot, 8<<10)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := l.Append(th, uint64(i), KindIntent, []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		return p, th, l
	}

	p, th, l := build()
	hdr := p.Root(th, testSlot)
	th.Store(hdr+hdrMagicWord*pmem.WordSize, 0xdeadbeef)
	if _, err := Open(p, th, testSlot); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}

	p, th, l = build()
	hdr = p.Root(th, testSlot)
	th.Store(hdr+hdrRegionWord*pmem.WordSize, uint64(p.Size()))
	if _, err := Open(p, th, testSlot); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wild region: %v", err)
	}

	// Wild tail: treated as empty.
	p, th, l = build()
	hdr = p.Root(th, testSlot)
	th.Store(hdr+hdrTailWord*pmem.WordSize, uint64(1<<40))
	re, err := Open(p, th, testSlot)
	if err != nil {
		t.Fatalf("wild tail: %v", err)
	}
	if got := len(collect(re, th)); got != 0 {
		t.Fatalf("wild tail yielded %d records", got)
	}

	// Flip a payload byte of the middle record: the walk truncates there,
	// keeping only the first record.
	p, th, l = build()
	var offs []int64
	off := int64(0)
	for off < l.Len() {
		offs = append(offs, off)
		hdrWord := th.Load(l.region + off)
		off += recHdrBytes + roundUp(int64(hdrWord&0xffffffff)-1, pmem.WordSize)
	}
	if len(offs) != 3 {
		t.Fatalf("expected 3 records, got %d", len(offs))
	}
	mid := l.region + offs[1] + recHdrBytes
	th.Store(mid, th.Load(mid)^0xff)
	re, err = Open(p, th, testSlot)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(collect(re, th)); got != 1 {
		t.Fatalf("corrupt middle record: %d records survive, want 1", got)
	}
}
