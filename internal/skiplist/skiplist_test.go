package skiplist

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pmem"
)

func newList(t testing.TB) (*List, *pmem.Thread) {
	t.Helper()
	p := pmem.New(pmem.Config{Size: 64 << 20})
	th := p.NewThread()
	l, err := New(p, th, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return l, th
}

func TestBasicOps(t *testing.T) {
	l, th := newList(t)
	if _, ok := l.Get(th, 1); ok {
		t.Error("empty list found key")
	}
	for i := uint64(0); i < 1000; i++ {
		if err := l.Insert(th, i*2, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 1000; i++ {
		if v, ok := l.Get(th, i*2); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i*2, v, ok)
		}
		if _, ok := l.Get(th, i*2+1); ok {
			t.Fatalf("Get(%d) found missing key", i*2+1)
		}
	}
	if err := l.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
}

func TestUpsertAndDelete(t *testing.T) {
	l, th := newList(t)
	l.Insert(th, 5, 1)
	l.Insert(th, 5, 2)
	if v, _ := l.Get(th, 5); v != 2 {
		t.Fatalf("upsert: got %d", v)
	}
	if l.Len(th) != 1 {
		t.Fatalf("Len = %d", l.Len(th))
	}
	if !l.Delete(th, 5) {
		t.Fatal("Delete failed")
	}
	if l.Delete(th, 5) {
		t.Fatal("double Delete succeeded")
	}
	if _, ok := l.Get(th, 5); ok {
		t.Fatal("deleted key found")
	}
}

func TestOracle(t *testing.T) {
	l, th := newList(t)
	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(1))
	for op := 0; op < 20000; op++ {
		k := rng.Uint64() % 800
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			v := rng.Uint64()
			if err := l.Insert(th, k, v); err != nil {
				t.Fatal(err)
			}
			oracle[k] = v
		case 5, 6:
			_, want := oracle[k]
			if got := l.Delete(th, k); got != want {
				t.Fatalf("Delete(%d) = %v want %v", k, got, want)
			}
			delete(oracle, k)
		default:
			want, wantOK := oracle[k]
			got, ok := l.Get(th, k)
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("Get(%d) = %d,%v want %d,%v", k, got, ok, want, wantOK)
			}
		}
	}
	if l.Len(th) != len(oracle) {
		t.Fatalf("Len = %d oracle %d", l.Len(th), len(oracle))
	}
	if err := l.CheckInvariants(th); err != nil {
		t.Fatal(err)
	}
}

func TestScan(t *testing.T) {
	l, th := newList(t)
	for i := uint64(0); i < 500; i++ {
		l.Insert(th, i*3, i)
	}
	var got []uint64
	l.Scan(th, 30, 60, func(k, v uint64) bool {
		got = append(got, k)
		return true
	})
	want := []uint64{30, 33, 36, 39, 42, 45, 48, 51, 54, 57, 60}
	if len(got) != len(want) {
		t.Fatalf("scan got %v want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %d want %d", i, got[i], want[i])
		}
	}
}

func TestCrashBottomListIsTruth(t *testing.T) {
	p := pmem.New(pmem.Config{Size: 8 << 20, TrackCrashes: true})
	th := p.NewThread()
	l, err := New(p, th, Options{})
	if err != nil {
		t.Fatal(err)
	}
	committed := map[uint64]uint64{}
	for i := uint64(0); i < 200; i++ {
		l.Insert(th, i, i+1)
		committed[i] = i + 1
	}
	p.StartCrashLog()
	l.Insert(th, 1000, 1)
	l.Delete(th, 50)
	rng := rand.New(rand.NewSource(2))
	for point := 0; point <= p.LogLen(); point++ {
		for _, mode := range []pmem.CrashMode{pmem.CrashNone, pmem.CrashAll, pmem.CrashRandom} {
			img := p.CrashImage(point, mode, rng)
			ith := img.NewThread()
			l2, err := Open(img, ith, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := l2.CheckInvariants(ith); err != nil {
				t.Fatalf("point %d mode %d: %v", point, mode, err)
			}
			for k, v := range committed {
				if k == 50 {
					continue // the in-flight delete's target
				}
				if got, ok := l2.Get(ith, k); !ok || got != v {
					t.Fatalf("point %d mode %d: Get(%d) = %d,%v", point, mode, k, got, ok)
				}
			}
			// In-flight ops must be atomic.
			if v, ok := l2.Get(ith, 1000); ok && v != 1 {
				t.Fatalf("point %d: torn insert value %d", point, v)
			}
			if v, ok := l2.Get(ith, 50); ok && v != 51 {
				t.Fatalf("point %d: torn delete value %d", point, v)
			}
		}
	}
}

func TestConcurrent(t *testing.T) {
	l, th0 := newList(t)
	const stable = 2000
	for i := uint64(0); i < stable; i++ {
		l.Insert(th0, i*2, i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := l.Pool().NewThread()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 3000; i++ {
				if g%2 == 0 {
					k := rng.Uint64()%(stable*2) | 1
					if err := l.Insert(th, k, k); err != nil {
						t.Error(err)
						return
					}
				} else {
					k := (rng.Uint64() % stable) * 2
					if v, ok := l.Get(th, k); !ok || v != k/2 {
						t.Errorf("Get(%d) = %d,%v", k, v, ok)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.CheckInvariants(l.Pool().NewThread()); err != nil {
		t.Fatal(err)
	}
}
