// Package skiplist implements the persistent skip list the paper evaluates
// as the "SkipList" baseline (from the Log-Structured NVMM system): only the
// lowest-level linked list is updated failure-atomically — a fully-persisted
// node is published with one atomic pointer store — while the upper index
// levels are best-effort and rebuildable. Like FAST+FAIR it needs no logging
// and offers lock-free search, but its pointer-chasing access pattern has no
// cache locality, which is exactly the weakness Figures 4 and 5 measure.
package skiplist

import (
	"fmt"

	"repro/internal/pmem"
)

const (
	// MaxLevel bounds tower height; level 0 is the persistent truth.
	MaxLevel = 20

	offKey   = 0
	offVal   = 8
	offMeta  = 16 // tower height
	offNext  = 24 // next[level] pointers
	nodeSize = offNext + MaxLevel*8
)

// List is a persistent skip list of uint64 key/value pairs. The head tower
// is anchored at a pool root slot.
type List struct {
	pool *pmem.Pool
	head int64
	slot int
}

// Options configures a List.
type Options struct {
	// RootSlot anchors the head tower (default 0).
	RootSlot int
}

// New creates an empty list.
func New(p *pmem.Pool, th *pmem.Thread, opts Options) (*List, error) {
	head, err := p.Alloc(nodeSize, pmem.LineSize)
	if err != nil {
		return nil, err
	}
	th.Persist(head, nodeSize)
	p.SetRoot(th, opts.RootSlot, head)
	return &List{pool: p, head: head, slot: opts.RootSlot}, nil
}

// Open attaches to an existing list (e.g. a crash image) and rebuilds the
// volatile upper index levels from the persistent bottom list.
func Open(p *pmem.Pool, th *pmem.Thread, opts Options) (*List, error) {
	head := p.Root(th, opts.RootSlot)
	if head == 0 {
		return nil, fmt.Errorf("skiplist: no list at root slot %d", opts.RootSlot)
	}
	l := &List{pool: p, head: head, slot: opts.RootSlot}
	l.Recover(th)
	return l, nil
}

// Pool returns the backing pool.
func (l *List) Pool() *pmem.Pool { return l.pool }

func next(th *pmem.Thread, n int64, lv int) int64 {
	return int64(th.Load(n + offNext + int64(lv)*8))
}

// towerLevel derives a deterministic height from the key (a splitmix-style
// hash), keeping crash images reproducible: P(level >= k) = 2^-k.
func towerLevel(key uint64) int {
	x := key + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	lv := 1
	for x&1 == 1 && lv < MaxLevel {
		lv++
		x >>= 1
	}
	return lv
}

// findPreds fills preds with the rightmost node before key at every level.
func (l *List) findPreds(th *pmem.Thread, key uint64, preds *[MaxLevel]int64) int64 {
	n := l.head
	for lv := MaxLevel - 1; lv >= 0; lv-- {
		for {
			nx := next(th, n, lv)
			if nx == 0 || th.Load(nx+offKey) >= key {
				break
			}
			n = nx
		}
		preds[lv] = n
	}
	return next(th, n, 0)
}

// Insert stores val under key, replacing an existing value in place (one
// atomic store + flush).
func (l *List) Insert(th *pmem.Thread, key, val uint64) error {
	th.BeginPhase(pmem.PhaseSearch)
	defer th.EndPhase()
	var preds [MaxLevel]int64
	for {
		cand := l.findPreds(th, key, &preds)
		if cand != 0 && th.Load(cand+offKey) == key {
			th.BeginPhase(pmem.PhaseUpdate)
			th.Store(cand+offVal, val)
			th.Flush(cand+offVal, 8)
			return nil
		}
		th.BeginPhase(pmem.PhaseUpdate)
		lv := towerLevel(key)
		n, err := l.pool.Alloc(nodeSize, pmem.LineSize)
		if err != nil {
			return err
		}
		th.Store(n+offKey, key)
		th.Store(n+offVal, val)
		th.Store(n+offMeta, uint64(lv))
		th.Store(n+offNext, uint64(cand))
		for i := 1; i < lv; i++ {
			th.Store(n+offNext+int64(i)*8, uint64(next(th, preds[i], i)))
		}
		// The node is fully persistent before it becomes reachable.
		th.Persist(n, nodeSize)
		// Publish: the bottom-level link is the failure-atomic commit.
		if !th.CAS(preds[0]+offNext, uint64(cand), uint64(n)) {
			l.pool.Free(n, nodeSize)
			th.BeginPhase(pmem.PhaseSearch)
			continue // a racing writer changed the neighbourhood
		}
		th.Flush(preds[0]+offNext, 8)
		// Upper levels are an optimisation: plain CAS, no flush needed
		// (recovery rebuilds them from the bottom list).
		for i := 1; i < lv; i++ {
			exp := next(th, n, i)
			if !th.CAS(preds[i]+offNext+int64(i)*8, uint64(exp), uint64(n)) {
				break // lost an index race: leave lower towers linked
			}
		}
		return nil
	}
}

// Get returns the value stored under key; the search is lock-free.
func (l *List) Get(th *pmem.Thread, key uint64) (uint64, bool) {
	n := l.head
	for lv := MaxLevel - 1; lv >= 0; lv-- {
		for {
			nx := next(th, n, lv)
			if nx == 0 || th.Load(nx+offKey) >= key {
				break
			}
			n = nx
		}
	}
	c := next(th, n, 0)
	if c != 0 && th.Load(c+offKey) == key {
		return th.Load(c + offVal), true
	}
	return 0, false
}

// Delete unlinks key from the bottom list (the failure-atomic commit) and
// best-effort from the index levels. The node is not reused, so concurrent
// lock-free readers never chase recycled memory.
func (l *List) Delete(th *pmem.Thread, key uint64) bool {
	th.BeginPhase(pmem.PhaseSearch)
	defer th.EndPhase()
	var preds [MaxLevel]int64
	for {
		cand := l.findPreds(th, key, &preds)
		if cand == 0 || th.Load(cand+offKey) != key {
			return false
		}
		th.BeginPhase(pmem.PhaseUpdate)
		// Unlink top-down so index levels never point at a node the
		// bottom list has dropped.
		lv := int(th.Load(cand + offMeta))
		for i := lv - 1; i >= 1; i-- {
			if next(th, preds[i], i) == cand {
				th.CAS(preds[i]+offNext+int64(i)*8, uint64(cand), uint64(next(th, cand, i)))
			}
		}
		if th.CAS(preds[0]+offNext, uint64(cand), uint64(next(th, cand, 0))) {
			th.Flush(preds[0]+offNext, 8)
			return true
		}
		th.BeginPhase(pmem.PhaseSearch) // raced; retry
	}
}

// Scan visits pairs with lo <= key <= hi ascending. It walks the bottom
// list: every hop is a dependent pointer chase, which is why the paper sees
// up to 20x slower range queries than FAST+FAIR.
func (l *List) Scan(th *pmem.Thread, lo, hi uint64, fn func(key, val uint64) bool) {
	var preds [MaxLevel]int64
	n := l.findPreds(th, lo, &preds)
	for n != 0 {
		k := th.Load(n + offKey)
		if k > hi {
			return
		}
		if k >= lo && !fn(k, th.Load(n+offVal)) {
			return
		}
		n = next(th, n, 0)
	}
}

// Len counts the keys (test/diagnostic helper).
func (l *List) Len(th *pmem.Thread) int {
	c := 0
	for n := next(th, l.head, 0); n != 0; n = next(th, n, 0) {
		c++
	}
	return c
}

// Recover rebuilds the volatile index levels from the persistent bottom
// list. Needed after a crash: upper-level pointers are unflushed hints.
func (l *List) Recover(th *pmem.Thread) {
	// Reset head's upper levels.
	var preds [MaxLevel]int64
	for i := 1; i < MaxLevel; i++ {
		th.Store(l.head+offNext+int64(i)*8, 0)
		preds[i] = l.head
	}
	for n := next(th, l.head, 0); n != 0; n = next(th, n, 0) {
		lv := int(th.Load(n + offMeta))
		if lv < 1 || lv > MaxLevel {
			lv = towerLevel(th.Load(n + offKey))
		}
		for i := 1; i < lv; i++ {
			th.Store(n+offNext+int64(i)*8, 0)
			th.Store(preds[i]+offNext+int64(i)*8, uint64(n))
			preds[i] = n
		}
	}
	th.Persist(l.head, nodeSize)
}

// CheckInvariants verifies the bottom list is strictly sorted and the index
// levels only reference reachable, correctly-ordered nodes.
func (l *List) CheckInvariants(th *pmem.Thread) error {
	seen := map[int64]bool{l.head: true}
	var prev uint64
	first := true
	for n := next(th, l.head, 0); n != 0; n = next(th, n, 0) {
		k := th.Load(n + offKey)
		if !first && k <= prev {
			return fmt.Errorf("skiplist: bottom level unsorted at %d", k)
		}
		prev, first = k, false
		seen[n] = true
	}
	for lv := 1; lv < MaxLevel; lv++ {
		var pk uint64
		pf := true
		for n := next(th, l.head, lv); n != 0; n = next(th, n, lv) {
			if !seen[n] {
				return fmt.Errorf("skiplist: level %d references unreachable node %d", lv, n)
			}
			k := th.Load(n + offKey)
			if !pf && k <= pk {
				return fmt.Errorf("skiplist: level %d unsorted at %d", lv, k)
			}
			pk, pf = k, false
		}
	}
	return nil
}
