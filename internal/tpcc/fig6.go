package tpcc

import (
	"fmt"
	"math/rand"
	"time"

	"repro/index"
	"repro/internal/bench"
	"repro/internal/pmem"
)

// NewBound builds a TPC-C instance whose tables are indexes of the given
// kind opened through the registry, each in its own pool with the given
// latency configuration.
func NewBound(k index.Kind, warehouses int, mem pmem.Config) (*Bench, error) {
	mk := func(name string) (index.Index, *pmem.Thread, error) {
		m := mem
		m.Size = 64 << 20
		if name == "orderline" || name == "stock" || name == "customer" || name == "history" {
			m.Size = 256 << 20
		}
		return index.New(k, m, index.Options{})
	}
	return New(warehouses, mk)
}

// Fig6 reproduces Figure 6: TPC-C throughput (Ktx/sec) for workload mixes
// W1–W4 across the single-threaded index set, with PM R/W latency 300ns.
func Fig6(txPerMix int, warehouses int) *bench.Table {
	tbl := &bench.Table{
		Title: fmt.Sprintf("Figure 6: TPC-C throughput (Ktx/sec), %d tx/mix, %d warehouse(s), R/W latency 300ns",
			txPerMix, warehouses),
		Header: append([]string{"mix"}, kindNames()...),
		Notes:  "expected shape: FAST+FAIR wins every mix (insert + range-scan strength); WORT hurt by range scans as search share grows",
	}
	mem := pmem.Config{
		ReadLatency:  300 * time.Nanosecond,
		WriteLatency: 300 * time.Nanosecond,
	}
	for _, mix := range Mixes {
		row := []string{mix.Name}
		for _, k := range bench.AllSingleThreaded {
			b, err := NewBound(k, warehouses, mem)
			if err != nil {
				panic(err)
			}
			rng := rand.New(rand.NewSource(77))
			t0 := time.Now()
			n, err := b.Run(mix, txPerMix, rng)
			if err != nil {
				panic(fmt.Sprintf("%s %s: %v", k, mix.Name, err))
			}
			el := time.Since(t0)
			row = append(row, fmt.Sprintf("%.1f", float64(n)/el.Seconds()/1000))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl
}

func kindNames() []string {
	out := make([]string, len(bench.AllSingleThreaded))
	for i, k := range bench.AllSingleThreaded {
		out[i] = string(k)
	}
	return out
}
