package tpcc

import (
	"math/rand"
	"testing"

	"repro/index"
	"repro/internal/bench"
	"repro/internal/pmem"
)

// mapIndex is an in-memory oracle implementation of index.Index used to
// validate the workload logic itself, independent of any tree. It ignores
// the thread parameter (it has no pool).
type mapIndex struct {
	m map[uint64]uint64
}

func newMapIndex() *mapIndex { return &mapIndex{m: map[uint64]uint64{}} }

func (x *mapIndex) Insert(_ *pmem.Thread, k, v uint64) error { x.m[k] = v; return nil }
func (x *mapIndex) Get(_ *pmem.Thread, k uint64) (uint64, bool) {
	v, ok := x.m[k]
	return v, ok
}
func (x *mapIndex) Delete(_ *pmem.Thread, k uint64) bool {
	_, ok := x.m[k]
	delete(x.m, k)
	return ok
}
func (x *mapIndex) Len(_ *pmem.Thread) int { return len(x.m) }
func (x *mapIndex) Pool() *pmem.Pool       { return nil }
func (x *mapIndex) Kind() index.Kind       { return "map-oracle" }
func (x *mapIndex) Close() error           { return nil }
func (x *mapIndex) Scan(_ *pmem.Thread, lo, hi uint64, fn func(k, v uint64) bool) {
	// Sorted scan over the map (slow; fine for tests).
	var keys []uint64
	for k := range x.m {
		if k >= lo && k <= hi {
			keys = append(keys, k)
		}
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		if !fn(k, x.m[k]) {
			return
		}
	}
}

func TestWorkloadLogicOnOracle(t *testing.T) {
	b, err := New(1, func(string) (index.Index, *pmem.Thread, error) { return newMapIndex(), nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for _, mix := range Mixes {
		if _, err := b.Run(mix, 500, rng); err != nil {
			t.Fatalf("%s: %v", mix.Name, err)
		}
	}
}

func TestMixPercentagesSumTo100(t *testing.T) {
	for _, m := range Mixes {
		if s := m.NewOrder + m.Payment + m.Status + m.Delivery + m.StockPercent; s != 100 {
			t.Errorf("%s sums to %d", m.Name, s)
		}
	}
}

// TestAllKindsRunTPCC drives a short mixed run on every index kind; any
// index bug surfaces as a transaction error (missing customer/stock/etc.).
func TestAllKindsRunTPCC(t *testing.T) {
	kinds := append([]index.Kind{}, bench.AllSingleThreaded...)
	kinds = append(kinds, index.FastFairLogging, index.FastFairLeafLock, index.BLink)
	for _, k := range kinds {
		k := k
		t.Run(string(k), func(t *testing.T) {
			b, err := NewBound(k, 1, pmem.Config{})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(2))
			if _, err := b.Run(Mixes[0], 300, rng); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Run(Mixes[3], 300, rng); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDeliveryDrainsNewOrders checks Delivery actually consumes the oldest
// undelivered orders.
func TestDeliveryDrainsNewOrders(t *testing.T) {
	b, err := New(1, func(string) (index.Index, *pmem.Thread, error) { return newMapIndex(), nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	countNew := func() int {
		n := 0
		b.neworder.Scan(0, ^uint64(0), func(uint64, uint64) bool { n++; return true })
		return n
	}
	before := countNew()
	if before == 0 {
		t.Fatal("no undelivered orders after load")
	}
	if err := b.Delivery(rng); err != nil {
		t.Fatal(err)
	}
	after := countNew()
	if after >= before {
		t.Fatalf("Delivery did not drain: %d -> %d", before, after)
	}
	if before-after > Districts {
		t.Fatalf("Delivery drained too much: %d", before-after)
	}
}

// TestConsistencyYTD: warehouse YTD equals the sum of history amounts for a
// payment-only run (a TPC-C consistency condition).
func TestConsistencyYTD(t *testing.T) {
	b, err := New(1, func(string) (index.Index, *pmem.Thread, error) { return newMapIndex(), nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		if err := b.Payment(rng); err != nil {
			t.Fatal(err)
		}
	}
	var histSum uint64
	b.history.Scan(0, ^uint64(0), func(_, v uint64) bool {
		histSum += v
		return true
	})
	wv, _ := b.warehouse.Get(kW(1))
	if wv != histSum {
		t.Fatalf("warehouse YTD %d != history sum %d", wv, histSum)
	}
}

// TestNewOrderAdvancesDistrict checks o_id monotonicity between the index
// and the volatile mirror.
func TestNewOrderAdvancesDistrict(t *testing.T) {
	b, err := New(1, func(string) (index.Index, *pmem.Thread, error) { return newMapIndex(), nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		if err := b.NewOrder(rng); err != nil {
			t.Fatal(err)
		}
	}
	total := uint64(0)
	for d := 1; d <= Districts; d++ {
		dv, ok := b.district.Get(kWD(1, d))
		if !ok {
			t.Fatal("district missing")
		}
		next := dv >> 32
		if got := b.nextO[kWD(1, d)]; got != next {
			t.Fatalf("district %d: mirror %d != index %d", d, got, next)
		}
		total += next - 1 - initialOrder
	}
	if total != 100 {
		t.Fatalf("orders created = %d, want 100", total)
	}
}
