package tpcc

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bench"
	"repro/store"
)

// This file ports the TPC-C workload from bare per-table indexes to the
// sharded store, with every multi-key writing transaction (NewOrder,
// Payment, Delivery) committed through the store's redo-log transaction
// path: one Txn buffers the whole write-set and Commit applies it
// atomically, including across shard crashes. Read-only transactions
// (OrderStatus, StockLevel) run as plain session reads and scans.
//
// All ten tables live in one key space; a 4-bit table tag in bits 60-63
// keeps them disjoint while staying inside uint64 keys, so the store's
// global sorted Scan doubles as a per-table range scan. Row values reuse
// the uint64 packings of the index-level benchmark above.

// Table tags (bits 60-63 of every key).
const (
	tagWarehouse uint64 = 1 + iota
	tagDistrict
	tagCustomer
	tagOrder
	tagNewOrder
	tagOrderLine
	tagCustOrder
	tagStock
	tagItem
	tagHistory
)

// Tagged key packers. Field widths bound the supported scale: warehouses
// fit 8 bits in the widest layouts, order ids 24 bits in custorder keys —
// far beyond what the smoke and bench runs load.
func tW(w int) uint64     { return tagWarehouse<<60 | uint64(w) }
func tWD(w, d int) uint64 { return tagDistrict<<60 | uint64(w)<<8 | uint64(d) }
func tWDC(w, d, c int) uint64 {
	return tagCustomer<<60 | uint64(w)<<24 | uint64(d)<<16 | uint64(c)
}
func tWDO(tag uint64, w, d int, o uint64) uint64 {
	return tag<<60 | uint64(w)<<40 | uint64(d)<<32 | o
}
func tWDOL(w, d int, o uint64, ol int) uint64 {
	return tagOrderLine<<60 | uint64(w)<<48 | uint64(d)<<40 | o<<8 | uint64(ol)
}
func tWDCO(w, d, c int, o uint64) uint64 {
	return tagCustOrder<<60 | uint64(w)<<48 | uint64(d)<<40 | uint64(c)<<24 | o
}
func tWI(w, i int) uint64   { return tagStock<<60 | uint64(w)<<32 | uint64(i) }
func tItem(i int) uint64    { return tagItem<<60 | uint64(i) }
func tHist(s uint64) uint64 { return tagHistory<<60 | s }

// StoreBench is one TPC-C instance over a sharded store. It is single-
// goroutine, like Bench: one session drives reads and commits. Crash
// recovery keeps the database consistent without the volatile mirrors —
// CheckConsistency revalidates the invariants straight from the store.
type StoreBench struct {
	st *store.Store
	ss *store.Session
	W  int

	histSeq uint64
	nextO   map[uint64]uint64 // volatile mirror of district next_o_id
}

// NewStoreBench opens a store with the given options (zero-value fields
// take the store's defaults) and loads W warehouses of initial data.
func NewStoreBench(w int, opts store.Options) (*StoreBench, error) {
	st, err := store.Open(opts)
	if err != nil {
		return nil, err
	}
	b := &StoreBench{st: st, ss: st.NewSession(), W: w, nextO: map[uint64]uint64{}}
	if err := b.load(); err != nil {
		b.Close()
		return nil, err
	}
	return b, nil
}

// Store exposes the underlying store for invariant checks in tests.
func (b *StoreBench) Store() *store.Store { return b.st }

// Close releases the session and the store.
func (b *StoreBench) Close() {
	b.ss.Close()
	b.st.Close()
}

// load populates the initial database with plain puts; the transactional
// path is the workload under test, not the loader.
func (b *StoreBench) load() error {
	rng := rand.New(rand.NewSource(1))
	put := b.ss.Put
	for i := 1; i <= Items; i++ {
		if err := put(tItem(i), uint64(rng.Intn(9900)+100)); err != nil {
			return err
		}
	}
	for w := 1; w <= b.W; w++ {
		if err := put(tW(w), 0); err != nil {
			return err
		}
		for i := 1; i <= Items; i++ {
			if err := put(tWI(w, i), uint64(rng.Intn(90)+10)); err != nil {
				return err
			}
		}
		for d := 1; d <= Districts; d++ {
			for c := 1; c <= CustomersPer; c++ {
				if err := put(tWDC(w, d, c), 1<<40); err != nil {
					return err
				}
			}
			for o := uint64(1); o <= initialOrder; o++ {
				c := rng.Intn(CustomersPer) + 1
				cnt := rng.Intn(11) + 5
				if err := put(tWDO(tagOrder, w, d, o), uint64(c)<<16|uint64(cnt)); err != nil {
					return err
				}
				if err := put(tWDCO(w, d, c, o), o); err != nil {
					return err
				}
				if o > initialOrder/2 {
					if err := put(tWDO(tagNewOrder, w, d, o), 1); err != nil {
						return err
					}
				}
				for ol := 1; ol <= cnt; ol++ {
					it := rng.Intn(Items) + 1
					qty := rng.Intn(10) + 1
					if err := put(tWDOL(w, d, o, ol), uint64(it)<<16|uint64(qty)); err != nil {
						return err
					}
				}
			}
			b.nextO[tWD(w, d)] = initialOrder + 1
			if err := put(tWD(w, d), (initialOrder+1)<<32); err != nil {
				return err
			}
		}
	}
	return nil
}

// NewOrder runs the new-order transaction: reads resolve against the
// current state, then district advance, order/custorder/neworder rows,
// order lines, and all stock decrements commit as ONE atomic write-set.
func (b *StoreBench) NewOrder(rng *rand.Rand) error {
	w := rng.Intn(b.W) + 1
	d := rng.Intn(Districts) + 1
	c := rng.Intn(CustomersPer) + 1
	if _, ok, err := b.ss.Get(tWDC(w, d, c)); err != nil {
		return err
	} else if !ok {
		return fmt.Errorf("tpcc: missing customer %d/%d/%d", w, d, c)
	}
	dk := tWD(w, d)
	dv, ok, err := b.ss.Get(dk)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("tpcc: missing district %d/%d", w, d)
	}
	o := b.nextO[dk]

	tx := b.ss.Begin()
	defer tx.Rollback()
	cnt := rng.Intn(11) + 5
	tx.Put(dk, (o+1)<<32|dv&0xffffffff)
	tx.Put(tWDO(tagOrder, w, d, o), uint64(c)<<16|uint64(cnt))
	tx.Put(tWDCO(w, d, c, o), o)
	tx.Put(tWDO(tagNewOrder, w, d, o), 1)
	for ol := 1; ol <= cnt; ol++ {
		it := rng.Intn(Items) + 1
		qty := rng.Intn(10) + 1
		if _, ok, err := b.ss.Get(tItem(it)); err != nil {
			return err
		} else if !ok {
			return fmt.Errorf("tpcc: missing item %d", it)
		}
		tx.Put(tWDOL(w, d, o, ol), uint64(it)<<16|uint64(qty))
		sk := tWI(w, it)
		q, ok, err := b.ss.Get(sk)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("tpcc: missing stock %d/%d", w, it)
		}
		nq := q - uint64(rng.Intn(10)+1)
		if int64(nq) < 10 {
			nq += 91
		}
		tx.Put(sk, nq)
	}
	if err := tx.Commit(); err != nil {
		return fmt.Errorf("tpcc: neworder commit: %w", err)
	}
	b.nextO[dk] = o + 1
	return nil
}

// Payment runs the payment transaction: warehouse YTD, district YTD,
// customer balance, and the history row commit atomically.
func (b *StoreBench) Payment(rng *rand.Rand) error {
	w := rng.Intn(b.W) + 1
	d := rng.Intn(Districts) + 1
	c := rng.Intn(CustomersPer) + 1
	amt := uint64(rng.Intn(5000) + 100)
	wv, _, err := b.ss.Get(tW(w))
	if err != nil {
		return err
	}
	dk := tWD(w, d)
	dv, _, err := b.ss.Get(dk)
	if err != nil {
		return err
	}
	ck := tWDC(w, d, c)
	cv, ok, err := b.ss.Get(ck)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("tpcc: missing customer in payment")
	}

	tx := b.ss.Begin()
	defer tx.Rollback()
	tx.Put(tW(w), wv+amt)
	tx.Put(dk, dv+amt)
	tx.Put(ck, cv-amt)
	tx.Put(tHist(b.histSeq+1), amt)
	if err := tx.Commit(); err != nil {
		return fmt.Errorf("tpcc: payment commit: %w", err)
	}
	b.histSeq++
	return nil
}

// OrderStatus reads a customer's latest order and its lines (range scans;
// read-only, so no transaction).
func (b *StoreBench) OrderStatus(rng *rand.Rand) error {
	w := rng.Intn(b.W) + 1
	d := rng.Intn(Districts) + 1
	c := rng.Intn(CustomersPer) + 1
	var last uint64
	err := b.ss.Scan(tWDCO(w, d, c, 0), tWDCO(w, d, c, 1<<24-1), func(k, v uint64) bool {
		last = v
		return true
	})
	if err != nil {
		return err
	}
	if last == 0 {
		return nil // customer has no orders yet
	}
	ov, ok, err := b.ss.Get(tWDO(tagOrder, w, d, last))
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("tpcc: custorder points at missing order %d", last)
	}
	cnt := int(ov & 0xffff)
	got := 0
	err = b.ss.Scan(tWDOL(w, d, last, 0), tWDOL(w, d, last, 255), func(k, v uint64) bool {
		got++
		return true
	})
	if err != nil {
		return err
	}
	if got != cnt {
		return fmt.Errorf("tpcc: order %d has %d lines, want %d", last, got, cnt)
	}
	return nil
}

// Delivery delivers the oldest undelivered order in every district of one
// warehouse. All neworder removals and customer balance credits across the
// districts commit as one transaction.
func (b *StoreBench) Delivery(rng *rand.Rand) error {
	w := rng.Intn(b.W) + 1
	tx := b.ss.Begin()
	defer tx.Rollback()
	any := false
	for d := 1; d <= Districts; d++ {
		var oldest uint64
		found := false
		err := b.ss.Scan(tWDO(tagNewOrder, w, d, 0), tWDO(tagNewOrder, w, d, 1<<32-1),
			func(k, v uint64) bool {
				oldest = k & 0xffffffff
				found = true
				return false // first = oldest
			})
		if err != nil {
			return err
		}
		if !found {
			continue
		}
		ov, ok, err := b.ss.Get(tWDO(tagOrder, w, d, oldest))
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("tpcc: delivery of missing order %d/%d/%d", w, d, oldest)
		}
		c := int(ov >> 16)
		total := uint64(0)
		err = b.ss.Scan(tWDOL(w, d, oldest, 0), tWDOL(w, d, oldest, 255),
			func(k, v uint64) bool {
				total += v & 0xffff
				return true
			})
		if err != nil {
			return err
		}
		ck := tWDC(w, d, c)
		cv, ok, err := b.ss.Get(ck)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("tpcc: delivery to missing customer")
		}
		tx.Delete(tWDO(tagNewOrder, w, d, oldest))
		tx.Put(ck, cv+total)
		any = true
	}
	if !any {
		return nil // nothing undelivered anywhere; Rollback cleans up
	}
	if err := tx.Commit(); err != nil {
		return fmt.Errorf("tpcc: delivery commit: %w", err)
	}
	return nil
}

// StockLevel counts recently-sold items below a stock threshold (the big
// read-only range scan).
func (b *StoreBench) StockLevel(rng *rand.Rand) error {
	w := rng.Intn(b.W) + 1
	d := rng.Intn(Districts) + 1
	next := b.nextO[tWD(w, d)]
	lowO := uint64(1)
	if next > 20 {
		lowO = next - 20
	}
	seen := map[int]bool{}
	err := b.ss.Scan(tWDOL(w, d, lowO, 0), tWDOL(w, d, next, 255), func(k, v uint64) bool {
		seen[int(v>>16)] = true
		return true
	})
	if err != nil {
		return err
	}
	low := 0
	for it := range seen {
		q, ok, err := b.ss.Get(tWI(w, it))
		if err != nil {
			return err
		}
		if ok && q < 15 {
			low++
		}
	}
	_ = low
	return nil
}

// Run executes n transactions drawn from mix, returning the count executed.
func (b *StoreBench) Run(mix Mix, n int, rng *rand.Rand) (int, error) {
	for i := 0; i < n; i++ {
		r := rng.Intn(100)
		var err error
		switch {
		case r < mix.NewOrder:
			err = b.NewOrder(rng)
		case r < mix.NewOrder+mix.Payment:
			err = b.Payment(rng)
		case r < mix.NewOrder+mix.Payment+mix.Status:
			err = b.OrderStatus(rng)
		case r < mix.NewOrder+mix.Payment+mix.Status+mix.Delivery:
			err = b.Delivery(rng)
		default:
			err = b.StockLevel(rng)
		}
		if err != nil {
			return i, err
		}
	}
	return n, nil
}

// CheckConsistency validates the TPC-C consistency conditions that the
// transactional workload must preserve — a torn commit breaks them:
//
//  1. Every warehouse's YTD equals the sum of its districts' YTD
//     (Payment touches both in one transaction).
//  2. Every district's next_o_id-1 equals the highest order id present in
//     the order table for that district (NewOrder advances the district
//     row and inserts the order atomically), and agrees with the volatile
//     mirror.
//  3. The sum of all history amounts equals the sum of all warehouse YTD
//     (both start at zero; Payment adds the same amount to each).
func (b *StoreBench) CheckConsistency() error {
	var wSum uint64
	for w := 1; w <= b.W; w++ {
		wv, ok, err := b.ss.Get(tW(w))
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("tpcc: warehouse %d missing", w)
		}
		wSum += wv
		var distSum uint64
		for d := 1; d <= Districts; d++ {
			dv, ok, err := b.ss.Get(tWD(w, d))
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("tpcc: district %d/%d missing", w, d)
			}
			distSum += dv & 0xffffffff
			next := dv >> 32
			if m := b.nextO[tWD(w, d)]; m != next {
				return fmt.Errorf("tpcc: district %d/%d next_o mirror %d != store %d", w, d, m, next)
			}
			var maxO uint64
			err = b.ss.Scan(tWDO(tagOrder, w, d, 0), tWDO(tagOrder, w, d, 1<<32-1),
				func(k, v uint64) bool {
					maxO = k & 0xffffffff
					return true
				})
			if err != nil {
				return err
			}
			if maxO != next-1 {
				return fmt.Errorf("tpcc: district %d/%d next_o %d but max order id %d", w, d, next, maxO)
			}
		}
		if wv != distSum {
			return fmt.Errorf("tpcc: warehouse %d YTD %d != district sum %d", w, wv, distSum)
		}
	}
	var histSum uint64
	err := b.ss.Scan(tHist(0), tHist(^uint64(0)>>4), func(k, v uint64) bool {
		histSum += v
		return true
	})
	if err != nil {
		return err
	}
	if histSum != wSum {
		return fmt.Errorf("tpcc: history sum %d != warehouse YTD sum %d", histSum, wSum)
	}
	return nil
}

// FigTPCC measures transactional TPC-C throughput over the sharded store:
// each mix runs txPerMix transactions through the redo-log commit path and
// must pass CheckConsistency afterwards. The "Kops/s" column (here:
// thousands of TPC-C transactions per second, tpmC-style) is what
// cmd/benchdiff gates against the committed BENCH_tpcc.json snapshot.
func FigTPCC(txPerMix, warehouses int) *bench.Table {
	tbl := &bench.Table{
		Title: fmt.Sprintf("TPC-C transactional throughput over the store, %d tx/mix, %d warehouse(s)",
			txPerMix, warehouses),
		Header: []string{"mix", "Kops/s"},
		Notes: "each NewOrder/Payment/Delivery is one redo-log store transaction; " +
			"every mix run must pass the TPC-C consistency checks",
	}
	for _, mix := range Mixes {
		b, err := NewStoreBench(warehouses, store.Options{Shards: 4, ShardSize: 64 << 20})
		if err != nil {
			panic(err)
		}
		rng := rand.New(rand.NewSource(77))
		t0 := time.Now()
		n, err := b.Run(mix, txPerMix, rng)
		if err != nil {
			panic(fmt.Sprintf("tpcc %s: %v", mix.Name, err))
		}
		el := time.Since(t0)
		if err := b.CheckConsistency(); err != nil {
			panic(fmt.Sprintf("tpcc %s: %v", mix.Name, err))
		}
		b.Close()
		tbl.Rows = append(tbl.Rows, []string{mix.Name,
			fmt.Sprintf("%.1f", float64(n)/el.Seconds()/1000)})
	}
	return tbl
}
