package tpcc

import (
	"math/rand"
	"testing"

	"repro/store"
)

func newTestStoreBench(t *testing.T, warehouses int) *StoreBench {
	t.Helper()
	b, err := NewStoreBench(warehouses, store.Options{Shards: 4, ShardSize: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b
}

// TestStoreBenchMixes drives a short run of every mix through the
// transactional store port and validates both the TPC-C consistency
// conditions and the store's own invariants afterwards.
func TestStoreBenchMixes(t *testing.T) {
	b := newTestStoreBench(t, 1)
	rng := rand.New(rand.NewSource(7))
	n := 200
	if testing.Short() {
		n = 60
	}
	for _, mix := range Mixes {
		if _, err := b.Run(mix, n, rng); err != nil {
			t.Fatalf("%s: %v", mix.Name, err)
		}
		if err := b.CheckConsistency(); err != nil {
			t.Fatalf("after %s: %v", mix.Name, err)
		}
	}
	if err := b.Store().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreBenchLoadConsistent: the freshly loaded database already
// satisfies the consistency conditions.
func TestStoreBenchLoadConsistent(t *testing.T) {
	b := newTestStoreBench(t, 2)
	if err := b.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreBenchPaymentAtomicity: after payments, warehouse YTD ==
// district YTD sum == history sum, which only holds if each payment's
// three updates and history insert landed together.
func TestStoreBenchPaymentAtomicity(t *testing.T) {
	b := newTestStoreBench(t, 1)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 150; i++ {
		if err := b.Payment(rng); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	wv, ok, err := b.ss.Get(tW(1))
	if err != nil || !ok {
		t.Fatalf("warehouse read: ok=%v err=%v", ok, err)
	}
	if wv == 0 {
		t.Fatal("no payment volume recorded")
	}
}

// TestStoreBenchNewOrderAdvances: NewOrder advances districts exactly as
// many times as it ran, with order rows present to match.
func TestStoreBenchNewOrderAdvances(t *testing.T) {
	b := newTestStoreBench(t, 1)
	rng := rand.New(rand.NewSource(5))
	const runs = 80
	for i := 0; i < runs; i++ {
		if err := b.NewOrder(rng); err != nil {
			t.Fatal(err)
		}
	}
	total := uint64(0)
	for d := 1; d <= Districts; d++ {
		dv, ok, err := b.ss.Get(tWD(1, d))
		if err != nil || !ok {
			t.Fatalf("district %d: ok=%v err=%v", d, ok, err)
		}
		total += (dv >> 32) - 1 - initialOrder
	}
	if total != runs {
		t.Fatalf("orders created = %d, want %d", total, runs)
	}
	if err := b.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreBenchDeliveryDrains: Delivery consumes undelivered orders and
// credits the customers in one commit.
func TestStoreBenchDeliveryDrains(t *testing.T) {
	b := newTestStoreBench(t, 1)
	rng := rand.New(rand.NewSource(3))
	countNew := func() int {
		n := 0
		err := b.ss.Scan(tagNewOrder<<60, tagNewOrder<<60|(1<<60-1),
			func(uint64, uint64) bool { n++; return true })
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	before := countNew()
	if before == 0 {
		t.Fatal("no undelivered orders after load")
	}
	if err := b.Delivery(rng); err != nil {
		t.Fatal(err)
	}
	after := countNew()
	if after >= before {
		t.Fatalf("Delivery did not drain: %d -> %d", before, after)
	}
	if before-after > Districts {
		t.Fatalf("Delivery drained too much: %d", before-after)
	}
	if err := b.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
