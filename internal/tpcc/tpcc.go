// Package tpcc implements the scaled-down TPC-C workload of Figure 6: five
// transaction types (NewOrder, Payment, OrderStatus, Delivery, StockLevel)
// whose tables are index structures under test. The benchmark exercises the
// operational mix the paper argues B+-trees win on: point lookups, in-place
// updates, inserts, and — crucially for StockLevel/Delivery/OrderStatus —
// range scans over sorted keys.
//
// Rows are packed into uint64 index values (this is an index benchmark, as
// in the paper, not a storage-engine benchmark). Composite keys are packed
// into uint64 bitfields.
package tpcc

import (
	"fmt"
	"math/rand"

	"repro/index"
	"repro/internal/pmem"
)

// table binds a public index.Index to the thread its table's operations run
// on, so transactions need not mention *pmem.Thread. Each table lives in
// its own pool (th may be nil for thread-agnostic oracles in tests).
type table struct {
	ix index.Index
	th *pmem.Thread
}

func (t table) Insert(key, val uint64) error  { return t.ix.Insert(t.th, key, val) }
func (t table) Get(key uint64) (uint64, bool) { return t.ix.Get(t.th, key) }
func (t table) Delete(key uint64) bool        { return t.ix.Delete(t.th, key) }
func (t table) Scan(lo, hi uint64, fn func(key, val uint64) bool) {
	t.ix.Scan(t.th, lo, hi, fn)
}

// Scale parameters (reduced from the TPC-C spec so a run loads in seconds;
// ratios between tables are preserved).
const (
	Districts    = 10
	CustomersPer = 300  // per district (spec: 3000)
	Items        = 1000 // spec: 100000
	initialOrder = 30   // pre-loaded orders per district
)

// Mix is a transaction percentage mix; the four workloads of Figure 6.
type Mix struct {
	Name                                              string
	NewOrder, Payment, Status, Delivery, StockPercent int
}

// Mixes are the paper's W1–W4 (NewOrder/Payment/Status/Delivery/StockLevel).
var Mixes = []Mix{
	{"W1", 34, 43, 5, 4, 14},
	{"W2", 27, 43, 15, 4, 11},
	{"W3", 20, 43, 25, 4, 8},
	{"W4", 13, 43, 35, 4, 5},
}

// Table identifiers; NewBench's factory is called once per table.
var TableNames = []string{
	"warehouse", "district", "customer", "order", "neworder",
	"orderline", "custorder", "stock", "item", "history",
}

// Bench holds the table indexes for one TPC-C instance.
type Bench struct {
	W int // warehouses

	warehouse table // w            -> ytd cents
	district  table // (w,d)        -> next_o_id<<32 | ytd
	customer  table // (w,d,c)      -> balance (biased by 1<<40)
	order     table // (w,d,o)      -> c<<16 | ol_cnt
	neworder  table // (w,d,o)      -> 1
	orderline table // (w,d,o,ol)   -> item<<16 | qty
	custorder table // (w,d,c,o)    -> o
	stock     table // (w,i)        -> quantity
	item      table // i            -> price cents
	history   table // seq          -> amount

	histSeq uint64
	nextO   map[uint64]uint64 // volatile mirror of district next_o_id for key gen
}

// --- key packing -------------------------------------------------------------

func kW(w int) uint64         { return uint64(w) }
func kWD(w, d int) uint64     { return uint64(w)<<8 | uint64(d) }
func kWDC(w, d, c int) uint64 { return uint64(w)<<40 | uint64(d)<<32 | uint64(c) }
func kWDO(w, d int, o uint64) uint64 {
	return uint64(w)<<40 | uint64(d)<<32 | o
}
func kWDOL(w, d int, o uint64, ol int) uint64 {
	return uint64(w)<<48 | uint64(d)<<40 | o<<8 | uint64(ol)
}
func kWDCO(w, d, c int, o uint64) uint64 {
	return uint64(w)<<56 | uint64(d)<<48 | uint64(c)<<24 | o
}
func kWI(w, i int) uint64 { return uint64(w)<<32 | uint64(i) }

// New builds a TPC-C instance with W warehouses; newTable is called once per
// table name to create its backing index and the thread it is driven with.
func New(w int, newTable func(name string) (index.Index, *pmem.Thread, error)) (*Bench, error) {
	b := &Bench{W: w, nextO: map[uint64]uint64{}}
	tables := map[string]*table{
		"warehouse": &b.warehouse, "district": &b.district, "customer": &b.customer,
		"order": &b.order, "neworder": &b.neworder, "orderline": &b.orderline,
		"custorder": &b.custorder, "stock": &b.stock, "item": &b.item, "history": &b.history,
	}
	for _, name := range TableNames {
		ix, th, err := newTable(name)
		if err != nil {
			return nil, fmt.Errorf("tpcc: creating %s: %w", name, err)
		}
		*tables[name] = table{ix: ix, th: th}
	}
	return b, b.load()
}

// load populates the initial database.
func (b *Bench) load() error {
	rng := rand.New(rand.NewSource(1))
	for i := 1; i <= Items; i++ {
		if err := b.item.Insert(uint64(i), uint64(rng.Intn(9900)+100)); err != nil {
			return err
		}
	}
	for w := 1; w <= b.W; w++ {
		if err := b.warehouse.Insert(kW(w), 0); err != nil {
			return err
		}
		for i := 1; i <= Items; i++ {
			if err := b.stock.Insert(kWI(w, i), uint64(rng.Intn(90)+10)); err != nil {
				return err
			}
		}
		for d := 1; d <= Districts; d++ {
			for c := 1; c <= CustomersPer; c++ {
				if err := b.customer.Insert(kWDC(w, d, c), 1<<40); err != nil {
					return err
				}
			}
			for o := uint64(1); o <= initialOrder; o++ {
				c := rng.Intn(CustomersPer) + 1
				cnt := rng.Intn(11) + 5
				if err := b.insertOrder(w, d, o, c, cnt, rng, o <= initialOrder/2); err != nil {
					return err
				}
			}
			b.nextO[kWD(w, d)] = initialOrder + 1
			if err := b.district.Insert(kWD(w, d), (initialOrder+1)<<32); err != nil {
				return err
			}
		}
	}
	return nil
}

func (b *Bench) insertOrder(w, d int, o uint64, c, cnt int, rng *rand.Rand, delivered bool) error {
	if err := b.order.Insert(kWDO(w, d, o), uint64(c)<<16|uint64(cnt)); err != nil {
		return err
	}
	if err := b.custorder.Insert(kWDCO(w, d, c, o), o); err != nil {
		return err
	}
	if !delivered {
		if err := b.neworder.Insert(kWDO(w, d, o), 1); err != nil {
			return err
		}
	}
	for ol := 1; ol <= cnt; ol++ {
		it := rng.Intn(Items) + 1
		qty := rng.Intn(10) + 1
		if err := b.orderline.Insert(kWDOL(w, d, o, ol), uint64(it)<<16|uint64(qty)); err != nil {
			return err
		}
	}
	return nil
}

// --- transactions ------------------------------------------------------------

// NewOrder runs the new-order transaction; it returns an error only on index
// failure (simulated user aborts are not modelled).
func (b *Bench) NewOrder(rng *rand.Rand) error {
	w := rng.Intn(b.W) + 1
	d := rng.Intn(Districts) + 1
	c := rng.Intn(CustomersPer) + 1
	if _, ok := b.customer.Get(kWDC(w, d, c)); !ok {
		return fmt.Errorf("tpcc: missing customer %d/%d/%d", w, d, c)
	}
	dk := kWD(w, d)
	dv, ok := b.district.Get(dk)
	if !ok {
		return fmt.Errorf("tpcc: missing district")
	}
	o := b.nextO[dk]
	b.nextO[dk] = o + 1
	if err := b.district.Insert(dk, (o+1)<<32|dv&0xffffffff); err != nil {
		return err
	}
	cnt := rng.Intn(11) + 5
	if err := b.insertOrder(w, d, o, c, cnt, rng, false); err != nil {
		return err
	}
	// Stock updates for each line.
	for ol := 1; ol <= cnt; ol++ {
		it := rng.Intn(Items) + 1
		if _, ok := b.item.Get(uint64(it)); !ok {
			return fmt.Errorf("tpcc: missing item %d", it)
		}
		sk := kWI(w, it)
		q, ok := b.stock.Get(sk)
		if !ok {
			return fmt.Errorf("tpcc: missing stock %d/%d", w, it)
		}
		nq := q - uint64(rng.Intn(10)+1)
		if int64(nq) < 10 {
			nq += 91
		}
		if err := b.stock.Insert(sk, nq); err != nil {
			return err
		}
	}
	return nil
}

// Payment runs the payment transaction.
func (b *Bench) Payment(rng *rand.Rand) error {
	w := rng.Intn(b.W) + 1
	d := rng.Intn(Districts) + 1
	c := rng.Intn(CustomersPer) + 1
	amt := uint64(rng.Intn(5000) + 100)
	wv, _ := b.warehouse.Get(kW(w))
	if err := b.warehouse.Insert(kW(w), wv+amt); err != nil {
		return err
	}
	dk := kWD(w, d)
	dv, _ := b.district.Get(dk)
	if err := b.district.Insert(dk, dv+amt); err != nil {
		return err
	}
	ck := kWDC(w, d, c)
	cv, ok := b.customer.Get(ck)
	if !ok {
		return fmt.Errorf("tpcc: missing customer in payment")
	}
	if err := b.customer.Insert(ck, cv-amt); err != nil {
		return err
	}
	b.histSeq++
	return b.history.Insert(b.histSeq, amt)
}

// OrderStatus reads a customer's latest order and its lines (range scans).
func (b *Bench) OrderStatus(rng *rand.Rand) error {
	w := rng.Intn(b.W) + 1
	d := rng.Intn(Districts) + 1
	c := rng.Intn(CustomersPer) + 1
	var last uint64
	b.custorder.Scan(kWDCO(w, d, c, 0), kWDCO(w, d, c, 1<<24-1), func(k, v uint64) bool {
		last = v
		return true
	})
	if last == 0 {
		return nil // customer has no orders yet
	}
	ov, ok := b.order.Get(kWDO(w, d, last))
	if !ok {
		return fmt.Errorf("tpcc: custorder points at missing order %d", last)
	}
	cnt := int(ov & 0xffff)
	got := 0
	b.orderline.Scan(kWDOL(w, d, last, 0), kWDOL(w, d, last, 255), func(k, v uint64) bool {
		got++
		return true
	})
	if got != cnt {
		return fmt.Errorf("tpcc: order %d has %d lines, want %d", last, got, cnt)
	}
	return nil
}

// Delivery delivers the oldest undelivered order in every district.
func (b *Bench) Delivery(rng *rand.Rand) error {
	w := rng.Intn(b.W) + 1
	for d := 1; d <= Districts; d++ {
		var oldest uint64
		found := false
		b.neworder.Scan(kWDO(w, d, 0), kWDO(w, d, 1<<32-1), func(k, v uint64) bool {
			oldest = k & 0xffffffff
			found = true
			return false // first = oldest
		})
		if !found {
			continue
		}
		if !b.neworder.Delete(kWDO(w, d, oldest)) {
			return fmt.Errorf("tpcc: neworder delete failed")
		}
		ov, ok := b.order.Get(kWDO(w, d, oldest))
		if !ok {
			return fmt.Errorf("tpcc: delivery of missing order")
		}
		c := int(ov >> 16)
		total := uint64(0)
		b.orderline.Scan(kWDOL(w, d, oldest, 0), kWDOL(w, d, oldest, 255), func(k, v uint64) bool {
			total += v & 0xffff
			return true
		})
		ck := kWDC(w, d, c)
		cv, ok := b.customer.Get(ck)
		if !ok {
			return fmt.Errorf("tpcc: delivery to missing customer")
		}
		if err := b.customer.Insert(ck, cv+total); err != nil {
			return err
		}
	}
	return nil
}

// StockLevel counts recently-sold items below a stock threshold (the big
// range scan).
func (b *Bench) StockLevel(rng *rand.Rand) error {
	w := rng.Intn(b.W) + 1
	d := rng.Intn(Districts) + 1
	next := b.nextO[kWD(w, d)]
	lowO := uint64(1)
	if next > 20 {
		lowO = next - 20
	}
	seen := map[int]bool{}
	b.orderline.Scan(kWDOL(w, d, lowO, 0), kWDOL(w, d, next, 255), func(k, v uint64) bool {
		seen[int(v>>16)] = true
		return true
	})
	low := 0
	for it := range seen {
		q, ok := b.stock.Get(kWI(w, it))
		if ok && q < 15 {
			low++
		}
	}
	_ = low
	return nil
}

// Run executes n transactions drawn from mix, returning the count executed.
func (b *Bench) Run(mix Mix, n int, rng *rand.Rand) (int, error) {
	for i := 0; i < n; i++ {
		r := rng.Intn(100)
		var err error
		switch {
		case r < mix.NewOrder:
			err = b.NewOrder(rng)
		case r < mix.NewOrder+mix.Payment:
			err = b.Payment(rng)
		case r < mix.NewOrder+mix.Payment+mix.Status:
			err = b.OrderStatus(rng)
		case r < mix.NewOrder+mix.Payment+mix.Status+mix.Delivery:
			err = b.Delivery(rng)
		default:
			err = b.StockLevel(rng)
		}
		if err != nil {
			return i, err
		}
	}
	return n, nil
}
