package bench

import (
	"fmt"
	"time"

	"repro/client"
	"repro/internal/pmem"
)

// ScalingConfig shapes FigServerScaling.
type ScalingConfig struct {
	// Ops is the operation count per cell.
	Ops int
	// Workers sweeps the server-wide worker count. Default {1, 4}.
	Workers []int
	// Conns sweeps the TCP connection count. Default {1, 4}.
	Conns []int
	// Pipeline sweeps the per-client async window. Default {1, 8, 32}.
	Pipeline []int
	// Clients is the client goroutine count, fixed across cells so the
	// sweep isolates the server-side axes. Default 8.
	Clients int
	// ReadFrac is the Get fraction of the mix. Default 0.9.
	ReadFrac float64
	// Mem carries the simulated-latency configuration for the store.
	Mem pmem.Config
}

// FigServerScaling sweeps the steered server pipeline along its three
// scaling axes — worker count, connection count, and per-client pipeline
// depth — under the hot-path mix (90% get, 8 client goroutines). The cell
// names are fixed strings ("w4-c4-p8"), so cmd/benchdiff can track every
// cell of the committed BENCH_server_scaling.json snapshot across PRs the
// same way it tracks the hot-path rows. Expected shape: depth dominates
// (p1→p32 is the syscall-amortization win), conns add concurrency between
// reader/writer pairs, and extra workers only pay off with real cores.
func FigServerScaling(cfg ScalingConfig) *Table {
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 4}
	}
	if len(cfg.Conns) == 0 {
		cfg.Conns = []int{1, 4}
	}
	if len(cfg.Pipeline) == 0 {
		cfg.Pipeline = []int{1, 8, 32}
	}
	if cfg.Clients == 0 {
		cfg.Clients = 8
	}
	if cfg.ReadFrac == 0 {
		cfg.ReadFrac = 0.9
	}
	tbl := &Table{
		Title: fmt.Sprintf("Server scaling: workers x conns x pipeline depth, %d ops/cell, %d clients, %d%% read",
			cfg.Ops, cfg.Clients, int(cfg.ReadFrac*100)),
		Header: []string{"cell", "workers", "conns", "depth", "Kops/s", "us/op"},
		Notes:  "cell = w<workers>-c<conns>-p<depth>. Tracked in BENCH_server_scaling.json; pipeline depth is the dominant axis on loopback.",
	}
	space := cfg.Ops
	if space < 1000 {
		space = 1000
	}
	perG := cfg.Ops / cfg.Clients
	if perG == 0 {
		perG = 1
	}
	putPct := putPercent(cfg.ReadFrac)
	for _, workers := range cfg.Workers {
		for _, conns := range cfg.Conns {
			for _, depth := range cfg.Pipeline {
				var elapsed time.Duration
				withServerPool(cfg.Mem, workers, conns, func(pool *client.Pool) {
					preloadPool(pool, space)
					elapsed = runPipelinedMix(pool, cfg.Clients, perG, putPct, space, depth)
				})
				tput := float64(perG*cfg.Clients) / elapsed.Seconds()
				tbl.Rows = append(tbl.Rows, []string{
					fmt.Sprintf("w%d-c%d-p%d", workers, conns, depth),
					fmt.Sprintf("%d", workers),
					fmt.Sprintf("%d", conns),
					fmt.Sprintf("%d", depth),
					fmt.Sprintf("%.0f", tput/1000),
					fmt.Sprintf("%.2f", 1e6/tput),
				})
			}
		}
	}
	return tbl
}
