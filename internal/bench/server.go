package bench

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/client"
	"repro/internal/pmem"
	"repro/server"
	"repro/store"
)

// ServerConfig shapes a network-serving run (see FigServer).
type ServerConfig struct {
	// Ops is the operation count per cell.
	Ops int
	// Clients is the sweep axis: closed-loop client goroutines per cell.
	// The first entry doubles as the speedup baseline; with Clients[0]=1
	// (and one connection) that baseline is one request per round trip.
	Clients []int
	// Conns is the TCP connection count shared by the client goroutines
	// (capped at the cell's client count). Default 4.
	Conns int
	// Workers is the server-wide request worker count (0 = the server's
	// default, runtime.GOMAXPROCS).
	Workers int
	// Mem carries the simulated-latency configuration for the store.
	Mem pmem.Config
}

// FigServer measures remote throughput over the pmkv wire protocol as the
// number of concurrent closed-loop clients grows: an in-process server on a
// loopback listener, a client pool in the same process, a 50/50 put/get mix.
// With one client per connection every request pays a full round trip; as
// clients share connections the protocol pipelines, and the table's speedup
// column reports what that buys. This is the repository's network headline:
// the paper's log-free persistent writes keep each server-side op cheap
// enough that loopback RTT, not the tree, is the bottleneck to amortise.
func FigServer(cfg ServerConfig) *Table {
	if len(cfg.Clients) == 0 {
		cfg.Clients = []int{1, 8, 32, 128}
	}
	if cfg.Conns == 0 {
		cfg.Conns = 4
	}
	tbl := &Table{
		Title: fmt.Sprintf("Remote serving: pipelined clients vs throughput, %d ops/cell, %d conns, write latency %v",
			cfg.Ops, cfg.Conns, cfg.Mem.WriteLatency),
		Header: []string{"clients", "conns", "Kops/s", "speedup", "p50 us", "p99 us"},
		Notes:  "expected shape: clients=1 pays one RTT per op; pipelined cells should beat it by >= 2x until the store saturates",
	}
	var base float64
	for _, clients := range cfg.Clients {
		tput, p50, p99 := serverRun(clients, cfg)
		if base == 0 {
			base = tput
		}
		conns := min(cfg.Conns, clients)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", clients),
			fmt.Sprintf("%d", conns),
			fmt.Sprintf("%.0f", tput/1000),
			fmt.Sprintf("%.2fx", tput/base),
			fmt.Sprintf("%.0f", float64(p50.Microseconds())),
			fmt.Sprintf("%.0f", float64(p99.Microseconds())),
		})
	}
	return tbl
}

// withServerPool owns the remote-benchmark lifecycle shared by serverRun and
// hotpathServer: a fresh 8-shard store and server on 127.0.0.1:0, a client
// pool of `conns` connections, then body(pool), then graceful drain and
// teardown in the order the server contract requires (pool, Shutdown, Serve
// return, store Close).
func withServerPool(mem pmem.Config, workers, conns int, body func(pool *client.Pool)) {
	st, err := store.Open(store.Options{
		Shards:    8,
		ShardSize: 64 << 20,
		Mem:       mem,
	})
	if err != nil {
		panic(err)
	}
	srv := server.New(st, server.Options{Workers: workers})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	pool, err := client.DialPool(ln.Addr().String(), conns, client.Options{})
	if err != nil {
		panic(err)
	}
	body(pool)
	pool.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	srv.Shutdown(ctx)
	cancel()
	<-done
	st.Close()
}

// serverRun drives one cell: `clients` goroutines in a closed loop over a
// shared pool, alternating Put and Get on a per-goroutine key stream.
// Returns ops/sec, p50 and p99.
func serverRun(clients int, cfg ServerConfig) (tput float64, p50, p99 time.Duration) {
	perG := cfg.Ops / clients
	if perG == 0 {
		perG = 1 // tiny -n with a wide client sweep: still measure something
	}
	lats := make([][]time.Duration, clients)
	var elapsed time.Duration
	withServerPool(cfg.Mem, cfg.Workers, min(cfg.Conns, clients), func(pool *client.Pool) {
		var wg sync.WaitGroup
		t0 := time.Now()
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				c := pool.Conn()
				my := make([]time.Duration, 0, perG)
				base := uint64(g) << 32
				for i := 0; i < perG; i++ {
					k := base | uint64(i/2+1)
					start := time.Now()
					var err error
					if i%2 == 0 {
						err = c.Put(k, k^0xdead)
					} else {
						_, _, err = c.Get(k)
					}
					if err != nil {
						panic(err)
					}
					my = append(my, time.Since(start))
				}
				lats[g] = my
			}(g)
		}
		wg.Wait()
		elapsed = time.Since(t0)
	})

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration { return all[int(p*float64(len(all)-1))] }
	return float64(len(all)) / elapsed.Seconds(), pct(0.50), pct(0.99)
}
