// Package bench drives every index implementation through the public
// index.Index interface and regenerates the paper's figures as text tables
// (see cmd/benchfig and the per-experiment index in DESIGN.md). Kind
// dispatch lives in the index registry; this package only shapes workloads.
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/index"
	"repro/internal/pmem"
)

// AllSingleThreaded is the series set of Figures 4–6.
var AllSingleThreaded = []index.Kind{index.FastFair, index.FPTree, index.WBTree, index.WORT, index.SkipList}

// AllConcurrent is the series set of Figure 7.
var AllConcurrent = []index.Kind{index.FastFair, index.FastFairLeafLock, index.FPTree, index.BLink, index.SkipList}

// Keys returns n distinct-with-high-probability uniform random keys.
func Keys(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
		if keys[i] == 0 {
			keys[i] = 1
		}
	}
	return keys
}

// Load inserts the keys with the key as value (values are therefore unique
// and non-zero, satisfying the InlineValues contract), returning elapsed
// time.
func Load(ix index.Impl, th *pmem.Thread, keys []uint64) (time.Duration, error) {
	t0 := time.Now()
	for _, k := range keys {
		if err := ix.Insert(th, k, k); err != nil {
			return 0, err
		}
	}
	return time.Since(t0), nil
}

// SearchAll probes every key, returning elapsed time; it fails fast on a
// wrong result so benchmarks double as correctness checks.
func SearchAll(ix index.Impl, th *pmem.Thread, keys []uint64) (time.Duration, error) {
	t0 := time.Now()
	for _, k := range keys {
		v, ok := ix.Get(th, k)
		if !ok || v != k {
			return 0, fmt.Errorf("bench: Get(%d) = (%d,%v)", k, v, ok)
		}
	}
	return time.Since(t0), nil
}

// usPerOp formats a per-op latency in microseconds.
func usPerOp(d time.Duration, ops int) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/float64(ops))
}
