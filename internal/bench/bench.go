// Package bench drives every index implementation through one interface and
// regenerates the paper's figures as text tables (see cmd/benchfig and the
// per-experiment index in DESIGN.md).
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/blink"
	"repro/internal/core"
	"repro/internal/fptree"
	"repro/internal/pmem"
	"repro/internal/skiplist"
	"repro/internal/wbtree"
	"repro/internal/wort"
)

// Index is the operation set shared by every structure under test.
type Index interface {
	Insert(th *pmem.Thread, key, val uint64) error
	Get(th *pmem.Thread, key uint64) (uint64, bool)
	Delete(th *pmem.Thread, key uint64) bool
	Scan(th *pmem.Thread, lo, hi uint64, fn func(key, val uint64) bool)
	Pool() *pmem.Pool
}

// Kind names an index implementation, using the paper's series letters.
type Kind string

const (
	FastFair         Kind = "FAST+FAIR"          // F
	FastFairLeafLock Kind = "FAST+FAIR+LeafLock" // Fig 7 variant
	FastFairLogging  Kind = "FAST+Logging"       // L
	FPTree           Kind = "FP-tree"            // P
	WBTree           Kind = "wB+-tree"           // W
	WORT             Kind = "WORT"               // O
	SkipList         Kind = "SkipList"           // S
	BLink            Kind = "B-link"             // Fig 7 reference
)

// AllSingleThreaded is the series set of Figures 4–6.
var AllSingleThreaded = []Kind{FastFair, FPTree, WBTree, WORT, SkipList}

// AllConcurrent is the series set of Figure 7.
var AllConcurrent = []Kind{FastFair, FastFairLeafLock, FPTree, BLink, SkipList}

// Config shapes an index instantiation.
type Config struct {
	Kind     Kind
	PoolSize int64       // arena bytes (default 1 GiB)
	Mem      pmem.Config // latency/model fields are honoured; Size comes from PoolSize
	NodeSize int         // B+-tree node / FP-tree leaf size override
	// InlineValues applies core.Options.InlineValues to the FAST+FAIR
	// variants (requires unique non-zero values, which the figure
	// workloads guarantee by using the key as the value). This matches
	// the paper's setup, where leaf pointers are the stored values.
	InlineValues bool
}

// NewIndex builds a fresh pool and index of the requested kind.
func NewIndex(cfg Config) (Index, *pmem.Thread, error) {
	mem := cfg.Mem
	mem.Size = cfg.PoolSize
	if mem.Size == 0 {
		mem.Size = 1 << 30
	}
	p := pmem.New(mem)
	th := p.NewThread()
	var (
		ix  Index
		err error
	)
	switch cfg.Kind {
	case FastFair:
		ix, err = core.New(p, th, core.Options{NodeSize: cfg.NodeSize, InlineValues: cfg.InlineValues})
	case FastFairLeafLock:
		ix, err = core.New(p, th, core.Options{NodeSize: cfg.NodeSize, LeafLocks: true, InlineValues: cfg.InlineValues})
	case FastFairLogging:
		ix, err = core.New(p, th, core.Options{NodeSize: cfg.NodeSize, LoggedSplit: true, InlineValues: cfg.InlineValues})
	case FPTree:
		ix, err = fptree.New(p, th, fptree.Options{LeafSize: cfg.NodeSize})
	case WBTree:
		ix, err = wbtree.New(p, th, wbtree.Options{NodeSize: cfg.NodeSize})
	case WORT:
		ix, err = wort.New(p, th, wort.Options{})
	case SkipList:
		ix, err = skiplist.New(p, th, skiplist.Options{})
	case BLink:
		ix, err = blink.New(p, th, blink.Options{NodeSize: cfg.NodeSize})
	default:
		return nil, nil, fmt.Errorf("bench: unknown kind %q", cfg.Kind)
	}
	if err != nil {
		return nil, nil, err
	}
	return ix, th, nil
}

// Keys returns n distinct-with-high-probability uniform random keys.
func Keys(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
		if keys[i] == 0 {
			keys[i] = 1
		}
	}
	return keys
}

// Load inserts the keys with the key as value (values are therefore unique
// and non-zero, satisfying the InlineValues contract), returning elapsed
// time.
func Load(ix Index, th *pmem.Thread, keys []uint64) (time.Duration, error) {
	t0 := time.Now()
	for _, k := range keys {
		if err := ix.Insert(th, k, k); err != nil {
			return 0, err
		}
	}
	return time.Since(t0), nil
}

// SearchAll probes every key, returning elapsed time; it fails fast on a
// wrong result so benchmarks double as correctness checks.
func SearchAll(ix Index, th *pmem.Thread, keys []uint64) (time.Duration, error) {
	t0 := time.Now()
	for _, k := range keys {
		v, ok := ix.Get(th, k)
		if !ok || v != k {
			return 0, fmt.Errorf("bench: Get(%d) = (%d,%v)", k, v, ok)
		}
	}
	return time.Since(t0), nil
}

// usPerOp formats a per-op latency in microseconds.
func usPerOp(d time.Duration, ops int) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/float64(ops))
}
