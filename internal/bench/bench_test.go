package bench

import (
	"strings"
	"testing"
	"time"

	"repro/index"
	"repro/internal/pmem"
)

const smokeN = 2000

func TestKeysDeterministic(t *testing.T) {
	a, b := Keys(100, 7), Keys(100, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Keys not deterministic per seed")
		}
	}
	c := Keys(100, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 10 {
		t.Fatal("different seeds produce near-identical keys")
	}
}

func TestTablePrinting(t *testing.T) {
	tbl := &Table{
		Title:  "t",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  "n",
	}
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== t ==", "a", "bb", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig3Smoke(t *testing.T) {
	tbl := Fig3(smokeN)
	if len(tbl.Rows) != 5 {
		t.Fatalf("Fig3 rows = %d, want 5", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if len(r) != 5 {
			t.Fatalf("Fig3 row width = %d", len(r))
		}
	}
}

func TestFig4Smoke(t *testing.T) {
	tbl := Fig4(smokeN)
	if len(tbl.Rows) != 5 {
		t.Fatalf("Fig4 rows = %d", len(tbl.Rows))
	}
}

func TestFig5Smoke(t *testing.T) {
	if n := len(Fig5b(smokeN).Rows); n != 5 {
		t.Fatalf("Fig5b rows = %d", n)
	}
	if n := len(Fig5c(smokeN).Rows); n != 5 {
		t.Fatalf("Fig5c rows = %d", n)
	}
}

func TestFig7Smoke(t *testing.T) {
	tbl := Fig7("search", smokeN, []int{1, 2})
	if len(tbl.Rows) != 2 {
		t.Fatalf("Fig7 rows = %d", len(tbl.Rows))
	}
	tbl = Fig7("mixed", smokeN, []int{2})
	if len(tbl.Rows) != 1 {
		t.Fatalf("Fig7 mixed rows = %d", len(tbl.Rows))
	}
}

func TestFigShardsSmoke(t *testing.T) {
	tbl := FigShards(ShardConfig{Ops: smokeN, ShardCounts: []int{1, 2}, Goroutines: 4})
	if len(tbl.Rows) != 2 {
		t.Fatalf("FigShards rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if len(r) != 5 {
			t.Fatalf("FigShards row width = %d", len(r))
		}
	}
	if tbl.Rows[0][2] != "1.00x" {
		t.Fatalf("first shard count should be the speedup baseline, got %q", tbl.Rows[0][2])
	}
}

func TestFlushCountersMatchPaperOrdering(t *testing.T) {
	tbl := Flushes(5000)
	get := func(name string) float64 {
		for _, r := range tbl.Rows {
			if r[0] == name {
				var f float64
				if _, err := sscanf(r[1], &f); err != nil {
					t.Fatal(err)
				}
				return f
			}
		}
		t.Fatalf("row %s missing", name)
		return 0
	}
	ff := get(string(index.FastFair))
	wb := get(string(index.WBTree))
	wo := get(string(index.WORT))
	// The paper's ordering: WORT flushes least; wB+-tree flushes more
	// than FAST+FAIR.
	if !(wo < ff) {
		t.Errorf("WORT flushes/insert %.2f should be < FAST+FAIR %.2f", wo, ff)
	}
	if !(wb > ff) {
		t.Errorf("wB+-tree flushes/insert %.2f should be > FAST+FAIR %.2f", wb, ff)
	}
	t.Logf("flushes/insert: FF=%.2f wB=%.2f WORT=%.2f", ff, wb, wo)
}

func sscanf(s string, f *float64) (int, error) {
	var err error
	*f, err = parseFloat(s)
	if err != nil {
		return 0, err
	}
	return 1, nil
}

func parseFloat(s string) (float64, error) {
	var v float64
	var neg bool
	i := 0
	if i < len(s) && s[i] == '-' {
		neg = true
		i++
	}
	frac := false
	div := 1.0
	for ; i < len(s); i++ {
		c := s[i]
		if c == '.' {
			frac = true
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		if frac {
			div *= 10
			v += float64(c-'0') / div
		} else {
			v = v*10 + float64(c-'0')
		}
	}
	if neg {
		v = -v
	}
	return v, nil
}

// TestLatencyShapesHold verifies the central Figure 5(c) relationship at a
// small scale: with high write latency, FAST+FAIR inserts beat wB+-tree
// (more flushes) and SkipList. The latency is set high enough (1200ns) that
// the flush-count gap dominates scheduler noise, and each side takes the
// best of three runs.
func TestLatencyShapesHold(t *testing.T) {
	if raceEnabled {
		t.Skip("timing assertion is not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("wall-clock shape; CI runs with -short on shared runners")
	}
	keys := Keys(5000, 11)
	perOp := func(k index.Kind) time.Duration {
		best := time.Duration(0)
		for rep := 0; rep < 3; rep++ {
			ix, th, err := index.New(k,
				pmem.Config{Size: 64 << 20, WriteLatency: 1200 * time.Nanosecond},
				index.Options{})
			if err != nil {
				t.Fatal(err)
			}
			el, err := Load(ix, th, keys)
			if err != nil {
				t.Fatal(err)
			}
			if rep == 0 || el < best {
				best = el
			}
		}
		return best
	}
	ff := perOp(index.FastFair)
	wb := perOp(index.WBTree)
	if wb <= ff {
		t.Errorf("expected FAST+FAIR (%v) to beat wB+-tree (%v) at 1200ns writes", ff, wb)
	}
}
