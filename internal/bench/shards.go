package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pmem"
	"repro/store"
)

// ShardConfig shapes a shard-scaling run (see FigShards).
type ShardConfig struct {
	// Ops is the total operation count per cell, split across goroutines.
	Ops int
	// ShardCounts is the sweep axis (e.g. 1,2,4,8).
	ShardCounts []int
	// Goroutines is the concurrent session count. Default 8.
	Goroutines int
	// Mem carries the simulated-latency configuration for every shard.
	Mem pmem.Config
}

// FigShards measures the sharded store's concurrent throughput as the shard
// count grows, for an insert-only and a mixed insert+get workload. Columns
// report Kops/sec plus the speedup over the first shard count. This is the
// repository's scaling headline beyond the paper: one FAST+FAIR tree already
// scales readers lock-free; hash partitioning multiplies writer and
// allocator parallelism. Speedups require real cores — on a single-core
// host the curve is flat, as with Figure 7.
func FigShards(cfg ShardConfig) *Table {
	if cfg.Goroutines == 0 {
		cfg.Goroutines = 8
	}
	tbl := &Table{
		Title: fmt.Sprintf("Store scaling: shards vs throughput, %d ops, %d goroutines, write latency %v",
			cfg.Ops, cfg.Goroutines, cfg.Mem.WriteLatency),
		Header: []string{"shards", "insert Kops/s", "insert speedup", "insert+get Kops/s", "insert+get speedup"},
		Notes:  "expected shape: near-linear insert scaling until shards exceed cores; insert+get scales further (gets are lock-free)",
	}
	var baseIns, baseMix float64
	for _, shards := range cfg.ShardCounts {
		ins := shardRun(shards, cfg, false)
		mix := shardRun(shards, cfg, true)
		if baseIns == 0 {
			baseIns, baseMix = ins, mix
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", shards),
			fmt.Sprintf("%.0f", ins/1000),
			fmt.Sprintf("%.2fx", ins/baseIns),
			fmt.Sprintf("%.0f", mix/1000),
			fmt.Sprintf("%.2fx", mix/baseMix),
		})
	}
	return tbl
}

// shardRun drives one cell: cfg.Goroutines sessions over a fresh store with
// the given shard count, returning ops/sec. Keys come from one shared
// monotonic counter — the canonical B+-tree write hotspot (timestamps, IDs):
// on a single tree every writer chases the same rightmost leaf latch, while
// hash partitioning spreads the append point across shards. With
// mixed=false every op is a Put of the next key; with mixed=true the loop
// alternates Put and Get of a recently written key.
func shardRun(shards int, cfg ShardConfig, mixed bool) float64 {
	st, err := store.Open(store.Options{
		Shards:    shards,
		ShardSize: 64 << 20,
		Mem:       cfg.Mem,
	})
	if err != nil {
		panic(err)
	}
	defer st.Close()
	perG := cfg.Ops / cfg.Goroutines
	var ctr atomic.Uint64
	var wg sync.WaitGroup
	t0 := time.Now()
	for g := 0; g < cfg.Goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ss := st.NewSession()
			defer ss.Close()
			var last uint64
			for i := 0; i < perG; i++ {
				if mixed && i%2 == 1 && last != 0 {
					// Re-read this session's own latest key; it
					// must be present (completed Puts are durable
					// and visible).
					if _, ok, err := ss.Get(last); err != nil || !ok {
						panic("store: just-written key missing")
					}
					continue
				}
				k := ctr.Add(1)
				if err := ss.Put(k, k^0xdead); err != nil {
					panic(err)
				}
				last = k
			}
		}()
	}
	wg.Wait()
	el := time.Since(t0)
	return float64(perG*cfg.Goroutines) / el.Seconds()
}
