package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/client"
	"repro/internal/pmem"
	"repro/store"
)

// HotpathConfig shapes the FigHotpath run.
type HotpathConfig struct {
	// Ops is the operation count per cell.
	Ops int
	// Goroutines drives the store cell's concurrency and the server
	// cell's closed-loop client count. Default 8.
	Goroutines int
	// ReadFrac is the Get fraction of the mix. Default 0.9.
	ReadFrac float64
	// Pipeline is the per-client async window on the server cell: each
	// goroutine keeps this many calls in flight instead of paying a full
	// round trip per op, which is how real pmkv clients are expected to
	// run hot paths. Default 8; <0 means synchronous (depth 1).
	Pipeline int
	// Mem carries the simulated-latency configuration for the store cell.
	// The server cell always runs at DRAM latency (its bottleneck is the
	// wire, which is the thing being tracked).
	Mem pmem.Config
}

// FigHotpath is the repository's read-path trend line: a get-heavy (90/10)
// mix against the sharded store in-process, and the same mix through the
// network server over loopback. benchfig -json snapshots it to
// BENCH_hotpath.json so the effect of every read-path change (line-granular
// search, allocation-free serving) stays visible PR over PR.
func FigHotpath(cfg HotpathConfig) *Table {
	if cfg.Goroutines == 0 {
		cfg.Goroutines = 8
	}
	if cfg.ReadFrac == 0 {
		cfg.ReadFrac = 0.9
	}
	if cfg.Pipeline == 0 {
		cfg.Pipeline = 8
	}
	tbl := &Table{
		Title: fmt.Sprintf("Hot path: get-heavy (%d%% read) throughput, %d ops/cell, %d goroutines",
			int(cfg.ReadFrac*100), cfg.Ops, cfg.Goroutines),
		Header: []string{"cell", "Kops/s", "us/op"},
		Notes: fmt.Sprintf("store = in-process sharded store; server = same mix over the wire (loopback, async window %d per client). Tracked in BENCH_hotpath.json.",
			max(cfg.Pipeline, 1)),
	}
	for _, cell := range []struct {
		name string
		run  func(HotpathConfig) float64
	}{
		{"store", hotpathStore},
		{"server", hotpathServer},
	} {
		tput := cell.run(cfg)
		tbl.Rows = append(tbl.Rows, []string{
			cell.name,
			fmt.Sprintf("%.0f", tput/1000),
			fmt.Sprintf("%.2f", 1e6/tput),
		})
	}
	return tbl
}

// hotpathKey spreads i over the keyspace deterministically.
func hotpathKey(i, g, space int) uint64 {
	return uint64((i*2654435761+g*0x9e3779b9)%space) + 1
}

// putPercent converts a read fraction to the integer Put percentage used by
// isPut.
func putPercent(readFrac float64) int {
	if readFrac >= 1 {
		return 0
	}
	if readFrac <= 0 {
		return 100
	}
	return int((1-readFrac)*100 + 0.5)
}

// isPut spreads putPct Puts per 100 ops evenly over the op index (Bresenham
// dithering), so any fraction — not just divisors of 1 — mixes correctly.
func isPut(i, putPct int) bool {
	return ((i+1)*putPct)/100 != (i*putPct)/100
}

// hotpathStore measures the in-process store: preload, then a closed loop of
// ReadFrac Gets / (1-ReadFrac) Puts per goroutine. Returns ops/sec.
func hotpathStore(cfg HotpathConfig) float64 {
	mem := cfg.Mem
	st, err := store.Open(store.Options{Shards: 8, ShardSize: 64 << 20, Mem: mem})
	if err != nil {
		panic(err)
	}
	defer st.Close()
	space := cfg.Ops
	if space < 1000 {
		space = 1000
	}
	pre := st.NewSession()
	preload := make([]store.KV, 0, space/2)
	for i := 0; i < space/2; i++ {
		k := hotpathKey(i*2+1, 0, space)
		preload = append(preload, store.KV{Key: k, Val: k})
	}
	if err := pre.PutBatch(preload); err != nil {
		panic(err)
	}
	pre.Close()

	perG := cfg.Ops / cfg.Goroutines
	if perG == 0 {
		perG = 1
	}
	putPct := putPercent(cfg.ReadFrac)
	var wg sync.WaitGroup
	t0 := time.Now()
	for g := 0; g < cfg.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ss := st.NewSession()
			defer ss.Close()
			for i := 0; i < perG; i++ {
				k := hotpathKey(i, g, space)
				var err error
				if isPut(i, putPct) {
					err = ss.Put(k, k^0xbeef)
				} else {
					_, _, err = ss.Get(k)
				}
				if err != nil {
					panic(err)
				}
			}
		}(g)
	}
	wg.Wait()
	return float64(perG*cfg.Goroutines) / time.Since(t0).Seconds()
}

// hotpathServer measures the same mix through pmkv-server over loopback
// with a pipelining client pool (lifecycle shared with the other remote
// figures via withServerPool): each goroutine keeps a cfg.Pipeline-deep
// async window in flight. Returns ops/sec.
func hotpathServer(cfg HotpathConfig) float64 {
	conns := 4
	if conns > cfg.Goroutines {
		conns = cfg.Goroutines
	}
	space := cfg.Ops
	if space < 1000 {
		space = 1000
	}
	perG := cfg.Ops / cfg.Goroutines
	if perG == 0 {
		perG = 1
	}
	putPct := putPercent(cfg.ReadFrac)
	var elapsed time.Duration
	withServerPool(pmem.Config{}, 0, conns, func(pool *client.Pool) {
		preloadPool(pool, space)
		elapsed = runPipelinedMix(pool, cfg.Goroutines, perG, putPct, space, cfg.Pipeline)
	})
	return float64(perG*cfg.Goroutines) / elapsed.Seconds()
}

// preloadPool seeds every other key of the keyspace, the shared warm state
// of the get-heavy remote figures.
func preloadPool(pool *client.Pool, space int) {
	preload := make([]client.KV, 0, space/2)
	for i := 0; i < space/2; i++ {
		k := hotpathKey(i*2+1, 0, space)
		preload = append(preload, client.KV{Key: k, Val: k})
	}
	if err := pool.PutBatch(preload); err != nil {
		panic(err)
	}
}

// runPipelinedMix drives the standard get/put mix: `goroutines` clients,
// each issuing perG ops over its pool connection while keeping `depth`
// calls in flight (depth <= 1 degenerates to the old synchronous closed
// loop). Returns the wall time of the whole run.
func runPipelinedMix(pool *client.Pool, goroutines, perG, putPct, space, depth int) time.Duration {
	if depth < 1 {
		depth = 1
	}
	var wg sync.WaitGroup
	t0 := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := pool.Conn()
			window := make([]*client.Call, 0, depth)
			for i := 0; i < perG; i++ {
				k := hotpathKey(i, g, space)
				var call *client.Call
				if isPut(i, putPct) {
					call = c.PutAsync(k, k^0xbeef)
				} else {
					call = c.GetAsync(k)
				}
				window = append(window, call)
				if len(window) >= depth {
					if err := window[0].Wait(); err != nil {
						panic(err)
					}
					window = window[:copy(window, window[1:])]
				}
			}
			for _, call := range window {
				if err := call.Wait(); err != nil {
					panic(err)
				}
			}
		}(g)
	}
	wg.Wait()
	return time.Since(t0)
}
