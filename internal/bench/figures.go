package bench

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/index"
	"repro/internal/core"
	"repro/internal/pmem"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	printRow(t.Header)
	for _, r := range t.Rows {
		printRow(r)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

// Fig3 reproduces Figure 3: linear vs binary in-node search across node
// sizes, single-threaded FAST+FAIR at DRAM latency. Columns are µs/op.
func Fig3(n int) *Table {
	tbl := &Table{
		Title:  fmt.Sprintf("Figure 3: linear vs binary search, %d keys (usec/op)", n),
		Header: []string{"node", "insert-linear", "insert-binary", "search-linear", "search-binary"},
		Notes:  "expected shape: insertion degrades with node size; binary search wins only at 4KB+ nodes (paper §5.2)",
	}
	keys := Keys(n, 1)
	probe := Keys(n, 2)
	for i := range probe {
		probe[i] = keys[i%len(keys)]
	}
	for _, ns := range []int{256, 512, 1024, 2048, 4096} {
		row := []string{fmt.Sprintf("%dB", ns)}
		for _, binary := range []bool{false, true} {
			p := pmem.New(pmem.Config{Size: poolFor(n)})
			th := p.NewThread()
			tr, err := core.New(p, th, core.Options{NodeSize: ns, BinarySearch: binary, InlineValues: true})
			if err != nil {
				panic(err)
			}
			ins, err := Load(tr, th, keys)
			if err != nil {
				panic(err)
			}
			srch, err := SearchAll(tr, th, probe)
			if err != nil {
				panic(err)
			}
			row = append(row, usPerOp(ins, n))
			_ = srch
			row = append(row, "")
			// Temporarily stash search; fill after both columns known.
			row[len(row)-1] = usPerOp(srch, n)
		}
		// Reorder: ins-lin, ins-bin, search-lin, search-bin.
		tbl.Rows = append(tbl.Rows, []string{row[0], row[1], row[3], row[2], row[4]})
	}
	return tbl
}

// Fig4 reproduces Figure 4: range-query speedup over SkipList with varying
// selection ratio (read latency 300ns, 1KB nodes).
func Fig4(n int) *Table {
	tbl := &Table{
		Title:  fmt.Sprintf("Figure 4: range query speedup vs SkipList, %d keys, read latency 300ns", n),
		Header: []string{"selection", "FAST+FAIR", "FP-tree", "wB+-tree", "WORT", "SkipList"},
		Notes:  "expected shape: FAST+FAIR largest speedup (paper: up to ~20x), FP-tree and wB+-tree close behind, WORT poor",
	}
	ratios := []float64{0.001, 0.005, 0.01, 0.03, 0.05}
	kinds := AllSingleThreaded
	keys := Keys(n, 3)
	sorted := append([]uint64{}, keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	times := map[index.Kind][]time.Duration{}
	for _, k := range kinds {
		ix, th, err := index.New(k,
			pmem.Config{Size: poolFor(n), ReadLatency: 300 * time.Nanosecond},
			index.Options{NodeSize: 1024, InlineValues: true})
		if err != nil {
			panic(err)
		}
		if _, err := Load(ix, th, keys); err != nil {
			panic(err)
		}
		for _, ratio := range ratios {
			count := int(float64(n) * ratio)
			if count < 1 {
				count = 1
			}
			const queries = 10
			t0 := time.Now()
			for q := 0; q < queries; q++ {
				start := (q * 7919) % (n - count - 1)
				lo, hi := sorted[start], sorted[start+count]
				got := 0
				ix.Scan(th, lo, hi, func(uint64, uint64) bool {
					got++
					return true
				})
				if got < count/2 {
					panic(fmt.Sprintf("%s scan returned %d of %d", k, got, count))
				}
			}
			times[k] = append(times[k], time.Since(t0))
		}
	}
	for ri, ratio := range ratios {
		row := []string{fmt.Sprintf("%.1f%%", ratio*100)}
		base := times[index.SkipList][ri]
		for _, k := range kinds {
			row = append(row, fmt.Sprintf("%.2fx", float64(base)/float64(times[k][ri])))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl
}

// fig5Kinds is the Figure 5 series: F, L, P, W, O, S.
var fig5Kinds = []index.Kind{index.FastFair, index.FastFairLogging, index.FPTree, index.WBTree, index.WORT, index.SkipList}

// Fig5a reproduces Figure 5(a): single-threaded insertion time broken into
// clflush / search / node-update, sweeping symmetric PM latency.
func Fig5a(n int) *Table {
	tbl := &Table{
		Title:  fmt.Sprintf("Figure 5(a): insert time breakdown (usec/op), %d keys", n),
		Header: []string{"latency", "index", "total", "clflush", "search", "update"},
		Notes:  "expected shape: F/P/O comparable and ahead of W and S; clflush share grows with latency; L trails F by ~7-18%",
	}
	keys := Keys(n, 4)
	for _, lat := range []time.Duration{0, 120 * time.Nanosecond, 300 * time.Nanosecond, 600 * time.Nanosecond, 900 * time.Nanosecond} {
		for _, k := range fig5Kinds {
			ix, th, err := index.New(k,
				pmem.Config{Size: poolFor(n), ReadLatency: lat, WriteLatency: lat},
				index.Options{InlineValues: true})
			if err != nil {
				panic(err)
			}
			th.Stats = pmem.Stats{}
			el, err := Load(ix, th, keys)
			if err != nil {
				panic(err)
			}
			th.EndPhase()
			st := th.Stats
			tbl.Rows = append(tbl.Rows, []string{
				lat.String(), string(k), usPerOp(el, n),
				usPerOp(st.PhaseTime[pmem.PhaseFlush], n),
				usPerOp(st.PhaseTime[pmem.PhaseSearch], n),
				usPerOp(st.PhaseTime[pmem.PhaseUpdate], n),
			})
		}
	}
	return tbl
}

// Fig5b reproduces Figure 5(b): search time under increasing PM read
// latency.
func Fig5b(n int) *Table {
	tbl := &Table{
		Title:  fmt.Sprintf("Figure 5(b): search time vs read latency (usec/op), %d keys", n),
		Header: append([]string{"read-latency"}, kindNames(AllSingleThreaded)...),
		Notes:  "expected shape: FP-tree edges ahead at >=600ns (volatile inner nodes); WORT and SkipList degrade fastest (pointer chasing)",
	}
	keys := Keys(n, 5)
	for _, lat := range []time.Duration{0, 120 * time.Nanosecond, 300 * time.Nanosecond, 600 * time.Nanosecond, 900 * time.Nanosecond} {
		row := []string{lat.String()}
		for _, k := range AllSingleThreaded {
			ix, th, err := index.New(k,
				pmem.Config{Size: poolFor(n), ReadLatency: lat},
				index.Options{InlineValues: true})
			if err != nil {
				panic(err)
			}
			if _, err := Load(ix, th, keys); err != nil {
				panic(err)
			}
			el, err := SearchAll(ix, th, keys)
			if err != nil {
				panic(err)
			}
			row = append(row, usPerOp(el, n))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl
}

// Fig5c reproduces Figure 5(c): insertion time under increasing PM write
// latency on a TSO machine.
func Fig5c(n int) *Table {
	tbl := &Table{
		Title:  fmt.Sprintf("Figure 5(c): insert time vs write latency, TSO (usec/op), %d keys", n),
		Header: append([]string{"write-latency"}, kindNames(fig5Kinds)...),
		Notes:  "expected shape: WORT overtakes everything as flush count dominates; FAST+FAIR beats L, P, W, S throughout",
	}
	keys := Keys(n, 6)
	for _, lat := range []time.Duration{0, 120 * time.Nanosecond, 300 * time.Nanosecond, 600 * time.Nanosecond, 900 * time.Nanosecond} {
		row := []string{lat.String()}
		for _, k := range fig5Kinds {
			ix, th, err := index.New(k,
				pmem.Config{Size: poolFor(n), WriteLatency: lat},
				index.Options{InlineValues: true})
			if err != nil {
				panic(err)
			}
			el, err := Load(ix, th, keys)
			if err != nil {
				panic(err)
			}
			row = append(row, usPerOp(el, n))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl
}

// Fig5d reproduces Figure 5(d): insertion under increasing write latency on
// a non-TSO machine (store fences cost BarrierLatency; wB+-tree and FP-tree
// limited to 256B nodes as on the paper's 4-byte-word ARM testbed).
func Fig5d(n int) *Table {
	kinds := AllSingleThreaded
	tbl := &Table{
		Title:  fmt.Sprintf("Figure 5(d): insert time vs write latency, non-TSO (usec/op), %d keys", n),
		Header: append([]string{"write-latency"}, kindNames(kinds)...),
		Notes:  "expected shape: FAST+FAIR loses at DRAM speed (it fences every store) but wins as write latency grows",
	}
	keys := Keys(n, 7)
	for _, lat := range []time.Duration{0, 700 * time.Nanosecond, 1000 * time.Nanosecond, 1300 * time.Nanosecond, 1600 * time.Nanosecond} {
		row := []string{lat.String()}
		for _, k := range kinds {
			ns := 0
			if k == index.WBTree || k == index.FPTree {
				ns = 256
			}
			ix, th, err := index.New(k,
				pmem.Config{Size: poolFor(n), WriteLatency: lat, Model: pmem.NonTSO,
					BarrierLatency: 30 * time.Nanosecond},
				index.Options{NodeSize: ns, InlineValues: true})
			if err != nil {
				panic(err)
			}
			el, err := Load(ix, th, keys)
			if err != nil {
				panic(err)
			}
			row = append(row, usPerOp(el, n))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl
}

// Fig7 reproduces Figure 7: throughput with varying thread counts for the
// three workloads (search / insert / mixed). workload is "search", "insert",
// or "mixed".
func Fig7(workload string, n int, threads []int) *Table {
	kinds := AllConcurrent
	if workload == "insert" {
		kinds = []index.Kind{index.FastFair, index.FPTree, index.BLink, index.SkipList} // as in Fig 7(b)
	}
	tbl := &Table{
		Title:  fmt.Sprintf("Figure 7 (%s): throughput Kops/sec, %d preloaded keys, write latency 300ns", workload, n),
		Header: append([]string{"threads"}, kindNames(kinds)...),
		Notes:  "expected shape: lock-free FAST+FAIR (and +LeafLock) scale furthest; B-link saturates first. NOTE: flat scaling on a single-core host.",
	}
	preload := Keys(n, 8)
	for _, nt := range threads {
		row := []string{fmt.Sprintf("%d", nt)}
		for _, k := range kinds {
			ix, th, err := index.New(k,
				pmem.Config{Size: 2 * poolFor(n), WriteLatency: 300 * time.Nanosecond},
				index.Options{InlineValues: true})
			if err != nil {
				panic(err)
			}
			if _, err := Load(ix, th, preload); err != nil {
				panic(err)
			}
			ops := n // total ops across threads
			perT := ops / nt
			var wg sync.WaitGroup
			t0 := time.Now()
			for g := 0; g < nt; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					wth := ix.Pool().NewThread()
					runWorkload(ix, wth, workload, preload, g, perT)
				}(g)
			}
			wg.Wait()
			el := time.Since(t0)
			row = append(row, fmt.Sprintf("%.0f", float64(perT*nt)/el.Seconds()/1000))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl
}

func runWorkload(ix index.Index, th *pmem.Thread, workload string, preload []uint64, g, ops int) {
	n := len(preload)
	switch workload {
	case "search":
		for i := 0; i < ops; i++ {
			k := preload[(i*2654435761+g*97)%n]
			if _, ok := ix.Get(th, k); !ok {
				panic("preloaded key missing")
			}
		}
	case "insert":
		for i := 0; i < ops; i++ {
			k := uint64(g)<<48 | uint64(i) | 1<<63 // disjoint from preload w.h.p.
			if err := ix.Insert(th, k, k); err != nil {
				panic(err)
			}
		}
	case "mixed":
		// The paper's per-thread loop: 4 inserts, 16 searches, 1 delete.
		i := 0
		for i < ops {
			for j := 0; j < 4 && i < ops; j++ {
				k := uint64(g)<<48 | uint64(i) | 1<<63
				if err := ix.Insert(th, k, k); err != nil {
					panic(err)
				}
				i++
			}
			for j := 0; j < 16 && i < ops; j++ {
				k := preload[(i*2654435761+g*97)%n]
				ix.Get(th, k)
				i++
			}
			if i < ops {
				k := uint64(g)<<48 | uint64(i/2) | 1<<63
				ix.Delete(th, k)
				i++
			}
		}
	}
}

// Flushes reports the in-text §5.4 counters: average flushed lines and
// fences per insert, and charged serial reads per search (the emulator's
// stand-in for effective LLC misses).
func Flushes(n int) *Table {
	tbl := &Table{
		Title:  fmt.Sprintf("§5.4 in-text counters, %d keys", n),
		Header: []string{"index", "flush-lines/insert", "fences/insert", "charged-reads/search"},
		Notes:  "paper: FAST+FAIR 4.2 vs FP-tree 4.8 flushes/insert; wB+-tree 1.7x FAST+FAIR; B+-trees absorb reads via locality",
	}
	keys := Keys(n, 9)
	for _, k := range fig5Kinds {
		ix, th, err := index.New(k,
			pmem.Config{Size: poolFor(n), ReadLatency: 300 * time.Nanosecond},
			index.Options{InlineValues: true})
		if err != nil {
			panic(err)
		}
		th.Stats = pmem.Stats{}
		if _, err := Load(ix, th, keys); err != nil {
			panic(err)
		}
		ins := th.Stats
		th.Stats = pmem.Stats{}
		if _, err := SearchAll(ix, th, keys); err != nil {
			panic(err)
		}
		srch := th.Stats
		tbl.Rows = append(tbl.Rows, []string{
			string(k),
			fmt.Sprintf("%.2f", float64(ins.FlushedLines)/float64(n)),
			fmt.Sprintf("%.2f", float64(ins.Fences)/float64(n)),
			fmt.Sprintf("%.2f", float64(srch.ChargedReads)/float64(n)),
		})
	}
	return tbl
}

func kindNames(ks []index.Kind) []string {
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = string(k)
	}
	return out
}

// poolFor sizes an arena generously for n keys across any index layout
// (WORT and SkipList are the hungriest).
func poolFor(n int) int64 {
	sz := int64(n) * 512
	if sz < 64<<20 {
		sz = 64 << 20
	}
	return sz
}
