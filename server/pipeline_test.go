package server

import (
	"testing"

	"repro/client"
	"repro/store"
)

// TestSameKeyOrderingPipelined pins the steered pipeline's ordering
// contract: one connection's requests execute in arrival order, so a
// pipelined burst of Puts to one key followed by a Get must observe the
// last Put — across the inline/steered boundary and across batch
// boundaries, whatever the worker count.
func TestSameKeyOrderingPipelined(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ts := startServer(t, store.Options{}, Options{Workers: workers})
		c, err := client.Dial(ts.addr, client.Options{})
		if err != nil {
			t.Fatal(err)
		}
		const key = 0xfeed
		const n = 4000
		calls := make([]*client.Call, 0, n)
		for i := uint64(1); i <= n; i++ {
			calls = append(calls, c.PutAsync(key, i))
			// Interleaved reads must each see some prefix's last write;
			// the final read must see the final write.
			if i%97 == 0 {
				want := i
				get := c.GetAsync(key)
				calls = append(calls, get)
				defer func(get *client.Call, want uint64) {
					if get.Resp.Val != want {
						t.Errorf("workers=%d: interleaved Get = %d, want %d",
							workers, get.Resp.Val, want)
					}
				}(get, want)
			}
		}
		for _, call := range calls {
			if err := call.Wait(); err != nil {
				t.Fatal(err)
			}
		}
		v, ok, err := c.Get(key)
		if err != nil || !ok || v != n {
			t.Fatalf("workers=%d: final Get = (%d,%v,%v), want (%d,true,nil)",
				workers, v, ok, err, n)
		}
		c.Close()
		ts.srv.Close()
	}
}

// TestPipelineStatsBatchAndCoalesce checks the two amortizations the
// pipeline exists for actually happen under pipelined load: multiple
// requests per ingest batch and multiple responses per write syscall, with
// every request accounted to exactly one execution site.
func TestPipelineStatsBatchAndCoalesce(t *testing.T) {
	ts := startServer(t, store.Options{}, Options{})
	c, err := client.Dial(ts.addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 20000
	calls := make([]*client.Call, n)
	for i := range calls {
		calls[i] = c.PutAsync(uint64(i), uint64(i))
	}
	for _, call := range calls {
		if err := call.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := ts.srv.Stats()
	if st.Ops < n {
		t.Fatalf("Ops = %d, want >= %d", st.Ops, n)
	}
	if st.InlineOps+st.SteeredOps != st.Ops {
		t.Fatalf("InlineOps %d + SteeredOps %d != Ops %d",
			st.InlineOps, st.SteeredOps, st.Ops)
	}
	if st.ReadBatches == 0 || st.Flushes == 0 {
		t.Fatalf("zero ReadBatches (%d) or Flushes (%d)", st.ReadBatches, st.Flushes)
	}
	// A fully unbatched run would have one batch and one flush per op.
	// Sustained pipelining at depth n must do meaningfully better; 2x is
	// a deliberately loose floor (the measured factor is far higher).
	if st.ReadBatches > st.Ops/2 {
		t.Errorf("ingest batching ineffective: %d batches for %d ops", st.ReadBatches, st.Ops)
	}
	if st.Flushes > st.Ops/2 {
		t.Errorf("write coalescing ineffective: %d flushes for %d ops", st.Flushes, st.Ops)
	}
	t.Logf("ops=%d batches=%d (%.1f/batch) flushes=%d (%.1f/flush) inline=%d steered=%d",
		st.Ops, st.ReadBatches, float64(st.Ops)/float64(st.ReadBatches),
		st.Flushes, float64(st.Ops)/float64(st.Flushes), st.InlineOps, st.SteeredOps)
}
